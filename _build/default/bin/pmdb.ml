(* pmdb — command-line front end for the PMDebugger reproduction.

     pmdb run -w b_tree -n 1000                 debug a workload
     pmdb run -w memcached -d pmemcheck -n 500  with another detector
     pmdb characterize -w hashmap_tx -n 1000    Fig. 2 metrics for one trace
     pmdb bugs                                  run the 78-case dataset
     pmdb list                                  available workloads *)

open Cmdliner
open Pmtrace
module W = Workloads.Workload

let detector_names = [ "pmdebugger"; "pmemcheck"; "pmtest"; "xfdetector"; "nulgrind" ]

let sink_for name model config =
  match name with
  | "pmdebugger" -> Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model ~config ())
  | "pmemcheck" -> Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())
  | "pmtest" -> Baselines.Pmtest.sink (Baselines.Pmtest.create ())
  | "xfdetector" -> Baselines.Xfdetector.sink (Baselines.Xfdetector.create ~config ())
  | "nulgrind" -> Baselines.Nulgrind.sink ()
  | other -> failwith (Printf.sprintf "unknown detector %S (expected one of: %s)" other (String.concat ", " detector_names))

let workload_arg =
  let doc = "Workload to run (see `pmdb list`)." in
  Arg.(value & opt string "b_tree" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Number of operations." in
  Arg.(value & opt int 1000 & info [ "n"; "ops" ] ~docv:"N" ~doc)

let detector_arg =
  let doc = "Detector: pmdebugger, pmemcheck, pmtest, xfdetector or nulgrind." in
  Arg.(value & opt string "pmdebugger" & info [ "d"; "detector" ] ~docv:"TOOL" ~doc)

let config_arg =
  let doc = "Persist-order configuration file (see Pmdebugger.Order_config)." in
  Arg.(value & opt (some file) None & info [ "c"; "config" ] ~docv:"FILE" ~doc)

let annotate_arg =
  let doc = "Emit the PMTest-style annotations the workload carries." in
  Arg.(value & flag & info [ "annotate" ] ~doc)

let max_bugs_arg =
  let doc = "Print at most this many findings." in
  Arg.(value & opt int 25 & info [ "max-print" ] ~docv:"K" ~doc)

let load_config = function
  | None -> Pmdebugger.Order_config.empty
  | Some path -> (
      match Pmdebugger.Order_config.load path with
      | Ok cfg -> cfg
      | Error msg -> failwith ("config: " ^ msg))

let run_cmd workload n detector config annotate max_print =
  let spec = Workloads.Registry.find_exn workload in
  let config = load_config config in
  let engine = Engine.create () in
  let sink = sink_for detector spec.W.model config in
  Engine.attach engine sink;
  let t0 = Unix.gettimeofday () in
  spec.W.run (W.params ~annotate ~n ()) engine;
  let dt = Unix.gettimeofday () -. t0 in
  let report = sink.Sink.finish () in
  Printf.printf "%s on %s (n=%d): %d event(s) in %.3fs\n" report.Bug.detector workload n report.Bug.events_processed dt;
  let shown = ref 0 in
  List.iter
    (fun b ->
      if !shown < max_print then begin
        incr shown;
        Format.printf "  %a@." Bug.pp b
      end)
    report.Bug.bugs;
  let total = List.length report.Bug.bugs in
  if total > max_print then Printf.printf "  ... and %d more\n" (total - max_print);
  Printf.printf "%d finding(s); kinds: %s\n" total
    (String.concat ", " (List.map Bug.kind_name (Bug.kinds_found report)));
  List.iter (fun (k, v) -> Printf.printf "  stat %-28s %.2f\n" k v) report.Bug.stats

let characterize_cmd workload n =
  let spec = Workloads.Registry.find_exn workload in
  let trace = Recorder.record (fun e -> spec.W.run (W.params ~n ()) e) in
  let h = Charz.distance_histogram trace in
  let c = Charz.writeback_classes trace in
  let m = Charz.instruction_mix trace in
  Printf.printf "%s (n=%d): %d events\n" workload n (Array.length trace);
  Printf.printf "  stores %d, writebacks %d, fences %d (store share %.1f%%)\n" m.Charz.stores m.Charz.writebacks
    m.Charz.fences
    (100.0 *. Charz.store_fraction m);
  Printf.printf "  store-to-fence distance: d=1 %.1f%%, d<=3 %.1f%%, never persisted %d\n"
    (100.0 *. Charz.fraction_at_most h 1)
    (100.0 *. Charz.fraction_at_most h 3)
    h.Charz.never_persisted;
  Printf.printf "  CLF intervals: %.1f%% collective (%d collective / %d dispersed)\n"
    (100.0 *. Charz.collective_fraction c)
    c.Charz.collective c.Charz.dispersed

let bugs_cmd () =
  List.iter
    (fun r ->
      Printf.printf "%-12s %d/%d detected, %d kinds, FN %.1f%%, false positives %d\n"
        (Bugbench.Eval.tool_name r.Bugbench.Eval.tool)
        r.Bugbench.Eval.detected_total r.Bugbench.Eval.case_total r.Bugbench.Eval.kinds_covered
        (100.0 *. r.Bugbench.Eval.false_negative_rate)
        (List.length r.Bugbench.Eval.false_positives))
    (Bugbench.Eval.evaluate_all ())

let record_cmd workload n annotate out =
  let spec = Workloads.Registry.find_exn workload in
  let trace = Recorder.record (fun e -> spec.W.run (W.params ~annotate ~n ()) e) in
  Trace_io.save out trace;
  Printf.printf "recorded %d event(s) from %s (n=%d) to %s\n" (Array.length trace) workload n out

let replay_cmd file detector config max_print =
  match Trace_io.load file with
  | Error msg -> failwith msg
  | Ok trace ->
      let config = load_config config in
      (* Replays have no live PM state: the model only gates rule
         selection, so strict covers all shared rules. *)
      let sink = sink_for detector Pmdebugger.Detector.Strict config in
      let report = Recorder.replay trace sink in
      Printf.printf "%s replayed %d event(s) from %s\n" report.Bug.detector report.Bug.events_processed file;
      let shown = ref 0 in
      List.iter
        (fun b ->
          if !shown < max_print then begin
            incr shown;
            Format.printf "  %a@." Bug.pp b
          end)
        report.Bug.bugs;
      Printf.printf "%d finding(s); kinds: %s\n" (List.length report.Bug.bugs)
        (String.concat ", " (List.map Bug.kind_name (Bug.kinds_found report)))

let list_cmd () =
  List.iter
    (fun (spec : W.spec) ->
      let model =
        match spec.W.model with
        | Pmdebugger.Detector.Strict -> "strict"
        | Pmdebugger.Detector.Epoch -> "epoch"
        | Pmdebugger.Detector.Strand -> "strand"
      in
      Printf.printf "%-16s %-7s %s\n" spec.W.name model spec.W.description)
    Workloads.Registry.all

let run_term = Term.(const run_cmd $ workload_arg $ n_arg $ detector_arg $ config_arg $ annotate_arg $ max_bugs_arg)

let out_arg =
  let doc = "Output trace file." in
  Arg.(value & opt string "trace.pmt" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_file_arg =
  let doc = "Trace file to replay (as produced by `pmdb record`)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let record_term = Term.(const record_cmd $ workload_arg $ n_arg $ annotate_arg $ out_arg)

let replay_term = Term.(const replay_cmd $ trace_file_arg $ detector_arg $ config_arg $ max_bugs_arg)

let characterize_term = Term.(const characterize_cmd $ workload_arg $ n_arg)

let bugs_term = Term.(const bugs_cmd $ const ())

let list_term = Term.(const list_cmd $ const ())

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Debug a workload with a detector") run_term;
    Cmd.v (Cmd.info "characterize" ~doc:"Print the Sec. 3 pattern metrics for a workload trace") characterize_term;
    Cmd.v (Cmd.info "bugs" ~doc:"Run the 78-case bug dataset against all four detectors") bugs_term;
    Cmd.v (Cmd.info "record" ~doc:"Record a workload's event trace to a file") record_term;
    Cmd.v (Cmd.info "replay" ~doc:"Replay a recorded trace into a detector") replay_term;
    Cmd.v (Cmd.info "list" ~doc:"List available workloads") list_term;
  ]

let () =
  let doc = "PMDebugger reproduction: crash-consistency bug detection for PM programs" in
  exit (Cmd.eval (Cmd.group (Cmd.info "pmdb" ~version:"1.0" ~doc) cmds))
