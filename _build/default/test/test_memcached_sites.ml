open Pmtrace
open Minipmdk

(* Site-level checks for the Sec 7.4 memcached reproduction: each buggy
   code path must deterministically produce a finding classified to its
   own site, and correct paths must never be classified as buggy. *)

let with_mc f =
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let mc = Workloads.Memcached.create pool ~buckets:8 ~max_items:16 in
  f mc;
  Engine.program_end engine;
  let report = Pmdebugger.Detector.report d in
  let sites = Hashtbl.create 8 in
  List.iter
    (fun (b : Bug.t) ->
      match Workloads.Memcached.classify_addr mc b.Bug.addr with
      | Some s -> Hashtbl.replace sites s ()
      | None -> Alcotest.failf "unclassified bug address %d" b.Bug.addr)
    report.Bug.bugs;
  (report, fun s -> Hashtbl.mem sites s)

let test_set_path_sites () =
  let _, hit = with_mc (fun mc -> Workloads.Memcached.set mc ~key:"k" ~value:"v") in
  (* A single set leaves exactly the link-path sites pending. *)
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " after set") true (hit s))
    [ "it.cas"; "memcached.cas_highwater"; "memcached.curr_items"; "memcached.total_items"; "memcached.curr_bytes" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " untouched") false (hit s))
    [ "it.time"; "it.exptime"; "it.data"; "memcached.oldest_live"; "memcached.stats_evictions" ]

let test_touch_site () =
  let _, hit =
    with_mc (fun mc ->
        Workloads.Memcached.set mc ~key:"k" ~value:"v";
        ignore (Workloads.Memcached.touch mc ~key:"k" ~exptime:42))
  in
  Alcotest.(check bool) "it.exptime" true (hit "it.exptime")

let test_append_sites () =
  let _, hit =
    with_mc (fun mc ->
        Workloads.Memcached.set mc ~key:"k" ~value:"v";
        ignore (Workloads.Memcached.append mc ~key:"k" ~value:"+more"))
  in
  Alcotest.(check bool) "it.data" true (hit "it.data");
  Alcotest.(check bool) "it.nbytes" true (hit "it.nbytes")

let test_flags_site_on_overwrite () =
  let _, hit =
    with_mc (fun mc ->
        Workloads.Memcached.set mc ~key:"k" ~value:"v1";
        Workloads.Memcached.set mc ~key:"k" ~value:"v2")
  in
  Alcotest.(check bool) "it.flags" true (hit "it.flags")

let test_flush_all_site () =
  let _, hit = with_mc (fun mc -> Workloads.Memcached.flush_all mc) in
  Alcotest.(check bool) "memcached.oldest_live" true (hit "memcached.oldest_live")

let test_delete_sites () =
  let _, hit =
    with_mc (fun mc ->
        (* Two keys in one bucket chain so the unlink is mid-chain. *)
        for i = 0 to 15 do
          Workloads.Memcached.set mc ~key:(Printf.sprintf "key%02d" i) ~value:"v"
        done;
        for i = 0 to 15 do
          ignore (Workloads.Memcached.delete mc ~key:(Printf.sprintf "key%02d" i))
        done)
  in
  Alcotest.(check bool) "memcached.freelist_head" true (hit "memcached.freelist_head");
  Alcotest.(check bool) "it.prev (freelist link)" true (hit "it.prev")

let test_eviction_sites () =
  let _, hit =
    with_mc (fun mc ->
        for i = 0 to 39 do
          Workloads.Memcached.set mc ~key:(Printf.sprintf "key%02d" i) ~value:"v"
        done)
  in
  Alcotest.(check bool) "memcached.stats_evictions" true (hit "memcached.stats_evictions");
  Alcotest.(check bool) "memcached.lru_tail" true (hit "memcached.lru_tail");
  Alcotest.(check bool) "it.h_next (chain unlink)" true (hit "it.h_next")

let test_classification_total () =
  Alcotest.(check int) "19 documented sites" 19 (List.length Workloads.Memcached.bug_sites);
  Alcotest.(check int) "no duplicates" 19 (List.length (List.sort_uniq compare Workloads.Memcached.bug_sites))

let test_classify_ignores_clean_addresses () =
  let engine = Engine.create () in
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let mc = Workloads.Memcached.create pool ~buckets:8 ~max_items:16 in
  (* Pool header and bucket array are correct-path addresses. *)
  Alcotest.(check (option string)) "pool header" None (Workloads.Memcached.classify_addr mc 8);
  Alcotest.(check bool) "far heap address" true (Workloads.Memcached.classify_addr mc (63 lsl 20) = None)

let suite =
  [
    Alcotest.test_case "set-path sites" `Quick test_set_path_sites;
    Alcotest.test_case "touch site" `Quick test_touch_site;
    Alcotest.test_case "append sites" `Quick test_append_sites;
    Alcotest.test_case "flags site on overwrite" `Quick test_flags_site_on_overwrite;
    Alcotest.test_case "flush_all site" `Quick test_flush_all_site;
    Alcotest.test_case "delete sites" `Quick test_delete_sites;
    Alcotest.test_case "eviction sites" `Quick test_eviction_sites;
    Alcotest.test_case "site list well-formed" `Quick test_classification_total;
    Alcotest.test_case "clean addresses unclassified" `Quick test_classify_ignores_clean_addresses;
  ]
