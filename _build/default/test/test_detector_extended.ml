open Pmtrace
module D = Pmdebugger.Detector

let run ?(setup = fun _ -> ()) ?model ?(create = fun ~model -> D.create ?model ()) program =
  let engine = Engine.create () in
  let d = create ~model in
  Engine.attach engine (D.sink d);
  Engine.register_pmem engine ~base:0 ~size:(1 lsl 20);
  setup engine;
  program engine;
  Engine.program_end engine;
  D.report d

let test_two_threads_interleaved () =
  (* Two threads each store+persist their own region, interleaved: the
     strict-model bookkeeping must not cross-contaminate. *)
  let r =
    run (fun e ->
        for i = 0 to 9 do
          Engine.set_tid e 1;
          Engine.store_i64 e ~addr:(1024 + (i * 64)) 1L;
          Engine.set_tid e 2;
          Engine.store_i64 e ~addr:(4096 + (i * 64)) 2L;
          Engine.set_tid e 1;
          Engine.persist e ~addr:(1024 + (i * 64)) ~size:8;
          Engine.set_tid e 2;
          Engine.persist e ~addr:(4096 + (i * 64)) ~size:8
        done)
  in
  Alcotest.(check int) "interleaved threads clean" 0 (List.length r.Bug.bugs)

let test_epoch_isolation_per_thread () =
  (* Thread 1's epoch must not count thread 2's fences. *)
  let r =
    run ~model:D.Epoch (fun e ->
        Engine.set_tid e 1;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:1024 1L;
        Engine.set_tid e 2;
        Engine.store_i64 e ~addr:4096 2L;
        Engine.persist e ~addr:4096 ~size:8;
        Engine.persist e ~addr:8192 ~size:0;
        Engine.set_tid e 1;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.epoch_end e)
  in
  Alcotest.(check bool) "no redundant epoch fence across threads" false (Bug.has_kind r Bug.Redundant_epoch_fence)

let test_detector_array_overflow () =
  (* More stores between fences than the array holds: the overflow path
     spills to the tree and detection still works. *)
  let r =
    run
      ~create:(fun ~model -> D.create ?model ~array_capacity:8 ())
      (fun e ->
        for i = 0 to 63 do
          Engine.store_i64 e ~addr:(1024 + (i * 64)) 1L
        done;
        for i = 0 to 62 do
          Engine.persist e ~addr:(1024 + (i * 64)) ~size:8
        done)
  in
  Alcotest.(check int) "exactly the unpersisted one found" 1 (Bug.count_kind r Bug.No_durability);
  Alcotest.(check int) "its address" (1024 + (63 * 64)) (List.hd r.Bug.bugs).Bug.addr

let test_max_bugs_per_kind_cap () =
  let r =
    run
      ~create:(fun ~model -> D.create ?model ~max_bugs_per_kind:5 ())
      (fun e ->
        for i = 0 to 19 do
          Engine.store_i64 e ~addr:(1024 + (i * 64)) 1L
        done)
  in
  Alcotest.(check int) "capped" 5 (Bug.count_kind r Bug.No_durability)

let test_var_registered_after_store () =
  (* Register_var arriving after the store (late symbol resolution) must
     still bind: the order rule sees the subsequent rewrite. *)
  let config = Pmdebugger.Order_config.parse_exn "order data before valid" in
  let r =
    run
      ~create:(fun ~model -> D.create ?model ~config ())
      (fun e ->
        Engine.register_var e ~name:"data" ~addr:1024 ~size:8;
        Engine.register_var e ~name:"valid" ~addr:2048 ~size:8;
        Engine.store_i64 e ~addr:2048 1L;
        Engine.persist e ~addr:2048 ~size:8;
        Engine.store_i64 e ~addr:1024 1L;
        Engine.persist e ~addr:1024 ~size:8)
  in
  Alcotest.(check bool) "valid persisted before data" true (Bug.has_kind r Bug.No_order_guarantee)

let test_multiple_registered_regions () =
  let engine = Engine.create () in
  let d = D.create () in
  Engine.attach engine (D.sink d);
  Engine.register_pmem engine ~base:0 ~size:4096;
  Engine.register_pmem engine ~base:65536 ~size:4096;
  (* In-region stores tracked, out-of-region ignored. *)
  Engine.store_i64 engine ~addr:100 1L;
  Engine.store_i64 engine ~addr:65600 2L;
  Engine.store_i64 engine ~addr:32768 3L;
  Engine.program_end engine;
  let r = D.report d in
  Alcotest.(check int) "two tracked regions" 2 (Bug.count_kind r Bug.No_durability)

let test_multi_location_line_flush () =
  (* One CLWB covering five tracked 8-byte stores: all five must drain
     at the fence (the collective path at detector level). *)
  let r =
    run (fun e ->
        for i = 0 to 4 do
          Engine.store_i64 e ~addr:(1024 + (i * 8)) (Int64.of_int i)
        done;
        Engine.clwb e ~addr:1024;
        Engine.sfence e)
  in
  Alcotest.(check int) "all drained" 0 (List.length r.Bug.bugs)

let test_split_location_detection () =
  (* A 100-byte store with only its first line persisted: the remainder
     must be reported with its correct sub-range. *)
  let r =
    run (fun e ->
        Engine.store_bytes e ~addr:1024 (Bytes.make 100 'v');
        Engine.clwb e ~addr:1024;
        Engine.sfence e)
  in
  (match List.find_opt (fun (b : Bug.t) -> b.Bug.kind = Bug.No_durability) r.Bug.bugs with
  | Some b ->
      Alcotest.(check int) "remainder start" 1088 b.Bug.addr;
      Alcotest.(check int) "remainder size" 36 b.Bug.size
  | None -> Alcotest.fail "expected a no-durability remainder")

let test_strand_spaces_independent () =
  (* Unpersisted stores in one strand must not block another strand's
     locations from draining at its own barrier. *)
  let r =
    run ~model:D.Strand (fun e ->
        Engine.strand_begin e ~strand:0;
        Engine.store_i64 e ~addr:1024 1L;
        Engine.strand_end e ~strand:0;
        Engine.strand_begin e ~strand:1;
        Engine.store_i64 e ~addr:4096 2L;
        Engine.persist e ~addr:4096 ~size:8;
        Engine.strand_end e ~strand:1;
        Engine.strand_begin e ~strand:0;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.strand_end e ~strand:0;
        Engine.join_strand e)
  in
  Alcotest.(check int) "both strands clean" 0 (List.length r.Bug.bugs)

let test_report_stats_present () =
  let r = run (fun e -> Engine.store_i64 e ~addr:1024 1L) in
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " stat present") true (List.mem_assoc key r.Bug.stats))
    [ "tree_size"; "reorganizations"; "avg_tree_nodes_per_fence"; "spaces" ]

let test_finish_idempotent () =
  let engine = Engine.create () in
  let d = D.create () in
  let sink = D.sink d in
  Engine.attach engine sink;
  Engine.register_pmem engine ~base:0 ~size:4096;
  Engine.store_i64 engine ~addr:128 1L;
  let r1 = sink.Sink.finish () in
  let r2 = sink.Sink.finish () in
  Alcotest.(check int) "same findings on double finish" (List.length r1.Bug.bugs) (List.length r2.Bug.bugs)

(* Differential property: PMDebugger and Pmemcheck agree on the set of
   never-persisted addresses for random strict-model programs. *)
let random_program ops e =
  Engine.register_pmem e ~base:0 ~size:65536;
  List.iter
    (fun (op, slot) ->
      let addr = 1024 + (slot * 64) in
      match op mod 3 with
      | 0 -> Engine.store_i64 e ~addr (Int64.of_int slot)
      | 1 -> Engine.clwb e ~addr
      | _ -> Engine.sfence e)
    ops;
  Engine.program_end e

let nodur_addrs (r : Bug.report) =
  List.sort_uniq compare
    (List.filter_map (fun (b : Bug.t) -> if b.Bug.kind = Bug.No_durability then Some b.Bug.addr else None) r.Bug.bugs)

let prop_pmdebugger_pmemcheck_agree =
  QCheck.Test.make ~name:"pmdebugger and pmemcheck agree on durability holes" ~count:150
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 15)))
    (fun ops ->
      let run_tool sink =
        let engine = Engine.create () in
        Engine.attach engine sink;
        random_program ops engine;
        sink.Sink.finish ()
      in
      let pd = run_tool (D.sink (D.create ())) in
      let pc = run_tool (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) in
      nodur_addrs pd = nodur_addrs pc)

(* Live attachment and trace replay agree for every tool. *)
let prop_live_equals_replay =
  QCheck.Test.make ~name:"live detection equals trace replay" ~count:100
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 15)))
    (fun ops ->
      let trace = Recorder.record (random_program ops) in
      let live =
        let engine = Engine.create () in
        let sink = D.sink (D.create ()) in
        Engine.attach engine sink;
        random_program ops engine;
        sink.Sink.finish ()
      in
      let replayed = Recorder.replay trace (D.sink (D.create ())) in
      nodur_addrs live = nodur_addrs replayed
      && List.length live.Bug.bugs = List.length replayed.Bug.bugs)

let test_crash_check_helper () =
  let engine = Engine.create () in
  Engine.store_i64 engine ~addr:0 1L;
  Engine.clwb engine ~addr:0;
  (* One undrained line: two crash images; the recovery predicate
     rejects the one where the flag reached PM. *)
  let recovery img = Pmem.Image.get_i64 img 0 = 0L in
  let pm = Engine.pm engine in
  Alcotest.(check int) "one violating image" 1 (Pmdebugger.Crash_check.violations ~pm ~recovery ());
  Alcotest.(check bool) "not consistent" false (Pmdebugger.Crash_check.consistent ~pm ~recovery ());
  Alcotest.(check bool) "accept-all is consistent" true
    (Pmdebugger.Crash_check.consistent ~pm ~recovery:(fun _ -> true) ())

let suite =
  [
    Alcotest.test_case "crash check helper" `Quick test_crash_check_helper;
    Alcotest.test_case "two threads interleaved" `Quick test_two_threads_interleaved;
    Alcotest.test_case "epoch isolation per thread" `Quick test_epoch_isolation_per_thread;
    Alcotest.test_case "array overflow spill" `Quick test_detector_array_overflow;
    Alcotest.test_case "max bugs per kind cap" `Quick test_max_bugs_per_kind_cap;
    Alcotest.test_case "late var registration" `Quick test_var_registered_after_store;
    Alcotest.test_case "multiple registered regions" `Quick test_multiple_registered_regions;
    Alcotest.test_case "multi-location line flush" `Quick test_multi_location_line_flush;
    Alcotest.test_case "split location detection" `Quick test_split_location_detection;
    Alcotest.test_case "strand spaces independent" `Quick test_strand_spaces_independent;
    Alcotest.test_case "report stats present" `Quick test_report_stats_present;
    Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
    QCheck_alcotest.to_alcotest prop_pmdebugger_pmemcheck_agree;
    QCheck_alcotest.to_alcotest prop_live_equals_replay;
  ]
