test/test_workloads.ml: Alcotest Array Bug Engine Event Hashtbl List Minipmdk Pmdebugger Pmtrace Pool Printf QCheck QCheck_alcotest Recorder Workloads
