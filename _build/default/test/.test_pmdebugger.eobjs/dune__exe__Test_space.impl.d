test/test_space.ml: Alcotest Hashtbl List Pmdebugger Pmem QCheck QCheck_alcotest Space
