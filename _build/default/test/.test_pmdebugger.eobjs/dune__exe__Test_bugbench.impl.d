test/test_bugbench.ml: Alcotest Baselines Bug Bugbench Lazy List Pmtrace Printf
