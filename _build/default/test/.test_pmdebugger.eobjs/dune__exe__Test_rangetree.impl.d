test/test_rangetree.ml: Addr Alcotest List Pmem QCheck QCheck_alcotest Rangetree
