test/test_harness.ml: Alcotest Array Fun Harness List Pmdebugger Pmtrace Sys
