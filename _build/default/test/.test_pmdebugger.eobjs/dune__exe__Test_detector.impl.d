test/test_detector.ml: Alcotest Bug Engine List Pmdebugger Pmem Pmtrace String
