test/test_pmdebugger.mli:
