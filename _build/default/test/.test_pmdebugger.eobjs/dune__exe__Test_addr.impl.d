test/test_addr.ml: Addr Alcotest List Pmem Printf QCheck QCheck_alcotest
