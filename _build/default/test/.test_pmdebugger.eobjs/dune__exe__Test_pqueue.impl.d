test/test_pqueue.ml: Alcotest Bug Engine List Minipmdk Pmdebugger Pmem Pmtrace Pool Printf QCheck QCheck_alcotest Queue String Workloads
