test/test_trace_io.ml: Alcotest Array Bug Engine Event Filename List Pmdebugger Pmtrace Printf QCheck QCheck_alcotest Recorder String Sys Trace_io
