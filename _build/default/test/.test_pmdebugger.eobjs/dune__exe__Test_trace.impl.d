test/test_trace.ml: Alcotest Array Bug Engine Event List Pmdebugger Pmem Pmtrace Recorder Sink
