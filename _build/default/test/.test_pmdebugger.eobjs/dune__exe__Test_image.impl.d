test/test_image.ml: Alcotest Image Pmem QCheck QCheck_alcotest String
