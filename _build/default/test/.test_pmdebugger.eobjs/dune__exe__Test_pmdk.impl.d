test/test_pmdk.ml: Alcotest Atomic Bug Bytes Engine Event List Minipmdk Pmdebugger Pmem Pmtrace Pool QCheck QCheck_alcotest Sink Tx Workloads
