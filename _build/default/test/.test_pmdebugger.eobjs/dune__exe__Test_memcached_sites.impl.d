test/test_memcached_sites.ml: Alcotest Bug Engine Hashtbl List Minipmdk Pmdebugger Pmtrace Pool Printf Workloads
