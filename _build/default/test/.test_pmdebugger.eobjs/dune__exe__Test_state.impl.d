test/test_state.ml: Alcotest Bytes Image Int64 List Pmem QCheck QCheck_alcotest State
