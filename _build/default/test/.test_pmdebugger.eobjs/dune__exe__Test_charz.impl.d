test/test_charz.ml: Alcotest Array Charz Event List Pmem Pmtrace QCheck QCheck_alcotest
