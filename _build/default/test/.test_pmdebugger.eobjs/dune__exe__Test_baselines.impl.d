test/test_baselines.ml: Alcotest Baselines Bug Engine Event List Pmdebugger Pmem Pmtrace Recorder Sink
