test/test_pmfs.ml: Alcotest Bug Char Engine Hashtbl List Minipmfs Pmdebugger Pmem Pmtrace Printf QCheck QCheck_alcotest Sink String Workloads
