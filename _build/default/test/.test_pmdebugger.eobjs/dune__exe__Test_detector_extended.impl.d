test/test_detector_extended.ml: Alcotest Baselines Bug Bytes Engine Int64 List Pmdebugger Pmem Pmtrace QCheck QCheck_alcotest Recorder Sink
