open Pmtrace
module Pmfs = Minipmfs.Pmfs
module Yat = Minipmfs.Yat

let fresh () =
  let engine = Engine.create () in
  (engine, Pmfs.create engine ())

let test_mkdir_lookup () =
  let _, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let home = Pmfs.mkdir fs ~parent:root ~name:"home" in
  Alcotest.(check (option int)) "lookup home" (Some home) (Pmfs.lookup fs ~parent:root ~name:"home");
  Alcotest.(check (option int)) "lookup missing" None (Pmfs.lookup fs ~parent:root ~name:"ghost");
  Alcotest.(check (list string)) "readdir" [ "home" ] (Pmfs.readdir fs ~inode:root)

let test_file_write_read () =
  let _, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let f = Pmfs.create_file fs ~parent:root ~name:"a.txt" in
  Pmfs.write_file fs ~inode:f ~off:0 "hello world";
  Alcotest.(check string) "read back" "hello world" (Pmfs.read_file fs ~inode:f ~off:0 ~len:11);
  Alcotest.(check string) "partial read" "world" (Pmfs.read_file fs ~inode:f ~off:6 ~len:5);
  Alcotest.(check int) "size" 11 (Pmfs.file_size fs ~inode:f);
  (* Overwrite in the middle and extend. *)
  Pmfs.write_file fs ~inode:f ~off:6 "there!!";
  Alcotest.(check string) "after overwrite" "hello there!!" (Pmfs.read_file fs ~inode:f ~off:0 ~len:13);
  Alcotest.(check int) "extended size" 13 (Pmfs.file_size fs ~inode:f)

let test_multi_block_file () =
  let _, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let f = Pmfs.create_file fs ~parent:root ~name:"big" in
  let payload = String.init 1500 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  Pmfs.write_file fs ~inode:f ~off:0 payload;
  Alcotest.(check string) "multi-block roundtrip" payload (Pmfs.read_file fs ~inode:f ~off:0 ~len:1500);
  Alcotest.(check string) "cross-block read" (String.sub payload 500 100) (Pmfs.read_file fs ~inode:f ~off:500 ~len:100)

let test_unlink () =
  let _, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let f = Pmfs.create_file fs ~parent:root ~name:"tmp" in
  Pmfs.write_file fs ~inode:f ~off:0 (String.make 600 'x');
  Pmfs.unlink fs ~parent:root ~name:"tmp";
  Alcotest.(check (option int)) "gone" None (Pmfs.lookup fs ~parent:root ~name:"tmp");
  Alcotest.(check (list string)) "empty dir" [] (Pmfs.readdir fs ~inode:root);
  (* Freed blocks and inode are reusable. *)
  let g = Pmfs.create_file fs ~parent:root ~name:"tmp2" in
  Pmfs.write_file fs ~inode:g ~off:0 "fresh";
  Alcotest.(check string) "reuse works" "fresh" (Pmfs.read_file fs ~inode:g ~off:0 ~len:5)

let test_errors () =
  let _, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let _ = Pmfs.create_file fs ~parent:root ~name:"dup" in
  Alcotest.check_raises "duplicate name" (Failure "Pmfs: \"dup\" exists") (fun () ->
      ignore (Pmfs.create_file fs ~parent:root ~name:"dup"));
  Alcotest.check_raises "unlink missing" (Failure "Pmfs: \"nope\" not found") (fun () ->
      Pmfs.unlink fs ~parent:root ~name:"nope");
  let d = Pmfs.mkdir fs ~parent:root ~name:"d" in
  let _ = Pmfs.create_file fs ~parent:d ~name:"inner" in
  Alcotest.check_raises "non-empty dir" (Failure "Pmfs: directory not empty") (fun () ->
      Pmfs.unlink fs ~parent:root ~name:"d")

let test_fsck_on_durable_image () =
  let engine, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let d = Pmfs.mkdir fs ~parent:root ~name:"data" in
  for i = 0 to 5 do
    let f = Pmfs.create_file fs ~parent:d ~name:(Printf.sprintf "f%d" i) in
    Pmfs.write_file fs ~inode:f ~off:0 (String.make (100 * (i + 1)) 'y')
  done;
  Pmfs.unlink fs ~parent:d ~name:"f3";
  Alcotest.(check bool) "durable image consistent" true
    (Pmfs.fsck (Pmem.Image.copy (Pmem.State.durable (Engine.pm engine))))

let test_fsck_rejects_corruption () =
  let engine, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let f = Pmfs.create_file fs ~parent:root ~name:"x" in
  Pmfs.write_file fs ~inode:f ~off:0 "abc";
  let img = Pmem.Image.copy (Pmem.State.durable (Engine.pm engine)) in
  (* Point the file's first block slot out of range. *)
  let itable = Pmem.Image.get_int img 48 in
  Pmem.Image.set_int img (itable + (f * 80) + 24) 999_999;
  Alcotest.(check bool) "corruption detected" false (Pmfs.fsck img);
  Alcotest.(check bool) "explanation given" true (Pmfs.fsck_explain img <> None)

let test_unformatted_is_vacuous () =
  Alcotest.(check bool) "empty image passes" true (Pmfs.fsck (Pmem.Image.create ()))

let test_journal_recovery () =
  (* Simulate a crash with a committed but unapplied journal record:
     recovery must replay it. *)
  let engine, fs = fresh () in
  let root = Pmfs.root_dir fs in
  let f = Pmfs.create_file fs ~parent:root ~name:"j" in
  Pmfs.write_file fs ~inode:f ~off:0 "v1";
  let img = Pmem.Image.copy (Pmem.State.durable (Engine.pm engine)) in
  (* Hand-craft a committed record rewriting the file size to 1. *)
  let itable = Pmem.Image.get_int img 48 in
  let journal = Pmem.Image.get_int img 32 in
  let target = itable + (f * 80) + 8 in
  Pmem.Image.set_int img (journal + 8) target;
  Pmem.Image.set_int img (journal + 16) 8;
  Pmem.Image.set_int img (journal + 24) 1;
  Pmem.Image.set_int img journal 1;
  Pmem.Image.set_int img 72 32 (* journal head > 0 *);
  Pmfs.recover img;
  Alcotest.(check int) "redo applied" 1 (Pmem.Image.get_int img target);
  Alcotest.(check int) "journal cleared" 0 (Pmem.Image.get_int img 72);
  Alcotest.(check bool) "image consistent after recovery" true (Pmfs.fsck img)

let test_detector_clean_on_fs () =
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  let fs = Pmfs.create engine () in
  let root = Pmfs.root_dir fs in
  let dir = Pmfs.mkdir fs ~parent:root ~name:"w" in
  for i = 0 to 19 do
    let f = Pmfs.create_file fs ~parent:dir ~name:(Printf.sprintf "f%d" i) in
    Pmfs.write_file fs ~inode:f ~off:0 "zz";
    if i land 1 = 0 then Pmfs.unlink fs ~parent:dir ~name:(Printf.sprintf "f%d" i)
  done;
  Engine.program_end engine;
  Alcotest.(check int) "no findings on correct fs" 0 (List.length (Pmdebugger.Detector.report d).Bug.bugs)

let test_yat_clean_vs_unsafe () =
  let run ~unsafe =
    let engine = Engine.create () in
    let yat = Yat.create ~pm:(Engine.pm engine) () in
    Engine.attach engine (Yat.sink yat);
    let fs = Pmfs.create engine () in
    Pmfs.set_unsafe_unlink fs unsafe;
    let root = Pmfs.root_dir fs in
    for i = 0 to 7 do
      let name = Printf.sprintf "f%d" i in
      let f = Pmfs.create_file fs ~parent:root ~name in
      Pmfs.write_file fs ~inode:f ~off:0 "data";
      Pmfs.unlink fs ~parent:root ~name
    done;
    Engine.program_end engine;
    let r = (Yat.sink yat).Sink.finish () in
    (List.length r.Bug.bugs, Yat.states_checked yat)
  in
  let clean_bugs, clean_states = run ~unsafe:false in
  Alcotest.(check int) "clean fs passes every crash state" 0 clean_bugs;
  Alcotest.(check bool) "states were actually explored" true (clean_states > 20);
  let unsafe_bugs, _ = run ~unsafe:true in
  Alcotest.(check bool) "unsafe unlink caught" true (unsafe_bugs > 0)

let test_workload_spec_clean () =
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  Workloads.Pmfs_wl.spec.Workloads.Workload.run (Workloads.Workload.params ~n:300 ()) engine;
  Alcotest.(check int) "pmfs workload clean" 0 (List.length (Pmdebugger.Detector.report d).Bug.bugs)

(* Property: a random op sequence keeps the durable image fsck-clean
   and the directory model consistent. *)
let prop_fs_random_ops =
  QCheck.Test.make ~name:"random fs ops keep durable image consistent" ~count:25
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 15)))
    (fun ops ->
      let engine, fs = fresh () in
      let root = Pmfs.root_dir fs in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (op, i) ->
          let name = Printf.sprintf "f%02d" i in
          match op with
          | 0 ->
              if not (Hashtbl.mem model name) then begin
                let f = Pmfs.create_file fs ~parent:root ~name in
                Hashtbl.replace model name f
              end
          | 1 -> (
              match Hashtbl.find_opt model name with
              | Some f -> Pmfs.write_file fs ~inode:f ~off:0 (Printf.sprintf "v%d" i)
              | None -> ())
          | _ ->
              if Hashtbl.mem model name then begin
                Pmfs.unlink fs ~parent:root ~name;
                Hashtbl.remove model name
              end)
        ops;
      let names = List.sort compare (Pmfs.readdir fs ~inode:root) in
      let expected = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model []) in
      names = expected && Pmfs.fsck (Pmem.Image.copy (Pmem.State.durable (Engine.pm engine))))

let suite =
  [
    Alcotest.test_case "mkdir/lookup/readdir" `Quick test_mkdir_lookup;
    Alcotest.test_case "file write/read" `Quick test_file_write_read;
    Alcotest.test_case "multi-block file" `Quick test_multi_block_file;
    Alcotest.test_case "unlink and reuse" `Quick test_unlink;
    Alcotest.test_case "error paths" `Quick test_errors;
    Alcotest.test_case "fsck on durable image" `Quick test_fsck_on_durable_image;
    Alcotest.test_case "fsck rejects corruption" `Quick test_fsck_rejects_corruption;
    Alcotest.test_case "unformatted device vacuous" `Quick test_unformatted_is_vacuous;
    Alcotest.test_case "journal recovery" `Quick test_journal_recovery;
    Alcotest.test_case "detector clean on fs" `Quick test_detector_clean_on_fs;
    Alcotest.test_case "yat clean vs unsafe unlink" `Quick test_yat_clean_vs_unsafe;
    Alcotest.test_case "pmfs workload clean" `Quick test_workload_spec_clean;
    QCheck_alcotest.to_alcotest prop_fs_random_ops;
  ]
