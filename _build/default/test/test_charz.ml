open Pmtrace

let st addr size = Event.Store { addr; size; tid = 0 }

let clf addr = Event.Clf { addr; size = 64; kind = Event.Clwb; tid = 0 }

let fence = Event.Fence { tid = 0 }

let test_distance_one () =
  (* store, clwb, fence: distance 1. *)
  let h = Charz.distance_histogram [| st 0 8; clf 0; fence |] in
  Alcotest.(check int) "one store counted" 1 h.Charz.total;
  Alcotest.(check int) "distance 1" 1 h.Charz.counts.(0)

let test_distance_two () =
  (* The Fig. 3 example: a fence intervenes before the store's CLF, so
     the guaranteeing fence is the second one. *)
  let h = Charz.distance_histogram [| st 0 8; fence; clf 0; fence |] in
  Alcotest.(check int) "distance 2" 1 h.Charz.counts.(1)

let test_distance_beyond () =
  let trace =
    Array.concat
      [ [| st 0 8 |]; Array.concat (List.init 6 (fun _ -> [| fence |])); [| clf 0; fence |] ]
  in
  let h = Charz.distance_histogram trace in
  Alcotest.(check int) "beyond bucket" 1 h.Charz.beyond

let test_never_persisted_excluded () =
  let h = Charz.distance_histogram [| st 0 8; fence |] in
  Alcotest.(check int) "no counted store" 0 h.Charz.total;
  Alcotest.(check int) "excluded" 1 h.Charz.never_persisted;
  (* Flushed but never fenced is also not guaranteed. *)
  let h = Charz.distance_histogram [| st 0 8; clf 0 |] in
  Alcotest.(check int) "flushed unfenced excluded" 1 h.Charz.never_persisted

let test_partial_coverage_requires_full_flush () =
  (* A two-line store needs both lines written back before a fence
     guarantees it. *)
  let h = Charz.distance_histogram [| st 60 10; clf 0; fence; clf 64; fence |] in
  Alcotest.(check int) "distance counts the second fence" 1 h.Charz.counts.(1)

let test_writeback_classes () =
  let trace =
    [|
      (* interval 1: two stores, same line -> collective *)
      st 0 8;
      st 8 8;
      clf 0;
      (* interval 2: stores on two lines -> dispersed *)
      st 64 8;
      st 128 8;
      clf 64;
      (* interval 3: no stores -> empty *)
      clf 128;
    |]
  in
  let c = Charz.writeback_classes trace in
  Alcotest.(check int) "collective" 1 c.Charz.collective;
  Alcotest.(check int) "dispersed" 1 c.Charz.dispersed;
  (* The trailing interval after the last CLF has no stores: empty. *)
  Alcotest.(check int) "empty" 2 c.Charz.empty;
  Alcotest.(check (float 0.01)) "fraction" 0.5 (Charz.collective_fraction c)

let test_instruction_mix () =
  let m = Charz.instruction_mix [| st 0 8; st 8 8; st 16 8; clf 0; fence; Event.Program_end |] in
  Alcotest.(check int) "stores" 3 m.Charz.stores;
  Alcotest.(check int) "writebacks" 1 m.Charz.writebacks;
  Alcotest.(check int) "fences" 1 m.Charz.fences;
  Alcotest.(check (float 0.01)) "store fraction" 0.6 (Charz.store_fraction m)

(* Property: distance-counted stores plus exclusions account for every
   store in the trace. *)
let prop_conservation =
  QCheck.Test.make ~name:"histogram conserves stores" ~count:200
    QCheck.(small_list (int_range 0 2))
    (fun ops ->
      let trace =
        Array.of_list
          (List.concat
             (List.mapi
                (fun i op ->
                  match op with
                  | 0 -> [ st (i * 8 mod 512) 8 ]
                  | 1 -> [ clf (Pmem.Addr.line_base (i * 8 mod 512)) ]
                  | _ -> [ fence ])
                ops))
      in
      let stores = Array.fold_left (fun acc ev -> if Event.is_store ev then acc + 1 else acc) 0 trace in
      let h = Charz.distance_histogram trace in
      h.Charz.total + h.Charz.never_persisted = stores
      && Array.fold_left ( + ) 0 h.Charz.counts + h.Charz.beyond = h.Charz.total)

let suite =
  [
    Alcotest.test_case "distance one" `Quick test_distance_one;
    Alcotest.test_case "distance two (Fig. 3)" `Quick test_distance_two;
    Alcotest.test_case "distance beyond" `Quick test_distance_beyond;
    Alcotest.test_case "never persisted excluded" `Quick test_never_persisted_excluded;
    Alcotest.test_case "partial coverage" `Quick test_partial_coverage_requires_full_flush;
    Alcotest.test_case "writeback classes" `Quick test_writeback_classes;
    Alcotest.test_case "instruction mix" `Quick test_instruction_mix;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
