open Pmtrace

let sample_trace () =
  Recorder.record (fun e ->
      Engine.register_pmem e ~base:0 ~size:4096;
      Engine.register_var e ~name:"head ptr" ~addr:0 ~size:8;
      Engine.call_marker e ~func:"main";
      Engine.epoch_begin e;
      Engine.store_i64 e ~addr:128 1L;
      Engine.tx_log e ~obj_addr:128 ~size:8;
      Engine.clflushopt e ~addr:128;
      Engine.sfence e;
      Engine.epoch_end e;
      Engine.strand_begin e ~strand:2;
      Engine.store_i64 e ~addr:256 2L;
      Engine.persist e ~addr:256 ~size:8;
      Engine.strand_end e ~strand:2;
      Engine.join_strand e;
      Engine.annotate e (Event.Assert_durable { addr = 128; size = 8 });
      Engine.annotate e (Event.Assert_ordered { first_addr = 128; first_size = 8; then_addr = 256; then_size = 8 });
      Engine.annotate e (Event.Assert_fresh { addr = 512; size = 8 });
      Engine.program_end e)

let test_roundtrip () =
  let trace = sample_trace () in
  match Trace_io.of_string (Trace_io.to_string trace) with
  | Error msg -> Alcotest.fail msg
  | Ok decoded ->
      Alcotest.(check int) "same length" (Array.length trace) (Array.length decoded);
      Array.iteri
        (fun i ev ->
          Alcotest.(check string)
            (Printf.sprintf "event %d" i)
            (Trace_io.event_to_line ev)
            (Trace_io.event_to_line decoded.(i)))
        trace

let test_comments_and_blanks () =
  match Trace_io.of_string "# a comment\n\nstore 0 128 8\n  \nfence 0\n" with
  | Ok trace -> Alcotest.(check int) "two events" 2 (Array.length trace)
  | Error msg -> Alcotest.fail msg

let test_malformed () =
  (match Trace_io.of_string "store 0 oops 8\n" with
  | Error msg -> Alcotest.(check bool) "line number in error" true (String.length msg > 0 && String.sub msg 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Trace_io.of_string "bogus_event 1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_file_roundtrip () =
  let trace = sample_trace () in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Trace_io.save path trace;
  (match Trace_io.load path with
  | Ok decoded -> Alcotest.(check int) "file roundtrip" (Array.length trace) (Array.length decoded)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_replay_of_decoded_trace () =
  (* A decoded trace must drive a detector identically to the original. *)
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:4096;
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.sfence e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.program_end e)
  in
  let decoded = match Trace_io.of_string (Trace_io.to_string trace) with Ok t -> t | Error m -> Alcotest.fail m in
  let report trace = Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) in
  let summary r = List.map (fun (b : Bug.t) -> (Bug.kind_name b.Bug.kind, b.Bug.addr)) r.Bug.bugs in
  Alcotest.(check (list (pair string int))) "identical findings" (summary (report trace)) (summary (report decoded))

let prop_event_roundtrip =
  let event_gen =
    QCheck.Gen.(
      let* tag = int_range 0 9 in
      let* addr = int_range 0 100_000 in
      let* size = int_range 1 256 in
      let* tid = int_range 0 7 in
      return
        (match tag with
        | 0 -> Event.Store { addr; size; tid }
        | 1 -> Event.Clf { addr; size; kind = Event.Clwb; tid }
        | 2 -> Event.Fence { tid }
        | 3 -> Event.Register_pmem { base = addr; size }
        | 4 -> Event.Epoch_begin { tid }
        | 5 -> Event.Epoch_end { tid }
        | 6 -> Event.Strand_begin { tid; strand = size }
        | 7 -> Event.Tx_log { obj_addr = addr; size; tid }
        | 8 -> Event.Annotation (Event.Assert_durable { addr; size })
        | _ -> Event.Program_end))
  in
  QCheck.Test.make ~name:"event line roundtrip" ~count:500 (QCheck.make event_gen) (fun ev ->
      match Trace_io.event_of_line (Trace_io.event_to_line ev) with
      | Ok (Some ev') -> Trace_io.event_to_line ev = Trace_io.event_to_line ev'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "decoded trace replays identically" `Quick test_replay_of_decoded_trace;
    QCheck_alcotest.to_alcotest prop_event_roundtrip;
  ]
