open Pmtrace

let test_engine_pm_coupling () =
  let e = Engine.create () in
  Engine.store_i64 e ~addr:100 7L;
  Alcotest.(check int64) "load sees store" 7L (Engine.load_i64 e ~addr:100);
  Alcotest.(check int64) "not durable yet" 0L (Pmem.Image.get_i64 (Pmem.State.durable (Engine.pm e)) 100);
  Engine.persist e ~addr:100 ~size:8;
  Alcotest.(check int64) "durable after persist" 7L (Pmem.Image.get_i64 (Pmem.State.durable (Engine.pm e)) 100)

let test_event_counters () =
  let e = Engine.create () in
  Engine.store_i64 e ~addr:0 1L;
  Engine.store_i64 e ~addr:64 2L;
  Engine.flush_range e ~addr:0 ~size:128;
  Engine.sfence e;
  Alcotest.(check int) "stores" 2 (Engine.n_stores e);
  Alcotest.(check int) "clfs cover two lines" 2 (Engine.n_clfs e);
  Alcotest.(check int) "fences" 1 (Engine.n_fences e)

let test_instrumentation_toggle () =
  let e = Engine.create () in
  let seen = ref 0 in
  Engine.attach e
    (Sink.make ~name:"c" ~on_event:(fun _ -> incr seen) ~finish:(fun () -> Bug.empty_report "c"));
  Engine.store_i64 e ~addr:0 1L;
  Engine.set_instrumentation e false;
  Engine.store_i64 e ~addr:8 2L;
  Engine.set_instrumentation e true;
  Engine.store_i64 e ~addr:16 3L;
  Alcotest.(check int) "only instrumented events dispatched" 2 !seen;
  (* PM semantics apply regardless of instrumentation. *)
  Alcotest.(check int64) "uninstrumented store still lands" 2L (Engine.load_i64 e ~addr:8)

let test_multiple_sinks () =
  let e = Engine.create () in
  let a = ref 0 and b = ref 0 in
  Engine.attach e (Sink.make ~name:"a" ~on_event:(fun _ -> incr a) ~finish:(fun () -> Bug.empty_report "a"));
  Engine.attach e (Sink.make ~name:"b" ~on_event:(fun _ -> incr b) ~finish:(fun () -> Bug.empty_report "b"));
  Engine.store_i64 e ~addr:0 1L;
  Alcotest.(check int) "both sinks see events" !a !b

let test_record_replay_equivalence () =
  let program e =
    Engine.register_pmem e ~base:0 ~size:4096;
    Engine.store_i64 e ~addr:128 1L;
    Engine.clwb e ~addr:128;
    Engine.clwb e ~addr:128;
    Engine.sfence e;
    Engine.store_i64 e ~addr:256 2L;
    Engine.program_end e
  in
  (* Live detection... *)
  let e = Engine.create () in
  let live = Pmdebugger.Detector.create () in
  Engine.attach e (Pmdebugger.Detector.sink live);
  program e;
  let live_report = Pmdebugger.Detector.report live in
  (* ...must equal replayed detection. *)
  let trace = Recorder.record program in
  let replayed = Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) in
  let summary (r : Bug.report) = List.map (fun (b : Bug.t) -> (Bug.kind_name b.Bug.kind, b.Bug.addr)) r.Bug.bugs in
  Alcotest.(check (list (pair string int))) "live = replay" (summary live_report) (summary replayed)

let test_interleave_round_robin () =
  let t1 = [| Event.Fence { tid = 1 }; Event.Fence { tid = 1 } |] in
  let t2 = [| Event.Fence { tid = 2 } |] in
  let merged = Recorder.interleave_round_robin [ t1; t2 ] in
  Alcotest.(check int) "all events kept" 3 (Array.length merged);
  Alcotest.(check int) "starts with t1" 1 (Event.tid merged.(0));
  Alcotest.(check int) "then t2" 2 (Event.tid merged.(1));
  Alcotest.(check int) "then t1 remainder" 1 (Event.tid merged.(2))

let test_trace_stats () =
  let trace = Recorder.record (fun e ->
      Engine.store_i64 e ~addr:0 1L;
      Engine.persist e ~addr:0 ~size:8)
  in
  let stats = Recorder.stats trace in
  Alcotest.(check int) "stores" 1 (List.assoc "stores" stats);
  Alcotest.(check int) "clfs" 1 (List.assoc "clfs" stats);
  Alcotest.(check int) "fences" 1 (List.assoc "fences" stats)

let test_order_config_parse () =
  let module OC = Pmdebugger.Order_config in
  (match OC.parse "# comment\norder data before valid\nstrand-order A before B\norder x before y at commit\n" with
  | Ok cfg ->
      Alcotest.(check int) "three entries" 3 (List.length (OC.entries cfg));
      let roundtrip = OC.parse_exn (OC.to_string cfg) in
      Alcotest.(check bool) "roundtrip" true (OC.entries roundtrip = OC.entries cfg)
  | Error msg -> Alcotest.fail msg);
  match OC.parse "order broken line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_bug_report_helpers () =
  let bugs = [ Bug.make ~addr:1 Bug.No_durability; Bug.make ~addr:2 Bug.No_durability; Bug.make Bug.Redundant_flush ] in
  let r = { Bug.detector = "x"; bugs; events_processed = 10; stats = [] } in
  Alcotest.(check int) "count_kind" 2 (Bug.count_kind r Bug.No_durability);
  Alcotest.(check bool) "has_kind" true (Bug.has_kind r Bug.Redundant_flush);
  Alcotest.(check int) "kinds_found" 2 (List.length (Bug.kinds_found r));
  Alcotest.(check int) "ten kinds total" 10 (List.length Bug.all_kinds)

let suite =
  [
    Alcotest.test_case "engine/pm coupling" `Quick test_engine_pm_coupling;
    Alcotest.test_case "event counters" `Quick test_event_counters;
    Alcotest.test_case "instrumentation toggle" `Quick test_instrumentation_toggle;
    Alcotest.test_case "multiple sinks" `Quick test_multiple_sinks;
    Alcotest.test_case "record/replay equivalence" `Quick test_record_replay_equivalence;
    Alcotest.test_case "interleave round robin" `Quick test_interleave_round_robin;
    Alcotest.test_case "trace stats" `Quick test_trace_stats;
    Alcotest.test_case "order config parsing" `Quick test_order_config_parse;
    Alcotest.test_case "bug report helpers" `Quick test_bug_report_helpers;
  ]
