open Pmem

let test_roundtrip () =
  let img = Image.create () in
  Image.set_i64 img 100 0x1122334455667788L;
  Alcotest.(check int64) "i64 roundtrip" 0x1122334455667788L (Image.get_i64 img 100);
  Image.set_int img 200 424242;
  Alcotest.(check int) "int roundtrip" 424242 (Image.get_int img 200);
  Image.set_string img ~addr:300 "hello";
  Alcotest.(check string) "string roundtrip" "hello" (Image.get_string img ~addr:300 ~len:5);
  Image.set_u8 img 400 0x7F;
  Alcotest.(check int) "u8 roundtrip" 0x7F (Image.get_u8 img 400)

let test_growth () =
  let img = Image.create ~initial_size:64 () in
  Image.set_i64 img 100_000 7L;
  Alcotest.(check int64) "write far beyond initial size" 7L (Image.get_i64 img 100_000);
  Alcotest.(check bool) "capacity grew" true (Image.capacity img > 100_000)

let test_unwritten_reads_zero () =
  let img = Image.create () in
  Alcotest.(check int64) "unwritten is zero" 0L (Image.get_i64 img 5000);
  Alcotest.(check int) "read beyond capacity is zero" 0 (Image.get_u8 img 10_000_000)

let test_copy_independent () =
  let img = Image.create () in
  Image.set_int img 0 1;
  let snap = Image.copy img in
  Image.set_int img 0 2;
  Alcotest.(check int) "copy unaffected" 1 (Image.get_int snap 0);
  Alcotest.(check int) "original changed" 2 (Image.get_int img 0)

let test_blit_line () =
  let src = Image.create () and dst = Image.create () in
  Image.set_i64 src 128 9L;
  Image.set_i64 src 192 10L;
  Image.blit_line ~src ~dst ~line:2;
  Alcotest.(check int64) "line 2 copied" 9L (Image.get_i64 dst 128);
  Alcotest.(check int64) "line 3 untouched" 0L (Image.get_i64 dst 192);
  Alcotest.(check bool) "equal_range on copied line" true (Image.equal_range src dst ~lo:128 ~hi:192)

let prop_write_read =
  QCheck.Test.make ~name:"write then read returns the bytes" ~count:200
    QCheck.(pair (int_range 0 5000) (string_of_size (QCheck.Gen.int_range 1 100)))
    (fun (addr, s) ->
      let img = Image.create () in
      Image.set_string img ~addr s;
      Image.get_string img ~addr ~len:(String.length s) = s)

let suite =
  [
    Alcotest.test_case "typed roundtrips" `Quick test_roundtrip;
    Alcotest.test_case "growth on demand" `Quick test_growth;
    Alcotest.test_case "unwritten reads zero" `Quick test_unwritten_reads_zero;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "blit_line" `Quick test_blit_line;
    QCheck_alcotest.to_alcotest prop_write_read;
  ]
