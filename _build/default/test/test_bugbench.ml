open Pmtrace

(* The headline reproduction check: the Table 6 matrix and Sec 7.3
   rates must come out exactly as in the paper. *)

let paper_counts =
  [
    (Bug.No_durability, 44);
    (Bug.Multiple_overwrites, 2);
    (Bug.No_order_guarantee, 4);
    (Bug.Redundant_flush, 6);
    (Bug.Flush_nothing, 3);
    (Bug.Redundant_logging, 5);
    (Bug.Lack_durability_in_epoch, 4);
    (Bug.Redundant_epoch_fence, 4);
    (Bug.Lack_ordering_in_strands, 2);
    (Bug.Cross_failure_semantic, 4);
  ]

let test_dataset_shape () =
  Alcotest.(check int) "78 buggy cases" 78 (List.length Bugbench.Cases.buggy);
  List.iter
    (fun (kind, expected) ->
      Alcotest.(check int) (Bug.kind_name kind ^ " case count") expected (Bugbench.Cases.count_by_kind kind))
    paper_counts;
  (* Case ids are unique. *)
  let ids = List.map (fun (c : Bugbench.Cases.t) -> c.Bugbench.Cases.id) Bugbench.Cases.all in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let results = lazy (Bugbench.Eval.evaluate_all ())

let find_result tool = List.find (fun r -> r.Bugbench.Eval.tool = tool) (Lazy.force results)

let check_tool tool ~detected ~kinds ~fn_rate =
  let r = find_result tool in
  Alcotest.(check int) (Bugbench.Eval.tool_name tool ^ " detections") detected r.Bugbench.Eval.detected_total;
  Alcotest.(check int) (Bugbench.Eval.tool_name tool ^ " kinds") kinds r.Bugbench.Eval.kinds_covered;
  Alcotest.(check (float 0.005)) (Bugbench.Eval.tool_name tool ^ " FN rate") fn_rate r.Bugbench.Eval.false_negative_rate;
  Alcotest.(check (list string)) (Bugbench.Eval.tool_name tool ^ " no false positives") [] r.Bugbench.Eval.false_positives

(* Paper: PMDebugger 78 bugs / 10 types / no false negatives. *)
let test_pmdebugger_row () = check_tool Bugbench.Eval.PMDebugger ~detected:78 ~kinds:10 ~fn_rate:0.0

(* Paper: Pmemcheck 55 bugs / 4 types / 29.5% FN. *)
let test_pmemcheck_row () = check_tool Bugbench.Eval.Pmemcheck ~detected:55 ~kinds:4 ~fn_rate:0.295

(* Paper: PMTest 61 bugs / 5 types / 21.8% FN. *)
let test_pmtest_row () = check_tool Bugbench.Eval.PMTest ~detected:61 ~kinds:5 ~fn_rate:0.218

(* Paper: XFDetector 65 bugs / 6 types / 16.7% FN. *)
let test_xfdetector_row () = check_tool Bugbench.Eval.XFDetector ~detected:65 ~kinds:6 ~fn_rate:0.167

let test_per_kind_columns () =
  (* Table 6 checkmark pattern: which kinds each tool covers at all. *)
  let covered tool kind =
    let r = find_result tool in
    let _, d, _ = List.find (fun (k, _, _) -> k = kind) r.Bugbench.Eval.per_kind in
    d > 0
  in
  let expect tool kind yes =
    Alcotest.(check bool)
      (Printf.sprintf "%s x %s" (Bugbench.Eval.tool_name tool) (Bug.kind_name kind))
      yes (covered tool kind)
  in
  let open Bugbench.Eval in
  (* Pmemcheck row of Table 6. *)
  expect Pmemcheck Bug.No_durability true;
  expect Pmemcheck Bug.Multiple_overwrites true;
  expect Pmemcheck Bug.No_order_guarantee false;
  expect Pmemcheck Bug.Redundant_flush true;
  expect Pmemcheck Bug.Flush_nothing true;
  expect Pmemcheck Bug.Redundant_logging false;
  expect Pmemcheck Bug.Cross_failure_semantic false;
  (* PMTest row. *)
  expect PMTest Bug.No_order_guarantee true;
  expect PMTest Bug.Flush_nothing false;
  expect PMTest Bug.Redundant_logging true;
  expect PMTest Bug.Cross_failure_semantic false;
  (* XFDetector row. *)
  expect XFDetector Bug.No_order_guarantee true;
  expect XFDetector Bug.Flush_nothing false;
  expect XFDetector Bug.Cross_failure_semantic true;
  (* Relaxed-model kinds are PMDebugger-only. *)
  List.iter
    (fun kind ->
      expect PMDebugger kind true;
      expect Pmemcheck kind false;
      expect PMTest kind false;
      expect XFDetector kind false)
    [ Bug.Lack_durability_in_epoch; Bug.Redundant_epoch_fence; Bug.Lack_ordering_in_strands ]

let test_every_case_single_expected_kind_detected () =
  (* PMDebugger must flag each case with its ground-truth kind, not just
     any bug. *)
  List.iter
    (fun (c : Bugbench.Cases.t) ->
      let r = Bugbench.Eval.run_case Bugbench.Eval.PMDebugger c in
      Alcotest.(check bool) (c.Bugbench.Cases.id ^ " detected as expected kind") true (Bugbench.Eval.detected c r))
    Bugbench.Cases.buggy

let test_clean_cases_pass_extension_tools () =
  (* The clean controls must also satisfy the two Table 1 tools that
     sit outside the Table 6 matrix. *)
  List.iter
    (fun (c : Bugbench.Cases.t) ->
      let engine = Pmtrace.Engine.create () in
      let pi = Baselines.Persistence_inspector.create () in
      let sink = Baselines.Persistence_inspector.sink pi in
      Pmtrace.Engine.attach engine sink;
      c.Bugbench.Cases.run engine;
      Pmtrace.Engine.program_end engine;
      let r = sink.Pmtrace.Sink.finish () in
      Alcotest.(check int) (c.Bugbench.Cases.id ^ " clean under inspector") 0 (List.length r.Bug.bugs))
    Bugbench.Cases.clean

let suite =
  [
    Alcotest.test_case "dataset shape (Table 6 counts)" `Quick test_dataset_shape;
    Alcotest.test_case "clean cases pass extension tools" `Quick test_clean_cases_pass_extension_tools;
    Alcotest.test_case "PMDebugger row" `Slow test_pmdebugger_row;
    Alcotest.test_case "Pmemcheck row" `Slow test_pmemcheck_row;
    Alcotest.test_case "PMTest row" `Slow test_pmtest_row;
    Alcotest.test_case "XFDetector row" `Slow test_xfdetector_row;
    Alcotest.test_case "per-kind capability columns" `Slow test_per_kind_columns;
    Alcotest.test_case "every case detected by PMDebugger" `Slow test_every_case_single_expected_kind_detected;
  ]
