open Pmtrace
open Minipmdk

let mk_engine () =
  let engine = Engine.create () in
  (engine, Pool.create engine ~size:(8 lsl 20) ~log_capacity:(1 lsl 16))

let test_pool_layout () =
  let engine, pool = mk_engine () in
  Alcotest.(check int64) "magic persisted" Pool.magic
    (Pmem.Image.get_i64 (Pmem.State.durable (Engine.pm engine)) Pool.off_magic);
  Alcotest.(check bool) "heap starts after log" true (Pool.heap_start pool = Pool.log_area_off + Pool.log_capacity pool)

let test_alloc_alignment () =
  let _, pool = mk_engine () in
  let a = Pool.alloc_raw pool ~size:24 in
  let b = Pool.alloc_raw pool ~size:24 in
  Alcotest.(check bool) "sequential and disjoint" true (b >= a + 24);
  let c = Pool.alloc_raw ~align:64 pool ~size:32 in
  Alcotest.(check int) "line aligned" 0 (c mod 64)

let test_root_idempotent () =
  let _, pool = mk_engine () in
  let r1 = Pool.root pool ~size:64 in
  let r2 = Pool.root pool ~size:64 in
  Alcotest.(check int) "same root" r1 r2

let test_tx_commit_durability () =
  let engine, pool = mk_engine () in
  let obj = Pool.alloc_raw pool ~size:16 in
  Pool.persist_heap_top pool;
  let tx = Tx.begin_tx pool in
  Tx.store_int tx ~addr:obj 11;
  Tx.store_int tx ~addr:(obj + 8) 22;
  Tx.commit tx;
  let dur = Pmem.State.durable (Engine.pm engine) in
  Alcotest.(check int) "field 1 durable" 11 (Pmem.Image.get_int dur obj);
  Alcotest.(check int) "field 2 durable" 22 (Pmem.Image.get_int dur (obj + 8));
  Alcotest.(check int) "log truncated" 0 (Pool.read_log_top dur)

let test_tx_abort_restores () =
  let engine, pool = mk_engine () in
  let obj = Pool.alloc_raw pool ~size:8 in
  Engine.store_int engine ~addr:obj 1;
  Engine.persist engine ~addr:obj ~size:8;
  let tx = Tx.begin_tx pool in
  Tx.store_int tx ~addr:obj 99;
  Alcotest.(check int) "volatile sees new value" 99 (Engine.load_int engine ~addr:obj);
  Tx.abort tx;
  Alcotest.(check int) "abort restored old value" 1 (Engine.load_int engine ~addr:obj);
  Alcotest.(check int) "restored value durable" 1 (Pmem.Image.get_int (Pmem.State.durable (Engine.pm engine)) obj)

let test_nested_tx () =
  let engine, pool = mk_engine () in
  let obj = Pool.alloc_raw pool ~size:8 in
  Pool.persist_heap_top pool;
  let outer = Tx.begin_tx pool in
  Tx.store_int outer ~addr:obj 5;
  let inner = Tx.begin_tx pool in
  ignore inner;
  Alcotest.(check bool) "still in tx" true (Pool.in_tx pool);
  Tx.commit outer (* inner commit *);
  Alcotest.(check bool) "inner commit keeps tx open" true (Pool.in_tx pool);
  Tx.commit outer;
  Alcotest.(check bool) "outer commit closes" false (Pool.in_tx pool);
  Alcotest.(check int) "value durable" 5 (Pmem.Image.get_int (Pmem.State.durable (Engine.pm engine)) obj)

let test_add_range_dedup () =
  let engine, pool = mk_engine () in
  let obj = Pool.alloc_raw pool ~size:16 in
  Pool.persist_heap_top pool;
  let recorded = ref 0 in
  Engine.attach engine
    (Sink.make ~name:"count"
       ~on_event:(fun ev -> match ev with Event.Tx_log _ -> incr recorded | _ -> ())
       ~finish:(fun () -> Bug.empty_report "count"));
  let tx = Tx.begin_tx pool in
  Tx.add_range tx ~addr:obj ~size:16;
  Tx.add_range tx ~addr:obj ~size:16;
  Tx.add_range tx ~addr:(obj + 4) ~size:4;
  Tx.commit tx;
  Alcotest.(check int) "covered ranges logged once" 1 !recorded

let test_tx_single_fence_inside_epoch () =
  let engine, pool = mk_engine () in
  let obj = Pool.alloc_raw pool ~size:8 in
  Pool.persist_heap_top pool;
  let fences_in_epoch = ref 0 and depth = ref 0 in
  Engine.attach engine
    (Sink.make ~name:"count"
       ~on_event:(fun ev ->
         match ev with
         | Event.Epoch_begin _ -> incr depth
         | Event.Epoch_end _ -> decr depth
         | Event.Fence _ when !depth > 0 -> incr fences_in_epoch
         | _ -> ())
       ~finish:(fun () -> Bug.empty_report "count"));
  let tx = Tx.begin_tx pool in
  Tx.store_int tx ~addr:obj 1;
  Tx.commit tx;
  Alcotest.(check int) "exactly one fence inside the epoch" 1 !fences_in_epoch

(* Crash atomicity: whatever subset of cache lines survives a crash,
   recovery restores either the pre-tx or the post-tx state. *)
let crash_atomicity_once seed =
  let engine, pool = mk_engine () in
  let rng = Workloads.Prng.create seed in
  let obj = Pool.alloc_raw pool ~size:64 in
  for i = 0 to 7 do
    Engine.store_int engine ~addr:(obj + (8 * i)) i
  done;
  Engine.persist engine ~addr:obj ~size:64;
  let old_values = List.init 8 (fun i -> i) in
  let new_values = List.init 8 (fun _ -> 100 + Workloads.Prng.below rng 100) in
  let tx = Tx.begin_tx pool in
  List.iteri (fun i v -> Tx.store_int tx ~addr:(obj + (8 * i)) v) new_values;
  (* Crash mid-transaction (before commit). *)
  let mid_images = Pmem.State.crash_images (Engine.pm engine) ~max_images:16 () in
  Tx.commit tx;
  let post_images = Pmem.State.crash_images (Engine.pm engine) ~max_images:16 () in
  let consistent img =
    if Tx.needs_recovery img then Tx.recover img;
    let values = List.init 8 (fun i -> Pmem.Image.get_int img (obj + (8 * i))) in
    values = old_values || values = new_values
  in
  List.for_all consistent mid_images && List.for_all consistent post_images

let prop_tx_crash_atomicity =
  QCheck.Test.make ~name:"tx crash atomicity under sampled crash images" ~count:25 QCheck.small_int (fun seed ->
      crash_atomicity_once (seed + 1))

let test_atomic_alloc () =
  let engine, pool = mk_engine () in
  let off =
    Atomic.alloc pool ~size:24 ~init:(fun off ->
        Engine.store_int engine ~addr:off 1;
        Engine.store_int engine ~addr:(off + 8) 2;
        Engine.store_int engine ~addr:(off + 16) 3)
  in
  let dur = Pmem.State.durable (Engine.pm engine) in
  Alcotest.(check int) "object durable" 2 (Pmem.Image.get_int dur (off + 8));
  Alcotest.(check int) "frontier durable" (Pool.read_heap_top dur) (Pool.heap_top pool)

(* End-to-end property: arbitrary well-formed transactional programs
   are bug-free under PMDebugger's epoch-model rules. *)
let prop_random_tx_programs_clean =
  QCheck.Test.make ~name:"random transactional programs are clean" ~count:60
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 15)))
    (fun ops ->
      let engine = Engine.create () in
      let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Epoch () in
      Engine.attach engine (Pmdebugger.Detector.sink d);
      let pool = Pool.create engine ~size:(8 lsl 20) ~log_capacity:(1 lsl 16) in
      let obj = Pool.alloc_raw pool ~size:256 in
      Pool.persist_heap_top pool;
      List.iter
        (fun (op, slot) ->
          let addr = obj + (slot * 16) in
          match op with
          | 0 ->
              let tx = Tx.begin_tx pool in
              Tx.store_int tx ~addr slot;
              Tx.commit tx
          | 1 ->
              let tx = Tx.begin_tx pool in
              Tx.store_int tx ~addr slot;
              Tx.store_int tx ~addr:(addr + 8) (slot * 2);
              (* Nested no-op transaction. *)
              let inner = Tx.begin_tx pool in
              Tx.commit inner;
              Tx.commit tx
          | _ -> Atomic.publish_int pool ~addr slot)
        ops;
      Engine.program_end engine;
      (Pmdebugger.Detector.report d).Bug.bugs = [])

let prop_aborted_tx_programs_clean =
  QCheck.Test.make ~name:"aborted transactions are clean and restore" ~count:40
    QCheck.(small_list (int_range 0 15))
    (fun slots ->
      let engine = Engine.create () in
      let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Epoch () in
      Engine.attach engine (Pmdebugger.Detector.sink d);
      let pool = Pool.create engine ~size:(8 lsl 20) ~log_capacity:(1 lsl 16) in
      let obj = Pool.alloc_raw pool ~size:256 in
      Pool.persist_heap_top pool;
      Engine.store_bytes engine ~addr:obj (Bytes.make 256 '\000');
      Engine.persist engine ~addr:obj ~size:256;
      List.iter
        (fun slot ->
          let tx = Tx.begin_tx pool in
          Tx.store_int tx ~addr:(obj + (slot * 16)) 999;
          Tx.abort tx)
        slots;
      Engine.program_end engine;
      (Pmdebugger.Detector.report d).Bug.bugs = []
      && List.for_all (fun slot -> Engine.load_int engine ~addr:(obj + (slot * 16)) = 0) slots)

let suite =
  [
    Alcotest.test_case "pool layout" `Quick test_pool_layout;
    Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
    Alcotest.test_case "root idempotent" `Quick test_root_idempotent;
    Alcotest.test_case "tx commit durability" `Quick test_tx_commit_durability;
    Alcotest.test_case "tx abort restores" `Quick test_tx_abort_restores;
    Alcotest.test_case "nested tx" `Quick test_nested_tx;
    Alcotest.test_case "add_range dedup" `Quick test_add_range_dedup;
    Alcotest.test_case "tx fences once inside epoch" `Quick test_tx_single_fence_inside_epoch;
    Alcotest.test_case "atomic alloc" `Quick test_atomic_alloc;
    QCheck_alcotest.to_alcotest prop_tx_crash_atomicity;
    QCheck_alcotest.to_alcotest prop_random_tx_programs_clean;
    QCheck_alcotest.to_alcotest prop_aborted_tx_programs_clean;
  ]
