open Pmtrace
module D = Pmdebugger.Detector
module OC = Pmdebugger.Order_config

(* Run a program against a fresh engine with a PMDebugger instance
   attached; returns the report. *)
let run ?model ?config ?recovery ?(crash_every_fence = false) program =
  let engine = Engine.create () in
  let d =
    D.create ?model ?config ~pm:(Engine.pm engine) ?recovery ~crash_check_every_fence:crash_every_fence ()
  in
  Engine.attach engine (D.sink d);
  Engine.register_pmem engine ~base:0 ~size:65536;
  program engine;
  Engine.program_end engine;
  D.report d

let kinds r = Bug.kinds_found r

let check_kinds name expected r = Alcotest.(check (list string)) name expected (List.map Bug.kind_name (kinds r))

let test_clean_program () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.persist e ~addr:128 ~size:8)
  in
  check_kinds "no bugs" [] r

let test_missing_clf () =
  let r = run (fun e -> Engine.store_i64 e ~addr:128 1L) in
  check_kinds "missing clf" [ "no-durability-guarantee" ] r;
  let b = List.hd r.Bug.bugs in
  Alcotest.(check int) "address" 128 b.Bug.addr;
  Alcotest.(check bool) "detail says missing CLF" true
    (String.length b.Bug.detail > 0 && String.sub b.Bug.detail 0 5 = "never")

let test_missing_fence () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128)
  in
  check_kinds "missing fence" [ "no-durability-guarantee" ] r

let test_multiple_overwrites_strict_only () =
  let program e =
    Engine.store_i64 e ~addr:128 1L;
    Engine.store_i64 e ~addr:128 2L;
    Engine.persist e ~addr:128 ~size:8
  in
  let strict = run ~model:D.Strict program in
  Alcotest.(check bool) "strict flags overwrite" true (Bug.has_kind strict Bug.Multiple_overwrites);
  let epoch = run ~model:D.Epoch program in
  Alcotest.(check bool) "relaxed model does not" false (Bug.has_kind epoch Bug.Multiple_overwrites)

let test_overwrite_after_durability_is_fine () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.persist e ~addr:128 ~size:8;
        Engine.store_i64 e ~addr:128 2L;
        Engine.persist e ~addr:128 ~size:8)
  in
  check_kinds "rewrite after persist ok" [] r

let test_redundant_flush () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.sfence e)
  in
  Alcotest.(check bool) "redundant" true (Bug.has_kind r Bug.Redundant_flush)

let test_useful_second_flush_not_redundant () =
  let r =
    run (fun e ->
        (* Flush, new store to the same line, flush again: second flush
           persists the new store — not redundant. *)
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128;
        Engine.store_i64 e ~addr:136 2L;
        Engine.clwb e ~addr:128;
        Engine.sfence e)
  in
  Alcotest.(check bool) "not redundant" false (Bug.has_kind r Bug.Redundant_flush)

let test_flush_nothing () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.persist e ~addr:128 ~size:8;
        Engine.clwb e ~addr:4096;
        Engine.sfence e)
  in
  Alcotest.(check bool) "flush nothing" true (Bug.has_kind r Bug.Flush_nothing)

let order_cfg = OC.add OC.empty (OC.order ~first:"data" ~next:"valid" ())

let with_vars program e =
  Engine.register_var e ~name:"data" ~addr:1024 ~size:8;
  Engine.register_var e ~name:"valid" ~addr:2048 ~size:8;
  program e

let test_order_violation () =
  let r =
    run ~config:order_cfg
      (with_vars (fun e ->
           Engine.store_i64 e ~addr:1024 1L;
           Engine.store_i64 e ~addr:2048 1L;
           Engine.persist e ~addr:2048 ~size:8;
           Engine.persist e ~addr:1024 ~size:8))
  in
  Alcotest.(check bool) "order violated" true (Bug.has_kind r Bug.No_order_guarantee)

let test_order_respected () =
  let r =
    run ~config:order_cfg
      (with_vars (fun e ->
           Engine.store_i64 e ~addr:1024 1L;
           Engine.persist e ~addr:1024 ~size:8;
           Engine.store_i64 e ~addr:2048 1L;
           Engine.persist e ~addr:2048 ~size:8))
  in
  check_kinds "order respected" [] r

let test_order_func_gate () =
  let cfg = OC.add OC.empty (OC.order ~func:"commit" ~first:"data" ~next:"valid" ()) in
  let violate e =
    Engine.store_i64 e ~addr:1024 1L;
    Engine.store_i64 e ~addr:2048 1L;
    Engine.persist e ~addr:2048 ~size:8;
    Engine.persist e ~addr:1024 ~size:8
  in
  let quiet = run ~config:cfg (with_vars violate) in
  Alcotest.(check bool) "gate closed: silent" false (Bug.has_kind quiet Bug.No_order_guarantee);
  let loud =
    run ~config:cfg
      (with_vars (fun e ->
           Engine.call_marker e ~func:"commit";
           violate e))
  in
  Alcotest.(check bool) "gate open: flagged" true (Bug.has_kind loud Bug.No_order_guarantee)

let test_epoch_rules () =
  let redundant_fence e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.persist e ~addr:128 ~size:8;
    Engine.store_i64 e ~addr:256 2L;
    Engine.persist e ~addr:256 ~size:8;
    Engine.epoch_end e
  in
  let r = run ~model:D.Epoch redundant_fence in
  check_kinds "two fences in epoch" [ "redundant-epoch-fence" ] r;
  let lack_durability e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.sfence e;
    Engine.epoch_end e;
    Engine.persist e ~addr:128 ~size:8
  in
  let r = run ~model:D.Epoch lack_durability in
  check_kinds "unpersisted at epoch end" [ "lack-durability-in-epoch" ] r;
  let clean e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.clwb e ~addr:128;
    Engine.sfence e;
    Engine.epoch_end e
  in
  check_kinds "clean epoch" [] (run ~model:D.Epoch clean)

let test_nested_epochs_collapse () =
  let r =
    run ~model:D.Epoch (fun e ->
        Engine.epoch_begin e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:128 1L;
        Engine.epoch_end e;
        (* Still inside the outer epoch: no checks yet. *)
        Engine.clwb e ~addr:128;
        Engine.sfence e;
        Engine.epoch_end e)
  in
  check_kinds "nested epochs are one section" [] r

let test_redundant_logging () =
  let r =
    run ~model:D.Epoch (fun e ->
        Engine.epoch_begin e;
        Engine.tx_log e ~obj_addr:512 ~size:16;
        Engine.store_i64 e ~addr:512 1L;
        Engine.tx_log e ~obj_addr:512 ~size:16;
        Engine.persist e ~addr:512 ~size:8;
        Engine.epoch_end e)
  in
  Alcotest.(check bool) "redundant logging" true (Bug.has_kind r Bug.Redundant_logging);
  let clean =
    run ~model:D.Epoch (fun e ->
        Engine.epoch_begin e;
        Engine.tx_log e ~obj_addr:512 ~size:16;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.epoch_end e;
        Engine.epoch_begin e;
        (* Same object logged again in a NEW transaction: legal. *)
        Engine.tx_log e ~obj_addr:512 ~size:16;
        Engine.store_i64 e ~addr:512 2L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.epoch_end e)
  in
  Alcotest.(check bool) "fresh tx may relog" false (Bug.has_kind clean Bug.Redundant_logging)

let strand_cfg = OC.add OC.empty (OC.strand_order ~first:"A" ~next:"B")

let test_strand_ordering () =
  let violate e =
    Engine.register_var e ~name:"A" ~addr:512 ~size:8;
    Engine.register_var e ~name:"B" ~addr:1024 ~size:8;
    Engine.strand_begin e ~strand:0;
    Engine.store_i64 e ~addr:512 1L;
    Engine.store_i64 e ~addr:1024 2L;
    Engine.clwb e ~addr:512;
    Engine.strand_end e ~strand:0;
    Engine.strand_begin e ~strand:1;
    Engine.clwb e ~addr:1024;
    Engine.sfence e;
    Engine.strand_end e ~strand:1;
    Engine.strand_begin e ~strand:0;
    Engine.sfence e;
    Engine.strand_end e ~strand:0
  in
  let r = run ~model:D.Strand ~config:strand_cfg violate in
  Alcotest.(check bool) "strand order violated" true (Bug.has_kind r Bug.Lack_ordering_in_strands);
  Alcotest.(check bool) "no spurious flush-nothing across strands" false (Bug.has_kind r Bug.Flush_nothing);
  Alcotest.(check bool) "no spurious no-durability" false (Bug.has_kind r Bug.No_durability);
  let respect e =
    Engine.register_var e ~name:"A" ~addr:512 ~size:8;
    Engine.register_var e ~name:"B" ~addr:1024 ~size:8;
    Engine.strand_begin e ~strand:0;
    Engine.store_i64 e ~addr:512 1L;
    Engine.persist e ~addr:512 ~size:8;
    Engine.strand_end e ~strand:0;
    Engine.strand_begin e ~strand:1;
    Engine.store_i64 e ~addr:1024 2L;
    Engine.persist e ~addr:1024 ~size:8;
    Engine.strand_end e ~strand:1
  in
  check_kinds "ordered strands clean" [] (run ~model:D.Strand ~config:strand_cfg respect)

let test_cross_failure () =
  let magic = 77L in
  let recovery img =
    let flag = Pmem.Image.get_i64 img 0 in
    flag = 0L || Pmem.Image.get_i64 img 64 = magic
  in
  let buggy e =
    Engine.store_i64 e ~addr:0 1L;
    Engine.persist e ~addr:0 ~size:8;
    Engine.store_i64 e ~addr:64 magic;
    Engine.persist e ~addr:64 ~size:8
  in
  let r = run ~recovery ~crash_every_fence:true buggy in
  Alcotest.(check bool) "cross-failure caught" true (Bug.has_kind r Bug.Cross_failure_semantic);
  let correct e =
    Engine.store_i64 e ~addr:64 magic;
    Engine.persist e ~addr:64 ~size:8;
    Engine.store_i64 e ~addr:0 1L;
    Engine.persist e ~addr:0 ~size:8
  in
  check_kinds "correct order clean" [] (run ~recovery ~crash_every_fence:true correct)

let test_registered_ranges_gate_tracking () =
  let engine = Engine.create () in
  let d = D.create () in
  Engine.attach engine (D.sink d);
  Engine.register_pmem engine ~base:0 ~size:1024;
  (* A store outside the registered PM range is volatile memory. *)
  Engine.store_i64 engine ~addr:100_000 1L;
  Engine.program_end engine;
  Alcotest.(check int) "volatile store ignored" 0 (List.length (D.report d).Bug.bugs)

let test_rules_can_be_disabled () =
  let rules = { (D.default_rules D.Strict) with D.no_durability = false } in
  let engine = Engine.create () in
  let d = D.create ~rules () in
  Engine.attach engine (D.sink d);
  Engine.store_i64 engine ~addr:128 1L;
  Engine.program_end engine;
  Alcotest.(check int) "rule disabled" 0 (List.length (D.report d).Bug.bugs)

let test_bug_dedup_per_location () =
  let r =
    run (fun e ->
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.sfence e)
  in
  Alcotest.(check int) "one redundant-flush bug per location" 1 (Bug.count_kind r Bug.Redundant_flush)

let suite =
  [
    Alcotest.test_case "clean program" `Quick test_clean_program;
    Alcotest.test_case "missing clf" `Quick test_missing_clf;
    Alcotest.test_case "missing fence" `Quick test_missing_fence;
    Alcotest.test_case "multiple overwrites strict-only" `Quick test_multiple_overwrites_strict_only;
    Alcotest.test_case "rewrite after durability ok" `Quick test_overwrite_after_durability_is_fine;
    Alcotest.test_case "redundant flush" `Quick test_redundant_flush;
    Alcotest.test_case "useful re-flush not redundant" `Quick test_useful_second_flush_not_redundant;
    Alcotest.test_case "flush nothing" `Quick test_flush_nothing;
    Alcotest.test_case "order violation" `Quick test_order_violation;
    Alcotest.test_case "order respected" `Quick test_order_respected;
    Alcotest.test_case "order function gate" `Quick test_order_func_gate;
    Alcotest.test_case "epoch rules" `Quick test_epoch_rules;
    Alcotest.test_case "nested epochs collapse" `Quick test_nested_epochs_collapse;
    Alcotest.test_case "redundant logging" `Quick test_redundant_logging;
    Alcotest.test_case "strand ordering" `Quick test_strand_ordering;
    Alcotest.test_case "cross-failure" `Quick test_cross_failure;
    Alcotest.test_case "registered ranges gate tracking" `Quick test_registered_ranges_gate_tracking;
    Alcotest.test_case "rules can be disabled" `Quick test_rules_can_be_disabled;
    Alcotest.test_case "bug dedup per location" `Quick test_bug_dedup_per_location;
  ]
