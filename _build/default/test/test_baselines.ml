open Pmtrace

let run_with sink program =
  let engine = Engine.create () in
  Engine.attach engine sink;
  Engine.register_pmem engine ~base:0 ~size:65536;
  program engine;
  Engine.program_end engine;
  sink.Sink.finish ()

let missing_clf e = Engine.store_i64 e ~addr:128 1L

let redundant e =
  Engine.store_i64 e ~addr:128 1L;
  Engine.clwb e ~addr:128;
  Engine.clwb e ~addr:128;
  Engine.sfence e

let flush_nothing e =
  Engine.store_i64 e ~addr:128 1L;
  Engine.persist e ~addr:128 ~size:8;
  Engine.clwb e ~addr:4096;
  Engine.sfence e

let clean e =
  Engine.store_i64 e ~addr:128 1L;
  Engine.persist e ~addr:128 ~size:8

let test_nulgrind_silent () =
  let r = run_with (Baselines.Nulgrind.sink ()) missing_clf in
  Alcotest.(check int) "no analysis" 0 (List.length r.Bug.bugs);
  Alcotest.(check bool) "events counted" true (r.Bug.events_processed > 0)

let test_pmemcheck_capabilities () =
  let r = run_with (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) missing_clf in
  Alcotest.(check bool) "no-durability" true (Bug.has_kind r Bug.No_durability);
  let r = run_with (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) redundant in
  Alcotest.(check bool) "redundant flush" true (Bug.has_kind r Bug.Redundant_flush);
  let r = run_with (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) flush_nothing in
  Alcotest.(check bool) "flush nothing" true (Bug.has_kind r Bug.Flush_nothing);
  let r = run_with (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) clean in
  Alcotest.(check int) "clean program clean" 0 (List.length r.Bug.bugs)

let test_pmemcheck_no_epoch_rules () =
  let program e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.persist e ~addr:128 ~size:8;
    Engine.store_i64 e ~addr:256 1L;
    Engine.persist e ~addr:256 ~size:8;
    Engine.epoch_end e
  in
  let r = run_with (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) program in
  Alcotest.(check bool) "blind to redundant epoch fences" false (Bug.has_kind r Bug.Redundant_epoch_fence)

let test_pmtest_needs_annotations () =
  (* Without the assertion the bug is invisible; with it, caught. *)
  let r = run_with (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) missing_clf in
  Alcotest.(check int) "unannotated: silent" 0 (List.length r.Bug.bugs);
  let annotated e =
    missing_clf e;
    Engine.annotate e (Event.Assert_durable { addr = 128; size = 8 })
  in
  let r = run_with (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) annotated in
  Alcotest.(check bool) "annotated: caught" true (Bug.has_kind r Bug.No_durability)

let test_pmtest_native_redundant_flush () =
  let r = run_with (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) redundant in
  Alcotest.(check bool) "redundant flush native" true (Bug.has_kind r Bug.Redundant_flush);
  let r = run_with (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) flush_nothing in
  Alcotest.(check bool) "flush nothing unsupported" false (Bug.has_kind r Bug.Flush_nothing)

let test_pmtest_assert_ordered () =
  let program e =
    Engine.store_i64 e ~addr:1024 1L;
    Engine.store_i64 e ~addr:2048 1L;
    Engine.persist e ~addr:2048 ~size:8;
    Engine.annotate e (Event.Assert_ordered { first_addr = 1024; first_size = 8; then_addr = 2048; then_size = 8 });
    Engine.persist e ~addr:1024 ~size:8
  in
  let r = run_with (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) program in
  Alcotest.(check bool) "order violation caught" true (Bug.has_kind r Bug.No_order_guarantee)

let test_xfdetector_failure_budget () =
  (* Within budget the end sweep runs; beyond it, coverage degrades
     (the Sec 7.4 explanation for the missed memcached bugs). *)
  let within = Baselines.Xfdetector.create ~max_failure_points:100 () in
  let r =
    run_with (Baselines.Xfdetector.sink within) (fun e ->
        Engine.store_i64 e ~addr:4096 9L;
        missing_clf e;
        Engine.persist e ~addr:4096 ~size:8)
  in
  Alcotest.(check bool) "within budget: caught" true (Bug.has_kind r Bug.No_durability);
  let exhausted = Baselines.Xfdetector.create ~max_failure_points:2 () in
  let r =
    run_with (Baselines.Xfdetector.sink exhausted) (fun e ->
        for i = 1 to 10 do
          Engine.store_i64 e ~addr:(4096 + (i * 64)) 9L;
          Engine.persist e ~addr:(4096 + (i * 64)) ~size:8
        done;
        missing_clf e)
  in
  Alcotest.(check bool) "budget exhausted: missed" false (Bug.has_kind r Bug.No_durability);
  Alcotest.(check int) "budget respected" 2 (Baselines.Xfdetector.failure_points_used exhausted)

let test_xfdetector_cross_failure () =
  let magic = 55L in
  let recovery img =
    let flag = Pmem.Image.get_i64 img 0 in
    flag = 0L || Pmem.Image.get_i64 img 64 = magic
  in
  let engine = Engine.create () in
  let xf = Baselines.Xfdetector.create ~pm:(Engine.pm engine) ~recovery () in
  Engine.attach engine (Baselines.Xfdetector.sink xf);
  Engine.register_pmem engine ~base:0 ~size:65536;
  Engine.store_i64 engine ~addr:0 1L;
  Engine.persist engine ~addr:0 ~size:8;
  Engine.store_i64 engine ~addr:64 magic;
  Engine.persist engine ~addr:64 ~size:8;
  Engine.program_end engine;
  let r = (Baselines.Xfdetector.sink xf).Sink.finish () in
  Alcotest.(check bool) "cross-failure caught" true (Bug.has_kind r Bug.Cross_failure_semantic)

let test_all_tools_same_trace_capabilities () =
  (* One buggy trace, four tools: the Table 1 capability ordering. *)
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:65536;
        Engine.store_i64 e ~addr:128 1L;
        (* no flush: durability bug *)
        Engine.store_i64 e ~addr:256 1L;
        Engine.persist e ~addr:256 ~size:8;
        Engine.program_end e)
  in
  let count sink = List.length (Recorder.replay trace sink).Bug.bugs in
  let pmdebugger = count (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) in
  let pmemcheck = count (Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())) in
  let pmtest = count (Baselines.Pmtest.sink (Baselines.Pmtest.create ())) in
  Alcotest.(check int) "pmdebugger finds it" 1 pmdebugger;
  Alcotest.(check int) "pmemcheck finds it" 1 pmemcheck;
  Alcotest.(check int) "pmtest (unannotated) misses it" 0 pmtest

let test_persistence_inspector_domain_gate () =
  (* The tool analyzes PMDK applications: without transactional markers
     it stays disengaged and reports nothing, bug or not. *)
  let mk () = Baselines.Persistence_inspector.sink (Baselines.Persistence_inspector.create ()) in
  let r = run_with (mk ()) missing_clf in
  Alcotest.(check int) "non-PMDK program ignored" 0 (List.length r.Bug.bugs);
  (* The same durability hole inside a transaction is caught. *)
  let tx_bug e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.sfence e;
    Engine.epoch_end e
  in
  let r = run_with (mk ()) tx_bug in
  Alcotest.(check bool) "PMDK-domain bug caught" true (Bug.has_kind r Bug.No_durability);
  let tx_clean e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.persist e ~addr:128 ~size:8;
    Engine.epoch_end e
  in
  let r = run_with (mk ()) tx_clean in
  Alcotest.(check int) "clean tx clean" 0 (List.length r.Bug.bugs)

let test_persistence_inspector_tx_rules () =
  let mk () = Baselines.Persistence_inspector.sink (Baselines.Persistence_inspector.create ()) in
  let overwrite e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.store_i64 e ~addr:128 2L;
    Engine.persist e ~addr:128 ~size:8;
    Engine.epoch_end e
  in
  Alcotest.(check bool) "overwrite in tx" true (Bug.has_kind (run_with (mk ()) overwrite) Bug.Multiple_overwrites);
  let redundant_tx e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.clwb e ~addr:128;
    Engine.clwb e ~addr:128;
    Engine.sfence e;
    Engine.epoch_end e
  in
  Alcotest.(check bool) "redundant flush in tx" true (Bug.has_kind (run_with (mk ()) redundant_tx) Bug.Redundant_flush);
  (* No relaxed-model rules (Table 1). *)
  let two_fences e =
    Engine.epoch_begin e;
    Engine.store_i64 e ~addr:128 1L;
    Engine.persist e ~addr:128 ~size:8;
    Engine.store_i64 e ~addr:256 1L;
    Engine.persist e ~addr:256 ~size:8;
    Engine.epoch_end e
  in
  Alcotest.(check bool) "blind to epoch fences" false
    (Bug.has_kind (run_with (mk ()) two_fences) Bug.Redundant_epoch_fence)

let suite =
  [
    Alcotest.test_case "nulgrind silent" `Quick test_nulgrind_silent;
    Alcotest.test_case "pmemcheck capabilities" `Quick test_pmemcheck_capabilities;
    Alcotest.test_case "pmemcheck has no epoch rules" `Quick test_pmemcheck_no_epoch_rules;
    Alcotest.test_case "pmtest needs annotations" `Quick test_pmtest_needs_annotations;
    Alcotest.test_case "pmtest native rules" `Quick test_pmtest_native_redundant_flush;
    Alcotest.test_case "pmtest assert_ordered" `Quick test_pmtest_assert_ordered;
    Alcotest.test_case "xfdetector failure budget" `Quick test_xfdetector_failure_budget;
    Alcotest.test_case "xfdetector cross-failure" `Quick test_xfdetector_cross_failure;
    Alcotest.test_case "tools on one trace" `Quick test_all_tools_same_trace_capabilities;
    Alcotest.test_case "persistence inspector domain gate" `Quick test_persistence_inspector_domain_gate;
    Alcotest.test_case "persistence inspector tx rules" `Quick test_persistence_inspector_tx_rules;
  ]
