open Pmtrace
open Minipmdk
module D = Pmdebugger.Detector
module W = Workloads.Workload

let fresh_pool () =
  let engine = Engine.create () in
  (engine, Pool.create engine ~size:(64 lsl 20))

(* Functional correctness of each structure against Hashtbl. *)
let insert_sequence rng n key_space = List.init n (fun _ -> (Workloads.Prng.below rng key_space, Workloads.Prng.below rng 10_000))

let check_against_reference ~insert ~find pairs key_space =
  let reference = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      insert ~key:k ~value:v;
      Hashtbl.replace reference k v)
    pairs;
  for k = 0 to key_space - 1 do
    let expected = Hashtbl.find_opt reference k in
    Alcotest.(check (option int)) (Printf.sprintf "lookup %d" k) expected (find ~key:k)
  done

let test_btree_reference () =
  let _, pool = fresh_pool () in
  let t = Workloads.Btree.create pool in
  let rng = Workloads.Prng.create 5 in
  check_against_reference
    ~insert:(Workloads.Btree.insert t)
    ~find:(Workloads.Btree.find t)
    (insert_sequence rng 1500 300) 300;
  Workloads.Btree.check t;
  (* Iteration is sorted. *)
  let keys = ref [] in
  Workloads.Btree.iter t (fun ~key ~value:_ -> keys := key :: !keys);
  let keys = List.rev !keys in
  Alcotest.(check bool) "iter sorted" true (keys = List.sort_uniq compare keys);
  Alcotest.(check int) "cardinal" (List.length keys) (Workloads.Btree.cardinal t)

let test_ctree_reference () =
  let _, pool = fresh_pool () in
  let t = Workloads.Ctree.create pool in
  let rng = Workloads.Prng.create 6 in
  check_against_reference
    ~insert:(Workloads.Ctree.insert t)
    ~find:(Workloads.Ctree.find t)
    (insert_sequence rng 1500 300) 300;
  Workloads.Ctree.check t

let test_rbtree_reference () =
  let _, pool = fresh_pool () in
  let t = Workloads.Rbtree.create pool in
  let rng = Workloads.Prng.create 7 in
  check_against_reference
    ~insert:(Workloads.Rbtree.insert t)
    ~find:(Workloads.Rbtree.find t)
    (insert_sequence rng 1500 300) 300;
  Workloads.Rbtree.check t

let test_rtree_reference () =
  let _, pool = fresh_pool () in
  let t = Workloads.Rtree.create pool in
  let rng = Workloads.Prng.create 8 in
  check_against_reference
    ~insert:(Workloads.Rtree.insert t)
    ~find:(Workloads.Rtree.find t)
    (insert_sequence rng 800 200) 200

let test_hashmaps_reference () =
  let _, pool = fresh_pool () in
  let t = Workloads.Hashmap_tx.create pool ~buckets:64 in
  let rng = Workloads.Prng.create 9 in
  check_against_reference
    ~insert:(Workloads.Hashmap_tx.insert t)
    ~find:(Workloads.Hashmap_tx.find t)
    (insert_sequence rng 1000 250) 250;
  let _, pool = fresh_pool () in
  let t = Workloads.Hashmap_atomic.create pool ~buckets:64 in
  check_against_reference
    ~insert:(Workloads.Hashmap_atomic.insert t)
    ~find:(Workloads.Hashmap_atomic.find t)
    (insert_sequence rng 1000 250) 250

(* qcheck: random insert batches keep the B-tree structurally valid and
   consistent with a map. *)
let prop_btree_random =
  QCheck.Test.make ~name:"btree matches map on random batches" ~count:30
    QCheck.(small_list (pair (int_range 0 100) (int_range 0 1000)))
    (fun pairs ->
      let _, pool = fresh_pool () in
      let t = Workloads.Btree.create pool in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Workloads.Btree.insert t ~key:k ~value:v;
          Hashtbl.replace reference k v)
        pairs;
      Workloads.Btree.check t;
      Hashtbl.fold (fun k v acc -> acc && Workloads.Btree.find t ~key:k = Some v) reference true)

(* Clean-run policy: the correct workloads must produce no bugs; the
   deliberately buggy ones must produce exactly their documented kinds. *)
let expected_kinds = function
  | "hashmap_atomic" -> [ Bug.Redundant_epoch_fence ]
  | "memcached" | "a_YCSB" | "b_YCSB" | "c_YCSB" | "d_YCSB" | "e_YCSB" | "f_YCSB" ->
      [ Bug.No_durability; Bug.Multiple_overwrites ]
  | "array" -> [ Bug.No_durability; Bug.Lack_durability_in_epoch; Bug.Redundant_epoch_fence ]
  | _ -> []

let test_workload_bug_profiles () =
  List.iter
    (fun (spec : W.spec) ->
      let engine = Engine.create () in
      let d = D.create ~model:spec.W.model () in
      Engine.attach engine (D.sink d);
      spec.W.run (W.params ~n:400 ()) engine;
      let r = D.report d in
      let found = List.sort compare (Bug.kinds_found r) in
      let expected = List.sort compare (expected_kinds spec.W.name) in
      Alcotest.(check (list string))
        (spec.W.name ^ " bug profile")
        (List.map Bug.kind_name expected) (List.map Bug.kind_name found))
    Workloads.Registry.all

let test_memcached_operations () =
  let _, pool = fresh_pool () in
  let mc = Workloads.Memcached.create pool ~buckets:16 ~max_items:32 in
  Workloads.Memcached.set mc ~key:"alpha" ~value:"one";
  Workloads.Memcached.set mc ~key:"beta" ~value:"two";
  Alcotest.(check (option string)) "get hit" (Some "one") (Workloads.Memcached.get mc ~key:"alpha");
  Alcotest.(check (option string)) "get miss" None (Workloads.Memcached.get mc ~key:"gamma");
  Workloads.Memcached.set mc ~key:"alpha" ~value:"ONE";
  Alcotest.(check (option string)) "overwrite" (Some "ONE") (Workloads.Memcached.get mc ~key:"alpha");
  Alcotest.(check bool) "delete" true (Workloads.Memcached.delete mc ~key:"alpha");
  Alcotest.(check (option string)) "deleted" None (Workloads.Memcached.get mc ~key:"alpha");
  Alcotest.(check bool) "append" true (Workloads.Memcached.append mc ~key:"beta" ~value:"+");
  Alcotest.(check (option string)) "appended" (Some "two+") (Workloads.Memcached.get mc ~key:"beta");
  Alcotest.(check bool) "touch" true (Workloads.Memcached.touch mc ~key:"beta" ~exptime:99);
  Alcotest.(check int) "item count" 1 (Workloads.Memcached.item_count mc)

let test_memcached_eviction () =
  let _, pool = fresh_pool () in
  let mc = Workloads.Memcached.create pool ~buckets:8 ~max_items:8 in
  for i = 0 to 19 do
    Workloads.Memcached.set mc ~key:(Printf.sprintf "k%02d" i) ~value:"v"
  done;
  Alcotest.(check bool) "bounded by capacity" true (Workloads.Memcached.item_count mc <= 8);
  Alcotest.(check (option string)) "most recent key survives" (Some "v") (Workloads.Memcached.get mc ~key:"k19")

let test_memcached_19_sites () =
  let engine = Engine.create () in
  let d = D.create ~model:D.Strict () in
  Engine.attach engine (D.sink d);
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let mc = Workloads.Memcached.create pool ~buckets:32 ~max_items:96 in
  let rng = Workloads.Prng.create 11 in
  for op = 1 to 6000 do
    let k = Printf.sprintf "key-%03d" (Workloads.Prng.below rng 400) in
    let dice = Workloads.Prng.below rng 100 in
    if dice < 5 then Workloads.Memcached.set mc ~key:k ~value:(Printf.sprintf "v%d" op)
    else if dice < 93 then ignore (Workloads.Memcached.get mc ~key:k)
    else if dice < 96 then ignore (Workloads.Memcached.delete mc ~key:k)
    else if dice < 98 then ignore (Workloads.Memcached.touch mc ~key:k ~exptime:op)
    else ignore (Workloads.Memcached.append mc ~key:k ~value:"+x")
  done;
  Workloads.Memcached.flush_all mc;
  Engine.program_end engine;
  let r = D.report d in
  let sites = Hashtbl.create 32 in
  List.iter
    (fun (b : Bug.t) ->
      match Workloads.Memcached.classify_addr mc b.Bug.addr with
      | Some site -> Hashtbl.replace sites site ()
      | None -> Alcotest.failf "bug at unclassified address %d" b.Bug.addr)
    r.Bug.bugs;
  Alcotest.(check int) "all 19 sites and only them (Sec 7.4)" 19 (Hashtbl.length sites)

let test_redis_operations () =
  let _, pool = fresh_pool () in
  let t = Workloads.Redis.create pool ~maxmemory_keys:16 in
  for k = 0 to 9 do
    Workloads.Redis.set t ~key:k ~value:(k * 10)
  done;
  Alcotest.(check (option int)) "get" (Some 30) (Workloads.Redis.get t ~key:3);
  Workloads.Redis.set t ~key:3 ~value:99;
  Alcotest.(check (option int)) "overwrite" (Some 99) (Workloads.Redis.get t ~key:3);
  Alcotest.(check int) "count" 10 (Workloads.Redis.key_count t)

let test_redis_eviction () =
  let _, pool = fresh_pool () in
  let t = Workloads.Redis.create pool ~maxmemory_keys:16 in
  for k = 0 to 63 do
    Workloads.Redis.set t ~key:k ~value:k
  done;
  Alcotest.(check bool) "bounded" true (Workloads.Redis.key_count t <= 16);
  Alcotest.(check bool) "evictions counted" true (Workloads.Redis.evictions t >= 48)

let test_synth_strand_sections () =
  let trace = Recorder.record (fun e -> Workloads.Synth_strand.spec.W.run (W.params ~n:40 ()) e) in
  let opens = Array.fold_left (fun acc ev -> match ev with Event.Strand_begin _ -> acc + 1 | _ -> acc) 0 trace in
  let closes = Array.fold_left (fun acc ev -> match ev with Event.Strand_end _ -> acc + 1 | _ -> acc) 0 trace in
  Alcotest.(check int) "balanced strand sections" opens closes;
  Alcotest.(check bool) "both strands used" true (opens >= 2)

let test_zipf_skew () =
  let z = Workloads.Zipf.create ~n:1000 () in
  let rng = Workloads.Prng.create 3 in
  let hits = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let k = Workloads.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000);
    hits.(k) <- hits.(k) + 1
  done;
  let top10 = ref 0 in
  for i = 0 to 9 do
    top10 := !top10 + hits.(i)
  done;
  Alcotest.(check bool) "top-10 keys dominate" true (float_of_int !top10 > 0.3 *. 20_000.0)

let test_registry () =
  Alcotest.(check int) "seven micro benches" 7 (List.length Workloads.Registry.micro);
  Alcotest.(check int) "eleven characterization programs" 11 (List.length Workloads.Registry.characterization);
  Alcotest.(check bool) "find works" true (Workloads.Registry.find "memcached" <> None);
  Alcotest.(check bool) "unknown is None" true (Workloads.Registry.find "nope" = None)

let suite =
  [
    Alcotest.test_case "btree vs reference" `Quick test_btree_reference;
    Alcotest.test_case "ctree vs reference" `Quick test_ctree_reference;
    Alcotest.test_case "rbtree vs reference" `Quick test_rbtree_reference;
    Alcotest.test_case "rtree vs reference" `Quick test_rtree_reference;
    Alcotest.test_case "hashmaps vs reference" `Quick test_hashmaps_reference;
    QCheck_alcotest.to_alcotest prop_btree_random;
    Alcotest.test_case "workload bug profiles" `Slow test_workload_bug_profiles;
    Alcotest.test_case "memcached operations" `Quick test_memcached_operations;
    Alcotest.test_case "memcached eviction" `Quick test_memcached_eviction;
    Alcotest.test_case "memcached 19 bug sites" `Slow test_memcached_19_sites;
    Alcotest.test_case "redis operations" `Quick test_redis_operations;
    Alcotest.test_case "redis eviction" `Quick test_redis_eviction;
    Alcotest.test_case "synth_strand sections" `Quick test_synth_strand_sections;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "registry" `Quick test_registry;
  ]
