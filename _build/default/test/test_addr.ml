open Pmem

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let r ~lo ~hi = Addr.range ~lo ~hi

let test_line_math () =
  check_int "line_of 0" 0 (Addr.line_of 0);
  check_int "line_of 63" 0 (Addr.line_of 63);
  check_int "line_of 64" 1 (Addr.line_of 64);
  check_int "line_base 127" 64 (Addr.line_base 127);
  Alcotest.(check (list int)) "lines of [60,70)" [ 0; 1 ] (Addr.lines_of_range ~lo:60 ~hi:70);
  Alcotest.(check (list int)) "lines of empty" [] (Addr.lines_of_range ~lo:70 ~hi:70);
  Alcotest.(check (list int)) "lines of one byte" [ 2 ] (Addr.lines_of_range ~lo:128 ~hi:129)

let test_overlap () =
  check "overlap" true (Addr.overlaps (r ~lo:0 ~hi:10) (r ~lo:9 ~hi:20));
  check "touching is not overlap" false (Addr.overlaps (r ~lo:0 ~hi:10) (r ~lo:10 ~hi:20));
  check "covers" true (Addr.covers (r ~lo:0 ~hi:10) (r ~lo:2 ~hi:8));
  check "covers self" true (Addr.covers (r ~lo:0 ~hi:10) (r ~lo:0 ~hi:10));
  check "not covers" false (Addr.covers (r ~lo:0 ~hi:10) (r ~lo:2 ~hi:11))

let test_inter_diff () =
  (match Addr.inter (r ~lo:0 ~hi:10) (r ~lo:5 ~hi:15) with
  | Some x -> check "inter" true (x = r ~lo:5 ~hi:10)
  | None -> Alcotest.fail "expected intersection");
  check "disjoint inter" true (Addr.inter (r ~lo:0 ~hi:5) (r ~lo:5 ~hi:9) = None);
  Alcotest.(check int) "diff middle gives two" 2 (List.length (Addr.diff (r ~lo:0 ~hi:10) (r ~lo:3 ~hi:6)));
  Alcotest.(check int) "diff cover gives zero" 0 (List.length (Addr.diff (r ~lo:3 ~hi:6) (r ~lo:0 ~hi:10)));
  Alcotest.(check int) "diff left" 1 (List.length (Addr.diff (r ~lo:0 ~hi:10) (r ~lo:0 ~hi:6)))

let test_invalid () =
  Alcotest.check_raises "negative lo" (Invalid_argument "Addr.range: bad range [-1,3)") (fun () ->
      ignore (Addr.range ~lo:(-1) ~hi:3))

let range_gen =
  QCheck.Gen.(
    let* lo = int_range 0 1000 in
    let* len = int_range 0 200 in
    return (lo, lo + len))

let arbitrary_range = QCheck.make ~print:(fun (lo, hi) -> Printf.sprintf "[%d,%d)" lo hi) range_gen

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff+inter partition the range" ~count:500
    (QCheck.pair arbitrary_range arbitrary_range)
    (fun ((alo, ahi), (blo, bhi)) ->
      QCheck.assume (ahi > alo);
      let a = r ~lo:alo ~hi:ahi and b = r ~lo:blo ~hi:bhi in
      let covered = match Addr.inter a b with Some x -> Addr.size x | None -> 0 in
      let rest = List.fold_left (fun acc x -> acc + Addr.size x) 0 (Addr.diff a b) in
      covered + rest = Addr.size a)

let prop_lines_cover =
  QCheck.Test.make ~name:"every byte belongs to a listed line" ~count:500 arbitrary_range (fun (lo, hi) ->
      QCheck.assume (hi > lo);
      let lines = Addr.lines_of_range ~lo ~hi in
      let ok = ref true in
      for b = lo to hi - 1 do
        if not (List.mem (Addr.line_of b) lines) then ok := false
      done;
      !ok && List.length lines = List.length (List.sort_uniq compare lines))

let suite =
  [
    Alcotest.test_case "line math" `Quick test_line_math;
    Alcotest.test_case "overlap/covers" `Quick test_overlap;
    Alcotest.test_case "inter/diff" `Quick test_inter_diff;
    Alcotest.test_case "invalid range" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_diff_inter_partition;
    QCheck_alcotest.to_alcotest prop_lines_cover;
  ]
