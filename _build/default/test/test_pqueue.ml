open Pmtrace
open Minipmdk
module Q = Workloads.Pqueue

let fresh ?capacity () =
  let engine = Engine.create () in
  let pool = Pool.create engine ~size:(16 lsl 20) in
  (engine, Q.create ?capacity pool)

let test_fifo_order () =
  let _, q = fresh () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  List.iter (fun s -> Alcotest.(check bool) "enqueue ok" true (Q.enqueue q s)) [ "a"; "b"; "c" ];
  Alcotest.(check int) "length" 3 (Q.length q);
  Alcotest.(check (option string)) "a first" (Some "a") (Q.dequeue q);
  Alcotest.(check (option string)) "b next" (Some "b") (Q.dequeue q);
  Alcotest.(check bool) "enqueue mid-drain" true (Q.enqueue q "d");
  Alcotest.(check (option string)) "c" (Some "c") (Q.dequeue q);
  Alcotest.(check (option string)) "d" (Some "d") (Q.dequeue q);
  Alcotest.(check (option string)) "drained" None (Q.dequeue q)

let test_capacity_and_wraparound () =
  let _, q = fresh ~capacity:4 () in
  for i = 0 to 3 do
    Alcotest.(check bool) "fills" true (Q.enqueue q (string_of_int i))
  done;
  Alcotest.(check bool) "full rejects" false (Q.enqueue q "overflow");
  (* Drain and refill several times to cross the ring boundary. *)
  for round = 0 to 5 do
    Alcotest.(check (option string)) "fifo across wrap" (Some (string_of_int round)) (Q.dequeue q);
    Alcotest.(check bool) "refill" true (Q.enqueue q (string_of_int (round + 4)))
  done

let test_truncation () =
  let _, q = fresh () in
  let long = String.make 200 'z' in
  Alcotest.(check bool) "enqueue long" true (Q.enqueue q long);
  match Q.dequeue q with
  | Some v -> Alcotest.(check int) "truncated to payload" Q.record_payload (String.length v)
  | None -> Alcotest.fail "expected a record"

let test_detector_clean () =
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Epoch () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  Q.spec.Workloads.Workload.run (Workloads.Workload.params ~n:500 ()) engine;
  Alcotest.(check int) "queue workload clean" 0 (List.length (Pmdebugger.Detector.report d).Bug.bugs)

let test_crash_consistency () =
  (* At any crash image, after undo-log recovery the queue indexes must
     describe a prefix-consistent queue: 0 <= head <= tail. *)
  let engine, q = fresh ~capacity:8 () in
  for i = 0 to 5 do
    ignore (Q.enqueue q (string_of_int i))
  done;
  ignore (Q.dequeue q);
  let ok =
    List.for_all
      (fun img ->
        if Minipmdk.Tx.needs_recovery img then Minipmdk.Tx.recover img;
        (* Root object: head at root, tail at root+8. The pool root sits
           at the heap start. *)
        let root = Pmem.Image.get_int img Minipmdk.Pool.off_root_off in
        let head = Pmem.Image.get_int img root and tail = Pmem.Image.get_int img (root + 8) in
        0 <= head && head <= tail)
      (Pmem.State.crash_images (Engine.pm engine) ~max_images:16 ())
  in
  Alcotest.(check bool) "indexes consistent in every crash image" true ok

let prop_queue_matches_model =
  QCheck.Test.make ~name:"queue matches list model" ~count:100
    QCheck.(small_list (int_range 0 99))
    (fun ops ->
      let _, q = fresh ~capacity:16 () in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          if op < 60 then begin
            let v = Printf.sprintf "v%d" op in
            let accepted = Q.enqueue q v in
            let expected = Queue.length model < 16 in
            if accepted then Queue.add v model;
            accepted = expected
          end
          else begin
            let got = Q.dequeue q in
            let expected = Queue.take_opt model in
            got = expected
          end)
        ops
      && Q.length q = Queue.length model)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "capacity and wraparound" `Quick test_capacity_and_wraparound;
    Alcotest.test_case "payload truncation" `Quick test_truncation;
    Alcotest.test_case "detector clean" `Quick test_detector_clean;
    Alcotest.test_case "crash consistency" `Quick test_crash_consistency;
    QCheck_alcotest.to_alcotest prop_queue_matches_model;
  ]
