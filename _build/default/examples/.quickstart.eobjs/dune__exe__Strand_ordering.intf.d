examples/strand_ordering.mli:
