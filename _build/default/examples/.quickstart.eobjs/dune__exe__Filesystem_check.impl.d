examples/filesystem_check.ml: Bug Engine Format List Minipmfs Pmdebugger Pmtrace Printf Sink
