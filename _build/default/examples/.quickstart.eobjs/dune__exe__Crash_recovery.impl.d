examples/crash_recovery.ml: Bug Engine Format Minipmdk Pmdebugger Pmem Pmtrace Pool Printf Tx
