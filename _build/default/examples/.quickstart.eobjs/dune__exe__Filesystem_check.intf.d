examples/filesystem_check.mli:
