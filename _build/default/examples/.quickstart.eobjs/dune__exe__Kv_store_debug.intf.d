examples/kv_store_debug.mli:
