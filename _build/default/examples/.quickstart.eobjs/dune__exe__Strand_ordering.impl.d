examples/strand_ordering.ml: Baselines Bug Engine Format Pmdebugger Pmtrace Sink
