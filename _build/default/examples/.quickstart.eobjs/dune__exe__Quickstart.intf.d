examples/quickstart.mli:
