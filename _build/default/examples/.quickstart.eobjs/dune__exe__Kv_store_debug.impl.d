examples/kv_store_debug.ml: Bug Engine Format Pmdebugger Pmtrace
