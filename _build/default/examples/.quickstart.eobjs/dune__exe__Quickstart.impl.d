examples/quickstart.ml: Bug Engine Format Pmdebugger Pmtrace
