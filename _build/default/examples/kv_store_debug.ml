(* Debugging a hand-rolled persistent key-value store.

     dune exec examples/kv_store_debug.exe

   The store keeps a persistent record count next to an entry array.
   Version 1 has the classic publication bug: the count is persisted
   before the entry it makes visible, so a crash between the two
   persists exposes garbage. The order configuration (one line, as a
   user would write in pmdebugger.conf) lets PMDebugger flag it; the
   fixed version runs clean under the same configuration. *)

open Pmtrace
module OC = Pmdebugger.Order_config

(* Layout: count at 0; entries of 16 bytes (key, value) from 64. *)
let count_addr = 0

let entry_addr i = 64 + (16 * i)

let append ~buggy engine ~key ~value =
  let i = Engine.load_int engine ~addr:count_addr in
  let addr = entry_addr i in
  if buggy then begin
    (* Publish the new count first — wrong order. *)
    Engine.store_int engine ~addr:count_addr (i + 1);
    Engine.persist engine ~addr:count_addr ~size:8;
    Engine.store_int engine ~addr key;
    Engine.store_int engine ~addr:(addr + 8) value;
    Engine.persist engine ~addr ~size:16
  end
  else begin
    Engine.store_int engine ~addr key;
    Engine.store_int engine ~addr:(addr + 8) value;
    Engine.persist engine ~addr ~size:16;
    Engine.store_int engine ~addr:count_addr (i + 1);
    Engine.persist engine ~addr:count_addr ~size:8
  end

let debug ~buggy =
  (* The user writes this once in a configuration file (§4.5):
     "the entry must be durable before the count that publishes it". *)
  let config = OC.parse_exn "order entry before count" in
  let engine = Engine.create () in
  let detector = Pmdebugger.Detector.create ~config () in
  Engine.attach engine (Pmdebugger.Detector.sink detector);
  Engine.register_pmem engine ~base:0 ~size:4096;
  (* Addresses of the watched variables come from the allocator /
     symbol table; here we register them directly. *)
  Engine.register_var engine ~name:"count" ~addr:count_addr ~size:8;
  Engine.register_var engine ~name:"entry" ~addr:(entry_addr 0) ~size:16;
  append ~buggy engine ~key:17 ~value:1700;
  append ~buggy engine ~key:23 ~value:2300;
  Engine.program_end engine;
  Pmdebugger.Detector.report detector

let () =
  let buggy_report = debug ~buggy:true in
  Format.printf "buggy version:@.%a@." Bug.pp_report buggy_report;
  assert (Bug.has_kind buggy_report Bug.No_order_guarantee);
  let fixed_report = debug ~buggy:false in
  Format.printf "fixed version:@.%a@." Bug.pp_report fixed_report;
  assert (fixed_report.Bug.bugs = []);
  print_endline "kv_store_debug: ordering bug caught, fix verified."
