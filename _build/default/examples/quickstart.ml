(* Quickstart: debug a five-line PM program.

     dune exec examples/quickstart.exe

   A program stores two values: one is persisted properly, the other is
   written but never flushed. PMDebugger watches the instrumented PM
   operations and reports the durability hole. *)

open Pmtrace

let () =
  (* 1. An engine stands in for the PM device + instrumentation. *)
  let engine = Engine.create () in

  (* 2. Attach PMDebugger like a Valgrind tool. *)
  let detector = Pmdebugger.Detector.create () in
  Engine.attach engine (Pmdebugger.Detector.sink detector);

  (* 3. The program under test. *)
  Engine.register_pmem engine ~base:0 ~size:4096;
  Engine.store_i64 engine ~addr:0 42L;
  Engine.persist engine ~addr:0 ~size:8;

  (* bug: stored, but neither written back nor fenced *)
  Engine.store_i64 engine ~addr:128 7L;

  Engine.program_end engine;

  (* 4. Read the report. *)
  let report = Pmdebugger.Detector.report detector in
  Format.printf "%a@." Bug.pp_report report;
  assert (Bug.has_kind report Bug.No_durability);
  print_endline "quickstart: PMDebugger caught the missing flush."
