(* Strand persistency debugging — the Fig. 7b scenario.

     dune exec examples/strand_ordering.exe

   Two strands cooperate on a pair of locations A and B with the
   programmer-specified requirement that A persist before B. Strand 1
   writes B back before strand 0's barrier has made A durable — legal
   under epoch persistency within one strand, but a cross-strand
   ordering violation. Only a strand-aware detector sees it. *)

open Pmtrace
module OC = Pmdebugger.Order_config

let a_addr = 512

let b_addr = 1024

let program engine =
  Engine.register_pmem engine ~base:0 ~size:4096;
  Engine.register_var engine ~name:"A" ~addr:a_addr ~size:8;
  Engine.register_var engine ~name:"B" ~addr:b_addr ~size:8;
  (* Strand 0 writes both locations and starts writing A back. *)
  Engine.strand_begin engine ~strand:0;
  Engine.store_i64 engine ~addr:a_addr 1L;
  Engine.store_i64 engine ~addr:b_addr 2L;
  Engine.clwb engine ~addr:a_addr;
  Engine.strand_end engine ~strand:0;
  (* Strand 1 races ahead and persists B first. *)
  Engine.strand_begin engine ~strand:1;
  Engine.clwb engine ~addr:b_addr;
  Engine.sfence engine;
  Engine.strand_end engine ~strand:1;
  (* Strand 0's barrier arrives only now. *)
  Engine.strand_begin engine ~strand:0;
  Engine.sfence engine;
  Engine.strand_end engine ~strand:0;
  Engine.join_strand engine;
  Engine.program_end engine

let () =
  let config = OC.add OC.empty (OC.strand_order ~first:"A" ~next:"B") in
  (* PMDebugger with the strand extension... *)
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strand ~config () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  program engine;
  let report = Pmdebugger.Detector.report d in
  Format.printf "PMDebugger (strand model):@.%a@." Bug.pp_report report;
  assert (Bug.has_kind report Bug.Lack_ordering_in_strands);
  (* ...versus Pmemcheck, which has no notion of strands. *)
  let engine = Engine.create () in
  let pc = Baselines.Pmemcheck.create () in
  let sink = Baselines.Pmemcheck.sink pc in
  Engine.attach engine sink;
  program engine;
  let pc_report = sink.Sink.finish () in
  Format.printf "Pmemcheck on the same run:@.%a@." Bug.pp_report pc_report;
  assert (not (Bug.has_kind pc_report Bug.Lack_ordering_in_strands));
  print_endline "strand_ordering: cross-strand violation visible only to the strand-aware detector."
