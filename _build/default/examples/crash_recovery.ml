(* Crash-image simulation and cross-failure checking.

     dune exec examples/crash_recovery.exe

   A bank transfer moves money between two persistent accounts. The
   naive version persists each account separately: a crash between the
   two persists loses (or mints) money, and every tool that only checks
   durability stays silent because everything IS eventually durable.
   The cross-failure rule runs the recovery predicate over simulated
   crash images and catches it; the transactional version survives
   every crash image once the undo log is applied. *)

open Pmtrace
open Minipmdk

let total = 1000

(* Account balances at fixed offsets inside the pool's heap. *)
let account_a pool = Pool.heap_start pool

let account_b pool = Pool.heap_start pool + 64

(* Recovery invariant: after applying the undo log, the balances must
   sum to the original total. *)
let consistent pool img =
  if Tx.needs_recovery img then Tx.recover img;
  Pmem.Image.get_int img (account_a pool) + Pmem.Image.get_int img (account_b pool) = total

let setup () =
  let engine = Engine.create () in
  let pool = Pool.create engine ~size:(1 lsl 20) ~log_capacity:(1 lsl 14) in
  ignore (Pool.alloc_raw pool ~size:256);
  Pool.persist_heap_top pool;
  Engine.store_int engine ~addr:(account_a pool) total;
  Engine.store_int engine ~addr:(account_b pool) 0;
  Engine.persist engine ~addr:(account_a pool) ~size:8;
  Engine.persist engine ~addr:(account_b pool) ~size:8;
  (engine, pool)

let naive_transfer engine pool amount =
  let a = account_a pool and b = account_b pool in
  Engine.store_int engine ~addr:a (Engine.load_int engine ~addr:a - amount);
  Engine.persist engine ~addr:a ~size:8;
  (* Crash window: the debit is durable, the credit is not. *)
  Engine.store_int engine ~addr:b (Engine.load_int engine ~addr:b + amount);
  Engine.persist engine ~addr:b ~size:8

let tx_transfer engine pool amount =
  let a = account_a pool and b = account_b pool in
  let tx = Tx.begin_tx pool in
  Tx.store_int tx ~addr:a (Engine.load_int engine ~addr:a - amount);
  Tx.store_int tx ~addr:b (Engine.load_int engine ~addr:b + amount);
  Tx.commit tx

let () =
  (* Naive version under PMDebugger with the cross-failure rule. *)
  let engine, pool = setup () in
  let d =
    Pmdebugger.Detector.create ~pm:(Engine.pm engine) ~recovery:(consistent pool) ~crash_check_every_fence:true ()
  in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  naive_transfer engine pool 250;
  Engine.program_end engine;
  let report = Pmdebugger.Detector.report d in
  Format.printf "naive transfer:@.%a@." Bug.pp_report report;
  assert (Bug.has_kind report Bug.Cross_failure_semantic);

  (* Transactional version: every sampled crash image recovers. *)
  let engine, pool = setup () in
  let d =
    Pmdebugger.Detector.create ~pm:(Engine.pm engine) ~recovery:(consistent pool) ~crash_check_every_fence:true ()
  in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  tx_transfer engine pool 250;
  Engine.program_end engine;
  let report = Pmdebugger.Detector.report d in
  Format.printf "transactional transfer:@.%a@." Bug.pp_report report;
  assert (not (Bug.has_kind report Bug.Cross_failure_semantic));
  Printf.printf "crash_recovery: balances durable (A=%d, B=%d), every crash image recovers.\n"
    (Pmem.Image.get_int (Pmem.State.durable (Engine.pm engine)) (account_a pool))
    (Pmem.Image.get_int (Pmem.State.durable (Engine.pm engine)) (account_b pool))
