(* Yat-style exhaustive crash-state validation of a PM filesystem.

     dune exec examples/filesystem_check.exe

   The mini PMFS journals its metadata updates, so every crash state
   sampled at every fence passes fsck. Flipping the unsafe-unlink knob
   reproduces the classic ordering bug — the inode dies while the
   directory still points at it — which only shows up in intermediate
   crash states, exactly what Yat's crash-state enumeration exists to
   find. PMDebugger watches the same run for durability-protocol bugs;
   the two detectors are complementary. *)

open Pmtrace
module Pmfs = Minipmfs.Pmfs
module Yat = Minipmfs.Yat

let churn fs =
  let root = Pmfs.root_dir fs in
  let dir = Pmfs.mkdir fs ~parent:root ~name:"var" in
  for i = 0 to 5 do
    let name = Printf.sprintf "log%d" i in
    let f = Pmfs.create_file fs ~parent:dir ~name in
    Pmfs.write_file fs ~inode:f ~off:0 (Printf.sprintf "entry %d" i);
    if i land 1 = 1 then Pmfs.unlink fs ~parent:dir ~name
  done

let run ~unsafe =
  let engine = Engine.create () in
  let yat = Yat.create ~pm:(Engine.pm engine) () in
  Engine.attach engine (Yat.sink yat);
  let pmd = Pmdebugger.Detector.create () in
  Engine.attach engine (Pmdebugger.Detector.sink pmd);
  let fs = Pmfs.create engine () in
  Pmfs.set_unsafe_unlink fs unsafe;
  churn fs;
  Engine.program_end engine;
  let yat_report = (Yat.sink yat).Sink.finish () in
  Printf.printf "%s unlink: yat checked %d crash states -> %d inconsistent point(s); pmdebugger -> %d finding(s)\n"
    (if unsafe then "unsafe" else "journaled")
    (Yat.states_checked yat)
    (List.length yat_report.Bug.bugs)
    (List.length (Pmdebugger.Detector.report pmd).Bug.bugs);
  yat_report

let () =
  let clean = run ~unsafe:false in
  assert (clean.Bug.bugs = []);
  let buggy = run ~unsafe:true in
  assert (buggy.Bug.bugs <> []);
  Format.printf "first inconsistency: %a@." Bug.pp (List.hd buggy.Bug.bugs);
  print_endline "filesystem_check: fsck-over-crash-states caught the unlink ordering bug."
