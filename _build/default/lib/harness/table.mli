(** Plain-text table rendering for the bench and CLI output. *)

val print : title:string -> header:string list -> string list list -> unit
(** Renders an aligned table with a title line. *)

val fmt_f : float -> string
(** Two-decimal float. *)

val fmt_x : float -> string
(** Slowdown/speedup style: ["12.3x"]. *)

val fmt_pct : float -> string
(** Percentage with one decimal: ["84.5%"]. *)
