(** Wall-clock timing for the slowdown experiments.

    The paper reports per-tool slowdown relative to the original
    program with detectors disabled. Here the "original program" is the
    workload run with instrumentation off; Nulgrind adds dispatch-only
    instrumentation; each detector adds its bookkeeping on top. Times
    are medians of repeated runs on a recorded trace. *)

val time_once : (unit -> unit) -> float

val median_of : ?repeats:int (** default 3 *) -> (unit -> unit) -> float

type measurement = {
  native_s : float;  (** uninstrumented workload run *)
  nulgrind_s : float;  (** native + dispatch to a no-op sink *)
  detector_s : (string * float) list;  (** native + dispatch + bookkeeping *)
}

val slowdown : measurement -> float -> float
(** [slowdown m t] is [t /. m.native_s]. *)

val measure :
  ?repeats:int ->
  run:(Pmtrace.Engine.t -> unit) ->
  detectors:(string * (unit -> Pmtrace.Sink.t)) list ->
  unit ->
  measurement * Pmtrace.Recorder.trace
(** Runs the workload natively (instrumentation off) for the baseline
    time, records its trace once, then replays the trace into each
    detector; detector total time = native + replay. *)
