let print ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    all;
  let render row =
    let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row in
    "  " ^ String.concat "  " cells
  in
  Printf.printf "\n%s\n" title;
  Printf.printf "%s\n" (render header);
  Printf.printf "  %s\n" (String.make (List.fold_left (fun a w -> a + w + 2) 0 (Array.to_list widths)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
  flush stdout

let fmt_f v = Printf.sprintf "%.2f" v

let fmt_x v = Printf.sprintf "%.1fx" v

let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
