lib/harness/timing.mli: Pmtrace
