lib/harness/table.ml: Array List Printf String
