lib/harness/timing.ml: List Pmtrace Unix
