lib/harness/table.mli:
