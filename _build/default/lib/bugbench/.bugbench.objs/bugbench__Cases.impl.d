lib/bugbench/cases.ml: Bug Bytes Engine Event Int64 List Minipmdk Pmdebugger Pmem Pmtrace Pool Printf Tx
