lib/bugbench/eval.ml: Baselines Bug Cases Engine List Pmdebugger Pmtrace Sink
