lib/bugbench/cases.mli: Pmdebugger Pmem Pmtrace
