lib/bugbench/eval.mli: Cases Pmtrace
