(** The bug-detection evaluation dataset (§7.3).

    78 buggy cases across the ten Table 6 kinds, with the paper's exact
    per-kind counts (44 / 2 / 4 / 6 / 3 / 5 / 4 / 4 / 2 / 4), plus
    clean control cases used to verify the zero-false-positive claim.

    Every case is a self-contained program against the instrumentation
    engine. Cases carry the PMTest-style annotations their original
    suites included (consumed only by the PMTest baseline), the order
    configuration where the rule needs one, and — for cross-failure
    cases — a recovery predicate over raw crash images. *)

type t = {
  id : string;
  expected : Pmtrace.Bug.kind option;  (** [None] for clean controls *)
  model : Pmdebugger.Detector.model;
  config : Pmdebugger.Order_config.t;
  recovery : (Pmem.Image.t -> bool) option;
  run : Pmtrace.Engine.t -> unit;
}

val buggy : t list
(** The 78 bug cases, grouped by kind in Table 6 column order. *)

val clean : t list
(** Clean controls: correct programs no tool may flag. *)

val all : t list

val count_by_kind : Pmtrace.Bug.kind -> int
