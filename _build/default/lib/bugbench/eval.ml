open Pmtrace

type tool = PMDebugger | Pmemcheck | PMTest | XFDetector

let all_tools = [ PMDebugger; Pmemcheck; PMTest; XFDetector ]

let tool_name = function
  | PMDebugger -> "PMDebugger"
  | Pmemcheck -> "Pmemcheck"
  | PMTest -> "PMTest"
  | XFDetector -> "XFDetector"

let sink_for tool (c : Cases.t) engine =
  match tool with
  | PMDebugger ->
      let d =
        Pmdebugger.Detector.create ~model:c.Cases.model ~config:c.Cases.config ~pm:(Engine.pm engine)
          ?recovery:c.Cases.recovery
          ~crash_check_every_fence:(c.Cases.recovery <> None)
          ()
      in
      Pmdebugger.Detector.sink d
  | Pmemcheck -> Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())
  | PMTest -> Baselines.Pmtest.sink (Baselines.Pmtest.create ())
  | XFDetector ->
      Baselines.Xfdetector.sink
        (Baselines.Xfdetector.create ~config:c.Cases.config ~pm:(Engine.pm engine) ?recovery:c.Cases.recovery ())

let run_case tool (c : Cases.t) =
  let engine = Engine.create () in
  let sink = sink_for tool c engine in
  Engine.attach engine sink;
  c.Cases.run engine;
  Engine.program_end engine;
  sink.Sink.finish ()

let detected (c : Cases.t) report =
  match c.Cases.expected with None -> false | Some kind -> Bug.has_kind report kind

type result = {
  tool : tool;
  per_kind : (Bug.kind * int * int) list;
  detected_total : int;
  case_total : int;
  false_negative_rate : float;
  false_positives : string list;
  kinds_covered : int;
}

let evaluate tool =
  let per_kind =
    List.map
      (fun kind ->
        let cases = List.filter (fun (c : Cases.t) -> c.Cases.expected = Some kind) Cases.buggy in
        let hits = List.length (List.filter (fun c -> detected c (run_case tool c)) cases) in
        (kind, hits, List.length cases))
      Bug.all_kinds
  in
  let detected_total = List.fold_left (fun acc (_, d, _) -> acc + d) 0 per_kind in
  let case_total = List.fold_left (fun acc (_, _, t) -> acc + t) 0 per_kind in
  let false_positives =
    List.filter_map
      (fun (c : Cases.t) ->
        let report = run_case tool c in
        if report.Bug.bugs <> [] then Some c.Cases.id else None)
      Cases.clean
  in
  {
    tool;
    per_kind;
    detected_total;
    case_total;
    false_negative_rate =
      (if case_total = 0 then 0.0 else float_of_int (case_total - detected_total) /. float_of_int case_total);
    false_positives;
    kinds_covered = List.length (List.filter (fun (_, d, _) -> d > 0) per_kind);
  }

let evaluate_all () = List.map evaluate all_tools
