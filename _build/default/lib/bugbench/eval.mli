(** Runs the bug dataset against the four detectors and aggregates the
    Table 6 matrix and the §7.3 false-negative / false-positive rates. *)

type tool = PMDebugger | Pmemcheck | PMTest | XFDetector

val all_tools : tool list

val tool_name : tool -> string

val run_case : tool -> Cases.t -> Pmtrace.Bug.report
(** Executes the case live on a fresh engine with the tool attached
    (cross-failure cases hand the tool the live PM state and the
    recovery predicate, as §7.3 describes). *)

val detected : Cases.t -> Pmtrace.Bug.report -> bool
(** True when the report contains the case's expected bug kind. *)

type result = {
  tool : tool;
  per_kind : (Pmtrace.Bug.kind * int * int) list;  (** kind, detected, total *)
  detected_total : int;
  case_total : int;
  false_negative_rate : float;
  false_positives : string list;  (** clean cases the tool flagged *)
  kinds_covered : int;
}

val evaluate : tool -> result

val evaluate_all : unit -> result list
