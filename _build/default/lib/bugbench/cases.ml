open Pmtrace
open Minipmdk
module D = Pmdebugger.Detector
module OC = Pmdebugger.Order_config

type t = {
  id : string;
  expected : Bug.kind option;
  model : D.model;
  config : OC.t;
  recovery : (Pmem.Image.t -> bool) option;
  run : Engine.t -> unit;
}

let pm_size = 1 lsl 16

let reg e = Engine.register_pmem e ~base:0 ~size:pm_size

let line = Pmem.Addr.cache_line_size

let case ?(model = D.Strict) ?(config = OC.empty) ?recovery id expected run =
  { id; expected = Some expected; model; config; recovery; run }

let clean_case ?(model = D.Strict) ?(config = OC.empty) id run =
  { id; expected = None; model; config; recovery = None; run }

(* ------------------------------------------------------------------ *)
(* No durability guarantee: 44 cases.                                  *)
(* ------------------------------------------------------------------ *)

type missing = Clf | Fence_only

(* Grid axes: what is missing, how many locations, packed in one line or
   strided across lines, and whether correctly persisted neighbours
   surround the buggy accesses. 2 x 3 x 2 x 2 = 24 cases. *)
let nodur_grid =
  List.concat_map
    (fun missing ->
      List.concat_map
        (fun nlocs ->
          List.concat_map
            (fun strided ->
              List.map
                (fun noise ->
                  let id =
                    Printf.sprintf "nodur_%s_n%d_%s%s"
                      (match missing with Clf -> "noclf" | Fence_only -> "nofence")
                      nlocs
                      (if strided then "strided" else "packed")
                      (if noise then "_noisy" else "")
                  in
                  let run e =
                    reg e;
                    (* Noise (correctly persisted neighbours) comes before
                       the buggy stores: a later unrelated fence would
                       otherwise drain a missing-fence case's writebacks
                       and heal the bug. *)
                    if noise then begin
                      Engine.store_i64 e ~addr:4096 1L;
                      Engine.persist e ~addr:4096 ~size:8;
                      Engine.store_i64 e ~addr:8192 2L;
                      Engine.persist e ~addr:8192 ~size:8
                    end;
                    let stride = if strided then line else 8 in
                    let span = ((nlocs - 1) * stride) + 8 in
                    for i = 0 to nlocs - 1 do
                      Engine.store_i64 e ~addr:(256 + (i * stride)) (Int64.of_int i)
                    done;
                    (match missing with
                    | Clf -> ()
                    | Fence_only -> Engine.flush_range e ~addr:256 ~size:span);
                    (* The annotation the PMTest suite adds for the
                       durability check. *)
                    Engine.annotate e (Event.Assert_durable { addr = 256; size = span })
                  in
                  case id Bug.No_durability run)
                [ false; true ])
            [ false; true ])
        [ 1; 2; 4 ])
    [ Clf; Fence_only ]

(* Size variants for a single location: 1, 8, 48 and 128-byte stores,
   missing either the writeback or the fence. 8 cases. *)
let nodur_sizes =
  List.concat_map
    (fun missing ->
      List.map
        (fun size ->
          let id =
            Printf.sprintf "nodur_%s_size%d" (match missing with Clf -> "noclf" | Fence_only -> "nofence") size
          in
          let run e =
            reg e;
            Engine.store_bytes e ~addr:300 (Bytes.make size 'x');
            (match missing with
            | Clf -> ()
            | Fence_only -> Engine.flush_range e ~addr:300 ~size);
            Engine.annotate e (Event.Assert_durable { addr = 300; size })
          in
          case id Bug.No_durability run)
        [ 1; 8; 48; 128 ])
    [ Clf; Fence_only ]

(* Structured cases: realistic code shapes with a durability hole.
   12 cases. *)
let nodur_structured =
  [
    case "nodur_unpersisted_pointee" Bug.No_durability (fun e ->
        reg e;
        (* Node written but never flushed; the pointer to it is. *)
        Engine.store_i64 e ~addr:1024 99L;
        Engine.store_int e ~addr:0 1024;
        Engine.persist e ~addr:0 ~size:8;
        Engine.annotate e (Event.Assert_durable { addr = 1024; size = 8 }));
    case "nodur_unpersisted_pointer" Bug.No_durability (fun e ->
        reg e;
        Engine.store_i64 e ~addr:1024 99L;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.store_int e ~addr:0 1024;
        Engine.annotate e (Event.Assert_durable { addr = 0; size = 8 }));
    case "nodur_update_after_persist" Bug.No_durability (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        (* Counter bumped again; the second store is never written back. *)
        Engine.store_i64 e ~addr:512 2L;
        Engine.annotate e (Event.Assert_durable { addr = 512; size = 8 }));
    case "nodur_flush_wrong_line" Bug.No_durability (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 7L;
        Engine.clwb e ~addr:(512 + (4 * line));
        Engine.sfence e;
        Engine.annotate e (Event.Assert_durable { addr = 512; size = 8 }));
    case "nodur_string_tail_line" Bug.No_durability (fun e ->
        reg e;
        (* 3-line string; only the first two lines are written back. *)
        Engine.store_bytes e ~addr:1024 (Bytes.make (3 * line) 's');
        Engine.clwb e ~addr:1024;
        Engine.clwb e ~addr:(1024 + line);
        Engine.sfence e;
        Engine.annotate e (Event.Assert_durable { addr = 1024; size = 3 * line }));
    case "nodur_trailing_clwb" Bug.No_durability (fun e ->
        reg e;
        Engine.store_i64 e ~addr:128 1L;
        Engine.persist e ~addr:128 ~size:8;
        Engine.store_i64 e ~addr:2048 2L;
        Engine.clwb e ~addr:2048;
        (* Program ends with the writeback still in flight: no fence. *)
        Engine.annotate e (Event.Assert_durable { addr = 2048; size = 8 }));
    case "nodur_double_buffer_flag" Bug.No_durability (fun e ->
        reg e;
        Engine.store_bytes e ~addr:1024 (Bytes.make 64 'a');
        Engine.persist e ~addr:1024 ~size:64;
        Engine.store_bytes e ~addr:2048 (Bytes.make 64 'b');
        Engine.persist e ~addr:2048 ~size:64;
        (* Active-buffer switch flag never persisted. *)
        Engine.store_i64 e ~addr:64 1L;
        Engine.annotate e (Event.Assert_durable { addr = 64; size = 8 }));
    case "nodur_log_head_index" Bug.No_durability (fun e ->
        reg e;
        (* Circular-log append persists the entry but not the head. *)
        Engine.store_bytes e ~addr:4096 (Bytes.make 32 'e');
        Engine.persist e ~addr:4096 ~size:32;
        Engine.store_i64 e ~addr:72 1L;
        Engine.annotate e (Event.Assert_durable { addr = 72; size = 8 }));
    case "nodur_partial_row_flush" Bug.No_durability (fun e ->
        reg e;
        (* 5-element row; the flush range covers only 4. *)
        for i = 0 to 4 do
          Engine.store_i64 e ~addr:(line * 8 * (i + 1)) (Int64.of_int i)
        done;
        for i = 0 to 3 do
          Engine.clwb e ~addr:(line * 8 * (i + 1))
        done;
        Engine.sfence e;
        Engine.annotate e (Event.Assert_durable { addr = line * 8 * 5; size = 8 }));
    case "nodur_unpersisted_init" Bug.No_durability (fun e ->
        reg e;
        Engine.store_bytes e ~addr:1024 (Bytes.make 256 '\000');
        Engine.store_i64 e ~addr:1024 42L;
        Engine.persist e ~addr:1024 ~size:8;
        (* Only the first field was persisted; the zeroing was not. *)
        Engine.annotate e (Event.Assert_durable { addr = 1024; size = 256 }));
    case "nodur_helper_function" Bug.No_durability (fun e ->
        reg e;
        Engine.call_marker e ~func:"update_header";
        Engine.store_i64 e ~addr:160 5L;
        Engine.call_marker e ~func:"main";
        Engine.store_i64 e ~addr:4096 6L;
        Engine.persist e ~addr:4096 ~size:8;
        Engine.annotate e (Event.Assert_durable { addr = 160; size = 8 }));
    case "nodur_final_store" Bug.No_durability (fun e ->
        reg e;
        Engine.store_i64 e ~addr:256 1L;
        Engine.persist e ~addr:256 ~size:8;
        Engine.annotate e (Event.Assert_durable { addr = 256; size = 8 });
        (* The very last store of the program, unprotected. *)
        Engine.store_i64 e ~addr:256 2L;
        Engine.annotate e (Event.Assert_durable { addr = 256; size = 8 }))
  ]

let no_durability_cases = nodur_grid @ nodur_sizes @ nodur_structured

(* ------------------------------------------------------------------ *)
(* Multiple overwrites: 2 cases.                                       *)
(* ------------------------------------------------------------------ *)

let multiple_overwrite_cases =
  [
    case "multiw_same_word" Bug.Multiple_overwrites (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.annotate e (Event.Assert_fresh { addr = 512; size = 8 });
        Engine.store_i64 e ~addr:512 2L;
        Engine.persist e ~addr:512 ~size:8);
    case "multiw_overlapping_ranges" Bug.Multiple_overwrites (fun e ->
        reg e;
        Engine.store_bytes e ~addr:512 (Bytes.make 16 'a');
        Engine.annotate e (Event.Assert_fresh { addr = 520; size = 16 });
        Engine.store_bytes e ~addr:520 (Bytes.make 16 'b');
        Engine.persist e ~addr:512 ~size:24);
  ]

(* ------------------------------------------------------------------ *)
(* No order guarantee: 4 cases.                                        *)
(* ------------------------------------------------------------------ *)

let order_config ?func () =
  OC.add OC.empty (OC.order ?func ~first:"data" ~next:"valid" ())

let no_order_cases =
  [
    case "noorder_valid_first"
      ~config:(order_config ())
      Bug.No_order_guarantee
      (fun e ->
        reg e;
        Engine.register_var e ~name:"data" ~addr:1024 ~size:8;
        Engine.register_var e ~name:"valid" ~addr:1088 ~size:8;
        Engine.store_i64 e ~addr:1024 7L;
        Engine.store_i64 e ~addr:1088 1L;
        (* Only the valid flag is persisted first. *)
        Engine.persist e ~addr:1088 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 1024; first_size = 8; then_addr = 1088; then_size = 8 });
        Engine.persist e ~addr:1024 ~size:8);
    case "noorder_data_never"
      ~config:(order_config ())
      Bug.No_order_guarantee
      (fun e ->
        reg e;
        Engine.register_var e ~name:"data" ~addr:1024 ~size:8;
        Engine.register_var e ~name:"valid" ~addr:1088 ~size:8;
        Engine.store_i64 e ~addr:1024 7L;
        Engine.store_i64 e ~addr:1088 1L;
        Engine.persist e ~addr:1088 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 1024; first_size = 8; then_addr = 1088; then_size = 8 }));
    case "noorder_in_function"
      ~config:(order_config ~func:"commit_record" ())
      Bug.No_order_guarantee
      (fun e ->
        reg e;
        Engine.register_var e ~name:"data" ~addr:2048 ~size:16;
        Engine.register_var e ~name:"valid" ~addr:2112 ~size:8;
        Engine.call_marker e ~func:"commit_record";
        Engine.store_bytes e ~addr:2048 (Bytes.make 16 'd');
        Engine.store_i64 e ~addr:2112 1L;
        Engine.persist e ~addr:2112 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 2048; first_size = 16; then_addr = 2112; then_size = 8 });
        Engine.persist e ~addr:2048 ~size:16);
    case "noorder_chain"
      ~config:
        (OC.add
           (OC.add OC.empty (OC.order ~first:"a" ~next:"b" ()))
           (OC.order ~first:"b" ~next:"c" ()))
      Bug.No_order_guarantee
      (fun e ->
        reg e;
        Engine.register_var e ~name:"a" ~addr:1024 ~size:8;
        Engine.register_var e ~name:"b" ~addr:1088 ~size:8;
        Engine.register_var e ~name:"c" ~addr:1152 ~size:8;
        Engine.store_i64 e ~addr:1024 1L;
        Engine.store_i64 e ~addr:1088 2L;
        Engine.store_i64 e ~addr:1152 3L;
        (* c persists first: both chain links are violated. *)
        Engine.persist e ~addr:1152 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 1088; first_size = 8; then_addr = 1152; then_size = 8 });
        Engine.persist e ~addr:1024 ~size:8;
        Engine.persist e ~addr:1088 ~size:8);
  ]

(* ------------------------------------------------------------------ *)
(* Redundant flushes: 6 cases.                                         *)
(* ------------------------------------------------------------------ *)

let redundant_flush_cases =
  [
    case "redflush_twice" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.clwb e ~addr:512;
        Engine.clwb e ~addr:512;
        Engine.sfence e);
    case "redflush_thrice" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.clwb e ~addr:512;
        Engine.clwb e ~addr:512;
        Engine.clwb e ~addr:512;
        Engine.sfence e);
    case "redflush_two_stores_one_line" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.store_i64 e ~addr:520 2L;
        Engine.clwb e ~addr:512;
        Engine.clwb e ~addr:520;
        Engine.sfence e);
    case "redflush_overlapping_ranges" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_bytes e ~addr:512 (Bytes.make 128 'r');
        Engine.flush_range e ~addr:512 ~size:128;
        Engine.flush_range e ~addr:512 ~size:64;
        Engine.sfence e);
    case "redflush_mixed_kinds" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.clflushopt e ~addr:512;
        Engine.clwb e ~addr:512;
        Engine.sfence e);
    case "redflush_loop" Bug.Redundant_flush (fun e ->
        reg e;
        Engine.store_i64 e ~addr:1024 9L;
        for _ = 1 to 4 do
          Engine.clwb e ~addr:1024
        done;
        Engine.sfence e);
  ]

(* ------------------------------------------------------------------ *)
(* Flush nothing: 3 cases.                                             *)
(* ------------------------------------------------------------------ *)

let flush_nothing_cases =
  [
    case "flushnothing_cold_line" Bug.Flush_nothing (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.clwb e ~addr:(16 * line);
        Engine.sfence e);
    case "flushnothing_after_fence" Bug.Flush_nothing (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        (* Same line again, but its store is already durable. *)
        Engine.clwb e ~addr:512;
        Engine.sfence e);
    case "flushnothing_off_by_one_line" Bug.Flush_nothing (fun e ->
        reg e;
        Engine.store_i64 e ~addr:(8 * line) 1L;
        Engine.clwb e ~addr:(9 * line);
        Engine.clwb e ~addr:(8 * line);
        Engine.sfence e);
  ]

(* ------------------------------------------------------------------ *)
(* Redundant logging: 5 cases (epoch model, mini-PMDK transactions).   *)
(* ------------------------------------------------------------------ *)

let with_pool run e =
  let pool = Pool.create e ~size:(4 lsl 20) ~log_capacity:(1 lsl 16) in
  run pool e

let redundant_logging_cases =
  [
    case "redlog_exact_dup" ~model:D.Epoch Bug.Redundant_logging
      (with_pool (fun pool e ->
           let obj = Pool.alloc_raw pool ~size:16 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.add_range_unchecked tx ~addr:obj ~size:16;
           Engine.store_i64 e ~addr:obj 1L;
           Tx.add_range_unchecked tx ~addr:obj ~size:16;
           Tx.commit tx));
    case "redlog_overlapping" ~model:D.Epoch Bug.Redundant_logging
      (with_pool (fun pool e ->
           let obj = Pool.alloc_raw pool ~size:32 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.add_range_unchecked tx ~addr:obj ~size:24;
           Engine.store_i64 e ~addr:obj 1L;
           Tx.add_range_unchecked tx ~addr:(obj + 8) ~size:24;
           Tx.commit tx));
    case "redlog_nested_tx" ~model:D.Epoch Bug.Redundant_logging
      (with_pool (fun pool e ->
           let obj = Pool.alloc_raw pool ~size:16 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.add_range_unchecked tx ~addr:obj ~size:16;
           Engine.store_i64 e ~addr:obj 1L;
           (* A nested transaction logging the same object again. *)
           let inner = Tx.begin_tx pool in
           ignore inner;
           Tx.add_range_unchecked tx ~addr:obj ~size:16;
           Tx.commit inner;
           Tx.commit tx));
    case "redlog_one_of_two_objects" ~model:D.Epoch Bug.Redundant_logging
      (with_pool (fun pool e ->
           let a = Pool.alloc_raw pool ~size:16 in
           let b = Pool.alloc_raw pool ~size:16 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.add_range_unchecked tx ~addr:a ~size:16;
           Engine.store_i64 e ~addr:a 1L;
           Tx.add_range_unchecked tx ~addr:b ~size:16;
           Engine.store_i64 e ~addr:b 2L;
           Tx.add_range_unchecked tx ~addr:b ~size:16;
           Tx.commit tx));
    case "redlog_triple" ~model:D.Epoch Bug.Redundant_logging
      (with_pool (fun pool e ->
           let obj = Pool.alloc_raw pool ~size:8 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.add_range_unchecked tx ~addr:obj ~size:8;
           Engine.store_i64 e ~addr:obj 1L;
           Tx.add_range_unchecked tx ~addr:obj ~size:8;
           Tx.add_range_unchecked tx ~addr:obj ~size:8;
           Tx.commit tx));
  ]

(* ------------------------------------------------------------------ *)
(* Lack durability in epoch: 4 cases. The stores are persisted after   *)
(* the epoch ends, so only the epoch rule can see the violation.       *)
(* ------------------------------------------------------------------ *)

let lack_durability_epoch_cases =
  [
    case "epochdur_missing_clwb" ~model:D.Epoch Bug.Lack_durability_in_epoch (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.clwb e ~addr:1024;
        Engine.sfence e;
        Engine.epoch_end e;
        Engine.persist e ~addr:512 ~size:8);
    case "epochdur_no_writebacks" ~model:D.Epoch Bug.Lack_durability_in_epoch (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.sfence e;
        Engine.epoch_end e;
        Engine.persist e ~addr:512 ~size:8);
    case "epochdur_nested" ~model:D.Epoch Bug.Lack_durability_in_epoch (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:2048 3L;
        Engine.epoch_end e;
        Engine.store_i64 e ~addr:2112 4L;
        Engine.clwb e ~addr:2112;
        Engine.sfence e;
        Engine.epoch_end e;
        Engine.persist e ~addr:2048 ~size:8);
    case "epochdur_clwb_after_fence" ~model:D.Epoch Bug.Lack_durability_in_epoch (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.sfence e;
        (* Written back only after the barrier: still pending at the end
           of the section. *)
        Engine.clwb e ~addr:512;
        Engine.epoch_end e;
        Engine.sfence e);
  ]

(* ------------------------------------------------------------------ *)
(* Redundant epoch fence: 4 cases (Fig. 7a).                           *)
(* ------------------------------------------------------------------ *)

let redundant_epoch_fence_cases =
  [
    case "epochfence_two" ~model:D.Epoch Bug.Redundant_epoch_fence (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.clwb e ~addr:512;
        Engine.sfence e;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.clwb e ~addr:1024;
        Engine.sfence e;
        Engine.epoch_end e);
    case "epochfence_three" ~model:D.Epoch Bug.Redundant_epoch_fence (fun e ->
        reg e;
        Engine.epoch_begin e;
        for i = 0 to 2 do
          Engine.store_i64 e ~addr:(512 + (i * line)) (Int64.of_int i);
          Engine.clwb e ~addr:(512 + (i * line));
          Engine.sfence e
        done;
        Engine.epoch_end e);
    case "epochfence_helper_persist" ~model:D.Epoch Bug.Redundant_epoch_fence (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.call_marker e ~func:"pmemobj_persist";
        Engine.persist e ~addr:512 ~size:8;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.clwb e ~addr:1024;
        Engine.sfence e;
        Engine.epoch_end e);
    case "epochfence_nested_inner" ~model:D.Epoch Bug.Redundant_epoch_fence (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.epoch_end e;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.epoch_end e);
  ]

(* ------------------------------------------------------------------ *)
(* Lack ordering in strands: 2 cases (Fig. 7b).                        *)
(* ------------------------------------------------------------------ *)

let strand_config = OC.add OC.empty (OC.strand_order ~first:"A" ~next:"B")

let lack_ordering_strand_cases =
  [
    case "strand_persist_b_early" ~model:D.Strand ~config:strand_config Bug.Lack_ordering_in_strands (fun e ->
        reg e;
        Engine.register_var e ~name:"A" ~addr:512 ~size:8;
        Engine.register_var e ~name:"B" ~addr:1024 ~size:8;
        Engine.strand_begin e ~strand:0;
        Engine.store_i64 e ~addr:512 1L;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.clwb e ~addr:512;
        Engine.strand_end e ~strand:0;
        Engine.strand_begin e ~strand:1;
        (* Strand 1 persists B before strand 0's barrier has made A
           durable. *)
        Engine.clwb e ~addr:1024;
        Engine.sfence e;
        Engine.strand_end e ~strand:1;
        Engine.strand_begin e ~strand:0;
        Engine.sfence e;
        Engine.strand_end e ~strand:0;
        Engine.join_strand e);
    case "strand_three_way" ~model:D.Strand ~config:strand_config Bug.Lack_ordering_in_strands (fun e ->
        reg e;
        Engine.register_var e ~name:"A" ~addr:2048 ~size:8;
        Engine.register_var e ~name:"B" ~addr:4096 ~size:8;
        Engine.strand_begin e ~strand:0;
        Engine.store_i64 e ~addr:2048 1L;
        Engine.strand_end e ~strand:0;
        Engine.strand_begin e ~strand:1;
        Engine.store_i64 e ~addr:4096 2L;
        Engine.clwb e ~addr:4096;
        Engine.sfence e;
        Engine.strand_end e ~strand:1;
        Engine.strand_begin e ~strand:2;
        Engine.store_i64 e ~addr:8192 3L;
        Engine.persist e ~addr:8192 ~size:8;
        Engine.strand_end e ~strand:2;
        Engine.strand_begin e ~strand:0;
        Engine.persist e ~addr:2048 ~size:8;
        Engine.strand_end e ~strand:0;
        Engine.join_strand e);
  ]

(* ------------------------------------------------------------------ *)
(* Cross-failure semantic bugs: 4 cases. Everything is durable by the  *)
(* end, but at some failure point recovery would read inconsistent     *)
(* data.                                                               *)
(* ------------------------------------------------------------------ *)

let magic = 0xC0FFEEL

(* Layout shared by the cross-failure cases: flag at 0, data at 64,
   backup at 128, counter at 192. *)
let xf_flag = 0
let xf_data = 64
let xf_backup = 128
let xf_counter = 192

let recovery_flag_data img =
  let flag = Pmem.Image.get_i64 img xf_flag in
  flag = 0L || Pmem.Image.get_i64 img xf_data = magic

let recovery_counter_backup img =
  Int64.compare (Pmem.Image.get_i64 img xf_counter) (Pmem.Image.get_i64 img xf_backup) <= 0

let recovery_list_head img =
  let head = Pmem.Image.get_int img xf_flag in
  head = 0 || Pmem.Image.get_i64 img head = magic

let recovery_size_array img =
  let size = Pmem.Image.get_int img xf_flag in
  let ok = ref true in
  for i = 0 to size - 1 do
    if Pmem.Image.get_i64 img (xf_data + (8 * i)) = 0L then ok := false
  done;
  !ok

let cross_failure_cases =
  [
    case "xfail_flag_before_data" ~recovery:recovery_flag_data Bug.Cross_failure_semantic (fun e ->
        reg e;
        (* The valid flag is persisted before the data it guards. *)
        Engine.store_i64 e ~addr:xf_flag 1L;
        Engine.persist e ~addr:xf_flag ~size:8;
        Engine.store_i64 e ~addr:xf_data magic;
        Engine.persist e ~addr:xf_data ~size:8);
    case "xfail_counter_before_backup" ~recovery:recovery_counter_backup Bug.Cross_failure_semantic (fun e ->
        reg e;
        Engine.store_i64 e ~addr:xf_backup 1L;
        Engine.persist e ~addr:xf_backup ~size:8;
        (* Counter runs ahead of its backup between the two persists. *)
        Engine.store_i64 e ~addr:xf_counter 2L;
        Engine.persist e ~addr:xf_counter ~size:8;
        Engine.store_i64 e ~addr:xf_backup 2L;
        Engine.persist e ~addr:xf_backup ~size:8);
    case "xfail_head_before_node" ~recovery:recovery_list_head Bug.Cross_failure_semantic (fun e ->
        reg e;
        (* Head pointer persisted before the node contents. *)
        Engine.store_int e ~addr:xf_flag 1024;
        Engine.persist e ~addr:xf_flag ~size:8;
        Engine.store_i64 e ~addr:1024 magic;
        Engine.persist e ~addr:1024 ~size:8);
    case "xfail_size_before_elems" ~recovery:recovery_size_array Bug.Cross_failure_semantic (fun e ->
        reg e;
        Engine.store_i64 e ~addr:(xf_data + 0) 1L;
        Engine.persist e ~addr:xf_data ~size:8;
        (* New size persisted before the new element. *)
        Engine.store_int e ~addr:xf_flag 2;
        Engine.persist e ~addr:xf_flag ~size:8;
        Engine.store_i64 e ~addr:(xf_data + 8) 1L;
        Engine.persist e ~addr:(xf_data + 8) ~size:8);
  ]

(* ------------------------------------------------------------------ *)
(* Clean controls.                                                     *)
(* ------------------------------------------------------------------ *)

let clean =
  [
    clean_case "clean_store_persist" (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.annotate e (Event.Assert_durable { addr = 512; size = 8 }));
    clean_case "clean_multi_line" (fun e ->
        reg e;
        Engine.store_bytes e ~addr:1024 (Bytes.make 200 'c');
        Engine.persist e ~addr:1024 ~size:200;
        Engine.annotate e (Event.Assert_durable { addr = 1024; size = 200 }));
    clean_case "clean_ordered"
      ~config:(order_config ())
      (fun e ->
        reg e;
        Engine.register_var e ~name:"data" ~addr:1024 ~size:8;
        Engine.register_var e ~name:"valid" ~addr:1088 ~size:8;
        Engine.store_i64 e ~addr:1024 7L;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 1024; first_size = 8; then_addr = 1088; then_size = 8 });
        Engine.store_i64 e ~addr:1088 1L;
        Engine.persist e ~addr:1088 ~size:8;
        Engine.annotate e
          (Event.Assert_ordered { first_addr = 1024; first_size = 8; then_addr = 1088; then_size = 8 }));
    clean_case "clean_epoch" ~model:D.Epoch (fun e ->
        reg e;
        Engine.epoch_begin e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.clwb e ~addr:512;
        Engine.clwb e ~addr:1024;
        Engine.sfence e;
        Engine.epoch_end e);
    clean_case "clean_tx" ~model:D.Epoch
      (with_pool (fun pool _e ->
           let obj = Pool.alloc_raw pool ~size:16 in
           Pool.persist_heap_top pool;
           let tx = Tx.begin_tx pool in
           Tx.store_int tx ~addr:obj 11;
           Tx.store_int tx ~addr:(obj + 8) 22;
           Tx.commit tx));
    clean_case "clean_strand" ~model:D.Strand ~config:strand_config (fun e ->
        reg e;
        Engine.register_var e ~name:"A" ~addr:512 ~size:8;
        Engine.register_var e ~name:"B" ~addr:1024 ~size:8;
        Engine.strand_begin e ~strand:0;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.strand_end e ~strand:0;
        Engine.strand_begin e ~strand:1;
        Engine.store_i64 e ~addr:1024 2L;
        Engine.persist e ~addr:1024 ~size:8;
        Engine.strand_end e ~strand:1;
        Engine.join_strand e);
    clean_case "clean_rewrite_after_durable" (fun e ->
        reg e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.persist e ~addr:512 ~size:8;
        Engine.store_i64 e ~addr:512 2L;
        Engine.persist e ~addr:512 ~size:8);
    clean_case "clean_interleaved_lines" (fun e ->
        reg e;
        for i = 0 to 7 do
          Engine.store_i64 e ~addr:(1024 + (i * line)) (Int64.of_int i)
        done;
        for i = 0 to 7 do
          Engine.clwb e ~addr:(1024 + (i * line))
        done;
        Engine.sfence e);
  ]

let buggy =
  no_durability_cases @ multiple_overwrite_cases @ no_order_cases @ redundant_flush_cases @ flush_nothing_cases
  @ redundant_logging_cases @ lack_durability_epoch_cases @ redundant_epoch_fence_cases @ lack_ordering_strand_cases
  @ cross_failure_cases

let all = buggy @ clean

let count_by_kind kind = List.length (List.filter (fun c -> c.expected = Some kind) buggy)
