(** Programmer-supplied persist-order configuration (§4.5, §8).

    The "no order guarantee" rule needs to know which variable must be
    persisted before which, and at which application function. The user
    writes these constraints once in a configuration file; variables
    are mapped to runtime addresses via [Register_var] events (symbol
    table / intercepted allocations).

    Syntax, one constraint per line:
    {v
      order  <first-var> before <then-var> [at <function>]
      strand-order <first-var> before <then-var>
      # comments and blank lines are ignored
    v}

    [strand-order] constraints feed the lack-ordering-in-strands rule
    (§5.2); they are checked across strand sections without a function
    gate. *)

type constraint_kind = Intra  (** plain [order] *) | Cross_strand  (** [strand-order] *)

type entry = {
  kind : constraint_kind;
  first : string;  (** variable that must persist first *)
  next : string;  (** variable that must persist after *)
  func : string option;  (** gate: only checked once this function ran *)
}

type t

val empty : t

val entries : t -> entry list

val is_empty : t -> bool

val add : t -> entry -> t

val order : ?func:string -> first:string -> next:string -> unit -> entry

val strand_order : first:string -> next:string -> entry

val parse : string -> (t, string) result
(** Parse configuration text. *)

val parse_exn : string -> t

val load : string -> (t, string) result
(** Read and parse a file. *)

val to_string : t -> string
