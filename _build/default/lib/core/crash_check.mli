(** Crash-image consistency checking.

    Samples the possible post-crash PM images of a live {!Pmem.State}
    and runs a user-supplied recovery predicate against each — the
    mechanism behind the cross-failure-semantic rule (§7.3: Valgrind
    cannot pause/resume threads, so the recovery program is called
    manually; we call it on simulated crash images instead). *)

val violations : pm:Pmem.State.t -> recovery:(Pmem.Image.t -> bool) -> ?max_images:int -> unit -> int
(** Number of sampled crash images the recovery predicate rejects. *)

val consistent : pm:Pmem.State.t -> recovery:(Pmem.Image.t -> bool) -> ?max_images:int -> unit -> bool
