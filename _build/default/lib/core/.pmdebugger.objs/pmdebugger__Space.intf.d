lib/core/space.mli:
