lib/core/detector.ml: Addr Bug Crash_check Event Hashtbl Image List Order_config Pmem Pmtrace Printf Sink Space State
