lib/core/detector.mli: Order_config Pmem Pmtrace Space
