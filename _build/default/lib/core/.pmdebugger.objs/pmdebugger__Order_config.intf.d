lib/core/order_config.mli:
