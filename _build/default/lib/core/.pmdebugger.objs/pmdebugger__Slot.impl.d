lib/core/slot.ml: Pmem
