lib/core/order_config.ml: List Printf String
