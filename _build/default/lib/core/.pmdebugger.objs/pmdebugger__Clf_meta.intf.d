lib/core/clf_meta.mli: Format Pmem
