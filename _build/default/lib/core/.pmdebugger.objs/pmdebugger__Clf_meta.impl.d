lib/core/clf_meta.ml: Format Pmem
