lib/core/crash_check.ml: List Pmem
