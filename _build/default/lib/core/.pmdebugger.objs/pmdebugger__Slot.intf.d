lib/core/slot.mli: Pmem
