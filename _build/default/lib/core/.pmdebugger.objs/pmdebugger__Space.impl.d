lib/core/space.ml: Addr Array Clf_meta List Pmem Rangetree Slot
