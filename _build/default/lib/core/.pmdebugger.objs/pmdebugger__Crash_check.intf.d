lib/core/crash_check.mli: Pmem
