type constraint_kind = Intra | Cross_strand

type entry = { kind : constraint_kind; first : string; next : string; func : string option }

type t = entry list

let empty = []

let entries t = t

let is_empty t = t = []

let add t e = t @ [ e ]

let order ?func ~first ~next () = { kind = Intra; first; next; func }

let strand_order ~first ~next = { kind = Cross_strand; first; next; func = None }

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
    match words with
    | [ "order"; first; "before"; next ] -> Ok (Some { kind = Intra; first; next; func = None })
    | [ "order"; first; "before"; next; "at"; func ] -> Ok (Some { kind = Intra; first; next; func = Some func })
    | [ "strand-order"; first; "before"; next ] -> Ok (Some { kind = Cross_strand; first; next; func = None })
    | _ -> Error (Printf.sprintf "line %d: cannot parse %S" lineno line)
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some e) -> go (e :: acc) (lineno + 1) rest
        | Error _ as err -> err)
  in
  go [] 1 lines

let parse_exn text = match parse text with Ok t -> t | Error msg -> failwith ("Order_config.parse: " ^ msg)

let load path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let body = really_input_string ic n in
    close_in ic;
    parse body
  with Sys_error msg -> Error msg

let entry_to_string e =
  let keyword = match e.kind with Intra -> "order" | Cross_strand -> "strand-order" in
  let base = Printf.sprintf "%s %s before %s" keyword e.first e.next in
  match e.func with None -> base | Some f -> base ^ " at " ^ f

let to_string t = String.concat "\n" (List.map entry_to_string t)
