let violations ~pm ~recovery ?(max_images = 64) () =
  let images = Pmem.State.crash_images pm ~max_images () in
  List.fold_left (fun acc img -> if recovery img then acc else acc + 1) 0 images

let consistent ~pm ~recovery ?max_images () = violations ~pm ~recovery ?max_images () = 0
