(** Information collected from one store instruction (§4.1, Fig. 5):
    address, size and flushing state, extended with the epoch flag of
    §5.1 and provenance (event sequence number, thread, strand). *)

type t = {
  mutable addr : int;
  mutable size : int;
  mutable flushed : bool;  (** a CLF covering it was issued since the store *)
  mutable epoch : bool;  (** the store happened inside an epoch section *)
  mutable seq : int;  (** event sequence number of the store *)
  mutable tid : int;
  mutable strand : int;  (** -1 outside any strand section *)
  mutable valid : bool;
}

(** Payload stored in the AVL spill tree for a (possibly split) location. *)
type payload = {
  mutable p_flushed : bool;
  p_epoch : bool;
  p_seq : int;
  p_tid : int;
  p_strand : int;
}

val fresh : unit -> t
(** An invalid slot, for array pre-allocation. *)

val fill : t -> addr:int -> size:int -> epoch:bool -> seq:int -> tid:int -> strand:int -> unit
(** Overwrite a slot in place for a new store (marks it valid and
    not flushed). *)

val payload_of : t -> payload

val range : t -> Pmem.Addr.range
