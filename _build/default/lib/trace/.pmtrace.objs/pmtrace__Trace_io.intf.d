lib/trace/trace_io.mli: Event Recorder
