lib/trace/recorder.ml: Array Bug Engine Event List Sink Unix
