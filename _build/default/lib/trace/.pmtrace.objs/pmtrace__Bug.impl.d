lib/trace/bug.ml: Format List
