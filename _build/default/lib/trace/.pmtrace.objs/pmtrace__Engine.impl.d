lib/trace/engine.ml: Bytes Char Event Int64 List Pmem Sink
