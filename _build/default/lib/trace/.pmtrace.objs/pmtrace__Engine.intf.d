lib/trace/engine.mli: Event Pmem Sink
