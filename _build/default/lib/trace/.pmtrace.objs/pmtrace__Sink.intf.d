lib/trace/sink.mli: Bug Event
