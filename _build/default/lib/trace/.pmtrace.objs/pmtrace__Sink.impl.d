lib/trace/sink.ml: Bug Event
