lib/trace/recorder.mli: Bug Engine Event Sink
