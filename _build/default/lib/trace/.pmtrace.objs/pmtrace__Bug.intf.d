lib/trace/bug.mli: Format
