lib/trace/trace_io.ml: Array Buffer Event List Printf String
