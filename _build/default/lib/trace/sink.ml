type t = { name : string; on_event : Event.t -> unit; finish : unit -> Bug.report }

let make ~name ~on_event ~finish = { name; on_event; finish }

let noop name =
  let n = ref 0 in
  {
    name;
    on_event = (fun _ -> incr n);
    finish = (fun () -> { (Bug.empty_report name) with events_processed = !n });
  }
