(** A detector attached to the instrumentation engine.

    A sink receives every intercepted event in program order and
    produces a {!Bug.report} when the run finishes. Detectors are
    records of closures so that the dispatch cost per event is a single
    indirect call, mirroring Valgrind's callback registration (§6). *)

type t = {
  name : string;
  on_event : Event.t -> unit;
  finish : unit -> Bug.report;
}

val make : name:string -> on_event:(Event.t -> unit) -> finish:(unit -> Bug.report) -> t

val noop : string -> t
(** Counts events and reports nothing — the Nulgrind model. *)
