type t = {
  state : Pmem.State.t;
  mutable sinks : Sink.t list;
  mutable instrument : bool;
  mutable tid : int;
  mutable seq : int;
  mutable n_stores : int;
  mutable n_clfs : int;
  mutable n_fences : int;
  mutable n_other : int;
}

let create ?initial_size () =
  {
    state = Pmem.State.create ?initial_size ();
    sinks = [];
    instrument = true;
    tid = 0;
    seq = 0;
    n_stores = 0;
    n_clfs = 0;
    n_fences = 0;
    n_other = 0;
  }

let pm t = t.state

let attach t sink = t.sinks <- t.sinks @ [ sink ]

let detach_all t = t.sinks <- []

let set_instrumentation t b = t.instrument <- b

let seq t = t.seq

let set_tid t tid = t.tid <- tid

let dispatch t ev =
  t.seq <- t.seq + 1;
  (match ev with
  | Event.Store _ -> t.n_stores <- t.n_stores + 1
  | Event.Clf _ -> t.n_clfs <- t.n_clfs + 1
  | Event.Fence _ -> t.n_fences <- t.n_fences + 1
  | _ -> t.n_other <- t.n_other + 1);
  if t.instrument then
    match t.sinks with
    | [] -> ()
    | [ s ] -> s.Sink.on_event ev
    | sinks -> List.iter (fun s -> s.Sink.on_event ev) sinks

let emit = dispatch

let store_bytes t ~addr b =
  Pmem.State.store t.state ~addr b;
  dispatch t (Event.Store { addr; size = Bytes.length b; tid = t.tid })

let store_i64 t ~addr v =
  Pmem.State.store_i64 t.state ~addr v;
  dispatch t (Event.Store { addr; size = 8; tid = t.tid })

let store_int t ~addr v = store_i64 t ~addr (Int64.of_int v)

let store_u8 t ~addr v =
  let b = Bytes.make 1 (Char.chr (v land 0xff)) in
  store_bytes t ~addr b

let store_string t ~addr s = store_bytes t ~addr (Bytes.of_string s)

let clf_with t kind ~addr ~size =
  Pmem.State.clf t.state ~addr;
  dispatch t (Event.Clf { addr = Pmem.Addr.line_base addr; size; kind; tid = t.tid })

let clwb t ~addr = clf_with t Event.Clwb ~addr ~size:Pmem.Addr.cache_line_size

let clflush t ~addr = clf_with t Event.Clflush ~addr ~size:Pmem.Addr.cache_line_size

let clflushopt t ~addr = clf_with t Event.Clflushopt ~addr ~size:Pmem.Addr.cache_line_size

let flush_range t ~addr ~size =
  List.iter
    (fun line -> clwb t ~addr:(line * Pmem.Addr.cache_line_size))
    (Pmem.Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let sfence t =
  Pmem.State.fence t.state;
  dispatch t (Event.Fence { tid = t.tid })

let persist t ~addr ~size =
  flush_range t ~addr ~size;
  sfence t

let load_i64 t ~addr = Pmem.Image.get_i64 (Pmem.State.volatile t.state) addr

let load_int t ~addr = Pmem.Image.get_int (Pmem.State.volatile t.state) addr

let load_u8 t ~addr = Pmem.Image.get_u8 (Pmem.State.volatile t.state) addr

let load_string t ~addr ~len = Pmem.Image.get_string (Pmem.State.volatile t.state) ~addr ~len

let load_bytes t ~addr ~len = Pmem.Image.read (Pmem.State.volatile t.state) ~addr ~len

let register_pmem t ~base ~size = dispatch t (Event.Register_pmem { base; size })

let epoch_begin t = dispatch t (Event.Epoch_begin { tid = t.tid })

let epoch_end t = dispatch t (Event.Epoch_end { tid = t.tid })

let strand_begin t ~strand = dispatch t (Event.Strand_begin { tid = t.tid; strand })

let strand_end t ~strand = dispatch t (Event.Strand_end { tid = t.tid; strand })

let join_strand t = dispatch t (Event.Join_strand { tid = t.tid })

let tx_log t ~obj_addr ~size = dispatch t (Event.Tx_log { obj_addr; size; tid = t.tid })

let register_var t ~name ~addr ~size = dispatch t (Event.Register_var { name; addr; size })

let call_marker t ~func = dispatch t (Event.Call { func; tid = t.tid })

let annotate t a = dispatch t (Event.Annotation a)

let program_end t = dispatch t Event.Program_end

let counts t =
  [ ("stores", t.n_stores); ("clfs", t.n_clfs); ("fences", t.n_fences); ("other", t.n_other) ]

let n_stores t = t.n_stores

let n_clfs t = t.n_clfs

let n_fences t = t.n_fences
