(** Mini PMFS — a persistent-memory filesystem substrate.

    Table 1 compares PMDebugger against Yat, Intel's validation
    framework for PMFS (a kernel filesystem that keeps its metadata and
    data directly in PM). This module provides the corresponding
    substrate: a small journaling filesystem living entirely in the
    simulated PM, driven through the instrumented engine so any
    detector can watch it — the "kernel-space debugging" extension
    §6 sketches, with [Register_pmem] covering the filesystem's memory.

    Layout (all offsets relative to the superblock base):
    {v
      superblock   magic, block size, counts, roots, journal head
      journal      redo records for metadata updates
      inode table  fixed array of inodes
      bitmap       block allocation bitmap
      data blocks
    v}

    Metadata updates are journaled (write + persist the record, apply,
    persist in place, then retire the record); file data is written in
    place and persisted per block, as PMFS does. Directories are inodes
    whose data blocks hold fixed-size entries. *)

type t

val create :
  Pmtrace.Engine.t ->
  ?inodes:int (** default 128 *) ->
  ?blocks:int (** default 1024 *) ->
  ?block_size:int (** default 512 *) ->
  unit ->
  t
(** Format a fresh filesystem at the start of the engine's PM and
    register the region for debugging. *)

val root_dir : t -> int
(** Inode number of the root directory (0). *)

val engine : t -> Pmtrace.Engine.t

val set_journaling : t -> bool -> unit
(** With journaling off, metadata updates are applied in place without
    a redo record — faster, but recovery loses the replay safety net
    for multi-store updates. *)

val set_unsafe_unlink : t -> bool -> unit
(** Bug-injection knob: unlink releases the inode and its blocks before
    removing the directory entry, so a crash in the window leaves a
    dangling entry — the kind of ordering bug Yat's exhaustive testing
    finds. *)

(** {1 Operations} *)

val mkdir : t -> parent:int -> name:string -> int
(** Returns the new directory's inode number. Raises [Failure] on
    duplicate names, full directories, or exhaustion. *)

val create_file : t -> parent:int -> name:string -> int

val lookup : t -> parent:int -> name:string -> int option

val write_file : t -> inode:int -> off:int -> string -> unit
(** Extends the file as needed (block-granular allocation). *)

val read_file : t -> inode:int -> off:int -> len:int -> string

val file_size : t -> inode:int -> int

val unlink : t -> parent:int -> name:string -> unit
(** Removes a file (or empty directory) and frees its blocks. *)

val readdir : t -> inode:int -> string list

(** {1 Consistency checking (the fsck Yat relies on)} *)

val fsck : Pmem.Image.t -> bool
(** Validates a raw PM image: journal either empty or fully-formed
    records; every live inode's blocks in range, allocated and
    unshared; directory entries referencing live inodes; size
    invariants. Leaked blocks are treated as reclaimable orphans, and
    an image without the superblock magic is an unformatted device —
    vacuously consistent. Runs {!recover} internally first, like a
    mount would. *)

val recover : Pmem.Image.t -> unit
(** Replay any committed journal records into the image and clear the
    journal (crash recovery). *)

val fsck_explain : Pmem.Image.t -> string option
(** Like {!fsck} but returns the first violated invariant, for
    diagnostics. *)
