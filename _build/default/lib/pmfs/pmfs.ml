open Pmtrace

(* Superblock field offsets. *)
let sb_magic = 0
let sb_block_size = 8
let sb_n_inodes = 16
let sb_n_blocks = 24
let sb_journal_off = 32
let sb_journal_cap = 40
let sb_itable_off = 48
let sb_bitmap_off = 56
let sb_data_off = 64
let sb_journal_head = 72
let sb_size = 128

let magic = 0x504d46535f4f434cL (* "PMFS_OCL" *)

(* Inode layout: type(0) size(8) nlink(16) blocks[6](24..71); 80 bytes. *)
let inode_size = 80
let i_type = 0
let i_size = 8
let i_nlink = 16
let i_blocks = 24
let direct_blocks = 6

let t_free = 0
let t_file = 1
let t_dir = 2

(* Directory entry: ino(0) name(8..31); 32 bytes. *)
let dirent_size = 32
let name_max = 23

type t = {
  engine : Engine.t;
  n_inodes : int;
  n_blocks : int;
  block_size : int;
  journal_off : int;
  journal_cap : int;
  itable_off : int;
  bitmap_off : int;
  data_off : int;
  mutable journaling : bool;
  mutable unsafe_unlink : bool;
}

let engine t = t.engine

let set_journaling t b = t.journaling <- b

let set_unsafe_unlink t b = t.unsafe_unlink <- b

let load t addr = Engine.load_int t.engine ~addr

let create engine ?(inodes = 128) ?(blocks = 1024) ?(block_size = 512) () =
  let journal_off = sb_size in
  let journal_cap = 1 lsl 14 in
  let itable_off = journal_off + journal_cap in
  let bitmap_off = itable_off + (inodes * inode_size) in
  let data_off = bitmap_off + blocks in
  let total = data_off + (blocks * block_size) in
  Engine.register_pmem engine ~base:0 ~size:total;
  let t =
    {
      engine;
      n_inodes = inodes;
      n_blocks = blocks;
      block_size;
      journal_off;
      journal_cap;
      itable_off;
      bitmap_off;
      data_off;
      journaling = true;
      unsafe_unlink = false;
    }
  in
  Engine.store_int engine ~addr:sb_block_size block_size;
  Engine.store_int engine ~addr:sb_n_inodes inodes;
  Engine.store_int engine ~addr:sb_n_blocks blocks;
  Engine.store_int engine ~addr:sb_journal_off journal_off;
  Engine.store_int engine ~addr:sb_journal_cap journal_cap;
  Engine.store_int engine ~addr:sb_itable_off itable_off;
  Engine.store_int engine ~addr:sb_bitmap_off bitmap_off;
  Engine.store_int engine ~addr:sb_data_off data_off;
  Engine.store_int engine ~addr:sb_journal_head 0;
  Engine.persist engine ~addr:0 ~size:sb_size;
  (* Zero the inode table and bitmap, then persist. *)
  Engine.store_bytes engine ~addr:itable_off (Bytes.make (inodes * inode_size) '\000');
  Engine.persist engine ~addr:itable_off ~size:(inodes * inode_size);
  Engine.store_bytes engine ~addr:bitmap_off (Bytes.make blocks '\000');
  Engine.persist engine ~addr:bitmap_off ~size:blocks;
  (* Root directory: inode 0, empty. *)
  let root = itable_off in
  Engine.store_int engine ~addr:(root + i_type) t_dir;
  Engine.store_int engine ~addr:(root + i_size) 0;
  Engine.store_int engine ~addr:(root + i_nlink) 1;
  Engine.persist engine ~addr:root ~size:24;
  (* The magic goes in last: a crash mid-format leaves a device fsck
     recognises as unformatted rather than corrupt. *)
  Engine.store_i64 engine ~addr:sb_magic magic;
  Engine.persist engine ~addr:sb_magic ~size:8;
  t

let root_dir _t = 0

let inode_addr t ino = t.itable_off + (ino * inode_size)

let block_addr t b = t.data_off + (b * t.block_size)

(* ---- redo journal ----------------------------------------------------- *)

(* One journaled metadata update: write the redo record (state=1, target
   address, length, new bytes), persist it, apply in place, persist the
   target, then retire the journal (head back to zero). A crash after
   the record persists but before retirement replays the redo. *)
let journaled_write t ~addr (data : bytes) =
  let e = t.engine in
  let len = Bytes.length data in
  if t.journaling then begin
    let rec_addr = t.journal_off in
    if 24 + len > t.journal_cap then failwith "Pmfs: journal record too large";
    Engine.store_int e ~addr:(rec_addr + 8) addr;
    Engine.store_int e ~addr:(rec_addr + 16) len;
    Engine.store_bytes e ~addr:(rec_addr + 24) data;
    Engine.persist e ~addr:(rec_addr + 8) ~size:(16 + len);
    Engine.store_int e ~addr:rec_addr 1;
    Engine.store_int e ~addr:sb_journal_head (24 + len);
    Engine.persist e ~addr:rec_addr ~size:8;
    Engine.persist e ~addr:sb_journal_head ~size:8
  end;
  Engine.store_bytes e ~addr data;
  Engine.persist e ~addr ~size:len;
  if t.journaling then begin
    Engine.store_int e ~addr:sb_journal_head 0;
    Engine.store_int e ~addr:t.journal_off 0;
    Engine.persist e ~addr:sb_journal_head ~size:8;
    Engine.persist e ~addr:t.journal_off ~size:8
  end

let int_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let journaled_set_int t ~addr v = journaled_write t ~addr (int_bytes v)

(* ---- allocation -------------------------------------------------------- *)

let alloc_inode t =
  let rec scan ino =
    if ino >= t.n_inodes then failwith "Pmfs: out of inodes"
    else if load t (inode_addr t ino + i_type) = t_free then ino
    else scan (ino + 1)
  in
  scan 0

let alloc_block t =
  let rec scan b =
    if b >= t.n_blocks then failwith "Pmfs: out of blocks"
    else if Engine.load_u8 t.engine ~addr:(t.bitmap_off + b) = 0 then b
    else scan (b + 1)
  in
  let b = scan 0 in
  journaled_write t ~addr:(t.bitmap_off + b) (Bytes.make 1 '\001');
  b

let free_block t b = journaled_write t ~addr:(t.bitmap_off + b) (Bytes.make 1 '\000')

(* ---- inode / directory helpers ----------------------------------------- *)

let inode_block t ino idx = load t (inode_addr t ino + i_blocks + (8 * idx))

let set_inode_block t ino idx b = journaled_set_int t ~addr:(inode_addr t ino + i_blocks + (8 * idx)) b

(* Block index holding file byte [off], allocating on demand. The slot
   convention is block+1 so that 0 means "unallocated". *)
let block_for t ino ~off ~allocate =
  let idx = off / t.block_size in
  if idx >= direct_blocks then failwith "Pmfs: file too large";
  let slot = inode_block t ino idx in
  if slot <> 0 then Some (slot - 1)
  else if not allocate then None
  else begin
    let b = alloc_block t in
    set_inode_block t ino idx (b + 1);
    Some b
  end

let iter_dirents t ino f =
  (* Directory data: entries packed into its blocks. *)
  let size = load t (inode_addr t ino + i_size) in
  let per_block = t.block_size / dirent_size in
  let n = size / dirent_size in
  let rec go i =
    if i < n then begin
      let idx = i / per_block and within = i mod per_block in
      (match inode_block t ino idx with
      | 0 -> ()
      | slot ->
          let addr = block_addr t (slot - 1) + (within * dirent_size) in
          let entry_ino = load t addr in
          let raw = Engine.load_string t.engine ~addr:(addr + 8) ~len:name_max in
          let name = match String.index_opt raw '\000' with Some i -> String.sub raw 0 i | None -> raw in
          f ~slot_addr:addr ~ino:entry_ino ~name);
      go (i + 1)
    end
  in
  go 0

let dirent_bytes ~ino ~name =
  let b = Bytes.make dirent_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int ino);
  Bytes.blit_string name 0 b 8 (String.length name);
  b

(* Append a directory entry, allocating a block when the current one is
   full. *)
let add_dirent t ~dir ~ino ~name =
  if String.length name > name_max then failwith "Pmfs: name too long";
  if name = "" then failwith "Pmfs: empty name";
  let size = load t (inode_addr t dir + i_size) in
  let per_block = t.block_size / dirent_size in
  let entry_no = size / dirent_size in
  let idx = entry_no / per_block and within = entry_no mod per_block in
  if idx >= direct_blocks then failwith "Pmfs: directory full";
  let b =
    match inode_block t dir idx with
    | 0 ->
        let b = alloc_block t in
        set_inode_block t dir idx (b + 1);
        b
    | slot -> slot - 1
  in
  journaled_write t ~addr:(block_addr t b + (within * dirent_size)) (dirent_bytes ~ino ~name);
  journaled_set_int t ~addr:(inode_addr t dir + i_size) (size + dirent_size)

let lookup t ~parent ~name =
  let found = ref None in
  iter_dirents t parent (fun ~slot_addr:_ ~ino ~name:entry_name ->
      if entry_name = name && ino <> -1 then found := Some ino);
  !found

let init_inode t ino ~kind =
  let b = Bytes.make inode_size '\000' in
  Bytes.set_int64_le b i_type (Int64.of_int kind);
  Bytes.set_int64_le b i_nlink 1L;
  journaled_write t ~addr:(inode_addr t ino) b

let create_node t ~parent ~name ~kind =
  if load t (inode_addr t parent + i_type) <> t_dir then failwith "Pmfs: parent is not a directory";
  if lookup t ~parent ~name <> None then failwith (Printf.sprintf "Pmfs: %S exists" name);
  let ino = alloc_inode t in
  init_inode t ino ~kind;
  add_dirent t ~dir:parent ~ino ~name;
  ino

let mkdir t ~parent ~name = create_node t ~parent ~name ~kind:t_dir

let create_file t ~parent ~name = create_node t ~parent ~name ~kind:t_file

let file_size t ~inode = load t (inode_addr t inode + i_size)

let write_file t ~inode ~off data =
  if load t (inode_addr t inode + i_type) <> t_file then failwith "Pmfs: not a file";
  let e = t.engine in
  let len = String.length data in
  (* Data goes in place, persisted per touched block (PMFS style). *)
  let rec copy pos =
    if pos < len then begin
      let file_off = off + pos in
      let b =
        match block_for t inode ~off:file_off ~allocate:true with
        | Some b -> b
        | None -> assert false
      in
      let within = file_off mod t.block_size in
      let chunk = min (len - pos) (t.block_size - within) in
      Engine.store_string e ~addr:(block_addr t b + within) (String.sub data pos chunk);
      Engine.persist e ~addr:(block_addr t b + within) ~size:chunk;
      copy (pos + chunk)
    end
  in
  copy 0;
  let new_size = max (file_size t ~inode) (off + len) in
  if new_size <> file_size t ~inode then journaled_set_int t ~addr:(inode_addr t inode + i_size) new_size

let read_file t ~inode ~off ~len =
  let buf = Bytes.make len '\000' in
  let rec copy pos =
    if pos < len then begin
      let file_off = off + pos in
      let within = file_off mod t.block_size in
      let chunk = min (len - pos) (t.block_size - within) in
      (match block_for t inode ~off:file_off ~allocate:false with
      | Some b ->
          let s = Engine.load_string t.engine ~addr:(block_addr t b + within) ~len:chunk in
          Bytes.blit_string s 0 buf pos chunk
      | None -> ());
      copy (pos + chunk)
    end
  in
  copy 0;
  Bytes.to_string buf

let unlink t ~parent ~name =
  match lookup t ~parent ~name with
  | None -> failwith (Printf.sprintf "Pmfs: %S not found" name)
  | Some ino ->
      if load t (inode_addr t ino + i_type) = t_dir && file_size t ~inode:ino > 0 then
        failwith "Pmfs: directory not empty";
      let slots = List.init direct_blocks (fun idx -> inode_block t ino idx) in
      let tombstone () =
        iter_dirents t parent (fun ~slot_addr ~ino:entry_ino ~name:entry_name ->
            if entry_name = name && entry_ino = ino then
              journaled_write t ~addr:slot_addr (dirent_bytes ~ino:(-1) ~name:""))
      in
      let release () =
        (* Clear the inode before freeing its blocks: a crash in between
           leaks blocks (fsck reclaims leaks) instead of leaving a live
           inode pointing at freed storage. *)
        journaled_write t ~addr:(inode_addr t ino) (Bytes.make inode_size '\000');
        List.iter (function 0 -> () | slot -> free_block t (slot - 1)) slots
      in
      if t.unsafe_unlink then begin
        (* BUG (for the Yat demonstration): the inode dies while the
           directory still references it. *)
        release ();
        tombstone ()
      end
      else begin
        tombstone ();
        release ()
      end

let readdir t ~inode =
  let acc = ref [] in
  iter_dirents t inode (fun ~slot_addr:_ ~ino ~name -> if ino <> -1 then acc := name :: !acc);
  List.rev !acc

(* ---- raw-image recovery and fsck --------------------------------------- *)

let recover img =
  let open Pmem in
  let journal_off = Image.get_int img sb_journal_off in
  let head = Image.get_int img sb_journal_head in
  if head > 0 then begin
    (* Replay the record only if its commit marker made it. *)
    if Image.get_int img journal_off = 1 then begin
      let addr = Image.get_int img (journal_off + 8) in
      let len = Image.get_int img (journal_off + 16) in
      Image.write img ~addr (Image.read img ~addr:(journal_off + 24) ~len)
    end;
    Image.set_int img sb_journal_head 0;
    Image.set_int img journal_off 0
  end

let fsck_explain img =
  let open Pmem in
  try
    (* No magic: the device was never (completely) formatted — nothing
       to check. *)
    if Image.get_i64 img sb_magic <> magic then raise Exit;
    recover img;
    let n_inodes = Image.get_int img sb_n_inodes in
    let n_blocks = Image.get_int img sb_n_blocks in
    let block_size = Image.get_int img sb_block_size in
    let itable = Image.get_int img sb_itable_off in
    let bitmap = Image.get_int img sb_bitmap_off in
    let used = Array.make n_blocks false in
    let inode_live ino =
      ino >= 0 && ino < n_inodes && Image.get_int img (itable + (ino * inode_size) + i_type) <> t_free
    in
    (* Pass 1: every live inode's blocks are in range, allocated and
       unshared; sizes are within the direct-block capacity. *)
    for ino = 0 to n_inodes - 1 do
      let base = itable + (ino * inode_size) in
      let kind = Image.get_int img (base + i_type) in
      if kind <> t_free then begin
        if kind <> t_file && kind <> t_dir then failwith "bad inode type";
        let size = Image.get_int img (base + i_size) in
        if size < 0 || size > direct_blocks * block_size then failwith "bad size";
        for idx = 0 to direct_blocks - 1 do
          let slot = Image.get_int img (base + i_blocks + (8 * idx)) in
          if slot <> 0 then begin
            let b = slot - 1 in
            if b < 0 || b >= n_blocks then failwith "block out of range";
            if used.(b) then failwith "block double-used";
            used.(b) <- true;
            if Image.get_u8 img (bitmap + b) = 0 then failwith "block used but free in bitmap"
          end
        done
      end
    done;
    (* Leaked bitmap bits (allocated blocks without an owner) are
       reclaimable orphans, not corruption: a crash between the two
       journal records of an allocation legitimately leaves one. *)
    (* Pass 3: directory entries reference live inodes. *)
    if not (inode_live 0) then failwith "no root";
    if Image.get_int img (itable + i_type) <> t_dir then failwith "root not a directory";
    for ino = 0 to n_inodes - 1 do
      let base = itable + (ino * inode_size) in
      if Image.get_int img (base + i_type) = t_dir then begin
        let size = Image.get_int img (base + i_size) in
        let per_block = block_size / dirent_size in
        let data_off = Image.get_int img sb_data_off in
        for entry = 0 to (size / dirent_size) - 1 do
          let idx = entry / per_block and within = entry mod per_block in
          let slot = Image.get_int img (base + i_blocks + (8 * idx)) in
          if slot = 0 then failwith "directory entry beyond allocated blocks"
          else begin
            let addr = data_off + ((slot - 1) * block_size) + (within * dirent_size) in
            let target = Image.get_int img addr in
            if target <> -1 && not (inode_live target) then failwith "dangling directory entry"
          end
        done
      end
    done;
    None
  with
  | Exit -> None
  | Failure msg -> Some msg

let fsck img = fsck_explain img = None
