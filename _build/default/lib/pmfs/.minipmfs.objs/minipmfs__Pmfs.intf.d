lib/pmfs/pmfs.mli: Pmem Pmtrace
