lib/pmfs/pmfs.ml: Array Bytes Engine Image Int64 List Pmem Pmtrace Printf String
