lib/pmfs/yat.ml: Bug Event Hashtbl List Pmem Pmfs Pmtrace Printf Sink
