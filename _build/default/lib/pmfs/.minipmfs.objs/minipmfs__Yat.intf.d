lib/pmfs/yat.mli: Pmem Pmtrace
