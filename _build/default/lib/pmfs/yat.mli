(** Yat-style exhaustive crash-state validation (Table 1).

    Yat validates PMFS by replaying memory-operation traces, simulating
    crashes at reordering points, and running the filesystem checker
    (fsck) on each resulting state. This detector does the same against
    the mini-PMFS: at every fence (a bounded number of them) it samples
    the possible crash images of the live PM state and runs {!Pmfs.fsck}
    on each. Slow and domain-specific — exactly the Table 1 trade-off
    ("Perf. overhead: High; Target domain: PMFS") — but thorough within
    its domain. *)

type t

val create :
  ?max_failure_points:int (** default 64 *) ->
  ?images_per_point:int (** default 16 *) ->
  pm:Pmem.State.t ->
  unit ->
  t

val sink : t -> Pmtrace.Sink.t
(** Inconsistent crash states are reported as
    [Cross_failure_semantic] findings (the closest shared
    vocabulary: recovery would observe a broken filesystem). *)

val states_checked : t -> int
