(** YCSB core-workload driver (loads A–F) against the mini memcached,
    as the paper's characterization runs it (§3). *)

type load = A | B | C | D | E | F

val all : load list

val load_name : load -> string
(** "a_YCSB" ... "f_YCSB", the Fig. 2 labels. *)

val run_load : load -> Workload.params -> Pmtrace.Engine.t -> unit

val spec : load -> Workload.spec
