open Pmtrace

let run (p : Workload.params) engine =
  let fs = Minipmfs.Pmfs.create engine ~inodes:256 ~blocks:2048 () in
  let rng = Prng.create p.Workload.seed in
  let root = Minipmfs.Pmfs.root_dir fs in
  (* A handful of directories, then a file-churn phase. *)
  let dirs = Array.init 4 (fun i -> Minipmfs.Pmfs.mkdir fs ~parent:root ~name:(Printf.sprintf "dir%d" i)) in
  let live = Hashtbl.create 64 in
  for op = 1 to p.Workload.n do
    let dir = dirs.(Prng.below rng (Array.length dirs)) in
    let name = Printf.sprintf "f%03d" (Prng.below rng 64) in
    let key = (dir, name) in
    match Hashtbl.find_opt live key with
    | None ->
        let ino = Minipmfs.Pmfs.create_file fs ~parent:dir ~name in
        Minipmfs.Pmfs.write_file fs ~inode:ino ~off:0 (Printf.sprintf "payload-%08d" op);
        Hashtbl.replace live key ino
    | Some ino ->
        if Prng.below rng 4 = 0 then begin
          Minipmfs.Pmfs.unlink fs ~parent:dir ~name;
          Hashtbl.remove live key
        end
        else begin
          let off = Prng.below rng 4 * 16 in
          Minipmfs.Pmfs.write_file fs ~inode:ino ~off (Printf.sprintf "update-%08d" op);
          ignore (Minipmfs.Pmfs.read_file fs ~inode:ino ~off:0 ~len:16)
        end
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "pmfs";
    model = Pmdebugger.Detector.Strict;
    run;
    description = "journaling PM filesystem under a file-churn driver (the Yat target domain)";
  }
