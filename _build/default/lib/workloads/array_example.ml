open Pmtrace
open Minipmdk

(* Metadata record: [0..31] name (32 bytes), [32] size, [40] type,
   [48] array offset. *)

let info_size = 56

let max_name = 32

let allocate ?(fixed = false) pool ~name ~n_elems =
  let e = Pool.engine pool in
  let tx = Tx.begin_tx pool in
  (* do_alloc: write the metadata fields inside the epoch section. *)
  let info = Pool.alloc_raw pool ~size:info_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:info ~size:info_size;
  let padded = Bytes.make max_name '\000' in
  Bytes.blit_string name 0 padded 0 (min (String.length name) (max_name - 1));
  Engine.store_bytes e ~addr:info padded;
  Engine.store_int e ~addr:(info + 32) n_elems;
  Engine.store_int e ~addr:(info + 40) 1 (* TYPE_INT *);
  (* alloc_int: allocate and persist only the element array. The stock
     example calls pmemobj_persist here — a flush plus a fence inside
     the epoch section; the fix writes back without the extra fence and
     lets the commit barrier drain. *)
  let arr = Pool.alloc_raw pool ~size:(8 * n_elems) in
  Engine.store_bytes e ~addr:arr (Bytes.make (8 * n_elems) '\000');
  if fixed then Engine.flush_range e ~addr:arr ~size:(8 * n_elems)
  else Engine.persist e ~addr:arr ~size:(8 * n_elems);
  Engine.store_int e ~addr:(info + 48) arr;
  if fixed then
    (* The corrected example snapshots nothing extra but flushes the
       metadata before the epoch barrier. *)
    Engine.flush_range e ~addr:info ~size:info_size;
  (* Stock bug: commit flushes only the snapshotted allocator ranges;
     the metadata stores reach the epoch end unflushed because the
     example relied on the lone pmemobj_persist above. *)
  Tx.commit tx ~skip_flush_of:(if fixed then [] else [ Pmem.Addr.of_base_size info info_size ]);
  info

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let rng = Prng.create p.Workload.seed in
  for i = 1 to max 1 (p.Workload.n / 16) do
    ignore (allocate pool ~name:(Printf.sprintf "arr%d" i) ~n_elems:(1 + Prng.below rng 15))
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "array";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "PMDK array example (stock path lacks durability in its epoch)";
  }
