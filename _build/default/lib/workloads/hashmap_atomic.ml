open Pmtrace
open Minipmdk

(* Root object: [0] nbuckets, [8] count, [16] buckets_off.
   Entry: [0] key, [8] value, [16] next. *)

let entry_size = 24

type t = { pool : Pool.t; root_off : int; nbuckets : int; buckets_off : int; annotate : bool }

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr

(* The map_create path of the PMDK data_store example: a transaction
   wraps creation, and the nested create_hashmap helper persists the
   header with its own flush+fence — a second fence inside the epoch
   section unless the fix is applied. *)
let create ?(buckets = 1024) ?(fixed_create = false) pool =
  let e = Pool.engine pool in
  let root_off = Pool.root pool ~size:24 in
  let tx = Tx.begin_tx pool in
  let buckets_off = Pool.alloc_raw pool ~size:(8 * buckets) in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:buckets_off ~size:(8 * buckets);
  Engine.store_bytes e ~addr:buckets_off (Bytes.make (8 * buckets) '\000');
  Tx.add_range tx ~addr:root_off ~size:24;
  Engine.store_int e ~addr:root_off buckets;
  Engine.store_int e ~addr:(root_off + 8) 0;
  Engine.store_int e ~addr:(root_off + 16) buckets_off;
  if not fixed_create then
    (* create_hashmap's pmemobj_persist(pop, hashmap, ...) *)
    Engine.persist e ~addr:root_off ~size:24;
  Tx.commit tx;
  { pool; root_off; nbuckets = buckets; buckets_off; annotate = false }

let hash t key = (key * 2654435761) land max_int mod t.nbuckets

let insert t ~key ~value =
  let e = engine t in
  let slot = t.buckets_off + (8 * hash t key) in
  let rec find_entry node = if node = 0 then None else if get t node = key then Some node else find_entry (get t (node + 16)) in
  (match find_entry (get t slot) with
  | Some entry -> Atomic.publish_int t.pool ~addr:(entry + 8) value
  | None ->
      let head = get t slot in
      let entry =
        Atomic.alloc t.pool ~size:entry_size ~init:(fun off ->
            Engine.store_int e ~addr:off key;
            Engine.store_int e ~addr:(off + 8) value;
            Engine.store_int e ~addr:(off + 16) head)
      in
      Atomic.publish_int t.pool ~addr:slot entry;
      Atomic.publish_int t.pool ~addr:(t.root_off + 8) (get t (t.root_off + 8) + 1));
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = slot; size = 8 })

let find t ~key =
  let slot = t.buckets_off + (8 * hash t key) in
  let rec go node = if node = 0 then None else if get t node = key then Some (get t (node + 8)) else go (get t (node + 16)) in
  go (get t slot)

let cardinal t = get t (t.root_off + 8)

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng (p.Workload.n * 4)) ~value:(Prng.next rng land 0xFFFF)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "hashmap_atomic";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "atomic-API chained hashmap (stock create path carries the PMDK redundant-fence defect)";
  }
