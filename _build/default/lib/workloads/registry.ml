let micro =
  [ Btree.spec; Ctree.spec; Rtree.spec; Rbtree.spec; Hashmap_tx.spec; Hashmap_atomic.spec; Synth_strand.spec ]

let all = micro @ [ Memcached.spec; Redis.spec; Array_example.spec; Pmfs_wl.spec; Pqueue.spec ] @ List.map Ycsb.spec Ycsb.all

let characterization =
  [ Btree.spec; Ctree.spec; Rbtree.spec; Hashmap_tx.spec; Hashmap_atomic.spec ] @ List.map Ycsb.spec Ycsb.all

let find name = List.find_opt (fun (s : Workload.spec) -> s.Workload.name = name) all

let find_exn name =
  match find name with Some s -> s | None -> failwith (Printf.sprintf "unknown workload %S" name)

let names () = List.map (fun (s : Workload.spec) -> s.Workload.name) all
