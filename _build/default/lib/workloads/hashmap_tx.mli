(** Persistent chained hashmap with transactional inserts (the PMDK
    [hashmap_tx] example).

    Besides the transactional bucket updates, the map maintains a
    per-bucket access-counter region that is stored on every insert but
    only flushed once every [counter_flush_period] operations — outside any
    transaction. Those late-persisted stores are what gives hashmap_tx
    its distinctive profile in the paper: many stores whose guarding
    fence is far away (Fig. 2a tail) and a large AVL spill tree
    (Fig. 11: hundreds of nodes, vs tens for every other workload). *)

type t

val counter_flush_period : int

val create : ?buckets:int (** default 1024 *) -> Minipmdk.Pool.t -> t

val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

val cardinal : t -> int

val spec : Workload.spec
