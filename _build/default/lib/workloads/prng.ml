type t = { mutable s : int64 }

let create seed = { s = Int64.of_int (if seed = 0 then 0x2545F491 else seed) }

let next t =
  let x = t.s in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.s <- x;
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 1) land max_int

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below";
  next t mod bound

let float t = float_of_int (next t land 0xFFFFFF) /. float_of_int 0x1000000
