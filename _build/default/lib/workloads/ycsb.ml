open Pmtrace
open Minipmdk

type load = A | B | C | D | E | F

let all = [ A; B; C; D; E; F ]

let load_name = function
  | A -> "a_YCSB"
  | B -> "b_YCSB"
  | C -> "c_YCSB"
  | D -> "d_YCSB"
  | E -> "e_YCSB"
  | F -> "f_YCSB"

type op = Read | Update | Insert | Scan | Read_modify_write

(* The standard YCSB core mixes. *)
let pick_op load (dice : int) =
  match load with
  | A -> if dice < 50 then Read else Update
  | B -> if dice < 95 then Read else Update
  | C -> Read
  | D -> if dice < 95 then Read else Insert
  | E -> if dice < 95 then Scan else Insert
  | F -> if dice < 50 then Read else Read_modify_write

let run_load load (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let cache = Memcached.create pool ~max_items:(max 64 (p.Workload.n / 4)) in
  let rng = Prng.create p.Workload.seed in
  let records = max 64 (p.Workload.n / 4) in
  let zipf = Zipf.create ~n:records () in
  let key_of i = Printf.sprintf "user%08d" i in
  let value_of i = Printf.sprintf "field0=%016d" i in
  (* Load phase: populate the records. *)
  let loaded = ref 0 in
  for i = 0 to (records / 4) - 1 do
    Memcached.set cache ~key:(key_of i) ~value:(value_of i);
    incr loaded
  done;
  (* Run phase. *)
  for op = 1 to p.Workload.n do
    let i = Zipf.sample zipf rng mod max 1 !loaded in
    match pick_op load (Prng.below rng 100) with
    | Read -> ignore (Memcached.get cache ~key:(key_of i))
    | Update -> Memcached.set cache ~key:(key_of i) ~value:(value_of op)
    | Insert ->
        Memcached.set cache ~key:(key_of !loaded) ~value:(value_of op);
        incr loaded
    | Scan ->
        (* memcached has no range scan; YCSB-E maps to a short multi-get. *)
        let len = 1 + Prng.below rng 8 in
        for j = i to min (!loaded - 1) (i + len) do
          ignore (Memcached.get cache ~key:(key_of j))
        done
    | Read_modify_write -> (
        match Memcached.get cache ~key:(key_of i) with
        | Some v -> Memcached.set cache ~key:(key_of i) ~value:(String.sub v 0 (min 8 (String.length v)) ^ "!")
        | None -> Memcached.set cache ~key:(key_of i) ~value:(value_of op))
  done;
  Engine.program_end engine

let spec load =
  {
    Workload.name = load_name load;
    model = Pmdebugger.Detector.Strict;
    run = run_load load;
    description = "YCSB load " ^ load_name load ^ " against mini memcached";
  }
