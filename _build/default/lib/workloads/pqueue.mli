(** Persistent circular FIFO queue — the append-mostly log pattern of
    the WHISPER suite the paper's characterization draws on (§3).

    Fixed-capacity ring of fixed-size records with persistent head/tail
    indexes; enqueue persists the record before publishing the new tail,
    dequeue publishes the new head, both transactionally (epoch
    model). *)

type t

val create : ?capacity:int (** default 256 records *) -> Minipmdk.Pool.t -> t

val enqueue : t -> string -> bool
(** False when full. Values are truncated to the record payload size. *)

val dequeue : t -> string option

val length : t -> int

val is_empty : t -> bool

val record_payload : int
(** Payload bytes per record. *)

val spec : Workload.spec
(** Producer/consumer churn: bursts of enqueues drained by dequeues. *)
