(** Mini PM-aware redis — epoch persistency model (Table 4).

    Models Intel's pmem-redis port: a chained dict in PM, per-command
    transactions, an approximated-LRU eviction policy (sampled idle
    times, as real redis does) driven by a logical clock, and an
    LRU-test driver in the style of [redis-cli --lru-test]: populate up
    to [maxmemory] keys, then issue a skewed get/set stream that forces
    steady-state evictions. *)

type t

val create : ?buckets:int (** default 1024 *) -> ?maxmemory_keys:int (** default 1024 *) -> Minipmdk.Pool.t -> t

val set : t -> key:int -> value:int -> unit
val get : t -> key:int -> int option
val key_count : t -> int
val evictions : t -> int

val spec : Workload.spec
