open Pmtrace
open Minipmdk

(* Root: [0] nbuckets, [8] count, [16] buckets_off, [24] evictions.
   Entry: [0] key, [8] value, [16] next, [24] lru_clock. *)

let entry_size = 32

type t = {
  pool : Pool.t;
  root_off : int;
  nbuckets : int;
  buckets_off : int;
  maxmemory_keys : int;
  mutable clock : int;
  mutable freelist : int list;  (** volatile free-chunk cache, like jemalloc state *)
  rng : Prng.t;
}

let engine t = Pool.engine t.pool

let get_i t addr = Engine.load_int (engine t) ~addr

let create ?(buckets = 1024) ?(maxmemory_keys = 1024) pool =
  let e = Pool.engine pool in
  let root_off = Pool.root pool ~size:32 in
  let tx = Tx.begin_tx pool in
  let buckets_off = Pool.alloc_raw pool ~size:(8 * buckets) in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:buckets_off ~size:(8 * buckets);
  Engine.store_bytes e ~addr:buckets_off (Bytes.make (8 * buckets) '\000');
  Tx.add_range tx ~addr:root_off ~size:32;
  Engine.store_int e ~addr:root_off buckets;
  Engine.store_int e ~addr:(root_off + 8) 0;
  Engine.store_int e ~addr:(root_off + 16) buckets_off;
  Engine.store_int e ~addr:(root_off + 24) 0;
  Tx.commit tx;
  { pool; root_off; nbuckets = buckets; buckets_off; maxmemory_keys; clock = 1; freelist = []; rng = Prng.create 7 }

let hash t key = (key * 2654435761) land max_int mod t.nbuckets

let find_entry t key =
  let rec go node = if node = 0 then None else if get_i t node = key then Some node else go (get_i t (node + 16)) in
  go (get_i t (t.buckets_off + (8 * hash t key)))

let key_count t = get_i t (t.root_off + 8)

let evictions t = get_i t (t.root_off + 24)

(* Approximated LRU: sample buckets starting at a random point until a
   few candidate entries have been seen, then evict the one with the
   oldest lru_clock, transactionally. *)
let evict_one t =
  let wanted = 5 in
  let best = ref None in
  let seen = ref 0 in
  let start = Prng.below t.rng t.nbuckets in
  let scanned = ref 0 in
  while !seen < wanted && !scanned < t.nbuckets do
    let b = (start + !scanned) mod t.nbuckets in
    incr scanned;
    let rec walk node =
      if node <> 0 then begin
        incr seen;
        let idle = t.clock - get_i t (node + 24) in
        (match !best with
        | Some (_, best_idle) when best_idle >= idle -> ()
        | _ -> best := Some (node, idle));
        walk (get_i t (node + 16))
      end
    in
    walk (get_i t (t.buckets_off + (8 * b)))
  done;
  match !best with
  | None -> ()
  | Some (victim, _) ->
      let e = engine t in
      let key = get_i t victim in
      let slot = t.buckets_off + (8 * hash t key) in
      let tx = Tx.begin_tx t.pool in
      let rec unlink prev node =
        if node = 0 then ()
        else if node = victim then begin
          let next = get_i t (node + 16) in
          if prev = 0 then begin
            Tx.add_range tx ~addr:slot ~size:8;
            Engine.store_int e ~addr:slot next
          end
          else begin
            Tx.add_range tx ~addr:(prev + 16) ~size:8;
            Engine.store_int e ~addr:(prev + 16) next
          end
        end
        else unlink node (get_i t (node + 16))
      in
      unlink 0 (get_i t slot);
      Tx.add_range tx ~addr:(t.root_off + 8) ~size:16;
      Engine.store_int e ~addr:(t.root_off + 8) (key_count t - 1);
      Engine.store_int e ~addr:(t.root_off + 24) (evictions t + 1);
      Tx.commit tx;
      t.freelist <- victim :: t.freelist

let alloc_entry t tx =
  match t.freelist with
  | chunk :: rest ->
      t.freelist <- rest;
      Tx.add_range tx ~addr:chunk ~size:entry_size;
      chunk
  | [] ->
      let chunk = Pool.alloc_raw ~align:32 t.pool ~size:entry_size in
      Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
      Tx.add_range tx ~addr:chunk ~size:entry_size;
      chunk

let set t ~key ~value =
  t.clock <- t.clock + 1;
  let e = engine t in
  (match find_entry t key with
  | Some entry ->
      let tx = Tx.begin_tx t.pool in
      Tx.add_range tx ~addr:(entry + 8) ~size:8;
      Engine.store_int e ~addr:(entry + 8) value;
      Tx.add_range tx ~addr:(entry + 24) ~size:8;
      Engine.store_int e ~addr:(entry + 24) t.clock;
      Tx.commit tx
  | None ->
      if key_count t >= t.maxmemory_keys then evict_one t;
      let slot = t.buckets_off + (8 * hash t key) in
      let tx = Tx.begin_tx t.pool in
      let entry = alloc_entry t tx in
      Engine.store_int e ~addr:entry key;
      Engine.store_int e ~addr:(entry + 8) value;
      Engine.store_int e ~addr:(entry + 16) (get_i t slot);
      Engine.store_int e ~addr:(entry + 24) t.clock;
      Tx.add_range tx ~addr:slot ~size:8;
      Engine.store_int e ~addr:slot entry;
      Tx.add_range tx ~addr:(t.root_off + 8) ~size:8;
      Engine.store_int e ~addr:(t.root_off + 8) (key_count t + 1);
      Tx.commit tx)

let get t ~key =
  t.clock <- t.clock + 1;
  match find_entry t key with
  | None -> None
  | Some entry ->
      (* Touch the LRU clock transactionally (pmem-redis keeps it in the
         persistent entry). *)
      let e = engine t in
      let tx = Tx.begin_tx t.pool in
      Tx.add_range tx ~addr:(entry + 24) ~size:8;
      Engine.store_int e ~addr:(entry + 24) t.clock;
      Tx.commit tx;
      Some (get_i t (entry + 8))

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let maxmemory = max 64 (p.Workload.n / 8) in
  let t = create pool ~maxmemory_keys:maxmemory in
  let rng = Prng.create p.Workload.seed in
  let key_space = max 128 (p.Workload.n / 2) in
  (* redis-cli LRU test: skewed gets with periodic sets over a key space
     larger than maxmemory, driving steady-state eviction. *)
  for op = 1 to p.Workload.n do
    let k = Prng.below rng key_space in
    if op land 3 = 0 then set t ~key:k ~value:op else ignore (get t ~key:k)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "redis";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "mini pmem-redis under an LRU-test driver (approximated-LRU eviction)";
  }
