(** Persistent chained hashmap using the non-transactional atomic API
    (the PMDK [hashmap_atomic] example).

    Every insert allocates and publishes with flush+fence pairs only —
    the most collective-writeback-heavy pattern in the suite (Fig. 2b),
    which is why hashmap_atomic shows the paper's largest PMDebugger
    speedup over Pmemcheck.

    By default, [create] faithfully reproduces the stock-PMDK
    "redundant epoch fence" defect the paper reported to Intel (§7.4
    Bug 2, Fig. 9b): the creation transaction calls
    [pmemobj_persist]-style flush+fence inside the epoch section. Pass
    [~fixed_create:true] for the corrected behaviour. *)

type t

val create : ?buckets:int (** default 1024 *) -> ?fixed_create:bool (** default false *) -> Minipmdk.Pool.t -> t

val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

val cardinal : t -> int

val spec : Workload.spec
