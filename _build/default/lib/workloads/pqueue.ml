open Pmtrace
open Minipmdk

(* Root object: [0] head, [8] tail, [16] capacity, [24] ring_off.
   Record: [0] length, [8..] payload. Head/tail are monotone counters;
   the slot is counter mod capacity. *)

let record_payload = 48

let record_size = 8 + record_payload

type t = { pool : Pool.t; root_off : int; capacity : int; ring_off : int }

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr

let head t = get t t.root_off

let tail t = get t (t.root_off + 8)

let create ?(capacity = 256) pool =
  let e = Pool.engine pool in
  let root_off = Pool.root pool ~size:32 in
  let tx = Tx.begin_tx pool in
  let ring_off = Pool.alloc_raw ~align:64 pool ~size:(capacity * record_size) in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:root_off ~size:32;
  Engine.store_int e ~addr:root_off 0;
  Engine.store_int e ~addr:(root_off + 8) 0;
  Engine.store_int e ~addr:(root_off + 16) capacity;
  Engine.store_int e ~addr:(root_off + 24) ring_off;
  Tx.commit tx;
  { pool; root_off; capacity; ring_off }

let length t = tail t - head t

let is_empty t = length t = 0

let slot_addr t counter = t.ring_off + (counter mod t.capacity * record_size)

let enqueue t value =
  if length t >= t.capacity then false
  else begin
    let e = engine t in
    let addr = slot_addr t (tail t) in
    let len = min (String.length value) record_payload in
    let tx = Tx.begin_tx t.pool in
    (* Record first, then the tail publication — both inside one
       transaction so the commit barrier orders nothing incorrectly and
       recovery rolls back a torn enqueue. *)
    Tx.add_range tx ~addr ~size:(8 + len);
    Engine.store_int e ~addr len;
    Engine.store_string e ~addr:(addr + 8) (String.sub value 0 len);
    Tx.store_int tx ~addr:(t.root_off + 8) (tail t + 1);
    Tx.commit tx;
    true
  end

let dequeue t =
  if is_empty t then None
  else begin
    let e = engine t in
    let addr = slot_addr t (head t) in
    let len = get t addr in
    let value = Engine.load_string e ~addr:(addr + 8) ~len in
    let tx = Tx.begin_tx t.pool in
    Tx.store_int tx ~addr:t.root_off (head t + 1);
    Tx.commit tx;
    Some value
  end

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(16 lsl 20) in
  let t = create pool ~capacity:128 in
  let rng = Prng.create p.Workload.seed in
  for op = 1 to p.Workload.n do
    if Prng.below rng 100 < 60 then ignore (enqueue t (Printf.sprintf "message-%08d" op))
    else ignore (dequeue t)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "pqueue";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "persistent circular FIFO log (WHISPER-style), transactional enqueue/dequeue";
  }
