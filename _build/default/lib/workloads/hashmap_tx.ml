open Pmtrace
open Minipmdk

(* Root object: [0] nbuckets, [8] count, [16] buckets_off, [24] counters_off.
   Bucket: head pointer (8B each).
   Entry: [0] key, [8] value, [16] next.
   Counters: one 8-byte access counter per bucket, updated on every
   insert but persisted lazily in batches. *)

let entry_size = 24

let counter_flush_period = 1024

type t = {
  pool : Pool.t;
  root_off : int;
  nbuckets : int;
  buckets_off : int;
  counters_off : int;
  mutable ops_since_counter_flush : int;
  mutable touched_counters : (int, unit) Hashtbl.t;
  annotate : bool;
}

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr

let create ?(buckets = 1024) pool =
  let e = Pool.engine pool in
  let root_off = Pool.root pool ~size:32 in
  let tx = Tx.begin_tx pool in
  let buckets_off = Pool.alloc_raw pool ~size:(8 * buckets) in
  let counters_off = Pool.alloc_raw pool ~size:(8 * buckets) in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:buckets_off ~size:(8 * buckets);
  Engine.store_bytes e ~addr:buckets_off (Bytes.make (8 * buckets) '\000');
  Tx.add_range tx ~addr:counters_off ~size:(8 * buckets);
  Engine.store_bytes e ~addr:counters_off (Bytes.make (8 * buckets) '\000');
  Tx.add_range tx ~addr:root_off ~size:32;
  Engine.store_int e ~addr:root_off buckets;
  Engine.store_int e ~addr:(root_off + 8) 0;
  Engine.store_int e ~addr:(root_off + 16) buckets_off;
  Engine.store_int e ~addr:(root_off + 24) counters_off;
  Tx.commit tx;
  {
    pool;
    root_off;
    nbuckets = buckets;
    buckets_off;
    counters_off;
    ops_since_counter_flush = 0;
    touched_counters = Hashtbl.create 64;
    annotate = false;
  }

let hash t key = (key * 2654435761) land max_int mod t.nbuckets

(* Lazy counter maintenance: store now, flush a batch later. The store
   survives several fences before its CLF arrives, exercising the
   bookkeeping path where locations migrate to the AVL tree. *)
(* Write back every touched counter, one CLWB per distinct cache line. *)
let write_back_counters t =
  let e = engine t in
  let lines = Hashtbl.create 16 in
  Hashtbl.iter
    (fun b () -> Hashtbl.replace lines (Pmem.Addr.line_of (t.counters_off + (8 * b))) ())
    t.touched_counters;
  Hashtbl.iter (fun line () -> Engine.clwb e ~addr:(line * Pmem.Addr.cache_line_size)) lines;
  Engine.sfence e;
  Hashtbl.reset t.touched_counters;
  t.ops_since_counter_flush <- 0

let bump_counter t bucket =
  let e = engine t in
  let addr = t.counters_off + (8 * bucket) in
  Engine.store_int e ~addr (Engine.load_int e ~addr + 1);
  Hashtbl.replace t.touched_counters bucket ();
  t.ops_since_counter_flush <- t.ops_since_counter_flush + 1;
  if t.ops_since_counter_flush >= counter_flush_period then write_back_counters t

let flush_counters t = if Hashtbl.length t.touched_counters > 0 then write_back_counters t

let insert t ~key ~value =
  let e = engine t in
  let bucket = hash t key in
  let slot = t.buckets_off + (8 * bucket) in
  (* Update an existing entry in place when present. *)
  let rec find_entry node = if node = 0 then None else if get t node = key then Some node else find_entry (get t (node + 16)) in
  let tx = Tx.begin_tx t.pool in
  (match find_entry (get t slot) with
  | Some entry ->
      Tx.add_range tx ~addr:(entry + 8) ~size:8;
      Engine.store_int e ~addr:(entry + 8) value
  | None ->
      let entry = Pool.alloc_raw ~align:32 t.pool ~size:entry_size in
      Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
      Tx.add_range tx ~addr:entry ~size:entry_size;
      Engine.store_int e ~addr:entry key;
      Engine.store_int e ~addr:(entry + 8) value;
      Engine.store_int e ~addr:(entry + 16) (get t slot);
      Tx.add_range tx ~addr:slot ~size:8;
      Engine.store_int e ~addr:slot entry;
      Tx.add_range tx ~addr:(t.root_off + 8) ~size:8;
      Engine.store_int e ~addr:(t.root_off + 8) (get t (t.root_off + 8) + 1));
  Tx.commit tx;
  bump_counter t bucket;
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = slot; size = 8 })

let find t ~key =
  let slot = t.buckets_off + (8 * hash t key) in
  let rec go node = if node = 0 then None else if get t node = key then Some (get t (node + 8)) else go (get t (node + 16)) in
  go (get t slot)

let cardinal t = get t (t.root_off + 8)

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng (p.Workload.n * 4)) ~value:(Prng.next rng land 0xFFFF)
  done;
  flush_counters t;
  Engine.program_end engine

let spec =
  {
    Workload.name = "hashmap_tx";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "transactional chained hashmap with lazily persisted per-bucket counters";
  }
