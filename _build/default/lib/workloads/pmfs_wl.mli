(** Filesystem workload over the mini PMFS: a directory tree is grown
    with file creates, writes, reads and unlinks — the kernel-space
    debugging scenario of §6 (the filesystem's region is registered via
    [Register_pmem] and every metadata update is journaled with
    flush+fence pairs, strict-model style). *)

val spec : Workload.spec
