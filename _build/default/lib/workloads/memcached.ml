open Pmtrace
open Minipmdk

(* Item chunk layout (256 bytes = 4 cache lines):
     line 0 (0..63)    h_next(0) prev(8) next(16) nkey(24) nbytes(32)
                       exptime(48)
     line 1 (64..127)  cas(64) time(72) refcount(80) flags(88)
                       -- metadata the port updates without persisting
     lines 2-3 (128..255) key(128..159) data(160..255)

   Service metadata block (four cache lines at meta_off):
     line A (0..63)    buckets_off(0) slabs_off(8) nbuckets(16)
                       max_items(24)              -- init-time, persisted
     line B (64..127)  lru_head(64)               -- persisted on link,
                                                     not on access bumps
     line C (128..191) freelist_head(128)         -- never persisted
     line D (192..255) curr_items(192) total_items(200) curr_bytes(208)
                       cas_highwater(216) oldest_live(224)
                       stats_evictions(232) lru_tail(240)
                                                  -- never persisted *)

let chunk_size = 256

let it_h_next = 0
let it_prev = 8
let it_next = 16
let it_nkey = 24
let it_nbytes = 32
let it_exptime = 48
let it_cas = 64
let it_time = 72
let it_refcount = 80
let it_flags = 88
let it_key = 128
let it_data = 160

let max_key_len = 32
let max_data_len = 96

let m_buckets_off = 0
let m_slabs_off = 8
let m_nbuckets = 16
let m_max_items = 24
let m_lru_head = 64
let m_lru_tail = 240
let m_freelist_head = 128
let m_curr_items = 192
let m_total_items = 200
let m_curr_bytes = 208
let m_cas_highwater = 216
let m_oldest_live = 224
let m_stats_evictions = 232
let meta_size = 256

type t = {
  pool : Pool.t;
  meta_off : int;
  buckets_off : int;
  slabs_off : int;
  nbuckets : int;
  max_items : int;
  mutable clock : int;  (** logical time for it.time / LRU *)
  mutable next_chunk : int;  (** volatile bump cursor over the slab area *)
  annotate : bool;
}

let engine t = Pool.engine t.pool

let get_i t addr = Engine.load_int (engine t) ~addr
let set_i t addr v = Engine.store_int (engine t) ~addr v

let persist t ~addr ~size = Engine.persist (engine t) ~addr ~size

let create ?(buckets = 256) ?(max_items = 4096) pool =
  let e = Pool.engine pool in
  let meta_off = Pool.root pool ~size:meta_size in
  let buckets_off = Pool.alloc_raw pool ~size:(8 * buckets) in
  Pool.persist_heap_top pool;
  let slabs_off = Pool.alloc_raw pool ~size:(chunk_size * max_items) in
  Pool.persist_heap_top pool;
  Engine.store_bytes e ~addr:buckets_off (Bytes.make (8 * buckets) '\000');
  Engine.persist e ~addr:buckets_off ~size:(8 * buckets);
  let t =
    { pool; meta_off; buckets_off; slabs_off; nbuckets = buckets; max_items; clock = 1; next_chunk = 0; annotate = false }
  in
  set_i t (meta_off + m_buckets_off) buckets_off;
  set_i t (meta_off + m_slabs_off) slabs_off;
  set_i t (meta_off + m_nbuckets) buckets;
  set_i t (meta_off + m_max_items) max_items;
  persist t ~addr:meta_off ~size:32;
  set_i t (meta_off + m_lru_head) 0;
  persist t ~addr:(meta_off + m_lru_head) ~size:8;
  t

let hash t key =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land max_int) key;
  !h mod t.nbuckets

let bucket_slot t key = t.buckets_off + (8 * hash t key)

let item_key t item =
  let nkey = get_i t (item + it_nkey) in
  Engine.load_string (engine t) ~addr:(item + it_key) ~len:nkey

let item_value t item =
  let nbytes = get_i t (item + it_nbytes) in
  Engine.load_string (engine t) ~addr:(item + it_data) ~len:nbytes

let find_item t key =
  let rec go item = if item = 0 then None else if item_key t item = key then Some item else go (get_i t (item + it_h_next)) in
  go (get_i t (bucket_slot t key))

(* ---- LRU list -------------------------------------------------------- *)

(* Unlink an item from the LRU list. [persist_links] distinguishes the
   careful paths (eviction relink of neighbours) from the access-bump
   path that leaves every pointer write unpersisted — bug sites
   it.prev / it.next / memcached.lru_head / memcached.lru_tail. *)
let lru_unlink t item ~persist_links =
  let prev = get_i t (item + it_prev) and next = get_i t (item + it_next) in
  if prev <> 0 then begin
    set_i t (prev + it_next) next;
    if persist_links then persist t ~addr:(prev + it_next) ~size:8
  end
  else begin
    set_i t (t.meta_off + m_lru_head) next;
    if persist_links then persist t ~addr:(t.meta_off + m_lru_head) ~size:8
  end;
  if next <> 0 then begin
    set_i t (next + it_prev) prev;
    if persist_links then persist t ~addr:(next + it_prev) ~size:8
  end
  else begin
    (* BUG SITE memcached.lru_tail: the tail pointer is never persisted
       when an unlink moves it. *)
    set_i t (t.meta_off + m_lru_tail) prev
  end

let lru_link_head t item ~persist_links =
  let head = get_i t (t.meta_off + m_lru_head) in
  set_i t (item + it_prev) 0;
  set_i t (item + it_next) head;
  if head <> 0 then begin
    set_i t (head + it_prev) item;
    if persist_links then persist t ~addr:(head + it_prev) ~size:8
  end
  else begin
    set_i t (t.meta_off + m_lru_tail) item;
    if persist_links then persist t ~addr:(t.meta_off + m_lru_tail) ~size:8
  end;
  set_i t (t.meta_off + m_lru_head) item;
  if persist_links then persist t ~addr:(t.meta_off + m_lru_head) ~size:8

(* ---- slab allocation -------------------------------------------------- *)

let unlink_from_bucket t item =
  let key = item_key t item in
  let slot = bucket_slot t key in
  let rec go prev cur =
    if cur = 0 then ()
    else if cur = item then
      if prev = 0 then begin
        set_i t slot (get_i t (cur + it_h_next));
        persist t ~addr:slot ~size:8
      end
      else
        (* BUG SITE it.h_next: unlinking mid-chain rewrites the previous
           item's chain pointer without persisting it. *)
        set_i t (prev + it_h_next) (get_i t (cur + it_h_next))
    else go cur (get_i t (cur + it_h_next))
  in
  go 0 (get_i t slot)

let evict_tail t =
  let victim = get_i t (t.meta_off + m_lru_tail) in
  if victim <> 0 then begin
    unlink_from_bucket t victim;
    lru_unlink t victim ~persist_links:true;
    (* BUG SITE memcached.stats_evictions / curr_items / curr_bytes:
       statistics kept in PM but never flushed. *)
    set_i t (t.meta_off + m_stats_evictions) (get_i t (t.meta_off + m_stats_evictions) + 1);
    set_i t (t.meta_off + m_curr_items) (get_i t (t.meta_off + m_curr_items) - 1);
    set_i t (t.meta_off + m_curr_bytes) (get_i t (t.meta_off + m_curr_bytes) - get_i t (victim + it_nbytes));
    (* BUG SITE memcached.freelist_head: the free list is linked through
       it.prev and published without persistence. *)
    set_i t (victim + it_prev) (get_i t (t.meta_off + m_freelist_head));
    set_i t (t.meta_off + m_freelist_head) victim
  end

let alloc_item t =
  let free = get_i t (t.meta_off + m_freelist_head) in
  if free <> 0 then begin
    set_i t (t.meta_off + m_freelist_head) (get_i t (free + it_prev));
    free
  end
  else if t.next_chunk < t.max_items then begin
    let item = t.slabs_off + (chunk_size * t.next_chunk) in
    t.next_chunk <- t.next_chunk + 1;
    item
  end
  else begin
    evict_tail t;
    let free = get_i t (t.meta_off + m_freelist_head) in
    if free = 0 then failwith "memcached: out of memory";
    set_i t (t.meta_off + m_freelist_head) (get_i t (free + it_prev));
    free
  end

(* ---- client operations ------------------------------------------------ *)

let next_cas t =
  (* BUG SITE memcached.cas_highwater: the CAS high-water mark lives in
     PM but is bumped without persistence. *)
  let cas = get_i t (t.meta_off + m_cas_highwater) + 1 in
  set_i t (t.meta_off + m_cas_highwater) cas;
  cas

(* Link a fully written item: its header and payload are made durable
   with one fence before any pointer to it is published, then each
   publication store is persisted individually. Line 1 is deliberately
   never flushed — that is where the port keeps cas/time/refcount. *)
let do_item_link t item =
  let e = engine t in
  let key = item_key t item in
  let slot = bucket_slot t key in
  let head = get_i t (t.meta_off + m_lru_head) in
  set_i t (item + it_h_next) (get_i t slot);
  set_i t (item + it_prev) 0;
  set_i t (item + it_next) head;
  Engine.flush_range e ~addr:item ~size:64;
  Engine.flush_range e ~addr:(item + it_key) ~size:(it_data - it_key + get_i t (item + it_nbytes));
  Engine.sfence e;
  (* Publication stores, each persisted before the next. *)
  if head <> 0 then begin
    set_i t (head + it_prev) item;
    persist t ~addr:(head + it_prev) ~size:8
  end
  else begin
    set_i t (t.meta_off + m_lru_tail) item;
    persist t ~addr:(t.meta_off + m_lru_tail) ~size:8
  end;
  set_i t (t.meta_off + m_lru_head) item;
  persist t ~addr:(t.meta_off + m_lru_head) ~size:8;
  set_i t slot item;
  persist t ~addr:slot ~size:8;
  (* BUG SITE it.cas — the paper's Fig. 9a: ITEM_set_cas after linking,
     modified but not persisted. *)
  set_i t (item + it_cas) (next_cas t);
  (* BUG SITES memcached.curr_items / total_items / curr_bytes. *)
  set_i t (t.meta_off + m_curr_items) (get_i t (t.meta_off + m_curr_items) + 1);
  set_i t (t.meta_off + m_total_items) (get_i t (t.meta_off + m_total_items) + 1);
  set_i t (t.meta_off + m_curr_bytes) (get_i t (t.meta_off + m_curr_bytes) + get_i t (item + it_nbytes));
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = slot; size = 8 })

let set t ~key ~value =
  if String.length key > max_key_len || String.length value > max_data_len then invalid_arg "memcached: oversized";
  t.clock <- t.clock + 1;
  match find_item t key with
  | Some item ->
      (* In-place update: data then length, each persisted; the flags
         rewrite is not — BUG SITE it.flags. *)
      let e = engine t in
      Engine.store_string e ~addr:(item + it_data) value;
      persist t ~addr:(item + it_data) ~size:(String.length value);
      set_i t (item + it_nbytes) (String.length value);
      persist t ~addr:(item + it_nbytes) ~size:8;
      set_i t (item + it_flags) t.clock
  | None ->
      let e = engine t in
      let item = alloc_item t in
      set_i t (item + it_nkey) (String.length key);
      set_i t (item + it_nbytes) (String.length value);
      set_i t (item + it_exptime) 0;
      Engine.store_string e ~addr:(item + it_key) key;
      Engine.store_string e ~addr:(item + it_data) value;
      do_item_link t item

(* do_item_update's rate limit, as in real memcached (ITEM_UPDATE_INTERVAL):
   hot items skip the bookkeeping on most accesses. *)
let update_interval = 64

let get t ~key =
  t.clock <- t.clock + 1;
  match find_item t key with
  | None -> None
  | Some item ->
      (* do_item_update: access bookkeeping is written but never
         persisted — BUG SITES it.time and it.refcount — and the LRU
         bump leaves every pointer write unpersisted. *)
      if t.clock - get_i t (item + it_time) > update_interval then begin
        set_i t (item + it_time) t.clock;
        set_i t (item + it_refcount) (get_i t (item + it_refcount) + 1);
        if get_i t (t.meta_off + m_lru_head) <> item then begin
          lru_unlink t item ~persist_links:false;
          lru_link_head t item ~persist_links:false
        end
      end;
      Some (item_value t item)

let delete t ~key =
  t.clock <- t.clock + 1;
  match find_item t key with
  | None -> false
  | Some item ->
      unlink_from_bucket t item;
      lru_unlink t item ~persist_links:true;
      set_i t (t.meta_off + m_curr_items) (get_i t (t.meta_off + m_curr_items) - 1);
      set_i t (t.meta_off + m_curr_bytes) (get_i t (t.meta_off + m_curr_bytes) - get_i t (item + it_nbytes));
      set_i t (item + it_prev) (get_i t (t.meta_off + m_freelist_head));
      set_i t (t.meta_off + m_freelist_head) item;
      true

let touch t ~key ~exptime =
  t.clock <- t.clock + 1;
  match find_item t key with
  | None -> false
  | Some item ->
      (* BUG SITE it.exptime: touch rewrites the expiry without
         persisting it. *)
      set_i t (item + it_exptime) exptime;
      true

let append t ~key ~value =
  t.clock <- t.clock + 1;
  match find_item t key with
  | None -> false
  | Some item ->
      let nbytes = get_i t (item + it_nbytes) in
      let grown = min max_data_len (nbytes + String.length value) in
      let e = engine t in
      (* BUG SITES it.data / it.nbytes: appended bytes and the new
         length are stored but never flushed. *)
      Engine.store_string e ~addr:(item + it_data + nbytes) (String.sub value 0 (grown - nbytes));
      set_i t (item + it_nbytes) grown;
      true

let flush_all t =
  t.clock <- t.clock + 1;
  (* BUG SITE memcached.oldest_live: written once, never persisted. *)
  set_i t (t.meta_off + m_oldest_live) t.clock

let item_count t = get_i t (t.meta_off + m_curr_items)

(* ---- bug-site classification ------------------------------------------ *)

let bug_sites =
  [
    "it.cas";
    "it.time";
    "it.refcount";
    "it.exptime";
    "it.flags";
    "it.nbytes";
    "it.data";
    "it.h_next";
    "it.prev";
    "it.next";
    "memcached.lru_head";
    "memcached.lru_tail";
    "memcached.freelist_head";
    "memcached.curr_items";
    "memcached.total_items";
    "memcached.curr_bytes";
    "memcached.cas_highwater";
    "memcached.oldest_live";
    "memcached.stats_evictions";
  ]

let classify_addr t addr =
  if addr >= t.meta_off && addr < t.meta_off + meta_size then begin
    match addr - t.meta_off with
    | o when o = m_lru_head -> Some "memcached.lru_head"
    | o when o = m_lru_tail -> Some "memcached.lru_tail"
    | o when o = m_freelist_head -> Some "memcached.freelist_head"
    | o when o = m_curr_items -> Some "memcached.curr_items"
    | o when o = m_total_items -> Some "memcached.total_items"
    | o when o = m_curr_bytes -> Some "memcached.curr_bytes"
    | o when o = m_cas_highwater -> Some "memcached.cas_highwater"
    | o when o = m_oldest_live -> Some "memcached.oldest_live"
    | o when o = m_stats_evictions -> Some "memcached.stats_evictions"
    | _ -> None
  end
  else if addr >= t.slabs_off && addr < t.slabs_off + (chunk_size * t.max_items) then begin
    match (addr - t.slabs_off) mod chunk_size with
    | o when o = it_h_next -> Some "it.h_next"
    | o when o = it_prev -> Some "it.prev"
    | o when o = it_next -> Some "it.next"
    | o when o = it_nbytes -> Some "it.nbytes"
    | o when o = it_flags -> Some "it.flags"
    | o when o = it_exptime -> Some "it.exptime"
    | o when o = it_cas -> Some "it.cas"
    | o when o = it_time -> Some "it.time"
    | o when o = it_refcount -> Some "it.refcount"
    | o when o >= it_data -> Some "it.data"
    | _ -> None
  end
  else None

(* ---- memslap driver ---------------------------------------------------- *)

let run_ops t rng ~n ~key_space =
  let zipf = Zipf.create ~n:key_space () in
  let key_of i = Printf.sprintf "key-%06d" i in
  let value_of i = Printf.sprintf "value-%08d-%08d" i (i * 7) in
  for op = 1 to n do
    let k = key_of (Zipf.sample zipf rng) in
    let dice = Prng.below rng 100 in
    if dice < 5 then set t ~key:k ~value:(value_of op)
    else if dice < 93 then ignore (get t ~key:k)
    else if dice < 96 then ignore (delete t ~key:k)
    else if dice < 98 then ignore (touch t ~key:k ~exptime:(op + 1000))
    else ignore (append t ~key:k ~value:"+x");
    if op = n / 2 then flush_all t
  done

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let max_items = max 48 (p.Workload.n / 32) in
  let t =
    { (create pool ~buckets:(max 16 (max_items / 4)) ~max_items) with annotate = p.Workload.annotate }
  in
  let rng = Prng.create p.Workload.seed in
  run_ops t rng ~n:p.Workload.n ~key_space:(max 16 (p.Workload.n / 4));
  Engine.program_end engine

let spec =
  {
    Workload.name = "memcached";
    model = Pmdebugger.Detector.Strict;
    run;
    description = "mini memcached-pmem under a memslap-style driver (5% set)";
  }
