open Pmtrace
open Minipmdk

(* Node layout:
     0   key
     8   value
     16  color (0 = black, 1 = red)
     24  left
     32  right
     40  parent
   A shared sentinel [nil] node (black) terminates every path. *)

let off_key = 0
let off_value = 8
let off_color = 16
let off_left = 24
let off_right = 32
let off_parent = 40
let node_size = 48

let black = 0
let red = 1

(* Root object: [0] root node pointer, [8] nil sentinel pointer. *)
type t = { pool : Pool.t; root_off : int; nil : int; annotate : bool }

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr
let key t n = get t (n + off_key)
let value t n = get t (n + off_value)
let color t n = get t (n + off_color)
let left t n = get t (n + off_left)
let right t n = get t (n + off_right)
let parent t n = get t (n + off_parent)

let set t tx node off v =
  Tx.add_range tx ~addr:(node + off) ~size:8;
  Engine.store_int (engine t) ~addr:(node + off) v

let root_node t = get t t.root_off

let create pool =
  let root_off = Pool.root pool ~size:16 in
  let e = Pool.engine pool in
  let tx = Tx.begin_tx pool in
  let nil = Pool.alloc_raw ~align:64 pool ~size:node_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:nil ~size:node_size;
  Engine.store_int e ~addr:(nil + off_color) black;
  Engine.store_int e ~addr:(nil + off_left) nil;
  Engine.store_int e ~addr:(nil + off_right) nil;
  Engine.store_int e ~addr:(nil + off_parent) nil;
  Tx.add_range tx ~addr:root_off ~size:16;
  Engine.store_int e ~addr:root_off nil;
  Engine.store_int e ~addr:(root_off + 8) nil;
  Tx.commit tx;
  { pool; root_off; nil; annotate = false }

let set_root t tx v = set t tx t.root_off 0 v

let rotate_left t tx x =
  let y = right t x in
  set t tx x off_right (left t y);
  if left t y <> t.nil then set t tx (left t y) off_parent x;
  set t tx y off_parent (parent t x);
  if parent t x = t.nil then set_root t tx y
  else if x = left t (parent t x) then set t tx (parent t x) off_left y
  else set t tx (parent t x) off_right y;
  set t tx y off_left x;
  set t tx x off_parent y

let rotate_right t tx x =
  let y = left t x in
  set t tx x off_left (right t y);
  if right t y <> t.nil then set t tx (right t y) off_parent x;
  set t tx y off_parent (parent t x);
  if parent t x = t.nil then set_root t tx y
  else if x = right t (parent t x) then set t tx (parent t x) off_right y
  else set t tx (parent t x) off_left y;
  set t tx y off_right x;
  set t tx x off_parent y

let rec fixup t tx z =
  if parent t z <> t.nil && color t (parent t z) = red then begin
    let p = parent t z in
    let g = parent t p in
    if p = left t g then begin
      let uncle = right t g in
      if color t uncle = red then begin
        set t tx p off_color black;
        set t tx uncle off_color black;
        set t tx g off_color red;
        fixup t tx g
      end
      else begin
        let z = if z = right t p then (rotate_left t tx p; p) else z in
        let p = parent t z in
        let g = parent t p in
        set t tx p off_color black;
        set t tx g off_color red;
        rotate_right t tx g;
        fixup t tx z
      end
    end
    else begin
      let uncle = left t g in
      if color t uncle = red then begin
        set t tx p off_color black;
        set t tx uncle off_color black;
        set t tx g off_color red;
        fixup t tx g
      end
      else begin
        let z = if z = left t p then (rotate_right t tx p; p) else z in
        let p = parent t z in
        let g = parent t p in
        set t tx p off_color black;
        set t tx g off_color red;
        rotate_left t tx g;
        fixup t tx z
      end
    end
  end

let insert t ~key:k ~value:v =
  let e = engine t in
  let tx = Tx.begin_tx t.pool in
  (* Standard BST descent to the attachment point. *)
  let rec descend node last =
    if node = t.nil then (last, None)
    else if key t node = k then (last, Some node)
    else descend (if k < key t node then left t node else right t node) node
  in
  (match descend (root_node t) t.nil with
  | _, Some existing -> set t tx existing off_value v
  | attach, None ->
      let z = Pool.alloc_raw ~align:64 t.pool ~size:node_size in
      Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
      Tx.add_range tx ~addr:z ~size:node_size;
      Engine.store_int e ~addr:(z + off_key) k;
      Engine.store_int e ~addr:(z + off_value) v;
      Engine.store_int e ~addr:(z + off_color) red;
      Engine.store_int e ~addr:(z + off_left) t.nil;
      Engine.store_int e ~addr:(z + off_right) t.nil;
      Engine.store_int e ~addr:(z + off_parent) attach;
      if attach = t.nil then set_root t tx z
      else if k < key t attach then set t tx attach off_left z
      else set t tx attach off_right z;
      fixup t tx z;
      set t tx (root_node t) off_color black);
  Tx.commit tx;
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = t.root_off; size = 8 })

let find t ~key:k =
  let rec go node =
    if node = t.nil then None
    else if key t node = k then Some (value t node)
    else go (if k < key t node then left t node else right t node)
  in
  go (root_node t)

let iter t f =
  let rec go node =
    if node <> t.nil then begin
      go (left t node);
      f ~key:(key t node) ~value:(value t node);
      go (right t node)
    end
  in
  go (root_node t)

let cardinal t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let check t =
  let root = root_node t in
  if root <> t.nil && color t root <> black then failwith "rbtree: red root";
  let rec go node ~lo ~hi =
    if node = t.nil then 1
    else begin
      let k = key t node in
      (match lo with Some l when k <= l -> failwith "rbtree: BST order violated" | _ -> ());
      (match hi with Some h when k >= h -> failwith "rbtree: BST order violated" | _ -> ());
      if color t node = red && (color t (left t node) = red || color t (right t node) = red) then
        failwith "rbtree: red node with red child";
      let bl = go (left t node) ~lo ~hi:(Some k) in
      let br = go (right t node) ~lo:(Some k) ~hi in
      if bl <> br then failwith "rbtree: unequal black heights";
      bl + if color t node = black then 1 else 0
    end
  in
  ignore (go root ~lo:None ~hi:None)

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng (p.Workload.n * 4)) ~value:(Prng.next rng land 0xFFFF)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "rb_tree";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "PMDK-style red-black tree, one transaction per insert";
  }
