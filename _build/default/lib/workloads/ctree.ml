open Pmtrace
open Minipmdk

(* Node layout:
     0   kind      (0 = leaf, 1 = internal)
     8   key / bit (leaf: key, internal: critical bit index)
     16  value / left
     24  unused / right
   Keys are non-negative ints (63 significant bits). *)

let off_kind = 0
let off_key = 8
let off_a = 16
let off_b = 24
let node_size = 32

type t = { pool : Pool.t; root_off : int; annotate : bool }

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr
let kind t node = get t (node + off_kind)
let nkey t node = get t (node + off_key)
let left t node = get t (node + off_a)
let right t node = get t (node + off_b)
let leaf_value t node = get t (node + off_a)

let create ?root_slot pool =
  let root_off = match root_slot with Some slot -> slot | None -> Pool.root pool ~size:8 in
  { pool; root_off; annotate = false }

let alloc_leaf t tx ~key ~value =
  let e = engine t in
  let node = Pool.alloc_raw ~align:32 t.pool ~size:node_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:node ~size:node_size;
  Engine.store_int e ~addr:(node + off_kind) 0;
  Engine.store_int e ~addr:(node + off_key) key;
  Engine.store_int e ~addr:(node + off_a) value;
  node

let highest_bit x =
  let rec go b = if b < 0 then -1 else if x land (1 lsl b) <> 0 then b else go (b - 1) in
  go 62

let bit_set k b = k land (1 lsl b) <> 0

let insert t ~key:k ~value:v =
  let e = engine t in
  let tx = Tx.begin_tx t.pool in
  let root = get t t.root_off in
  if root = 0 then begin
    let leaf = alloc_leaf t tx ~key:k ~value:v in
    Tx.add_range tx ~addr:t.root_off ~size:8;
    Engine.store_int e ~addr:t.root_off leaf
  end
  else begin
    (* Find the leaf the key would reach. *)
    let rec descend node =
      if kind t node = 0 then node
      else begin
        let b = nkey t node in
        descend (if bit_set k b then right t node else left t node)
      end
    in
    let reached = descend root in
    let existing = nkey t reached in
    if existing = k then begin
      Tx.add_range tx ~addr:(reached + off_a) ~size:8;
      Engine.store_int e ~addr:(reached + off_a) v
    end
    else begin
      let crit = highest_bit (existing lxor k) in
      let leaf = alloc_leaf t tx ~key:k ~value:v in
      (* Re-descend to the insertion point: the first node whose bit is
         below the critical bit (or a leaf). *)
      let rec find_spot ~slot node =
        if kind t node = 1 && nkey t node > crit then begin
          let b = nkey t node in
          let slot = node + if bit_set k b then off_b else off_a in
          find_spot ~slot (get t slot)
        end
        else (slot, node)
      in
      let slot, below = find_spot ~slot:t.root_off root in
      let inner = Pool.alloc_raw ~align:32 t.pool ~size:node_size in
      Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
      Tx.add_range tx ~addr:inner ~size:node_size;
      Engine.store_int e ~addr:(inner + off_kind) 1;
      Engine.store_int e ~addr:(inner + off_key) crit;
      let a, b = if bit_set k crit then (below, leaf) else (leaf, below) in
      Engine.store_int e ~addr:(inner + off_a) a;
      Engine.store_int e ~addr:(inner + off_b) b;
      Tx.add_range tx ~addr:slot ~size:8;
      Engine.store_int e ~addr:slot inner
    end
  end;
  Tx.commit tx;
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = t.root_off; size = 8 })

let find t ~key:k =
  let root = get t t.root_off in
  if root = 0 then None
  else begin
    let rec descend node =
      if kind t node = 0 then if nkey t node = k then Some (leaf_value t node) else None
      else descend (if bit_set k (nkey t node) then right t node else left t node)
    in
    descend root
  end

let iter t f =
  let root = get t t.root_off in
  let rec go node =
    if node <> 0 then
      if kind t node = 0 then f ~key:(nkey t node) ~value:(leaf_value t node)
      else begin
        go (left t node);
        go (right t node)
      end
  in
  go root

let cardinal t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let check t =
  let root = get t t.root_off in
  let rec go node ~max_bit =
    if node <> 0 then
      if kind t node = 0 then ()
      else begin
        let b = nkey t node in
        if b >= max_bit then failwith "ctree: bit indexes not strictly decreasing";
        (* Every key under the right child must have bit b set; left, clear. *)
        let rec check_leaves n expected =
          if kind t n = 0 then begin
            if bit_set (nkey t n) b <> expected then failwith "ctree: key disagrees with path"
          end
          else begin
            check_leaves (left t n) expected;
            check_leaves (right t n) expected
          end
        in
        check_leaves (left t node) false;
        check_leaves (right t node) true;
        go (left t node) ~max_bit:b;
        go (right t node) ~max_bit:b
      end
  in
  go root ~max_bit:63

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng (p.Workload.n * 4)) ~value:(Prng.next rng land 0xFFFF)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "c_tree";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "PMDK-style crit-bit tree, one transaction per insert";
  }
