open Pmtrace
open Minipmdk

(* Node layout:
     0    has_value (0/1)
     8    value
     16   children[16]
   Keys are consumed 4 bits at a time, least-significant nibble first,
   over a fixed depth of 8 levels (32-bit key space). *)

let off_has = 0
let off_value = 8
let off_children = 16
let node_size = off_children + (16 * 8)

let levels = 8

type t = { pool : Pool.t; root_off : int; annotate : bool }

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr

let create pool =
  let root_off = Pool.root pool ~size:8 in
  let e = Pool.engine pool in
  let tx = Tx.begin_tx pool in
  let node = Pool.alloc_raw pool ~size:node_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:node ~size:node_size;
  Engine.store_bytes e ~addr:node (Bytes.make node_size '\000');
  Tx.add_range tx ~addr:root_off ~size:8;
  Engine.store_int e ~addr:root_off node;
  Tx.commit tx;
  { pool; root_off; annotate = false }

let nibble key level = (key lsr (4 * level)) land 0xF

let alloc_node t tx =
  let e = engine t in
  let node = Pool.alloc_raw t.pool ~size:node_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:node ~size:node_size;
  Engine.store_bytes e ~addr:node (Bytes.make node_size '\000');
  node

let insert t ~key:k ~value:v =
  let e = engine t in
  let tx = Tx.begin_tx t.pool in
  let rec go node level =
    if level = levels then begin
      Tx.add_range tx ~addr:(node + off_has) ~size:16;
      Engine.store_int e ~addr:(node + off_has) 1;
      Engine.store_int e ~addr:(node + off_value) v
    end
    else begin
      let slot = node + off_children + (8 * nibble k level) in
      let child = get t slot in
      let child =
        if child <> 0 then child
        else begin
          let fresh = alloc_node t tx in
          Tx.add_range tx ~addr:slot ~size:8;
          Engine.store_int e ~addr:slot fresh;
          fresh
        end
      in
      go child (level + 1)
    end
  in
  go (get t t.root_off) 0;
  Tx.commit tx;
  if t.annotate then Engine.annotate e (Event.Assert_durable { addr = t.root_off; size = 8 })

let find t ~key:k =
  let rec go node level =
    if node = 0 then None
    else if level = levels then if get t (node + off_has) = 1 then Some (get t (node + off_value)) else None
    else go (get t (node + off_children + (8 * nibble k level))) (level + 1)
  in
  go (get t t.root_off) 0

let iter t f =
  let rec go node level key_acc =
    if node <> 0 then
      if level = levels then begin
        if get t (node + off_has) = 1 then f ~key:key_acc ~value:(get t (node + off_value))
      end
      else
        for nib = 0 to 15 do
          go (get t (node + off_children + (8 * nib))) (level + 1) (key_acc lor (nib lsl (4 * level)))
        done
  in
  go (get t t.root_off) 0 0

let cardinal t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(256 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  let key_space = 1 lsl 30 in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng key_space) ~value:(Prng.next rng land 0xFFFF)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "r_tree";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "PMDK-style radix tree, one transaction per insert";
  }
