type params = { n : int; seed : int; annotate : bool }

let params ?(seed = 42) ?(annotate = false) ~n () = { n; seed; annotate }

type spec = {
  name : string;
  model : Pmdebugger.Detector.model;
  run : params -> Pmtrace.Engine.t -> unit;
  description : string;
}
