(** Deterministic xorshift64* pseudo-random numbers, so every workload
    trace is reproducible run to run. *)

type t

val create : int -> t
(** Seeded generator (seed 0 is remapped). *)

val next : t -> int
(** Uniform non-negative int. *)

val below : t -> int -> int
(** Uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)
