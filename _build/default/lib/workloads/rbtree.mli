(** Persistent red-black tree (the PMDK [rbtree] example): classic
    sentinel-based insertion with recoloring rotations, all inside one
    transaction per insert. *)

type t

val create : Minipmdk.Pool.t -> t

val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

val iter : t -> (key:int -> value:int -> unit) -> unit

val cardinal : t -> int

val check : t -> unit
(** Validates binary-search ordering, red-red absence and black-height
    balance; raises [Failure]. *)

val spec : Workload.spec
