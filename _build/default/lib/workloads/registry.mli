(** Name-indexed access to every evaluation workload. *)

val all : Workload.spec list
(** The Table 4 suite plus the YCSB loads and the PMDK array example. *)

val micro : Workload.spec list
(** The seven micro-benchmarks of Fig. 8a–g. *)

val characterization : Workload.spec list
(** The eleven programs of Fig. 2 (five PMDK structures + six YCSB
    loads), in the figure's order. *)

val find : string -> Workload.spec option

val find_exn : string -> Workload.spec

val names : unit -> string list
