(** The PMDK [array] example: an allocation transaction that records
    array metadata (name, size, type) and allocates the element
    storage.

    By default it reproduces the stock-PMDK "lack durability in epoch"
    defect the paper reported to Intel (§7.4 Bug 3, Fig. 9c): inside
    the epoch section only the freshly allocated element array is
    persisted, while the metadata stores from do_alloc are not flushed
    before the epoch ends. Pass [~fixed:true] for the corrected
    behaviour. *)

val allocate : ?fixed:bool -> Minipmdk.Pool.t -> name:string -> n_elems:int -> int
(** Runs the allocation transaction and returns the offset of the
    metadata record. *)

val spec : Workload.spec
