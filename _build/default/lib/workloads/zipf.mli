(** Zipfian key-popularity distribution, as used by YCSB. *)

type t

val create : ?theta:float (** default 0.99, YCSB's default skew *) -> n:int -> unit -> t

val sample : t -> Prng.t -> int
(** A key index in [\[0, n)], skewed towards low indexes. *)
