(** Mini memcached over PM — strict persistency model (Table 4).

    A faithful scale model of the Lenovo memcached-pmem port the paper
    evaluates: chained hash table, slab-allocated fixed-size items, an
    LRU list with eviction, CAS ids, and client operations set / get /
    delete / touch / append / flush_all. Correct paths persist every
    modification with flush+fence; the port's real crash-consistency
    defects are reproduced as 19 distinct buggy code sites (§7.4: "19
    new bugs in memcached"), including the paper's showcased
    [ITEM_set_cas] no-durability bug (Fig. 9a).

    {!classify_addr} maps a bug address back to its code site so the
    new-bugs experiment can count sites the way a human triager
    would. *)

type t

val create : ?buckets:int (** default 256 *) -> ?max_items:int (** default 4096 *) -> Minipmdk.Pool.t -> t

val set : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> bool
val touch : t -> key:string -> exptime:int -> bool
val append : t -> key:string -> value:string -> bool
val flush_all : t -> unit

val item_count : t -> int

val bug_sites : string list
(** The 19 known buggy code sites, by name. *)

val classify_addr : t -> int -> string option
(** Code site owning a PM address, if it is one of the buggy sites. *)

val spec : Workload.spec
(** The memslap-driven workload (5% set mix, zipfian keys). *)
