lib/workloads/array_example.ml: Bytes Engine Minipmdk Pmdebugger Pmem Pmtrace Pool Printf Prng String Tx Workload
