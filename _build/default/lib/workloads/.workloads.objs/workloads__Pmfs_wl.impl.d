lib/workloads/pmfs_wl.ml: Array Engine Hashtbl Minipmfs Pmdebugger Pmtrace Printf Prng Workload
