lib/workloads/ctree.mli: Minipmdk Workload
