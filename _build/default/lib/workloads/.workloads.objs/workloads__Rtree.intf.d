lib/workloads/rtree.mli: Minipmdk Workload
