lib/workloads/redis.ml: Bytes Engine Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
