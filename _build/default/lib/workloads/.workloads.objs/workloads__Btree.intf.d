lib/workloads/btree.mli: Minipmdk Workload
