lib/workloads/ctree.ml: Engine Event Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
