lib/workloads/ycsb.mli: Pmtrace Workload
