lib/workloads/prng.mli:
