lib/workloads/registry.ml: Array_example Btree Ctree Hashmap_atomic Hashmap_tx List Memcached Pmfs_wl Pqueue Printf Rbtree Redis Rtree Synth_strand Workload Ycsb
