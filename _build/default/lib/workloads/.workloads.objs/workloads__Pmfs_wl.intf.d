lib/workloads/pmfs_wl.mli: Workload
