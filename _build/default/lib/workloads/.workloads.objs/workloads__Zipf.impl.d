lib/workloads/zipf.ml: Float Prng
