lib/workloads/memcached.ml: Bytes Char Engine Event Minipmdk Pmdebugger Pmtrace Pool Printf Prng String Workload Zipf
