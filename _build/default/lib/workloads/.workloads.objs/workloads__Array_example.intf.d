lib/workloads/array_example.mli: Minipmdk Workload
