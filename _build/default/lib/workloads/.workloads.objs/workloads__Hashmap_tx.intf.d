lib/workloads/hashmap_tx.mli: Minipmdk Workload
