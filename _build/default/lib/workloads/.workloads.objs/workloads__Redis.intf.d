lib/workloads/redis.mli: Minipmdk Workload
