lib/workloads/hashmap_atomic.mli: Minipmdk Workload
