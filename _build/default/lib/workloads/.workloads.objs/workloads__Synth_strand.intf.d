lib/workloads/synth_strand.mli: Workload
