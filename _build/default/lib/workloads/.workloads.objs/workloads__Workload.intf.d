lib/workloads/workload.mli: Pmdebugger Pmtrace
