lib/workloads/hashmap_atomic.ml: Atomic Bytes Engine Event Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
