lib/workloads/pqueue.mli: Minipmdk Workload
