lib/workloads/zipf.mli: Prng
