lib/workloads/ycsb.ml: Engine Memcached Minipmdk Pmdebugger Pmtrace Pool Printf Prng String Workload Zipf
