lib/workloads/rbtree.mli: Minipmdk Workload
