lib/workloads/btree.ml: Engine Event Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
