lib/workloads/hashmap_tx.ml: Bytes Engine Event Hashtbl Minipmdk Pmdebugger Pmem Pmtrace Pool Prng Tx Workload
