lib/workloads/pqueue.ml: Engine Minipmdk Pmdebugger Pmtrace Pool Printf Prng String Tx Workload
