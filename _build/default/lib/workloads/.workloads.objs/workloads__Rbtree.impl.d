lib/workloads/rbtree.ml: Engine Event Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
