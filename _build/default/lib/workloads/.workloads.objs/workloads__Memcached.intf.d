lib/workloads/memcached.mli: Minipmdk Workload
