lib/workloads/rtree.ml: Bytes Engine Event Minipmdk Pmdebugger Pmtrace Pool Prng Tx Workload
