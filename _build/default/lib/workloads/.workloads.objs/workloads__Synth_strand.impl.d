lib/workloads/synth_strand.ml: Btree Ctree Engine Minipmdk Pmdebugger Pmtrace Pool Prng Workload
