lib/workloads/prng.ml: Int64
