lib/workloads/workload.ml: Pmdebugger Pmtrace
