(** Persistent B-tree (the PMDK [btree] example): fixed-order nodes,
    transactional inserts. *)

type t

val order : int
(** Maximum keys per node (8, as in the PMDK example). *)

val create : ?root_slot:int -> Minipmdk.Pool.t -> t
(** [root_slot] is the 8-byte PM slot holding the root-node pointer;
    by default the pool's root object is used. Passing distinct slots
    lets several structures share one pool. *)

val insert : t -> key:int -> value:int -> unit
(** Transactional insert (replaces the value on duplicate key). *)

val find : t -> key:int -> int option

val iter : t -> (key:int -> value:int -> unit) -> unit
(** In key order. *)

val cardinal : t -> int

val check : t -> unit
(** Validates B-tree structural invariants; raises [Failure]. *)

val spec : Workload.spec
(** [n] random insertions, each in its own transaction. *)
