(* Gray/YCSB incremental zipfian generator. *)
type t = { n : int; theta : float; alpha : float; zetan : float; eta : float; zeta2 : float }

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ?(theta = 0.99) ~n () =
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta = (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan)) in
  { n; theta; alpha; zetan; eta; zeta2 }

let sample t rng =
  let u = Prng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else int_of_float (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha) mod t.n
