open Pmtrace
open Minipmdk

(* Node layout (offsets in bytes from the node base):
     0   n_keys
     8   is_leaf
     16  keys[max_keys]
     16+8*max_keys          values[max_keys]
     16+16*max_keys         children[max_keys+1]
   Minimum degree 4: max_keys = 7, max children 8. *)

let order = 8

let max_keys = order - 1

let min_degree = order / 2

let off_nkeys = 0
let off_leaf = 8
let off_keys = 16
let off_values = off_keys + (8 * max_keys)
let off_children = off_values + (8 * max_keys)
let node_size = off_children + (8 * (max_keys + 1))

type t = { pool : Pool.t; root_off : int; annotate : bool }

(* The tree root object holds a single pointer to the current root node. *)
let root_obj_size = 8

let engine t = Pool.engine t.pool

let get t addr = Engine.load_int (engine t) ~addr
let nkeys t node = get t (node + off_nkeys)
let is_leaf t node = get t (node + off_leaf) <> 0
let key t node i = get t (node + off_keys + (8 * i))
let value t node i = get t (node + off_values + (8 * i))
let child t node i = get t (node + off_children + (8 * i))

let set_int tx ~addr v = Tx.store_int tx ~addr v

let alloc_node t tx ~leaf =
  let node = Pool.alloc_raw t.pool ~size:node_size in
  Tx.add_range tx ~addr:Pool.off_heap_top ~size:8;
  Tx.add_range tx ~addr:node ~size:node_size;
  Engine.store_int (engine t) ~addr:(node + off_nkeys) 0;
  Engine.store_int (engine t) ~addr:(node + off_leaf) (if leaf then 1 else 0);
  node

let create ?root_slot pool =
  let root_off = match root_slot with Some slot -> slot | None -> Pool.root pool ~size:root_obj_size in
  let t = { pool; root_off; annotate = false } in
  let tx = Tx.begin_tx pool in
  let node = alloc_node t tx ~leaf:true in
  set_int tx ~addr:root_off node;
  Tx.commit tx;
  t

let root_node t = get t t.root_off

(* Move key [i] of [src] (with its value and right child) into slot [j]
   of [dst] — all within the ambient transaction. *)
let blit_entry t tx ~src ~i ~dst ~j =
  let e = engine t in
  Engine.store_int e ~addr:(dst + off_keys + (8 * j)) (key t src i);
  Engine.store_int e ~addr:(dst + off_values + (8 * j)) (value t src i);
  ignore tx

(* Split the full child [c] = children[idx] of [parent]. *)
let split_child t tx ~parent ~idx =
  let e = engine t in
  let c = child t parent idx in
  let right = alloc_node t tx ~leaf:(is_leaf t c) in
  Tx.add_range tx ~addr:c ~size:node_size;
  Tx.add_range tx ~addr:parent ~size:node_size;
  let mid = min_degree - 1 in
  (* Right node takes the upper keys. *)
  let moved = max_keys - mid - 1 in
  for j = 0 to moved - 1 do
    blit_entry t tx ~src:c ~i:(mid + 1 + j) ~dst:right ~j
  done;
  if not (is_leaf t c) then
    for j = 0 to moved do
      Engine.store_int e ~addr:(right + off_children + (8 * j)) (child t c (mid + 1 + j))
    done;
  Engine.store_int e ~addr:(right + off_nkeys) moved;
  Engine.store_int e ~addr:(c + off_nkeys) mid;
  (* Shift the parent's entries right of idx. *)
  let pn = nkeys t parent in
  for j = pn - 1 downto idx do
    blit_entry t tx ~src:parent ~i:j ~dst:parent ~j:(j + 1)
  done;
  for j = pn downto idx + 1 do
    Engine.store_int e ~addr:(parent + off_children + (8 * (j + 1))) (child t parent j)
  done;
  Engine.store_int e ~addr:(parent + off_keys + (8 * idx)) (key t c mid);
  Engine.store_int e ~addr:(parent + off_values + (8 * idx)) (value t c mid);
  Engine.store_int e ~addr:(parent + off_children + (8 * (idx + 1))) right;
  Engine.store_int e ~addr:(parent + off_nkeys) (pn + 1)

let rec insert_nonfull t tx node ~key:k ~value:v =
  let e = engine t in
  let n = nkeys t node in
  (* Replace on duplicate. *)
  let rec find_eq i = if i >= n then None else if key t node i = k then Some i else find_eq (i + 1) in
  match find_eq 0 with
  | Some i ->
      Tx.add_range tx ~addr:(node + off_values + (8 * i)) ~size:8;
      Engine.store_int e ~addr:(node + off_values + (8 * i)) v
  | None ->
      if is_leaf t node then begin
        Tx.add_range tx ~addr:node ~size:node_size;
        let rec shift j =
          if j >= 0 && key t node j > k then begin
            blit_entry t tx ~src:node ~i:j ~dst:node ~j:(j + 1);
            shift (j - 1)
          end
          else j
        in
        let pos = shift (n - 1) + 1 in
        Engine.store_int e ~addr:(node + off_keys + (8 * pos)) k;
        Engine.store_int e ~addr:(node + off_values + (8 * pos)) v;
        Engine.store_int e ~addr:(node + off_nkeys) (n + 1)
      end
      else begin
        let rec descend_idx i = if i < n && key t node i < k then descend_idx (i + 1) else i in
        let idx = descend_idx 0 in
        if nkeys t (child t node idx) = max_keys then begin
          split_child t tx ~parent:node ~idx;
          (* The promoted median may be the key being inserted. *)
          if key t node idx = k then begin
            Tx.add_range tx ~addr:(node + off_values + (8 * idx)) ~size:8;
            Engine.store_int e ~addr:(node + off_values + (8 * idx)) v
          end
          else begin
            let idx = if key t node idx < k then idx + 1 else idx in
            insert_nonfull t tx (child t node idx) ~key:k ~value:v
          end
        end
        else insert_nonfull t tx (child t node idx) ~key:k ~value:v
      end

let insert t ~key:k ~value:v =
  let e = engine t in
  let tx = Tx.begin_tx t.pool in
  let root = root_node t in
  let root =
    if nkeys t root = max_keys then begin
      let new_root = alloc_node t tx ~leaf:false in
      Engine.store_int e ~addr:(new_root + off_children) root;
      Tx.add_range tx ~addr:t.root_off ~size:8;
      Engine.store_int e ~addr:t.root_off new_root;
      split_child t tx ~parent:new_root ~idx:0;
      new_root
    end
    else root
  in
  insert_nonfull t tx root ~key:k ~value:v;
  Tx.commit tx;
  if t.annotate then
    Engine.annotate e (Event.Assert_durable { addr = root; size = node_size })

let find t ~key:k =
  let rec go node =
    let n = nkeys t node in
    let rec scan i =
      if i < n && key t node i < k then scan (i + 1)
      else if i < n && key t node i = k then Some (value t node i)
      else if is_leaf t node then None
      else go (child t node i)
    in
    scan 0
  in
  go (root_node t)

let iter t f =
  let rec go node =
    let n = nkeys t node in
    for i = 0 to n - 1 do
      if not (is_leaf t node) then go (child t node i);
      f ~key:(key t node i) ~value:(value t node i)
    done;
    if not (is_leaf t node) then go (child t node n)
  in
  go (root_node t)

let cardinal t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let check t =
  let depth_of_leaf = ref None in
  let rec go node depth ~lo ~hi ~is_root =
    let n = nkeys t node in
    if n > max_keys then failwith "btree: node overflow";
    if (not is_root) && n < min_degree - 1 then failwith "btree: node underflow";
    for i = 0 to n - 1 do
      let k = key t node i in
      (match lo with Some l when k <= l -> failwith "btree: key order violated (lo)" | _ -> ());
      (match hi with Some h when k >= h -> failwith "btree: key order violated (hi)" | _ -> ());
      if i > 0 && key t node (i - 1) >= k then failwith "btree: keys not sorted"
    done;
    if is_leaf t node then begin
      match !depth_of_leaf with
      | None -> depth_of_leaf := Some depth
      | Some d -> if d <> depth then failwith "btree: leaves at different depths"
    end
    else
      for i = 0 to n do
        let lo = if i = 0 then lo else Some (key t node (i - 1)) in
        let hi = if i = n then hi else Some (key t node i) in
        go (child t node i) (depth + 1) ~lo ~hi ~is_root:false
      done
  in
  go (root_node t) 0 ~lo:None ~hi:None ~is_root:true

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(64 lsl 20) in
  let t = { (create pool) with annotate = p.Workload.annotate } in
  let rng = Prng.create p.Workload.seed in
  for _ = 1 to p.Workload.n do
    insert t ~key:(Prng.below rng (p.Workload.n * 4)) ~value:(Prng.next rng land 0xFFFF)
  done;
  Engine.program_end engine

let spec =
  {
    Workload.name = "b_tree";
    model = Pmdebugger.Detector.Epoch;
    run;
    description = "PMDK-style B-tree, one transaction per insert";
  }
