open Pmtrace
open Minipmdk

let run (p : Workload.params) engine =
  let pool = Pool.create engine ~size:(128 lsl 20) in
  (* One shared root object with a slot per structure. *)
  let root = Pool.root pool ~size:16 in
  let btree = Btree.create ~root_slot:root pool in
  let ctree = Ctree.create ~root_slot:(root + 8) pool in
  let rng = Prng.create p.Workload.seed in
  let per_tree = max 1 (p.Workload.n / 2) in
  (* Alternate strand sections: each op runs in its own section of the
     strand it belongs to; the two strands have no mutual ordering
     until the final join. *)
  for i = 1 to per_tree do
    Engine.strand_begin engine ~strand:0;
    Btree.insert btree ~key:(Prng.below rng (p.Workload.n * 4)) ~value:i;
    Engine.strand_end engine ~strand:0;
    Engine.strand_begin engine ~strand:1;
    Ctree.insert ctree ~key:(Prng.below rng (p.Workload.n * 4)) ~value:i;
    Engine.strand_end engine ~strand:1
  done;
  Engine.join_strand engine;
  Engine.program_end engine

let spec =
  {
    Workload.name = "synth_strand";
    model = Pmdebugger.Detector.Strand;
    run;
    description = "b_tree and c_tree interleaved in two independent strands";
  }
