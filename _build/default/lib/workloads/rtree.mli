(** Persistent radix tree (the PMDK [rtree] example): 4-bit nibbles of
    the key select one of 16 children per level; transactional
    inserts. *)

type t

val create : Minipmdk.Pool.t -> t

val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

val iter : t -> (key:int -> value:int -> unit) -> unit

val cardinal : t -> int

val spec : Workload.spec
