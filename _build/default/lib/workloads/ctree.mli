(** Persistent crit-bit tree (the PMDK [ctree] example): internal nodes
    discriminate on the highest differing bit; leaves hold key/value.
    Transactional inserts. *)

type t

val create : ?root_slot:int -> Minipmdk.Pool.t -> t
(** See {!Btree.create} for [root_slot]. *)

val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

val iter : t -> (key:int -> value:int -> unit) -> unit

val cardinal : t -> int

val check : t -> unit
(** Validates crit-bit invariants (decreasing bit indexes downwards,
    keys agreeing with their path); raises [Failure]. *)

val spec : Workload.spec
