(** Common shape of the evaluation workloads (Table 4).

    Each workload builds its own pool on the given engine and performs
    [n] operations (insertions for the data-structure micro-benchmarks,
    client operations for memcached/redis). With [annotate:true] the
    workload additionally emits the PMTest-style assertion annotations
    its original authors added (§7.3: "the annotation in the benchmarks
    are added by the PMTest developers"). *)

type params = {
  n : int;
  seed : int;
  annotate : bool;  (** emit PMTest assertions *)
}

val params : ?seed:int -> ?annotate:bool -> n:int -> unit -> params

type spec = {
  name : string;
  model : Pmdebugger.Detector.model;
  run : params -> Pmtrace.Engine.t -> unit;
  description : string;
}
