(** The paper's synthetic strand-persistency benchmark (§7.1): a B-tree
    and a crit-bit tree placed in two independent strands whose
    operations interleave, joined at the end. No hardware supports
    strand persistency, so — as in the paper — the strand markers are
    software annotations consumed by the detector. *)

val spec : Workload.spec
