(** Undo-log transactions — the epoch-model abstraction PMDK builds on
    (TX_BEGIN / TX_END in the paper, §2.3).

    A transaction is an epoch section: [begin_tx] emits [Epoch_begin],
    and the commit barrier (one fence) closes the section before
    [Epoch_end] is emitted, so a correct transaction contains exactly
    one fence — extra user fences inside the section are the
    "redundant epoch fence" bug of §5.2.

    Before modifying a range the caller snapshots it with [add_range]
    (PMDK's [TX_ADD]); the old contents go to the pool's undo-log area,
    each append also emitting a [Tx_log] event for the
    redundant-logging rule. Nested [begin_tx]/[commit] pairs collapse
    into the outermost transaction (§6).

    Crash semantics: the log-truncation store is the commit point. The
    {!recover} function applied to any crash image rolls back an
    unfinished transaction, which {!Pmdebugger.Crash_check} uses to
    validate transactional workloads. *)

type t

val begin_tx : Pool.t -> t
(** Starts (or nests into) a transaction on the pool. *)

val add_range : t -> addr:int -> size:int -> unit
(** Snapshot [\[addr,addr+size)] into the undo log unless an enclosing
    snapshot already covers it. *)

val add_range_unchecked : t -> addr:int -> size:int -> unit
(** Snapshot without the already-logged check — the redundant-logging
    bug injection hook. *)

val store_int : t -> addr:int -> int -> unit
(** [add_range] + store, the common idiom. *)

val commit : ?skip_flush_of:Pmem.Addr.range list -> t -> unit
(** Flush every snapshotted range, fence (the epoch barrier), end the
    epoch, then truncate the log (the durable commit point).
    [skip_flush_of] suppresses the flush of matching ranges — the
    lack-durability-in-epoch bug injection hook. *)

val abort : t -> unit
(** Restore every snapshotted range from the log, flush, fence, end
    the epoch and truncate the log. Aborts terminate the whole
    transaction, nesting included. *)

val depth : t -> int

val logged_ranges : t -> Pmem.Addr.range list

(** {1 Recovery} *)

val needs_recovery : Pmem.Image.t -> bool
(** True when a crash image contains a non-empty undo log. *)

val recover : Pmem.Image.t -> unit
(** Roll back the unfinished transaction recorded in the image's undo
    log (applies entries in reverse order, then truncates). *)
