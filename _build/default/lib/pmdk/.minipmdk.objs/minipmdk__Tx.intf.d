lib/pmdk/tx.mli: Pmem Pool
