lib/pmdk/atomic.mli: Pool
