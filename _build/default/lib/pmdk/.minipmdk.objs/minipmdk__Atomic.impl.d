lib/pmdk/atomic.ml: Engine Pmem Pmtrace Pool
