lib/pmdk/pool.ml: Bytes Engine Pmem Pmtrace
