lib/pmdk/pool.mli: Pmem Pmtrace
