lib/pmdk/tx.ml: Addr Bytes Engine Hashtbl Image List Pmem Pmtrace Pool
