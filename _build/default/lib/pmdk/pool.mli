(** A persistent object pool — the libpmemobj subset the paper's
    benchmarks use.

    Layout (all fields little-endian int64):
    {v
      0   magic
      8   heap_top    bump-allocation frontier (absolute offset)
      16  root_off    offset of the root object (0 = none)
      24  root_size
      32  log_top     undo-log fill level (bytes used inside log area)
      64  log area    (log_capacity bytes)
      ... heap
    v}

    The pool registers itself with the instrumentation engine via
    [Register_pmem], so detectors track exactly the pool's address
    range — stores outside it model DRAM and are ignored, as with a
    real DAX mapping. *)

type t

val magic : int64

(** Field offsets, exposed for recovery code that must read a raw crash
    image without a live pool. *)

val off_magic : int
val off_heap_top : int
val off_root_off : int
val off_root_size : int
val off_log_top : int
val log_area_off : int

val create : ?log_capacity:int (** default 1 MiB *) -> Pmtrace.Engine.t -> size:int -> t
(** Initialize a pool spanning [\[0, size)] of the engine's PM and
    persist its header. *)

val engine : t -> Pmtrace.Engine.t

val size : t -> int

val log_capacity : t -> int

val heap_start : t -> int

val heap_top : t -> int

val set_heap_top : t -> int -> unit
(** Store the new frontier (not persisted — the caller decides when,
    so transactional and atomic allocation can differ). *)

val persist_heap_top : t -> unit

val alloc_raw : ?align:int (** default 8 *) -> t -> size:int -> int
(** Bump-allocate [size] bytes at the requested alignment; updates
    [heap_top] in PM but does {e not} persist it. Raises [Failure] on
    exhaustion. *)

val root : t -> size:int -> int
(** Offset of the root object, allocating and persisting it (zeroed)
    on first use. Subsequent calls return the same offset. *)

val in_tx : t -> bool

(** {1 Transaction state}

    The active transaction's bookkeeping lives in the pool so that
    nested [Tx.begin_tx] calls share one transaction (§6: nested
    transactions collapse into the outermost one). These accessors are
    for {!Tx}'s use. *)

val tx_depth : t -> int
val set_tx_depth : t -> int -> unit
val tx_logged : t -> Pmem.Addr.range list
val set_tx_logged : t -> Pmem.Addr.range list -> unit
val tx_log_top : t -> int
val set_tx_log_top : t -> int -> unit

(** {1 Raw-image accessors for recovery predicates} *)

val read_heap_top : Pmem.Image.t -> int
val read_root_off : Pmem.Image.t -> int
val read_log_top : Pmem.Image.t -> int
