open Pmtrace

type t = {
  engine : Engine.t;
  size : int;
  log_capacity : int;
  mutable tx_depth : int;
  mutable tx_logged : Pmem.Addr.range list;
  mutable tx_log_top : int;
}

let magic = 0x504d444b5f4f434cL (* "PMDK_OCL" *)

let off_magic = 0
let off_heap_top = 8
let off_root_off = 16
let off_root_size = 24
let off_log_top = 32
let log_area_off = 64

let create ?(log_capacity = 1 lsl 20) engine ~size =
  let t = { engine; size; log_capacity; tx_depth = 0; tx_logged = []; tx_log_top = 0 } in
  Engine.register_pmem engine ~base:0 ~size;
  Engine.store_i64 engine ~addr:off_magic magic;
  Engine.store_int engine ~addr:off_heap_top (log_area_off + log_capacity);
  Engine.store_int engine ~addr:off_root_off 0;
  Engine.store_int engine ~addr:off_root_size 0;
  Engine.store_int engine ~addr:off_log_top 0;
  Engine.persist engine ~addr:0 ~size:40;
  t

let engine t = t.engine

let size t = t.size

let log_capacity t = t.log_capacity

let heap_start t = log_area_off + t.log_capacity

let heap_top t = Engine.load_int t.engine ~addr:off_heap_top

let set_heap_top t v = Engine.store_int t.engine ~addr:off_heap_top v

let persist_heap_top t = Engine.persist t.engine ~addr:off_heap_top ~size:8

let align_up n align = (n + align - 1) land lnot (align - 1)

let alloc_raw ?(align = 8) t ~size =
  let top = align_up (heap_top t) align in
  let next = top + align_up size 8 in
  if next > t.size then failwith "Pool.alloc_raw: pool exhausted";
  set_heap_top t next;
  top

let root t ~size =
  let off = Engine.load_int t.engine ~addr:off_root_off in
  if off <> 0 then off
  else begin
    let off = alloc_raw t ~size in
    persist_heap_top t;
    (* Zero the root object and persist it, like pmemobj_root. *)
    Engine.store_bytes t.engine ~addr:off (Bytes.make size '\000');
    Engine.persist t.engine ~addr:off ~size;
    Engine.store_int t.engine ~addr:off_root_off off;
    Engine.store_int t.engine ~addr:off_root_size size;
    Engine.persist t.engine ~addr:off_root_off ~size:16;
    off
  end

let in_tx t = t.tx_depth > 0

let tx_depth t = t.tx_depth

let set_tx_depth t d = t.tx_depth <- d

let tx_logged t = t.tx_logged

let set_tx_logged t l = t.tx_logged <- l

let tx_log_top t = t.tx_log_top

let set_tx_log_top t v = t.tx_log_top <- v

let read_heap_top img = Pmem.Image.get_int img off_heap_top

let read_root_off img = Pmem.Image.get_int img off_root_off

let read_log_top img = Pmem.Image.get_int img off_log_top
