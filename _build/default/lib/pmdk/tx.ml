open Pmem
open Pmtrace

(* The transaction's bookkeeping (depth, snapshotted ranges, log fill)
   lives in the pool, so a nested [begin_tx] hands back a handle onto
   the same transaction. *)
type t = { pool : Pool.t }

let begin_tx pool =
  if Pool.tx_depth pool = 0 then begin
    Pool.set_tx_depth pool 1;
    Pool.set_tx_logged pool [];
    Pool.set_tx_log_top pool 0;
    Engine.epoch_begin (Pool.engine pool)
  end
  else Pool.set_tx_depth pool (Pool.tx_depth pool + 1);
  { pool }

let depth t = Pool.tx_depth t.pool

let logged_ranges t = Pool.tx_logged t.pool

let align8 n = (n + 7) land lnot 7

let align_line n = (n + Addr.cache_line_size - 1) land lnot (Addr.cache_line_size - 1)

(* Flush each still-dirty cache line of the snapshotted ranges exactly
   once, the line-granularity coalescing real PMDK performs — repeated
   or untouched lines would otherwise read as redundant-flush /
   flush-nothing bugs on perfectly correct transactions. *)
let flush_dirty_logged t ~skip =
  let engine = Pool.engine t.pool in
  let pm = Engine.pm engine in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (r : Addr.range) ->
      if not (List.exists (fun s -> Addr.overlaps s r) skip) then
        List.iter
          (fun line ->
            if (not (Hashtbl.mem seen line)) && Pmem.State.line_state pm line = Pmem.State.Dirty then begin
              Hashtbl.replace seen line ();
              Engine.clwb engine ~addr:(line * Addr.cache_line_size)
            end)
          (Addr.lines_of_range ~lo:r.Addr.lo ~hi:r.Addr.hi))
    (Pool.tx_logged t.pool)

(* Append one undo entry: [addr][size][old bytes], cache-line aligned so
   consecutive appends never re-flush a shared line. Entries are flushed
   as they are written but only drained by the commit barrier; the
   persistent fill level is published once, at commit. *)
let append_log t ~addr ~size =
  let engine = Pool.engine t.pool in
  (* Eager writeback of the previously snapshotted ranges' dirty lines
     (PMDK's per-range ulog teardown does the same): their stores are
     complete by the time the next range is snapshotted, and flushing
     them here keeps CLF intervals small and collective. Durability is
     still gated by the commit barrier. *)
  flush_dirty_logged t ~skip:[];
  let entry_bytes = align_line (16 + align8 size) in
  let log_top = Pool.tx_log_top t.pool in
  if log_top + entry_bytes > Pool.log_capacity t.pool then failwith "Tx.add_range: undo log full";
  let entry_addr = Pool.log_area_off + log_top in
  let old = Engine.load_bytes engine ~addr ~len:size in
  Engine.store_int engine ~addr:entry_addr addr;
  Engine.store_int engine ~addr:(entry_addr + 8) size;
  (* Copy the snapshot line by line, writing back each line as soon as
     it is full (PMDK's ulog does the same): every chunk forms its own
     single-line CLF interval. *)
  let rec copy off =
    if off < size then begin
      let pos = entry_addr + 16 + off in
      let len = min (size - off) (Addr.line_base pos + Addr.cache_line_size - pos) in
      Engine.store_bytes engine ~addr:pos (Bytes.sub old off len);
      Engine.clwb engine ~addr:pos;
      copy (off + len)
    end
  in
  if size > 0 then copy 0 else Engine.clwb engine ~addr:entry_addr;
  Pool.set_tx_log_top t.pool (log_top + entry_bytes);
  Engine.tx_log engine ~obj_addr:addr ~size;
  Pool.set_tx_logged t.pool (Addr.of_base_size addr size :: Pool.tx_logged t.pool)

let add_range t ~addr ~size =
  let range = Addr.of_base_size addr size in
  if not (List.exists (fun r -> Addr.covers r range) (Pool.tx_logged t.pool)) then append_log t ~addr ~size

let add_range_unchecked t ~addr ~size = append_log t ~addr ~size

let store_int t ~addr v =
  add_range t ~addr ~size:8;
  Engine.store_int (Pool.engine t.pool) ~addr v

let truncate_log t =
  let engine = Pool.engine t.pool in
  Pool.set_tx_log_top t.pool 0;
  Engine.store_int engine ~addr:Pool.off_log_top 0;
  Engine.persist engine ~addr:Pool.off_log_top ~size:8

let reset t =
  Pool.set_tx_depth t.pool 0;
  Pool.set_tx_logged t.pool [];
  Pool.set_tx_log_top t.pool 0

let commit ?(skip_flush_of = []) t =
  if Pool.tx_depth t.pool > 1 then Pool.set_tx_depth t.pool (Pool.tx_depth t.pool - 1)
  else begin
    let engine = Pool.engine t.pool in
    let log_top = Pool.tx_log_top t.pool in
    (* Publish the log fill level so recovery sees the whole log iff the
       commit barrier completed. *)
    if log_top > 0 then begin
      Engine.store_int engine ~addr:Pool.off_log_top log_top;
      Engine.flush_range engine ~addr:Pool.off_log_top ~size:8
    end;
    flush_dirty_logged t ~skip:skip_flush_of;
    Engine.sfence engine;
    Engine.epoch_end engine;
    (* The durable commit point: truncating the log (outside the epoch). *)
    if log_top > 0 then truncate_log t;
    reset t
  end

(* An abort rolls back and terminates the whole transaction, nesting
   included (as PMDK's does). *)
let abort t =
  let engine = Pool.engine t.pool in
  let entries = ref [] in
  let off = ref 0 in
  while !off < Pool.tx_log_top t.pool do
    let entry_addr = Pool.log_area_off + !off in
    let addr = Engine.load_int engine ~addr:entry_addr in
    let size = Engine.load_int engine ~addr:(entry_addr + 8) in
    entries := (addr, size, entry_addr + 16) :: !entries;
    off := !off + align_line (16 + align8 size)
  done;
  List.iter
    (fun (addr, size, data_addr) ->
      let old = Engine.load_bytes engine ~addr:data_addr ~len:size in
      Engine.store_bytes engine ~addr old)
    !entries;
  flush_dirty_logged t ~skip:[];
  Engine.sfence engine;
  Engine.epoch_end engine;
  truncate_log t;
  reset t

let needs_recovery img = Pool.read_log_top img > 0

let recover img =
  let log_top = Pool.read_log_top img in
  let entries = ref [] in
  let off = ref 0 in
  while !off < log_top do
    let entry_addr = Pool.log_area_off + !off in
    let addr = Image.get_int img entry_addr in
    let size = Image.get_int img (entry_addr + 8) in
    entries := (addr, size, entry_addr + 16) :: !entries;
    off := !off + align_line (16 + align8 size)
  done;
  List.iter
    (fun (addr, size, data_addr) ->
      let old = Image.read img ~addr:data_addr ~len:size in
      Image.write img ~addr old)
    !entries;
  Image.set_int img Pool.off_log_top 0
