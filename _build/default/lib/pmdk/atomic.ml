open Pmtrace

let alloc pool ~size ~init =
  let engine = Pool.engine pool in
  (* PMDK's allocator classes are cache-line aligned. *)
  let off = Pool.alloc_raw ~align:Pmem.Addr.cache_line_size pool ~size in
  (* Publish the frontier first (a frontier ahead of a dead object is
     crash-safe), so the object-init interval stays single-line. *)
  Pool.persist_heap_top pool;
  init off;
  Engine.persist engine ~addr:off ~size;
  off

let publish_int pool ~addr v =
  let engine = Pool.engine pool in
  Engine.store_int engine ~addr v;
  Engine.persist engine ~addr ~size:8
