(** Non-transactional (atomic-API) allocation and publication, the
    POBJ_ALLOC style used by the paper's hashmap_atomic benchmark.

    [alloc] bump-allocates, runs the constructor (whose stores target
    the fresh object), persists the object and then the heap frontier —
    two persist steps, each a flush + fence, exactly the instruction
    pattern that makes hashmap_atomic's CLF intervals overwhelmingly
    collective (Fig. 2b). *)

val alloc : Pool.t -> size:int -> init:(int -> unit) -> int
(** Returns the new object's offset. [init] receives the offset and
    must write the object's initial contents through the engine. *)

val publish_int : Pool.t -> addr:int -> int -> unit
(** Store an int and persist it — the atomic pointer-publication
    idiom. *)
