let sink () = Pmtrace.Sink.noop "nulgrind"
