(** PMTest-style baseline: fast, annotation-driven selective checking.

    Tracks only lightweight per-cache-line persistency state and checks
    durability/ordering/freshness exclusively at programmer-inserted
    assertion points ([Annotation] events). Redundant flushes and
    redundant transaction logging are detected natively. The price of
    the speed is coverage: any bug not covered by an annotation — and
    every epoch/strand/flush-nothing/cross-failure bug — is missed,
    reproducing the Table 6 row (5 kinds). *)

type t

val create : ?max_bugs_per_kind:int -> unit -> t

val sink : t -> Pmtrace.Sink.t

val annotations_seen : t -> int
