lib/baselines/pmtest.ml: Addr Bug Event Hashtbl List Pmem Pmtrace Sink
