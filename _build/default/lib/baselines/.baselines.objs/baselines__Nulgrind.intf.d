lib/baselines/nulgrind.mli: Pmtrace
