lib/baselines/persistence_inspector.mli: Pmtrace
