lib/baselines/nulgrind.ml: Pmtrace
