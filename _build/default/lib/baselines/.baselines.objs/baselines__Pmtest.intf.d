lib/baselines/pmtest.mli: Pmtrace
