lib/baselines/xfdetector.mli: Pmdebugger Pmem Pmtrace
