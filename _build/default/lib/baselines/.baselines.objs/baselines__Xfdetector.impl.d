lib/baselines/xfdetector.ml: Addr Array Bug Event Hashtbl Image List Pmdebugger Pmem Pmtrace Printf Rangetree Sink State
