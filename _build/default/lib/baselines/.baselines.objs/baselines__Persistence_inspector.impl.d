lib/baselines/persistence_inspector.ml: Addr Bug Event Hashtbl List Pmem Pmtrace Sink
