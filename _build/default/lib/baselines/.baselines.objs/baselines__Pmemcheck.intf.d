lib/baselines/pmemcheck.mli: Pmtrace
