lib/baselines/pmemcheck.ml: Addr Bug Event Hashtbl List Pmem Pmtrace Rangetree Sink
