(** Persistence-Inspector-style baseline (the "Persist. Ins." row of
    Table 1): Intel Inspector's PM analysis.

    Domain-restricted to PMDK applications: analysis activates only
    once transactional markers appear in the stream, and tracks the
    locations those transactions touch. Within that domain it finds
    missing writebacks/fences, overwrites of unpersisted data and
    redundant writebacks; it knows nothing of relaxed-model rules, and
    its per-store history bookkeeping gives it the "high overhead"
    classification the paper assigns. *)

type t

val create : ?max_bugs_per_kind:int -> unit -> t

val sink : t -> Pmtrace.Sink.t

val active : t -> bool
(** Whether PMDK markers were seen (analysis engaged). *)
