(** The Nulgrind model: instrumentation with no analysis.

    Receives every event and does nothing but count — its replay time
    is the pure instrumentation/dispatch overhead that Table 5
    subtracts when reporting "W/O Instru." speedups. *)

val sink : unit -> Pmtrace.Sink.t
