(** XFDetector-style baseline: cross-failure bug detection by failure
    point enumeration.

    Maintains tree-based durability bookkeeping (like Pmemcheck) plus
    order-configuration checking, and — its defining feature — treats
    (a bounded number of) fences as failure points: at each one it
    re-processes the recorded pre-failure trace prefix and, when a live
    PM state and recovery predicate are supplied, runs post-failure
    recovery over sampled crash images. The prefix re-execution is what
    makes it orders of magnitude slower than PMDebugger (§7.2), and the
    failure-point cap is why it can still miss bugs (§7.4). Detects the
    six Table 6 kinds XFDetector supports. *)

type t

val create :
  ?max_failure_points:int (** default 200 *) ->
  ?config:Pmdebugger.Order_config.t ->
  ?pm:Pmem.State.t ->
  ?recovery:(Pmem.Image.t -> bool) ->
  ?max_bugs_per_kind:int ->
  unit ->
  t

val sink : t -> Pmtrace.Sink.t

val failure_points_used : t -> int
