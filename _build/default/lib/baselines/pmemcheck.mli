(** Pmemcheck-style baseline: industry-quality tree-only bookkeeping.

    Every store inserts a node into one address-ordered tree; the tree
    is reorganized (adjacent regions merged) after insertions and at
    every fence — the per-location tree maintenance the paper's
    characterization shows cannot be amortized (§3, Pattern 1). Detects
    the four Table 6 kinds Pmemcheck supports: no durability, multiple
    overwrites, redundant flush and flush nothing. *)

type t

val create : ?max_bugs_per_kind:int -> unit -> t

val sink : t -> Pmtrace.Sink.t

val avg_tree_nodes_per_fence : t -> float

val reorganizations : t -> int
