lib/pmem/state.mli: Image
