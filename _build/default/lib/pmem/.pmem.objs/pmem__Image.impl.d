lib/pmem/image.ml: Addr Bytes Char Int64
