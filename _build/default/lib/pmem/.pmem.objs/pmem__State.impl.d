lib/pmem/state.ml: Addr Bytes Hashtbl Image List
