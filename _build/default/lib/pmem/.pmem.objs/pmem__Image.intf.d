lib/pmem/image.mli:
