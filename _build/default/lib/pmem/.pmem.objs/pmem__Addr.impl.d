lib/pmem/addr.ml: Format List Printf
