lib/pmem/addr.mli: Format
