type line_state = Clean | Dirty | Writeback_pending

type t = {
  vol : Image.t;
  dur : Image.t;
  lines : (int, line_state) Hashtbl.t;
  mutable n_stores : int;
  mutable n_clfs : int;
  mutable n_fences : int;
  mutable n_drained : int;
}

let create ?initial_size () =
  {
    vol = Image.create ?initial_size ();
    dur = Image.create ?initial_size ();
    lines = Hashtbl.create 1024;
    n_stores = 0;
    n_clfs = 0;
    n_fences = 0;
    n_drained = 0;
  }

let volatile t = t.vol

let durable t = t.dur

let line_state t line = match Hashtbl.find_opt t.lines line with None -> Clean | Some s -> s

let set_line t line s =
  match s with
  | Clean -> Hashtbl.remove t.lines line
  | Dirty | Writeback_pending -> Hashtbl.replace t.lines line s

let store t ~addr b =
  t.n_stores <- t.n_stores + 1;
  Image.write t.vol ~addr b;
  let hi = addr + Bytes.length b in
  List.iter (fun line -> set_line t line Dirty) (Addr.lines_of_range ~lo:addr ~hi)

let store_i64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store t ~addr b

let clf t ~addr =
  t.n_clfs <- t.n_clfs + 1;
  let line = Addr.line_of addr in
  match line_state t line with
  | Dirty -> set_line t line Writeback_pending
  | Clean | Writeback_pending -> ()

let clf_range t ~lo ~hi =
  List.iter (fun line -> clf t ~addr:(line * Addr.cache_line_size)) (Addr.lines_of_range ~lo ~hi)

let fence t =
  t.n_fences <- t.n_fences + 1;
  let pending = Hashtbl.fold (fun line s acc -> if s = Writeback_pending then line :: acc else acc) t.lines [] in
  List.iter
    (fun line ->
      Image.blit_line ~src:t.vol ~dst:t.dur ~line;
      t.n_drained <- t.n_drained + 1;
      set_line t line Clean)
    pending

let lines_in t state =
  Hashtbl.fold (fun line s acc -> if s = state then line :: acc else acc) t.lines []
  |> List.sort compare

let dirty_lines t = lines_in t Dirty

let pending_lines t = lines_in t Writeback_pending

let is_durable_range t ~lo ~hi =
  List.for_all (fun line -> line_state t line = Clean) (Addr.lines_of_range ~lo ~hi)

(* Deterministic xorshift for crash-image sampling: reproducible runs. *)
let xorshift seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land max_int;
    !s

let crash_images t ?(max_images = 64) () =
  let undrained =
    Hashtbl.fold (fun line _ acc -> line :: acc) t.lines [] |> List.sort compare
  in
  let n = List.length undrained in
  let image_of_mask mask =
    let img = Image.copy t.dur in
    List.iteri (fun i line -> if mask land (1 lsl i) <> 0 then Image.blit_line ~src:t.vol ~dst:img ~line) undrained;
    img
  in
  if n = 0 then [ Image.copy t.dur ]
  else if n <= 20 && 1 lsl n <= max_images then
    List.init (1 lsl n) image_of_mask
  else begin
    let rand = xorshift (n * 2654435761) in
    let sampled = List.init (max 0 (max_images - 2)) (fun _ -> image_of_mask (rand ())) in
    image_of_mask 0 :: image_of_mask (-1) :: sampled
  end

let stats t =
  [
    ("stores", t.n_stores);
    ("clfs", t.n_clfs);
    ("fences", t.n_fences);
    ("drained_lines", t.n_drained);
  ]
