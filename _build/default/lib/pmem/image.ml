type t = { mutable data : bytes }

let create ?(initial_size = 4096) () =
  { data = Bytes.make (max 64 initial_size) '\000' }

let capacity t = Bytes.length t.data

let ensure t upto =
  let cap = Bytes.length t.data in
  if upto > cap then begin
    let new_cap =
      let rec grow c = if c >= upto then c else grow (c * 2) in
      grow cap
    in
    let nd = Bytes.make new_cap '\000' in
    Bytes.blit t.data 0 nd 0 cap;
    t.data <- nd
  end

let write_sub t ~addr b ~off ~len =
  if addr < 0 then invalid_arg "Image.write_sub: negative address";
  ensure t (addr + len);
  Bytes.blit b off t.data addr len

let write t ~addr b = write_sub t ~addr b ~off:0 ~len:(Bytes.length b)

let read t ~addr ~len =
  let out = Bytes.make len '\000' in
  let cap = Bytes.length t.data in
  let avail = max 0 (min len (cap - addr)) in
  if avail > 0 then Bytes.blit t.data addr out 0 avail;
  out

let get_u8 t addr = if addr >= Bytes.length t.data then 0 else Char.code (Bytes.get t.data addr)

let set_u8 t addr v =
  ensure t (addr + 1);
  Bytes.set t.data addr (Char.chr (v land 0xff))

let get_i64 t addr =
  if addr + 8 <= Bytes.length t.data then Bytes.get_int64_le t.data addr
  else Bytes.get_int64_le (read t ~addr ~len:8) 0

let set_i64 t addr v =
  ensure t (addr + 8);
  Bytes.set_int64_le t.data addr v

let get_int t addr = Int64.to_int (get_i64 t addr)

let set_int t addr v = set_i64 t addr (Int64.of_int v)

let get_string t ~addr ~len = Bytes.to_string (read t ~addr ~len)

let set_string t ~addr s = write t ~addr (Bytes.of_string s)

let copy t = { data = Bytes.copy t.data }

let copy_range ~src ~dst ~lo ~hi =
  if hi > lo then begin
    ensure dst hi;
    let b = read src ~addr:lo ~len:(hi - lo) in
    Bytes.blit b 0 dst.data lo (hi - lo)
  end

let blit_line ~src ~dst ~line =
  let lo = line * Addr.cache_line_size in
  copy_range ~src ~dst ~lo ~hi:(lo + Addr.cache_line_size)

let equal_range a b ~lo ~hi = Bytes.equal (read a ~addr:lo ~len:(hi - lo)) (read b ~addr:lo ~len:(hi - lo))
