(** Addresses, byte ranges and cache-line arithmetic.

    All PM addresses in the simulator are plain non-negative [int] byte
    offsets into a PM pool. A {!range} is half-open: [\[lo, hi)]. *)

val cache_line_size : int
(** Size of a cache line in bytes (64, as on x86). *)

val line_of : int -> int
(** [line_of addr] is the index of the cache line containing [addr]. *)

val line_base : int -> int
(** [line_base addr] is the address of the first byte of [addr]'s line. *)

val lines_of_range : lo:int -> hi:int -> int list
(** [lines_of_range ~lo ~hi] lists the indexes of every cache line touched
    by the half-open byte range [\[lo, hi)]. Empty if [hi <= lo]. *)

type range = { lo : int; hi : int }
(** Half-open byte range [\[lo, hi)]. Invariant: [lo <= hi]. *)

val range : lo:int -> hi:int -> range
(** [range ~lo ~hi] builds a range. Raises [Invalid_argument] if
    [hi < lo] or [lo < 0]. *)

val of_base_size : int -> int -> range
(** [of_base_size addr size] is [\[addr, addr+size)]. *)

val size : range -> int

val is_empty : range -> bool

val contains : range -> int -> bool
(** [contains r a] is true iff [lo <= a < hi]. *)

val overlaps : range -> range -> bool
(** True iff the two ranges share at least one byte. *)

val covers : range -> range -> bool
(** [covers outer inner] is true iff [inner] is fully inside [outer]. *)

val inter : range -> range -> range option
(** Intersection, or [None] when disjoint or empty. *)

val diff : range -> range -> range list
(** [diff r cut] is the (0, 1 or 2) non-empty sub-ranges of [r] not
    covered by [cut]. *)

val adjacent_or_overlapping : range -> range -> bool
(** True iff the ranges overlap or touch end-to-end (mergeable). *)

val join : range -> range -> range
(** Smallest range covering both arguments. *)

val pp : Format.formatter -> range -> unit
(** Prints as [[lo,hi)]. *)

val to_string : range -> string
