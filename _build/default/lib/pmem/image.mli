(** A growable byte image backing a simulated PM pool.

    The image is the raw content store; persistency bookkeeping lives in
    {!State}. Reads outside the written area return zero bytes, like a
    freshly created DAX file. *)

type t

val create : ?initial_size:int -> unit -> t

val capacity : t -> int
(** Current backing capacity in bytes (grows on demand). *)

val write : t -> addr:int -> bytes -> unit
(** [write t ~addr b] copies all of [b] into the image at [addr]. *)

val write_sub : t -> addr:int -> bytes -> off:int -> len:int -> unit

val read : t -> addr:int -> len:int -> bytes

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val get_int : t -> int -> int
(** [get_int t addr] reads an [int64] at [addr] and truncates to [int]. *)

val set_int : t -> int -> int -> unit

val get_string : t -> addr:int -> len:int -> string
val set_string : t -> addr:int -> string -> unit

val copy : t -> t
(** Deep copy (used to materialize crash images). *)

val copy_range : src:t -> dst:t -> lo:int -> hi:int -> unit
(** Copies bytes of [\[lo,hi)] from [src] into [dst]. *)

val blit_line : src:t -> dst:t -> line:int -> unit
(** Copies one whole cache line identified by its line index. *)

val equal_range : t -> t -> lo:int -> hi:int -> bool
