let cache_line_size = 64

let line_of addr = addr lsr 6

let line_base addr = addr land lnot 63

let lines_of_range ~lo ~hi =
  if hi <= lo then []
  else begin
    let first = line_of lo and last = line_of (hi - 1) in
    let rec build i acc = if i < first then acc else build (i - 1) (i :: acc) in
    build last []
  end

type range = { lo : int; hi : int }

let range ~lo ~hi =
  if lo < 0 || hi < lo then
    invalid_arg (Printf.sprintf "Addr.range: bad range [%d,%d)" lo hi);
  { lo; hi }

let of_base_size addr size = range ~lo:addr ~hi:(addr + size)

let size r = r.hi - r.lo

let is_empty r = r.hi <= r.lo

let contains r a = r.lo <= a && a < r.hi

let overlaps a b = a.lo < b.hi && b.lo < a.hi && not (is_empty a) && not (is_empty b)

let covers outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if hi <= lo then None else Some { lo; hi }

let diff r cut =
  let left = { lo = r.lo; hi = min r.hi cut.lo } in
  let right = { lo = max r.lo cut.hi; hi = r.hi } in
  List.filter (fun x -> not (is_empty x)) [ left; right ]

let adjacent_or_overlapping a b = a.lo <= b.hi && b.lo <= a.hi

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let pp ppf r = Format.fprintf ppf "[%d,%d)" r.lo r.hi

let to_string r = Format.asprintf "%a" pp r
