(* The obs library itself (json / metrics / spans) plus its integration
   with the instrumented pipeline layers. *)

module J = Obs.Json
module M = Obs.Metrics

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let sample_json =
  J.Obj
    [
      ("schema", J.Str "x/v1");
      ("quote\"back\\slash", J.Str "tab\there\nnewline");
      ("int", J.Int 42);
      ("neg", J.Int (-7));
      ("float", J.Float 0.25);
      ("whole_float", J.Float 3.0);
      ("tiny", J.Float 1e-7);
      ("yes", J.Bool true);
      ("nothing", J.Null);
      ("list", J.List [ J.Int 1; J.Str "two"; J.Obj [] ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match J.of_string (J.to_string ~indent sample_json) with
      | Error msg -> Alcotest.fail msg
      | Ok decoded ->
          Alcotest.(check bool) (Printf.sprintf "roundtrip indent=%b" indent) true (decoded = sample_json))
    [ true; false ]

let test_json_int_float_distinct () =
  (* The printer forces a "." into floats so Int/Float survives a
     round-trip — "pmdb stats --check" relies on it. *)
  match J.of_string (J.to_string (J.List [ J.Int 3; J.Float 3.0 ])) with
  | Ok (J.List [ J.Int 3; J.Float 3.0 ]) -> ()
  | Ok other -> Alcotest.failf "got %s" (J.to_string ~indent:false other)
  | Error msg -> Alcotest.fail msg

let test_json_errors () =
  List.iter
    (fun text ->
      match J.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_accessors () =
  Alcotest.(check (option int)) "member+to_int" (Some 42) (Option.bind (J.member "int" sample_json) J.to_int);
  Alcotest.(check (option int)) "missing" None (Option.bind (J.member "nope" sample_json) J.to_int);
  Alcotest.(check bool) "to_float on int" true (J.to_float (J.Int 2) = Some 2.0);
  Alcotest.(check (option string)) "to_str" (Some "x/v1") (Option.bind (J.member "schema" sample_json) J.to_str)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counters_and_gauges () =
  let t = M.create () in
  M.inc t "a_total";
  M.inc t ~by:4 "a_total";
  M.set t "g" 2.0;
  M.max_set t "peak" 1.0;
  M.max_set t "peak" 3.0;
  M.max_set t "peak" 2.0;
  let snap = M.snapshot t in
  Alcotest.(check int) "counter sums" 5 (M.counter_value snap "a_total");
  (match M.find snap "g" with
  | Some (M.V_gauge v) -> Alcotest.(check (float 0.0)) "gauge" 2.0 v
  | _ -> Alcotest.fail "gauge missing");
  match M.find snap "peak" with
  | Some (M.V_gauge v) -> Alcotest.(check (float 0.0)) "max_set keeps the peak" 3.0 v
  | _ -> Alcotest.fail "peak missing"

let test_label_merging () =
  let t = M.create () in
  M.inc t ~labels:[ ("b", "2"); ("a", "1") ] "x_total";
  M.inc t ~labels:[ ("a", "1"); ("b", "2") ] "x_total";
  M.inc t ~labels:[ ("a", "1") ] "x_total";
  let snap = M.snapshot t in
  Alcotest.(check int) "orders merge" 2 (M.counter_value snap ~labels:[ ("a", "1"); ("b", "2") ] "x_total");
  Alcotest.(check int) "query order-insensitive" 2
    (M.counter_value snap ~labels:[ ("b", "2"); ("a", "1") ] "x_total");
  Alcotest.(check int) "subset is a distinct series" 1 (M.counter_value snap ~labels:[ ("a", "1") ] "x_total")

let test_histogram_buckets () =
  let t = M.create () in
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* One observation per region: first bucket (inclusive upper bound),
     second, third, overflow. *)
  List.iter (fun v -> M.observe t ~bounds "h" v) [ 0.5; 1.0; 1.5; 4.0; 99.0 ];
  match M.find (M.snapshot t) "h" with
  | Some (M.V_hist v) ->
      Alcotest.(check (array (float 0.0))) "bounds kept" bounds v.M.h_bounds;
      Alcotest.(check (array int)) "bucket counts (<=1, <=2, <=4, overflow)" [| 2; 1; 1; 1 |] v.M.h_counts;
      Alcotest.(check int) "count" 5 v.M.h_count;
      Alcotest.(check (float 1e-9)) "sum" 106.0 v.M.h_sum;
      Alcotest.(check (float 1e-9)) "observed max tracked" 99.0 v.M.h_max;
      Alcotest.(check bool) "overflow quantile reaches the observed max" true (M.quantile v 1.0 = 99.0)
  | _ -> Alcotest.fail "histogram missing"

(* Pin p50/p99 on a known synthetic distribution. Interior buckets
   interpolate linearly; the overflow bucket used to report the last
   bound verbatim for every q (so a p99 past the bounds snapped to a
   bucket edge) — it now interpolates toward the observed max. *)
let test_quantile_interpolation_pinned () =
  (* Uniform 1..40 over bounds 10/20/30/40: quantiles are exact. *)
  let h = M.hist_create ~bounds:[| 10.0; 20.0; 30.0; 40.0 |] () in
  for i = 1 to 40 do
    M.hist_observe h (float_of_int i)
  done;
  let v = M.hist_view h in
  Alcotest.(check (float 1e-9)) "p50 pinned" 20.0 (M.quantile v 0.5);
  Alcotest.(check (float 1e-9)) "p99 pinned" 39.6 (M.quantile v 0.99);
  (* All mass past the last bound: the pre-fix code returned 1.0 for
     every q here. *)
  let o = M.hist_create ~bounds:[| 1.0 |] () in
  List.iter (M.hist_observe o) [ 2.0; 4.0; 6.0; 8.0 ];
  let ov = M.hist_view o in
  Alcotest.(check (float 1e-9)) "overflow p50 interpolates" 4.5 (M.quantile ov 0.5);
  Alcotest.(check (float 1e-9)) "overflow p100 is the max" 8.0 (M.quantile ov 1.0);
  Alcotest.(check bool) "overflow p99 off the bucket edge" true (M.quantile ov 0.99 > 1.0);
  (* The max survives the JSON round-trip, so --diff'd reports keep
     interpolating identically. *)
  let t = M.create () in
  M.observe t ~bounds:[| 1.0 |] "h_seconds" 5.0;
  match M.snapshot_of_json (M.to_json t) with
  | Ok snap -> (
      match M.find snap "h_seconds" with
      | Some (M.V_hist r) -> Alcotest.(check (float 1e-9)) "max round-trips" 5.0 r.M.h_max
      | _ -> Alcotest.fail "histogram lost in round-trip")
  | Error msg -> Alcotest.fail msg

let test_quantiles () =
  let h = M.hist_create ~bounds:[| 1.0; 2.0; 3.0; 4.0 |] () in
  for v = 1 to 4 do
    M.hist_observe h (float_of_int v -. 0.5)
  done;
  let v = M.hist_view h in
  Alcotest.(check bool) "p50 in the middle" true (M.quantile v 0.5 >= 1.0 && M.quantile v 0.5 <= 3.0);
  Alcotest.(check bool) "monotone in q" true (M.quantile v 0.95 >= M.quantile v 0.5);
  Alcotest.(check (float 0.0)) "empty histogram" 0.0 (M.quantile (M.hist_view (M.hist_create ())) 0.5);
  (* The view is a copy: observing afterwards must not change it. *)
  M.hist_observe h 100.0;
  Alcotest.(check int) "view frozen" 4 v.M.h_count

let test_snapshot_determinism () =
  let mk order =
    let t = M.create () in
    List.iter
      (fun (name, labels) -> M.inc t ~labels name)
      (if order then
         [ ("b_total", []); ("a_total", [ ("k", "2") ]); ("a_total", [ ("k", "1") ]) ]
       else [ ("a_total", [ ("k", "1") ]); ("a_total", [ ("k", "2") ]); ("b_total", []) ]);
    M.observe t "h_seconds" 0.5;
    t
  in
  let j1 = J.to_string (M.to_json (mk true)) and j2 = J.to_string (M.to_json (mk false)) in
  Alcotest.(check string) "identical JSON regardless of insertion order" j1 j2;
  let names = List.map (fun s -> s.M.name) (M.snapshot (mk true)) in
  Alcotest.(check (list string)) "sorted by name" [ "a_total"; "a_total"; "b_total"; "h_seconds" ] names

let test_metrics_json_valid () =
  let t = M.create () in
  M.inc t ~labels:[ ("class", "store") ] "engine_events_total";
  M.set t "space_array_live_peak" 12.0;
  M.observe t "engine_dispatch_seconds" 1e-6;
  let json = M.to_json t in
  (match M.validate_json json with
  | Ok n -> Alcotest.(check int) "three series" 3 n
  | Error msg -> Alcotest.fail msg);
  (* And the validator rejects a broken document. *)
  match M.validate_json (J.Obj [ ("schema", J.Str "pmdb-metrics/v1"); ("metrics", J.Int 3) ]) with
  | Ok _ -> Alcotest.fail "accepted malformed metrics"
  | Error _ -> ()

let test_disabled_noop () =
  let t = M.create ~enabled:false () in
  M.inc t "a_total";
  M.set t "g" 1.0;
  M.max_set t "g" 9.0;
  M.observe t "h" 0.5;
  Alcotest.(check int) "nothing recorded" 0 (List.length (M.snapshot t));
  Alcotest.(check bool) "still off" false (M.is_on t);
  M.set_enabled t true;
  M.inc t "a_total";
  Alcotest.(check int) "records after enabling" 1 (M.counter_value (M.snapshot t) "a_total");
  Alcotest.(check bool) "shared disabled registry is off" false (M.is_on M.disabled);
  M.inc M.disabled "x";
  Alcotest.(check int) "shared disabled registry stays empty" 0 (List.length (M.snapshot M.disabled));
  match M.set_enabled M.disabled true with
  | () -> Alcotest.fail "enabling the shared disabled registry must raise"
  | exception Invalid_argument _ -> ()

let test_kind_mismatch () =
  let t = M.create () in
  M.inc t "x";
  match M.set t "x" 1.0 with
  | () -> Alcotest.fail "counter used as gauge must raise"
  | exception Invalid_argument _ -> ()

(* The ISSUE's regression guard: a disabled registry must cost one
   branch per record call, so instrumented-but-off code stays at the
   Nulgrind baseline. Generous absolute bound to stay CI-safe: 1M
   disabled incs in well under a second (a non-short-circuiting
   implementation — hashing, allocation — blows past this). *)
let test_disabled_overhead () =
  let t = M.disabled in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1_000_000 do
    M.inc t ~labels:[ ("class", "store") ] "engine_events_total"
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) (Printf.sprintf "1M disabled incs in %.3fs < 0.5s" dt) true (dt < 0.5)

(* Engine dispatch with a disabled registry vs a metrics-free baseline:
   the instrumented hot path may not add measurable slowdown. Ratio kept
   lenient (3x) — CI boxes are noisy; catching an accidental
   always-on path (10-100x) is the point. *)
let test_nulgrind_overhead_guard () =
  let run engine =
    Pmtrace.Engine.register_pmem engine ~base:0 ~size:65536;
    for i = 0 to 4999 do
      Pmtrace.Engine.store_i64 engine ~addr:(i * 8 mod 4096) 7L;
      if i mod 8 = 7 then Pmtrace.Engine.persist engine ~addr:(i * 8 mod 4096) ~size:8
    done;
    Pmtrace.Engine.program_end engine
  in
  let replay trace =
    let engine = Pmtrace.Engine.create () in
    Pmtrace.Engine.attach engine (Pmtrace.Sink.noop "nulgrind");
    Array.iter (Pmtrace.Engine.emit engine) trace;
    ignore (Pmtrace.Engine.finish_all engine)
  in
  let trace = Pmtrace.Recorder.record run in
  ignore (Sys.opaque_identity (replay trace));
  let t = Harness.Timing.median_of ~repeats:5 (fun () -> replay trace) in
  Alcotest.(check bool) "baseline measurable" true (t >= 0.0);
  let t2 = Harness.Timing.median_of ~repeats:5 (fun () -> replay trace) in
  Alcotest.(check bool)
    (Printf.sprintf "disabled-metrics dispatch stable (%.4fs vs %.4fs)" t t2)
    true
    (t2 < 0.002 || t2 < 3.0 *. (t +. 0.001))

(* ------------------------------------------------------------------ *)
(* Merge / absorb: the domain-safe aggregation laws                    *)
(* ------------------------------------------------------------------ *)

(* Registries are built from op lists with kind-disjoint name pools
   (c*_total counters, g* gauges, one default-bounds histogram), so any
   two generated snapshots are merge-compatible. *)
type mop = Op_inc of int * int * int | Op_gauge of int * float | Op_obs of float

let mop_gen =
  QCheck.Gen.(
    oneof
      [
        map3 (fun n l by -> Op_inc (n, l, by)) (int_bound 2) (int_bound 2) (int_bound 5);
        map2 (fun n v -> Op_gauge (n, v)) (int_bound 1) (float_bound_inclusive 10.0);
        map (fun v -> Op_obs v) (float_bound_inclusive 2.0);
      ])

let apply_mops ops =
  let t = M.create () in
  List.iter
    (function
      | Op_inc (n, l, by) -> M.inc t ~labels:[ ("l", string_of_int l) ] ~by (Printf.sprintf "c%d_total" n)
      | Op_gauge (n, v) -> M.max_set t (Printf.sprintf "g%d" n) v
      | Op_obs v -> M.observe t "h_seconds" v)
    ops;
  M.snapshot t

let mops_arb = QCheck.make ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops)) QCheck.Gen.(list_size (int_bound 20) mop_gen)

let render_snap snap = J.to_string (M.snapshot_to_json snap)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200 (QCheck.pair mops_arb mops_arb)
    (fun (xs, ys) ->
      let a = apply_mops xs and b = apply_mops ys in
      render_snap (M.merge [ a; b ]) = render_snap (M.merge [ b; a ]))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200 (QCheck.triple mops_arb mops_arb mops_arb)
    (fun (xs, ys, zs) ->
      let a = apply_mops xs and b = apply_mops ys and c = apply_mops zs in
      let left = M.merge [ M.merge [ a; b ]; c ] and right = M.merge [ a; M.merge [ b; c ] ] in
      render_snap left = render_snap right && render_snap left = render_snap (M.merge [ a; b; c ]))

let prop_absorb_agrees_with_merge =
  QCheck.Test.make ~name:"absorb-fold equals merge" ~count:200 (QCheck.pair mops_arb mops_arb)
    (fun (xs, ys) ->
      let a = apply_mops xs and b = apply_mops ys in
      let t = M.create () in
      M.absorb t a;
      M.absorb t b;
      render_snap (M.snapshot t) = render_snap (M.merge [ a; b ]))

let test_merge_basics () =
  let a = M.create () and b = M.create () in
  M.inc a ~by:2 "x_total";
  M.inc b ~by:3 "x_total";
  M.set a "g" 1.0;
  M.set b "g" 5.0;
  M.observe a "h" 0.5;
  M.observe b "h" 1.5;
  let m = M.merge [ M.snapshot a; M.snapshot b ] in
  Alcotest.(check int) "counters sum" 5 (M.counter_value m "x_total");
  (match M.find m "g" with
  | Some (M.V_gauge v) -> Alcotest.(check (float 0.0)) "gauges keep the max" 5.0 v
  | _ -> Alcotest.fail "gauge missing");
  (match M.find m "h" with
  | Some (M.V_hist v) ->
      Alcotest.(check int) "hist counts add" 2 v.M.h_count;
      Alcotest.(check (float 1e-9)) "hist sums add" 2.0 v.M.h_sum
  | _ -> Alcotest.fail "hist missing");
  (* Only-in-one series survive untouched. *)
  M.inc a ~labels:[ ("k", "v") ] "solo_total";
  let m = M.merge [ M.snapshot a; M.snapshot b ] in
  Alcotest.(check int) "lone series kept" 1 (M.counter_value m ~labels:[ ("k", "v") ] "solo_total")

let test_merge_kind_clash () =
  let a = M.create () and b = M.create () in
  M.inc a "x";
  M.set b "x" 1.0;
  (match M.merge [ M.snapshot a; M.snapshot b ] with
  | _ -> Alcotest.fail "kind clash must raise"
  | exception Invalid_argument _ -> ());
  let c = M.create () and d = M.create () in
  M.observe c ~bounds:[| 1.0 |] "h" 0.5;
  M.observe d ~bounds:[| 2.0 |] "h" 0.5;
  (match M.merge [ M.snapshot c; M.snapshot d ] with
  | _ -> Alcotest.fail "bounds clash must raise"
  | exception Invalid_argument _ -> ());
  (* absorb enforces the same compatibility rules. *)
  let t = M.create () in
  M.inc t "x";
  match M.absorb t (M.snapshot b) with
  | () -> Alcotest.fail "absorb kind clash must raise"
  | exception Invalid_argument _ -> ()

let test_absorb_disabled_noop () =
  let a = M.create () in
  M.inc a "x_total";
  M.absorb M.disabled (M.snapshot a);
  Alcotest.(check int) "disabled registry stays empty" 0 (List.length (M.snapshot M.disabled))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module F = Obs.Flightrec

let test_flightrec_wraparound () =
  let r = F.create ~capacity:4 () in
  for i = 0 to 9 do
    F.record r ~ts:(float_of_int i) ~cat:"dispatch" ~name:"store" ~a:i ~b:(i * 2)
  done;
  Alcotest.(check int) "recorded counts everything" 10 (F.recorded r);
  let w = F.window r in
  Alcotest.(check int) "window capped at capacity" 4 (List.length w);
  Alcotest.(check (list int)) "oldest-first, global seq survives wrap" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.F.e_seq) w);
  Alcotest.(check (list int)) "payload follows" [ 12; 14; 16; 18 ] (List.map (fun e -> e.F.e_b) w);
  Alcotest.(check (list int)) "last-N trims from the old end" [ 8; 9 ]
    (List.map (fun e -> e.F.e_seq) (F.window ~last:2 r));
  F.clear r;
  Alcotest.(check int) "clear empties the window" 0 (List.length (F.window r));
  match F.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 must raise"
  | exception Invalid_argument _ -> ()

let test_flightrec_disabled () =
  Alcotest.(check bool) "shared ring is off" false (F.is_on F.disabled);
  F.record F.disabled ~ts:1.0 ~cat:"x" ~name:"y" ~a:1 ~b:2;
  Alcotest.(check int) "disabled records nothing" 0 (F.recorded F.disabled);
  (match F.set_enabled F.disabled true with
  | () -> Alcotest.fail "enabling the shared disabled ring must raise"
  | exception Invalid_argument _ -> ());
  let r = F.create ~enabled:false () in
  F.record r ~ts:1.0 ~cat:"x" ~name:"y" ~a:1 ~b:2;
  F.set_enabled r true;
  F.record r ~ts:2.0 ~cat:"x" ~name:"y" ~a:3 ~b:4;
  Alcotest.(check int) "records only while enabled" 1 (F.recorded r)

let test_flightrec_dump_json () =
  let r = F.create ~capacity:8 () in
  List.iteri
    (fun i (cat, name, b) -> F.record r ~ts:(0.1 *. float_of_int i) ~cat ~name ~a:7 ~b)
    [ ("session", "open", 0); ("dispatch", "store", 0); ("quarantine", "detector", 0); ("session", "detector-error", 1) ];
  let doc = F.dump_to_json ~meta:[ ("reason", J.Str "test"); ("session", J.Str "s7") ] [ ("dispatch", r) ] in
  (match F.validate_json doc with
  | Ok n -> Alcotest.(check int) "all entries dumped" 4 n
  | Error msg -> Alcotest.fail msg);
  (match J.member "schema" doc with
  | Some (J.Str s) -> Alcotest.(check string) "schema id" F.schema_id s
  | _ -> Alcotest.fail "schema missing");
  (match Option.bind (J.member "meta" doc) (J.member "session") with
  | Some (J.Str "s7") -> ()
  | _ -> Alcotest.fail "meta lost");
  (* The window cap applies per ring. *)
  match F.validate_json (F.dump_to_json ~last:2 [ ("dispatch", r) ]) with
  | Ok n -> Alcotest.(check int) "last-N window" 2 n
  | Error msg -> Alcotest.fail msg

let test_flightrec_perfetto () =
  let r = F.create ~capacity:32 () in
  (* Two session lifecycles (one terminal, one left open) + noise. *)
  List.iter
    (fun (ts, cat, name, a, b) -> F.record r ~ts ~cat ~name ~a ~b)
    [
      (0.0, "session", "open", 1, 0);
      (0.1, "backpressure", "stall", 1, 17);
      (0.2, "session", "drain", 1, 0);
      (0.3, "session", "ok", 1, 1);
      (0.4, "session", "open", 2, 0);
    ];
  let doc = F.dump_to_perfetto [ ("dispatch", r) ] in
  match Obs.Perfetto.validate_json doc with
  | Ok n -> Alcotest.(check bool) (Printf.sprintf "%d trace events" n) true (n > 0)
  | Error msg -> Alcotest.fail msg

(* Mirror of test_disabled_overhead for the recorder: the always-on
   hook may cost one branch when off. *)
let test_flightrec_disabled_overhead () =
  let r = F.disabled in
  let t0 = Unix.gettimeofday () in
  for i = 1 to 1_000_000 do
    F.record r ~ts:0.0 ~cat:"dispatch" ~name:"store" ~a:i ~b:0
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) (Printf.sprintf "1M disabled records in %.3fs < 0.5s" dt) true (dt < 0.5)

(* ------------------------------------------------------------------ *)
(* Heatmap: capped per-line accounting                                 *)
(* ------------------------------------------------------------------ *)

module H = Obs.Heatmap

let test_heatmap_counting_and_dirty () =
  let h = H.create ~cap:8 () in
  H.on_store h ~seq:10 ~line:1;
  H.on_store h ~seq:12 ~line:1;
  (* Already dirty: the second store extends the same interval. *)
  H.on_clf h ~seq:15 ~line:1;
  H.on_bug h ~line:1;
  H.set_name h ~line:1 "head";
  H.set_name h ~line:1 "late";
  (* Line 2 stays dirty: charged up to the latest seq seen (20). *)
  H.on_store h ~seq:18 ~line:2;
  H.on_store h ~seq:20 ~line:1;
  let s = H.snapshot h in
  Alcotest.(check int) "two lines tracked" 2 s.H.s_tracked;
  let row line = List.find (fun r -> r.H.r_line = line) s.H.s_rows in
  let r1 = row 1 and r2 = row 2 in
  Alcotest.(check int) "stores" 3 r1.H.r_stores;
  Alcotest.(check int) "clfs" 1 r1.H.r_clfs;
  Alcotest.(check int) "bugs" 1 r1.H.r_bugs;
  Alcotest.(check (option string)) "first name wins" (Some "head") r1.H.r_name;
  Alcotest.(check bool) "closed interval charged" true (r1.H.r_dirty >= 5);
  Alcotest.(check int) "open interval charged to latest seq" 2 r2.H.r_dirty;
  (* Hottest first: line 1 carries more traffic. *)
  Alcotest.(check int) "rank by traffic" 1 (List.hd s.H.s_rows).H.r_line

let test_heatmap_cap_and_dropped () =
  let h = H.create ~cap:2 () in
  H.on_store h ~seq:1 ~line:1;
  H.on_store h ~seq:2 ~line:2;
  H.on_store h ~seq:3 ~line:3;
  H.on_clf h ~seq:4 ~line:4;
  H.on_store h ~seq:5 ~line:1;
  let s = H.snapshot h in
  Alcotest.(check int) "cap respected" 2 s.H.s_tracked;
  Alcotest.(check int) "overflow counted" 2 s.H.s_dropped;
  Alcotest.(check int) "tracked lines keep counting" 2 (List.find (fun r -> r.H.r_line = 1) s.H.s_rows).H.r_stores

let test_heatmap_merge_and_json_roundtrip () =
  let mk f = let h = H.create ~cap:8 () in f h; H.snapshot h in
  let a = mk (fun h -> H.on_store h ~seq:1 ~line:7; H.set_name h ~line:7 "log") in
  let b = mk (fun h -> H.on_store h ~seq:2 ~line:7; H.on_bug h ~line:7; H.on_clf h ~seq:3 ~line:9) in
  let m = H.merge [ a; b ] in
  Alcotest.(check int) "union of lines" 2 (List.length m.H.s_rows);
  let r7 = List.find (fun r -> r.H.r_line = 7) m.H.s_rows in
  Alcotest.(check int) "counters sum" 2 r7.H.r_stores;
  Alcotest.(check int) "bugs sum" 1 r7.H.r_bugs;
  Alcotest.(check (option string)) "name survives the merge" (Some "log") r7.H.r_name;
  match H.snapshot_of_json (H.snapshot_to_json m) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check bool) "round-trips" true (back = m);
      Alcotest.(check string) "schema id" "pmdb-heatmap/v1" H.schema_id

let test_heatmap_disabled_noop () =
  let h = H.disabled in
  H.on_store h ~seq:1 ~line:1;
  H.on_clf h ~seq:2 ~line:1;
  H.on_bug h ~line:1;
  H.set_name h ~line:1 "x";
  Alcotest.(check bool) "off" false (H.is_on h);
  Alcotest.(check int) "nothing tracked" 0 (H.snapshot h).H.s_tracked

(* ------------------------------------------------------------------ *)
(* Tracecat: the merged causal trace                                   *)
(* ------------------------------------------------------------------ *)

let test_tracecat_flow_arrows () =
  let router = F.create ~capacity:64 () in
  let worker = F.create ~capacity:64 () in
  (* Frame (0,0) survives on both rings -> one flow arrow; frame (0,1)
     has a publish with no pop -> stays an instant, no arrow. *)
  F.record router ~ts:1.0 ~cat:"frame" ~name:"publish" ~a:0 ~b:0;
  F.record worker ~ts:1.5 ~cat:"frame" ~name:"pop" ~a:0 ~b:0;
  F.record router ~ts:2.0 ~cat:"frame" ~name:"publish" ~a:0 ~b:1;
  let spans = [ { Obs.Span.sp_name = "replay"; sp_attrs = [ ("k", "v") ]; sp_start_s = 0.5; sp_dur_s = 3.0 } ] in
  let doc = Obs.Tracecat.merge ~spans ~metadata:[ ("reason", Obs.Json.Str "test") ] [ ("router", router); ("shard-0", worker) ] in
  (match Obs.Perfetto.validate_json doc with
  | Ok n -> Alcotest.(check bool) (Printf.sprintf "%d events validate" n) true (n > 0)
  | Error e -> Alcotest.fail e);
  let evs = match Obs.Json.member "traceEvents" doc with Some (Obs.Json.List l) -> l | _ -> [] in
  let with_ph p = List.filter (fun e -> Obs.Json.member "ph" e = Some (Obs.Json.Str p)) evs in
  Alcotest.(check int) "one flow start" 1 (List.length (with_ph "s"));
  Alcotest.(check int) "one flow finish" 1 (List.length (with_ph "f"));
  let pub_pop =
    List.filter
      (fun e ->
        Obs.Json.member "ph" e = Some (Obs.Json.Str "X")
        && Obs.Json.member "cat" e = Some (Obs.Json.Str "frame"))
      evs
  in
  Alcotest.(check int) "matched pair renders two slices" 2 (List.length pub_pop);
  let instants = with_ph "i" in
  Alcotest.(check int) "unmatched publish stays an instant" 1 (List.length instants);
  let span_slices =
    List.filter (fun e -> Obs.Json.member "cat" e = Some (Obs.Json.Str "span")) evs
  in
  Alcotest.(check int) "phase track carries the span" 1 (List.length span_slices)

let test_tracecat_pop_clamped_to_publish () =
  (* Skewed clocks: the pop stamp precedes the publish stamp; the arrow
     must still point forward in the rendered trace. *)
  let router = F.create ~capacity:8 () in
  let worker = F.create ~capacity:8 () in
  F.record router ~ts:5.0 ~cat:"frame" ~name:"publish" ~a:1 ~b:0;
  F.record worker ~ts:4.9 ~cat:"frame" ~name:"pop" ~a:1 ~b:0;
  let doc = Obs.Tracecat.merge [ ("router", router); ("shard-1", worker) ] in
  let evs = match Obs.Json.member "traceEvents" doc with Some (Obs.Json.List l) -> l | _ -> [] in
  let ts_of name =
    List.filter_map
      (fun e ->
        match (Obs.Json.member "name" e, Obs.Json.member "ph" e, Obs.Json.member "ts" e) with
        | Some (Obs.Json.Str n), Some (Obs.Json.Str "X"), Some (Obs.Json.Int ts) when n = name -> Some ts
        | _ -> None)
      evs
  in
  match (ts_of "publish", ts_of "pop") with
  | [ pub ], [ pop ] -> Alcotest.(check bool) "pop not before publish" true (pop >= pub)
  | _ -> Alcotest.fail "expected one publish and one pop slice"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

module P = Obs.Prometheus

let test_prometheus_render () =
  let t = M.create () in
  M.inc t ~by:3 ~labels:[ ("status", "ok") ] "serve_sessions_closed_total";
  M.set t "serve_sessions_active" 2.0;
  M.observe t ~bounds:[| 0.5; 1.0 |] "ingest_seconds" 0.25;
  M.observe t ~bounds:[| 0.5; 1.0 |] "ingest_seconds" 2.0;
  let text = P.render (M.snapshot t) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (let nl = String.length needle and tl = String.length text in
         let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
         go 0))
    [
      "# TYPE serve_sessions_closed_total counter";
      "serve_sessions_closed_total{status=\"ok\"} 3";
      "# TYPE serve_sessions_active gauge";
      "# TYPE ingest_seconds histogram";
      "ingest_seconds_bucket{le=\"0.5\"} 1";
      "ingest_seconds_bucket{le=\"+Inf\"} 2";
      "ingest_seconds_sum 2.25";
      "ingest_seconds_count 2";
    ];
  (match P.validate text with
  | Ok n -> Alcotest.(check bool) (Printf.sprintf "%d samples" n) true (n >= 6)
  | Error msg -> Alcotest.fail msg);
  (* Deterministic: the same snapshot renders to identical text. *)
  Alcotest.(check string) "render is deterministic" text (P.render (M.snapshot t))

let test_prometheus_escaping () =
  let t = M.create () in
  M.inc t ~labels:[ ("path", "a\\b\"c\nd") ] "weird_total";
  let text = P.render (M.snapshot t) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "backslash, quote and newline escaped" true
    (contains "path=\"a\\\\b\\\"c\\nd\"");
  match P.validate text with
  | Ok n -> Alcotest.(check int) "escapes parse back" 1 n
  | Error msg -> Alcotest.fail msg

let test_prometheus_validate_rejects () =
  List.iter
    (fun (what, text) ->
      match P.validate text with
      | Ok _ -> Alcotest.failf "accepted %s" what
      | Error _ -> ())
    [
      ("undeclared sample", "foo_total 3\n");
      ("duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n");
      ("bad value", "# TYPE x counter\nx banana\n");
      ("unterminated labels", "# TYPE x counter\nx{a=\"1\" 3\n");
      ("bad TYPE kind", "# TYPE x thing\nx 1\n");
    ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_spans () =
  let t = Obs.Span.create () in
  let r = Obs.Span.record t ~attrs:[ ("k", "v") ] "outer" (fun () -> 41 + 1) in
  Alcotest.(check int) "value through" 42 r;
  (match Obs.Span.record t "boom" (fun () -> failwith "kaput") with
  | () -> Alcotest.fail "must re-raise"
  | exception Failure _ -> ());
  let spans = Obs.Span.finished t in
  Alcotest.(check (list string)) "both recorded, in order" [ "outer"; "boom" ]
    (List.map (fun s -> s.Obs.Span.sp_name) spans);
  let boom = List.nth spans 1 in
  Alcotest.(check bool) "error attr" true (List.mem_assoc "error" boom.Obs.Span.sp_attrs);
  List.iter (fun s -> Alcotest.(check bool) "duration >= 0" true (s.Obs.Span.sp_dur_s >= 0.0)) spans;
  (match Obs.Span.to_json t with
  | Obs.Json.List [ _; _ ] -> ()
  | other -> Alcotest.failf "span json: %s" (J.to_string ~indent:false other));
  Obs.Span.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Obs.Span.finished t));
  let off = Obs.Span.disabled in
  Alcotest.(check int) "disabled runs the thunk" 7 (Obs.Span.record off "x" (fun () -> 7));
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Obs.Span.finished off))

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let test_engine_telemetry () =
  let metrics = M.create () in
  let engine = Pmtrace.Engine.create ~metrics () in
  Pmtrace.Engine.attach engine (Pmtrace.Sink.noop "nulgrind");
  Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
  Pmtrace.Engine.store_i64 engine ~addr:0 1L;
  Pmtrace.Engine.store_i64 engine ~addr:8 2L;
  Pmtrace.Engine.clwb engine ~addr:0;
  Pmtrace.Engine.sfence engine;
  Pmtrace.Engine.program_end engine;
  ignore (Pmtrace.Engine.finish_all engine);
  let snap = M.snapshot metrics in
  Alcotest.(check int) "store events" 2 (M.counter_value snap ~labels:[ ("class", "store") ] "engine_events_total");
  Alcotest.(check int) "clf events" 1 (M.counter_value snap ~labels:[ ("class", "clf") ] "engine_events_total");
  Alcotest.(check int) "fence events" 1 (M.counter_value snap ~labels:[ ("class", "fence") ] "engine_events_total");
  match M.find snap ~labels:[ ("class", "store") ] "engine_dispatch_seconds" with
  | Some (M.V_hist v) -> Alcotest.(check int) "dispatch latency per store" 2 v.M.h_count
  | _ -> Alcotest.fail "engine_dispatch_seconds missing"

let test_engine_quarantine_metric () =
  let metrics = M.create () in
  let engine = Pmtrace.Engine.create ~metrics () in
  Pmtrace.Engine.attach engine
    (Pmtrace.Sink.make ~name:"bad"
       ~on_event:(fun _ -> failwith "kaput")
       ~finish:(fun () -> Pmtrace.Bug.empty_report "bad"));
  Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
  Pmtrace.Engine.store_i64 engine ~addr:0 1L;
  Pmtrace.Engine.program_end engine;
  Alcotest.(check (list string)) "sink quarantined" [ "bad" ] (List.map fst (Pmtrace.Engine.quarantined engine));
  Alcotest.(check int) "quarantine counted" 1
    (M.counter_value (M.snapshot metrics) ~labels:[ ("sink", "bad") ] "engine_sinks_quarantined_total")

let test_detector_telemetry () =
  let metrics = M.create () in
  let engine = Pmtrace.Engine.create ~metrics () in
  let d = Pmdebugger.Detector.create ~metrics () in
  Pmtrace.Engine.attach engine (Pmdebugger.Detector.sink d);
  Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
  (* An unflushed store at program end: no-durability-guarantee fires. *)
  Pmtrace.Engine.store_i64 engine ~addr:0 1L;
  Pmtrace.Engine.program_end engine;
  ignore (Pmtrace.Engine.finish_all engine);
  let snap = M.snapshot metrics in
  Alcotest.(check bool) "no-durability-guarantee fired" true
    (M.counter_value snap ~labels:[ ("rule", "no-durability-guarantee") ] "detector_rule_fires_total" >= 1);
  (* Every rule is pre-declared so run reports always carry the full
     per-rule table, zeros included. *)
  List.iter
    (fun kind ->
      match M.find snap ~labels:[ ("rule", Pmtrace.Bug.kind_name kind) ] "detector_rule_fires_total" with
      | Some (M.V_counter _) -> ()
      | _ -> Alcotest.failf "rule %s not pre-declared" (Pmtrace.Bug.kind_name kind))
    Pmtrace.Bug.all_kinds;
  Alcotest.(check bool) "array hits counted" true (M.counter_value snap "space_array_hits_total" >= 1)

let test_suppression_metric () =
  let metrics = M.create () in
  let engine = Pmtrace.Engine.create () in
  let d = Pmdebugger.Detector.create ~max_bugs_per_kind:2 ~metrics () in
  Pmtrace.Engine.attach engine (Pmdebugger.Detector.sink d);
  Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
  (* Five back-to-back overwrites of never-flushed lines. *)
  for i = 0 to 4 do
    Pmtrace.Engine.store_i64 engine ~addr:(i * 64) 1L;
    Pmtrace.Engine.store_i64 engine ~addr:(i * 64) 2L
  done;
  Pmtrace.Engine.program_end engine;
  let report = List.hd (Pmtrace.Engine.finish_all engine) in
  let snap = M.snapshot metrics in
  let fired = M.counter_value snap ~labels:[ ("rule", "multiple-overwrites") ] "detector_rule_fires_total" in
  let dropped = M.counter_value snap ~labels:[ ("rule", "multiple-overwrites") ] "detector_bugs_suppressed_total" in
  Alcotest.(check int) "cap respected" 2 fired;
  Alcotest.(check int) "suppressions counted" 3 dropped;
  Alcotest.(check int) "report agrees with the cap" 2
    (Pmtrace.Bug.count_kind report Pmtrace.Bug.Multiple_overwrites)

let test_space_spill_metric () =
  let metrics = M.create () in
  (* Tiny array so stores overflow into the AVL tree. *)
  let space = Pmdebugger.Space.create ~array_capacity:4 ~metrics () in
  for i = 0 to 15 do
    ignore (Pmdebugger.Space.process_store space ~addr:(i * 128) ~size:8 ~epoch:false ~seq:i ~tid:0 ~strand:0 ())
  done;
  let snap = M.snapshot metrics in
  Alcotest.(check int) "array absorbed its capacity" 4 (M.counter_value snap "space_array_hits_total");
  Alcotest.(check int) "rest spilled to the tree" 12 (M.counter_value snap "space_tree_spills_total")

let test_trace_io_telemetry () =
  let metrics = M.create () in
  let l = Pmtrace.Trace_io.of_string_lenient ~metrics "store 0 128 8\nBOGUS LINE\nfence 0\n" in
  Alcotest.(check int) "trace survives" 3 (Array.length l.Pmtrace.Trace_io.trace);
  let snap = M.snapshot metrics in
  Alcotest.(check int) "parsed lines counted" 2 (M.counter_value snap "trace_io_lines_parsed_total");
  Alcotest.(check int) "skipped lines counted" 1 (M.counter_value snap "trace_io_lines_skipped_total")

let test_crash_explore_telemetry () =
  let metrics = M.create () in
  let steps =
    Faultinject.Replay.capture (fun e ->
        Pmtrace.Engine.register_pmem e ~base:0 ~size:4096;
        Pmtrace.Engine.store_i64 e ~addr:0 1L;
        Pmtrace.Engine.persist e ~addr:0 ~size:8;
        Pmtrace.Engine.store_i64 e ~addr:8 2L;
        Pmtrace.Engine.persist e ~addr:8 ~size:8;
        Pmtrace.Engine.program_end e)
  in
  let r = Faultinject.Crash_explore.explore ~metrics ~recovery:(fun _ -> true) steps in
  let snap = M.snapshot metrics in
  Alcotest.(check int) "prefixes counted" r.Faultinject.Crash_explore.boundaries_checked
    (M.counter_value snap "crash_explore_prefixes_replayed_total");
  Alcotest.(check int) "images counted" r.Faultinject.Crash_explore.images_checked
    (M.counter_value snap "crash_explore_images_tested_total");
  Alcotest.(check bool) "something was explored" true (r.Faultinject.Crash_explore.boundaries_checked > 0)

let suite =
  [
    Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json-int-float" `Quick test_json_int_float_distinct;
    Alcotest.test_case "json-errors" `Quick test_json_errors;
    Alcotest.test_case "json-accessors" `Quick test_json_accessors;
    Alcotest.test_case "counters-gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "label-merging" `Quick test_label_merging;
    Alcotest.test_case "histogram-buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "quantile-interpolation-pinned" `Quick test_quantile_interpolation_pinned;
    Alcotest.test_case "snapshot-determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "metrics-json-valid" `Quick test_metrics_json_valid;
    Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
    Alcotest.test_case "kind-mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "disabled-overhead" `Quick test_disabled_overhead;
    Alcotest.test_case "nulgrind-overhead-guard" `Quick test_nulgrind_overhead_guard;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_absorb_agrees_with_merge;
    Alcotest.test_case "merge-basics" `Quick test_merge_basics;
    Alcotest.test_case "merge-kind-clash" `Quick test_merge_kind_clash;
    Alcotest.test_case "absorb-disabled-noop" `Quick test_absorb_disabled_noop;
    Alcotest.test_case "flightrec-wraparound" `Quick test_flightrec_wraparound;
    Alcotest.test_case "flightrec-disabled" `Quick test_flightrec_disabled;
    Alcotest.test_case "flightrec-dump-json" `Quick test_flightrec_dump_json;
    Alcotest.test_case "flightrec-perfetto" `Quick test_flightrec_perfetto;
    Alcotest.test_case "flightrec-disabled-overhead" `Quick test_flightrec_disabled_overhead;
    Alcotest.test_case "heatmap-counting-dirty" `Quick test_heatmap_counting_and_dirty;
    Alcotest.test_case "heatmap-cap-dropped" `Quick test_heatmap_cap_and_dropped;
    Alcotest.test_case "heatmap-merge-json" `Quick test_heatmap_merge_and_json_roundtrip;
    Alcotest.test_case "heatmap-disabled" `Quick test_heatmap_disabled_noop;
    Alcotest.test_case "tracecat-flow-arrows" `Quick test_tracecat_flow_arrows;
    Alcotest.test_case "tracecat-skew-clamped" `Quick test_tracecat_pop_clamped_to_publish;
    Alcotest.test_case "prometheus-render" `Quick test_prometheus_render;
    Alcotest.test_case "prometheus-escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "prometheus-validate-rejects" `Quick test_prometheus_validate_rejects;
    Alcotest.test_case "spans" `Quick test_spans;
    Alcotest.test_case "engine-telemetry" `Quick test_engine_telemetry;
    Alcotest.test_case "engine-quarantine-metric" `Quick test_engine_quarantine_metric;
    Alcotest.test_case "detector-telemetry" `Quick test_detector_telemetry;
    Alcotest.test_case "suppression-metric" `Quick test_suppression_metric;
    Alcotest.test_case "space-spill-metric" `Quick test_space_spill_metric;
    Alcotest.test_case "trace-io-telemetry" `Quick test_trace_io_telemetry;
    Alcotest.test_case "crash-explore-telemetry" `Quick test_crash_explore_telemetry;
  ]
