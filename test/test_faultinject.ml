open Pmtrace
module FI = Faultinject

(* ------------------------------------------------------------------ *)
(* Capture / replay.                                                   *)
(* ------------------------------------------------------------------ *)

let test_capture_payloads () =
  let steps =
    FI.Replay.capture (fun e ->
        Engine.store_string e ~addr:100 "hello";
        Engine.persist e ~addr:100 ~size:5)
  in
  (* store + clf + fence + synthesized program_end *)
  Alcotest.(check int) "step count" 4 (Array.length steps);
  (match steps.(0) with
  | FI.Replay.Store_data { addr; data; _ } ->
      Alcotest.(check int) "addr" 100 addr;
      Alcotest.(check string) "payload captured" "hello" (Bytes.to_string data)
  | _ -> Alcotest.fail "expected captured store");
  (* Replaying the steps reproduces the durable contents. *)
  let st = Pmem.State.create () in
  Array.iter (FI.Replay.apply st) steps;
  Alcotest.(check string) "durable after replay" "hello"
    (Pmem.Image.get_string (Pmem.State.durable st) ~addr:100 ~len:5)

let test_events_projection () =
  let steps =
    [| FI.Replay.Ev (Event.Fence { tid = 0 }); FI.Replay.Evict { line = 3 }; FI.Replay.Ev Event.Program_end |]
  in
  let events = FI.Replay.events_of_steps steps in
  Alcotest.(check int) "evictions invisible to detectors" 2 (Array.length events)

(* ------------------------------------------------------------------ *)
(* Crash-point explorer.                                               *)
(* ------------------------------------------------------------------ *)

let magic = 0xC0FFEEL

(* flag persisted before the data it guards: the canonical cross-failure
   bug. Recovery: flag set implies data = magic. *)
let flag_before_data e =
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.store_i64 e ~addr:0 1L;
  Engine.persist e ~addr:0 ~size:8;
  Engine.store_i64 e ~addr:64 magic;
  Engine.persist e ~addr:64 ~size:8;
  Engine.program_end e

let data_then_flag e =
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.store_i64 e ~addr:64 magic;
  Engine.persist e ~addr:64 ~size:8;
  Engine.store_i64 e ~addr:0 1L;
  Engine.persist e ~addr:0 ~size:8;
  Engine.program_end e

let recovery_flag_data img =
  Pmem.Image.get_i64 img 0 = 0L || Pmem.Image.get_i64 img 64 = magic

let test_explorer_finds_cross_failure () =
  let steps = FI.Replay.capture flag_before_data in
  let result = FI.Crash_explore.explore ~recovery:recovery_flag_data steps in
  Alcotest.(check bool) "failures found" true (result.FI.Crash_explore.failures <> []);
  (* Every-op exploration pins the earliest exposure: right after the
     flag store (index 1, after Register_pmem), where an eviction could
     make the flag durable before the data exists. Fence-only sampling
     only sees it once the fence drains the flag line (index 3). *)
  (match FI.Crash_explore.minimal_failing_prefix ~recovery:recovery_flag_data steps with
  | None -> Alcotest.fail "expected a minimal failing prefix"
  | Some f ->
      Alcotest.(check bool) "earliest exposure is the flag store" true (FI.Replay.is_store f.FI.Crash_explore.step);
      Alcotest.(check int) "exact event index" 1 f.FI.Crash_explore.index);
  let coarse =
    FI.Crash_explore.explore ~boundaries:FI.Crash_explore.Fences_only ~stop_at_first:true
      ~recovery:recovery_flag_data steps
  in
  match coarse.FI.Crash_explore.failures with
  | [ f ] ->
      Alcotest.(check bool) "fence-only failure at a fence" true (FI.Replay.is_fence f.FI.Crash_explore.step);
      Alcotest.(check int) "fence index" 3 f.FI.Crash_explore.index
  | _ -> Alcotest.fail "fence-only pass should report exactly one failure"

let test_explorer_clean_program () =
  let steps = FI.Replay.capture data_then_flag in
  let result = FI.Crash_explore.explore ~recovery:recovery_flag_data steps in
  Alcotest.(check int) "no failures on correct ordering" 0 (List.length result.FI.Crash_explore.failures);
  Alcotest.(check bool) "boundaries were checked" true (result.FI.Crash_explore.boundaries_checked >= 6)

let test_bisect_agrees_with_scan () =
  let steps = FI.Replay.capture flag_before_data in
  let scan = FI.Crash_explore.minimal_failing_prefix ~recovery:recovery_flag_data steps in
  let bisect = FI.Crash_explore.bisect ~recovery:recovery_flag_data steps in
  match (scan, bisect) with
  | Some a, Some b ->
      Alcotest.(check int) "same minimal index" a.FI.Crash_explore.index b.FI.Crash_explore.index
  | _ -> Alcotest.fail "both searches must fail the trace"

let test_explorer_on_bugbench_xfail () =
  (* Every cross-failure case the fence-sampling detector already flags
     must also be found by the explorer, with an exact event index. *)
  let xfail =
    List.filter (fun (c : Bugbench.Cases.t) -> c.Bugbench.Cases.recovery <> None) Bugbench.Cases.buggy
  in
  Alcotest.(check bool) "dataset has cross-failure cases" true (List.length xfail >= 4);
  List.iter
    (fun (c : Bugbench.Cases.t) ->
      let recovery = Option.get c.Bugbench.Cases.recovery in
      let steps = FI.Replay.capture c.Bugbench.Cases.run in
      match FI.Crash_explore.minimal_failing_prefix ~recovery steps with
      | None -> Alcotest.fail (Printf.sprintf "%s: explorer found no failing prefix" c.Bugbench.Cases.id)
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: failure index within trace" c.Bugbench.Cases.id)
            true
            (f.FI.Crash_explore.index >= 0 && f.FI.Crash_explore.index < Array.length steps))
    xfail

let test_eviction_changes_crash_images () =
  (* Without eviction, the dirty flag line is absent from the
     nothing-persisted crash image; an injected eviction pins it into
     every image. *)
  let program evict e =
    Engine.register_pmem e ~base:0 ~size:4096;
    Engine.store_i64 e ~addr:0 1L;
    ignore evict;
    Engine.program_end e
  in
  let steps = FI.Replay.capture (program false) in
  let mutated, injections = FI.Injector.apply (FI.Injector.plan FI.Injector.Evict_line) steps in
  Alcotest.(check int) "one eviction injected" 1 (List.length injections);
  let flag_durable steps =
    let st = Pmem.State.create () in
    Array.iter (FI.Replay.apply st) steps;
    Pmem.Image.get_i64 (Pmem.State.durable st) 0 = 1L
  in
  Alcotest.(check bool) "dirty line not durable without eviction" false (flag_durable steps);
  Alcotest.(check bool) "evicted line durable with no flush issued" true (flag_durable mutated)

(* ------------------------------------------------------------------ *)
(* Exploration strategies.                                             *)
(* ------------------------------------------------------------------ *)

module CE = FI.Crash_explore

let xfail_cases =
  lazy
    (List.filter_map
       (fun (c : Bugbench.Cases.t) ->
         match c.Bugbench.Cases.recovery with
         | Some recovery -> Some (c.Bugbench.Cases.id, FI.Replay.capture c.Bugbench.Cases.run, recovery)
         | None -> None)
       Bugbench.Cases.buggy)

let failure_indexes (o : CE.outcome) = List.map (fun f -> f.CE.index) o.result.CE.failures

let test_exhaustive_strategy_is_explore () =
  (* The strategy driver with [exhaustive] must reproduce the legacy
     entry point exactly: same boundaries, images and failures. *)
  List.iter
    (fun (id, steps, recovery) ->
      let legacy = CE.explore ~recovery steps in
      let o = CE.run ~recovery (CE.make_plan steps) CE.exhaustive in
      Alcotest.(check int) (id ^ ": boundaries") legacy.CE.boundaries_checked o.CE.result.CE.boundaries_checked;
      Alcotest.(check int) (id ^ ": images") legacy.CE.images_checked o.CE.result.CE.images_checked;
      Alcotest.(check (list int))
        (id ^ ": failure indexes")
        (List.map (fun f -> f.CE.index) legacy.CE.failures)
        (failure_indexes o))
    (Lazy.force xfail_cases)

let test_guided_unbounded_matches_exhaustive () =
  List.iter
    (fun (id, steps, recovery) ->
      let full = failure_indexes (CE.run ~recovery (CE.make_plan steps) CE.exhaustive) in
      let g = failure_indexes (CE.run ~recovery (CE.make_plan steps) CE.guided) in
      Alcotest.(check (list int)) (id ^ ": guided covers the exhaustive set") full g)
    (Lazy.force xfail_cases)

let test_budget_caps_images () =
  List.iter
    (fun (id, steps, recovery) ->
      List.iter
        (fun budget ->
          List.iter
            (fun strat ->
              let o = CE.run ~recovery (CE.make_plan ~budget steps) strat in
              Alcotest.(check bool)
                (Printf.sprintf "%s: <= %d images (got %d)" id budget o.CE.result.CE.images_checked)
                true
                (o.CE.result.CE.images_checked <= budget);
              Alcotest.(check int)
                (id ^ ": skipped accounts for schedule cuts")
                (o.CE.scheduled - o.CE.explored + CE.strategy_dropped (strat (CE.make_plan ~budget steps)))
                o.CE.skipped)
            [ CE.guided; CE.sampled ])
        [ 1; 3; 8 ])
    (Lazy.force xfail_cases)

let test_strategy_metrics () =
  let _, steps, recovery = List.hd (Lazy.force xfail_cases) in
  let metrics = Obs.Metrics.create () in
  let o = CE.run ~metrics ~recovery (CE.make_plan ~budget:8 steps) CE.guided in
  let value name =
    List.fold_left
      (fun acc (s : Obs.Metrics.sample) ->
        match s.Obs.Metrics.value with
        | Obs.Metrics.V_counter v when s.Obs.Metrics.name = name -> acc + v
        | _ -> acc)
      0 (Obs.Metrics.snapshot metrics)
  in
  Alcotest.(check int) "images counter" o.CE.result.CE.images_checked (value "explore_images_total");
  Alcotest.(check int) "bugs counter" (List.length o.CE.result.CE.failures) (value "explore_bugs_found_total");
  Alcotest.(check int) "skipped counter" o.CE.skipped (value "explore_skipped_low_risk_total")

let test_guided_bisect_converges () =
  (* Risk-first search plus the fine window pass must land on the same
     minimal failing prefix as the trace-order scans. *)
  List.iter
    (fun (id, steps, recovery) ->
      let scan = FI.Crash_explore.minimal_failing_prefix ~recovery steps in
      let plain = CE.bisect ~recovery steps in
      let guided = CE.bisect ~strategy:CE.guided ~recovery steps in
      match (scan, plain, guided) with
      | Some a, Some b, Some c ->
          Alcotest.(check int) (id ^ ": bisect = scan") a.CE.index b.CE.index;
          Alcotest.(check int) (id ^ ": guided bisect = scan") a.CE.index c.CE.index
      | _ -> Alcotest.fail (id ^ ": all searches must fail the trace"))
    (Lazy.force xfail_cases)

(* QCheck soundness harness: on random small traces over four lines, any
   bounded strategy's verdicts are a subset of the exhaustive scan's,
   and unbounded guided reports exactly the exhaustive failure set. Ops:
   (0..2 = store to line with that op as value-salt, 3 = persist line,
   4 = flush line only, 5 = fence). *)
let gen_program = QCheck.(list_of_size Gen.(1 -- 24) (pair (int_bound 5) (int_range 0 3)))

let steps_of_program ops =
  FI.Replay.capture (fun e ->
      Engine.register_pmem e ~base:0 ~size:4096;
      List.iter
        (fun (op, line) ->
          let addr = line * 64 in
          match op with
          | 0 | 1 | 2 -> Engine.store_i64 e ~addr (Int64.of_int (op + 1))
          | 3 -> Engine.persist e ~addr ~size:8
          | 4 -> Engine.flush_range e ~addr ~size:8
          | _ -> Engine.sfence e)
        ops;
      Engine.program_end e)

(* ifset-style recovery: a non-zero guard on line 0 requires line 1 to
   be non-zero too — random programs violate it often. *)
let qc_recovery img = Pmem.Image.get_i64 img 0 = 0L || Pmem.Image.get_i64 img 64 <> 0L

let prop_strategies_sound =
  QCheck.Test.make ~name:"bounded guided/sampled verdicts are a subset of exhaustive" ~count:120 gen_program
    (fun ops ->
      let steps = steps_of_program ops in
      let full = failure_indexes (CE.run ~recovery:qc_recovery (CE.make_plan steps) CE.exhaustive) in
      List.for_all
        (fun strat ->
          List.for_all
            (fun budget ->
              let o = CE.run ~recovery:qc_recovery (CE.make_plan ~budget steps) strat in
              o.CE.result.CE.images_checked <= budget
              && List.for_all (fun i -> List.mem i full) (failure_indexes o))
            [ 2; 6; 16 ])
        [ CE.guided; CE.sampled ])

let prop_guided_complete =
  QCheck.Test.make ~name:"unbounded guided equals the exhaustive failure set" ~count:120 gen_program
    (fun ops ->
      let steps = steps_of_program ops in
      let full = failure_indexes (CE.run ~recovery:qc_recovery (CE.make_plan steps) CE.exhaustive) in
      failure_indexes (CE.run ~recovery:qc_recovery (CE.make_plan steps) CE.guided) = full)

(* ------------------------------------------------------------------ *)
(* Injector.                                                           *)
(* ------------------------------------------------------------------ *)

let kv_pair = List.assoc "kv_pair" FI.Sensitivity.clean_workloads

let test_injector_deterministic () =
  let steps = FI.Replay.capture kv_pair in
  let plan = FI.Injector.plan ~target:(FI.Injector.Random 0.5) ~seed:7 FI.Injector.Drop_clf in
  let t1, i1 = FI.Injector.apply plan steps in
  let t2, i2 = FI.Injector.apply plan steps in
  Alcotest.(check bool) "same mutated trace" true (t1 = t2);
  Alcotest.(check bool) "same injection log" true (i1 = i2);
  let other = FI.Injector.apply { plan with FI.Injector.seed = 8 } steps in
  ignore other

let test_injector_shapes () =
  let steps = FI.Replay.capture kv_pair in
  let count p arr = Array.to_list arr |> List.filter p |> List.length in
  let clfs = count FI.Replay.is_clf steps and fences = count FI.Replay.is_fence steps in
  let dropped, _ = FI.Injector.apply (FI.Injector.plan FI.Injector.Drop_clf) steps in
  Alcotest.(check int) "drop-clf removes one clf" (clfs - 1) (count FI.Replay.is_clf dropped);
  let dup, _ = FI.Injector.apply (FI.Injector.plan FI.Injector.Duplicate_flush) steps in
  Alcotest.(check int) "duplicate-flush adds one clf" (clfs + 1) (count FI.Replay.is_clf dup);
  let nofence, _ = FI.Injector.apply (FI.Injector.plan ~target:FI.Injector.Last FI.Injector.Drop_fence) steps in
  Alcotest.(check int) "drop-fence removes one fence" (fences - 1) (count FI.Replay.is_fence nofence);
  let torn, notes = FI.Injector.apply (FI.Injector.plan FI.Injector.Torn_store) steps in
  Alcotest.(check int) "torn store count unchanged" (count FI.Replay.is_store steps) (count FI.Replay.is_store torn);
  Alcotest.(check int) "one tear recorded" 1 (List.length notes)

(* ------------------------------------------------------------------ *)
(* Sensitivity matrix (the acceptance-criteria assertion).             *)
(* ------------------------------------------------------------------ *)

let test_sensitivity_matrix () =
  let rows = FI.Sensitivity.run_matrix () in
  Alcotest.(check bool) "at least 3 clean workloads" true (List.length rows >= 3);
  List.iter
    (fun (r : FI.Sensitivity.row) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s baseline clean" r.FI.Sensitivity.workload)
        []
        (List.map Bug.kind_name r.FI.Sensitivity.baseline_kinds);
      Alcotest.(check int)
        (Printf.sprintf "%s covers all four fault classes" r.FI.Sensitivity.workload)
        4
        (List.length r.FI.Sensitivity.cells);
      List.iter
        (fun (c : FI.Sensitivity.cell) ->
          let name = FI.Injector.fault_name c.FI.Sensitivity.fault in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s injected" r.FI.Sensitivity.workload name)
            true (c.FI.Sensitivity.injections > 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s detected by some rule" r.FI.Sensitivity.workload name)
            true
            (c.FI.Sensitivity.detected_by <> []))
        r.FI.Sensitivity.cells)
    rows;
  Alcotest.(check bool) "matrix_ok" true (FI.Sensitivity.matrix_ok rows)

let test_eviction_not_flagged () =
  (* Environmental faults must not create detector findings on clean
     programs. *)
  List.iter
    (fun (name, program) ->
      let row = FI.Sensitivity.run_row ~faults:[ FI.Injector.Evict_line ] (name, program) in
      match row.FI.Sensitivity.cells with
      | [ c ] ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s: eviction invisible to rules" name)
            []
            (List.map Bug.kind_name c.FI.Sensitivity.detected_by)
      | _ -> Alcotest.fail "one cell expected")
    FI.Sensitivity.clean_workloads

(* ------------------------------------------------------------------ *)
(* Predicate DSL.                                                      *)
(* ------------------------------------------------------------------ *)

let test_predicate_parse_eval () =
  let img = Pmem.Image.create () in
  Pmem.Image.set_i64 img 0 1L;
  Pmem.Image.set_i64 img 64 5L;
  (match FI.Predicate.parse "i64@0=1, nonzero@64, le@0<=64, ifset@0=>64" with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
      Alcotest.(check bool) "holds" true (FI.Predicate.eval p img);
      Pmem.Image.set_i64 img 64 0L;
      Alcotest.(check bool) "violated after zeroing data" false (FI.Predicate.eval p img));
  (match FI.Predicate.parse "bogus@1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match FI.Predicate.parse "" with Error _ -> () | Ok _ -> Alcotest.fail "empty must not parse"

let test_predicate_with_explorer () =
  let steps = FI.Replay.capture flag_before_data in
  let p = Result.get_ok (FI.Predicate.parse "ifset@0=>64") in
  (* ifset is weaker than the exact-magic predicate but catches the same
     window: flag durable while data line is still all-zero. *)
  match FI.Crash_explore.minimal_failing_prefix ~recovery:(FI.Predicate.recovery p) steps with
  | Some _ -> ()
  | None -> Alcotest.fail "DSL predicate should fail the bad ordering"

let suite =
  [
    Alcotest.test_case "capture payloads" `Quick test_capture_payloads;
    Alcotest.test_case "events projection hides evictions" `Quick test_events_projection;
    Alcotest.test_case "explorer finds cross-failure" `Quick test_explorer_finds_cross_failure;
    Alcotest.test_case "explorer passes clean program" `Quick test_explorer_clean_program;
    Alcotest.test_case "bisect agrees with full scan" `Quick test_bisect_agrees_with_scan;
    Alcotest.test_case "explorer finds all bugbench xfail cases" `Quick test_explorer_on_bugbench_xfail;
    Alcotest.test_case "exhaustive strategy reproduces explore" `Quick test_exhaustive_strategy_is_explore;
    Alcotest.test_case "guided unbounded matches exhaustive" `Quick test_guided_unbounded_matches_exhaustive;
    Alcotest.test_case "image budget is a hard cap" `Quick test_budget_caps_images;
    Alcotest.test_case "strategy metrics counters" `Quick test_strategy_metrics;
    Alcotest.test_case "guided bisect converges to minimal prefix" `Quick test_guided_bisect_converges;
    QCheck_alcotest.to_alcotest prop_strategies_sound;
    QCheck_alcotest.to_alcotest prop_guided_complete;
    Alcotest.test_case "eviction changes crash images" `Quick test_eviction_changes_crash_images;
    Alcotest.test_case "injector deterministic" `Quick test_injector_deterministic;
    Alcotest.test_case "injector shapes" `Quick test_injector_shapes;
    Alcotest.test_case "sensitivity matrix" `Quick test_sensitivity_matrix;
    Alcotest.test_case "eviction not flagged" `Quick test_eviction_not_flagged;
    Alcotest.test_case "predicate parse/eval" `Quick test_predicate_parse_eval;
    Alcotest.test_case "predicate drives explorer" `Quick test_predicate_with_explorer;
  ]
