(* PR 4: provenance + exporters.

   - every detector rule's finding carries a non-empty, strictly
     increasing causal chain on the bugbench dataset;
   - QCheck: chains reference events that exist in the trace (the seq
     stamp is the 1-based event index) and streamed/materialized
     replays produce identical provenance;
   - Perfetto export is golden-stable and structurally valid;
   - the metrics diff engine: self-diff empty, injected counter bump
     gates, duplicate series rejected;
   - provenance stamping stays inside the disabled-metrics overhead
     envelope (the PR 2 one-branch guard, extended to the seq path). *)

open Pmtrace
module P = Obs.Perfetto
module M = Obs.Metrics

let chain_strictly_increasing chain =
  let rec go = function
    | a :: (b :: _ as rest) -> a.Bug.c_seq < b.Bug.c_seq && go rest
    | _ -> true
  in
  go chain

(* ------------------------------------------------------------------ *)
(* Every rule's finding carries a causal chain on bugbench.            *)
(* ------------------------------------------------------------------ *)

let test_bugbench_chains () =
  let covered = Hashtbl.create 16 in
  List.iter
    (fun (case : Bugbench.Cases.t) ->
      let report = Bugbench.Eval.run_case Bugbench.Eval.PMDebugger case in
      List.iter
        (fun (b : Bug.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s chain strictly increasing" case.Bugbench.Cases.id
               (Bug.kind_name b.Bug.kind))
            true
            (chain_strictly_increasing b.Bug.chain);
          if b.Bug.chain <> [] then Hashtbl.replace covered b.Bug.kind ())
        report.Bug.bugs)
    Bugbench.Cases.buggy;
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "some bugbench case yields a non-empty %s chain" (Bug.kind_name kind))
        true (Hashtbl.mem covered kind))
    Bug.all_kinds

(* ------------------------------------------------------------------ *)
(* QCheck: chain validity + streamed/materialized parity.              *)
(* ------------------------------------------------------------------ *)

(* Bug-rich traces: stores/flushes/fences/log appends over two cache
   lines of a registered region, so overwrites, redundant flushes,
   flush-nothing, redundant logging and no-durability all fire. *)
let gen_trace =
  QCheck.Gen.(
    let op =
      let* tag = frequency [ (6, return 0); (4, return 1); (3, return 2); (1, return 3) ] in
      let* slot = int_range 0 15 in
      let* line = int_range 1 2 in
      return
        (match tag with
        | 0 -> Event.Store { addr = 64 + (slot * 8); size = 8; tid = 0 }
        | 1 -> Event.Clf { addr = 64 * line; size = 64; kind = Event.Clwb; tid = 0 }
        | 2 -> Event.Fence { tid = 0 }
        | _ -> Event.Tx_log { obj_addr = 64 + (slot * 8); size = 8; tid = 0 })
    in
    let* n = int_range 5 60 in
    let* ops = list_repeat n op in
    return
      (Array.of_list
         (Event.Register_pmem { base = 0; size = 4096 }
          :: Event.Register_var { name = "head"; addr = 64; size = 8 }
          :: (ops @ [ Event.Program_end ]))))

let run_detector trace =
  Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ()))

let bug_key (b : Bug.t) =
  ( Bug.kind_name b.Bug.kind,
    b.Bug.addr,
    b.Bug.seq,
    List.map (fun c -> (c.Bug.c_seq, c.Bug.c_class, c.Bug.c_addr, c.Bug.c_note)) b.Bug.chain )

let prop_chain_validity =
  QCheck.Test.make ~name:"chains reference real trace events, streamed = materialized" ~count:200
    (QCheck.make gen_trace) (fun trace ->
      let n = Array.length trace in
      let report = run_detector trace in
      List.for_all
        (fun (b : Bug.t) ->
          b.Bug.chain <> []
          && chain_strictly_increasing b.Bug.chain
          && List.for_all
               (fun c ->
                 c.Bug.c_seq >= 1 && c.Bug.c_seq <= n
                 && Event.class_name trace.(c.Bug.c_seq - 1) = c.Bug.c_class)
               b.Bug.chain)
        report.Bug.bugs
      &&
      let streamed =
        Recorder.replay_stream
          (fun emit -> Array.iter emit trace)
          (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ()))
      in
      List.map bug_key streamed.Bug.bugs = List.map bug_key report.Bug.bugs)

(* File-level parity: the same provenance after a save / stream-from-disk
   round trip (the `pmdb replay` path). *)
let test_file_stream_parity () =
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:4096;
        Engine.store_i64 e ~addr:128 1L;
        Engine.store_i64 e ~addr:128 2L;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.sfence e;
        Engine.store_i64 e ~addr:256 3L;
        Engine.program_end e)
  in
  let direct = run_detector trace in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Trace_io.save path trace;
  let sink = Pmdebugger.Detector.sink (Pmdebugger.Detector.create ()) in
  let streamed =
    Recorder.replay_stream
      (fun emit ->
        match Trace_io.iter_file path ~f:emit with Ok _ -> () | Error m -> Alcotest.fail m)
      sink
  in
  Sys.remove path;
  Alcotest.(check bool) "some finding with a chain" true
    (List.exists (fun (b : Bug.t) -> b.Bug.chain <> []) direct.Bug.bugs);
  Alcotest.(check bool) "identical provenance through the file" true
    (List.map bug_key streamed.Bug.bugs = List.map bug_key direct.Bug.bugs)

(* ------------------------------------------------------------------ *)
(* Perfetto export.                                                    *)
(* ------------------------------------------------------------------ *)

(* Golden: the builder's field order is part of the format (ui.perfetto
   loads it; the bench artifact diffs cleanly). Update deliberately. *)
let test_perfetto_golden () =
  let b = P.create () in
  P.process_name ~pid:1 b "engine";
  P.thread_name ~pid:1 ~tid:0 b "thread 0";
  P.complete ~cat:"dispatch" ~pid:1 ~tid:0 b ~name:"store" ~ts:1 ~dur:1;
  P.instant ~pid:1 b ~name:"durable" ~ts:2;
  P.counter ~pid:1 b ~name:"pending" ~ts:2 ~series:[ ("dirty", 1); ("flushed", 0) ];
  let expected =
    String.concat ""
      [
        {|{"traceEvents":[|};
        {|{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"engine"}},|};
        {|{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"thread 0"}},|};
        {|{"name":"store","cat":"dispatch","ph":"X","ts":1,"dur":1,"pid":1,"tid":0},|};
        {|{"name":"durable","ph":"i","ts":2,"s":"t","pid":1,"tid":0},|};
        {|{"name":"pending","ph":"C","ts":2,"pid":1,"tid":0,"args":{"dirty":1,"flushed":0}}|};
        {|]}|};
      ]
  in
  Alcotest.(check string) "golden trace-event JSON" expected
    (Obs.Json.to_string ~indent:false (P.to_json b));
  Alcotest.(check int) "event count" 5 P.(length b);
  match P.validate_json (P.to_json b) with
  | Ok n -> Alcotest.(check int) "validates" 5 n
  | Error m -> Alcotest.fail m

let test_perfetto_validate_rejects () =
  let bad what json =
    match P.validate_json json with
    | Ok _ -> Alcotest.fail (what ^ ": must be rejected")
    | Error msg ->
        Alcotest.(check bool) (what ^ ": error is located") true
          (String.length msg > 0 && String.sub msg 0 10 = "trace JSON")
  in
  bad "missing traceEvents" (Obs.Json.Obj []);
  bad "event without ph" (Obs.Json.Obj [ ("traceEvents", Obs.Json.List [ Obs.Json.Obj [ ("name", Obs.Json.Str "x") ] ]) ]);
  bad "complete without dur"
    (Obs.Json.Obj
       [
         ( "traceEvents",
           Obs.Json.List
             [
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str "x");
                   ("ph", Obs.Json.Str "X");
                   ("ts", Obs.Json.Int 1);
                   ("pid", Obs.Json.Int 0);
                   ("tid", Obs.Json.Int 0);
                 ];
             ] );
       ])

(* `pmdb timeline` output is valid Chrome trace-event JSON, with the
   persistency tracks the ISSUE describes. *)
let test_timeline_valid () =
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:4096;
        Engine.register_var e ~name:"head" ~addr:64 ~size:8;
        Engine.store_i64 e ~addr:64 1L;
        Engine.clwb e ~addr:64;
        Engine.sfence e;
        Engine.store_i64 e ~addr:128 2L;
        Engine.program_end e)
  in
  let b = Harness.Timeline.of_trace trace in
  let json = P.to_json b in
  (match P.validate_json json with
  | Ok n -> Alcotest.(check bool) (Printf.sprintf "valid with %d events" n) true (n > 0)
  | Error m -> Alcotest.fail m);
  let rendered = Obs.Json.to_string json in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has the named line track" true (contains rendered "head (0x40)");
  Alcotest.(check bool) "has a dirty slice" true (contains rendered "\"dirty\"");
  Alcotest.(check bool) "has the pending counter" true (contains rendered "pending lines")

let test_timeline_track_cap () =
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:65536;
        for i = 0 to 9 do
          Engine.store_i64 e ~addr:(i * 64) 1L
        done;
        Engine.program_end e)
  in
  let b = Harness.Timeline.of_trace ~max_tracks:4 trace in
  match P.validate_json (P.to_json b) with
  | Ok _ ->
      let rendered = Obs.Json.to_string (P.to_json b) in
      let contains sub =
        let s = rendered in
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "reports dropped lines" true (contains "6 lines beyond track cap")
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Metrics diff engine.                                                *)
(* ------------------------------------------------------------------ *)

let snapshot_via_json reg =
  match M.snapshot_of_json (M.to_json reg) with Ok s -> s | Error m -> Alcotest.fail m

let test_diff_self_empty () =
  let reg = M.create () in
  M.inc reg ~by:7 "space_tree_spills_total";
  M.set reg "space_array_live_peak" 42.0;
  M.observe reg "engine_dispatch_seconds" 1e-6;
  (* Through the JSON round trip, as `pmdb stats --diff` reads files. *)
  let snap = snapshot_via_json reg in
  let d = Obs.Diff.compute ~before:snap ~after:snap in
  Alcotest.(check bool) "self-diff empty" true (Obs.Diff.is_empty d);
  Alcotest.(check int) "no regressions" 0 (List.length (Obs.Diff.regressions d))

let test_diff_detects_bump () =
  let mk v =
    let reg = M.create () in
    M.inc reg ~by:v ~labels:[ ("class", "store") ] "engine_events_total";
    M.inc reg ~by:3 "space_reorganizations_total";
    M.set reg "space_array_live_peak" 42.0;
    snapshot_via_json reg
  in
  let before = mk 100 and after = mk 110 in
  let d = Obs.Diff.compute ~before ~after in
  Alcotest.(check int) "one change" 1 (List.length d);
  (match d with
  | [ c ] ->
      Alcotest.(check string) "changed series" "engine_events_total" c.Obs.Diff.d_name;
      Alcotest.(check bool) "is a change" true (c.Obs.Diff.d_kind = Obs.Diff.Changed)
  | _ -> Alcotest.fail "expected exactly one change");
  Alcotest.(check int) "bump gates at threshold 0" 1 (List.length (Obs.Diff.regressions d));
  Alcotest.(check int) "10% bump passes a 20% threshold" 0
    (List.length (Obs.Diff.regressions ~threshold:0.2 d));
  (* Shrinking counters and gauge moves never gate. *)
  let d' = Obs.Diff.compute ~before:after ~after:before in
  Alcotest.(check int) "shrink is not a regression" 0 (List.length (Obs.Diff.regressions d'))

let test_diff_added_removed () =
  let a = M.create () and b = M.create () in
  M.inc a ~by:1 "only_before_total";
  M.inc b ~by:1 "only_after_total";
  let d = Obs.Diff.compute ~before:(M.snapshot a) ~after:(M.snapshot b) in
  Alcotest.(check (list string)) "added+removed, canonical order"
    [ "only_after_total:added"; "only_before_total:removed" ]
    (List.map
       (fun c -> c.Obs.Diff.d_name ^ ":" ^ (match c.Obs.Diff.d_kind with
         | Obs.Diff.Added -> "added" | Obs.Diff.Removed -> "removed" | Obs.Diff.Changed -> "changed"))
       d);
  Alcotest.(check int) "appearing counter gates" 1 (List.length (Obs.Diff.regressions d))

(* Satellite: duplicate (name, labels) series must be rejected with a
   located error, like Trace_io's line-numbered ones. *)
let test_duplicate_series_rejected () =
  let reg = M.create () in
  M.inc reg ~by:2 ~labels:[ ("tool", "pmdebugger") ] "bugbench_detected_total";
  let dup =
    match M.to_json reg with
    | Obs.Json.Obj [ (s, schema); (m, Obs.Json.List [ entry ]) ] ->
        Obs.Json.Obj [ (s, schema); (m, Obs.Json.List [ entry; entry ]) ]
    | _ -> Alcotest.fail "unexpected snapshot shape"
  in
  (match M.validate_json dup with
  | Ok _ -> Alcotest.fail "duplicate series must be rejected"
  | Error msg ->
      Alcotest.(check string) "located, named error"
        "metrics JSON: series 1: duplicate series \"bugbench_detected_total\"{tool=pmdebugger}" msg);
  match M.snapshot_of_json dup with
  | Ok _ -> Alcotest.fail "snapshot_of_json must also reject duplicates"
  | Error _ -> ()

let test_same_name_different_labels_ok () =
  let reg = M.create () in
  M.inc reg ~labels:[ ("tool", "pmdebugger") ] "bugbench_detected_total";
  M.inc reg ~labels:[ ("tool", "pmtest") ] "bugbench_detected_total";
  match M.validate_json (M.to_json reg) with
  | Ok n -> Alcotest.(check int) "two series accepted" 2 n
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Overhead guard: the seq-stamp path with metrics disabled.           *)
(* ------------------------------------------------------------------ *)

(* PR 2's one-branch guard, extended to provenance: a full PMDebugger
   replay with the shared disabled registry — which exercises seq
   stamping on every store/CLF/fence — must be stable run-to-run (no
   accidental always-on work grew onto the hot path). Same lenient 3x
   bound as the Nulgrind guard; catching 10-100x blowups is the point. *)
let test_seq_stamp_overhead_guard () =
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:65536;
        for i = 0 to 4999 do
          Engine.store_i64 e ~addr:(i * 8 mod 4096) 7L;
          if i mod 8 = 7 then Engine.persist e ~addr:(i * 8 mod 4096) ~size:8
        done;
        Engine.program_end e)
  in
  let replay () =
    let d = Pmdebugger.Detector.create ~metrics:M.disabled () in
    ignore (Sys.opaque_identity (Recorder.replay trace (Pmdebugger.Detector.sink d)))
  in
  replay ();
  let t = Harness.Timing.median_of ~repeats:5 replay in
  Alcotest.(check bool) "baseline measurable" true (t >= 0.0);
  let t2 = Harness.Timing.median_of ~repeats:5 replay in
  Alcotest.(check bool)
    (Printf.sprintf "seq-stamping dispatch stable (%.4fs vs %.4fs)" t t2)
    true
    (t2 < 0.005 || t2 < 3.0 *. (t +. 0.001))

let suite =
  [
    Alcotest.test_case "bugbench-chains-all-rules" `Quick test_bugbench_chains;
    QCheck_alcotest.to_alcotest prop_chain_validity;
    Alcotest.test_case "file-stream-parity" `Quick test_file_stream_parity;
    Alcotest.test_case "perfetto-golden" `Quick test_perfetto_golden;
    Alcotest.test_case "perfetto-validate-rejects" `Quick test_perfetto_validate_rejects;
    Alcotest.test_case "timeline-valid" `Quick test_timeline_valid;
    Alcotest.test_case "timeline-track-cap" `Quick test_timeline_track_cap;
    Alcotest.test_case "diff-self-empty" `Quick test_diff_self_empty;
    Alcotest.test_case "diff-detects-bump" `Quick test_diff_detects_bump;
    Alcotest.test_case "diff-added-removed" `Quick test_diff_added_removed;
    Alcotest.test_case "duplicate-series-rejected" `Quick test_duplicate_series_rejected;
    Alcotest.test_case "same-name-different-labels-ok" `Quick test_same_name_different_labels_ok;
    Alcotest.test_case "seq-stamp-overhead-guard" `Quick test_seq_stamp_overhead_guard;
  ]
