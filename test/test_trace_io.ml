open Pmtrace

let sample_trace () =
  Recorder.record (fun e ->
      Engine.register_pmem e ~base:0 ~size:4096;
      Engine.register_var e ~name:"head ptr" ~addr:0 ~size:8;
      Engine.call_marker e ~func:"main";
      Engine.epoch_begin e;
      Engine.store_i64 e ~addr:128 1L;
      Engine.tx_log e ~obj_addr:128 ~size:8;
      Engine.clflushopt e ~addr:128;
      Engine.sfence e;
      Engine.epoch_end e;
      Engine.strand_begin e ~strand:2;
      Engine.store_i64 e ~addr:256 2L;
      Engine.persist e ~addr:256 ~size:8;
      Engine.strand_end e ~strand:2;
      Engine.join_strand e;
      Engine.annotate e (Event.Assert_durable { addr = 128; size = 8 });
      Engine.annotate e (Event.Assert_ordered { first_addr = 128; first_size = 8; then_addr = 256; then_size = 8 });
      Engine.annotate e (Event.Assert_fresh { addr = 512; size = 8 });
      Engine.program_end e)

let test_roundtrip () =
  let trace = sample_trace () in
  match Trace_io.of_string (Trace_io.to_string trace) with
  | Error msg -> Alcotest.fail msg
  | Ok decoded ->
      Alcotest.(check int) "same length" (Array.length trace) (Array.length decoded);
      Array.iteri
        (fun i ev ->
          Alcotest.(check string)
            (Printf.sprintf "event %d" i)
            (Trace_io.event_to_line ev)
            (Trace_io.event_to_line decoded.(i)))
        trace

let test_comments_and_blanks () =
  match Trace_io.of_string "# a comment\n\nstore 0 128 8\n  \nfence 0\n" with
  | Ok trace -> Alcotest.(check int) "two events" 2 (Array.length trace)
  | Error msg -> Alcotest.fail msg

let test_malformed () =
  (match Trace_io.of_string "store 0 oops 8\n" with
  | Error msg -> Alcotest.(check bool) "line number in error" true (String.length msg > 0 && String.sub msg 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Trace_io.of_string "bogus_event 1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_file_roundtrip () =
  let trace = sample_trace () in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Trace_io.save path trace;
  (match Trace_io.load path with
  | Ok decoded -> Alcotest.(check int) "file roundtrip" (Array.length trace) (Array.length decoded)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_replay_of_decoded_trace () =
  (* A decoded trace must drive a detector identically to the original. *)
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:4096;
        Engine.store_i64 e ~addr:128 1L;
        Engine.clwb e ~addr:128;
        Engine.clwb e ~addr:128;
        Engine.sfence e;
        Engine.store_i64 e ~addr:512 1L;
        Engine.program_end e)
  in
  let decoded = match Trace_io.of_string (Trace_io.to_string trace) with Ok t -> t | Error m -> Alcotest.fail m in
  let report trace = Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) in
  let summary r = List.map (fun (b : Bug.t) -> (Bug.kind_name b.Bug.kind, b.Bug.addr)) r.Bug.bugs in
  Alcotest.(check (list (pair string int))) "identical findings" (summary (report trace)) (summary (report decoded))

(* Exhaustive over the Event type: every one of the 14 constructors,
   every clf kind and every annotation shape. Names are drawn from
   identifier-like strings (the line format is space-separated). *)
let prop_event_roundtrip =
  let event_gen =
    QCheck.Gen.(
      let* tag = int_range 0 13 in
      let* addr = int_range 0 100_000 in
      let* size = int_range 1 256 in
      let* tid = int_range 0 7 in
      let* strand = int_range 0 15 in
      let* kind = oneofl [ Event.Clwb; Event.Clflush; Event.Clflushopt ] in
      (* Multi-word names exercise the String.concat joins in the parser
         (the line format is space-separated, name comes last). *)
      let* name = oneofl [ "main"; "item_set_cas"; "do_slabs_free"; "x"; "head_ptr_1"; "head ptr"; "do slabs free" ] in
      let* ann =
        oneofl
          [
            Event.Assert_durable { addr; size };
            Event.Assert_ordered { first_addr = addr; first_size = size; then_addr = addr + size; then_size = size };
            Event.Assert_fresh { addr; size };
          ]
      in
      return
        (match tag with
        | 0 -> Event.Store { addr; size; tid }
        | 1 -> Event.Clf { addr; size; kind; tid }
        | 2 -> Event.Fence { tid }
        | 3 -> Event.Register_pmem { base = addr; size }
        | 4 -> Event.Epoch_begin { tid }
        | 5 -> Event.Epoch_end { tid }
        | 6 -> Event.Strand_begin { tid; strand }
        | 7 -> Event.Strand_end { tid; strand }
        | 8 -> Event.Join_strand { tid }
        | 9 -> Event.Tx_log { obj_addr = addr; size; tid }
        | 10 -> Event.Register_var { name; addr; size }
        | 11 -> Event.Call { func = name; tid }
        | 12 -> Event.Annotation ann
        | _ -> Event.Program_end))
  in
  QCheck.Test.make ~name:"event line roundtrip (all constructors)" ~count:1000 (QCheck.make event_gen) (fun ev ->
      match Trace_io.event_of_line (Trace_io.event_to_line ev) with
      | Ok (Some ev') -> Trace_io.event_to_line ev = Trace_io.event_to_line ev'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Lenient parsing.                                                    *)
(* ------------------------------------------------------------------ *)

let test_lenient_skips_malformed () =
  let text = "store 0 128 8\nnot an event\nfence 0\nstore 0 oops 8\nprogram_end\n" in
  let l = Trace_io.of_string_lenient text in
  Alcotest.(check int) "parsed events" 3 (Array.length l.Trace_io.trace);
  Alcotest.(check (list int)) "skipped line numbers" [ 2; 4 ] (List.map fst l.Trace_io.skipped);
  Alcotest.(check bool) "no synthesized end (explicit program_end)" false l.Trace_io.synthesized_end

let test_lenient_synthesizes_end () =
  let l = Trace_io.of_string_lenient "store 0 128 8\nfence 0\n" in
  Alcotest.(check bool) "synthesized" true l.Trace_io.synthesized_end;
  Alcotest.(check int) "end appended" 3 (Array.length l.Trace_io.trace);
  Alcotest.(check bool) "last is program_end" true (l.Trace_io.trace.(2) = Event.Program_end)

let test_lenient_strict_agree_on_clean_input () =
  let text = Trace_io.to_string (sample_trace ()) in
  match Trace_io.of_string text with
  | Error _ -> Alcotest.fail "strict parser must accept clean input"
  | Ok strict ->
      let l = Trace_io.of_string_lenient text in
      Alcotest.(check bool) "same trace" true (strict = l.Trace_io.trace);
      Alcotest.(check int) "nothing skipped" 0 (List.length l.Trace_io.skipped)

let test_lenient_load_truncated_file () =
  let trace = sample_trace () in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Trace_io.save path trace;
  let text = In_channel.with_open_bin path In_channel.input_all in
  (* Chop mid-line to model a crash while the tracer was writing. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (String.sub text 0 (String.length text - 7)));
  (match Trace_io.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict load must reject a truncated trace");
  (match Trace_io.load_lenient path with
  | Error msg -> Alcotest.fail msg
  | Ok l ->
      Alcotest.(check bool) "synthesized end" true l.Trace_io.synthesized_end;
      Alcotest.(check bool) "most events recovered" true (Array.length l.Trace_io.trace >= Array.length trace - 2));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Streaming.                                                          *)
(* ------------------------------------------------------------------ *)

let with_trace_file text f =
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let dirty_text = "store 0 128 8\nnot an event\nclf clwb 0 128 8\nstore 0 oops 8\nfence 0\n"

let test_stream_matches_lenient_load () =
  (* One dirty file through both paths: the streamed fold must see the
     same events, the same skipped line positions and the same
     synthesized end as the materializing loader. *)
  with_trace_file dirty_text @@ fun path ->
  let l = match Trace_io.load_lenient path with Ok l -> l | Error m -> Alcotest.fail m in
  let streamed = ref [] in
  let stats =
    match Trace_io.iter_file path ~f:(fun ev -> streamed := ev :: !streamed) with
    | Ok stats -> stats
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "same events" true (Array.of_list (List.rev !streamed) = l.Trace_io.trace);
  Alcotest.(check int) "stats.events counts emitted events" (Array.length l.Trace_io.trace) stats.Trace_io.events;
  Alcotest.(check (list int))
    "same skipped lines" (List.map fst l.Trace_io.skipped)
    (List.map fst stats.Trace_io.skipped_lines);
  Alcotest.(check bool) "same synthesized flag" l.Trace_io.synthesized_end stats.Trace_io.synthesized

let test_stream_on_skip_callback () =
  with_trace_file dirty_text @@ fun path ->
  let seen = ref [] in
  (match Trace_io.iter_file ~on_skip:(fun lineno msg -> seen := (lineno, msg) :: !seen) path ~f:ignore with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check (list int)) "on_skip fired per bad line" [ 2; 4 ] (List.rev_map fst !seen)

let test_strict_stream_error_position () =
  (* The streamed strict parser must report the same per-line error
     position as the in-memory one. *)
  let text = "store 0 128 8\nfence 0\nstore 0 oops 8\n" in
  let in_memory = match Trace_io.of_string text with Error m -> m | Ok _ -> Alcotest.fail "expected error" in
  with_trace_file text @@ fun path ->
  match Trace_io.iter_file_strict path ~f:ignore with
  | Error m -> Alcotest.(check string) "same error" in_memory m
  | Ok () -> Alcotest.fail "expected error"

let test_fold_file_accumulates () =
  with_trace_file "store 0 128 8\nclf clwb 0 128 8\nfence 0\nprogram_end\n" @@ fun path ->
  match Trace_io.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) with
  | Ok (n, stats) ->
      Alcotest.(check int) "fold counts events" 4 n;
      Alcotest.(check bool) "no synthesis needed" false stats.Trace_io.synthesized
  | Error m -> Alcotest.fail m

let test_save_stream_counts_and_roundtrips () =
  let trace = sample_trace () in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let n = Trace_io.save_stream path (fun emit -> Array.iter emit trace) in
  Alcotest.(check int) "emit count returned" (Array.length trace) n;
  match Trace_io.load path with
  | Ok decoded -> Alcotest.(check bool) "roundtrip" true (decoded = trace)
  | Error m -> Alcotest.fail m

let test_save_is_byte_identical_to_to_string () =
  (* save must write in binary mode: the on-disk bytes are exactly
     to_string's, with no platform newline translation (open_out on
     Windows would emit \r\n and desync every reader, which all use
     open_in_bin). On Unix both modes agree, so this pins the contract
     rather than reproducing the Windows corruption. *)
  let trace = sample_trace () in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace_io.save path trace;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "byte-identical" (Trace_io.to_string trace) bytes

let test_replay_stream_matches_replay () =
  let trace =
    Recorder.record (fun e ->
        Engine.register_pmem e ~base:0 ~size:4096;
        Engine.store_i64 e ~addr:128 1L;
        Engine.store_i64 e ~addr:128 2L;
        Engine.clwb e ~addr:128;
        Engine.sfence e;
        Engine.store_i64 e ~addr:512 3L;
        Engine.program_end e)
  in
  let mk () = Pmdebugger.Detector.sink (Pmdebugger.Detector.create ()) in
  let summary (r : Bug.report) =
    (r.Bug.events_processed, List.map (fun (b : Bug.t) -> (Bug.kind_name b.Bug.kind, b.Bug.addr)) r.Bug.bugs)
  in
  let direct = Recorder.replay trace (mk ()) in
  let path = Filename.temp_file "pmdebugger" ".pmt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace_io.save path trace;
  let streamed =
    Recorder.replay_stream
      (fun emit ->
        match Trace_io.iter_file path ~f:emit with Ok _ -> () | Error m -> Alcotest.fail m)
      (mk ())
  in
  Alcotest.(check (pair int (list (pair string int))))
    "streamed file replay = in-memory replay" (summary direct) (summary streamed)

let test_iter_file_missing_file () =
  match Trace_io.iter_file "/nonexistent/pmdb-no-such-trace.pmt" ~f:ignore with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file"

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "decoded trace replays identically" `Quick test_replay_of_decoded_trace;
    Alcotest.test_case "lenient skips malformed lines" `Quick test_lenient_skips_malformed;
    Alcotest.test_case "lenient synthesizes program_end" `Quick test_lenient_synthesizes_end;
    Alcotest.test_case "lenient agrees with strict on clean input" `Quick test_lenient_strict_agree_on_clean_input;
    Alcotest.test_case "lenient load of truncated file" `Quick test_lenient_load_truncated_file;
    Alcotest.test_case "streamed fold matches lenient load" `Quick test_stream_matches_lenient_load;
    Alcotest.test_case "on_skip callback positions" `Quick test_stream_on_skip_callback;
    Alcotest.test_case "strict stream error position" `Quick test_strict_stream_error_position;
    Alcotest.test_case "fold_file accumulates" `Quick test_fold_file_accumulates;
    Alcotest.test_case "save_stream counts and roundtrips" `Quick test_save_stream_counts_and_roundtrips;
    Alcotest.test_case "save writes to_string bytes exactly" `Quick test_save_is_byte_identical_to_to_string;
    Alcotest.test_case "streamed file replay = in-memory replay" `Quick test_replay_stream_matches_replay;
    Alcotest.test_case "iter_file on missing file errors" `Quick test_iter_file_missing_file;
    QCheck_alcotest.to_alcotest prop_event_roundtrip;
  ]
