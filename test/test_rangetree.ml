open Pmem

let test_insert_find () =
  let t = Rangetree.create () in
  Rangetree.insert t ~lo:10 ~hi:20 "a";
  Rangetree.insert t ~lo:30 ~hi:40 "b";
  Rangetree.insert t ~lo:5 ~hi:8 "c";
  Alcotest.(check int) "size" 3 (Rangetree.size t);
  (match Rangetree.find_first_overlap t ~lo:15 ~hi:16 with
  | Some (_, v) -> Alcotest.(check string) "find a" "a" v
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "no overlap in gap" true (Rangetree.find_first_overlap t ~lo:20 ~hi:30 = None);
  Rangetree.check_invariants t

let test_empty_range_ignored () =
  let t = Rangetree.create () in
  Rangetree.insert t ~lo:5 ~hi:5 "x";
  Alcotest.(check int) "empty insert ignored" 0 (Rangetree.size t)

let test_overlapping_query () =
  let t = Rangetree.create () in
  for i = 0 to 9 do
    Rangetree.insert t ~lo:(i * 10) ~hi:((i * 10) + 5) i
  done;
  let hits = Rangetree.overlapping t ~lo:12 ~hi:33 in
  Alcotest.(check (list int)) "hits in order" [ 1; 2; 3 ] (List.map snd hits);
  Rangetree.check_invariants t

let test_remove_exact_and_first () =
  let t = Rangetree.create () in
  let p1 = ref 1 and p2 = ref 2 in
  Rangetree.insert t ~lo:0 ~hi:10 p1;
  Rangetree.insert t ~lo:0 ~hi:10 p2;
  Alcotest.(check bool) "remove_first by identity" true (Rangetree.remove_first t ~lo:0 ~hi:10 (fun x -> x == p2));
  Alcotest.(check int) "one left" 1 (Rangetree.size t);
  (match Rangetree.find_first_overlap t ~lo:0 ~hi:10 with
  | Some (_, v) -> Alcotest.(check int) "survivor is p1" 1 !v
  | None -> Alcotest.fail "expected survivor");
  Alcotest.(check bool) "remove_exact" true (Rangetree.remove_exact t ~lo:0 ~hi:10);
  Alcotest.(check bool) "now empty" true (Rangetree.is_empty t);
  Rangetree.check_invariants t

let test_filter_in_place () =
  let t = Rangetree.create () in
  for i = 0 to 99 do
    Rangetree.insert t ~lo:(i * 4) ~hi:((i * 4) + 2) i
  done;
  let removed = Rangetree.filter_in_place t (fun _ v -> v land 1 = 0) in
  Alcotest.(check int) "removed odds" 50 removed;
  Rangetree.iter t (fun _ v -> Alcotest.(check bool) "only evens" true (v land 1 = 0));
  Rangetree.check_invariants t

let test_reorganize_merges () =
  let t = Rangetree.create () in
  Rangetree.insert t ~lo:0 ~hi:8 true;
  Rangetree.insert t ~lo:8 ~hi:16 true;
  Rangetree.insert t ~lo:16 ~hi:24 false;
  Rangetree.reorganize t ~eq:( = ) ~merge:(fun a _ -> a);
  Alcotest.(check int) "adjacent equal merged" 2 (Rangetree.size t);
  Alcotest.(check int) "merge counted" 1 (Rangetree.stats t).Rangetree.merges;
  Rangetree.check_invariants t

let test_height_logarithmic () =
  let t = Rangetree.create () in
  for i = 0 to 1023 do
    Rangetree.insert t ~lo:i ~hi:(i + 1) ()
  done;
  Rangetree.check_invariants t;
  Alcotest.(check bool) "height <= 1.44 log2 n" true (Rangetree.height t <= 15)

(* Differential property against a list model: inserts, splits via
   map_overlapping, filtering and merging all preserve the same
   multiset of ranges. *)
let ops_gen =
  QCheck.Gen.(list_size (int_range 10 60) (pair (int_range 0 4) (pair (int_range 0 150) (int_range 1 50))))

let arbitrary_ops = QCheck.make ops_gen

let prop_differential =
  QCheck.Test.make ~name:"differential vs list model" ~count:300 arbitrary_ops (fun ops ->
      let t = Rangetree.create () in
      let model = ref [] in
      let next = ref 0 in
      List.iter
        (fun (op, (lo, len)) ->
          let hi = lo + len in
          match op with
          | 0 | 1 ->
              incr next;
              let p = ref !next in
              Rangetree.insert t ~lo ~hi p;
              model := (lo, hi, p) :: !model
          | 2 ->
              let flush = Addr.range ~lo ~hi in
              ignore
                (Rangetree.map_overlapping t ~lo ~hi ~f:(fun r p ->
                     match Addr.inter r flush with
                     | None -> [ (r, p) ]
                     | Some c -> List.map (fun piece -> (piece, p)) (c :: Addr.diff r c)));
              model :=
                List.concat_map
                  (fun (l, h, p) ->
                    let r = Addr.range ~lo:l ~hi:h in
                    match Addr.inter r flush with
                    | None -> [ (l, h, p) ]
                    | Some c ->
                        List.map
                          (fun (piece : Addr.range) -> (piece.Addr.lo, piece.Addr.hi, p))
                          (c :: Addr.diff r c))
                  !model
          | 3 ->
              ignore (Rangetree.filter_in_place t (fun _ p -> !p land 1 = 1));
              model := List.filter (fun (_, _, p) -> !p land 1 = 1) !model
          | _ ->
              (match !model with
              | (l, h, p) :: _ -> ignore (Rangetree.remove_first t ~lo:l ~hi:h (fun x -> x == p))
              | [] -> ());
              model := (match !model with _ :: rest -> rest | [] -> []))
        ops;
      Rangetree.check_invariants t;
      let norm l = List.sort compare l in
      let tree_list =
        List.map (fun ((r : Addr.range), p) -> (r.Addr.lo, r.Addr.hi, !p)) (Rangetree.to_list t)
      in
      norm tree_list = norm (List.map (fun (l, h, p) -> (l, h, !p)) !model))

let prop_invariants_random =
  QCheck.Test.make ~name:"AVL invariants after random inserts/deletes" ~count:200
    QCheck.(small_list (pair (int_range 0 100) (int_range 1 20)))
    (fun pairs ->
      let t = Rangetree.create () in
      List.iter (fun (lo, len) -> Rangetree.insert t ~lo ~hi:(lo + len) (lo * len)) pairs;
      List.iteri (fun i (lo, len) -> if i land 1 = 0 then ignore (Rangetree.remove_exact t ~lo ~hi:(lo + len))) pairs;
      Rangetree.check_invariants t;
      true)

let test_bounds () =
  let t = Rangetree.create () in
  Alcotest.(check (option (pair int int))) "empty tree has no bounds" None (Rangetree.bounds t);
  Rangetree.insert t ~lo:100 ~hi:120 0;
  Alcotest.(check (option (pair int int))) "single interval" (Some (100, 120)) (Rangetree.bounds t);
  Rangetree.insert t ~lo:40 ~hi:48 1;
  Rangetree.insert t ~lo:300 ~hi:364 2;
  Alcotest.(check (option (pair int int))) "spans all intervals" (Some (40, 364)) (Rangetree.bounds t);
  ignore (Rangetree.remove_exact t ~lo:300 ~hi:364);
  (match Rangetree.bounds t with
  | Some (lo, hi) ->
      (* The hi bound comes from the root's max_hi augmentation, so it is
         conservative: it may overshoot after a removal but must still
         cover every live interval. *)
      Alcotest.(check int) "lo exact after removal" 40 lo;
      Alcotest.(check bool) "hi covers live intervals" true (hi >= 120)
  | None -> Alcotest.fail "bounds must exist while intervals remain");
  ignore (Rangetree.remove_exact t ~lo:40 ~hi:48);
  ignore (Rangetree.remove_exact t ~lo:100 ~hi:120);
  Alcotest.(check (option (pair int int))) "empty again" None (Rangetree.bounds t)

let prop_bounds_cover =
  QCheck.Test.make ~name:"bounds cover every live interval" ~count:300
    QCheck.(small_list (pair (int_range 0 500) (int_range 1 40)))
    (fun pairs ->
      let t = Rangetree.create () in
      List.iter (fun (lo, len) -> Rangetree.insert t ~lo ~hi:(lo + len) 0) pairs;
      List.iteri (fun i (lo, len) -> if i land 1 = 0 then ignore (Rangetree.remove_exact t ~lo ~hi:(lo + len))) pairs;
      match Rangetree.bounds t with
      | None -> Rangetree.to_list t = []
      | Some (lo, hi) ->
          List.for_all (fun ((r : Addr.range), _) -> r.Addr.lo >= lo && r.Addr.hi <= hi) (Rangetree.to_list t))

let suite =
  [
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "empty range ignored" `Quick test_empty_range_ignored;
    Alcotest.test_case "overlapping query" `Quick test_overlapping_query;
    Alcotest.test_case "remove exact/first" `Quick test_remove_exact_and_first;
    Alcotest.test_case "filter in place" `Quick test_filter_in_place;
    Alcotest.test_case "reorganize merges adjacents" `Quick test_reorganize_merges;
    Alcotest.test_case "height stays logarithmic" `Quick test_height_logarithmic;
    Alcotest.test_case "bounds" `Quick test_bounds;
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_invariants_random;
    QCheck_alcotest.to_alcotest prop_bounds_cover;
  ]
