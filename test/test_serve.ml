(* The serving daemon: Spsc close/poison semantics, Engine.finish_all
   fault containment, the shared exit-code table, the wire protocol
   (parse + QCheck round-trip), the socket-free session state machine,
   the inline worker pool, the 8-client fault-tolerance gate over a
   real Unix-domain socket, and a protocol fuzz through Client.raw. *)

open Pmtrace
module D = Pmdebugger.Detector

let canon (r : Bug.report) =
  Bug.render_canonical { r with Bug.bugs = List.sort Bug.compare_canonical r.Bug.bugs }

(* ---------------------------------------------------------------- *)
(* Spsc close / poison                                               *)
(* ---------------------------------------------------------------- *)

let test_spsc_close_poisons_producer () =
  let q = Spsc.create ~capacity:2 in
  Spsc.push q 1;
  Spsc.push q 2;
  Alcotest.(check bool) "try_push full" false (Spsc.try_push q 3);
  Spsc.close q;
  Alcotest.(check bool) "is_closed" true (Spsc.is_closed q);
  Spsc.close q (* idempotent *);
  Alcotest.(check bool) "push raises Closed" true
    (match Spsc.push q 3 with exception Spsc.Closed -> true | () -> false);
  Alcotest.(check bool) "try_push raises Closed" true
    (match Spsc.try_push q 3 with exception Spsc.Closed -> true | _ -> false)

let test_spsc_pop_drains_then_closed () =
  let q = Spsc.create ~capacity:4 in
  Spsc.push q 10;
  Spsc.push q 11;
  Spsc.close q;
  Alcotest.(check int) "drain 1" 10 (Spsc.pop q);
  Alcotest.(check int) "drain 2" 11 (Spsc.pop q);
  Alcotest.(check bool) "try_pop on drained closed queue is None" true (Spsc.try_pop q = None);
  Alcotest.(check bool) "pop raises Closed once drained" true
    (match Spsc.pop q with exception Spsc.Closed -> true | _ -> false)

(* A producer blocked on a full queue must be woken by close — a dead
   consumer can never wedge the daemon's dispatch domain. *)
let test_spsc_close_wakes_blocked_producer () =
  let q = Spsc.create ~capacity:2 in
  let producer =
    Domain.spawn (fun () ->
        match
          for i = 0 to 4 do
            Spsc.push q i
          done
        with
        | () -> false
        | exception Spsc.Closed -> true)
  in
  (* Let the producer fill the queue and block on the third push. *)
  Unix.sleepf 0.05;
  Spsc.close q;
  Alcotest.(check bool) "blocked producer observed Closed" true (Domain.join producer);
  Alcotest.(check int) "published elements survive" 0 (Spsc.pop q);
  Alcotest.(check int) "published elements survive" 1 (Spsc.pop q)

let test_spsc_close_wakes_blocked_consumer () =
  let q : int Spsc.t = Spsc.create ~capacity:2 in
  let consumer =
    Domain.spawn (fun () -> match Spsc.pop q with exception Spsc.Closed -> true | _ -> false)
  in
  Unix.sleepf 0.05;
  Spsc.close q;
  Alcotest.(check bool) "blocked consumer observed Closed" true (Domain.join consumer)

(* ---------------------------------------------------------------- *)
(* Engine.finish_all survives a raising finish                       *)
(* ---------------------------------------------------------------- *)

let test_finish_all_survives_raising_finish () =
  let metrics = Obs.Metrics.create () in
  let e = Engine.create ~metrics () in
  let ok name = Sink.make ~name ~on_event:(fun _ -> ()) ~finish:(fun () -> Bug.empty_report name) in
  let bad = Sink.make ~name:"bad" ~on_event:(fun _ -> ()) ~finish:(fun () -> failwith "boom at finish") in
  Engine.attach e (ok "left");
  Engine.attach e bad;
  Engine.attach e (ok "right");
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.program_end e;
  let reports = Engine.finish_all e in
  Alcotest.(check int) "one report per sink" 3 (List.length reports);
  Alcotest.(check (list string)) "attach order preserved" [ "left"; "bad"; "right" ]
    (List.map (fun r -> r.Bug.detector) reports);
  let mid = List.nth reports 1 in
  Alcotest.(check bool) "raising finish recorded as failure" true
    (match mid.Bug.failure with Some msg -> String.length msg > 0 | None -> false);
  Alcotest.(check bool) "siblings unharmed" true
    ((List.nth reports 0).Bug.failure = None && (List.nth reports 2).Bug.failure = None);
  Alcotest.(check int) "exactly one quarantine" 1 (List.length (Engine.quarantined e));
  let snap = Obs.Metrics.snapshot metrics in
  Alcotest.(check int) "quarantine counter" 1
    (Obs.Metrics.counter_value snap ~labels:[ ("sink", "bad") ] "engine_sinks_quarantined_total")

(* ---------------------------------------------------------------- *)
(* Status: the shared exit-code table                                 *)
(* ---------------------------------------------------------------- *)

let test_status_exit_codes () =
  let module S = Serve.Status in
  List.iter
    (fun (st, code) -> Alcotest.(check int) (S.name st) code (S.exit_code st))
    [
      (S.Ok, 0);
      (S.Trace_error, 2);
      (S.Protocol_error, 2);
      (S.Detector_error, 3);
      (S.Evicted, 4);
      (S.Timeout, 5);
      (S.Shutdown, 6);
    ];
  List.iter
    (fun st ->
      Alcotest.(check bool) ("of_name round-trip " ^ S.name st) true (S.of_name (S.name st) = Some st))
    S.all;
  Alcotest.(check bool) "unknown name" true (S.of_name "nope" = None)

(* ---------------------------------------------------------------- *)
(* Wire protocol                                                     *)
(* ---------------------------------------------------------------- *)

let test_wire_parse_hello () =
  let module W = Serve.Wire in
  (match W.parse_hello "pmdb-serve/1 session tx.log-01" with
  | Ok (W.Session { name; lenient }) ->
      Alcotest.(check string) "name" "tx.log-01" name;
      Alcotest.(check bool) "strict by default" false lenient
  | _ -> Alcotest.fail "session hello rejected");
  (match W.parse_hello "pmdb-serve/1 session s lenient" with
  | Ok (W.Session { lenient; _ }) -> Alcotest.(check bool) "lenient flag" true lenient
  | _ -> Alcotest.fail "lenient hello rejected");
  Alcotest.(check bool) "stats verb" true (W.parse_hello "pmdb-serve/1 stats" = Ok W.Stats);
  Alcotest.(check bool) "stats_stream verb" true
    (W.parse_hello "pmdb-serve/1 stats_stream" = Ok (W.Stats_stream { frames = 0 }));
  Alcotest.(check bool) "bounded stats_stream" true
    (W.parse_hello "pmdb-serve/1 stats_stream 5" = Ok (W.Stats_stream { frames = 5 }));
  Alcotest.(check bool) "stop verb" true (W.parse_hello "pmdb-serve/1 stop" = Ok W.Stop);
  let rejected s = match W.parse_hello s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "zero-frame stats_stream" true (rejected "pmdb-serve/1 stats_stream 0");
  Alcotest.(check bool) "negative stats_stream" true (rejected "pmdb-serve/1 stats_stream -3");
  Alcotest.(check bool) "non-numeric stats_stream" true (rejected "pmdb-serve/1 stats_stream many");
  Alcotest.(check bool) "bad magic" true (rejected "pmdb-serve/2 session s");
  Alcotest.(check bool) "bad verb" true (rejected "pmdb-serve/1 sessions s");
  Alcotest.(check bool) "empty name" true (rejected "pmdb-serve/1 session ");
  Alcotest.(check bool) "bad name chars" true (rejected "pmdb-serve/1 session a/b");
  Alcotest.(check bool) "name too long" true
    (rejected ("pmdb-serve/1 session " ^ String.make 65 'a'));
  Alcotest.(check bool) "empty line" true (rejected "");
  (* hello_line and parse_hello must agree. *)
  List.iter
    (fun h -> Alcotest.(check bool) "hello_line round-trip" true (W.parse_hello (W.hello_line h) = Ok h))
    [
      W.Session { name = "w1"; lenient = false };
      W.Session { name = "w1"; lenient = true };
      W.Stats;
      W.Stats_stream { frames = 0 };
      W.Stats_stream { frames = 3 };
      W.Stop;
    ]

let test_wire_malformed_json () =
  let module W = Serve.Wire in
  let bad s = match W.result_of_line s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "not json" true (bad "not json at all");
  Alcotest.(check bool) "wrong schema" true (bad {|{"schema":"other/v1","status":"ok"}|});
  Alcotest.(check bool) "bad status" true (bad {|{"schema":"pmdb-serve/v1","status":"weird"}|})

let prop_wire_result_roundtrip =
  let module W = Serve.Wire in
  let frame_gen =
    QCheck.Gen.(
      let cause_gen =
        let* seq = int_range 1 10_000 in
        let* addr = int_range 0 65536 in
        let* size = int_range 1 64 in
        let* cls = oneofl [ "store"; "clf"; "fence"; "program_end" ] in
        let* note = oneofl [ "never flushed"; "crossed fence unpersisted"; ""; "re-covered" ] in
        return (Bug.cause ~addr ~size ~note ~cls seq)
      in
      let bug_gen =
        let* kind = oneofl Bug.all_kinds in
        let* addr = int_range 0 65536 in
        let* size = int_range 1 256 in
        let* seq = int_range 1 10_000 in
        let* detail = oneofl [ "store at 0x100"; "flushed twice"; ""; "a b c" ] in
        let* chain = list_size (int_range 0 4) cause_gen in
        return (Bug.make ~addr ~size ~seq ~detail ~chain kind)
      in
      let report_gen =
        let* bugs = list_size (int_range 0 5) bug_gen in
        let* events_processed = int_range 0 100_000 in
        let* failure = oneofl [ None; Some "detector raised: boom"; Some "" ] in
        let* stats = oneofl [ []; [ ("tree_size", 12.0) ]; [ ("a", 0.5); ("b", 2.25) ] ] in
        return { Bug.detector = "pmdebugger"; bugs; events_processed; stats; failure }
      in
      let* status = oneofl Serve.Status.all in
      let* events = int_range 0 100_000 in
      let* skipped = int_range 0 50 in
      let* synthesized_end = bool in
      let* error = oneofl [ None; Some "line 3: cannot parse event \"zap\""; Some "evicted" ] in
      let* report = oneof [ return None; map Option.some report_gen ] in
      return
        {
          W.status;
          events;
          skipped;
          synthesized_end;
          error;
          report;
        })
  in
  QCheck.Test.make ~name:"result frame JSON line roundtrip" ~count:300 (QCheck.make frame_gen) (fun f ->
      let line = Serve.Wire.result_to_line f in
      (* single line: the framing invariant *)
      (not (String.contains line '\n'))
      &&
      match Serve.Wire.result_of_line line with
      | Ok f' -> Serve.Wire.result_to_line f' = line
      | Error _ -> false)

(* ---------------------------------------------------------------- *)
(* Session: socket-free ingest state machine                          *)
(* ---------------------------------------------------------------- *)

let feed_string ?(chunk = max_int) s text =
  let b = Bytes.of_string text in
  let n = Bytes.length b in
  let rec go off acc =
    if off >= n then acc
    else
      let len = min chunk (n - off) in
      match Serve.Session.feed s ~now:0.0 b ~off ~len with
      | Ok () -> go (off + len) acc
      | Error e -> Error e
  in
  go 0 (Ok ())

let drain_events s =
  let rec go acc = match Serve.Session.pop_pending s with None -> List.rev acc | Some ev -> go (ev :: acc) in
  go []

let mk_session ?(lenient = false) () = Serve.Session.create ~id:0 ~name:"s" ~lenient ~now:0.0

let test_session_chunk_boundaries_invisible () =
  let text = "register_pmem 0 4096\nstore 1 0 8\nclf clwb 1 0 8\nfence 1\nprogram_end\n" in
  let whole = mk_session () in
  Alcotest.(check bool) "whole feed ok" true (feed_string whole text = Ok ());
  let bytewise = mk_session () in
  Alcotest.(check bool) "bytewise feed ok" true (feed_string ~chunk:1 bytewise text = Ok ());
  let evs_whole = drain_events whole and evs_byte = drain_events bytewise in
  Alcotest.(check int) "same event count" (List.length evs_whole) (List.length evs_byte);
  Alcotest.(check bool) "same events" true (evs_whole = evs_byte);
  Alcotest.(check int) "same bytes_read" (Serve.Session.bytes_read whole) (Serve.Session.bytes_read bytewise)

let test_session_strict_error_position () =
  let s = mk_session () in
  match feed_string s "store 1 0 8\nzap!\n" with
  | Ok () -> Alcotest.fail "strict session accepted garbage"
  | Error msg ->
      Alcotest.(check bool) "line number in error" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:");
      Alcotest.(check bool) "status is trace-error" true (Serve.Session.status s = Serve.Status.Trace_error)

let test_session_lenient_skips () =
  let s = mk_session ~lenient:true () in
  Alcotest.(check bool) "lenient feed ok" true
    (feed_string s "store 1 0 8\nzap!\nfence 1\nalso bad\nprogram_end\n" = Ok ());
  Alcotest.(check int) "skipped" 2 (Serve.Session.skipped s);
  Alcotest.(check int) "parsed" 3 (Serve.Session.pending_events s)

let test_session_ensure_end () =
  (* Truncated stream: the final unterminated line still parses at
     flush, and a program_end is synthesized. *)
  let s = mk_session () in
  Alcotest.(check bool) "feed" true (feed_string s "store 1 0 8\nfence 1" = Ok ());
  Alcotest.(check bool) "flush_partial" true (Serve.Session.flush_partial s = Ok ());
  Serve.Session.ensure_end s;
  Alcotest.(check bool) "synthesized" true (Serve.Session.synthesized_end s);
  (match List.rev (drain_events s) with
  | Event.Program_end :: Event.Fence _ :: _ -> ()
  | _ -> Alcotest.fail "expected fence then synthesized program_end");
  (* A stream that carried its own program_end gets nothing added. *)
  let s2 = mk_session () in
  Alcotest.(check bool) "feed" true (feed_string s2 "store 1 0 8\nprogram_end\n" = Ok ());
  Serve.Session.ensure_end s2;
  Alcotest.(check bool) "not synthesized" false (Serve.Session.synthesized_end s2);
  Alcotest.(check int) "no extra event" 2 (Serve.Session.pending_events s2)

let test_session_live_bytes_accounting () =
  let s = mk_session () in
  Alcotest.(check int) "fresh session holds nothing" 0 (Serve.Session.live_bytes s);
  Alcotest.(check bool) "feed" true (feed_string s "store 1 0 8\nstore 1 8 8\npartial-line-without-newl" = Ok ());
  let before = Serve.Session.live_bytes s in
  Alcotest.(check bool) "queued events + partial line cost bytes" true (before > 0);
  ignore (Serve.Session.pop_pending s);
  Alcotest.(check bool) "pop releases bytes" true (Serve.Session.live_bytes s < before);
  Serve.Session.drop_pending s;
  Alcotest.(check int) "drop releases everything" 0 (Serve.Session.live_bytes s)

let test_session_terminate_first_wins () =
  let s = mk_session () in
  Serve.Session.terminate s Serve.Status.Trace_error (Some "line 1: bad");
  Serve.Session.terminate s Serve.Status.Shutdown None;
  Alcotest.(check bool) "first terminal status wins" true
    (Serve.Session.status s = Serve.Status.Trace_error);
  Alcotest.(check bool) "error preserved" true (Serve.Session.error s = Some "line 1: bad")

(* ---------------------------------------------------------------- *)
(* Pool, inline mode                                                  *)
(* ---------------------------------------------------------------- *)

let bug_trace_events =
  [
    Event.Register_pmem { base = 0; size = 4096 };
    Event.Store { addr = 0; size = 8; tid = 1 };
    Event.Store { addr = 0; size = 8; tid = 1 };
    Event.Clf { addr = 0; size = 8; kind = Event.Clwb; tid = 1 };
    Event.Fence { tid = 1 };
    Event.Store { addr = 64; size = 8; tid = 1 };
    Event.Program_end;
  ]

let test_pool_inline_roundtrip () =
  let pool =
    Serve.Pool.create ~domains:false ~workers:2 ~queue_capacity:64 (fun ~heatmap:_ ->
        D.sink (D.create ~model:D.Strict ()))
  in
  let slot = Serve.Pool.open_session pool ~id:3 in
  List.iter (fun ev -> Serve.Pool.submit pool ~id:3 ev) bug_trace_events;
  Serve.Pool.finish_session pool ~id:3;
  (match Serve.Pool.result slot with
  | None -> Alcotest.fail "inline pool produced no report"
  | Some report ->
      Alcotest.(check bool) "found the planted bugs" true (List.length report.Bug.bugs >= 2);
      Alcotest.(check bool) "no failure" true (report.Bug.failure = None));
  Serve.Pool.stop pool

let test_pool_inline_detector_failure () =
  let boom = Sink.make ~name:"boom" ~on_event:(fun _ -> failwith "detector exploded") ~finish:(fun () -> Bug.empty_report "boom") in
  let pool = Serve.Pool.create ~domains:false ~workers:1 ~queue_capacity:64 (fun ~heatmap:_ -> boom) in
  let slot = Serve.Pool.open_session pool ~id:0 in
  Serve.Pool.submit pool ~id:0 (Event.Store { addr = 0; size = 8; tid = 0 });
  Alcotest.(check bool) "failure surfaces in the slot" true (Serve.Pool.failed slot <> None);
  Serve.Pool.finish_session pool ~id:0;
  (match Serve.Pool.result slot with
  | Some report -> Alcotest.(check bool) "report carries the failure" true (report.Bug.failure <> None)
  | None -> Alcotest.fail "no report after finish");
  Serve.Pool.stop pool

(* ---------------------------------------------------------------- *)
(* The fault-tolerance gate: 8 concurrent clients over a real socket, *)
(* 2 of them misbehaving; 6 healthy reports byte-identical to the      *)
(* offline replay; the daemon stays up and answers stats.              *)
(* ---------------------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "pmdb-serve-test" ".sock" in
  Sys.remove path;
  path

let trace_body =
  String.concat "\n"
    [
      "register_pmem 0 4096";
      "store 1 0 8";
      "store 1 0 8";
      "clf clwb 1 0 8";
      "fence 1";
      "store 1 64 8";
      "program_end";
    ]
  ^ "\n"

let offline_report body =
  match Trace_io.of_string body with
  | Error e -> Alcotest.fail ("offline parse failed: " ^ e)
  | Ok trace -> Recorder.replay trace (D.sink (D.create ~model:D.Strict ()))

let start_daemon ?(idle_timeout = 0.5) ?(workers = 2) ?(stream_interval = 1.0) ?flightrec_dir ~metrics socket =
  let cfg =
    {
      (Serve.Daemon.default_config ~socket) with
      Serve.Daemon.workers;
      idle_timeout;
      stream_interval;
      flightrec_dir;
    }
  in
  let daemon =
    Serve.Daemon.create ~metrics ~make_sink:(fun ~heatmap -> D.sink (D.create ~model:D.Strict ~heatmap ())) cfg
  in
  let d = Domain.spawn (fun () -> Serve.Daemon.run daemon) in
  (* Wait for the listener to come up. *)
  let rec wait tries =
    if tries = 0 then Alcotest.fail "daemon never bound its socket"
    else if Sys.file_exists socket then ()
    else (
      Unix.sleepf 0.02;
      wait (tries - 1))
  in
  wait 250;
  d

let test_gate_eight_clients_two_misbehaving () =
  let socket = temp_socket () in
  let metrics = Obs.Metrics.create () in
  let handle = start_daemon ~metrics socket in
  let expected = canon (offline_report trace_body) in
  let healthy =
    List.init 6 (fun i ->
        Domain.spawn (fun () ->
            Serve.Client.replay_string ~socket ~name:(Printf.sprintf "healthy-%d" i) trace_body))
  in
  let garbage = Domain.spawn (fun () -> Serve.Client.probe ~socket ~name:"bad-garbage" Serve.Client.Garbage) in
  let hang = Domain.spawn (fun () -> Serve.Client.probe ~socket ~name:"bad-hang" Serve.Client.Hang) in
  List.iteri
    (fun i d ->
      match Domain.join d with
      | Error e -> Alcotest.fail (Printf.sprintf "healthy client %d: %s" i e)
      | Ok frame ->
          Alcotest.(check bool)
            (Printf.sprintf "healthy client %d status ok" i)
            true
            (frame.Serve.Wire.status = Serve.Status.Ok);
          (match frame.Serve.Wire.report with
          | None -> Alcotest.fail (Printf.sprintf "healthy client %d got no report" i)
          | Some r ->
              Alcotest.(check string)
                (Printf.sprintf "healthy client %d byte-identical to offline replay" i)
                expected (canon r)))
    healthy;
  (match Domain.join garbage with
  | Error e -> Alcotest.fail ("garbage probe: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "garbage session quarantined as trace-error" true
        (frame.Serve.Wire.status = Serve.Status.Trace_error);
      Alcotest.(check bool) "structured parse error" true
        (match frame.Serve.Wire.error with Some e -> String.length e > 0 | None -> false));
  (match Domain.join hang with
  | Error e -> Alcotest.fail ("hang probe: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "hung session reaped as timeout" true
        (frame.Serve.Wire.status = Serve.Status.Timeout));
  (* The daemon survived and its books balance. *)
  (match Serve.Client.stats ~socket with
  | Error e -> Alcotest.fail ("stats after the storm: " ^ e)
  | Ok snap ->
      let c ?labels name = Obs.Metrics.counter_value snap ?labels name in
      Alcotest.(check int) "sessions opened" 8 (c "serve_sessions_opened_total");
      Alcotest.(check int) "exactly one trace quarantine" 1
        (c ~labels:[ ("reason", "trace") ] "serve_quarantines_total");
      Alcotest.(check int) "exactly one timeout" 1 (c "serve_timeouts_total");
      Alcotest.(check int) "no evictions" 0 (c "serve_evictions_total");
      Alcotest.(check int) "six healthy closes" 6
        (c ~labels:[ ("status", "ok") ] "serve_sessions_closed_total");
      (* Domain-safe telemetry: the stats snapshot is merged across the
         dispatch domain and every worker's published registry — the
         per-domain serve_worker_events_total series must balance the
         events the dispatch side submitted. *)
      let sum name =
        List.fold_left
          (fun acc (s : Obs.Metrics.sample) ->
            match s.Obs.Metrics.value with
            | Obs.Metrics.V_counter n when s.Obs.Metrics.name = name -> acc + n
            | _ -> acc)
          0 snap
      in
      Alcotest.(check bool) "worker series non-zero" true (sum "serve_worker_events_total" > 0);
      Alcotest.(check int) "worker domains account for every submitted event"
        (sum "serve_events_total")
        (sum "serve_worker_events_total"));
  (match Serve.Client.stop ~socket with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("stop: " ^ e));
  Domain.join handle;
  Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists socket)

let temp_dir () =
  let d = Filename.temp_file "pmdb-flightrec" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* A session whose detector raises mid-stream is quarantined with a
   detector-error frame; its sibling on the same daemon is unharmed.
   The flight recorder (always on — the byte-identical report checks
   above already run with it recording) must leave a black-box dump
   naming the failing session. *)
let test_gate_detector_quarantine_isolated () =
  let socket = temp_socket () in
  let dumpdir = temp_dir () in
  let metrics = Obs.Metrics.create () in
  let calls = Atomic.make 0 in
  let cfg =
    {
      (Serve.Daemon.default_config ~socket) with
      Serve.Daemon.workers = 2;
      idle_timeout = 5.0;
      flightrec_dir = Some dumpdir;
    }
  in
  (* Session ids are assigned in accept order starting at 1; worker =
     id mod workers keeps both sessions apart, and the first session
     created on the daemon gets the exploding sink. *)
  let make_sink ~heatmap:_ =
    if Atomic.fetch_and_add calls 1 = 0 then
      Sink.make ~name:"boom"
        ~on_event:(fun ev -> match ev with Event.Fence _ -> failwith "boom mid-stream" | _ -> ())
        ~finish:(fun () -> Bug.empty_report "boom")
    else D.sink (D.create ~model:D.Strict ())
  in
  let daemon = Serve.Daemon.create ~metrics ~make_sink cfg in
  let handle = Domain.spawn (fun () -> Serve.Daemon.run daemon) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "daemon never bound its socket"
    else if Sys.file_exists socket then ()
    else (
      Unix.sleepf 0.02;
      wait (tries - 1))
  in
  wait 250;
  let first = Serve.Client.replay_string ~socket ~name:"doomed" trace_body in
  (match first with
  | Error e -> Alcotest.fail ("doomed client: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "detector failure becomes detector-error" true
        (frame.Serve.Wire.status = Serve.Status.Detector_error));
  (match Serve.Client.replay_string ~socket ~name:"bystander" trace_body with
  | Error e -> Alcotest.fail ("bystander client: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "sibling session unaffected" true (frame.Serve.Wire.status = Serve.Status.Ok));
  (match Serve.Client.stop ~socket with Ok () -> () | Error e -> Alcotest.fail ("stop: " ^ e));
  Domain.join handle;
  (* The black box: the quarantine left a dump naming the failing
     session, with recorded entries, plus a Perfetto twin. *)
  let json_path = Filename.concat dumpdir "flightrec-doomed-detector-quarantine-0.json" in
  Alcotest.(check bool) "dump written" true (Sys.file_exists json_path);
  (match Obs.Json.of_file json_path with
  | Error e -> Alcotest.fail ("dump unreadable: " ^ e)
  | Ok doc ->
      (match Obs.Flightrec.validate_json doc with
      | Error e -> Alcotest.fail ("dump malformed: " ^ e)
      | Ok entries -> Alcotest.(check bool) "dump non-empty" true (entries > 0));
      let meta_str field =
        Option.bind (Obs.Json.member "meta" doc) (fun m ->
            Option.bind (Obs.Json.member field m) Obs.Json.to_str)
      in
      Alcotest.(check (option string)) "dump names the failing session" (Some "doomed")
        (meta_str "session");
      Alcotest.(check (option string)) "dump carries the reason" (Some "detector-quarantine")
        (meta_str "reason"));
  let perfetto_path = Filename.concat dumpdir "flightrec-doomed-detector-quarantine-0.perfetto.json" in
  (match Obs.Json.of_file perfetto_path with
  | Error e -> Alcotest.fail ("perfetto dump unreadable: " ^ e)
  | Ok doc -> (
      match Obs.Perfetto.validate_json doc with
      | Error e -> Alcotest.fail ("perfetto dump malformed: " ^ e)
      | Ok n -> Alcotest.(check bool) "perfetto dump non-empty" true (n > 0)))

(* ---------------------------------------------------------------- *)
(* stats_stream: live merged-snapshot frames                          *)
(* ---------------------------------------------------------------- *)

let test_stats_stream_follow () =
  let socket = temp_socket () in
  let metrics = Obs.Metrics.create () in
  let handle = start_daemon ~idle_timeout:5.0 ~stream_interval:0.05 ~metrics socket in
  (* Put a session through first so frames carry real counters. *)
  (match Serve.Client.replay_string ~socket ~name:"warm" trace_body with
  | Error e -> Alcotest.fail ("warm session: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "warm session ok" true (frame.Serve.Wire.status = Serve.Status.Ok));
  let frames = ref [] in
  (match
     Serve.Client.stats_follow ~socket ~frames:3
       ~on_frame:(fun snap ->
         frames := snap :: !frames;
         true)
       ()
   with
  | Error e -> Alcotest.fail ("stats_follow: " ^ e)
  | Ok n -> Alcotest.(check int) "stream closed after the requested frames" 3 n);
  Alcotest.(check int) "every frame delivered to on_frame" 3 (List.length !frames);
  List.iter
    (fun snap ->
      Alcotest.(check int) "frame sees the warm session" 1
        (Obs.Metrics.counter_value snap "serve_sessions_opened_total");
      Alcotest.(check bool) "frame is merged: worker series present" true
        (List.exists
           (fun (s : Obs.Metrics.sample) -> s.Obs.Metrics.name = "serve_worker_events_total")
           snap))
    !frames;
  (* The raw wire view: a bounded stream is exactly N newline-framed
     snapshot documents, each independently parseable. *)
  (match Serve.Client.raw ~socket "pmdb-serve/1 stats_stream 2\n" with
  | Error e -> Alcotest.fail ("raw stats_stream: " ^ e)
  | Ok reply ->
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' reply) in
      Alcotest.(check int) "two frames on the wire" 2 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.of_string line with
          | Error e -> Alcotest.fail ("frame is not JSON: " ^ e)
          | Ok json -> (
              match Obs.Metrics.snapshot_of_json json with
              | Error e -> Alcotest.fail ("frame is not a snapshot: " ^ e)
              | Ok _ -> ()))
        lines);
  (match Serve.Client.stop ~socket with Ok () -> () | Error e -> Alcotest.fail ("stop: " ^ e));
  Domain.join handle

(* The observability verbs end to end: a daemon with the heatmap on
   and a trace-out directory serves the merged hot-line table over the
   wire, observes session end-to-end latency, and leaves a valid
   causal Perfetto dump at shutdown. *)
let test_heatmap_verb_and_shutdown_trace () =
  let socket = temp_socket () in
  let tracedir = temp_dir () in
  let metrics = Obs.Metrics.create () in
  let cfg =
    {
      (Serve.Daemon.default_config ~socket) with
      Serve.Daemon.workers = 2;
      idle_timeout = 5.0;
      heatmap_cap = 64;
      trace_out = Some tracedir;
    }
  in
  let daemon =
    Serve.Daemon.create ~metrics ~make_sink:(fun ~heatmap -> D.sink (D.create ~model:D.Strict ~heatmap ())) cfg
  in
  let handle = Domain.spawn (fun () -> Serve.Daemon.run daemon) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "daemon never bound its socket"
    else if Sys.file_exists socket then ()
    else (
      Unix.sleepf 0.02;
      wait (tries - 1))
  in
  wait 250;
  (match Serve.Client.replay_string ~socket ~name:"hot" trace_body with
  | Error e -> Alcotest.fail ("session: " ^ e)
  | Ok frame -> Alcotest.(check bool) "session ok" true (frame.Serve.Wire.status = Serve.Status.Ok));
  (* The heatmap verb returns the merged per-worker tables: trace_body
     touches lines 0 and 1, stores dominating line 0. *)
  (match Serve.Client.heatmap ~socket with
  | Error e -> Alcotest.fail ("heatmap verb: " ^ e)
  | Ok snap ->
      Alcotest.(check int) "both touched lines tracked" 2 snap.Obs.Heatmap.s_tracked;
      let r0 = List.find (fun r -> r.Obs.Heatmap.r_line = 0) snap.Obs.Heatmap.s_rows in
      Alcotest.(check int) "line 0 stores" 2 r0.Obs.Heatmap.r_stores;
      Alcotest.(check int) "line 0 clfs" 1 r0.Obs.Heatmap.r_clfs);
  (* Stage attribution reaches the daemon's registry: the session's
     end-to-end histogram observed exactly one session. *)
  (match Serve.Client.stats ~socket with
  | Error e -> Alcotest.fail ("stats: " ^ e)
  | Ok snap -> (
      match Obs.Metrics.find snap "serve_session_e2e_seconds" with
      | Some (Obs.Metrics.V_hist h) -> Alcotest.(check int) "one e2e observation" 1 h.Obs.Metrics.h_count
      | _ -> Alcotest.fail "serve_session_e2e_seconds histogram missing"));
  (match Serve.Client.stop ~socket with Ok () -> () | Error e -> Alcotest.fail ("stop: " ^ e));
  Domain.join handle;
  (* Shutdown leaves one merged causal trace, and it validates. *)
  let dumps = Sys.readdir tracedir |> Array.to_list |> List.filter (fun f -> Filename.check_suffix f ".json") in
  (match dumps with
  | [ f ] -> (
      match Obs.Json.of_file (Filename.concat tracedir f) with
      | Error e -> Alcotest.fail ("trace dump unreadable: " ^ e)
      | Ok doc -> (
          match Obs.Perfetto.validate_json doc with
          | Ok n -> Alcotest.(check bool) (Printf.sprintf "%d trace events" n) true (n > 0)
          | Error e -> Alcotest.fail ("trace dump invalid: " ^ e)))
  | files -> Alcotest.fail (Printf.sprintf "expected one shutdown dump, found %d" (List.length files)))

(* ---------------------------------------------------------------- *)
(* Protocol fuzz: whatever bytes arrive, the daemon answers every      *)
(* non-empty connection with one parseable result frame and stays up.  *)
(* ---------------------------------------------------------------- *)

let fuzz_input_gen =
  QCheck.Gen.(
    let hello =
      oneofl
        [
          "pmdb-serve/1 session fz";
          "pmdb-serve/1 session fz lenient";
          "pmdb-serve/1 session fz strict";
          "pmdb-serve/1 session bad/name";
          "pmdb-serve/1 bogusverb";
          "pmdb-serve/2 session fz";
          "not even close";
          "pmdb-serve/1 session";
          "pmdb-serve/1";
        ]
    in
    let body_line =
      oneofl
        [
          "store 1 0 8";
          "store 1 64 8";
          "clf clwb 1 0 8";
          "fence 1";
          "register_pmem 0 4096";
          "program_end";
          "zap!";
          "store 1 oops 8";
          "";
          "   ";
        ]
    in
    let* h = hello in
    let* lines = list_size (int_range 0 8) body_line in
    let* terminated = bool in
    let text = String.concat "\n" (h :: lines) in
    return (if terminated then text ^ "\n" else text))

let prop_fuzz_always_structured_reply socket =
  QCheck.Test.make ~name:"daemon answers garbage with structured frames" ~count:40
    (QCheck.make fuzz_input_gen) (fun input ->
      match Serve.Client.raw ~socket input with
      | Error _ -> false (* connection refused or reset: the daemon died *)
      | Ok reply ->
          let line = match String.index_opt reply '\n' with
            | Some i -> String.sub reply 0 i
            | None -> reply
          in
          String.length line > 0
          && (match Serve.Wire.result_of_line line with Ok _ -> true | Error _ -> false))

let test_fuzz_protocol () =
  let socket = temp_socket () in
  let metrics = Obs.Metrics.create () in
  let handle = start_daemon ~idle_timeout:5.0 ~workers:1 ~metrics socket in
  let res =
    try
      QCheck.Test.check_exn (prop_fuzz_always_structured_reply socket);
      Ok ()
    with e -> Error (Printexc.to_string e)
  in
  (* The daemon must still be alive and coherent after the barrage. *)
  (match Serve.Client.replay_string ~socket ~name:"after-fuzz" trace_body with
  | Error e -> Alcotest.fail ("daemon dead after fuzz: " ^ e)
  | Ok frame ->
      Alcotest.(check bool) "healthy session still works" true
        (frame.Serve.Wire.status = Serve.Status.Ok));
  (match Serve.Client.stop ~socket with Ok () -> () | Error e -> Alcotest.fail ("stop: " ^ e));
  Domain.join handle;
  match res with Ok () -> () | Error e -> Alcotest.fail e

(* ---------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "spsc close poisons producer side" `Quick test_spsc_close_poisons_producer;
    Alcotest.test_case "spsc pop drains then raises Closed" `Quick test_spsc_pop_drains_then_closed;
    Alcotest.test_case "spsc close wakes a blocked producer" `Quick test_spsc_close_wakes_blocked_producer;
    Alcotest.test_case "spsc close wakes a blocked consumer" `Quick test_spsc_close_wakes_blocked_consumer;
    Alcotest.test_case "finish_all survives a raising finish" `Quick test_finish_all_survives_raising_finish;
    Alcotest.test_case "status exit-code table" `Quick test_status_exit_codes;
    Alcotest.test_case "wire parse_hello" `Quick test_wire_parse_hello;
    Alcotest.test_case "wire rejects malformed frames" `Quick test_wire_malformed_json;
    QCheck_alcotest.to_alcotest prop_wire_result_roundtrip;
    Alcotest.test_case "session chunk boundaries invisible" `Quick test_session_chunk_boundaries_invisible;
    Alcotest.test_case "session strict error position" `Quick test_session_strict_error_position;
    Alcotest.test_case "session lenient skip counting" `Quick test_session_lenient_skips;
    Alcotest.test_case "session ensure_end" `Quick test_session_ensure_end;
    Alcotest.test_case "session live_bytes accounting" `Quick test_session_live_bytes_accounting;
    Alcotest.test_case "session first terminal status wins" `Quick test_session_terminate_first_wins;
    Alcotest.test_case "pool inline roundtrip" `Quick test_pool_inline_roundtrip;
    Alcotest.test_case "pool inline detector failure" `Quick test_pool_inline_detector_failure;
    Alcotest.test_case "gate: 8 clients, 2 misbehaving" `Quick test_gate_eight_clients_two_misbehaving;
    Alcotest.test_case "gate: detector quarantine is isolated" `Quick test_gate_detector_quarantine_isolated;
    Alcotest.test_case "stats_stream follow" `Quick test_stats_stream_follow;
    Alcotest.test_case "heatmap verb and shutdown trace" `Quick test_heatmap_verb_and_shutdown_trace;
    Alcotest.test_case "protocol fuzz" `Quick test_fuzz_protocol;
  ]
