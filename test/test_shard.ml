(* The sharded detection pipeline: SPSC queue, router parity against
   the single-detector run (the equality contract), cross-shard
   prior-seq merging, finish_all ordering and the flat baseline
   backend. *)

open Pmtrace
module D = Pmdebugger.Detector
module SI = Pmdebugger.Store_intf

(* The plain detector reports findings in discovery order, the sharded
   merge in canonical order; sort both before comparing renders. *)
let canon (r : Bug.report) =
  Bug.render_canonical { r with Bug.bugs = List.sort Bug.compare_canonical r.Bug.bugs }

let replay_plain ?mode ?backend ?(model = D.Strict) trace =
  Recorder.replay trace (D.sink (D.create ~model ?mode ?backend ()))

let replay_sharded ?mode ?(model = D.Strict) ?(domains = false) ~shards trace =
  Recorder.replay trace (Shard_router.sink ~shards ~domains (fun _ -> D.worker (D.create ~model ?mode ~walk_dedup:false ())))

(* ---------------------------------------------------------------- *)
(* SPSC queue                                                        *)
(* ---------------------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create ~capacity:5 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8 (Spsc.capacity q);
  for i = 0 to 5 do
    Spsc.push q i
  done;
  Alcotest.(check int) "length" 6 (Spsc.length q);
  for i = 0 to 5 do
    match Spsc.try_pop q with
    | Some v -> Alcotest.(check int) "FIFO order" i v
    | None -> Alcotest.fail "queue empty too early"
  done;
  Alcotest.(check bool) "drained" true (Spsc.try_pop q = None)

let test_spsc_wraparound () =
  let q = Spsc.create ~capacity:4 in
  for round = 0 to 20 do
    Spsc.push q (2 * round);
    Spsc.push q ((2 * round) + 1);
    Alcotest.(check int) "pop even" (2 * round) (Spsc.pop q);
    Alcotest.(check int) "pop odd" ((2 * round) + 1) (Spsc.pop q)
  done;
  Alcotest.(check int) "empty" 0 (Spsc.length q)

(* A queue much smaller than the payload forces both the full-queue
   and the empty-queue backoff paths across a real domain boundary. *)
let test_spsc_cross_domain () =
  let n = 50_000 in
  let q = Spsc.create ~capacity:64 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Spsc.push q i
        done)
  in
  let ok = ref true in
  for i = 1 to n do
    if Spsc.pop q <> i then ok := false
  done;
  Domain.join producer;
  Alcotest.(check bool) "every element, in order" true !ok;
  Alcotest.(check bool) "empty after" true (Spsc.try_pop q = None)

(* ---------------------------------------------------------------- *)
(* Engine.finish_all ordering (regression for the documented          *)
(* guarantee the shard merge relies on)                               *)
(* ---------------------------------------------------------------- *)

let mk_named name = Sink.make ~name ~on_event:(fun _ -> ()) ~finish:(fun () -> Bug.empty_report name)

let drive_engine e =
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.store_int e ~addr:0 42;
  Engine.clwb e ~addr:0;
  Engine.sfence e;
  Engine.program_end e

let test_finish_all_attach_order () =
  let e = Engine.create () in
  Engine.attach e (mk_named "first");
  Engine.attach e (Shard_router.sink ~shards:2 ~domains:false (fun _ -> D.worker (D.create ~walk_dedup:false ())));
  Engine.attach e (mk_named "last");
  drive_engine e;
  let names = List.map (fun r -> r.Bug.detector) (Engine.finish_all e) in
  Alcotest.(check (list string)) "one report per sink, in attach order" [ "first"; "pmdebugger"; "last" ] names

let test_finish_all_order_survives_quarantine () =
  let e = Engine.create () in
  Engine.attach e (mk_named "a");
  Engine.attach e (Sink.make ~name:"boom" ~on_event:(fun _ -> ()) ~finish:(fun () -> failwith "kaboom"));
  Engine.attach e (mk_named "z");
  drive_engine e;
  let reports = Engine.finish_all e in
  Alcotest.(check int) "still three reports" 3 (List.length reports);
  Alcotest.(check string) "first in place" "a" (List.nth reports 0).Bug.detector;
  Alcotest.(check string) "last in place" "z" (List.nth reports 2).Bug.detector;
  Alcotest.(check bool) "middle carries the failure" true ((List.nth reports 1).Bug.failure <> None)

(* ---------------------------------------------------------------- *)
(* prior_seqs across shard boundaries (cap of the union = smallest 8) *)
(* ---------------------------------------------------------------- *)

let test_merge_store_obs_cap () =
  let o1 = { Shard_router.so_overlapped = true; so_prior_seqs = [ 1; 3; 5; 7; 9; 11; 13; 15 ] } in
  let o2 = { Shard_router.so_overlapped = false; so_prior_seqs = [ 2; 4; 6; 8; 10; 12; 14; 16 ] } in
  let m = Shard_router.merge_store_obs [ o1; o2 ] in
  Alcotest.(check bool) "overlap ORs" true m.Shard_router.so_overlapped;
  Alcotest.(check (list int))
    "cap keeps the smallest max_prior_seqs of the union" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    m.Shard_router.so_prior_seqs;
  Alcotest.(check int) "the cap is 8" 8 Shard_router.max_prior_seqs;
  Alcotest.(check int) "backends share the constant" Shard_router.max_prior_seqs SI.max_prior_seqs

(* A store spanning two shards' cache lines with more prior stores than
   the cap: the merged chain must be the 8 smallest seqs of the union,
   exactly as a single-shard run reports. *)
let test_prior_seqs_span_two_shards () =
  let evs = ref [] in
  let emit e = evs := e :: !evs in
  emit (Event.Register_pmem { base = 0; size = 1024 });
  (* Twelve non-overlapping 4-byte stores: six on line 0, six on line 1
     (seqs 2..13), none durable. *)
  for i = 0 to 11 do
    emit (Event.Store { addr = 40 + (4 * i); size = 4; tid = 0 })
  done;
  (* Seq 14 overwrites all twelve across the line-0/line-1 boundary. *)
  emit (Event.Store { addr = 40; size = 48; tid = 0 });
  emit Event.Program_end;
  let trace = Array.of_list (List.rev !evs) in
  let single = replay_plain trace in
  let sharded = replay_sharded ~shards:2 trace in
  Alcotest.(check string) "reports identical" (canon single) (canon sharded);
  let mo =
    match List.find_opt (fun b -> b.Bug.kind = Bug.Multiple_overwrites) sharded.Bug.bugs with
    | Some b -> b
    | None -> Alcotest.fail "no multiple-overwrites finding"
  in
  Alcotest.(check int) "full range reported" 48 mo.Bug.size;
  let seqs =
    (* The chain's prior-store causes, without the trailing cause for
       the firing store itself. *)
    List.filter_map
      (fun c -> if c.Bug.c_class = "store" && c.Bug.c_seq <> mo.Bug.seq then Some c.Bug.c_seq else None)
      mo.Bug.chain
  in
  Alcotest.(check (list int)) "chain = 8 smallest priors of the union" [ 2; 3; 4; 5; 6; 7; 8; 9 ] seqs

(* ---------------------------------------------------------------- *)
(* QCheck parity: random traces, sharded vs single                   *)
(* ---------------------------------------------------------------- *)

let lines = 8
let region = lines * 64

(* Random but contract-respecting traces: Register_pmem first, then
   optional Register_var pins (before any store), then a mix of
   (possibly line-crossing) stores, line-granular CLFs, fences, epoch
   and strand markers, tx-log appends and call markers. Small address
   space so line collisions, overwrites and cross-shard ranges are
   common. *)
let trace_of (vars, ops) =
  let evs = ref [] in
  let emit e = evs := e :: !evs in
  emit (Event.Register_pmem { base = 0; size = region });
  List.iter
    (fun (line, wide) ->
      let line = line mod lines in
      let size = if wide then 80 else 16 in
      let size = min size (region - (line * 64) - 8) in
      if size > 0 then emit (Event.Register_var { name = "v"; addr = (line * 64) + 8; size }))
    vars;
  let strand = ref 0 in
  List.iter
    (fun (op, (a, s)) ->
      match op with
      | 0 | 1 | 2 | 3 ->
          let addr = a land lnot 7 in
          let size = min (8 * s) (region - addr) in
          if size > 0 then emit (Event.Store { addr; size; tid = 0 })
      | 4 | 5 ->
          let addr = a / 64 * 64 in
          let size = min (if s > 2 then 128 else 64) (region - addr) in
          emit (Event.Clf { addr; size; kind = Event.Clwb; tid = 0 })
      | 6 -> emit (Event.Fence { tid = 0 })
      | 7 -> emit (if s land 1 = 0 then Event.Epoch_begin { tid = 0 } else Event.Epoch_end { tid = 0 })
      | 8 ->
          if s land 1 = 0 then begin
            incr strand;
            emit (Event.Strand_begin { tid = 0; strand = !strand land 3 })
          end
          else emit (Event.Join_strand { tid = 0 })
      | 9 -> emit (Event.Tx_log { obj_addr = a land lnot 7; size = 8; tid = 0 })
      | _ -> emit (Event.Call { func = "persist_obj"; tid = 0 })
    )
    ops;
  emit Event.Program_end;
  Array.of_list (List.rev !evs)

let gen_trace =
  QCheck.(
    pair
      (list_of_size Gen.(0 -- 2) (pair (int_range 0 (lines - 1)) bool))
      (list_of_size Gen.(0 -- 60) (pair (int_range 0 10) (pair (int_range 0 (region - 1)) (int_range 1 4)))))

(* Crash-image findings (cross-failure) are vacuously equal here: the
   rule needs a live PM state, which neither the plain nor the sharded
   replay has — so the byte-identical report comparison covers every
   rule that can fire on a replayed trace. *)
let parity_prop ?mode ?(model = D.Strict) ~shards input =
  let trace = trace_of input in
  let expected = canon (replay_plain ?mode ~model trace) in
  canon (replay_sharded ?mode ~model ~shards trace) = expected

let prop_parity_modes =
  QCheck.Test.make ~name:"sharded report equals single run (3 modes x 2/4/8 shards, strict)" ~count:30 gen_trace
    (fun input ->
      List.for_all
        (fun mode ->
          List.for_all
            (fun shards -> parity_prop ~mode ~shards input)
            [ 2; 4; 8 ])
        [ Pmdebugger.Space.Hybrid; Pmdebugger.Space.Array_only; Pmdebugger.Space.Tree_only ])

let prop_parity_relaxed_models =
  QCheck.Test.make ~name:"sharded report equals single run (epoch and strand models)" ~count:25 gen_trace
    (fun input ->
      List.for_all (fun model -> List.for_all (fun shards -> parity_prop ~model ~shards input) [ 2; 4 ])
        [ D.Epoch; D.Strand ])

let prop_parity_domains =
  QCheck.Test.make ~name:"sharded report equals single run (real domains)" ~count:6 gen_trace (fun input ->
      let trace = trace_of input in
      let expected = canon (replay_plain trace) in
      canon (Recorder.replay trace (Shard_router.sink ~shards:2 (fun _ -> D.worker (D.create ~walk_dedup:false ())))) = expected)

let prop_flat_backend_equivalent =
  QCheck.Test.make ~name:"flat backend produces the hybrid backend's findings" ~count:40 gen_trace (fun input ->
      let trace = trace_of input in
      canon (replay_plain ~backend:(Pmdebugger.Flat_store.backend ()) trace) = canon (replay_plain trace))

(* ---------------------------------------------------------------- *)
(* Flat baseline backend semantics                                   *)
(* ---------------------------------------------------------------- *)

module F = Pmdebugger.Flat_store.Store

let test_flat_lifecycle () =
  let f = Pmdebugger.Flat_store.create () in
  ignore (F.process_store f ~addr:100 ~size:8 ~epoch:false ~seq:1 ~tid:0 ~strand:(-1) ());
  Alcotest.(check int) "tracked" 1 (F.pending_count f);
  let r = F.process_clf f ~lo:64 ~hi:128 in
  Alcotest.(check int) "matched" 1 r.SI.matched;
  Alcotest.(check int) "newly flushed" 1 r.SI.newly_flushed;
  F.process_fence f;
  Alcotest.(check int) "fence drains flushed" 0 (F.pending_count f)

let test_flat_partial_clf_splits () =
  let f = Pmdebugger.Flat_store.create () in
  (* One store straddling the flush boundary: the covered half persists,
     the remainder stays tracked unflushed. *)
  ignore (F.process_store f ~addr:60 ~size:8 ~epoch:false ~seq:1 ~tid:0 ~strand:(-1) ());
  ignore (F.process_clf f ~lo:0 ~hi:64);
  F.process_fence f;
  let remaining = ref [] in
  F.iter_pending f (fun ~addr ~size ~flushed ~epoch:_ ~seq:_ ~clf_seq:_ ~fence_seq:_ ->
      remaining := (addr, size, flushed) :: !remaining);
  Alcotest.(check (list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.bool)))
    "unflushed remainder survives" [ (64, 4, false) ] !remaining

let test_flat_overwrite_priors () =
  let f = Pmdebugger.Flat_store.create () in
  for i = 0 to 9 do
    ignore (F.process_store f ~addr:(8 * i) ~size:8 ~epoch:false ~seq:(i + 1) ~tid:0 ~strand:(-1) ())
  done;
  let r = F.process_store f ~check_overlap:true ~addr:0 ~size:80 ~epoch:false ~seq:11 ~tid:0 ~strand:(-1) () in
  Alcotest.(check bool) "overlap seen" true r.SI.overlapped;
  Alcotest.(check (list int)) "priors sorted, capped at 8" [ 1; 2; 3; 4; 5; 6; 7; 8 ] r.SI.prior_seqs

(* ---------------------------------------------------------------- *)
(* Diff: opt-in gauge gating                                         *)
(* ---------------------------------------------------------------- *)

let snap setup =
  let m = Obs.Metrics.create () in
  setup m;
  Obs.Metrics.snapshot m

let test_diff_gauge_gating () =
  let before = snap (fun m -> Obs.Metrics.set m "shard_queue_depth_peak" 10.0) in
  let after = snap (fun m -> Obs.Metrics.set m "shard_queue_depth_peak" 30.0) in
  let d = Obs.Diff.compute ~before ~after in
  Alcotest.(check int) "gauges never gate by default" 0 (List.length (Obs.Diff.regressions d));
  Alcotest.(check int) "grown gauge gates when opted in" 1
    (List.length (Obs.Diff.regressions ~gauge_threshold:0.5 d));
  (* (30 - 10) / 10 = 2.0 relative growth: below a looser threshold. *)
  Alcotest.(check int) "tolerated below its own threshold" 0
    (List.length (Obs.Diff.regressions ~gauge_threshold:3.0 d))

let test_diff_gauge_added () =
  let before = snap (fun _ -> ()) in
  let after = snap (fun m -> Obs.Metrics.set m "g" 5.0) in
  let d = Obs.Diff.compute ~before ~after in
  Alcotest.(check int) "added gauge ignored by default" 0 (List.length (Obs.Diff.regressions d));
  Alcotest.(check int) "added positive gauge gates when opted in" 1
    (List.length (Obs.Diff.regressions ~gauge_threshold:0.1 d))

let suite =
  [
    Alcotest.test_case "spsc: fifo and capacity" `Quick test_spsc_fifo;
    Alcotest.test_case "spsc: ring wraparound" `Quick test_spsc_wraparound;
    Alcotest.test_case "spsc: cross-domain ordering" `Quick test_spsc_cross_domain;
    Alcotest.test_case "finish_all: reports in attach order" `Quick test_finish_all_attach_order;
    Alcotest.test_case "finish_all: order survives quarantine" `Quick test_finish_all_order_survives_quarantine;
    Alcotest.test_case "merge_store_obs: cap of union" `Quick test_merge_store_obs_cap;
    Alcotest.test_case "prior seqs across a shard boundary" `Quick test_prior_seqs_span_two_shards;
    QCheck_alcotest.to_alcotest prop_parity_modes;
    QCheck_alcotest.to_alcotest prop_parity_relaxed_models;
    QCheck_alcotest.to_alcotest prop_parity_domains;
    QCheck_alcotest.to_alcotest prop_flat_backend_equivalent;
    Alcotest.test_case "flat store: lifecycle" `Quick test_flat_lifecycle;
    Alcotest.test_case "flat store: partial CLF splits" `Quick test_flat_partial_clf_splits;
    Alcotest.test_case "flat store: overwrite priors" `Quick test_flat_overwrite_priors;
    Alcotest.test_case "diff: gauge gating opt-in" `Quick test_diff_gauge_gating;
    Alcotest.test_case "diff: added gauge" `Quick test_diff_gauge_added;
  ]
