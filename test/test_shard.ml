(* The sharded detection pipeline: SPSC queue, router parity against
   the single-detector run (the equality contract), cross-shard
   prior-seq merging, finish_all ordering and the flat baseline
   backend. *)

open Pmtrace
module D = Pmdebugger.Detector
module SI = Pmdebugger.Store_intf

(* The plain detector reports findings in discovery order, the sharded
   merge in canonical order; sort both before comparing renders. *)
let canon (r : Bug.report) =
  Bug.render_canonical { r with Bug.bugs = List.sort Bug.compare_canonical r.Bug.bugs }

let replay_plain ?mode ?backend ?(model = D.Strict) trace =
  Recorder.replay trace (D.sink (D.create ~model ?mode ?backend ()))

let replay_sharded ?mode ?(model = D.Strict) ?(domains = false) ?frame_size ~shards trace =
  Recorder.replay trace
    (Shard_router.sink ~shards ~domains ?frame_size (fun _ -> D.worker (D.create ~model ?mode ~walk_dedup:false ())))

(* ---------------------------------------------------------------- *)
(* SPSC queue                                                        *)
(* ---------------------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create ~capacity:5 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8 (Spsc.capacity q);
  for i = 0 to 5 do
    Spsc.push q i
  done;
  Alcotest.(check int) "length" 6 (Spsc.length q);
  for i = 0 to 5 do
    match Spsc.try_pop q with
    | Some v -> Alcotest.(check int) "FIFO order" i v
    | None -> Alcotest.fail "queue empty too early"
  done;
  Alcotest.(check bool) "drained" true (Spsc.try_pop q = None)

let test_spsc_wraparound () =
  let q = Spsc.create ~capacity:4 in
  for round = 0 to 20 do
    Spsc.push q (2 * round);
    Spsc.push q ((2 * round) + 1);
    Alcotest.(check int) "pop even" (2 * round) (Spsc.pop q);
    Alcotest.(check int) "pop odd" ((2 * round) + 1) (Spsc.pop q)
  done;
  Alcotest.(check int) "empty" 0 (Spsc.length q)

(* A queue much smaller than the payload forces both the full-queue
   and the empty-queue backoff paths across a real domain boundary. *)
let test_spsc_cross_domain () =
  let n = 50_000 in
  let q = Spsc.create ~capacity:64 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Spsc.push q i
        done)
  in
  let ok = ref true in
  for i = 1 to n do
    if Spsc.pop q <> i then ok := false
  done;
  Domain.join producer;
  Alcotest.(check bool) "every element, in order" true !ok;
  Alcotest.(check bool) "empty after" true (Spsc.try_pop q = None)

(* Close-race exact delivery (regression): the producer's push used to
   re-check [closed] only while the ring was full, so a push racing a
   consumer-side close on a non-full ring could return normally yet
   publish an element no drain would ever see — the router then counts
   a pushed event its worker never processed. Now a push that returns
   normally is guaranteed visible to a closer's final drain (pop drains
   before raising Closed), so the consumer's tally can never fall short
   of the producer's success count; it can exceed it by at most the one
   in-flight push that raised after its publishing store. *)
let test_spsc_close_race_exact_delivery () =
  for _round = 1 to 50 do
    let q = Spsc.create ~capacity:4 in
    let producer =
      Domain.spawn (fun () ->
          let successes = ref 0 in
          (try
             while true do
               Spsc.push q !successes;
               incr successes
             done
           with Spsc.Closed -> ());
          !successes)
    in
    let consumed = ref 0 in
    (try
       (* A worker-style consumer: pop a while, then tear the stream
          down mid-flight and keep popping — [pop] drains what was
          published before raising [Closed]. *)
       while !consumed < 100 do
         ignore (Spsc.pop q);
         incr consumed
       done;
       Spsc.close q;
       while true do
         ignore (Spsc.pop q);
         incr consumed
       done
     with Spsc.Closed -> ());
    let successes = Domain.join producer in
    if !consumed < successes then
      Alcotest.failf "silent loss: producer delivered %d but consumer saw only %d" successes !consumed;
    if !consumed > successes + 1 then
      Alcotest.failf "over-delivery: producer delivered %d but consumer saw %d" successes !consumed
  done

(* ---------------------------------------------------------------- *)
(* Frame_ring: the batched transport                                 *)
(* ---------------------------------------------------------------- *)

(* One event of every constructor (plus each annotation), so the
   encoder/decoder pair is exercised over the whole Event.t surface. *)
let every_event =
  [
    Event.Store { addr = 40; size = 16; tid = 1 };
    Event.Clf { addr = 0; size = 64; kind = Event.Clwb; tid = 2 };
    Event.Clf { addr = 64; size = 64; kind = Event.Clflush; tid = 0 };
    Event.Clf { addr = 128; size = 64; kind = Event.Clflushopt; tid = 0 };
    Event.Fence { tid = 3 };
    Event.Register_pmem { base = 0; size = 4096 };
    Event.Epoch_begin { tid = 0 };
    Event.Epoch_end { tid = 0 };
    Event.Strand_begin { tid = 0; strand = 2 };
    Event.Strand_end { tid = 0; strand = 2 };
    Event.Join_strand { tid = 0 };
    Event.Tx_log { obj_addr = 96; size = 24; tid = 1 };
    Event.Register_var { name = "head_ptr"; addr = 8; size = 8 };
    Event.Register_var { name = ""; addr = 16; size = 8 };
    Event.Call { func = "persist_obj"; tid = 1 };
    Event.Annotation (Event.Assert_durable { addr = 0; size = 8 });
    Event.Annotation (Event.Assert_ordered { first_addr = 0; first_size = 8; then_addr = 8; then_size = 16 });
    Event.Annotation (Event.Assert_fresh { addr = 24; size = 8 });
    Event.Program_end;
  ]

let test_frame_roundtrip () =
  let ring = Frame_ring.create ~slots:4 ~frame_events:64 () in
  List.iteri (fun i ev -> ignore (Frame_ring.push ring ~seq:(i + 1) ~silent:(i land 1 = 0) ev)) every_event;
  Alcotest.(check int) "all staged below the threshold" (List.length every_event) (Frame_ring.staged ring);
  let n = Frame_ring.flush ring in
  Alcotest.(check int) "flush publishes the partial frame" (List.length every_event) n;
  let got = ref [] in
  (match Frame_ring.try_consume ring ~f:(fun ~seq ~silent ev -> got := (seq, silent, ev) :: !got) with
  | `Frame n' -> Alcotest.(check int) "consumed count" n n'
  | `Stop _ | `Empty -> Alcotest.fail "expected a plain frame");
  let expected = List.mapi (fun i ev -> (i + 1, i land 1 = 0, ev)) every_event in
  Alcotest.(check bool) "every constructor roundtrips with seq and silent bit" true (List.rev !got = expected)

let test_frame_boundary_and_stop_partial () =
  let ring = Frame_ring.create ~slots:4 ~frame_events:4 () in
  let published = ref [] in
  for i = 1 to 10 do
    let n = Frame_ring.push ring ~seq:i ~silent:false (Event.Fence { tid = i }) in
    if n > 0 then published := n :: !published
  done;
  Alcotest.(check (list int)) "publishes exactly at the frame boundary" [ 4; 4 ] (List.rev !published);
  Alcotest.(check int) "two events staged" 2 (Frame_ring.staged ring);
  Frame_ring.push_stop ring;
  Alcotest.(check int) "stop published the partial frame" 0 (Frame_ring.staged ring);
  let seqs = ref [] in
  let finished = ref false in
  while not !finished do
    match Frame_ring.try_consume ring ~f:(fun ~seq ~silent:_ _ -> seqs := seq :: !seqs) with
    | `Frame _ -> ()
    | `Stop n ->
        Alcotest.(check int) "stop frame carried the partial tail" 2 n;
        finished := true
    | `Empty -> Alcotest.fail "ring empty before the stop frame"
  done;
  Alcotest.(check (list int)) "every event exactly once, in order" (List.init 10 (fun i -> i + 1))
    (List.rev !seqs)

let test_frame_oversized_record_grows_slot () =
  (* A record bigger than the whole slot: the staging buffer must grow
     rather than truncate or loop. *)
  let ring = Frame_ring.create ~frame_bytes:32 ~slots:2 ~frame_events:8 () in
  let long = String.make 600 'x' in
  ignore (Frame_ring.push ring ~seq:1 ~silent:false (Event.Store { addr = 0; size = 8; tid = 0 }));
  ignore (Frame_ring.push ring ~seq:2 ~silent:false (Event.Register_var { name = long; addr = 0; size = 8 }));
  ignore (Frame_ring.flush ring);
  let got = ref [] in
  let rec drain () =
    match Frame_ring.try_consume ring ~f:(fun ~seq:_ ~silent:_ ev -> got := ev :: !got) with
    | `Frame _ | `Stop _ -> drain ()
    | `Empty -> ()
  in
  drain ();
  match List.rev !got with
  | [ Event.Store _; Event.Register_var { name; _ } ] ->
      Alcotest.(check string) "long name intact" long name
  | evs -> Alcotest.failf "expected store + register_var, got %d event(s)" (List.length evs)

(* A push that fills the frame by *bytes* (string-carrying records
   bigger than the per-event estimate) used to discard the published
   count, returning 0: in Shard_router's inline framed mode nothing
   consumed those frames — after [slots] of them the full-ring wait
   deadlocked the router — and in domain mode shard_events_total
   undercounted. Every published frame must be accounted in some
   push/flush return value. *)
let test_frame_byte_full_publish_counted () =
  (* 69-byte Call records against 140-byte slots: every frame fills by
     bytes after two events, far below the 256-event threshold. *)
  let ring = Frame_ring.create ~frame_bytes:140 ~slots:8 ~frame_events:256 () in
  let long = String.make 48 'f' in
  let n = 10 in
  let published = ref 0 in
  for i = 1 to n do
    published := !published + Frame_ring.push ring ~seq:i ~silent:false (Event.Call { func = long; tid = 0 })
  done;
  Alcotest.(check bool) "byte-full frames were published" true (Frame_ring.length ring > 0);
  published := !published + Frame_ring.flush ring;
  Alcotest.(check int) "every event accounted in a push/flush return" n !published;
  let seqs = ref [] in
  let rec drain () =
    match Frame_ring.try_consume ring ~f:(fun ~seq ~silent:_ _ -> seqs := seq :: !seqs) with
    | `Frame _ | `Stop _ -> drain ()
    | `Empty -> ()
  in
  drain ();
  Alcotest.(check (list int)) "every event exactly once, in order" (List.init n (fun i -> i + 1))
    (List.rev !seqs)

let test_frame_wraparound () =
  let ring = Frame_ring.create ~slots:2 ~frame_events:3 () in
  for round = 0 to 40 do
    for i = 0 to 2 do
      ignore (Frame_ring.push ring ~seq:((round * 3) + i) ~silent:false (Event.Fence { tid = i }))
    done;
    let got = ref [] in
    (match Frame_ring.try_consume ring ~f:(fun ~seq ~silent:_ _ -> got := seq :: !got) with
    | `Frame 3 -> ()
    | _ -> Alcotest.fail "expected a full frame each round");
    Alcotest.(check (list int)) "frame contents in order"
      [ round * 3; (round * 3) + 1; (round * 3) + 2 ]
      (List.rev !got)
  done

let test_frame_cross_domain () =
  let n = 50_000 in
  let ring = Frame_ring.create ~slots:4 ~frame_events:7 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          ignore (Frame_ring.push ring ~seq:i ~silent:false (Event.Fence { tid = i land 7 }))
        done;
        Frame_ring.push_stop ring)
  in
  let next = ref 1 in
  let ok = ref true in
  let total = ref 0 in
  let finished = ref false in
  while not !finished do
    match
      Frame_ring.consume ring ~f:(fun ~seq ~silent:_ _ ->
          if seq <> !next then ok := false;
          incr next;
          incr total)
    with
    | `Frame _ -> ()
    | `Stop _ -> finished := true
  done;
  Domain.join producer;
  Alcotest.(check bool) "every event, in order" true !ok;
  Alcotest.(check int) "exactly n events" n !total

(* ---------------------------------------------------------------- *)
(* Stage latency: the publish-stamp law and the disabled-path cost    *)
(* ---------------------------------------------------------------- *)

(* QCheck law pinned in frame_ring.mli: the publish stamps of
   successive frames of one ring are non-decreasing at the consumer —
   across slot wraparound, random flush points and a stop carrying a
   partial frame. Residency attribution (now - last_frame_ts) relies
   on it. Ops: 0 = flush, k > 0 = push k events. slots = 2 forces
   wraparound constantly; draining at each publish keeps the inline
   producer from blocking on a full ring. *)
let prop_pub_ts_nondecreasing =
  QCheck.Test.make ~name:"frame ring: publish stamps non-decreasing (wraparound, flush, partial stop)"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 4))
    (fun ops ->
      let ring = Frame_ring.create ~slots:2 ~frame_events:3 () in
      let last = ref 0.0 in
      let ok = ref true in
      let note () =
        let ts = Frame_ring.last_frame_ts ring in
        if ts < !last then ok := false;
        last := ts
      in
      let drain () =
        let continue = ref true in
        while !continue do
          match Frame_ring.try_consume ring ~f:(fun ~seq:_ ~silent:_ _ -> ()) with
          | `Frame _ -> note ()
          | `Stop _ ->
              note ();
              continue := false
          | `Empty -> continue := false
        done
      in
      List.iteri
        (fun i op ->
          if op = 0 then (if Frame_ring.flush ring > 0 then drain ())
          else
            for _ = 1 to op do
              if Frame_ring.push ring ~seq:i ~silent:false (Event.Fence { tid = i }) > 0 then drain ()
            done)
        ops;
      Frame_ring.push_stop ring;
      drain ();
      !ok)

(* The same law with the producer on a real domain: wall-clock stamps
   taken on one domain, read on another, still non-decreasing in
   consume order (the ring's FIFO + the publishing store's ordering). *)
let test_frame_pub_ts_cross_domain () =
  let n = 20_000 in
  let ring = Frame_ring.create ~slots:4 ~frame_events:7 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          ignore (Frame_ring.push ring ~seq:i ~silent:false (Event.Fence { tid = i land 7 }));
          if i mod 613 = 0 then ignore (Frame_ring.flush ring)
        done;
        Frame_ring.push_stop ring)
  in
  let last = ref 0.0 in
  let ok = ref true in
  let frames = ref 0 in
  let finished = ref false in
  while not !finished do
    (match Frame_ring.consume ring ~f:(fun ~seq:_ ~silent:_ _ -> ()) with
    | `Frame _ -> incr frames
    | `Stop _ -> finished := true);
    let ts = Frame_ring.last_frame_ts ring in
    if ts < !last then ok := false;
    last := ts
  done;
  Domain.join producer;
  Alcotest.(check bool) "stamps non-decreasing across domains" true !ok;
  Alcotest.(check bool) "saw many frames" true (!frames > 100)

(* Overhead guard for the stage-attribution path: with metrics
   disabled, routing through the framed transport pays one branch per
   frame and zero timing calls — an absolute bound on 200k events
   through a no-op worker catches an accidentally always-on path
   (10-100x), not CI noise. *)
let noop_worker _ =
  {
    Shard_router.w_event = (fun ~seq:_ ~silent:_ _ -> ());
    w_scan_store = (fun ~seq:_ ~tid:_ ~lo:_ ~hi:_ -> { Shard_router.so_overlapped = false; so_prior_seqs = [] });
    w_fire_store = (fun ~seq:_ ~addr:_ ~size:_ _ -> ());
    w_scan_clf = (fun ~seq:_ ~tid:_ ~lo:_ ~hi:_ -> { Shard_router.co_matched = 0; co_newly = 0; co_redundant = [] });
    w_fire_clf = (fun ~seq:_ ~addr:_ ~size:_ _ -> ());
    w_finish = (fun () -> Bug.empty_report "noop");
  }

let test_stage_latency_disabled_overhead () =
  let n = 200_000 in
  let sink = Shard_router.sink ~shards:2 ~domains:false ~frame_size:64 noop_worker in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    sink.Sink.on_event (Event.Store { addr = (i land 1023) * 8; size = 8; tid = 0 })
  done;
  ignore (sink.Sink.finish ());
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) (Printf.sprintf "200k framed events with metrics off in %.3fs < 2s" dt) true (dt < 2.0)

(* ---------------------------------------------------------------- *)
(* Engine.finish_all ordering (regression for the documented          *)
(* guarantee the shard merge relies on)                               *)
(* ---------------------------------------------------------------- *)

let mk_named name = Sink.make ~name ~on_event:(fun _ -> ()) ~finish:(fun () -> Bug.empty_report name)

let drive_engine e =
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.store_int e ~addr:0 42;
  Engine.clwb e ~addr:0;
  Engine.sfence e;
  Engine.program_end e

let test_finish_all_attach_order () =
  let e = Engine.create () in
  Engine.attach e (mk_named "first");
  Engine.attach e (Shard_router.sink ~shards:2 ~domains:false (fun _ -> D.worker (D.create ~walk_dedup:false ())));
  Engine.attach e (mk_named "last");
  drive_engine e;
  let names = List.map (fun r -> r.Bug.detector) (Engine.finish_all e) in
  Alcotest.(check (list string)) "one report per sink, in attach order" [ "first"; "pmdebugger"; "last" ] names

let test_finish_all_order_survives_quarantine () =
  let e = Engine.create () in
  Engine.attach e (mk_named "a");
  Engine.attach e (Sink.make ~name:"boom" ~on_event:(fun _ -> ()) ~finish:(fun () -> failwith "kaboom"));
  Engine.attach e (mk_named "z");
  drive_engine e;
  let reports = Engine.finish_all e in
  Alcotest.(check int) "still three reports" 3 (List.length reports);
  Alcotest.(check string) "first in place" "a" (List.nth reports 0).Bug.detector;
  Alcotest.(check string) "last in place" "z" (List.nth reports 2).Bug.detector;
  Alcotest.(check bool) "middle carries the failure" true ((List.nth reports 1).Bug.failure <> None)

(* ---------------------------------------------------------------- *)
(* prior_seqs across shard boundaries (cap of the union = smallest 8) *)
(* ---------------------------------------------------------------- *)

let test_merge_store_obs_cap () =
  let o1 = { Shard_router.so_overlapped = true; so_prior_seqs = [ 1; 3; 5; 7; 9; 11; 13; 15 ] } in
  let o2 = { Shard_router.so_overlapped = false; so_prior_seqs = [ 2; 4; 6; 8; 10; 12; 14; 16 ] } in
  let m = Shard_router.merge_store_obs [ o1; o2 ] in
  Alcotest.(check bool) "overlap ORs" true m.Shard_router.so_overlapped;
  Alcotest.(check (list int))
    "cap keeps the smallest max_prior_seqs of the union" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    m.Shard_router.so_prior_seqs;
  Alcotest.(check int) "the cap is 8" 8 Shard_router.max_prior_seqs;
  Alcotest.(check int) "backends share the constant" Shard_router.max_prior_seqs SI.max_prior_seqs

(* A store spanning two shards' cache lines with more prior stores than
   the cap: the merged chain must be the 8 smallest seqs of the union,
   exactly as a single-shard run reports. *)
let test_prior_seqs_span_two_shards () =
  let evs = ref [] in
  let emit e = evs := e :: !evs in
  emit (Event.Register_pmem { base = 0; size = 1024 });
  (* Twelve non-overlapping 4-byte stores: six on line 0, six on line 1
     (seqs 2..13), none durable. *)
  for i = 0 to 11 do
    emit (Event.Store { addr = 40 + (4 * i); size = 4; tid = 0 })
  done;
  (* Seq 14 overwrites all twelve across the line-0/line-1 boundary. *)
  emit (Event.Store { addr = 40; size = 48; tid = 0 });
  emit Event.Program_end;
  let trace = Array.of_list (List.rev !evs) in
  let single = replay_plain trace in
  let sharded = replay_sharded ~shards:2 trace in
  Alcotest.(check string) "reports identical" (canon single) (canon sharded);
  let mo =
    match List.find_opt (fun b -> b.Bug.kind = Bug.Multiple_overwrites) sharded.Bug.bugs with
    | Some b -> b
    | None -> Alcotest.fail "no multiple-overwrites finding"
  in
  Alcotest.(check int) "full range reported" 48 mo.Bug.size;
  let seqs =
    (* The chain's prior-store causes, without the trailing cause for
       the firing store itself. *)
    List.filter_map
      (fun c -> if c.Bug.c_class = "store" && c.Bug.c_seq <> mo.Bug.seq then Some c.Bug.c_seq else None)
      mo.Bug.chain
  in
  Alcotest.(check (list int)) "chain = 8 smallest priors of the union" [ 2; 3; 4; 5; 6; 7; 8; 9 ] seqs

(* ---------------------------------------------------------------- *)
(* merge_stats: union of keys (regression)                           *)
(* ---------------------------------------------------------------- *)

(* The merge used to map over shard 0's stat list only, silently
   dropping any key that first appears on a later shard (a backend
   counter that never tripped on shard 0's partition). *)
let mk_stat_worker stats shard =
  {
    Shard_router.w_event = (fun ~seq:_ ~silent:_ _ -> ());
    w_scan_store = (fun ~seq:_ ~tid:_ ~lo:_ ~hi:_ -> { Shard_router.so_overlapped = false; so_prior_seqs = [] });
    w_fire_store = (fun ~seq:_ ~addr:_ ~size:_ _ -> ());
    w_scan_clf = (fun ~seq:_ ~tid:_ ~lo:_ ~hi:_ -> { Shard_router.co_matched = 0; co_newly = 0; co_redundant = [] });
    w_fire_clf = (fun ~seq:_ ~addr:_ ~size:_ _ -> ());
    w_finish = (fun () -> { (Bug.empty_report "stats-worker") with Bug.stats = stats shard });
  }

let test_merge_stats_union () =
  let stats = function
    | 0 -> [ ("shared", 1.0); ("avg_everywhere", 4.0) ]
    | _ -> [ ("shared", 2.0); ("only_on_shard_1", 5.0); ("avg_only_on_shard_1", 7.0) ]
  in
  let report =
    Recorder.replay [| Event.Program_end |]
      (Shard_router.sink ~shards:2 ~domains:false (mk_stat_worker stats))
  in
  let get key =
    match List.assoc_opt key report.Bug.stats with
    | Some v -> v
    | None -> Alcotest.failf "stat %S missing from the merged report" key
  in
  Alcotest.(check (float 0.0)) "shared counters sum across shards" 3.0 (get "shared");
  Alcotest.(check (float 0.0)) "key present only on shard 1 survives the merge" 5.0 (get "only_on_shard_1");
  Alcotest.(check (float 0.0)) "avg_ key from the first shard carrying it" 7.0 (get "avg_only_on_shard_1");
  Alcotest.(check (float 0.0)) "avg_ key on shard 0 stays shard 0's" 4.0 (get "avg_everywhere");
  Alcotest.(check (list string)) "first-appearance key order"
    [ "shared"; "avg_everywhere"; "only_on_shard_1"; "avg_only_on_shard_1" ]
    (List.map fst report.Bug.stats)

(* ---------------------------------------------------------------- *)
(* Queue-depth gauge sampling (regression)                           *)
(* ---------------------------------------------------------------- *)

(* Sampling used to gate on the router's global event tick (every 64th
   event, nothing before event 64): a short run with real domains ended
   with no depth series at all. Now each shard samples on its own push
   cadence plus a final pre-stop sample, so even a tiny run records a
   peak for every shard that saw traffic. *)
let test_depth_gauge_on_small_runs () =
  List.iter
    (fun frame_size ->
      let reg = Obs.Metrics.create () in
      let evs = ref [ Event.Register_pmem { base = 0; size = 512 } ] in
      for i = 1 to 10 do
        evs := Event.Store { addr = (i mod 2 * 64) + 8; size = 8; tid = 0 } :: !evs
      done;
      evs := Event.Program_end :: !evs;
      let trace = Array.of_list (List.rev !evs) in
      ignore
        (Recorder.replay trace
           (Shard_router.sink ~shards:2 ~frame_size ~metrics:reg (fun _ ->
                D.worker (D.create ~walk_dedup:false ()))));
      let snap = Obs.Metrics.snapshot reg in
      List.iter
        (fun shard ->
          if Obs.Metrics.find snap ~labels:[ ("shard", shard) ] "shard_queue_depth_peak" = None then
            Alcotest.failf "no depth peak for shard %s under frame_size %d (<64 events routed)" shard
              frame_size)
        [ "0"; "1" ])
    [ 0; Shard_router.default_frame_size ]

(* ---------------------------------------------------------------- *)
(* QCheck parity: random traces, sharded vs single                   *)
(* ---------------------------------------------------------------- *)

let lines = 8
let region = lines * 64

(* Random but contract-respecting traces: Register_pmem first, then
   optional Register_var pins (before any store), then a mix of
   (possibly line-crossing) stores, line-granular CLFs, fences, epoch
   and strand markers, tx-log appends and call markers. Small address
   space so line collisions, overwrites and cross-shard ranges are
   common. *)
let trace_of (vars, ops) =
  let evs = ref [] in
  let emit e = evs := e :: !evs in
  emit (Event.Register_pmem { base = 0; size = region });
  List.iter
    (fun (line, wide) ->
      let line = line mod lines in
      let size = if wide then 80 else 16 in
      let size = min size (region - (line * 64) - 8) in
      if size > 0 then emit (Event.Register_var { name = "v"; addr = (line * 64) + 8; size }))
    vars;
  let strand = ref 0 in
  List.iter
    (fun (op, (a, s)) ->
      match op with
      | 0 | 1 | 2 | 3 ->
          let addr = a land lnot 7 in
          let size = min (8 * s) (region - addr) in
          if size > 0 then emit (Event.Store { addr; size; tid = 0 })
      | 4 | 5 ->
          let addr = a / 64 * 64 in
          let size = min (if s > 2 then 128 else 64) (region - addr) in
          emit (Event.Clf { addr; size; kind = Event.Clwb; tid = 0 })
      | 6 -> emit (Event.Fence { tid = 0 })
      | 7 -> emit (if s land 1 = 0 then Event.Epoch_begin { tid = 0 } else Event.Epoch_end { tid = 0 })
      | 8 ->
          if s land 1 = 0 then begin
            incr strand;
            emit (Event.Strand_begin { tid = 0; strand = !strand land 3 })
          end
          else emit (Event.Join_strand { tid = 0 })
      | 9 -> emit (Event.Tx_log { obj_addr = a land lnot 7; size = 8; tid = 0 })
      | _ ->
          (* Alternate short and long names so framed transports hit the
             byte-full publish path (a frame that runs out of slot bytes
             before the event-count threshold) — a long-record stream
             used to wedge the router. *)
          let func = if s land 1 = 0 then "persist_obj" else String.make 60 'p' in
          emit (Event.Call { func; tid = 0 })
    )
    ops;
  emit Event.Program_end;
  Array.of_list (List.rev !evs)

let gen_trace =
  QCheck.(
    pair
      (list_of_size Gen.(0 -- 2) (pair (int_range 0 (lines - 1)) bool))
      (list_of_size Gen.(0 -- 60) (pair (int_range 0 10) (pair (int_range 0 (region - 1)) (int_range 1 4)))))

(* Crash-image findings (cross-failure) are vacuously equal here: the
   rule needs a live PM state, which neither the plain nor the sharded
   replay has — so the byte-identical report comparison covers every
   rule that can fire on a replayed trace. *)
let parity_prop ?mode ?(model = D.Strict) ~shards input =
  let trace = trace_of input in
  let expected = canon (replay_plain ?mode ~model trace) in
  canon (replay_sharded ?mode ~model ~shards trace) = expected

let prop_parity_modes =
  QCheck.Test.make ~name:"sharded report equals single run (3 modes x 2/4/8 shards, strict)" ~count:30 gen_trace
    (fun input ->
      List.for_all
        (fun mode ->
          List.for_all
            (fun shards -> parity_prop ~mode ~shards input)
            [ 2; 4; 8 ])
        [ Pmdebugger.Space.Hybrid; Pmdebugger.Space.Array_only; Pmdebugger.Space.Tree_only ])

let prop_parity_relaxed_models =
  QCheck.Test.make ~name:"sharded report equals single run (epoch and strand models)" ~count:25 gen_trace
    (fun input ->
      List.for_all (fun model -> List.for_all (fun shards -> parity_prop ~model ~shards input) [ 2; 4 ])
        [ D.Epoch; D.Strand ])

let prop_parity_domains =
  QCheck.Test.make ~name:"sharded report equals single run (real domains)" ~count:6 gen_trace (fun input ->
      let trace = trace_of input in
      let expected = canon (replay_plain trace) in
      canon (Recorder.replay trace (Shard_router.sink ~shards:2 (fun _ -> D.worker (D.create ~walk_dedup:false ())))) = expected)

(* Frame-transport parity: the batched hand-off must stay byte-identical
   to the per-event transport and the single-shard run for every frame
   size — including fs 1 (a frame per event) and fs 4096 (the whole
   trace staged until a barrier or finish flushes it). fs 0 is the
   per-event transport itself, pinning the two transports to the same
   contract. *)
let prop_parity_frame_sizes =
  QCheck.Test.make ~name:"framed transport parity (frame sizes 0/1/7/64/4096 x 2/4/8 shards)" ~count:15
    gen_trace (fun input ->
      let trace = trace_of input in
      let expected = canon (replay_plain trace) in
      List.for_all
        (fun frame_size ->
          List.for_all
            (fun shards -> canon (replay_sharded ~frame_size ~shards trace) = expected)
            [ 2; 4; 8 ])
        [ 0; 1; 7; 64; 4096 ])

let prop_parity_frames_domains =
  QCheck.Test.make ~name:"framed transport parity (real domains, frame sizes 7 and 4096)" ~count:4 gen_trace
    (fun input ->
      let trace = trace_of input in
      let expected = canon (replay_plain trace) in
      List.for_all
        (fun frame_size -> canon (replay_sharded ~domains:true ~frame_size ~shards:2 trace) = expected)
        [ 7; 4096 ])

(* Deterministic frame-boundary edge case: a cross-shard store arrives
   while both shards hold partially staged frames. The barrier must
   flush them before scanning (inline and with real domains), or the
   scans would run against workers that have not seen the preceding
   stores — and with domains the drain would spin on staged events no
   worker can see. *)
let test_barrier_mid_frame () =
  let trace =
    [|
      Event.Register_pmem { base = 0; size = region };
      Event.Store { addr = 0; size = 8; tid = 0 };
      Event.Store { addr = 64; size = 8; tid = 0 };
      Event.Store { addr = 56; size = 16; tid = 0 };
      Event.Clf { addr = 0; size = 128; kind = Event.Clwb; tid = 0 };
      Event.Fence { tid = 0 };
      Event.Program_end;
    |]
  in
  let expected = canon (replay_plain trace) in
  List.iter
    (fun domains ->
      Alcotest.(check string) "report survives a mid-frame barrier" expected
        (canon (replay_sharded ~domains ~frame_size:4096 ~shards:2 trace)))
    [ false; true ]

(* Router-level regression for the byte-full publish bug: long Call
   names make every frame fill by bytes (81-byte records, frame_size 16
   → 704-byte slots → byte-full at 8 events) while the event-count
   threshold is never reached. The router used to learn nothing about
   these frames (push returned 0): inline mode hung forever once the
   ring's [slots] (4 here) filled, and shard_events_total missed their
   event counts. *)
let test_framed_byte_full_inline () =
  let reg = Obs.Metrics.create () in
  let long = String.make 60 'f' in
  let evs = ref [ Event.Register_pmem { base = 0; size = region } ] in
  for i = 1 to 200 do
    evs := Event.Call { func = long; tid = i land 3 } :: !evs
  done;
  evs := Event.Store { addr = 8; size = 8; tid = 0 } :: !evs;
  evs := Event.Program_end :: !evs;
  let trace = Array.of_list (List.rev !evs) in
  let expected = canon (replay_plain trace) in
  let got =
    Recorder.replay trace
      (Shard_router.sink ~shards:2 ~domains:false ~frame_size:16 ~queue_capacity:64 ~metrics:reg
         (fun _ -> D.worker (D.create ~walk_dedup:false ())))
  in
  Alcotest.(check string) "report identical to the single run" expected (canon got);
  (* Shard 0 sees every event: 202 broadcasts (Register_pmem, 200
     Calls, Program_end), the line-0 store, and the finish-time
     Program_end broadcast — 204 total; shard 1 sees the 203
     broadcasts. Exactness requires byte-full frames to be counted. *)
  let snap = Obs.Metrics.snapshot reg in
  let total shard = Obs.Metrics.counter_value snap ~labels:[ ("shard", shard) ] "shard_events_total" in
  Alcotest.(check int) "shard 0 total exact" 204 (total "0");
  Alcotest.(check int) "shard 1 total exact" 203 (total "1")

let prop_flat_backend_equivalent =
  QCheck.Test.make ~name:"flat backend produces the hybrid backend's findings" ~count:40 gen_trace (fun input ->
      let trace = trace_of input in
      canon (replay_plain ~backend:(Pmdebugger.Flat_store.backend ()) trace) = canon (replay_plain trace))

(* ---------------------------------------------------------------- *)
(* Flat baseline backend semantics                                   *)
(* ---------------------------------------------------------------- *)

module F = Pmdebugger.Flat_store.Store

let test_flat_lifecycle () =
  let f = Pmdebugger.Flat_store.create () in
  ignore (F.process_store f ~addr:100 ~size:8 ~epoch:false ~seq:1 ~tid:0 ~strand:(-1) ());
  Alcotest.(check int) "tracked" 1 (F.pending_count f);
  let r = F.process_clf f ~lo:64 ~hi:128 in
  Alcotest.(check int) "matched" 1 r.SI.matched;
  Alcotest.(check int) "newly flushed" 1 r.SI.newly_flushed;
  F.process_fence f;
  Alcotest.(check int) "fence drains flushed" 0 (F.pending_count f)

let test_flat_partial_clf_splits () =
  let f = Pmdebugger.Flat_store.create () in
  (* One store straddling the flush boundary: the covered half persists,
     the remainder stays tracked unflushed. *)
  ignore (F.process_store f ~addr:60 ~size:8 ~epoch:false ~seq:1 ~tid:0 ~strand:(-1) ());
  ignore (F.process_clf f ~lo:0 ~hi:64);
  F.process_fence f;
  let remaining = ref [] in
  F.iter_pending f (fun ~addr ~size ~flushed ~epoch:_ ~seq:_ ~clf_seq:_ ~fence_seq:_ ->
      remaining := (addr, size, flushed) :: !remaining);
  Alcotest.(check (list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.bool)))
    "unflushed remainder survives" [ (64, 4, false) ] !remaining

let test_flat_overwrite_priors () =
  let f = Pmdebugger.Flat_store.create () in
  for i = 0 to 9 do
    ignore (F.process_store f ~addr:(8 * i) ~size:8 ~epoch:false ~seq:(i + 1) ~tid:0 ~strand:(-1) ())
  done;
  let r = F.process_store f ~check_overlap:true ~addr:0 ~size:80 ~epoch:false ~seq:11 ~tid:0 ~strand:(-1) () in
  Alcotest.(check bool) "overlap seen" true r.SI.overlapped;
  Alcotest.(check (list int)) "priors sorted, capped at 8" [ 1; 2; 3; 4; 5; 6; 7; 8 ] r.SI.prior_seqs

(* ---------------------------------------------------------------- *)
(* Diff: opt-in gauge gating                                         *)
(* ---------------------------------------------------------------- *)

let snap setup =
  let m = Obs.Metrics.create () in
  setup m;
  Obs.Metrics.snapshot m

let test_diff_gauge_gating () =
  let before = snap (fun m -> Obs.Metrics.set m "shard_queue_depth_peak" 10.0) in
  let after = snap (fun m -> Obs.Metrics.set m "shard_queue_depth_peak" 30.0) in
  let d = Obs.Diff.compute ~before ~after in
  Alcotest.(check int) "gauges never gate by default" 0 (List.length (Obs.Diff.regressions d));
  Alcotest.(check int) "grown gauge gates when opted in" 1
    (List.length (Obs.Diff.regressions ~gauge_threshold:0.5 d));
  (* (30 - 10) / 10 = 2.0 relative growth: below a looser threshold. *)
  Alcotest.(check int) "tolerated below its own threshold" 0
    (List.length (Obs.Diff.regressions ~gauge_threshold:3.0 d))

let test_diff_gauge_added () =
  let before = snap (fun _ -> ()) in
  let after = snap (fun m -> Obs.Metrics.set m "g" 5.0) in
  let d = Obs.Diff.compute ~before ~after in
  Alcotest.(check int) "added gauge ignored by default" 0 (List.length (Obs.Diff.regressions d));
  Alcotest.(check int) "added positive gauge gates when opted in" 1
    (List.length (Obs.Diff.regressions ~gauge_threshold:0.1 d))

let suite =
  [
    Alcotest.test_case "spsc: fifo and capacity" `Quick test_spsc_fifo;
    Alcotest.test_case "spsc: ring wraparound" `Quick test_spsc_wraparound;
    Alcotest.test_case "spsc: cross-domain ordering" `Quick test_spsc_cross_domain;
    Alcotest.test_case "spsc: close race loses nothing" `Quick test_spsc_close_race_exact_delivery;
    Alcotest.test_case "frame ring: all constructors roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame ring: boundary publish and stop with partial frame" `Quick
      test_frame_boundary_and_stop_partial;
    Alcotest.test_case "frame ring: oversized record grows the slot" `Quick
      test_frame_oversized_record_grows_slot;
    Alcotest.test_case "frame ring: byte-full publishes are counted" `Quick
      test_frame_byte_full_publish_counted;
    Alcotest.test_case "frame ring: wraparound" `Quick test_frame_wraparound;
    Alcotest.test_case "framed routing: byte-full frames inline" `Quick test_framed_byte_full_inline;
    Alcotest.test_case "frame ring: cross-domain ordering" `Quick test_frame_cross_domain;
    QCheck_alcotest.to_alcotest prop_pub_ts_nondecreasing;
    Alcotest.test_case "frame ring: publish stamps across domains" `Quick test_frame_pub_ts_cross_domain;
    Alcotest.test_case "stage latency: disabled path overhead" `Quick test_stage_latency_disabled_overhead;
    Alcotest.test_case "finish_all: reports in attach order" `Quick test_finish_all_attach_order;
    Alcotest.test_case "finish_all: order survives quarantine" `Quick test_finish_all_order_survives_quarantine;
    Alcotest.test_case "merge_store_obs: cap of union" `Quick test_merge_store_obs_cap;
    Alcotest.test_case "prior seqs across a shard boundary" `Quick test_prior_seqs_span_two_shards;
    Alcotest.test_case "merge_stats: union of keys" `Quick test_merge_stats_union;
    Alcotest.test_case "depth gauge sampled on small runs" `Quick test_depth_gauge_on_small_runs;
    Alcotest.test_case "barrier with partial frames staged" `Quick test_barrier_mid_frame;
    QCheck_alcotest.to_alcotest prop_parity_modes;
    QCheck_alcotest.to_alcotest prop_parity_relaxed_models;
    QCheck_alcotest.to_alcotest prop_parity_domains;
    QCheck_alcotest.to_alcotest prop_parity_frame_sizes;
    QCheck_alcotest.to_alcotest prop_parity_frames_domains;
    QCheck_alcotest.to_alcotest prop_flat_backend_equivalent;
    Alcotest.test_case "flat store: lifecycle" `Quick test_flat_lifecycle;
    Alcotest.test_case "flat store: partial CLF splits" `Quick test_flat_partial_clf_splits;
    Alcotest.test_case "flat store: overwrite priors" `Quick test_flat_overwrite_priors;
    Alcotest.test_case "diff: gauge gating opt-in" `Quick test_diff_gauge_gating;
    Alcotest.test_case "diff: added gauge" `Quick test_diff_gauge_added;
  ]
