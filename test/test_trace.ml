open Pmtrace

let test_engine_pm_coupling () =
  let e = Engine.create () in
  Engine.store_i64 e ~addr:100 7L;
  Alcotest.(check int64) "load sees store" 7L (Engine.load_i64 e ~addr:100);
  Alcotest.(check int64) "not durable yet" 0L (Pmem.Image.get_i64 (Pmem.State.durable (Engine.pm e)) 100);
  Engine.persist e ~addr:100 ~size:8;
  Alcotest.(check int64) "durable after persist" 7L (Pmem.Image.get_i64 (Pmem.State.durable (Engine.pm e)) 100)

let test_event_counters () =
  let e = Engine.create () in
  Engine.store_i64 e ~addr:0 1L;
  Engine.store_i64 e ~addr:64 2L;
  Engine.flush_range e ~addr:0 ~size:128;
  Engine.sfence e;
  Alcotest.(check int) "stores" 2 (Engine.n_stores e);
  Alcotest.(check int) "clfs cover two lines" 2 (Engine.n_clfs e);
  Alcotest.(check int) "fences" 1 (Engine.n_fences e)

let test_instrumentation_toggle () =
  let e = Engine.create () in
  let seen = ref 0 in
  Engine.attach e
    (Sink.make ~name:"c" ~on_event:(fun _ -> incr seen) ~finish:(fun () -> Bug.empty_report "c"));
  Engine.store_i64 e ~addr:0 1L;
  Engine.set_instrumentation e false;
  Engine.store_i64 e ~addr:8 2L;
  Engine.set_instrumentation e true;
  Engine.store_i64 e ~addr:16 3L;
  Alcotest.(check int) "only instrumented events dispatched" 2 !seen;
  (* PM semantics apply regardless of instrumentation. *)
  Alcotest.(check int64) "uninstrumented store still lands" 2L (Engine.load_i64 e ~addr:8)

let test_multiple_sinks () =
  let e = Engine.create () in
  let a = ref 0 and b = ref 0 in
  Engine.attach e (Sink.make ~name:"a" ~on_event:(fun _ -> incr a) ~finish:(fun () -> Bug.empty_report "a"));
  Engine.attach e (Sink.make ~name:"b" ~on_event:(fun _ -> incr b) ~finish:(fun () -> Bug.empty_report "b"));
  Engine.store_i64 e ~addr:0 1L;
  Alcotest.(check int) "both sinks see events" !a !b

let test_record_replay_equivalence () =
  let program e =
    Engine.register_pmem e ~base:0 ~size:4096;
    Engine.store_i64 e ~addr:128 1L;
    Engine.clwb e ~addr:128;
    Engine.clwb e ~addr:128;
    Engine.sfence e;
    Engine.store_i64 e ~addr:256 2L;
    Engine.program_end e
  in
  (* Live detection... *)
  let e = Engine.create () in
  let live = Pmdebugger.Detector.create () in
  Engine.attach e (Pmdebugger.Detector.sink live);
  program e;
  let live_report = Pmdebugger.Detector.report live in
  (* ...must equal replayed detection. *)
  let trace = Recorder.record program in
  let replayed = Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) in
  let summary (r : Bug.report) = List.map (fun (b : Bug.t) -> (Bug.kind_name b.Bug.kind, b.Bug.addr)) r.Bug.bugs in
  Alcotest.(check (list (pair string int))) "live = replay" (summary live_report) (summary replayed)

let test_interleave_round_robin () =
  let t1 = [| Event.Fence { tid = 1 }; Event.Fence { tid = 1 } |] in
  let t2 = [| Event.Fence { tid = 2 } |] in
  let merged = Recorder.interleave_round_robin [ t1; t2 ] in
  Alcotest.(check int) "all events kept" 3 (Array.length merged);
  Alcotest.(check int) "starts with t1" 1 (Event.tid merged.(0));
  Alcotest.(check int) "then t2" 2 (Event.tid merged.(1));
  Alcotest.(check int) "then t1 remainder" 1 (Event.tid merged.(2))

let test_trace_stats () =
  let trace = Recorder.record (fun e ->
      Engine.store_i64 e ~addr:0 1L;
      Engine.persist e ~addr:0 ~size:8)
  in
  let stats = Recorder.stats trace in
  Alcotest.(check int) "stores" 1 (List.assoc "stores" stats);
  Alcotest.(check int) "clfs" 1 (List.assoc "clfs" stats);
  Alcotest.(check int) "fences" 1 (List.assoc "fences" stats)

let test_order_config_parse () =
  let module OC = Pmdebugger.Order_config in
  (match OC.parse "# comment\norder data before valid\nstrand-order A before B\norder x before y at commit\n" with
  | Ok cfg ->
      Alcotest.(check int) "three entries" 3 (List.length (OC.entries cfg));
      let roundtrip = OC.parse_exn (OC.to_string cfg) in
      Alcotest.(check bool) "roundtrip" true (OC.entries roundtrip = OC.entries cfg)
  | Error msg -> Alcotest.fail msg);
  match OC.parse "order broken line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_bug_report_helpers () =
  let bugs = [ Bug.make ~addr:1 Bug.No_durability; Bug.make ~addr:2 Bug.No_durability; Bug.make Bug.Redundant_flush ] in
  let r = { Bug.detector = "x"; bugs; events_processed = 10; stats = []; failure = None } in
  Alcotest.(check int) "count_kind" 2 (Bug.count_kind r Bug.No_durability);
  Alcotest.(check bool) "has_kind" true (Bug.has_kind r Bug.Redundant_flush);
  Alcotest.(check int) "kinds_found" 2 (List.length (Bug.kinds_found r));
  Alcotest.(check int) "ten kinds total" 10 (List.length Bug.all_kinds)

(* ------------------------------------------------------------------ *)
(* Sink quarantine.                                                    *)
(* ------------------------------------------------------------------ *)

let counting_sink name seen =
  Sink.make ~name
    ~on_event:(fun _ -> incr seen)
    ~finish:(fun () -> { (Bug.empty_report name) with Bug.events_processed = !seen })

let bomb_sink name ~after =
  let seen = ref 0 in
  Sink.make ~name
    ~on_event:(fun _ ->
      incr seen;
      if !seen > after then failwith (name ^ " exploded"))
    ~finish:(fun () -> Bug.empty_report name)

let test_sink_quarantine_isolates_failure () =
  let e = Engine.create () in
  let a = ref 0 and b = ref 0 in
  Engine.attach e (counting_sink "a" a);
  Engine.attach e (bomb_sink "bomb" ~after:1);
  Engine.attach e (counting_sink "b" b);
  for i = 0 to 4 do
    Engine.store_i64 e ~addr:(i * 8) 1L
  done;
  (* Siblings keep receiving every event after the bomb goes off... *)
  Alcotest.(check int) "sink a saw all events" 5 !a;
  Alcotest.(check int) "sink b saw all events" 5 !b;
  (* ...and the failed sink is reported, not re-dispatched. *)
  (match Engine.quarantined e with
  | [ (name, msg) ] ->
      Alcotest.(check string) "quarantined sink" "bomb" name;
      let contains hay needle =
        let n = String.length needle in
        let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "exception text kept" true (contains msg "exploded")
  | q -> Alcotest.fail (Printf.sprintf "expected one quarantined sink, got %d" (List.length q)));
  let reports = Engine.finish_all e in
  Alcotest.(check int) "all sinks reported" 3 (List.length reports);
  List.iter
    (fun (r : Bug.report) ->
      if r.Bug.detector = "bomb" then
        Alcotest.(check bool) "bomb report carries the failure" true (r.Bug.failure <> None)
      else begin
        Alcotest.(check (option string)) (r.Bug.detector ^ " unaffected") None r.Bug.failure;
        Alcotest.(check int) (r.Bug.detector ^ " complete") 5 r.Bug.events_processed
      end)
    reports

let test_sink_quarantine_on_finish () =
  let e = Engine.create () in
  let ok = ref 0 in
  Engine.attach e
    (Sink.make ~name:"bad-finish" ~on_event:(fun _ -> ()) ~finish:(fun () -> failwith "finish failed"));
  Engine.attach e (counting_sink "ok" ok);
  Engine.store_i64 e ~addr:0 1L;
  let reports = Engine.finish_all e in
  Alcotest.(check int) "both reports present" 2 (List.length reports);
  let bad = List.find (fun (r : Bug.report) -> r.Bug.detector = "bad-finish") reports in
  Alcotest.(check bool) "finish failure recorded" true (bad.Bug.failure <> None);
  let good = List.find (fun (r : Bug.report) -> r.Bug.detector = "ok") reports in
  Alcotest.(check int) "sibling report complete" 1 good.Bug.events_processed

let test_quarantined_sink_receives_no_more_events () =
  let e = Engine.create () in
  let calls = ref 0 in
  Engine.attach e
    (Sink.make ~name:"once"
       ~on_event:(fun _ ->
         incr calls;
         failwith "boom")
       ~finish:(fun () -> Bug.empty_report "once"));
  Engine.store_i64 e ~addr:0 1L;
  Engine.store_i64 e ~addr:8 1L;
  Engine.store_i64 e ~addr:16 1L;
  Alcotest.(check int) "dispatch stops after first raise" 1 !calls

let test_attach_many_sinks () =
  (* attach used to be a quadratic list append; make sure order is still
     first-attached-first and a large number of sinks behaves. *)
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 99 do
    Engine.attach e
      (Sink.make
         ~name:(string_of_int i)
         ~on_event:(fun _ -> order := i :: !order)
         ~finish:(fun () -> Bug.empty_report (string_of_int i)))
  done;
  Engine.store_i64 e ~addr:0 1L;
  Alcotest.(check int) "all sinks dispatched" 100 (List.length !order);
  Alcotest.(check (list int)) "dispatch order is attach order" (List.init 100 Fun.id) (List.rev !order);
  Alcotest.(check int) "sinks listed" 100 (List.length (Engine.sinks e))

let suite =
  [
    Alcotest.test_case "engine/pm coupling" `Quick test_engine_pm_coupling;
    Alcotest.test_case "event counters" `Quick test_event_counters;
    Alcotest.test_case "instrumentation toggle" `Quick test_instrumentation_toggle;
    Alcotest.test_case "multiple sinks" `Quick test_multiple_sinks;
    Alcotest.test_case "record/replay equivalence" `Quick test_record_replay_equivalence;
    Alcotest.test_case "interleave round robin" `Quick test_interleave_round_robin;
    Alcotest.test_case "trace stats" `Quick test_trace_stats;
    Alcotest.test_case "order config parsing" `Quick test_order_config_parse;
    Alcotest.test_case "bug report helpers" `Quick test_bug_report_helpers;
    Alcotest.test_case "quarantine isolates a raising sink" `Quick test_sink_quarantine_isolates_failure;
    Alcotest.test_case "quarantine catches finish failures" `Quick test_sink_quarantine_on_finish;
    Alcotest.test_case "quarantined sink gets no more events" `Quick test_quarantined_sink_receives_no_more_events;
    Alcotest.test_case "attach many sinks" `Quick test_attach_many_sinks;
  ]
