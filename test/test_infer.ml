open Pmtrace

let magic = 0xC0FFEEL

let record = Recorder.record

(* flag persisted before the data it guards — two lines, one ordering
   pair, everything durable by program end. *)
let flag_before_data e =
  Engine.register_pmem e ~base:0 ~size:4096;
  Engine.store_i64 e ~addr:0 1L;
  Engine.persist e ~addr:0 ~size:8;
  Engine.store_i64 e ~addr:64 magic;
  Engine.persist e ~addr:64 ~size:8;
  Engine.program_end e

(* Alternating backup/counter commit rounds with one planted round that
   runs the counter ahead — the bench trace in miniature. *)
let rounds_trace ?(rounds = 8) ?(planted = [ 4 ]) () e =
  Engine.register_pmem e ~base:0 ~size:4096;
  for r = 1 to rounds do
    let v = Int64.of_int r in
    let commit ~addr =
      Engine.store_i64 e ~addr v;
      Engine.persist e ~addr ~size:8
    in
    if List.mem r planted then begin
      commit ~addr:64;
      commit ~addr:0
    end
    else begin
      commit ~addr:0;
      commit ~addr:64
    end
  done;
  Engine.program_end e

let find_ordering ~first ~then_ (rep : Infer.Invariant.report) =
  List.find_opt
    (fun (i : Infer.Invariant.t) ->
      match i.Infer.Invariant.kind with
      | Infer.Invariant.Ordering { first_line; then_line } -> first_line = first && then_line = then_
      | _ -> false)
    rep.Infer.Invariant.invariants

let find_durability ~line (rep : Infer.Invariant.report) =
  List.find_opt
    (fun (i : Infer.Invariant.t) ->
      match i.Infer.Invariant.kind with
      | Infer.Invariant.Durability { line = l } -> l = line
      | _ -> false)
    rep.Infer.Invariant.invariants

let test_templates_on_guarded_pair () =
  let rep = Infer.Analyze.infer (record flag_before_data) in
  Alcotest.(check int) "stores counted" 2 rep.Infer.Invariant.stores;
  Alcotest.(check int) "fences counted" 2 rep.Infer.Invariant.fences;
  (match find_durability ~line:0 rep with
  | Some i ->
      Alcotest.(check int) "flag line: one completed episode" 1 i.Infer.Invariant.support;
      Alcotest.(check (float 1e-9)) "flag line durable" 1.0 (Infer.Invariant.confidence i)
  | None -> Alcotest.fail "expected a durability invariant for line 0");
  (match find_ordering ~first:0 ~then_:1 rep with
  | Some i ->
      Alcotest.(check int) "flag-before-data supported once" 1 i.Infer.Invariant.support;
      Alcotest.(check int) "never contradicted" 0 i.Infer.Invariant.violations
  | None -> Alcotest.fail "expected ordering line0 -> line1");
  Alcotest.(check bool) "no reverse pair from a single run" true (find_ordering ~first:1 ~then_:0 rep = None)

let test_durability_violation_at_end () =
  let rep =
    Infer.Analyze.infer
      (record (fun e ->
           Engine.register_pmem e ~base:0 ~size:4096;
           Engine.store_i64 e ~addr:0 1L;
           Engine.persist e ~addr:0 ~size:8;
           Engine.store_i64 e ~addr:0 2L;
           Engine.program_end e))
  in
  match find_durability ~line:0 rep with
  | Some i ->
      Alcotest.(check int) "one completed episode" 1 i.Infer.Invariant.support;
      Alcotest.(check int) "dirty at end is a violation" 1 i.Infer.Invariant.violations;
      Alcotest.(check (float 1e-9)) "confidence halves" 0.5 (Infer.Invariant.confidence i)
  | None -> Alcotest.fail "expected a durability invariant"

let test_stale_guard_votes_against () =
  (* The planted round stores the counter while the backup's persist is
     stale (the counter's own persist is fresher): that store must count
     against backup-before-counter, not for it. *)
  let rep = Infer.Analyze.infer (record (rounds_trace ())) in
  match find_ordering ~first:0 ~then_:1 rep with
  | Some i ->
      Alcotest.(check int) "correct rounds support the pair" 7 i.Infer.Invariant.support;
      Alcotest.(check int) "planted round votes against" 1 i.Infer.Invariant.violations
  | None -> Alcotest.fail "expected ordering line0 -> line1"

let test_atomicity_groups () =
  let rep =
    Infer.Analyze.infer
      (record (fun e ->
           Engine.register_pmem e ~base:0 ~size:4096;
           Engine.register_var e ~name:"pair" ~addr:0 ~size:128;
           Engine.store_i64 e ~addr:0 1L;
           Engine.store_i64 e ~addr:64 2L;
           Engine.flush_range e ~addr:0 ~size:128;
           Engine.sfence e;
           (* A second interval touching only half the group violates it. *)
           Engine.store_i64 e ~addr:0 3L;
           Engine.persist e ~addr:0 ~size:8;
           Engine.program_end e))
  in
  let atom =
    List.find_opt
      (fun (i : Infer.Invariant.t) ->
        match i.Infer.Invariant.kind with
        | Infer.Invariant.Atomicity { lines; origin } -> lines = [ 0; 1 ] && origin = "var"
        | _ -> false)
      rep.Infer.Invariant.invariants
  in
  match atom with
  | Some i ->
      Alcotest.(check int) "full-group interval supports" 1 i.Infer.Invariant.support;
      Alcotest.(check int) "partial interval violates" 1 i.Infer.Invariant.violations
  | None -> Alcotest.fail "expected a var-origin atomicity group over lines 0,1"

let test_json_roundtrip () =
  let rep = Infer.Analyze.infer (record (rounds_trace ())) in
  let json = Infer.Invariant.to_json rep in
  (match Infer.Invariant.validate_json json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("self-produced report must validate: " ^ msg));
  (match Infer.Invariant.of_json json with
  | Ok back ->
      Alcotest.(check bool) "round-trip preserves the report" true (back = rep)
  | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg));
  match Infer.Invariant.of_json (Obs.Json.Obj [ ("schema", Obs.Json.Str "bogus/v1") ]) with
  | Ok _ -> Alcotest.fail "wrong schema must be rejected"
  | Error _ -> ()

let test_risk_ranks_planted_round () =
  let trace = record (rounds_trace ~rounds:8 ~planted:[ 4 ] ()) in
  let rep = Infer.Analyze.infer trace in
  let scores = Infer.Risk.scores rep trace in
  Alcotest.(check int) "one score per event" (Array.length trace) (Array.length scores);
  (* Each round is 6 events after the Register_pmem: the planted round
     (4) leads with its counter store; a correct round (6) stores the
     counter third. The violation-in-progress window must rank the
     planted one strictly higher. *)
  let round_start r = 1 + ((r - 1) * 6) in
  let planted = round_start 4 and correct = round_start 6 + 3 in
  (match (trace.(planted), trace.(correct)) with
  | Event.Store { addr = 64; _ }, Event.Store { addr = 64; _ } -> ()
  | _ -> Alcotest.fail "round layout changed: expected counter stores at both indexes");
  Alcotest.(check bool)
    (Printf.sprintf "planted store risk %.3f > correct store risk %.3f" scores.(planted) scores.(correct))
    true
    (scores.(planted) > scores.(correct));
  (* The torn fence after the planted counter persist keeps non-zero
     risk even though nothing is in flight there. *)
  let torn_fence = ref (-1) in
  Array.iteri (fun i ev -> if !torn_fence < 0 && i > planted then match ev with Event.Fence _ -> torn_fence := i | _ -> ()) trace;
  Alcotest.(check bool) "torn durable state stays risky across the fence" true (scores.(!torn_fence) > 0.0)

let test_provenance_boosts_support () =
  let trace = record flag_before_data in
  let plain = Infer.Analyze.infer trace in
  let report =
    Recorder.replay trace (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict ()))
  in
  let boosted = Infer.Analyze.infer ~report trace in
  let support rep line =
    match find_durability ~line rep with Some i -> i.Infer.Invariant.support | None -> 0
  in
  Alcotest.(check bool)
    "detector findings only add support" true
    (support boosted 0 >= support plain 0 && support boosted 1 >= support plain 1)

let suite =
  [
    Alcotest.test_case "templates on a guarded pair" `Quick test_templates_on_guarded_pair;
    Alcotest.test_case "durability violation at program end" `Quick test_durability_violation_at_end;
    Alcotest.test_case "stale guard votes against ordering" `Quick test_stale_guard_votes_against;
    Alcotest.test_case "atomicity groups from register_var" `Quick test_atomicity_groups;
    Alcotest.test_case "invariants JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "risk ranks the planted round" `Quick test_risk_ranks_planted_round;
    Alcotest.test_case "provenance boosts support" `Quick test_provenance_boosts_support;
  ]
