open Pmdebugger

let mk ?mode ?interval_metadata ?array_capacity ?merge_threshold () =
  Space.create ?mode ?interval_metadata ?array_capacity ?merge_threshold ()

let store ?(epoch = false) ?(seq = 0) sp ~addr ~size =
  Space.process_store sp ~addr ~size ~epoch ~seq ~tid:0 ~strand:(-1) ()

let pending sp =
  let acc = ref [] in
  Space.iter_pending sp (fun ~addr ~size ~flushed ~epoch:_ ~seq:_ ~clf_seq:_ ~fence_seq:_ ->
      acc := (addr, size, flushed) :: !acc);
  List.sort compare !acc

let test_store_then_flush_then_fence () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8);
  Alcotest.(check (list (triple int int bool))) "tracked unflushed" [ (100, 8, false) ] (pending sp);
  let r = Space.process_clf sp ~lo:64 ~hi:128 in
  Alcotest.(check int) "matched" 1 r.Space.matched;
  Alcotest.(check int) "newly flushed" 1 r.Space.newly_flushed;
  Alcotest.(check (list (triple int int bool))) "tracked flushed" [ (100, 8, true) ] (pending sp);
  Space.process_fence sp;
  Alcotest.(check int) "drained" 0 (Space.pending_count sp)

let test_fence_migrates_unflushed_to_tree () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8);
  ignore (store sp ~addr:500 ~size:8);
  ignore (Space.process_clf sp ~lo:64 ~hi:128);
  Space.process_fence sp;
  Alcotest.(check int) "one survivor" 1 (Space.pending_count sp);
  Alcotest.(check int) "survivor lives in the tree" 1 (Space.tree_size sp);
  Alcotest.(check (list (triple int int bool))) "survivor state" [ (500, 8, false) ] (pending sp)

let test_collective_interval_metadata () =
  let sp = mk () in
  (* Several stores to one line form one CLF interval persisted by one
     writeback (Pattern 2). *)
  for i = 0 to 5 do
    ignore (store sp ~addr:(256 + (i * 8)) ~size:8)
  done;
  let r = Space.process_clf sp ~lo:256 ~hi:320 in
  Alcotest.(check int) "collectively flushed" 6 r.Space.newly_flushed;
  Space.process_fence sp;
  Alcotest.(check int) "all dropped collectively" 0 (Space.pending_count sp);
  Alcotest.(check int) "tree untouched" 0 (Space.tree_size sp)

let test_partial_flush_splits () =
  let sp = mk () in
  (* A 100-byte store flushed one line at a time: the uncovered tail
     moves to the tree as an unflushed remainder. *)
  ignore (store sp ~addr:64 ~size:100);
  ignore (Space.process_clf sp ~lo:64 ~hi:128);
  let tracked = pending sp in
  Alcotest.(check (list (triple int int bool))) "split into covered+rest" [ (64, 64, true); (128, 36, false) ] tracked;
  ignore (Space.process_clf sp ~lo:128 ~hi:192);
  Space.process_fence sp;
  Alcotest.(check int) "both halves drained" 0 (Space.pending_count sp)

let test_overwrite_detection_and_unflush () =
  let sp = mk () in
  Alcotest.(check bool) "fresh store has no overlap" false (store sp ~addr:100 ~size:8).Space.overlapped;
  ignore (Space.process_clf sp ~lo:64 ~hi:128);
  let r = store sp ~addr:100 ~size:8 in
  Alcotest.(check bool) "overwrite detected" true r.Space.overlapped;
  Alcotest.(check bool) "prior store seq carried" true (List.mem 0 r.Space.prior_seqs);
  (* The flushed state must have been voided by the new store. *)
  Space.process_fence sp;
  Alcotest.(check bool) "still pending after fence" true (Space.pending_count sp > 0)

let test_redundant_flush_reported () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8);
  ignore (Space.process_clf sp ~lo:64 ~hi:128);
  let r = Space.process_clf sp ~lo:64 ~hi:128 in
  Alcotest.(check int) "nothing newly flushed" 0 r.Space.newly_flushed;
  Alcotest.(check bool) "redundant recorded" true (r.Space.redundant <> []);
  Alcotest.(check bool) "still matched" true (r.Space.matched > 0)

let test_flush_nothing_result () =
  let sp = mk () in
  let r = Space.process_clf sp ~lo:0 ~hi:64 in
  Alcotest.(check int) "no match on empty space" 0 r.Space.matched

let test_epoch_flag_tracking () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8 ~epoch:true);
  ignore (store sp ~addr:500 ~size:8 ~epoch:false);
  Alcotest.(check bool) "epoch pending seen" true (Space.exists_epoch_pending sp);
  ignore (Space.process_clf sp ~lo:64 ~hi:128);
  Space.process_fence sp;
  Alcotest.(check bool) "epoch store drained, plain survives" false (Space.exists_epoch_pending sp);
  Alcotest.(check int) "one plain survivor" 1 (Space.pending_count sp)

let test_array_overflow_spills_to_tree () =
  let sp = mk ~array_capacity:4 () in
  for i = 0 to 9 do
    ignore (store sp ~addr:(i * 64) ~size:8)
  done;
  Alcotest.(check int) "all tracked" 10 (Space.pending_count sp);
  Alcotest.(check bool) "overflow went to the tree" true (Space.tree_size sp >= 6)

let test_has_pending_overlap () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8);
  Alcotest.(check bool) "overlap yes" true (Space.has_pending_overlap sp ~lo:104 ~hi:112);
  Alcotest.(check bool) "overlap no" false (Space.has_pending_overlap sp ~lo:200 ~hi:208)

(* Property: after any op sequence, the pending set matches a simple
   byte-level reference model. Stores use a fixed 16-byte granularity so
   that location-granular flush-state changes coincide with the byte
   model (partial-overlap splitting has its own unit tests). *)
let prop_matches_byte_model =
  QCheck.Test.make ~name:"space pending set matches byte-level model" ~count:300
    QCheck.(small_list (pair (int_range 0 2) (pair (int_range 0 40) (int_range 1 24))))
    (fun ops ->
      let sp = mk () in
      let model : (int, bool) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (op, (slot, _len)) ->
          let addr = slot * 16 in
          let len = 16 in
          match op with
          | 0 ->
              ignore (store sp ~addr ~size:len);
              for b = addr to addr + len - 1 do
                Hashtbl.replace model b false
              done
          | 1 ->
              let lo = Pmem.Addr.line_base addr in
              ignore (Space.process_clf sp ~lo ~hi:(lo + 64));
              for b = lo to lo + 63 do
                if Hashtbl.mem model b then Hashtbl.replace model b true
              done
          | _ ->
              Space.process_fence sp;
              let drained = Hashtbl.fold (fun b f acc -> if f then b :: acc else acc) model [] in
              List.iter (Hashtbl.remove model) drained)
        ops;
      (* Compare byte coverage of the pending sets. *)
      let space_bytes = Hashtbl.create 64 in
      Space.iter_pending sp (fun ~addr ~size ~flushed ~epoch:_ ~seq:_ ~clf_seq:_ ~fence_seq:_ ->
          for b = addr to addr + size - 1 do
            (* Later stores shadow earlier ones; flushed state of the
               latest tracker wins, so take OR of unflushed. *)
            let prev = try Hashtbl.find space_bytes b with Not_found -> true in
            Hashtbl.replace space_bytes b (prev && flushed)
          done);
      Hashtbl.fold (fun b f acc -> acc && Hashtbl.mem space_bytes b && Hashtbl.find space_bytes b = f) model true
      && Hashtbl.fold (fun b _ acc -> acc && Hashtbl.mem model b) space_bytes true)

let test_modes_agree_on_pending () =
  let run mode =
    let sp = mk ~mode () in
    ignore (store sp ~addr:100 ~size:8);
    ignore (store sp ~addr:500 ~size:16);
    ignore (Space.process_clf sp ~lo:64 ~hi:128);
    Space.process_fence sp;
    pending sp
  in
  let hybrid = run Space.Hybrid in
  Alcotest.(check (list (triple int int bool))) "array-only agrees" hybrid (run Space.Array_only);
  Alcotest.(check (list (triple int int bool))) "tree-only agrees" hybrid (run Space.Tree_only)

let test_no_interval_metadata_agrees () =
  let run interval_metadata =
    let sp = mk ~interval_metadata () in
    for i = 0 to 5 do
      ignore (store sp ~addr:(256 + (i * 8)) ~size:8)
    done;
    ignore (Space.process_clf sp ~lo:256 ~hi:320);
    ignore (store sp ~addr:1000 ~size:8);
    Space.process_fence sp;
    pending sp
  in
  Alcotest.(check (list (triple int int bool))) "metadata off agrees" (run true) (run false)

(* Differential property: the three bookkeeping modes and the
   metadata-off variant produce identical pending sets on random op
   sequences — the ablation knobs change cost, never verdicts. *)
let prop_modes_equivalent =
  QCheck.Test.make ~name:"bookkeeping modes are observationally equal" ~count:200
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 30)))
    (fun ops ->
      let run_mode mode interval_metadata =
        let sp = mk ~mode ~interval_metadata () in
        List.iter
          (fun (op, slot) ->
            let addr = slot * 24 in
            match op with
            | 0 -> ignore (store sp ~addr ~size:16)
            | 1 ->
                let lo = Pmem.Addr.line_base addr in
                ignore (Space.process_clf sp ~lo ~hi:(lo + 64))
            | _ -> Space.process_fence sp)
          ops;
        pending sp
      in
      let reference = run_mode Space.Hybrid true in
      run_mode Space.Array_only true = reference
      && run_mode Space.Tree_only true = reference
      && run_mode Space.Hybrid false = reference)

(* Per-op differential: not just the final pending sets — every
   intermediate observation (store-overlap verdict, CLF matched /
   newly-flushed / redundant counts) must agree across modes, because
   the detection rules fire on these. Stores are fixed-size and aligned
   so every CLF and every supersede is a full cover; partial covers of
   flushed data are intentionally asymmetric between array and tree
   (the array unflushes the whole slot, the tree keeps uncovered
   pieces flushed) and have their own unit tests. *)
let prop_modes_observations_equivalent =
  QCheck.Test.make ~name:"per-op observations agree across modes" ~count:300
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 30)))
    (fun ops ->
      let sps = List.map (fun mode -> mk ~mode ()) [ Space.Hybrid; Space.Array_only; Space.Tree_only ] in
      let agree obs = List.for_all (fun o -> o = List.hd obs) obs in
      List.for_all
        (fun (op, slot) ->
          let addr = slot * 16 in
          match op with
          (* Overlap verdicts agree across modes; prior-seq lists are
             deliberately excluded — tree merges coarsen them (a merged
             node keeps only its newest store's seq). *)
          | 0 -> agree (List.map (fun sp -> (store sp ~addr ~size:16).Space.overlapped) sps)
          | 1 ->
              let lo = Pmem.Addr.line_base addr in
              agree
                (List.map
                   (fun sp ->
                     let r = Space.process_clf sp ~lo ~hi:(lo + 64) in
                     (r.Space.matched, r.Space.newly_flushed, List.sort compare r.Space.redundant))
                   sps)
          | _ ->
              List.iter Space.process_fence sps;
              true)
        ops
      && agree (List.map pending sps))

(* ------------------------------------------------------------------ *)
(* Bookkeeping state-reset and accounting regressions.                 *)
(* ------------------------------------------------------------------ *)

let stat sp key = List.assoc key (Space.stats sp)

(* [clear] must forget the fence interval's flush registrations: stale
   entries replay pre-clear bookkeeping into the next fence and keep
   dead payloads alive. *)
let test_clear_resets_flush_registrations () =
  let sp = mk () in
  ignore (store sp ~addr:100 ~size:8);
  Space.process_fence sp (* unflushed survivor migrates to the tree *);
  ignore (Space.process_clf sp ~lo:64 ~hi:128) (* tree node flushed: registered for the next fence *);
  Alcotest.(check (float 0.0)) "registration recorded" 1.0 (stat sp "tree_flushed_nodes");
  Space.clear sp;
  Alcotest.(check (float 0.0)) "clear drops flush registrations" 0.0 (stat sp "tree_flushed_nodes")

(* [clear] must also reset the reorganization threshold baseline: a
   stale last-reorg size suppresses merging until the (now empty) tree
   regrows past the pre-clear high-water mark. *)
let test_clear_resets_reorg_threshold () =
  let sp = mk ~mode:Space.Tree_only ~merge_threshold:10 () in
  for i = 0 to 99 do
    ignore (store sp ~addr:(i * 64) ~size:8)
  done;
  Space.process_fence sp;
  let before = Space.reorganizations sp in
  Alcotest.(check bool) "baseline reorg ran" true (before > 0);
  Space.clear sp;
  for i = 0 to 11 do
    ignore (store sp ~addr:(i * 64) ~size:8)
  done;
  Space.process_fence sp;
  Alcotest.(check bool) "fresh growth past the threshold reorganizes again" true (Space.reorganizations sp > before)

(* The collective-CLF branch must not count slots a superseding store
   already invalidated. *)
let test_collective_clf_counts_valid_slots_only () =
  let sp = mk () in
  ignore (store sp ~addr:128 ~size:8);
  ignore (store sp ~addr:128 ~size:8) (* fully covers: first slot is invalidated *);
  let r = Space.process_clf sp ~lo:64 ~hi:192 in
  Alcotest.(check int) "matched counts live slots only" 1 r.Space.matched;
  Alcotest.(check int) "newly flushed counts live slots only" 1 r.Space.newly_flushed

(* A store that fully covers a flushed tree node removes the node; its
   flush registration must go with it, or the registration list grows
   with every store/flush pair on a hot address within one fence
   interval. *)
let test_superseded_tree_registrations_purged () =
  let sp = mk ~mode:Space.Tree_only () in
  for _ = 1 to 50 do
    ignore (store sp ~addr:256 ~size:8);
    ignore (Space.process_clf sp ~lo:256 ~hi:320)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "registrations bounded (got %.0f)" (stat sp "tree_flushed_nodes"))
    true
    (stat sp "tree_flushed_nodes" <= 1.0)

let suite =
  [
    Alcotest.test_case "store/flush/fence lifecycle" `Quick test_store_then_flush_then_fence;
    Alcotest.test_case "fence migrates unflushed to tree" `Quick test_fence_migrates_unflushed_to_tree;
    Alcotest.test_case "collective interval metadata" `Quick test_collective_interval_metadata;
    Alcotest.test_case "partial flush splits" `Quick test_partial_flush_splits;
    Alcotest.test_case "overwrite detection + unflush" `Quick test_overwrite_detection_and_unflush;
    Alcotest.test_case "redundant flush observation" `Quick test_redundant_flush_reported;
    Alcotest.test_case "flush nothing observation" `Quick test_flush_nothing_result;
    Alcotest.test_case "epoch flag tracking" `Quick test_epoch_flag_tracking;
    Alcotest.test_case "array overflow spills" `Quick test_array_overflow_spills_to_tree;
    Alcotest.test_case "has_pending_overlap" `Quick test_has_pending_overlap;
    Alcotest.test_case "modes agree" `Quick test_modes_agree_on_pending;
    Alcotest.test_case "interval metadata off agrees" `Quick test_no_interval_metadata_agrees;
    Alcotest.test_case "clear resets flush registrations" `Quick test_clear_resets_flush_registrations;
    Alcotest.test_case "clear resets reorg threshold baseline" `Quick test_clear_resets_reorg_threshold;
    Alcotest.test_case "collective CLF skips invalidated slots" `Quick test_collective_clf_counts_valid_slots_only;
    Alcotest.test_case "superseded tree registrations purged" `Quick test_superseded_tree_registrations_purged;
    QCheck_alcotest.to_alcotest prop_matches_byte_model;
    QCheck_alcotest.to_alcotest prop_modes_equivalent;
    QCheck_alcotest.to_alcotest prop_modes_observations_equivalent;
  ]
