let test_median () =
  let calls = ref 0 in
  let t = Harness.Timing.median_of ~repeats:5 (fun () -> incr calls) in
  Alcotest.(check int) "ran five times" 5 !calls;
  Alcotest.(check bool) "non-negative" true (t >= 0.0)

let test_time_once () =
  let t = Harness.Timing.time_once (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id))) in
  Alcotest.(check bool) "positive-ish" true (t >= 0.0)

let test_measure () =
  let run engine =
    Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
    for i = 0 to 99 do
      Pmtrace.Engine.store_i64 engine ~addr:(i * 8) 1L;
      Pmtrace.Engine.persist engine ~addr:(i * 8) ~size:8
    done;
    Pmtrace.Engine.program_end engine
  in
  let m, trace =
    Harness.Timing.measure ~repeats:1 ~run
      ~detectors:[ ("pmdebugger", fun () -> Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) ]
      ()
  in
  Alcotest.(check bool) "trace recorded" true (Array.length trace > 300);
  Alcotest.(check bool) "native measured" true (m.Harness.Timing.native_s >= 0.0);
  Alcotest.(check bool) "nulgrind >= native" true (m.Harness.Timing.nulgrind_s >= m.Harness.Timing.native_s);
  let det = List.assoc "pmdebugger" m.Harness.Timing.detector_s in
  Alcotest.(check bool) "detector >= native" true (det >= m.Harness.Timing.native_s);
  Alcotest.(check bool) "slowdown >= 1" true (Harness.Timing.slowdown m det >= 1.0);
  (* Satellite: per-event dispatch-latency quantiles ride along. *)
  Alcotest.(check (list string))
    "dispatch profiles for every tool" [ "nulgrind"; "pmdebugger" ]
    (List.map fst m.Harness.Timing.dispatch);
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "profiled every event" (Array.length trace) p.Harness.Timing.samples;
      Alcotest.(check bool) "p50 >= 0" true (p.Harness.Timing.p50_s >= 0.0);
      Alcotest.(check bool) "p95 >= p50" true (p.Harness.Timing.p95_s >= p.Harness.Timing.p50_s);
      Alcotest.(check bool) "p99 >= p95" true (p.Harness.Timing.p99_s >= p.Harness.Timing.p95_s))
    m.Harness.Timing.dispatch

let test_formatters () =
  Alcotest.(check string) "fmt_f" "3.14" (Harness.Table.fmt_f 3.14159);
  Alcotest.(check string) "fmt_x" "12.3x" (Harness.Table.fmt_x 12.31);
  Alcotest.(check string) "fmt_pct" "84.5%" (Harness.Table.fmt_pct 0.845)

(* The `pmdb top` renderer against synthetic daemon snapshots: rates
   from counter deltas, folded per-shard latency quantiles, the
   backpressure rung, and per-session rows — all without a daemon. *)
let top_snapshot ?(events = 1000) ?(evictions = 0) () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.inc m ~by:events "serve_events_total";
  Obs.Metrics.inc m ~by:3 "serve_sessions_opened_total";
  Obs.Metrics.inc m ~by:evictions "serve_evictions_total";
  Obs.Metrics.set m "serve_sessions_active" 2.0;
  for shard = 0 to 1 do
    let labels = [ ("shard", string_of_int shard) ] in
    Obs.Metrics.observe m ~labels "shard_frame_residency_seconds" 0.004;
    Obs.Metrics.observe m ~labels "shard_frame_decode_seconds" 0.0005
  done;
  Obs.Metrics.inc m ~labels:[ ("domain", "0") ] ~by:750 "serve_worker_events_total";
  Obs.Metrics.inc m ~labels:[ ("domain", "1") ] ~by:250 "serve_worker_events_total";
  Obs.Metrics.set m ~labels:[ ("session", "alice") ] "serve_queue_depth" 17.0;
  Obs.Metrics.set m ~labels:[ ("session", "alice") ] "serve_events_per_sec" 512.0;
  Obs.Metrics.set m ~labels:[ ("session", "alice") ] "serve_live_bytes" 4096.0;
  Obs.Metrics.snapshot m

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_top_render () =
  let cur = top_snapshot () in
  (* First frame: absolutes only, no rate suffix. *)
  let first = Harness.Top.render ~prev:None ~cur ~dt:0.0 in
  Alcotest.(check bool) "header shows sessions and events" true
    (contains first "2 session(s) active, 1000 event(s) ingested");
  Alcotest.(check bool) "no rate on the first frame" false (contains first "/s)");
  Alcotest.(check bool) "idle rung" true (contains first "backpressure: idle");
  (* Two 4ms observations land in the (2.5ms, 5ms] bucket; p50
     interpolates to its midpoint. *)
  Alcotest.(check bool) "folded residency quantiles" true (contains first "residency p50 3.8ms");
  Alcotest.(check bool) "worker balance" true (contains first "w0 75% (750)");
  Alcotest.(check bool) "session row" true (contains first "alice");
  (* Second frame: 500 more events over 2s -> +250/s; an eviction
     flips the rung. *)
  let next = top_snapshot ~events:1500 ~evictions:1 () in
  let second = Harness.Top.render ~prev:(Some cur) ~cur:next ~dt:2.0 in
  Alcotest.(check bool) "rate from the delta" true (contains second "(+250/s)");
  Alcotest.(check bool) "eviction rung" true (contains second "backpressure: EVICTING")

let test_top_render_empty () =
  (* A daemon with nothing going on still renders a header, not an
     exception (missing series must render as "-"). *)
  let out = Harness.Top.render ~prev:None ~cur:(Obs.Metrics.snapshot (Obs.Metrics.create ())) ~dt:0.0 in
  Alcotest.(check bool) "renders" true (contains out "pmdb top");
  Alcotest.(check bool) "missing latency renders as -" true (contains out "e2e p50 -")

let suite =
  [
    Alcotest.test_case "median_of" `Quick test_median;
    Alcotest.test_case "time_once" `Quick test_time_once;
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "formatters" `Quick test_formatters;
    Alcotest.test_case "top: render frames" `Quick test_top_render;
    Alcotest.test_case "top: empty snapshot" `Quick test_top_render_empty;
  ]
