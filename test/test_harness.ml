let test_median () =
  let calls = ref 0 in
  let t = Harness.Timing.median_of ~repeats:5 (fun () -> incr calls) in
  Alcotest.(check int) "ran five times" 5 !calls;
  Alcotest.(check bool) "non-negative" true (t >= 0.0)

let test_time_once () =
  let t = Harness.Timing.time_once (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id))) in
  Alcotest.(check bool) "positive-ish" true (t >= 0.0)

let test_measure () =
  let run engine =
    Pmtrace.Engine.register_pmem engine ~base:0 ~size:4096;
    for i = 0 to 99 do
      Pmtrace.Engine.store_i64 engine ~addr:(i * 8) 1L;
      Pmtrace.Engine.persist engine ~addr:(i * 8) ~size:8
    done;
    Pmtrace.Engine.program_end engine
  in
  let m, trace =
    Harness.Timing.measure ~repeats:1 ~run
      ~detectors:[ ("pmdebugger", fun () -> Pmdebugger.Detector.sink (Pmdebugger.Detector.create ())) ]
      ()
  in
  Alcotest.(check bool) "trace recorded" true (Array.length trace > 300);
  Alcotest.(check bool) "native measured" true (m.Harness.Timing.native_s >= 0.0);
  Alcotest.(check bool) "nulgrind >= native" true (m.Harness.Timing.nulgrind_s >= m.Harness.Timing.native_s);
  let det = List.assoc "pmdebugger" m.Harness.Timing.detector_s in
  Alcotest.(check bool) "detector >= native" true (det >= m.Harness.Timing.native_s);
  Alcotest.(check bool) "slowdown >= 1" true (Harness.Timing.slowdown m det >= 1.0);
  (* Satellite: per-event dispatch-latency quantiles ride along. *)
  Alcotest.(check (list string))
    "dispatch profiles for every tool" [ "nulgrind"; "pmdebugger" ]
    (List.map fst m.Harness.Timing.dispatch);
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "profiled every event" (Array.length trace) p.Harness.Timing.samples;
      Alcotest.(check bool) "p50 >= 0" true (p.Harness.Timing.p50_s >= 0.0);
      Alcotest.(check bool) "p95 >= p50" true (p.Harness.Timing.p95_s >= p.Harness.Timing.p50_s);
      Alcotest.(check bool) "p99 >= p95" true (p.Harness.Timing.p99_s >= p.Harness.Timing.p95_s))
    m.Harness.Timing.dispatch

let test_formatters () =
  Alcotest.(check string) "fmt_f" "3.14" (Harness.Table.fmt_f 3.14159);
  Alcotest.(check string) "fmt_x" "12.3x" (Harness.Table.fmt_x 12.31);
  Alcotest.(check string) "fmt_pct" "84.5%" (Harness.Table.fmt_pct 0.845)

let suite =
  [
    Alcotest.test_case "median_of" `Quick test_median;
    Alcotest.test_case "time_once" `Quick test_time_once;
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "formatters" `Quick test_formatters;
  ]
