let () =
  Alcotest.run "pmdebugger"
    [
      ("addr", Test_addr.suite);
      ("image", Test_image.suite);
      ("pm-state", Test_state.suite);
      ("rangetree", Test_rangetree.suite);
      ("trace", Test_trace.suite);
      ("trace-io", Test_trace_io.suite);
      ("space", Test_space.suite);
      ("detector", Test_detector.suite);
      ("detector-extended", Test_detector_extended.suite);
      ("baselines", Test_baselines.suite);
      ("pmdk", Test_pmdk.suite);
      ("pmfs", Test_pmfs.suite);
      ("workloads", Test_workloads.suite);
      ("pqueue", Test_pqueue.suite);
      ("memcached-sites", Test_memcached_sites.suite);
      ("charz", Test_charz.suite);
      ("obs", Test_obs.suite);
      ("harness", Test_harness.suite);
      ("bugbench", Test_bugbench.suite);
      ("provenance", Test_provenance.suite);
      ("shard", Test_shard.suite);
      ("faultinject", Test_faultinject.suite);
      ("infer", Test_infer.suite);
      ("serve", Test_serve.suite);
    ]
