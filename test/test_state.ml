open Pmem

let store8 st addr v = State.store_i64 st ~addr v

let test_store_dirty () =
  let st = State.create () in
  store8 st 100 1L;
  Alcotest.(check bool) "line dirty after store" true (State.line_state st 1 = State.Dirty);
  Alcotest.(check bool) "durable image unchanged" true (Image.get_i64 (State.durable st) 100 = 0L);
  Alcotest.(check bool) "volatile image updated" true (Image.get_i64 (State.volatile st) 100 = 1L)

let test_clf_pending_then_fence () =
  let st = State.create () in
  store8 st 100 1L;
  State.clf st ~addr:100;
  Alcotest.(check bool) "pending after clf" true (State.line_state st 1 = State.Writeback_pending);
  Alcotest.(check bool) "not yet durable" true (Image.get_i64 (State.durable st) 100 = 0L);
  State.fence st;
  Alcotest.(check bool) "clean after fence" true (State.line_state st 1 = State.Clean);
  Alcotest.(check int64) "durable after fence" 1L (Image.get_i64 (State.durable st) 100)

let test_store_voids_pending () =
  let st = State.create () in
  store8 st 100 1L;
  State.clf st ~addr:100;
  store8 st 104 2L;
  Alcotest.(check bool) "re-store re-dirties the line" true (State.line_state st 1 = State.Dirty);
  State.fence st;
  (* The fence drains nothing: the writeback was voided. *)
  Alcotest.(check int64) "not durable without second clf" 0L (Image.get_i64 (State.durable st) 100)

let test_fence_without_clf () =
  let st = State.create () in
  store8 st 100 1L;
  State.fence st;
  Alcotest.(check bool) "dirty survives fence" true (State.line_state st 1 = State.Dirty);
  Alcotest.(check int64) "nothing durable" 0L (Image.get_i64 (State.durable st) 100)

let test_is_durable_range () =
  let st = State.create () in
  State.store st ~addr:60 (Bytes.make 10 'x');
  State.clf st ~addr:60;
  State.fence st;
  Alcotest.(check bool) "first line durable only" false (State.is_durable_range st ~lo:60 ~hi:70);
  State.clf st ~addr:64;
  State.fence st;
  Alcotest.(check bool) "both lines durable" true (State.is_durable_range st ~lo:60 ~hi:70)

let test_crash_images_exhaustive () =
  let st = State.create () in
  store8 st 0 1L;
  store8 st 64 2L;
  State.clf st ~addr:64;
  (* 2 undrained lines: 4 possible crash images. *)
  let images = State.crash_images st () in
  Alcotest.(check int) "four images" 4 (List.length images);
  let outcomes = List.map (fun img -> (Image.get_i64 img 0, Image.get_i64 img 64)) images in
  List.iter
    (fun o -> Alcotest.(check bool) "outcome possible" true (List.mem o outcomes))
    [ (0L, 0L); (1L, 0L); (0L, 2L); (1L, 2L) ]

let test_crash_images_after_drain () =
  let st = State.create () in
  store8 st 0 1L;
  State.clf st ~addr:0;
  State.fence st;
  let images = State.crash_images st () in
  Alcotest.(check int) "one deterministic image" 1 (List.length images);
  Alcotest.(check int64) "durable value present" 1L (Image.get_i64 (List.hd images) 0)

(* Property: every crash image agrees with the durable image on clean
   lines and with either durable or volatile contents elsewhere. *)
let prop_crash_image_bounds =
  QCheck.Test.make ~name:"crash images bounded by durable and volatile" ~count:100
    QCheck.(small_list (pair (int_range 0 63) (int_range 0 2)))
    (fun ops ->
      let st = State.create () in
      List.iter
        (fun (slot, op) ->
          let addr = slot * 16 in
          match op with
          | 0 -> State.store_i64 st ~addr (Int64.of_int (addr + 1))
          | 1 -> State.clf st ~addr
          | _ -> State.fence st)
        ops;
      let vol = State.volatile st and dur = State.durable st in
      List.for_all
        (fun img ->
          let ok = ref true in
          for line = 0 to 16 do
            let lo = line * 64 and hi = (line + 1) * 64 in
            let matches_dur = Image.equal_range img dur ~lo ~hi in
            let matches_vol = Image.equal_range img vol ~lo ~hi in
            if not (matches_dur || matches_vol) then ok := false
          done;
          !ok)
        (State.crash_images st ~max_images:32 ()))

let test_crash_images_dedupe_and_bound () =
  (* Way more undrained lines than the sampling budget: the result must
     respect the budget, contain no duplicates, and not overflow [lsl]
     (70 lines > 62 bits). *)
  let st = State.create () in
  for line = 0 to 69 do
    store8 st (line * 64) (Int64.of_int (line + 1))
  done;
  let images = State.crash_images st ~max_images:16 () in
  let n = List.length images in
  Alcotest.(check bool) "within budget" true (n <= 16 && n >= 2);
  let key img = String.init 70 (fun l -> if Image.get_i64 img (l * 64) = 0L then '0' else '1') in
  let keys = List.map key images in
  Alcotest.(check int) "no duplicate images" n (List.length (List.sort_uniq compare keys));
  (* The deterministic extremes are always sampled. *)
  Alcotest.(check bool) "nothing-persisted image present" true (List.mem (String.make 70 '0') keys);
  Alcotest.(check bool) "everything-persisted image present" true (List.mem (String.make 70 '1') keys)

let test_evict () =
  let st = State.create () in
  store8 st 100 7L;
  State.evict st ~line:1;
  Alcotest.(check bool) "line clean after evict" true (State.line_state st 1 = State.Clean);
  Alcotest.(check int64) "contents durable without clf/fence" 7L (Image.get_i64 (State.durable st) 100);
  (* Evicting a clean line is a no-op. *)
  State.evict st ~line:1;
  Alcotest.(check int64) "still durable" 7L (Image.get_i64 (State.durable st) 100);
  (* A pending writeback is also made durable by eviction. *)
  store8 st 200 9L;
  State.clf st ~addr:200;
  State.evict st ~line:3;
  Alcotest.(check int64) "pending line durable after evict" 9L (Image.get_i64 (State.durable st) 200)

let test_copy_independent () =
  let st = State.create () in
  store8 st 100 1L;
  State.clf st ~addr:100;
  let snap = State.copy st in
  State.fence st;
  store8 snap 200 5L;
  (* Draining the original does not touch the copy... *)
  Alcotest.(check bool) "copy keeps pending state" true (State.line_state snap 1 = State.Writeback_pending);
  Alcotest.(check int64) "copy durable unchanged" 0L (Image.get_i64 (State.durable snap) 100);
  (* ...and mutating the copy does not touch the original. *)
  Alcotest.(check int64) "original volatile unchanged" 0L (Image.get_i64 (State.volatile st) 200);
  State.fence snap;
  Alcotest.(check int64) "copy drains on its own" 1L (Image.get_i64 (State.durable snap) 100)

let suite =
  [
    Alcotest.test_case "store dirties" `Quick test_store_dirty;
    Alcotest.test_case "clf pending, fence drains" `Quick test_clf_pending_then_fence;
    Alcotest.test_case "store voids pending writeback" `Quick test_store_voids_pending;
    Alcotest.test_case "fence without clf persists nothing" `Quick test_fence_without_clf;
    Alcotest.test_case "is_durable_range per line" `Quick test_is_durable_range;
    Alcotest.test_case "crash images exhaustive" `Quick test_crash_images_exhaustive;
    Alcotest.test_case "crash image after drain" `Quick test_crash_images_after_drain;
    Alcotest.test_case "crash images dedupe under sampling" `Quick test_crash_images_dedupe_and_bound;
    Alcotest.test_case "evict makes a line durable" `Quick test_evict;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_crash_image_bounds;
  ]
