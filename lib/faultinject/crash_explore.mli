(** Crash-point exploration behind a pluggable strategy layer.

    The cross-failure rule as shipped only samples crash images at
    fences ({!Pmdebugger.Crash_check} via [crash_check_every_fence]).
    A machine can lose power at {e any} instruction boundary, and an
    inconsistency window can open after a store and close again at the
    next fence — invisible to fence-only sampling. This explorer replays
    a step trace into a fresh {!Pmem.State}, derives the possible
    durable images at store/CLF/fence boundaries, runs the workload's
    recovery predicate against each, and reports the exact event index
    of every boundary where some image fails recovery.

    Which boundaries are visited, and in what order, is delegated to a
    {!STRATEGY} (first-class module, mirroring
    [Store_intf.LOCATION_STORE]): {!exhaustive} visits every boundary in
    trace order (the pre-strategy behavior, byte-identical reports),
    {!guided} ranks boundaries by inferred-invariant risk
    ({!Infer.Risk}) and visits highest-risk first, {!sampled} draws a
    seeded reservoir over the boundaries. An image budget on the
    {!plan} caps total exploration cost for the non-exhaustive
    strategies. *)

type boundaries =
  | Every_op  (** check after every store, CLF and fence *)
  | Fences_only  (** check only after fences (the legacy sampling) *)

type failure = {
  index : int;  (** index into the step trace of the failing boundary *)
  step : Replay.step;  (** the event just applied when the crash is taken *)
  failing_images : int;
  images_checked : int;
}

type result = {
  boundaries_checked : int;
  images_checked : int;  (** total crash images derived and tested *)
  failures : failure list;  (** in trace order *)
}

(** {1 Plans} *)

type plan = {
  steps : Replay.step array;
  boundary_kind : boundaries;
  boundary_indexes : int array;  (** step indexes of eligible boundaries, ascending *)
  boundary_events : int array;  (** event index of each boundary (for risk lookup) *)
  max_images : int;  (** images sampled per boundary *)
  budget : int option;  (** total image cap across the whole run *)
  seed : int;  (** seed for {!sampled} *)
  invariants : Infer.Invariant.report option;  (** pre-computed invariants for {!guided} *)
}

val make_plan :
  ?boundaries:boundaries ->
  ?max_images:int ->
  ?budget:int ->
  ?seed:int ->
  ?invariants:Infer.Invariant.report ->
  Replay.step array ->
  plan

val plan_events : plan -> Pmtrace.Event.t array
(** The event projection of the plan's steps. *)

val plan_invariants : plan -> Infer.Invariant.report
(** The plan's invariant report, inferring one from the steps' event
    projection when none was supplied. *)

(** {1 Strategies} *)

module type STRATEGY = sig
  type t

  val name : string
  val create : plan -> t

  val schedule : t -> int array
  (** Positions into [plan.boundary_indexes] in exploration order — a
      subsequence (possibly a permutation) of [0 .. n-1]. *)

  val dropped : t -> int
  (** Boundaries excluded from the schedule up front (reservoir cuts). *)

  val invariants : t -> Infer.Invariant.report option
  (** The invariant report the strategy ranked with, if any. *)
end

type instance = Instance : (module STRATEGY with type t = 'a) * 'a -> instance

type strategy = plan -> instance
(** A strategy factory: builds a packed instance for a plan. *)

val exhaustive : strategy
(** Every boundary, trace order — the pre-strategy explorer. *)

val guided : strategy
(** Boundaries ordered by descending invariant risk (inferring
    invariants from the plan when it carries none); ties and zero-risk
    boundaries keep trace order, so an unbounded guided run covers
    exactly the exhaustive boundary set. *)

val sampled : strategy
(** Seeded reservoir sample of [budget / max_images] boundaries (all of
    them when the plan has no budget), visited in trace order. *)

val strategy_of_string : string -> (strategy, string) Stdlib.result
(** ["exhaustive" | "guided" | "sampled"]. *)

val strategy_name : instance -> string
val strategy_schedule : instance -> int array
val strategy_dropped : instance -> int
val strategy_invariants : instance -> Infer.Invariant.report option

(** {1 Driver} *)

type outcome = {
  result : result;
  strategy : string;
  scheduled : int;  (** boundaries in the strategy's schedule *)
  explored : int;  (** boundaries actually checked *)
  skipped : int;  (** dropped up front + cut by the image budget *)
  invariants_used : Infer.Invariant.report option;
}

val run :
  ?stop_at_first:bool ->
  ?metrics:Obs.Metrics.t ->
  recovery:(Pmem.Image.t -> bool) ->
  plan ->
  strategy ->
  outcome
(** Runs the plan under the strategy. Trace-ordered schedules execute as
    a single forward replay (the original explorer loop); risk-ordered
    schedules replay a fresh prefix per boundary. The plan's [budget]
    bounds total images derived across the run (the last boundary's
    sample is truncated to the remainder, so a budget of [N] never
    derives more than [N] images). [result.failures] is always in trace
    order. [metrics] receives [crash_explore_prefixes_replayed_total]
    and [crash_explore_images_tested_total] (as before) plus
    [explore_images_total{strategy}], [explore_bugs_found_total] and
    [explore_skipped_low_risk_total]. *)

(** {1 Trace-order entry points} *)

val explore :
  ?boundaries:boundaries ->
  ?max_images:int ->
  ?stop_at_first:bool ->
  ?metrics:Obs.Metrics.t ->
  recovery:(Pmem.Image.t -> bool) ->
  Replay.step array ->
  result
(** Full exhaustive scan — [run] with {!exhaustive} and no budget.
    [max_images] bounds the images sampled per boundary (default 64);
    [stop_at_first] stops at the first failing boundary. *)

val minimal_failing_prefix :
  ?max_images:int -> ?metrics:Obs.Metrics.t -> recovery:(Pmem.Image.t -> bool) -> Replay.step array -> failure option
(** First failing boundary of the [Every_op] scan — by construction the
    minimal trace prefix after which some crash image fails recovery. *)

val bisect :
  ?max_images:int ->
  ?metrics:Obs.Metrics.t ->
  ?strategy:strategy ->
  recovery:(Pmem.Image.t -> bool) ->
  Replay.step array ->
  failure option
(** Cheap minimal-prefix search. Without [strategy]: a coarse fence-only
    pass finds the first failing fence, then a fine event-by-event pass
    covers only the window after the last passing fence — far fewer
    image derivations on long traces; falls back to the full scan when
    every fence passes (transient windows). With [strategy]: the
    strategy's own order (risk-first for {!guided}) finds a first
    failing boundary, and the fine pass verifies the prefix before it —
    converging to the same minimal failing prefix as the exhaustive
    order for any strategy whose schedule covers all boundaries. *)
