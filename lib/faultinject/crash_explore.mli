(** Crash-point exploration.

    The cross-failure rule as shipped only samples crash images at
    fences ({!Pmdebugger.Crash_check} via [crash_check_every_fence]).
    A machine can lose power at {e any} instruction boundary, and an
    inconsistency window can open after a store and close again at the
    next fence — invisible to fence-only sampling. This explorer replays
    a step trace into a fresh {!Pmem.State}, derives the possible
    durable images at every store/CLF/fence boundary, runs the
    workload's recovery predicate against each, and reports the exact
    event index of every boundary where some image fails recovery. *)

type boundaries =
  | Every_op  (** check after every store, CLF and fence *)
  | Fences_only  (** check only after fences (the legacy sampling) *)

type failure = {
  index : int;  (** index into the step trace of the failing boundary *)
  step : Replay.step;  (** the event just applied when the crash is taken *)
  failing_images : int;
  images_checked : int;
}

type result = {
  boundaries_checked : int;
  images_checked : int;  (** total crash images derived and tested *)
  failures : failure list;  (** in trace order *)
}

val explore :
  ?boundaries:boundaries ->
  ?max_images:int ->
  ?stop_at_first:bool ->
  ?metrics:Obs.Metrics.t ->
  recovery:(Pmem.Image.t -> bool) ->
  Replay.step array ->
  result
(** Full scan. [max_images] bounds the images sampled per boundary
    (default 64); [stop_at_first] stops at the first failing boundary.
    [metrics] (default disabled) receives
    [crash_explore_prefixes_replayed_total] (boundaries whose crash
    images were derived) and [crash_explore_images_tested_total]. *)

val minimal_failing_prefix :
  ?max_images:int -> ?metrics:Obs.Metrics.t -> recovery:(Pmem.Image.t -> bool) -> Replay.step array -> failure option
(** First failing boundary of the [Every_op] scan — by construction the
    minimal trace prefix after which some crash image fails recovery. *)

val bisect :
  ?max_images:int -> ?metrics:Obs.Metrics.t -> recovery:(Pmem.Image.t -> bool) -> Replay.step array -> failure option
(** Cheap minimal-prefix search: a coarse fence-only pass finds the
    first failing fence, then a fine event-by-event pass covers only the
    window after the last passing fence — far fewer image derivations on
    long traces. Agrees with {!minimal_failing_prefix} unless an earlier
    inconsistency window opened and closed again before a fence
    (transient windows are only caught by the full scan, to which this
    falls back when every fence passes). *)
