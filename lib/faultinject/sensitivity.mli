(** Detector sensitivity self-test: a mutation-testing matrix.

    The bugbench dataset shows the detector flags known-bad programs;
    this matrix shows the opposite direction — that for each injected
    fault class on each {e clean} program, at least one PMDebugger rule
    fires. A detector change that silently blinds a rule turns a matrix
    cell empty and fails the suite. *)

open Pmtrace

val clean_workloads : (string * (Engine.t -> unit)) list
(** Named bug-free reference programs, each shaped so every fault class
    has a candidate site (multi-line stores, per-line CLFs, load-bearing
    closing fence). *)

val core_faults : Injector.fault list
(** The detector-visible fault classes: drop-CLF, drop-fence,
    torn-store, duplicate-flush. [Evict_line] is excluded — eviction is
    the environment's doing, and the detector must {e not} flag it. *)

val default_plan : Injector.fault -> Injector.plan
(** Per-fault default placement: the closing fence for [Drop_fence]
    (mid-trace drops are healed by the next fence), the first candidate
    otherwise. *)

type cell = {
  fault : Injector.fault;
  injections : int;  (** mutations actually performed; 0 means no candidate site *)
  detected_by : Bug.kind list;  (** PMDebugger rules that fired on the mutated trace *)
}

type row = {
  workload : string;
  baseline_kinds : Bug.kind list;  (** findings on the unmutated trace; must be [] *)
  cells : cell list;
}

val run_row : ?faults:Injector.fault list -> string * (Engine.t -> unit) -> row

val run_matrix : ?faults:Injector.fault list -> ?workloads:(string * (Engine.t -> unit)) list -> unit -> row list

val row_ok : row -> bool
(** Baseline clean, and every cell both injected something and was
    detected by at least one rule. *)

val matrix_ok : row list -> bool
