type clause =
  | I64_eq of int * int64
  | U8_eq of int * int
  | Nonzero of int
  | Zero of int
  | Le of int * int
  | Implies_nonzero of int * int

type t = clause list

let clause_to_string = function
  | I64_eq (a, v) -> Printf.sprintf "i64@%d=%Ld" a v
  | U8_eq (a, v) -> Printf.sprintf "u8@%d=%d" a v
  | Nonzero a -> Printf.sprintf "nonzero@%d" a
  | Zero a -> Printf.sprintf "zero@%d" a
  | Le (a, b) -> Printf.sprintf "le@%d<=%d" a b
  | Implies_nonzero (a, b) -> Printf.sprintf "ifset@%d=>%d" a b

let to_string t = String.concat "," (List.map clause_to_string t)

let parse_clause s =
  let fail () = Error (Printf.sprintf "cannot parse recovery clause %S" s) in
  let int_of x = int_of_string_opt x in
  match String.index_opt s '@' with
  | None -> fail ()
  | Some i -> (
      let op = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let split_on sep =
        match String.index_opt rest sep.[0] with
        | Some j when String.length sep = 1 ->
            Some (String.sub rest 0 j, String.sub rest (j + 1) (String.length rest - j - 1))
        | _ -> (
            (* two-char separators "<=" and "=>" *)
            let rec find k =
              if k + 2 > String.length rest then None
              else if String.sub rest k 2 = sep then
                Some (String.sub rest 0 k, String.sub rest (k + 2) (String.length rest - k - 2))
              else find (k + 1)
            in
            if String.length sep = 2 then find 0 else None)
      in
      match op with
      | "i64" -> (
          match split_on "=" with
          | Some (a, v) -> (
              match (int_of a, Int64.of_string_opt v) with
              | Some a, Some v -> Ok (I64_eq (a, v))
              | _ -> fail ())
          | None -> fail ())
      | "u8" -> (
          match split_on "=" with
          | Some (a, v) -> (
              match (int_of a, int_of v) with Some a, Some v -> Ok (U8_eq (a, v)) | _ -> fail ())
          | None -> fail ())
      | "nonzero" -> ( match int_of rest with Some a -> Ok (Nonzero a) | None -> fail ())
      | "zero" -> ( match int_of rest with Some a -> Ok (Zero a) | None -> fail ())
      | "le" -> (
          match split_on "<=" with
          | Some (a, b) -> (
              match (int_of a, int_of b) with Some a, Some b -> Ok (Le (a, b)) | _ -> fail ())
          | None -> fail ())
      | "ifset" -> (
          match split_on "=>" with
          | Some (a, b) -> (
              match (int_of a, int_of b) with
              | Some a, Some b -> Ok (Implies_nonzero (a, b))
              | _ -> fail ())
          | None -> fail ())
      | _ -> fail ())

let parse s =
  let parts = String.split_on_char ',' s |> List.map String.trim |> List.filter (fun p -> p <> "") in
  if parts = [] then Error "empty recovery expression"
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_clause part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok cs, Ok c -> Ok (c :: cs))
      (Ok []) parts
    |> Result.map List.rev

let eval_clause img = function
  | I64_eq (a, v) -> Pmem.Image.get_i64 img a = v
  | U8_eq (a, v) -> Pmem.Image.get_u8 img a = v
  | Nonzero a -> Pmem.Image.get_i64 img a <> 0L
  | Zero a -> Pmem.Image.get_i64 img a = 0L
  | Le (a, b) -> Int64.compare (Pmem.Image.get_i64 img a) (Pmem.Image.get_i64 img b) <= 0
  | Implies_nonzero (a, b) -> Pmem.Image.get_i64 img a = 0L || Pmem.Image.get_i64 img b <> 0L

let eval t img = List.for_all (eval_clause img) t

let recovery t = fun img -> eval t img
