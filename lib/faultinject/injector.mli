(** Deterministic fault injection into step traces.

    Mutates a recorded event stream the way buggy code or hostile
    hardware would: lost writebacks, lost fences, torn stores, doubled
    flushes, spontaneous evictions. A seeded {!plan} selects positions
    as a pure function of (seed, candidate ordinal), so a given plan on
    a given trace always produces the same mutation — the property the
    detector sensitivity matrix and regression tests rely on. *)

type fault =
  | Drop_clf  (** remove a CLF: its store is never written back *)
  | Drop_fence  (** remove a fence: pending writebacks are never drained *)
  | Torn_store
      (** truncate a store at the cache-line boundary (or half width):
          the tail bytes never reach the cache *)
  | Duplicate_flush  (** emit a CLF twice *)
  | Evict_line
      (** insert a spontaneous eviction of the store's last line —
          invisible to detectors, visible to crash images *)

val all_faults : fault list

val fault_name : fault -> string

val fault_of_string : string -> fault option

type target =
  | Nth of int  (** the k-th candidate occurrence (0-based) *)
  | Every of int  (** every k-th candidate *)
  | Last  (** the final candidate — e.g. the trace's closing fence *)
  | All
  | Random of float  (** each candidate independently with probability p *)

type plan = { fault : fault; target : target; seed : int }

val plan : ?target:target -> ?seed:int -> fault -> plan
(** Defaults: [target = Nth 0], fixed seed. *)

type injection = { at : int; fault : fault; note : string }
(** One performed mutation; [at] indexes the {e original} trace. *)

val apply : plan -> Replay.step array -> Replay.step array * injection list
(** Pure: same plan and trace give the same mutated trace. The
    injection list records every mutation performed (possibly empty if
    no candidate matched the target). *)

val pp_injection : Format.formatter -> injection -> unit
