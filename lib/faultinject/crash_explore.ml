type boundaries = Every_op | Fences_only

type failure = {
  index : int;
  step : Replay.step;
  failing_images : int;
  images_checked : int;
}

type result = {
  boundaries_checked : int;
  images_checked : int;
  failures : failure list;
}

let is_boundary boundaries step =
  match boundaries with
  | Fences_only -> Replay.is_fence step
  | Every_op -> Replay.is_store step || Replay.is_clf step || Replay.is_fence step

let check_images st ~max_images ~recovery =
  let images = Pmem.State.crash_images st ~max_images () in
  let failing = List.fold_left (fun acc img -> if recovery img then acc else acc + 1) 0 images in
  (failing, List.length images)

let explore ?(boundaries = Every_op) ?(max_images = 64) ?(stop_at_first = false)
    ?(metrics = Obs.Metrics.disabled) ~recovery steps =
  let st = Pmem.State.create () in
  let n = Array.length steps in
  let boundaries_checked = ref 0 and images_checked = ref 0 and failures = ref [] in
  let i = ref 0 and stop = ref false in
  while (not !stop) && !i < n do
    let step = steps.(!i) in
    Replay.apply st step;
    if is_boundary boundaries step then begin
      incr boundaries_checked;
      let failing, checked = check_images st ~max_images ~recovery in
      images_checked := !images_checked + checked;
      if failing > 0 then begin
        failures := { index = !i; step; failing_images = failing; images_checked = checked } :: !failures;
        if stop_at_first then stop := true
      end
    end;
    incr i
  done;
  Obs.Metrics.inc metrics ~by:!boundaries_checked "crash_explore_prefixes_replayed_total";
  Obs.Metrics.inc metrics ~by:!images_checked "crash_explore_images_tested_total";
  { boundaries_checked = !boundaries_checked; images_checked = !images_checked; failures = List.rev !failures }

let minimal_failing_prefix ?max_images ?metrics ~recovery steps =
  match (explore ?max_images ?metrics ~stop_at_first:true ~recovery steps).failures with
  | f :: _ -> Some f
  | [] -> None

(* Two-pass search for the minimal failing prefix: a coarse pass that
   samples crash images only at fences (cheap — this is exactly what
   Crash_check does per fence), then a fine event-by-event pass confined
   to the window between the last passing fence and the failing one.
   When every fence passes but the caller knows the trace is bad (an
   inconsistency window that closes before the next fence), fall back to
   the full fine scan. *)
let bisect ?(max_images = 64) ?(metrics = Obs.Metrics.disabled) ~recovery steps =
  let n = Array.length steps in
  let st = Pmem.State.create () in
  let last_ok = ref (-1) in
  let coarse_fail = ref None in
  let i = ref 0 in
  let note_check checked =
    Obs.Metrics.inc metrics "crash_explore_prefixes_replayed_total";
    Obs.Metrics.inc metrics ~by:checked "crash_explore_images_tested_total"
  in
  while !coarse_fail = None && !i < n do
    let step = steps.(!i) in
    Replay.apply st step;
    if Replay.is_fence step then begin
      let failing, checked = check_images st ~max_images ~recovery in
      note_check checked;
      if failing > 0 then coarse_fail := Some (!i, failing, checked) else last_ok := !i
    end;
    incr i
  done;
  match !coarse_fail with
  | None -> minimal_failing_prefix ~max_images ~metrics ~recovery steps
  | Some (fail_at, _, _) ->
      (* Replay the known-good prefix, then check every boundary inside
         the window. The window always contains a failing boundary: its
         right edge is one. *)
      let st = Pmem.State.create () in
      for j = 0 to !last_ok do
        Replay.apply st steps.(j)
      done;
      let found = ref None in
      let j = ref (!last_ok + 1) in
      while !found = None && !j <= fail_at do
        let step = steps.(!j) in
        Replay.apply st step;
        if is_boundary Every_op step then begin
          let failing, checked = check_images st ~max_images ~recovery in
          note_check checked;
          if failing > 0 then
            found := Some { index = !j; step; failing_images = failing; images_checked = checked }
        end;
        incr j
      done;
      !found
