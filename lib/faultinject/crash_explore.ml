type boundaries = Every_op | Fences_only

type failure = {
  index : int;
  step : Replay.step;
  failing_images : int;
  images_checked : int;
}

type result = {
  boundaries_checked : int;
  images_checked : int;
  failures : failure list;
}

let is_boundary boundaries step =
  match boundaries with
  | Fences_only -> Replay.is_fence step
  | Every_op -> Replay.is_store step || Replay.is_clf step || Replay.is_fence step

let check_images st ~max_images ~recovery =
  let images = Pmem.State.crash_images st ~max_images () in
  (* [crash_images] floors at the two extreme images; a budget remainder
     of one must still be a hard cap. *)
  let images = if max_images < 2 then List.filteri (fun i _ -> i < max_images) images else images in
  let failing = List.fold_left (fun acc img -> if recovery img then acc else acc + 1) 0 images in
  (failing, List.length images)

(* ------------------------------------------------------------------ *)
(* Exploration plans                                                   *)
(* ------------------------------------------------------------------ *)

type plan = {
  steps : Replay.step array;
  boundary_kind : boundaries;
  boundary_indexes : int array;
  boundary_events : int array;
  max_images : int;
  budget : int option;
  seed : int;
  invariants : Infer.Invariant.report option;
}

let make_plan ?(boundaries = Every_op) ?(max_images = 64) ?budget ?(seed = 0x5eed) ?invariants steps =
  let idx = ref [] and evs = ref [] in
  let event_count = ref 0 in
  Array.iteri
    (fun i step ->
      if Replay.event_of_step step <> None then incr event_count;
      if is_boundary boundaries step then begin
        idx := i :: !idx;
        (* Every boundary step (store/CLF/fence) projects to an event,
           so the running event count is >= 1 here. *)
        evs := (!event_count - 1) :: !evs
      end)
    steps;
  {
    steps;
    boundary_kind = boundaries;
    boundary_indexes = Array.of_list (List.rev !idx);
    boundary_events = Array.of_list (List.rev !evs);
    max_images;
    budget;
    seed;
    invariants;
  }

let plan_events plan = Replay.events_of_steps plan.steps

let plan_invariants plan =
  match plan.invariants with Some r -> r | None -> Infer.Analyze.infer (plan_events plan)

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

module type STRATEGY = sig
  type t

  val name : string
  val create : plan -> t
  val schedule : t -> int array
  val dropped : t -> int
  val invariants : t -> Infer.Invariant.report option
end

type instance = Instance : (module STRATEGY with type t = 'a) * 'a -> instance
type strategy = plan -> instance

let strategy_name (Instance ((module S), _)) = S.name
let strategy_schedule (Instance ((module S), t)) = S.schedule t
let strategy_dropped (Instance ((module S), t)) = S.dropped t
let strategy_invariants (Instance ((module S), t)) = S.invariants t

module Exhaustive = struct
  type t = int array

  let name = "exhaustive"
  let create plan = Array.init (Array.length plan.boundary_indexes) Fun.id
  let schedule t = t
  let dropped _ = 0
  let invariants _ = None
end

module Guided = struct
  type t = { order : int array; report : Infer.Invariant.report }

  let name = "guided"

  let create plan =
    let report = plan_invariants plan in
    let risks = Infer.Risk.scores report (plan_events plan) in
    let n = Array.length plan.boundary_indexes in
    let order = Array.init n Fun.id in
    let risk_of pos =
      let ev = plan.boundary_events.(pos) in
      if ev >= 0 && ev < Array.length risks then risks.(ev) else 0.0
    in
    (* Highest risk first; trace order breaks ties, so an unbounded
       guided run visits every boundary exhaustive does. *)
    let cmp a b =
      let c = compare (risk_of b) (risk_of a) in
      if c <> 0 then c else compare a b
    in
    Array.sort cmp order;
    { order; report }

  let schedule t = t.order
  let dropped _ = 0
  let invariants t = Some t.report
end

module Sampled = struct
  type t = { order : int array; dropped : int }

  let name = "sampled"

  let create plan =
    let n = Array.length plan.boundary_indexes in
    let k =
      match plan.budget with
      | None -> n
      | Some b -> min n (max 1 (b / max 1 plan.max_images))
    in
    if k >= n then { order = Array.init n Fun.id; dropped = 0 }
    else begin
      (* Classic reservoir over boundary positions, seeded — a uniform
         k-subset kept in trace order. *)
      let rng = Random.State.make [| plan.seed; n; k |] in
      let res = Array.init k Fun.id in
      for i = k to n - 1 do
        let j = Random.State.int rng (i + 1) in
        if j < k then res.(j) <- i
      done;
      Array.sort compare res;
      { order = res; dropped = n - k }
    end

  let schedule t = t.order
  let dropped t = t.dropped
  let invariants _ = None
end

let exhaustive plan = Instance ((module Exhaustive), Exhaustive.create plan)
let guided plan = Instance ((module Guided), Guided.create plan)
let sampled plan = Instance ((module Sampled), Sampled.create plan)

let strategy_of_string = function
  | "exhaustive" -> Ok exhaustive
  | "guided" -> Ok guided
  | "sampled" -> Ok sampled
  | s -> Error (Printf.sprintf "unknown strategy %S (expected exhaustive|guided|sampled)" s)

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

type outcome = {
  result : result;
  strategy : string;
  scheduled : int;
  explored : int;
  skipped : int;
  invariants_used : Infer.Invariant.report option;
}

let is_monotone order =
  let ok = ref true in
  for i = 1 to Array.length order - 1 do
    if order.(i) <= order.(i - 1) then ok := false
  done;
  !ok

let run ?(stop_at_first = false) ?(metrics = Obs.Metrics.disabled) ~recovery plan strategy =
  let inst = strategy plan in
  let order = strategy_schedule inst in
  let name = strategy_name inst in
  let boundaries_checked = ref 0 and images_checked = ref 0 and failures = ref [] in
  let explored = ref 0 and stop = ref false in
  let budget_left () = match plan.budget with None -> max_int | Some b -> b - !images_checked in
  (* Checks one boundary against the image budget; flips [stop] when the
     budget is exhausted (before spending anything) or on a failure
     under [stop_at_first]. *)
  let check_at st index =
    if budget_left () <= 0 then stop := true
    else begin
      let allowance = min plan.max_images (budget_left ()) in
      incr boundaries_checked;
      incr explored;
      let failing, checked = check_images st ~max_images:allowance ~recovery in
      images_checked := !images_checked + checked;
      if failing > 0 then begin
        failures :=
          { index; step = plan.steps.(index); failing_images = failing; images_checked = checked }
          :: !failures;
        if stop_at_first then stop := true
      end
    end
  in
  if is_monotone order then begin
    (* Trace-ordered schedules (exhaustive, sampled) run as one forward
       replay — the pre-strategy explorer loop. *)
    let st = Pmem.State.create () in
    let m = Array.length order in
    let next = ref 0 and i = ref 0 in
    let n = Array.length plan.steps in
    while (not !stop) && !i < n && !next < m do
      Replay.apply st plan.steps.(!i);
      if plan.boundary_indexes.(order.(!next)) = !i then begin
        check_at st !i;
        incr next
      end;
      incr i
    done
  end
  else begin
    (* Risk-ordered schedules jump around the trace: each boundary gets
       its own prefix replay into a fresh state. Costlier per boundary,
       but guided runs exist to check far fewer boundaries. *)
    let m = Array.length order in
    let k = ref 0 in
    while (not !stop) && !k < m do
      let index = plan.boundary_indexes.(order.(!k)) in
      if budget_left () <= 0 then stop := true
      else begin
        let st = Pmem.State.create () in
        for j = 0 to index do
          Replay.apply st plan.steps.(j)
        done;
        check_at st index
      end;
      incr k
    done
  end;
  let failures = List.sort (fun a b -> compare a.index b.index) !failures in
  let skipped = strategy_dropped inst + (Array.length order - !explored) in
  Obs.Metrics.inc metrics ~by:!boundaries_checked "crash_explore_prefixes_replayed_total";
  Obs.Metrics.inc metrics ~by:!images_checked "crash_explore_images_tested_total";
  Obs.Metrics.inc metrics ~by:!images_checked ~labels:[ ("strategy", name) ] "explore_images_total";
  Obs.Metrics.inc metrics ~by:(List.length failures) "explore_bugs_found_total";
  Obs.Metrics.inc metrics ~by:skipped "explore_skipped_low_risk_total";
  {
    result =
      {
        boundaries_checked = !boundaries_checked;
        images_checked = !images_checked;
        failures;
      };
    strategy = name;
    scheduled = Array.length order;
    explored = !explored;
    skipped;
    invariants_used = strategy_invariants inst;
  }

(* ------------------------------------------------------------------ *)
(* Legacy entry points, now thin wrappers over the driver              *)
(* ------------------------------------------------------------------ *)

let explore ?(boundaries = Every_op) ?(max_images = 64) ?(stop_at_first = false)
    ?(metrics = Obs.Metrics.disabled) ~recovery steps =
  let plan = make_plan ~boundaries ~max_images steps in
  (run ~stop_at_first ~metrics ~recovery plan exhaustive).result

let minimal_failing_prefix ?max_images ?metrics ~recovery steps =
  match (explore ?max_images ?metrics ~stop_at_first:true ~recovery steps).failures with
  | f :: _ -> Some f
  | [] -> None

(* Fine pass shared by both bisection flavours: replay the known-good
   prefix [0, from], then check every Every_op boundary in
   (from, upto]; first failure wins. *)
let scan_window ~max_images ~metrics ~recovery steps ~from ~upto =
  let st = Pmem.State.create () in
  for j = 0 to from do
    Replay.apply st steps.(j)
  done;
  let note_check checked =
    Obs.Metrics.inc metrics "crash_explore_prefixes_replayed_total";
    Obs.Metrics.inc metrics ~by:checked "crash_explore_images_tested_total"
  in
  let found = ref None in
  let j = ref (from + 1) in
  while !found = None && !j <= upto do
    let step = steps.(!j) in
    Replay.apply st step;
    if is_boundary Every_op step then begin
      let failing, checked = check_images st ~max_images ~recovery in
      note_check checked;
      if failing > 0 then
        found := Some { index = !j; step; failing_images = failing; images_checked = checked }
    end;
    incr j
  done;
  !found

(* Two-pass search for the minimal failing prefix: a coarse pass that
   samples crash images only at fences (cheap — this is exactly what
   Crash_check does per fence), then a fine event-by-event pass confined
   to the window between the last passing fence and the failing one.
   When every fence passes but the caller knows the trace is bad (an
   inconsistency window that closes before the next fence), fall back to
   the full fine scan.

   With [strategy], the coarse pass is replaced by the strategy's own
   exploration order (risk-first for guided): the first failing boundary
   it reaches caps the search window, and the fine pass verifies no
   earlier boundary fails — so any strategy whose unbounded schedule
   covers all boundaries converges to the same minimal prefix as the
   exhaustive order. *)
let bisect ?(max_images = 64) ?(metrics = Obs.Metrics.disabled) ?strategy ~recovery steps =
  match strategy with
  | Some strategy -> (
      let plan = make_plan ~boundaries:Every_op ~max_images steps in
      let first =
        match (run ~stop_at_first:true ~metrics ~recovery plan strategy).result.failures with
        | f :: _ -> Some f
        | [] -> None
      in
      match first with
      | None -> None
      | Some f -> (
          match scan_window ~max_images ~metrics ~recovery steps ~from:(-1) ~upto:(f.index - 1) with
          | Some earlier -> Some earlier
          | None -> Some f))
  | None -> (
      let n = Array.length steps in
      let st = Pmem.State.create () in
      let last_ok = ref (-1) in
      let coarse_fail = ref None in
      let i = ref 0 in
      let note_check checked =
        Obs.Metrics.inc metrics "crash_explore_prefixes_replayed_total";
        Obs.Metrics.inc metrics ~by:checked "crash_explore_images_tested_total"
      in
      while !coarse_fail = None && !i < n do
        let step = steps.(!i) in
        Replay.apply st step;
        if Replay.is_fence step then begin
          let failing, checked = check_images st ~max_images ~recovery in
          note_check checked;
          if failing > 0 then coarse_fail := Some (!i, failing, checked) else last_ok := !i
        end;
        incr i
      done;
      match !coarse_fail with
      | None -> minimal_failing_prefix ~max_images ~metrics ~recovery steps
      | Some (fail_at, _, _) ->
          (* The window always contains a failing boundary: its right
             edge is one. *)
          scan_window ~max_images ~metrics ~recovery steps ~from:!last_ok ~upto:fail_at)
