open Pmtrace

type step =
  | Ev of Event.t
  | Store_data of { addr : int; data : bytes; tid : int }
  | Evict of { line : int }

let event_of_step = function
  | Ev ev -> Some ev
  | Store_data { addr; data; tid } -> Some (Event.Store { addr; size = Bytes.length data; tid })
  | Evict _ -> None

let events_of_steps steps =
  Array.of_list (List.filter_map event_of_step (Array.to_list steps))

let steps_of_trace trace = Array.map (fun ev -> Ev ev) trace

(* Crash-point exploration is the one trace consumer that genuinely
   needs random access (bisection replays a known-good prefix a second
   time), so a trace file is materialized here — explicitly — instead of
   streamed. Everything detector-facing should prefer
   Trace_io.iter_file. *)
let materialize_file ?synthesize_end path =
  Result.map
    (fun (acc, stats) -> (Array.of_list (List.rev acc), stats))
    (Trace_io.fold_file ?synthesize_end path ~init:[] ~f:(fun acc ev -> Ev ev :: acc))

let ends_with_program_end steps =
  let n = Array.length steps in
  n > 0 && (match steps.(n - 1) with Ev Event.Program_end -> true | _ -> false)

let ensure_end steps =
  if ends_with_program_end steps then steps else Array.append steps [| Ev Event.Program_end |]

let capture ?(ensure_program_end = true) run =
  let engine = Engine.create () in
  let vol = Pmem.State.volatile (Engine.pm engine) in
  let buf = ref [] and n = ref 0 in
  let sink =
    Sink.make ~name:"capture"
      ~on_event:(fun ev ->
        let step =
          match ev with
          | Event.Store { addr; size; tid } ->
              (* The engine applies the store to the volatile image
                 before dispatching, so the payload is readable here —
                 this is how a trace replay reconstructs contents the
                 plain event stream does not carry. *)
              Store_data { addr; data = Pmem.Image.read vol ~addr ~len:size; tid }
          | ev -> Ev ev
        in
        buf := step :: !buf;
        incr n)
      ~finish:(fun () -> Bug.empty_report "capture")
  in
  Engine.attach engine sink;
  run engine;
  Engine.detach_all engine;
  let arr = Array.make (max !n 1) (Ev Event.Program_end) in
  let rec fill i = function
    | [] -> ()
    | s :: rest ->
        arr.(i) <- s;
        fill (i - 1) rest
  in
  fill (!n - 1) !buf;
  let steps = if !n = 0 then [||] else arr in
  if ensure_program_end then ensure_end steps else steps

(* Stores replayed from a payloadless event stream still need bytes:
   fill with a deterministic nonzero pattern so recovery predicates of
   the "field is nonzero" family behave sensibly. *)
let synthetic_payload ~addr ~size =
  Bytes.init size (fun i -> Char.chr ((((addr + i) lxor 0x5a) land 0xff) lor 1))

let apply st = function
  | Store_data { addr; data; _ } -> Pmem.State.store st ~addr data
  | Ev (Event.Store { addr; size; _ }) -> Pmem.State.store st ~addr (synthetic_payload ~addr ~size)
  | Ev (Event.Clf { addr; size; _ }) -> Pmem.State.clf_range st ~lo:addr ~hi:(addr + size)
  | Ev (Event.Fence _) -> Pmem.State.fence st
  | Evict { line } -> Pmem.State.evict st ~line
  | Ev _ -> ()

let is_store = function Ev (Event.Store _) | Store_data _ -> true | _ -> false

let is_clf = function Ev (Event.Clf _) -> true | _ -> false

let is_fence = function Ev (Event.Fence _) -> true | _ -> false

let pp ppf = function
  | Ev ev -> Event.pp ppf ev
  | Store_data { addr; data; tid } -> Format.fprintf ppf "store[t%d] %d+%d (captured)" tid addr (Bytes.length data)
  | Evict { line } -> Format.fprintf ppf "evict line %d" line
