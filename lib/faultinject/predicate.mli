(** A tiny recovery-predicate language for the command line.

    Workload recovery invariants in code are arbitrary OCaml closures;
    trace files need a serializable form. An expression is a
    comma-separated conjunction of clauses over a crash image:

    {v
      i64@ADDR=V        eight bytes at ADDR equal V
      u8@ADDR=V         byte at ADDR equals V
      nonzero@ADDR      i64 at ADDR is not 0
      zero@ADDR         i64 at ADDR is 0
      le@A<=B           i64 at A <= i64 at B (counter never ahead of backup)
      ifset@A=>B        i64 at A is 0, or i64 at B is nonzero (valid flag
                        implies guarded data present)
    v} *)

type clause =
  | I64_eq of int * int64
  | U8_eq of int * int
  | Nonzero of int
  | Zero of int
  | Le of int * int
  | Implies_nonzero of int * int

type t = clause list

val parse : string -> (t, string) result

val to_string : t -> string

val eval : t -> Pmem.Image.t -> bool

val recovery : t -> Pmem.Image.t -> bool
(** [eval] partially applied — the shape {!Crash_explore.explore}
    expects. *)
