open Pmtrace

type fault = Drop_clf | Drop_fence | Torn_store | Duplicate_flush | Evict_line

let all_faults = [ Drop_clf; Drop_fence; Torn_store; Duplicate_flush; Evict_line ]

let fault_name = function
  | Drop_clf -> "drop-clf"
  | Drop_fence -> "drop-fence"
  | Torn_store -> "torn-store"
  | Duplicate_flush -> "duplicate-flush"
  | Evict_line -> "evict-line"

let fault_of_string = function
  | "drop-clf" -> Some Drop_clf
  | "drop-fence" -> Some Drop_fence
  | "torn-store" -> Some Torn_store
  | "duplicate-flush" -> Some Duplicate_flush
  | "evict-line" -> Some Evict_line
  | _ -> None

type target = Nth of int | Every of int | Last | All | Random of float

type plan = { fault : fault; target : target; seed : int }

let plan ?(target = Nth 0) ?(seed = 0x5eed) fault = { fault; target; seed }

(* splitmix-style hash: position selection must be a pure function of
   (seed, candidate ordinal) so a plan is reproducible regardless of
   evaluation order. *)
let mix seed k =
  let z = (seed + (k * 0x9e3779b9)) land max_int in
  let z = (z lxor (z lsr 16)) * 0x85ebca6b land max_int in
  let z = (z lxor (z lsr 13)) * 0xc2b2ae35 land max_int in
  z lxor (z lsr 16)

let unit_float seed k = float_of_int (mix seed k land 0xfffffff) /. float_of_int 0x10000000

let store_span = function
  | Replay.Ev (Event.Store { addr; size; _ }) -> Some (addr, size)
  | Replay.Store_data { addr; data; _ } -> Some (addr, Bytes.length data)
  | _ -> None

let is_candidate fault step =
  match fault with
  | Drop_clf | Duplicate_flush -> Replay.is_clf step
  | Drop_fence -> Replay.is_fence step
  | Torn_store -> (
      match store_span step with Some (_, size) -> size >= 2 | None -> false)
  | Evict_line -> Replay.is_store step

type injection = { at : int; fault : fault; note : string }

let selected plan ~ordinal ~is_last =
  match plan.target with
  | Nth k -> ordinal = k
  | Every k -> k > 0 && ordinal mod k = 0
  | Last -> is_last
  | All -> true
  | Random p -> unit_float plan.seed ordinal < p

let tear_at addr size =
  let line_end = Pmem.Addr.line_base addr + Pmem.Addr.cache_line_size in
  if addr + size > line_end then line_end - addr else max 1 (size / 2)

let torn step =
  match step with
  | Replay.Ev (Event.Store s) ->
      let kept = tear_at s.addr s.size in
      (Replay.Ev (Event.Store { s with size = kept }), kept)
  | Replay.Store_data s ->
      let kept = tear_at s.addr (Bytes.length s.data) in
      (Replay.Store_data { s with data = Bytes.sub s.data 0 kept }, kept)
  | _ -> (step, 0)

let describe step = Format.asprintf "%a" Replay.pp step

let apply (plan : plan) steps =
  let n = Array.length steps in
  (* Candidate ordinals are assigned in trace order; Last needs the
     total count up front. *)
  let total = ref 0 in
  Array.iter (fun s -> if is_candidate plan.fault s then incr total) steps;
  let out = ref [] and injections = ref [] and ordinal = ref 0 in
  let emit s = out := s :: !out in
  let inject at note = injections := { at; fault = plan.fault; note } :: !injections in
  for i = 0 to n - 1 do
    let step = steps.(i) in
    if not (is_candidate plan.fault step) then emit step
    else begin
      let hit = selected plan ~ordinal:!ordinal ~is_last:(!ordinal = !total - 1) in
      incr ordinal;
      if not hit then emit step
      else
        match plan.fault with
        | Drop_clf -> inject i (Printf.sprintf "dropped %s" (describe step))
        | Drop_fence -> inject i (Printf.sprintf "dropped %s" (describe step))
        | Duplicate_flush ->
            emit step;
            emit step;
            inject i (Printf.sprintf "duplicated %s" (describe step))
        | Torn_store ->
            let step', kept = torn step in
            emit step';
            inject i (Printf.sprintf "tore %s: kept first %d byte(s)" (describe step) kept)
        | Evict_line -> (
            emit step;
            match store_span step with
            | Some (addr, size) ->
                (* Evict the last line the store touched: for multi-line
                   writes that is the line most likely to still be
                   pending when the workload flushes front-to-back. *)
                let line = Pmem.Addr.line_of (addr + size - 1) in
                emit (Replay.Evict { line });
                inject i (Printf.sprintf "evicted line %d after %s" line (describe step))
            | None -> ())
    end
  done;
  (Array.of_list (List.rev !out), List.rev !injections)

let pp_injection ppf { at; fault; note } =
  Format.fprintf ppf "@[#%d %s: %s@]" at (fault_name fault) note
