(** Replayable step traces.

    The plain {!Pmtrace.Event.t} stream is enough for the rule-based
    detectors, but crash-point exploration must rebuild actual PM
    contents, which [Store] events do not carry. A [step] augments the
    event stream with captured store payloads and with
    environment-injected actions (spontaneous evictions) that detectors
    must not see. *)

open Pmtrace

type step =
  | Ev of Event.t  (** plain event; a payloadless [Store] replays with a synthetic fill *)
  | Store_data of { addr : int; data : bytes; tid : int }
      (** a store with its captured payload *)
  | Evict of { line : int }
      (** injected spontaneous eviction — applied to the PM state during
          replay but invisible to detectors *)

val capture : ?ensure_program_end:bool -> (Engine.t -> unit) -> step array
(** Run a program on a fresh engine, recording every event and snapping
    each store's payload from the volatile image. Appends a
    [Program_end] step when the program did not emit one (default). *)

val apply : Pmem.State.t -> step -> unit
(** Apply one step to a persistency state: stores write (captured or
    synthetic) bytes, CLFs writeback, fences drain, evictions persist a
    line directly. Non-memory events are no-ops. *)

val event_of_step : step -> Event.t option
(** [None] only for [Evict]. *)

val events_of_steps : step array -> Event.t array
(** Project to the detector-visible event stream (evictions dropped). *)

val steps_of_trace : Event.t array -> step array

val materialize_file :
  ?synthesize_end:bool -> string -> (step array * Trace_io.stream_stats, string) result
(** Load a trace file into a step array (lenient parse; skipped lines
    are reported in the stats). This is the {e explicit} materialization
    point for crash-point exploration, which needs random access over
    the steps for prefix replay — stream with {!Trace_io.iter_file}
    instead wherever events can be consumed one at a time. Stores carry
    no payload in the on-disk format, so they replay with the synthetic
    fill. *)

val ensure_end : step array -> step array
(** Append a [Program_end] step unless the trace already ends with one. *)

val is_store : step -> bool
val is_clf : step -> bool
val is_fence : step -> bool

val pp : Format.formatter -> step -> unit
