open Pmtrace

(* Clean reference programs for the mutation matrix. Each is bug-free
   under the strict model and is shaped so that every fault class has a
   candidate site: multi-line stores (tearable), one CLF per line
   (droppable / duplicable) and a load-bearing closing fence. *)

let kv_pair e =
  Engine.register_pmem e ~base:0 ~size:(1 lsl 16);
  Engine.store_bytes e ~addr:1024 (Bytes.make 160 'v');
  Engine.flush_range e ~addr:1024 ~size:160;
  Engine.sfence e;
  Engine.store_i64 e ~addr:4096 160L;
  Engine.clwb e ~addr:4096;
  Engine.sfence e;
  Engine.program_end e

let log_append e =
  Engine.register_pmem e ~base:0 ~size:(1 lsl 16);
  for i = 0 to 1 do
    Engine.store_bytes e ~addr:(2048 + (i * 256)) (Bytes.make 100 (Char.chr (Char.code 'a' + i)));
    Engine.flush_range e ~addr:(2048 + (i * 256)) ~size:100;
    Engine.sfence e
  done;
  Engine.store_i64 e ~addr:0 2L;
  Engine.clwb e ~addr:0;
  Engine.sfence e;
  Engine.program_end e

let double_buffer e =
  Engine.register_pmem e ~base:0 ~size:(1 lsl 16);
  Engine.store_bytes e ~addr:512 (Bytes.make 128 'b');
  Engine.flush_range e ~addr:512 ~size:128;
  Engine.sfence e;
  Engine.store_i64 e ~addr:8192 1L;
  Engine.clwb e ~addr:8192;
  Engine.sfence e;
  Engine.program_end e

let ring_buffer e =
  Engine.register_pmem e ~base:0 ~size:(1 lsl 16);
  for i = 0 to 2 do
    Engine.store_bytes e ~addr:(1024 + (i * 128)) (Bytes.make 72 (Char.chr (Char.code 'p' + i)));
    Engine.flush_range e ~addr:(1024 + (i * 128)) ~size:72;
    Engine.sfence e
  done;
  Engine.program_end e

let clean_workloads =
  [
    ("kv_pair", kv_pair);
    ("log_append", log_append);
    ("double_buffer", double_buffer);
    ("ring_buffer", ring_buffer);
  ]

(* The detector-visible fault classes. Evict_line is environmental: it
   must NOT be flagged (the program did nothing wrong), which the matrix
   checks separately. *)
let core_faults = [ Injector.Drop_clf; Injector.Drop_fence; Injector.Torn_store; Injector.Duplicate_flush ]

let default_plan = function
  | Injector.Drop_fence ->
      (* A dropped fence in the middle is healed by the next one; the
         closing fence is the one whose loss must be caught. *)
      Injector.plan ~target:Injector.Last Injector.Drop_fence
  | Injector.Evict_line -> Injector.plan ~target:Injector.Last Injector.Evict_line
  | fault -> Injector.plan fault

let detect events =
  let sink = Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict ()) in
  Array.iter sink.Sink.on_event events;
  Bug.kinds_found (sink.Sink.finish ())

type cell = {
  fault : Injector.fault;
  injections : int;
  detected_by : Bug.kind list;
}

type row = {
  workload : string;
  baseline_kinds : Bug.kind list;  (** detector findings on the unmutated trace; must be [] *)
  cells : cell list;
}

let run_row ?(faults = core_faults) (name, program) =
  let steps = Replay.capture program in
  let baseline_kinds = detect (Replay.events_of_steps steps) in
  let cells =
    List.map
      (fun fault ->
        let mutated, injections = Injector.apply (default_plan fault) steps in
        { fault; injections = List.length injections; detected_by = detect (Replay.events_of_steps mutated) })
      faults
  in
  { workload = name; baseline_kinds; cells }

let run_matrix ?faults ?(workloads = clean_workloads) () = List.map (run_row ?faults) workloads

let row_ok r =
  r.baseline_kinds = []
  && List.for_all (fun c -> c.injections > 0 && c.detected_by <> []) r.cells

let matrix_ok rows = rows <> [] && List.for_all row_ok rows
