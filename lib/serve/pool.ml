open Pmtrace

type slot = { failed : string option Atomic.t; result : Bug.report option Atomic.t }

let failed slot = Atomic.get slot.failed

let result slot = Atomic.get slot.result

type msg = Open of int * slot | Ev of int * Event.t | Finish of int | Stop

(* Per-worker observability state, mutated only on the worker's domain.
   The registry is published as an immutable snapshot through [snap]
   (Atomic.set is a release: the dispatch domain reads a fully-built
   value), so `pmdb stats --daemon` merges live worker truth without
   the workers ever sharing a registry. The flight-recorder ring is
   read directly by the dispatch domain at dump time — a benign data
   race (every slot read sees some previously-written value; OCaml's
   memory model keeps it memory-safe), acceptable for a black-box
   diagnostic. *)
type worker_state = {
  labels : Obs.Metrics.labels; (* [("domain", "<i>")] *)
  reg : Obs.Metrics.t;
  ring : Obs.Flightrec.t;
  heatmap : Obs.Heatmap.t;
      (* shared by every session's detector on this worker — hot lines
         are a whole-daemon property, so per-session tables would just
         be merged again anyway *)
  snap : Obs.Metrics.snapshot Atomic.t;
  hm_snap : Obs.Heatmap.snapshot Atomic.t;
  mutable unpublished : int; (* Ev records since the last publish *)
}

let publish_every = 512

let publish st =
  Atomic.set st.snap (Obs.Metrics.snapshot st.reg);
  if Obs.Heatmap.is_on st.heatmap then Atomic.set st.hm_snap (Obs.Heatmap.snapshot st.heatmap);
  st.unpublished <- 0

type t = {
  workers : int;
  queues : msg Spsc.t array;
  mutable domains : unit Domain.t array; (* empty in inline mode *)
  use_domains : bool;
  make_sink : heatmap:Obs.Heatmap.t -> Sink.t;
  states : worker_state array;
  inline_sessions : (int, Engine.t * slot) Hashtbl.t array; (* one per worker, inline mode only *)
}

(* One message step. Runs on the worker domain (or inline on the
   caller's): every detector exception funnels through the engine's
   quarantine — the session's report then carries the failure, exactly
   as an offline replay through an engine would. *)
let handle make_sink st sessions msg =
  match msg with
  | Open (id, slot) ->
      (* The engine records dispatch into the worker's ring (virtual
         seq timestamps); worker metrics stay out of the engine so the
         per-session report is byte-identical to an offline replay. *)
      let engine = Engine.create ~flightrec:st.ring () in
      (match make_sink ~heatmap:st.heatmap with
      | sink -> Engine.attach engine sink
      | exception exn ->
          Atomic.set slot.failed (Some (Printf.sprintf "sink creation raised: %s" (Printexc.to_string exn))));
      Hashtbl.replace sessions id (engine, slot);
      if Obs.Metrics.is_on st.reg then begin
        Obs.Metrics.inc st.reg ~labels:st.labels "serve_worker_sessions_total";
        publish st
      end
  | Ev (id, ev) -> (
      match Hashtbl.find_opt sessions id with
      | None -> ()
      | Some (engine, slot) ->
          Engine.emit engine ev;
          if Obs.Metrics.is_on st.reg then begin
            Obs.Metrics.inc st.reg ~labels:st.labels "serve_worker_events_total";
            st.unpublished <- st.unpublished + 1;
            if st.unpublished >= publish_every then publish st
          end;
          if Atomic.get slot.failed = None then (
            match Engine.quarantined engine with
            | (_, msg) :: _ -> Atomic.set slot.failed (Some msg)
            | [] -> ()))
  | Finish id -> (
      match Hashtbl.find_opt sessions id with
      | None -> ()
      | Some (engine, slot) ->
          Hashtbl.remove sessions id;
          let report =
            match Engine.finish_all engine with
            | r :: _ -> r
            | [] -> Bug.empty_report "serve"
            | exception exn -> { (Bug.empty_report "serve") with Bug.failure = Some (Printexc.to_string exn) }
          in
          (* Publish before the result lands: once the dispatch domain
             sees the report (and replies to the client), the published
             snapshot is guaranteed to cover this whole session. *)
          if Obs.Metrics.is_on st.reg then begin
            Obs.Metrics.inc st.reg ~labels:st.labels "serve_worker_finishes_total";
            publish st
          end;
          Atomic.set slot.result (Some report))
  | Stop -> ()

let worker_loop make_sink st q =
  (* Closing the queue on exit poisons it: a router push after worker
     death raises [Spsc.Closed] instead of blocking forever. *)
  Fun.protect ~finally:(fun () -> Spsc.close q) @@ fun () ->
  let sessions = Hashtbl.create 16 in
  let rec go () =
    match Spsc.pop q with
    | Stop -> ()
    | msg ->
        handle make_sink st sessions msg;
        go ()
    | exception Spsc.Closed -> ()
  in
  go ()

let create ?(domains = true) ?(worker_metrics = false) ?flightrec_capacity ?heatmap_cap ~workers
    ~queue_capacity make_sink =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let queues = Array.init workers (fun _ -> Spsc.create ~capacity:queue_capacity) in
  let states =
    Array.init workers (fun i ->
        let labels = [ ("domain", string_of_int i) ] in
        let reg = Obs.Metrics.create ~enabled:worker_metrics () in
        if worker_metrics then
          (* Declare the series so every worker appears in merged
             snapshots even before its first session. *)
          List.iter
            (fun name -> Obs.Metrics.inc reg ~labels ~by:0 name)
            [ "serve_worker_sessions_total"; "serve_worker_events_total"; "serve_worker_finishes_total" ];
        let ring =
          match flightrec_capacity with
          | None -> Obs.Flightrec.disabled
          | Some capacity -> Obs.Flightrec.create ~capacity ()
        in
        let heatmap =
          match heatmap_cap with
          | None -> Obs.Heatmap.disabled
          | Some cap -> Obs.Heatmap.create ~cap ()
        in
        {
          labels;
          reg;
          ring;
          heatmap;
          snap = Atomic.make (Obs.Metrics.snapshot reg);
          hm_snap = Atomic.make (Obs.Heatmap.snapshot heatmap);
          unpublished = 0;
        })
  in
  let t =
    {
      workers;
      queues;
      domains = [||];
      use_domains = domains;
      make_sink;
      states;
      inline_sessions = Array.init workers (fun _ -> Hashtbl.create 16);
    }
  in
  if domains then
    t.domains <-
      Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop make_sink states.(i) queues.(i)));
  t

let workers t = t.workers

let worker_of t id = id mod t.workers

let send t id msg =
  let w = worker_of t id in
  if t.use_domains then Spsc.push t.queues.(w) msg
  else handle t.make_sink t.states.(w) t.inline_sessions.(w) msg

let try_send t id msg =
  let w = worker_of t id in
  if t.use_domains then Spsc.try_push t.queues.(w) msg
  else begin
    handle t.make_sink t.states.(w) t.inline_sessions.(w) msg;
    true
  end

let open_session t ~id =
  let slot = { failed = Atomic.make None; result = Atomic.make None } in
  send t id (Open (id, slot));
  slot

let submit t ~id ev = send t id (Ev (id, ev))

let try_submit t ~id ev = try_send t id (Ev (id, ev))

let finish_session t ~id = send t id (Finish id)

let queue_length t ~id = if t.use_domains then Spsc.length t.queues.(worker_of t id) else 0

let metrics_snapshots t =
  if t.use_domains then Array.to_list (Array.map (fun st -> Atomic.get st.snap) t.states)
  else Array.to_list (Array.map (fun st -> Obs.Metrics.snapshot st.reg) t.states)

let heatmap_snapshots t =
  if t.use_domains then Array.to_list (Array.map (fun st -> Atomic.get st.hm_snap) t.states)
  else Array.to_list (Array.map (fun st -> Obs.Heatmap.snapshot st.heatmap) t.states)

let flightrec_rings t =
  Array.to_list (Array.mapi (fun i st -> (Printf.sprintf "worker-%d" i, st.ring)) t.states)

let stop t =
  if t.use_domains then begin
    Array.iter (fun q -> try Spsc.push q Stop with Spsc.Closed -> ()) t.queues;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    (* The workers have joined: publish their final registries so the
       daemon's shutdown snapshot is exact. *)
    Array.iter publish t.states
  end
