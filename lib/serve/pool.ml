open Pmtrace

type slot = { failed : string option Atomic.t; result : Bug.report option Atomic.t }

let failed slot = Atomic.get slot.failed

let result slot = Atomic.get slot.result

type msg = Open of int * slot | Ev of int * Event.t | Finish of int | Stop

type t = {
  workers : int;
  queues : msg Spsc.t array;
  mutable domains : unit Domain.t array; (* empty in inline mode *)
  use_domains : bool;
  make_sink : unit -> Sink.t;
  inline_sessions : (int, Engine.t * slot) Hashtbl.t array; (* one per worker, inline mode only *)
}

(* One message step. Runs on the worker domain (or inline on the
   caller's): every detector exception funnels through the engine's
   quarantine — the session's report then carries the failure, exactly
   as an offline replay through an engine would. *)
let handle make_sink sessions msg =
  match msg with
  | Open (id, slot) ->
      let engine = Engine.create () in
      (match make_sink () with
      | sink -> Engine.attach engine sink
      | exception exn ->
          Atomic.set slot.failed (Some (Printf.sprintf "sink creation raised: %s" (Printexc.to_string exn))));
      Hashtbl.replace sessions id (engine, slot)
  | Ev (id, ev) -> (
      match Hashtbl.find_opt sessions id with
      | None -> ()
      | Some (engine, slot) ->
          Engine.emit engine ev;
          if Atomic.get slot.failed = None then (
            match Engine.quarantined engine with
            | (_, msg) :: _ -> Atomic.set slot.failed (Some msg)
            | [] -> ()))
  | Finish id -> (
      match Hashtbl.find_opt sessions id with
      | None -> ()
      | Some (engine, slot) ->
          Hashtbl.remove sessions id;
          let report =
            match Engine.finish_all engine with
            | r :: _ -> r
            | [] -> Bug.empty_report "serve"
            | exception exn -> { (Bug.empty_report "serve") with Bug.failure = Some (Printexc.to_string exn) }
          in
          Atomic.set slot.result (Some report))
  | Stop -> ()

let worker_loop make_sink q =
  (* Closing the queue on exit poisons it: a router push after worker
     death raises [Spsc.Closed] instead of blocking forever. *)
  Fun.protect ~finally:(fun () -> Spsc.close q) @@ fun () ->
  let sessions = Hashtbl.create 16 in
  let rec go () =
    match Spsc.pop q with
    | Stop -> ()
    | msg ->
        handle make_sink sessions msg;
        go ()
    | exception Spsc.Closed -> ()
  in
  go ()

let create ?(domains = true) ~workers ~queue_capacity make_sink =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let queues = Array.init workers (fun _ -> Spsc.create ~capacity:queue_capacity) in
  let t =
    {
      workers;
      queues;
      domains = [||];
      use_domains = domains;
      make_sink;
      inline_sessions = Array.init workers (fun _ -> Hashtbl.create 16);
    }
  in
  if domains then
    t.domains <- Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop make_sink queues.(i)));
  t

let workers t = t.workers

let worker_of t id = id mod t.workers

let send t id msg =
  if t.use_domains then Spsc.push t.queues.(worker_of t id) msg
  else handle t.make_sink t.inline_sessions.(worker_of t id) msg

let try_send t id msg =
  if t.use_domains then Spsc.try_push t.queues.(worker_of t id) msg
  else begin
    handle t.make_sink t.inline_sessions.(worker_of t id) msg;
    true
  end

let open_session t ~id =
  let slot = { failed = Atomic.make None; result = Atomic.make None } in
  send t id (Open (id, slot));
  slot

let submit t ~id ev = send t id (Ev (id, ev))

let try_submit t ~id ev = try_send t id (Ev (id, ev))

let finish_session t ~id = send t id (Finish id)

let queue_length t ~id = if t.use_domains then Spsc.length t.queues.(worker_of t id) else 0

let stop t =
  if t.use_domains then begin
    Array.iter (fun q -> try Spsc.push q Stop with Spsc.Closed -> ()) t.queues;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
