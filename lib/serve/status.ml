type t =
  | Ok
  | Trace_error
  | Detector_error
  | Evicted
  | Timeout
  | Shutdown
  | Protocol_error

let all = [ Ok; Trace_error; Detector_error; Evicted; Timeout; Shutdown; Protocol_error ]

let name = function
  | Ok -> "ok"
  | Trace_error -> "trace-error"
  | Detector_error -> "detector-error"
  | Evicted -> "evicted"
  | Timeout -> "timeout"
  | Shutdown -> "shutdown"
  | Protocol_error -> "protocol-error"

let of_name s = List.find_opt (fun t -> name t = s) all

(* The one exit-code table both `pmdb replay` and daemon sessions use
   (see DESIGN.md "Serving"): 0 clean report, 2 the trace itself is bad,
   3 the detector failed, 4-6 the daemon ended the session early. *)
let exit_code = function
  | Ok -> 0
  | Trace_error | Protocol_error -> 2
  | Detector_error -> 3
  | Evicted -> 4
  | Timeout -> 5
  | Shutdown -> 6

let pp fmt t = Format.pp_print_string fmt (name t)
