open Pmtrace

type phase = Streaming | Draining | Awaiting | Replied

type t = {
  id : int;
  name : string;
  lenient : bool;
  created : float; (* daemon clock at accept, for submit->result latency *)
  partial : Buffer.t;
  pending : (Event.t * int) Queue.t;
  mutable pending_bytes : int;
  mutable lines : int;
  mutable parsed : int;
  mutable delivered : int;
  mutable skipped : int;
  mutable bytes_read : int;
  mutable saw_end : bool;
  mutable synthesized_end : bool;
  mutable last_activity : float;
  mutable phase : phase;
  mutable status : Status.t;
  mutable error : string option;
}

let create ~id ~name ~lenient ~now =
  {
    id;
    name;
    lenient;
    created = now;
    partial = Buffer.create 256;
    pending = Queue.create ();
    pending_bytes = 0;
    lines = 0;
    parsed = 0;
    delivered = 0;
    skipped = 0;
    bytes_read = 0;
    saw_end = false;
    synthesized_end = false;
    last_activity = now;
    phase = Streaming;
    status = Status.Ok;
    error = None;
  }

let id t = t.id

let name t = t.name

let lenient t = t.lenient

let phase t = t.phase

let status t = t.status

let error t = t.error

let events_delivered t = t.delivered

let skipped t = t.skipped

let bytes_read t = t.bytes_read

let synthesized_end t = t.synthesized_end

let last_activity t = t.last_activity

let created t = t.created

let pending_events t = Queue.length t.pending

let live_bytes t = Buffer.length t.partial + t.pending_bytes

(* The cost a queued event is charged against the session budget: its
   wire length plus boxing overhead. What matters is that the charge is
   proportional to the bytes the client actually sent, so a budget in
   bytes bounds both the raw partial-line buffer and the parsed queue. *)
let event_cost line = String.length line + 16

let fail t msg =
  t.status <- Status.Trace_error;
  t.error <- Some msg;
  Error msg

(* Parse one complete line. Strict sessions fail the whole session at
   the first malformed line with the same ["line N: ..."] message the
   strict file replay produces; lenient sessions skip and count it,
   mirroring [pmdb replay --lenient]. *)
let accept_line t line =
  t.lines <- t.lines + 1;
  match Trace_io.event_of_line line with
  | Ok None -> Ok ()
  | Ok (Some ev) ->
      if ev = Event.Program_end then t.saw_end <- true;
      t.parsed <- t.parsed + 1;
      let cost = event_cost line in
      Queue.push (ev, cost) t.pending;
      t.pending_bytes <- t.pending_bytes + cost;
      Ok ()
  | Error msg ->
      if t.lenient then begin
        t.skipped <- t.skipped + 1;
        Ok ()
      end
      else fail t (Printf.sprintf "line %d: %s" t.lines msg)

let feed t ~now buf ~off ~len =
  t.last_activity <- now;
  t.bytes_read <- t.bytes_read + len;
  let result = ref (Ok ()) in
  let i = ref off in
  let stop = off + len in
  while !result = Ok () && !i < stop do
    let c = Bytes.get buf !i in
    incr i;
    if c = '\n' then begin
      let line = Buffer.contents t.partial in
      Buffer.clear t.partial;
      result := accept_line t line
    end
    else Buffer.add_char t.partial c
  done;
  !result

let flush_partial t =
  if Buffer.length t.partial = 0 then Ok ()
  else begin
    let line = Buffer.contents t.partial in
    Buffer.clear t.partial;
    accept_line t line
  end

let peek_pending t = match Queue.peek_opt t.pending with None -> None | Some (ev, _) -> Some ev

let pop_pending t =
  match Queue.take_opt t.pending with
  | None -> None
  | Some (ev, cost) ->
      t.pending_bytes <- t.pending_bytes - cost;
      t.delivered <- t.delivered + 1;
      Some ev

let drop_pending t =
  Queue.clear t.pending;
  t.pending_bytes <- 0;
  Buffer.clear t.partial

let ensure_end t =
  if not t.saw_end then begin
    t.saw_end <- true;
    t.synthesized_end <- true;
    Queue.push (Event.Program_end, 0) t.pending
  end

let set_phase t phase = t.phase <- phase

let terminate t status msg =
  if t.status = Status.Ok then begin
    t.status <- status;
    t.error <- msg
  end
