open Pmtrace

let protocol = "pmdb-serve/1"

let schema = "pmdb-serve/v1"

type hello =
  | Session of { name : string; lenient : bool }
  | Stats
  | Stats_stream of { frames : int }
  | Heatmap
  | Stop

let name_ok name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-' || c = '.')
       name

let hello_line = function
  | Session { name; lenient } -> Printf.sprintf "%s session %s %s" protocol name (if lenient then "lenient" else "strict")
  | Stats -> protocol ^ " stats"
  | Stats_stream { frames } ->
      if frames = 0 then protocol ^ " stats_stream"
      else Printf.sprintf "%s stats_stream %d" protocol frames
  | Heatmap -> protocol ^ " heatmap"
  | Stop -> protocol ^ " stop"

let parse_hello line =
  match String.split_on_char ' ' (String.trim line) with
  | proto :: _ when proto <> protocol -> Error (Printf.sprintf "expected hello %S, got %S" protocol line)
  | [ _; "stats" ] -> Ok Stats
  | [ _; "stats_stream" ] -> Ok (Stats_stream { frames = 0 })
  | [ _; "stats_stream"; n ] -> (
      match int_of_string_opt n with
      | Some frames when frames > 0 -> Ok (Stats_stream { frames })
      | _ -> Error (Printf.sprintf "bad stats_stream frame count %S" n))
  | [ _; "heatmap" ] -> Ok Heatmap
  | [ _; "stop" ] -> Ok Stop
  | [ _; "session"; name ] | [ _; "session"; name; "strict" ] ->
      if name_ok name then Ok (Session { name; lenient = false })
      else Error (Printf.sprintf "bad session name %S" name)
  | [ _; "session"; name; "lenient" ] ->
      if name_ok name then Ok (Session { name; lenient = true })
      else Error (Printf.sprintf "bad session name %S" name)
  | _ -> Error (Printf.sprintf "bad hello %S" line)

(* {2 Bug/report JSON round-trip}

   The encoding is total: every field of {!Bug.t} — including the
   causal chain — survives, so a daemon client can render the returned
   report byte-identically to an offline replay of the same trace. *)

let kind_of_name s = List.find_opt (fun k -> Bug.kind_name k = s) Bug.all_kinds

let cause_to_json (c : Bug.cause) =
  Obs.Json.Obj
    [
      ("seq", Obs.Json.Int c.Bug.c_seq);
      ("class", Obs.Json.Str c.Bug.c_class);
      ("addr", Obs.Json.Int c.Bug.c_addr);
      ("size", Obs.Json.Int c.Bug.c_size);
      ("note", Obs.Json.Str c.Bug.c_note);
    ]

let get_int key json = match Obs.Json.member key json with Some v -> Obs.Json.to_int v | None -> None

let get_str key json = match Obs.Json.member key json with Some v -> Obs.Json.to_str v | None -> None

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function Some v -> Ok v | None -> Error (Printf.sprintf "result JSON: missing %s" what)

let cause_of_json json =
  let* seq = require "cause seq" (get_int "seq" json) in
  let* cls = require "cause class" (get_str "class" json) in
  let* addr = require "cause addr" (get_int "addr" json) in
  let* size = require "cause size" (get_int "size" json) in
  let* note = require "cause note" (get_str "note" json) in
  Ok (Bug.cause ~addr ~size ~note ~cls seq)

let bug_to_json (b : Bug.t) =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str (Bug.kind_name b.Bug.kind));
      ("addr", Obs.Json.Int b.Bug.addr);
      ("size", Obs.Json.Int b.Bug.size);
      ("seq", Obs.Json.Int b.Bug.seq);
      ("detail", Obs.Json.Str b.Bug.detail);
      ("chain", Obs.Json.List (List.map cause_to_json b.Bug.chain));
    ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let bug_of_json json =
  let* kind_name = require "bug kind" (get_str "kind" json) in
  let* kind = require (Printf.sprintf "known bug kind (got %S)" kind_name) (kind_of_name kind_name) in
  let* addr = require "bug addr" (get_int "addr" json) in
  let* size = require "bug size" (get_int "size" json) in
  let* seq = require "bug seq" (get_int "seq" json) in
  let* detail = require "bug detail" (get_str "detail" json) in
  let* chain_json =
    match Obs.Json.member "chain" json with
    | Some (Obs.Json.List l) -> Ok l
    | _ -> Error "result JSON: missing bug chain"
  in
  let* chain = map_result cause_of_json chain_json in
  Ok (Bug.make ~addr ~size ~seq ~detail ~chain kind)

let report_to_json (r : Bug.report) =
  Obs.Json.Obj
    [
      ("detector", Obs.Json.Str r.Bug.detector);
      ("events_processed", Obs.Json.Int r.Bug.events_processed);
      ("failure", match r.Bug.failure with None -> Obs.Json.Null | Some msg -> Obs.Json.Str msg);
      ("bugs", Obs.Json.List (List.map bug_to_json r.Bug.bugs));
      ("stats", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Float v)) r.Bug.stats));
    ]

let report_of_json json =
  let* detector = require "report detector" (get_str "detector" json) in
  let* events_processed = require "report events_processed" (get_int "events_processed" json) in
  let failure = match Obs.Json.member "failure" json with Some (Obs.Json.Str msg) -> Some msg | _ -> None in
  let* bugs_json =
    match Obs.Json.member "bugs" json with Some (Obs.Json.List l) -> Ok l | _ -> Error "result JSON: missing bugs"
  in
  let* bugs = map_result bug_of_json bugs_json in
  let stats =
    match Obs.Json.member "stats" json with
    | Some (Obs.Json.Obj fields) ->
        List.filter_map (fun (k, v) -> match Obs.Json.to_float v with Some f -> Some (k, f) | None -> None) fields
    | _ -> []
  in
  Ok { Bug.detector; events_processed; failure; bugs; stats }

(* {2 Result frames} *)

type result_frame = {
  status : Status.t;
  events : int;
  skipped : int;
  synthesized_end : bool;
  error : string option;
  report : Bug.report option;
}

let result_frame ?(events = 0) ?(skipped = 0) ?(synthesized_end = false) ?error ?report status =
  { status; events; skipped; synthesized_end; error; report }

let result_to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ("status", Obs.Json.Str (Status.name r.status));
      ("exit_code", Obs.Json.Int (Status.exit_code r.status));
      ("events", Obs.Json.Int r.events);
      ("skipped", Obs.Json.Int r.skipped);
      ("synthesized_end", Obs.Json.Bool r.synthesized_end);
      ("error", match r.error with None -> Obs.Json.Null | Some msg -> Obs.Json.Str msg);
      ("report", match r.report with None -> Obs.Json.Null | Some rep -> report_to_json rep);
    ]

let result_of_json json =
  let* () =
    match Obs.Json.member "schema" json with
    | Some (Obs.Json.Str s) when s = schema -> Ok ()
    | Some (Obs.Json.Str s) -> Error (Printf.sprintf "result JSON: unexpected schema %S" s)
    | _ -> Error "result JSON: missing schema"
  in
  let* status_name = require "status" (get_str "status" json) in
  let* status = require (Printf.sprintf "known status (got %S)" status_name) (Status.of_name status_name) in
  let* events = require "events" (get_int "events" json) in
  let* skipped = require "skipped" (get_int "skipped" json) in
  let synthesized_end =
    match Obs.Json.member "synthesized_end" json with Some (Obs.Json.Bool b) -> b | _ -> false
  in
  let error = match Obs.Json.member "error" json with Some (Obs.Json.Str msg) -> Some msg | _ -> None in
  let* report =
    match Obs.Json.member "report" json with
    | Some Obs.Json.Null | None -> Ok None
    | Some rep ->
        let* r = report_of_json rep in
        Ok (Some r)
  in
  Ok { status; events; skipped; synthesized_end; error; report }

let result_to_line r = Obs.Json.to_string ~indent:false (result_to_json r)

let result_of_line line =
  let* json = Obs.Json.of_string line in
  result_of_json json
