(** Bounded worker pool multiplexing per-session detectors over OCaml
    Domains.

    Sessions are sticky: session [id] always runs on worker
    [id mod workers], so detector state never crosses domains. The
    daemon's single dispatch domain is the one producer of every
    worker's SPSC queue; each worker hosts its sessions' engines
    (one {!Pmtrace.Engine.t} + sink per session, created on the worker
    at [open_session]) and publishes results through the session's
    {!slot} — a pair of atomics the dispatch domain polls.

    Fault containment: a detector exception is caught by the session's
    engine (sink quarantine) and surfaces in [failed]; finishing the
    session still yields a partial report with the failure recorded.
    Sibling sessions on the same worker are untouched. A worker domain
    that somehow dies closes its queue, so submissions raise
    {!Pmtrace.Spsc.Closed} rather than wedging the daemon.

    [~domains:false] runs every worker inline on the caller's domain —
    identical logic, deterministic scheduling — for unit and fuzz
    tests. *)

open Pmtrace

type t

type slot
(** Cross-domain result cell for one session. *)

val failed : slot -> string option
(** Set as soon as the session's detector raised (the engine
    quarantined it); the daemon polls this to fail fast instead of
    streaming the rest of the trace into a dead detector. *)

val result : slot -> Bug.report option
(** Set when the worker has finished the session (after
    [finish_session]); the report's [failure] field carries any
    quarantine. *)

val create :
  ?domains:bool (** default true *) ->
  ?worker_metrics:bool
    (** default false: give each worker its own enabled
        {!Obs.Metrics} registry recording
        [serve_worker_sessions_total{domain}],
        [serve_worker_events_total{domain}] and
        [serve_worker_finishes_total{domain}]; immutable snapshots are
        published through an atomic on every open/finish and every 512
        events, so the dispatch domain can fold live worker truth into
        {!Obs.Metrics.merge}d stats without sharing a registry across
        domains. *) ->
  ?flightrec_capacity:int
    (** when given, each worker records into its own
        {!Obs.Flightrec} ring of this capacity (engine dispatch with
        virtual seq timestamps); see {!flightrec_rings}. Default:
        disabled rings. *) ->
  ?heatmap_cap:int
    (** when given, each worker owns an enabled {!Obs.Heatmap} of this
        cap, handed to [make_sink] so the session detectors feed it;
        see {!heatmap_snapshots}. Default: the disabled table. *) ->
  workers:int ->
  queue_capacity:int ->
  (heatmap:Obs.Heatmap.t -> Sink.t) ->
  t
(** [make_sink ~heatmap] is called once per session {e on the worker
    domain}; it must build a fresh, unshared sink. [heatmap] is the
    worker's hot-line table (the disabled singleton unless
    [heatmap_cap] was given) — pass it to the detector, or ignore it.
    It is shared by every session on that worker: hot lines are a
    whole-daemon property, and the table is only ever mutated on the
    worker's own domain. Worker-side telemetry comes from
    [worker_metrics], not the sink — per-session reports stay
    byte-identical to an offline replay. *)

val workers : t -> int

val worker_of : t -> int -> int

val open_session : t -> id:int -> slot
(** Blocking (the Open message must land). *)

val submit : t -> id:int -> Event.t -> unit
(** Blocking while the worker's queue is full; raises
    {!Pmtrace.Spsc.Closed} if the worker died. *)

val try_submit : t -> id:int -> Event.t -> bool
(** [false] when the worker's queue is full — the backpressure signal;
    never blocks. *)

val finish_session : t -> id:int -> unit
(** Ask the worker to finish the session's engine ({!Pmtrace.Engine.finish_all})
    and publish the report into the slot. Blocking push. *)

val queue_length : t -> id:int -> int
(** Occupancy of the worker queue serving [id] (0 inline). *)

val metrics_snapshots : t -> Obs.Metrics.snapshot list
(** One snapshot per worker: the last atomically-published snapshot in
    domain mode (at most 512 events stale; exact after {!stop}), the
    live registry inline. Fold with {!Obs.Metrics.merge}. Empty
    snapshots unless [worker_metrics] was set. *)

val heatmap_snapshots : t -> Obs.Heatmap.snapshot list
(** One snapshot per worker, published on the same cadence as
    {!metrics_snapshots} (live inline). Fold with {!Obs.Heatmap.merge}.
    Empty snapshots unless [heatmap_cap] was given. *)

val flightrec_rings : t -> (string * Obs.Flightrec.t) list
(** The per-worker flight-recorder rings, labelled ["worker-<i>"], for
    {!Obs.Flightrec.dump_to_json}. Reading a ring while its worker is
    live is a benign data race (each entry read sees some
    previously-written value — memory-safe, possibly torn across
    fields): fine for a best-effort black-box dump, not for exact
    accounting. *)

val stop : t -> unit
(** Stop and join every worker. Sessions not yet finished are dropped
    without a report — finish them first for a graceful drain. *)
