(** Per-session ingest state machine — socket-free, so the protocol
    core (line framing, strict/lenient parsing, budget accounting,
    status transitions) is directly unit- and fuzz-testable.

    A session moves through phases:

    {v
      Streaming --(EOF / error / evict / timeout / shutdown)--> Draining
      Draining  --(pending flushed to worker, Finish sent)----> Awaiting
      Awaiting  --(worker report arrived, frame written)------> Replied
    v}

    The daemon owns the transitions; this module owns the data: the
    partial-line buffer, the bounded pending queue of parsed events and
    the byte accounting that the backpressure ladder and the memory
    budget read ({!live_bytes} = partial bytes + queued-event cost, so
    a budget in bytes bounds a client sending one enormous line just as
    well as one outrunning its worker). *)

open Pmtrace

type phase = Streaming | Draining | Awaiting | Replied

type t

val create : id:int -> name:string -> lenient:bool -> now:float -> t

val id : t -> int
val name : t -> string
val lenient : t -> bool
val phase : t -> phase
val set_phase : t -> phase -> unit

val status : t -> Status.t
val error : t -> string option

val terminate : t -> Status.t -> string option -> unit
(** Record the session's terminal status; the first call wins (a
    session already quarantined keeps its original status). *)

val feed : t -> now:float -> Bytes.t -> off:int -> len:int -> (unit, string) result
(** Split the chunk into newline-framed lines and parse each with
    {!Trace_io.event_of_line}. Chunk boundaries are invisible: feeding
    byte-by-byte parses identically to feeding everything at once.
    Strict sessions return [Error "line N: ..."] at the first malformed
    line (and set the status to [Trace_error]); lenient sessions skip
    and count it. *)

val flush_partial : t -> (unit, string) result
(** Parse the final unterminated line, if any (called at client EOF,
    matching the file parsers' treatment of a missing trailing
    newline). *)

val peek_pending : t -> Event.t option
(** The next parsed event, without consuming it — the daemon peeks,
    offers it to the worker with a non-blocking submit, and only pops
    on success, so a full worker queue never loses an event. *)

val pop_pending : t -> Event.t option
(** Take the next parsed event for delivery to the worker. *)

val pending_events : t -> int

val drop_pending : t -> unit
(** Discard undelivered events and the partial line (eviction path). *)

val ensure_end : t -> unit
(** Queue a synthesized [Program_end] unless the stream already carried
    one, so end-of-trace rules fire for truncated sessions — the same
    semantics as lenient replay. *)

val live_bytes : t -> int
(** Bytes this session holds in the daemon: partial line + pending
    queue cost. The per-session budget gates on this. *)

val events_delivered : t -> int
val skipped : t -> int
val bytes_read : t -> int
val synthesized_end : t -> bool
val last_activity : t -> float

val created : t -> float
(** The [now] given to {!create} — the daemon clock at accept. The
    daemon observes [now - created] into [serve_session_e2e_seconds]
    when the result frame is written (submit → result latency). *)
