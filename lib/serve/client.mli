(** Client side of the {!Wire} protocol — used by [pmdb replay
    --daemon], [pmdb stats --daemon], [pmdb serve --stop], the bench's
    synthetic load generators and the fault-tolerance tests.

    Every entry point opens its own connection, performs one exchange
    and closes; errors come back as [Error msg], never exceptions. *)

val replay_file :
  socket:string -> name:string -> ?lenient:bool -> string -> (Wire.result_frame, string) result
(** Stream the trace file at [path] as session [name] and wait for the
    daemon's report. *)

val replay_string :
  socket:string -> name:string -> ?lenient:bool -> string -> (Wire.result_frame, string) result

val raw : socket:string -> string -> (string, string) result
(** Send arbitrary bytes, half-close, return everything the daemon
    answers — the fuzzing hook: whatever we send, the reply must be a
    parseable result frame (or a metrics document for a [stats]
    hello). *)

val stats : socket:string -> (Obs.Metrics.snapshot, string) result
(** Fetch the daemon's live metrics snapshot. *)

val stop : socket:string -> (unit, string) result
(** Ask the daemon to shut down gracefully. *)

type probe = Garbage | Hang

val probe : socket:string -> name:string -> probe -> (Wire.result_frame, string) result
(** Misbehave on purpose. [Garbage] streams unparseable lines (the
    daemon must answer [trace-error]); [Hang] opens a session, sends
    one event and goes silent without closing (the daemon must reap it
    at the idle timeout and answer [timeout]). Both block until the
    daemon's structured reply arrives. *)
