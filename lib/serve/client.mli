(** Client side of the {!Wire} protocol — used by [pmdb replay
    --daemon], [pmdb stats --daemon], [pmdb serve --stop], the bench's
    synthetic load generators and the fault-tolerance tests.

    Every entry point opens its own connection, performs one exchange
    and closes; errors come back as [Error msg], never exceptions. *)

val replay_file :
  socket:string -> name:string -> ?lenient:bool -> string -> (Wire.result_frame, string) result
(** Stream the trace file at [path] as session [name] and wait for the
    daemon's report. *)

val replay_string :
  socket:string -> name:string -> ?lenient:bool -> string -> (Wire.result_frame, string) result

val raw : socket:string -> string -> (string, string) result
(** Send arbitrary bytes, half-close, return everything the daemon
    answers — the fuzzing hook: whatever we send, the reply must be a
    parseable result frame (or a metrics document for a [stats]
    hello). *)

val stats : socket:string -> (Obs.Metrics.snapshot, string) result
(** Fetch the daemon's live metrics snapshot. *)

val heatmap : socket:string -> (Obs.Heatmap.snapshot, string) result
(** Fetch the daemon's merged hot-line table (the per-worker tables
    folded with {!Obs.Heatmap.merge}). Rows are empty unless the daemon
    was started with a heatmap cap. *)

val stats_follow :
  socket:string ->
  ?frames:int ->
  on_frame:(Obs.Metrics.snapshot -> bool) ->
  unit ->
  (int, string) result
(** Subscribe to the daemon's [stats_stream]: each periodic merged
    snapshot is handed to [on_frame], which returns [false] to
    unsubscribe. With [frames > 0] the daemon closes the stream after
    that many frames (default [0]: follow until the daemon goes away
    or [on_frame] says stop). Returns the number of frames seen. *)

val stop : socket:string -> (unit, string) result
(** Ask the daemon to shut down gracefully. *)

type probe = Garbage | Hang

val probe : socket:string -> name:string -> probe -> (Wire.result_frame, string) result
(** Misbehave on purpose. [Garbage] streams unparseable lines (the
    daemon must answer [trace-error]); [Hang] opens a session, sends
    one event and goes silent without closing (the daemon must reap it
    at the idle timeout and answer [timeout]). Both block until the
    daemon's structured reply arrives. *)
