(** The [pmdb serve] daemon: a fault-tolerant multi-session detection
    server on a Unix-domain socket.

    One dispatch domain owns all I/O: a [select] loop accepts
    connections, reads hello lines and event streams, and feeds parsed
    events to a sticky {!Pool} of worker domains (session [id] always
    lands on worker [id mod workers], so detector state never crosses
    domains). Robustness is layered as a backpressure ladder:

    + the worker's bounded SPSC queue — full means the dispatch domain
      stops submitting (non-blocking [try_submit]) and parks events in
      the session's pending queue;
    + the pending queue crossing [pending_watermark] — the daemon stops
      [select]ing that client's fd, so the kernel socket buffer fills
      and the client's writes block (flow control without a protocol);
    + the session's {!Session.live_bytes} crossing [session_budget] —
      the session is evicted: undelivered events are dropped, a
      synthesized [program_end] runs the end-of-trace rules over what
      {e was} delivered, and the client gets a partial report with
      status [evicted].

    Sessions idle past [idle_timeout] are reaped the same way (status
    [timeout], nothing dropped). A malformed line (strict sessions) or
    a detector exception quarantines only that session — the client
    gets a structured error frame, every other session is untouched.
    Shutdown (SIGTERM/SIGINT via {!install_signal_handlers}, a [stop]
    hello, or {!request_stop}) drains every live session through its
    engine's [finish_all] before the process exits.

    {2 Observability}

    Telemetry is domain-safe: the dispatch domain's registry is merged
    ({!Obs.Metrics.merge}) with the workers' atomically-published
    snapshots for every [stats] reply, [stats_stream] frame, and
    metrics-file write, so the numbers are whole-daemon truth — not
    just the dispatch domain's view.

    The daemon also keeps an always-on flight recorder
    ({!Obs.Flightrec}): a fixed ring of recent session transitions,
    quarantines, and backpressure rung changes on the dispatch domain,
    plus one ring per worker fed by engine dispatch. On a quarantine,
    an eviction, or SIGQUIT, the last-N window of every ring is dumped
    into [flightrec_dir] as JSON and a Perfetto trace — a black box
    for "what led up to this?" with no tracing enabled in advance.

    When [metrics_file] is set, a Prometheus text-format rendering of
    the merged snapshot is written atomically (temp file + rename)
    every [stream_interval] seconds and once more at shutdown. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (default 2) *)
  queue_capacity : int;  (** per-worker SPSC slots (default 1024) *)
  session_budget : int;  (** bytes a session may hold in the daemon (default 8 MiB) *)
  idle_timeout : float;  (** seconds; [<= 0.] disables reaping (default 30) *)
  max_sessions : int;  (** connection cap (default 64) *)
  pending_watermark : int;  (** parked events before fd throttling (default 4096) *)
  tick : float;  (** select timeout, the housekeeping cadence (default 20 ms) *)
  stream_interval : float;
      (** seconds between [stats_stream] frames and metrics-file
          writes (default 1.0) *)
  metrics_file : string option;
      (** write Prometheus text exposition here periodically (default
          [None]) *)
  flightrec_capacity : int;
      (** slots per flight-recorder ring; [0] disables recording
          entirely (default 512) *)
  flightrec_dir : string option;
      (** where black-box dumps land; [None] records but never dumps
          (default [None]) *)
  heatmap_cap : int;
      (** distinct cache lines each worker's hot-line table tracks;
          [0] disables the heatmap entirely (default 0) *)
  trace_out : string option;
      (** where daemon-wide causal Perfetto traces land
          ({!Obs.Tracecat}: every flight-recorder ring merged, one
          track per domain, flow arrows pairing frame publish/pop),
          dumped on SIGQUIT and at shutdown; [None] never dumps
          (default [None]) *)
}

val default_config : socket:string -> config

type t

val create :
  ?metrics:Obs.Metrics.t ->
  ?domains:bool (** default true; [false] runs workers inline, for tests *) ->
  make_sink:(heatmap:Obs.Heatmap.t -> Pmtrace.Sink.t) ->
  config ->
  t
(** Binds and listens on [socket_path] (a stale socket file left by a
    dead daemon is detected and replaced; a live daemon on the path is
    an error). [make_sink ~heatmap] runs once per session on the worker
    domain and must build a fresh, unshared sink; [heatmap] is the
    worker's hot-line table (disabled unless [heatmap_cap] > 0) — hand
    it to the detector or ignore it. When [metrics] is enabled the pool
    gives every worker its own registry (see {!Pool.create}) —
    worker-side telemetry never goes through the sink, so reports stay
    byte-identical to an offline replay. *)

val run : t -> unit
(** Serve until stopped; drains sessions, stops workers, writes the
    final metrics file, closes and unlinks the socket before returning
    (also on exception). *)

val request_stop : t -> unit
(** Trigger graceful shutdown from a signal handler or another domain
    (self-pipe; safe to call repeatedly). *)

val request_dump : t -> unit
(** Ask the dispatch loop to dump the flight recorder (reason
    [sigquit]) without stopping; a no-op when [flightrec_dir] is
    unset. *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!request_stop}, SIGQUIT to
    {!request_dump}. *)
