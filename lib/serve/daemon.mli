(** The [pmdb serve] daemon: a fault-tolerant multi-session detection
    server on a Unix-domain socket.

    One dispatch domain owns all I/O: a [select] loop accepts
    connections, reads hello lines and event streams, and feeds parsed
    events to a sticky {!Pool} of worker domains (session [id] always
    lands on worker [id mod workers], so detector state never crosses
    domains). Robustness is layered as a backpressure ladder:

    + the worker's bounded SPSC queue — full means the dispatch domain
      stops submitting (non-blocking [try_submit]) and parks events in
      the session's pending queue;
    + the pending queue crossing [pending_watermark] — the daemon stops
      [select]ing that client's fd, so the kernel socket buffer fills
      and the client's writes block (flow control without a protocol);
    + the session's {!Session.live_bytes} crossing [session_budget] —
      the session is evicted: undelivered events are dropped, a
      synthesized [program_end] runs the end-of-trace rules over what
      {e was} delivered, and the client gets a partial report with
      status [evicted].

    Sessions idle past [idle_timeout] are reaped the same way (status
    [timeout], nothing dropped). A malformed line (strict sessions) or
    a detector exception quarantines only that session — the client
    gets a structured error frame, every other session is untouched.
    Shutdown (SIGTERM/SIGINT via {!install_signal_handlers}, a [stop]
    hello, or {!request_stop}) drains every live session through its
    engine's [finish_all] before the process exits. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (default 2) *)
  queue_capacity : int;  (** per-worker SPSC slots (default 1024) *)
  session_budget : int;  (** bytes a session may hold in the daemon (default 8 MiB) *)
  idle_timeout : float;  (** seconds; [<= 0.] disables reaping (default 30) *)
  max_sessions : int;  (** connection cap (default 64) *)
  pending_watermark : int;  (** parked events before fd throttling (default 4096) *)
  tick : float;  (** select timeout, the housekeeping cadence (default 20 ms) *)
}

val default_config : socket:string -> config

type t

val create :
  ?metrics:Obs.Metrics.t ->
  ?domains:bool (** default true; [false] runs workers inline, for tests *) ->
  make_sink:(unit -> Pmtrace.Sink.t) ->
  config ->
  t
(** Binds and listens on [socket_path] (a stale socket file left by a
    dead daemon is detected and replaced; a live daemon on the path is
    an error). [make_sink] runs once per session on the worker domain
    and must build a fresh, unshared sink with disabled metrics. *)

val run : t -> unit
(** Serve until stopped; drains sessions, stops workers, closes and
    unlinks the socket before returning (also on exception). *)

val request_stop : t -> unit
(** Trigger graceful shutdown from a signal handler or another domain
    (self-pipe; safe to call repeatedly). *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!request_stop}. *)
