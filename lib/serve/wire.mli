(** The daemon's wire protocol.

    A connection opens with one newline-terminated hello line:

    {v
      pmdb-serve/1 session <name> [strict|lenient]   event-stream session
      pmdb-serve/1 stats                             metrics snapshot, then close
      pmdb-serve/1 stats_stream [N]                  periodic snapshot frames
      pmdb-serve/1 heatmap                           hot-line table, then close
      pmdb-serve/1 stop                              graceful daemon shutdown
    v}

    A session then streams newline-framed events in the {!Trace_io}
    line format and half-closes (shutdown of its write side); the
    daemon answers with exactly one {!result_frame} rendered as a
    single JSON line (schema [pmdb-serve/v1]) and closes. [stats]
    connections receive one [pmdb-metrics/v1] JSON document;
    [stats_stream] connections receive one such document per line at
    the daemon's stream interval — [N] frames then close when [N > 0]
    is given, until disconnect (or daemon shutdown) otherwise. Any
    malformed hello gets a [protocol-error] result frame.

    The report embedded in a result frame round-trips every field of
    {!Pmtrace.Bug.report} (findings, causal chains, failure), so a
    client can render it byte-identically to an offline replay. *)

open Pmtrace

val protocol : string
(** The hello-line magic, ["pmdb-serve/1"]. *)

val schema : string
(** Result-frame schema, ["pmdb-serve/v1"]. *)

type hello =
  | Session of { name : string; lenient : bool }
  | Stats
  | Stats_stream of { frames : int }  (** [frames = 0]: stream until disconnect *)
  | Heatmap  (** merged hot-line table, one [pmdb-heatmap/v1] JSON line *)
  | Stop

val hello_line : hello -> string
(** Without the trailing newline. *)

val parse_hello : string -> (hello, string) result

val name_ok : string -> bool
(** Session names: 1-64 chars of [A-Za-z0-9_.-]. *)

val bug_to_json : Bug.t -> Obs.Json.t

val bug_of_json : Obs.Json.t -> (Bug.t, string) result

val report_to_json : Bug.report -> Obs.Json.t

val report_of_json : Obs.Json.t -> (Bug.report, string) result

type result_frame = {
  status : Status.t;
  events : int;  (** events the session delivered to the detector *)
  skipped : int;  (** malformed lines skipped (lenient sessions) *)
  synthesized_end : bool;  (** a [program_end] was appended at EOF *)
  error : string option;  (** e.g. ["line 3: bad event"] for trace errors *)
  report : Bug.report option;  (** absent only for protocol errors *)
}

val result_frame :
  ?events:int ->
  ?skipped:int ->
  ?synthesized_end:bool ->
  ?error:string ->
  ?report:Bug.report ->
  Status.t ->
  result_frame

val result_to_json : result_frame -> Obs.Json.t

val result_of_json : Obs.Json.t -> (result_frame, string) result

val result_to_line : result_frame -> string
(** Single-line JSON, no trailing newline. *)

val result_of_line : string -> (result_frame, string) result
