(** Session outcome vocabulary shared by the daemon, its clients and
    the offline [pmdb replay] path, so "what went wrong" maps to the
    same name and exit code whether a trace was checked offline or
    streamed into a running daemon.

    Exit-code convention (documented in DESIGN.md "Serving"; the tests
    pin it):

    - [Ok] → 0: a report was produced (findings do not affect the code).
    - [Trace_error] / [Protocol_error] → 2: the input was bad — a
      malformed trace line in strict mode, an I/O failure, or a client
      that never spoke the hello protocol.
    - [Detector_error] → 3: the detector raised and was quarantined;
      the report covers the prefix processed before the failure.
    - [Evicted] → 4: the session exceeded its memory budget and was
      evicted with a partial report.
    - [Timeout] → 5: the client went idle past the ingest timeout and
      was reaped with a partial report.
    - [Shutdown] → 6: the daemon was asked to stop while the session
      was still streaming; the partial report covers what arrived. *)

type t =
  | Ok
  | Trace_error
  | Detector_error
  | Evicted
  | Timeout
  | Shutdown
  | Protocol_error

val all : t list

val name : t -> string
(** Stable wire name, e.g. ["trace-error"]. *)

val of_name : string -> t option

val exit_code : t -> int

val pp : Format.formatter -> t -> unit
