let with_conn socket f =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  with
  | fd -> Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot connect to daemon at %s: %s" socket (Unix.error_message err))

let send_all fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

(* The reply is one line; trailing bytes past the newline are the
   daemon's problem, not ours — strip the frame out. *)
let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let wrap_io f =
  try f () with Unix.Unix_error (err, _, _) -> Error (Printf.sprintf "daemon i/o error: %s" (Unix.error_message err))

let half_close fd = try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let result_of_reply raw =
  if raw = "" then Error "daemon closed the connection without a reply"
  else Wire.result_of_line (first_line raw)

(* Send [body] after the hello for session [name], half-close, and read
   the daemon's result frame. *)
let run_session ~socket ~name ~lenient body =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd (Wire.hello_line (Wire.Session { name; lenient }) ^ "\n");
  send_all fd body;
  half_close fd;
  result_of_reply (read_all fd)

let replay_string ~socket ~name ?(lenient = false) body = run_session ~socket ~name ~lenient body

let replay_file ~socket ~name ?(lenient = false) path =
  match In_channel.with_open_bin path In_channel.input_all with
  | body -> run_session ~socket ~name ~lenient body
  | exception Sys_error msg -> Error msg

let raw ~socket body =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd body;
  half_close fd;
  Ok (read_all fd)

let stats ~socket =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd (Wire.hello_line Wire.Stats ^ "\n");
  half_close fd;
  let raw = read_all fd in
  if raw = "" then Error "daemon closed the connection without a reply"
  else
    match Obs.Json.of_string (first_line raw) with
    | Error msg -> Error (Printf.sprintf "stats reply: %s" msg)
    | Ok json -> Obs.Metrics.snapshot_of_json json

let heatmap ~socket =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd (Wire.hello_line Wire.Heatmap ^ "\n");
  half_close fd;
  let raw = read_all fd in
  if raw = "" then Error "daemon closed the connection without a reply"
  else
    match Obs.Json.of_string (first_line raw) with
    | Error msg -> Error (Printf.sprintf "heatmap reply: %s" msg)
    | Ok json -> Obs.Heatmap.snapshot_of_json json

(* Follow a stats_stream: read newline-framed snapshot documents as
   they arrive, handing each to [on_frame]. Bounded ([frames > 0]) the
   daemon closes after the Nth frame; unbounded we read until the
   daemon goes away or [on_frame] returns [false]. *)
let stats_follow ~socket ?(frames = 0) ~on_frame () =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd (Wire.hello_line (Wire.Stats_stream { frames }) ^ "\n");
  half_close fd;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let seen = ref 0 in
  let err = ref None in
  let continue = ref true in
  while !continue do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> continue := false
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        Buffer.clear buf;
        let parts = String.split_on_char '\n' s in
        let rec feed = function
          | [] -> ()
          | [ tail ] -> Buffer.add_string buf tail (* incomplete line *)
          | line :: rest ->
              (if !continue && line <> "" then
                 match Obs.Json.of_string line with
                 | Error msg ->
                     err := Some (Printf.sprintf "stats_stream frame: %s" msg);
                     continue := false
                 | Ok json -> (
                     match Obs.Metrics.snapshot_of_json json with
                     | Error msg ->
                         err := Some (Printf.sprintf "stats_stream frame: %s" msg);
                         continue := false
                     | Ok snap ->
                         incr seen;
                         if not (on_frame snap) then continue := false));
              feed rest
        in
        feed parts
  done;
  match !err with Some msg -> Error msg | None -> Ok !seen

let stop ~socket =
  with_conn socket @@ fun fd ->
  wrap_io @@ fun () ->
  send_all fd (Wire.hello_line Wire.Stop ^ "\n");
  half_close fd;
  match result_of_reply (read_all fd) with
  | Ok frame when frame.Wire.status = Status.Ok -> Ok ()
  | Ok frame -> Error (Printf.sprintf "daemon answered %s" (Status.name frame.Wire.status))
  | Error _ as e -> e

(* Deliberately misbehaving clients, for the CI soak job and the
   fault-tolerance tests. *)
type probe = Garbage | Hang

let probe ~socket ~name kind =
  match kind with
  | Garbage ->
      (* A stream that cannot parse: the daemon must quarantine exactly
         this session and answer a structured trace-error frame. *)
      run_session ~socket ~name ~lenient:false "this is not an event\nnor is this\n"
  | Hang ->
      (* Open a session, send a valid prefix, then go silent without
         half-closing. The daemon must reap us at the idle timeout and
         still send the partial report. *)
      with_conn socket @@ fun fd ->
      wrap_io @@ fun () ->
      send_all fd (Wire.hello_line (Wire.Session { name; lenient = false }) ^ "\n");
      send_all fd "store 1 256 8\n";
      result_of_reply (read_all fd)
