open Pmtrace

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  session_budget : int;
  idle_timeout : float;
  max_sessions : int;
  pending_watermark : int;
  tick : float;
  stream_interval : float;
  metrics_file : string option;
  flightrec_capacity : int;
  flightrec_dir : string option;
  heatmap_cap : int;
  trace_out : string option;
}

let default_config ~socket =
  {
    socket_path = socket;
    workers = 2;
    queue_capacity = 1024;
    session_budget = 8 lsl 20;
    idle_timeout = 30.0;
    max_sessions = 64;
    pending_watermark = 4096;
    tick = 0.02;
    stream_interval = 1.0;
    metrics_file = None;
    flightrec_capacity = 512;
    flightrec_dir = None;
    heatmap_cap = 0;
    trace_out = None;
  }

(* A stats_stream subscriber: [remaining] frames still owed (-1 means
   until disconnect), [last_frame] when the previous one went out. *)
type stream_state = { mutable remaining : int; mutable last_frame : float }

(* A connection's lifecycle. [Hello] reads the first line; a session
   then walks Streaming -> Finishing -> Awaiting (see Session.phase for
   the session-side view); stats/stop connections are answered and
   closed inside the hello handler; stats_stream connections persist
   and are fed from the tick loop. *)
type conn_kind =
  | Hello of Buffer.t
  | Streaming of Session.t * Pool.slot
  | Finishing of Session.t * Pool.slot
  | Awaiting of Session.t * Pool.slot
  | Stats_stream of stream_state

type conn = {
  fd : Unix.file_descr;
  mutable kind : conn_kind;
  mutable eof : bool;
  mutable stalled : bool; (* backpressure: worker queue full this tick *)
  mutable throttled : bool; (* backpressure: fd reads suspended *)
  mutable last_events : int; (* events/sec gauge bookkeeping *)
  mutable last_mark : float;
}

type t = {
  cfg : config;
  metrics : Obs.Metrics.t;
  flightrec : Obs.Flightrec.t; (* dispatch-domain ring, wall-clock timestamps *)
  listener : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  pool : Pool.t;
  mutable conns : conn list;
  mutable next_id : int;
  mutable dump_seq : int;
  mutable last_metrics_write : float;
  mutable stopping : bool;
  mutable running : bool;
}

let now () = Unix.gettimeofday ()

let session_label s = [ ("session", Session.name s) ]

(* {2 Flight recorder} *)

let record t ~cat ~name ~a ~b =
  if Obs.Flightrec.is_on t.flightrec then Obs.Flightrec.record t.flightrec ~ts:(now ()) ~cat ~name ~a ~b

(* The black-box dump: the dispatch ring plus every worker ring,
   written as JSON and as a Perfetto trace. Best-effort by design — a
   failing dump must never take the daemon down. *)
let dump_flightrec t ~reason ~session =
  match t.cfg.flightrec_dir with
  | None -> ()
  | Some dir when Obs.Flightrec.is_on t.flightrec ->
      let n = t.dump_seq in
      t.dump_seq <- n + 1;
      let rings = ("dispatch", t.flightrec) :: Pool.flightrec_rings t.pool in
      let meta =
        [
          ("reason", Obs.Json.Str reason);
          ("session", Obs.Json.Str session);
          ("time", Obs.Json.Float (now ()));
        ]
      in
      let base = Filename.concat dir (Printf.sprintf "flightrec-%s-%s-%d" session reason n) in
      let write path json =
        try
          let tmp = path ^ ".tmp" in
          let oc = open_out tmp in
          output_string oc (Obs.Json.to_string ~indent:true json);
          output_char oc '\n';
          close_out oc;
          Sys.rename tmp path
        with Sys_error _ -> ()
      in
      write (base ^ ".json") (Obs.Flightrec.dump_to_json ~meta rings);
      write (base ^ ".perfetto.json") (Obs.Flightrec.dump_to_perfetto rings)
  | Some _ -> ()

(* The daemon-wide causal trace: every ring merged into one Perfetto
   document (one track per domain, flow arrows pairing frame
   publish/pop). Same best-effort discipline as dump_flightrec. *)
let dump_trace t ~reason =
  match t.cfg.trace_out with
  | None -> ()
  | Some dir when Obs.Flightrec.is_on t.flightrec ->
      let n = t.dump_seq in
      t.dump_seq <- n + 1;
      let rings = ("dispatch", t.flightrec) :: Pool.flightrec_rings t.pool in
      let metadata = [ ("reason", Obs.Json.Str reason); ("time", Obs.Json.Float (now ())) ] in
      let path = Filename.concat dir (Printf.sprintf "trace-%s-%d.perfetto.json" reason n) in
      (try
         let tmp = path ^ ".tmp" in
         let oc = open_out tmp in
         output_string oc (Obs.Json.to_string ~indent:true (Obs.Tracecat.merge ~metadata rings));
         output_char oc '\n';
         close_out oc;
         Sys.rename tmp path
       with Sys_error _ -> ())
  | Some _ -> ()

(* {2 Socket plumbing} *)

let bind_listener path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_UNIX path in
  (try Unix.bind fd addr
   with Unix.Unix_error (Unix.EADDRINUSE, _, _) -> (
     (* A socket file exists. If nobody answers, it is stale — remove
        and rebind; if a daemon answers, refuse to fight it. *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let alive =
       match Unix.connect probe addr with
       | () -> true
       | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
     in
     Unix.close probe;
     if alive then begin
       Unix.close fd;
       failwith (Printf.sprintf "daemon already running on %s" path)
     end
     else begin
       Unix.unlink path;
       Unix.bind fd addr
     end));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let create ?(metrics = Obs.Metrics.disabled) ?(domains = true) ~make_sink cfg =
  let listener = bind_listener cfg.socket_path in
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_r;
  Unix.set_nonblock stop_w;
  let flightrec_on = cfg.flightrec_capacity > 0 in
  let pool =
    Pool.create ~domains
      ~worker_metrics:(Obs.Metrics.is_on metrics)
      ?flightrec_capacity:(if flightrec_on then Some cfg.flightrec_capacity else None)
      ?heatmap_cap:(if cfg.heatmap_cap > 0 then Some cfg.heatmap_cap else None)
      ~workers:cfg.workers ~queue_capacity:cfg.queue_capacity make_sink
  in
  if Obs.Metrics.is_on metrics then begin
    (* Pre-declare the robustness counters so a snapshot shows zeros
       rather than missing series. *)
    List.iter
      (Obs.Metrics.inc metrics ~by:0)
      [
        "serve_sessions_opened_total";
        "serve_evictions_total";
        "serve_timeouts_total";
        "serve_backpressure_stalls_total";
        "serve_protocol_errors_total";
        "serve_conn_errors_total";
        "serve_bytes_read_total";
        "serve_events_total";
      ];
    Obs.Metrics.inc metrics ~by:0 ~labels:[ ("reason", "trace") ] "serve_quarantines_total";
    Obs.Metrics.inc metrics ~by:0 ~labels:[ ("reason", "detector") ] "serve_quarantines_total"
  end;
  {
    cfg;
    metrics;
    flightrec =
      (if flightrec_on then Obs.Flightrec.create ~capacity:cfg.flightrec_capacity ()
       else Obs.Flightrec.disabled);
    listener;
    stop_r;
    stop_w;
    pool;
    conns = [];
    next_id = 0;
    dump_seq = 0;
    last_metrics_write = 0.0;
    stopping = false;
    running = false;
  }

let request_stop t =
  (* Async-signal-safe enough for OCaml signal handlers (they run at
     safe points): one byte down the self-pipe wakes the select. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 's') 0 1) with Unix.Unix_error _ -> ()

let request_dump t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 'q') 0 1) with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  List.iter
    (fun signal -> Sys.set_signal signal (Sys.Signal_handle (fun _ -> request_stop t)))
    [ Sys.sigterm; Sys.sigint ];
  (* SIGQUIT dumps the black box without stopping — kill -QUIT is the
     operator's "what is it doing right now". *)
  try Sys.set_signal Sys.sigquit (Sys.Signal_handle (fun _ -> request_dump t))
  with Invalid_argument _ | Sys_error _ -> ()

(* {2 Replies} *)

(* Replies go out blocking with a send timeout: a client that never
   reads cannot park the daemon (the write fails with EAGAIN after the
   timeout and the connection is dropped). *)
let write_all t fd payload =
  (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  let b = Bytes.of_string payload in
  match
    let off = ref 0 in
    while !off < Bytes.length b do
      let n = Unix.write fd b !off (Bytes.length b - !off) in
      if n = 0 then raise Exit;
      off := !off + n
    done
  with
  | () -> true
  | exception (Unix.Unix_error _ | Exit) ->
      Obs.Metrics.inc t.metrics "serve_conn_errors_total";
      false

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let remove_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  close_fd conn.fd

let reply_frame t conn frame =
  ignore (write_all t conn.fd (Wire.result_to_line frame ^ "\n"));
  remove_conn t conn

(* Final reply for a session connection: zero its gauges (so a closed
   session doesn't show stale queue depths in [stats]) and account the
   terminal status before the frame goes out. *)
let e2e_bounds = [| 0.001; 0.005; 0.02; 0.1; 0.5; 2.0; 10.0; 60.0 |]

let reply_session t conn session frame =
  List.iter
    (fun g -> Obs.Metrics.set t.metrics ~labels:(session_label session) g 0.0)
    [ "serve_queue_depth"; "serve_live_bytes"; "serve_events_per_sec" ];
  (* Submit -> result: accept-time to result-frame-write, the whole
     session life through ingest, drain and detector finish. *)
  Obs.Metrics.observe t.metrics ~bounds:e2e_bounds "serve_session_e2e_seconds"
    (Float.max 0.0 (now () -. Session.created session));
  let status = Status.name (Session.status session) in
  Obs.Metrics.inc t.metrics ~labels:[ ("status", status) ] "serve_sessions_closed_total";
  record t ~cat:"session" ~name:status ~a:(Session.id session) ~b:1;
  reply_frame t conn frame

(* {2 Session termination paths} *)

(* Stop ingesting and drive the session toward its final report:
   optionally drop undelivered events, make sure the detector sees an
   end-of-trace, then let the Finishing flusher hand the rest over. *)
let begin_finish t conn session slot ~drop =
  if drop then Session.drop_pending session;
  Session.ensure_end session;
  Session.set_phase session Session.Draining;
  record t ~cat:"session" ~name:"drain" ~a:(Session.id session) ~b:0;
  conn.kind <- Finishing (session, slot)

let session_result_frame session (report : Bug.report option) =
  let events = match report with Some r -> r.Bug.events_processed | None -> Session.events_delivered session in
  Wire.result_frame ~events ~skipped:(Session.skipped session) ~synthesized_end:(Session.synthesized_end session)
    ?error:(Session.error session) ?report (Session.status session)

(* {2 Hello handling} *)

(* Whole-daemon truth: the dispatch domain's registry merged with the
   latest published snapshot of every worker registry. *)
let merged_snapshot t = Obs.Metrics.merge (Obs.Metrics.snapshot t.metrics :: Pool.metrics_snapshots t.pool)

let stats_json t = Obs.Json.to_string ~indent:false (Obs.Metrics.snapshot_to_json (merged_snapshot t))

let heatmap_json t =
  Obs.Json.to_string ~indent:false
    (Obs.Heatmap.snapshot_to_json (Obs.Heatmap.merge (Pool.heatmap_snapshots t.pool)))

let protocol_error t conn msg =
  Obs.Metrics.inc t.metrics "serve_protocol_errors_total";
  reply_frame t conn (Wire.result_frame ~error:msg Status.Protocol_error)

let handle_hello_line t conn line =
  match Wire.parse_hello line with
  | Error msg -> protocol_error t conn msg
  | Ok Wire.Stats ->
      ignore (write_all t conn.fd (stats_json t ^ "\n"));
      remove_conn t conn
  | Ok (Wire.Stats_stream { frames }) ->
      if t.stopping then protocol_error t conn "daemon is shutting down"
      else
        (* last_frame = 0 makes the first frame go out on the next
           tick, so a follower sees data immediately. *)
        conn.kind <- Stats_stream { remaining = (if frames = 0 then -1 else frames); last_frame = 0.0 }
  | Ok Wire.Heatmap ->
      ignore (write_all t conn.fd (heatmap_json t ^ "\n"));
      remove_conn t conn
  | Ok Wire.Stop ->
      ignore (write_all t conn.fd (Wire.result_to_line (Wire.result_frame Status.Ok) ^ "\n"));
      remove_conn t conn;
      t.stopping <- true
  | Ok (Wire.Session { name; lenient }) ->
      if t.stopping then protocol_error t conn "daemon is shutting down"
      else if List.length t.conns > t.cfg.max_sessions then protocol_error t conn "session limit reached"
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let session = Session.create ~id ~name ~lenient ~now:(now ()) in
        let slot = Pool.open_session t.pool ~id in
        Obs.Metrics.inc t.metrics "serve_sessions_opened_total";
        record t ~cat:"session" ~name:"open" ~a:id ~b:0;
        conn.kind <- Streaming (session, slot)
      end

(* {2 Reading} *)

let read_buf = Bytes.create 65536

(* Strict parse failure: the session is quarantined — structured error
   to this client, every other session untouched. Events parsed before
   the bad line still reach the detector (matching what a strict file
   replay has already fed its sink when it stops). *)
let quarantine_trace t conn session slot msg =
  Obs.Metrics.inc t.metrics ~labels:[ ("reason", "trace") ] "serve_quarantines_total";
  Session.terminate session Status.Trace_error (Some msg);
  record t ~cat:"quarantine" ~name:"trace" ~a:(Session.id session) ~b:0;
  dump_flightrec t ~reason:"trace-quarantine" ~session:(Session.name session);
  begin_finish t conn session slot ~drop:false

let quarantine_detector t conn session slot msg ~drop =
  Obs.Metrics.inc t.metrics ~labels:[ ("reason", "detector") ] "serve_quarantines_total";
  Session.terminate session Status.Detector_error (Some msg);
  record t ~cat:"quarantine" ~name:"detector" ~a:(Session.id session) ~b:0;
  dump_flightrec t ~reason:"detector-quarantine" ~session:(Session.name session);
  if drop then begin_finish t conn session slot ~drop:true

let feed_session t conn session slot bytes_read =
  Obs.Metrics.inc t.metrics ~by:bytes_read "serve_bytes_read_total";
  let t0 = now () in
  let r = Session.feed session ~now:t0 read_buf ~off:0 ~len:bytes_read in
  Obs.Metrics.observe t.metrics "serve_ingest_seconds" (now () -. t0);
  match r with Ok () -> () | Error msg -> quarantine_trace t conn session slot msg

let handle_readable t conn =
  match conn.kind with
  | Hello buf -> (
      match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> remove_conn t conn
      | 0 -> (
          (* EOF mid-hello. An unterminated hello line still gets a
             structured reply (a session so opened is empty and finishes
             immediately); a silent client just goes away. *)
          let s = Buffer.contents buf in
          if s = "" then remove_conn t conn
          else begin
            conn.eof <- true;
            handle_hello_line t conn s;
            match conn.kind with
            | Streaming (session, slot) -> begin_finish t conn session slot ~drop:false
            | _ -> ()
          end)
      | n -> (
          Buffer.add_subbytes buf read_buf 0 n;
          let s = Buffer.contents buf in
          match String.index_opt s '\n' with
          | None ->
              if Buffer.length buf > 512 then protocol_error t conn "hello line too long"
          | Some i ->
              let line = String.sub s 0 i in
              let rest = String.sub s (i + 1) (String.length s - i - 1) in
              handle_hello_line t conn line;
              (* Bytes pipelined behind the hello belong to the session. *)
              (match conn.kind with
              | Streaming (session, slot) when rest <> "" -> (
                  let b = Bytes.of_string rest in
                  Obs.Metrics.inc t.metrics ~by:(Bytes.length b) "serve_bytes_read_total";
                  match Session.feed session ~now:(now ()) b ~off:0 ~len:(Bytes.length b) with
                  | Ok () -> ()
                  | Error msg -> quarantine_trace t conn session slot msg)
              | _ -> ())))
  | Streaming (session, slot) -> (
      match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ ->
          Obs.Metrics.inc t.metrics "serve_conn_errors_total";
          conn.eof <- true;
          begin_finish t conn session slot ~drop:false
      | 0 -> (
          conn.eof <- true;
          match Session.flush_partial session with
          | Ok () -> begin_finish t conn session slot ~drop:false
          | Error msg -> quarantine_trace t conn session slot msg)
      | n -> feed_session t conn session slot n)
  | Stats_stream _ ->
      (* Subscribers only read; a half-close (EOF) is how one-shot
         followers signal "send me my frames and go" — keep streaming,
         a failed frame write reaps the connection. *)
      (match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> remove_conn t conn
      | 0 -> conn.eof <- true
      | _ -> ())
  | Finishing _ | Awaiting _ ->
      (* The reply is pending; ingest is over. Drain and discard
         whatever else the client sends so its writes never block. *)
      (match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error _ -> ()
      | 0 -> conn.eof <- true
      | _ -> ())

(* {2 Per-tick housekeeping} *)

(* Hand pending events to the session's worker, non-blocking: peek,
   offer, pop only on success. Returns [false] when the worker is dead
   (the connection has been replied to and removed). *)
let flush_pending t conn session slot =
  ignore slot;
  try
    let continue = ref true in
    while !continue do
      match Session.peek_pending session with
      | None -> continue := false
      | Some ev ->
          if Pool.try_submit t.pool ~id:(Session.id session) ev then begin
            ignore (Session.pop_pending session);
            Obs.Metrics.inc t.metrics "serve_events_total"
          end
          else begin
            if not conn.stalled then begin
              conn.stalled <- true;
              Obs.Metrics.inc t.metrics "serve_backpressure_stalls_total";
              record t ~cat:"backpressure" ~name:"stall" ~a:(Session.id session)
                ~b:(Pool.queue_length t.pool ~id:(Session.id session))
            end;
            continue := false
          end
    done;
    true
  with Spsc.Closed ->
    (* The worker died; no report will ever arrive. Per the Spsc close
       contract, [try_push] can raise after its element was already
       published, so delivery of the in-flight event is indeterminate —
       irrelevant here, since the session is torn down either way. *)
    Session.terminate session Status.Detector_error (Some "worker domain died");
    reply_session t conn session (session_result_frame session None);
    false

let update_gauges t conn session =
  let n = now () in
  if n -. conn.last_mark >= 0.5 then begin
    let delivered = Session.events_delivered session in
    let rate = float_of_int (delivered - conn.last_events) /. (n -. conn.last_mark) in
    Obs.Metrics.set t.metrics ~labels:(session_label session) "serve_events_per_sec" rate;
    conn.last_events <- delivered;
    conn.last_mark <- n
  end;
  Obs.Metrics.set t.metrics ~labels:(session_label session)
    "serve_queue_depth"
    (float_of_int (Session.pending_events session + Pool.queue_length t.pool ~id:(Session.id session)));
  Obs.Metrics.set t.metrics ~labels:(session_label session) "serve_live_bytes"
    (float_of_int (Session.live_bytes session))

(* A stats_stream frame: one merged-snapshot JSON line. write_all
   switches the fd to blocking; the subscriber stays in the select set,
   so restore nonblock after every frame. *)
let tick_stream t conn st =
  let n = now () in
  if n -. st.last_frame >= t.cfg.stream_interval then begin
    st.last_frame <- n;
    if not (write_all t conn.fd (stats_json t ^ "\n")) then remove_conn t conn
    else begin
      (try Unix.set_nonblock conn.fd with Unix.Unix_error _ -> ());
      if st.remaining > 0 then begin
        st.remaining <- st.remaining - 1;
        if st.remaining = 0 then remove_conn t conn
      end
    end
  end

let tick_conn t conn =
  match conn.kind with
  | Hello _ -> ()
  | Stats_stream st -> tick_stream t conn st
  | Streaming (session, slot) ->
      conn.stalled <- false;
      (* Fd-throttling rung changes are flight-recorder events: the
         black box shows when flow control engaged around a failure. *)
      let throttled_now = Session.pending_events session >= t.cfg.pending_watermark in
      if throttled_now <> conn.throttled then begin
        conn.throttled <- throttled_now;
        record t ~cat:"backpressure"
          ~name:(if throttled_now then "throttle_on" else "throttle_off")
          ~a:(Session.id session) ~b:(Session.pending_events session)
      end;
      (* Detector quarantine surfaces between events. *)
      (match Pool.failed slot with
      | Some msg -> quarantine_detector t conn session slot msg ~drop:true
      | None ->
          (* Budget: partial line + undelivered events. *)
          if Session.live_bytes session > t.cfg.session_budget then begin
            Obs.Metrics.inc t.metrics "serve_evictions_total";
            Session.terminate session Status.Evicted
              (Some
                 (Printf.sprintf "session budget exceeded (%d bytes held > %d budget)"
                    (Session.live_bytes session) t.cfg.session_budget));
            record t ~cat:"backpressure" ~name:"evict" ~a:(Session.id session)
              ~b:(Session.live_bytes session);
            dump_flightrec t ~reason:"eviction" ~session:(Session.name session);
            begin_finish t conn session slot ~drop:true
          end
          else if
            (not conn.eof)
            && t.cfg.idle_timeout > 0.0
            && now () -. Session.last_activity session > t.cfg.idle_timeout
          then begin
            Obs.Metrics.inc t.metrics "serve_timeouts_total";
            Session.terminate session Status.Timeout
              (Some (Printf.sprintf "idle for more than %.1fs" t.cfg.idle_timeout));
            begin_finish t conn session slot ~drop:false
          end
          else if flush_pending t conn session slot then update_gauges t conn session)
  | Finishing (session, slot) ->
      if flush_pending t conn session slot && Session.pending_events session = 0 then (
        match Pool.finish_session t.pool ~id:(Session.id session) with
        | () ->
            Session.set_phase session Session.Awaiting;
            conn.kind <- Awaiting (session, slot)
        | exception Spsc.Closed ->
            Session.terminate session Status.Detector_error (Some "worker domain died");
            reply_session t conn session (session_result_frame session None))
  | Awaiting (session, slot) -> (
      match Pool.result slot with
      | None -> ()
      | Some report ->
          (* A quarantine recorded by the worker engine overrides a clean
             session status: the client must learn the detector failed. *)
          (if Session.status session = Status.Ok then
             match report.Bug.failure with
             | Some msg -> quarantine_detector t conn session slot msg ~drop:false
             | None -> ());
          Session.set_phase session Session.Replied;
          reply_session t conn session (session_result_frame session (Some report)))

(* {2 Prometheus metrics file} *)

(* Atomic periodic exposition: render to a temp file, rename into
   place, so a scraper never reads a half-written document. *)
let write_metrics_file t =
  match t.cfg.metrics_file with
  | None -> ()
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc (Obs.Prometheus.render (merged_snapshot t));
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ -> ())

(* {2 Accept} *)

let accept_loop t =
  let rec go () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        Unix.set_nonblock fd;
        let n = now () in
        t.conns <-
          {
            fd;
            kind = Hello (Buffer.create 64);
            eof = false;
            stalled = false;
            throttled = false;
            last_events = 0;
            last_mark = n;
          }
          :: t.conns;
        go ()
  in
  go ()

(* {2 The main loop} *)

let wants_read t conn =
  match conn.kind with
  | Hello _ -> true
  | Streaming (session, _) ->
      (* Throttle a session outrunning its worker: stop reading its fd,
         so the kernel socket buffer fills and the client's writes
         block — flow control for free. *)
      (not conn.eof) && Session.pending_events session < t.cfg.pending_watermark
  | Stats_stream _ -> not conn.eof
  | Finishing _ | Awaiting _ -> not conn.eof

let begin_shutdown t =
  List.iter
    (fun conn ->
      match conn.kind with
      | Hello _ -> protocol_error t conn "daemon is shutting down"
      | Stats_stream _ ->
          (* One farewell frame so a follower sees the final state. *)
          ignore (write_all t conn.fd (stats_json t ^ "\n"));
          remove_conn t conn
      | Streaming (session, slot) ->
          Session.terminate session Status.Shutdown (Some "daemon is shutting down");
          begin_finish t conn session slot ~drop:false
      | Finishing _ | Awaiting _ -> ())
    t.conns

let run t =
  t.running <- true;
  Fun.protect
    ~finally:(fun () ->
      t.running <- false;
      List.iter (fun c -> close_fd c.fd) t.conns;
      t.conns <- [];
      Pool.stop t.pool;
      (* Workers have joined: the final exposition is exact. *)
      write_metrics_file t;
      dump_trace t ~reason:"shutdown";
      close_fd t.listener;
      close_fd t.stop_r;
      close_fd t.stop_w;
      try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  @@ fun () ->
  let drain_stop_pipe () =
    (* 's' requests shutdown, 'q' (SIGQUIT) a black-box dump. *)
    let b = Bytes.create 16 in
    let dump = ref false in
    let rec go () =
      match Unix.read t.stop_r b 0 16 with
      | n ->
          for i = 0 to n - 1 do
            match Bytes.get b i with
            | 'q' -> dump := true
            | _ -> t.stopping <- true
          done;
          if n = 16 then go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ();
    if !dump then begin
      dump_flightrec t ~reason:"sigquit" ~session:"daemon";
      dump_trace t ~reason:"sigquit"
    end
  in
  let shutdown_started = ref false in
  let continue = ref true in
  while !continue do
    let read_fds =
      t.stop_r
      :: (if t.stopping then [] else [ t.listener ])
      @ List.filter_map (fun c -> if wants_read t c then Some c.fd else None) t.conns
    in
    let readable, _, _ =
      match Unix.select read_fds [] [] t.cfg.tick with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r readable then drain_stop_pipe ();
    if (not t.stopping) && List.mem t.listener readable then accept_loop t;
    List.iter
      (fun conn ->
        if List.mem conn.fd readable then
          try handle_readable t conn
          with exn ->
            (* One connection's failure never takes the daemon down. *)
            Obs.Metrics.inc t.metrics "serve_conn_errors_total";
            ignore exn;
            remove_conn t conn)
      t.conns;
    if t.stopping && not !shutdown_started then begin
      shutdown_started := true;
      begin_shutdown t
    end;
    List.iter
      (fun conn ->
        try tick_conn t conn
        with exn ->
          Obs.Metrics.inc t.metrics "serve_conn_errors_total";
          ignore exn;
          remove_conn t conn)
      t.conns;
    Obs.Metrics.set t.metrics "serve_sessions_active" (float_of_int (List.length t.conns));
    (if t.cfg.metrics_file <> None then
       let n = now () in
       if n -. t.last_metrics_write >= t.cfg.stream_interval then begin
         t.last_metrics_write <- n;
         write_metrics_file t
       end);
    if t.stopping && t.conns = [] then continue := false
  done
