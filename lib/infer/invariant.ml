type kind =
  | Durability of { line : int }
  | Ordering of { first_line : int; then_line : int }
  | Atomicity of { lines : int list; origin : string }

type t = { kind : kind; support : int; violations : int }

type report = {
  events : int;
  stores : int;
  fences : int;
  invariants : t list;
}

let confidence inv =
  let total = inv.support + inv.violations in
  if total = 0 then 0.0 else float_of_int inv.support /. float_of_int total

let kind_tag = function Durability _ -> 0 | Ordering _ -> 1 | Atomicity _ -> 2

let compare_kind a b =
  match (a, b) with
  | Durability { line = la }, Durability { line = lb } -> compare la lb
  | Ordering { first_line = fa; then_line = ta }, Ordering { first_line = fb; then_line = tb } ->
      let c = compare fa fb in
      if c <> 0 then c else compare ta tb
  | Atomicity { lines = la; origin = oa }, Atomicity { lines = lb; origin = ob } ->
      let c = compare la lb in
      if c <> 0 then c else compare oa ob
  | a, b -> compare (kind_tag a) (kind_tag b)

(* Highest-value invariants first: confidence, then weight of evidence,
   then a deterministic structural tiebreak so reports are stable. *)
let compare a b =
  let c = compare (confidence b) (confidence a) in
  if c <> 0 then c
  else
    let c = compare b.support a.support in
    if c <> 0 then c else compare_kind a.kind b.kind

let kind_name = function
  | Durability _ -> "durability"
  | Ordering _ -> "ordering"
  | Atomicity _ -> "atomicity"

let pp ppf inv =
  (match inv.kind with
  | Durability { line } -> Format.fprintf ppf "durability line=%d" line
  | Ordering { first_line; then_line } ->
      Format.fprintf ppf "ordering line %d persists before line %d is stored" first_line then_line
  | Atomicity { lines; origin } ->
      Format.fprintf ppf "atomicity(%s) lines={%a}" origin
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Format.pp_print_int)
        lines);
  Format.fprintf ppf " support=%d violations=%d confidence=%.2f" inv.support inv.violations (confidence inv)

let schema = "pmdb-invariants/v1"

let json_of_invariant inv =
  let open Obs.Json in
  let base =
    match inv.kind with
    | Durability { line } -> [ ("kind", Str "durability"); ("line", Int line) ]
    | Ordering { first_line; then_line } ->
        [ ("kind", Str "ordering"); ("first_line", Int first_line); ("then_line", Int then_line) ]
    | Atomicity { lines; origin } ->
        [
          ("kind", Str "atomicity");
          ("lines", List (List.map (fun l -> Int l) lines));
          ("origin", Str origin);
        ]
  in
  Obj
    (base
    @ [
        ("support", Int inv.support);
        ("violations", Int inv.violations);
        ("confidence", Float (confidence inv));
      ])

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema", Str schema);
      ("events", Int r.events);
      ("stores", Int r.stores);
      ("fences", Int r.fences);
      ("invariants", List (List.map json_of_invariant r.invariants));
    ]

let invariant_of_json j =
  let open Obs.Json in
  let int_field name =
    match Option.bind (member name j) to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "invariant: missing or non-integer %S" name)
  in
  let ( let* ) = Result.bind in
  let* support = int_field "support" in
  let* violations = int_field "violations" in
  if support < 0 || violations < 0 then Error "invariant: negative counts"
  else
    let* kind =
      match Option.bind (member "kind" j) to_str with
      | Some "durability" ->
          let* line = int_field "line" in
          Ok (Durability { line })
      | Some "ordering" ->
          let* first_line = int_field "first_line" in
          let* then_line = int_field "then_line" in
          Ok (Ordering { first_line; then_line })
      | Some "atomicity" ->
          let* origin =
            match Option.bind (member "origin" j) to_str with
            | Some o -> Ok o
            | None -> Error "invariant: atomicity without origin"
          in
          let* lines =
            match member "lines" j with
            | Some (List items) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | it :: rest -> (
                      match to_int it with
                      | Some n -> go (n :: acc) rest
                      | None -> Error "invariant: non-integer line in atomicity group")
                in
                go [] items
            | _ -> Error "invariant: atomicity without lines array"
          in
          if List.length lines < 2 then Error "invariant: atomicity group needs >= 2 lines"
          else Ok (Atomicity { lines; origin })
      | Some k -> Error (Printf.sprintf "invariant: unknown kind %S" k)
      | None -> Error "invariant: missing kind"
    in
    Ok { kind; support; violations }

let of_json j =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (member "schema" j) to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "expected schema %S, got %S" schema s)
    | None -> Error "missing schema"
  in
  let int_field name =
    match Option.bind (member name j) to_int with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (Printf.sprintf "negative %S" name)
    | None -> Error (Printf.sprintf "missing or non-integer %S" name)
  in
  let* events = int_field "events" in
  let* stores = int_field "stores" in
  let* fences = int_field "fences" in
  let* invariants =
    match member "invariants" j with
    | Some (List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | it :: rest ->
              let* inv = invariant_of_json it in
              go (inv :: acc) rest
        in
        go [] items
    | _ -> Error "missing invariants array"
  in
  Ok { events; stores; fences; invariants }

let validate_json j = Result.map (fun (_ : report) -> ()) (of_json j)
