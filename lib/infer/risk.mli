(** Per-boundary crash risk under a set of inferred invariants.

    [scores report events] replays the per-line persistence automaton
    over [events] and returns one score per event position: the risk
    that a crash taken {e right after} that event yields an image
    violating some invariant in [report]. Durability invariants
    contribute while their line is unpersisted; ordering invariants
    while the [first before then] window is open (guard stored, data
    not yet durable); atomicity groups while partially persisted. A
    small base term ranks any boundary with unpersisted state above
    fully-quiescent ones, so guided exploration degrades gracefully
    when no invariant applies. Scores are deterministic. *)

val scores : Invariant.report -> Pmtrace.Event.t array -> float array
