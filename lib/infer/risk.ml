open Pmtrace

type lstate = Sclean | Sdirty | Spending

type line_dyn = {
  mutable dst : lstate;
  mutable stored_ever : bool;
  mutable persisted_ever : bool;
  mutable last_persist : int;  (* event index of the fence that last drained this line *)
}

let base_weight = 0.0625
let base_cap = 16

let unlicensed_weight = 4.0
(** Weight multiplier for an ordering pair whose [then_line] was stored
    {e unlicensed} — without a fresh persist of [first_line] since the
    line's own last persist. That store is a violation in progress: the
    window stays maximally risky (including across [then_line]'s own
    fence, where the durable state itself is already torn) until
    [first_line] catches up with a persist of its own. *)

let scores (report : Invariant.report) events =
  let dur : (int, float) Hashtbl.t = Hashtbl.create 32 in
  let ord = ref [] and atom = ref [] in
  List.iter
    (fun inv ->
      let c = Invariant.confidence inv in
      if c > 0.0 then
        match inv.Invariant.kind with
        | Invariant.Durability { line } ->
            Hashtbl.replace dur line (max c (Option.value ~default:0.0 (Hashtbl.find_opt dur line)))
        | Invariant.Ordering { first_line; then_line } -> ord := (first_line, then_line, c) :: !ord
        | Invariant.Atomicity { lines; _ } -> atom := (lines, c) :: !atom)
    report.Invariant.invariants;
  let ord = Array.of_list !ord and atom = !atom in
  (* Per-pair flag: an unlicensed store to [then_line] has happened and
     [first_line] has not persisted since. *)
  let unlicensed = Array.make (Array.length ord) false in
  let lines : (int, line_dyn) Hashtbl.t = Hashtbl.create 64 in
  let dyn l =
    match Hashtbl.find_opt lines l with
    | Some d -> d
    | None ->
        let d = { dst = Sclean; stored_ever = false; persisted_ever = false; last_persist = -1 } in
        Hashtbl.add lines l d;
        d
  in
  let unpersisted l = match (dyn l).dst with Sdirty | Spending -> true | Sclean -> false in
  let n = Array.length events in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    (match events.(i) with
    | Event.Store { addr; size; _ } ->
        let stored = Pmem.Addr.lines_of_range ~lo:addr ~hi:(addr + size) in
        Array.iteri
          (fun j (a, b, _) ->
            if List.mem b stored then begin
              let da = dyn a and db = dyn b in
              (* Licensed iff [a] persisted more recently than [b]: the
                 guard is fresh for this episode. A store to a line that
                 has lapped its guard opens the violation window. *)
              if db.last_persist >= 0 && da.last_persist <= db.last_persist then unlicensed.(j) <- true
            end)
          ord;
        List.iter
          (fun l ->
            let d = dyn l in
            d.dst <- Sdirty;
            d.stored_ever <- true)
          stored
    | Event.Clf { addr; size; _ } ->
        List.iter
          (fun l ->
            let d = dyn l in
            if d.dst = Sdirty then d.dst <- Spending)
          (Pmem.Addr.lines_of_range ~lo:addr ~hi:(addr + size))
    | Event.Fence _ ->
        Hashtbl.iter
          (fun _ d ->
            if d.dst = Spending then begin
              d.dst <- Sclean;
              d.persisted_ever <- true;
              d.last_persist <- i
            end)
          lines;
        Array.iteri
          (fun j (a, _, _) -> if (dyn a).last_persist = i then unlicensed.(j) <- false)
          ord
    | _ -> ());
    (* Risk of crashing right after event [i]: how much invariant-bearing
       state a crash image could tear here. *)
    let s = ref 0.0 in
    let unp = ref 0 in
    Hashtbl.iter
      (fun l d ->
        match d.dst with
        | Sdirty | Spending ->
            incr unp;
            (match Hashtbl.find_opt dur l with Some c -> s := !s +. c | None -> ())
        | Sclean -> ())
      lines;
    s := !s +. (base_weight *. float_of_int (min base_cap !unp));
    Array.iteri
      (fun j (a, b, c) ->
        (* The [a before b] window: once [a]'s new value is durable and
           [b] has not durably landed, a crash here yields exactly the
           torn image the invariant forbids — full weight. While [a] is
           merely in flight the tear needs the image to pick [a] too, so
           the window is live but cheaper — half weight. An unlicensed
           store to [b] dominates both: the violation is in progress
           until [a] persists again. *)
        let da = dyn a and db = dyn b in
        let b_complete = db.persisted_ever && not (unpersisted b) in
        if not b_complete then
          if da.persisted_ever then s := !s +. c
          else if da.stored_ever then s := !s +. (0.5 *. c);
        if unlicensed.(j) then s := !s +. (unlicensed_weight *. c))
      ord;
    List.iter
      (fun (g, c) ->
        let started = List.exists (fun l -> (dyn l).stored_ever) g in
        let complete =
          List.for_all (fun l -> (dyn l).persisted_ever && not (unpersisted l)) g
        in
        if started && not complete then s := !s +. c)
      atom;
    out.(i) <- !s
  done;
  out
