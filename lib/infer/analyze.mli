(** The dependency-analysis pass: one linear scan over a seq-stamped
    event trace tracking per-cache-line persistence state (clean →
    dirty → pending → clean across store/CLF/fence), fence-interval
    store sets and recently-active lines, emitting candidate
    {!Invariant.t}s with support/violation counts.

    [report], when given, folds {!Pmtrace.Bug.t} provenance chains into
    the evidence: a bug's primary line boosts its durability invariant,
    and consecutive chain causes on distinct lines boost the
    corresponding ordering pair — the detector's causal history names
    exactly the relationships worth exploring around. *)

val infer : ?report:Pmtrace.Bug.report -> Pmtrace.Event.t array -> Invariant.report
