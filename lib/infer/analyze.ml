open Pmtrace

type lstate = Lclean | Ldirty | Lpending

type line_info = {
  mutable st : lstate;
  mutable episodes : int;
  mutable dur_support : int;
  mutable dur_violations : int;
  mutable last_persist : int;  (* event index of the fence that last drained this line *)
}

type pair_counts = { mutable p_support : int; mutable p_violations : int }

let recent_cap = 8
let pattern_group_cap = 8
let max_invariants = 512

let lines_of ~addr ~size = Pmem.Addr.lines_of_range ~lo:addr ~hi:(addr + size)

let infer ?report events =
  let lines : (int, line_info) Hashtbl.t = Hashtbl.create 64 in
  let info l =
    match Hashtbl.find_opt lines l with
    | Some i -> i
    | None ->
        let i = { st = Lclean; episodes = 0; dur_support = 0; dur_violations = 0; last_persist = -1 } in
        Hashtbl.add lines l i;
        i
  in
  let pairs : (int * int, pair_counts) Hashtbl.t = Hashtbl.create 64 in
  let pair a b =
    match Hashtbl.find_opt pairs (a, b) with
    | Some p -> p
    | None ->
        let p = { p_support = 0; p_violations = 0 } in
        Hashtbl.add pairs (a, b) p;
        p
  in
  (* Most-recently-stored distinct lines, newest first, capped. *)
  let recent = ref [] in
  let touch_recent l =
    let rest = List.filter (fun x -> x <> l) !recent in
    let rec take n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl in
    recent := l :: take (recent_cap - 1) rest
  in
  (* Fence-interval bookkeeping: the set of lines stored in the current
     interval, and any tx-logged lines. Closed at every fence (and at
     end of trace); each closed interval's store set feeds atomicity
     support/violation counting in a second pass. *)
  let interval_stores : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let interval_tx : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let closed_intervals = ref [] in
  let tx_groups : (int list, int) Hashtbl.t = Hashtbl.create 8 in
  let var_groups : (int list, unit) Hashtbl.t = Hashtbl.create 8 in
  let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  let close_interval () =
    let stored = sorted_keys interval_stores in
    if stored <> [] then closed_intervals := stored :: !closed_intervals;
    let logged = sorted_keys interval_tx in
    if List.length logged >= 2 then
      Hashtbl.replace tx_groups logged (1 + Option.value ~default:0 (Hashtbl.find_opt tx_groups logged));
    Hashtbl.reset interval_stores;
    Hashtbl.reset interval_tx
  in
  let stores = ref 0 and fences = ref 0 in
  Array.iteri
    (fun idx ev ->
      match ev with
      | Event.Store { addr; size; _ } ->
          incr stores;
          List.iter
            (fun l ->
              (* Ordering template: every line recently persisted (or
                 mid-episode) when [l] is stored votes on "that line
                 persists before [l] is stored". A clean line supports
                 the pair only when its persist is {e fresh} — newer
                 than [l]'s own last persist. A stale guard (persisted
                 before [l]'s previous episode, i.e. [l] has lapped it)
                 is exactly the counter-ahead-of-backup shape, so it
                 votes against the pair instead. *)
              let il = info l in
              List.iter
                (fun a ->
                  if a <> l then begin
                    let ia = info a in
                    match ia.st with
                    | Lclean ->
                        if ia.episodes > 0 then
                          if ia.last_persist > il.last_persist then
                            (pair a l).p_support <- (pair a l).p_support + 1
                          else (pair a l).p_violations <- (pair a l).p_violations + 1
                    | Ldirty | Lpending -> (pair a l).p_violations <- (pair a l).p_violations + 1
                  end)
                !recent;
              let i = info l in
              i.st <- Ldirty;
              Hashtbl.replace interval_stores l ();
              touch_recent l)
            (lines_of ~addr ~size)
      | Event.Clf { addr; size; _ } ->
          List.iter
            (fun l ->
              let i = info l in
              if i.st = Ldirty then i.st <- Lpending)
            (lines_of ~addr ~size)
      | Event.Fence _ ->
          incr fences;
          Hashtbl.iter
            (fun _ i ->
              if i.st = Lpending then begin
                i.st <- Lclean;
                i.episodes <- i.episodes + 1;
                i.dur_support <- i.dur_support + 1;
                i.last_persist <- idx
              end)
            lines;
          close_interval ()
      | Event.Tx_log { obj_addr; size; _ } ->
          List.iter (fun l -> Hashtbl.replace interval_tx l ()) (lines_of ~addr:obj_addr ~size)
      | Event.Register_var { addr; size; _ } ->
          let ls = lines_of ~addr ~size in
          if List.length ls >= 2 then Hashtbl.replace var_groups (List.sort compare ls) ()
      | Event.Program_end ->
          close_interval ();
          Hashtbl.iter (fun _ i -> if i.st <> Lclean then i.dur_violations <- i.dur_violations + 1) lines
      | _ -> ())
    events;
  close_interval ();
  (* Provenance boost: a bug's causal chain is detector-grade evidence
     of intended persistence relationships on the lines it names. *)
  (match report with
  | None -> ()
  | Some (r : Bug.report) ->
      List.iter
        (fun (bug : Bug.t) ->
          if bug.Bug.addr >= 0 then begin
            let i = info (Pmem.Addr.line_of bug.Bug.addr) in
            i.dur_support <- i.dur_support + 1
          end;
          let rec chain_pairs = function
            | a :: (b :: _ as rest) ->
                (if a.Bug.c_addr >= 0 && b.Bug.c_addr >= 0 then
                   let la = Pmem.Addr.line_of a.Bug.c_addr and lb = Pmem.Addr.line_of b.Bug.c_addr in
                   if la <> lb then (pair la lb).p_support <- (pair la lb).p_support + 1);
                chain_pairs rest
            | _ -> []
          in
          ignore (chain_pairs bug.Bug.chain))
        r.Bug.bugs);
  (* Atomicity candidates: tx-logged groups, registered multi-line vars,
     and store-set patterns recurring across fence intervals. Support and
     violations are counted uniformly against the closed intervals:
     covering the whole group supports it, touching a proper subset
     violates it. *)
  let intervals = !closed_intervals in
  let pattern_counts : (int list, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let n = List.length s in
      if n >= 2 && n <= pattern_group_cap then
        Hashtbl.replace pattern_counts s (1 + Option.value ~default:0 (Hashtbl.find_opt pattern_counts s)))
    intervals;
  let groups : (int list, string) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun g c -> if c >= 2 then Hashtbl.replace groups g "pattern") pattern_counts;
  Hashtbl.iter (fun g () -> Hashtbl.replace groups g "var") var_groups;
  Hashtbl.iter (fun g _ -> Hashtbl.replace groups g "tx-log") tx_groups;
  let atomicity =
    Hashtbl.fold
      (fun g origin acc ->
        let support = ref 0 and violations = ref 0 in
        List.iter
          (fun s ->
            let inter = List.filter (fun l -> List.mem l s) g in
            if inter <> [] then
              if List.length inter = List.length g then incr support else incr violations)
          intervals;
        (* A tx-logged group is intent even if no interval covered it. *)
        (if !support = 0 && origin = "tx-log" then
           match Hashtbl.find_opt tx_groups g with Some c -> support := c | None -> ());
        if !support > 0 || !violations > 0 then
          { Invariant.kind = Invariant.Atomicity { lines = g; origin }; support = !support; violations = !violations }
          :: acc
        else acc)
      groups []
  in
  let durability =
    Hashtbl.fold
      (fun l i acc ->
        if i.dur_support > 0 || i.dur_violations > 0 then
          { Invariant.kind = Invariant.Durability { line = l }; support = i.dur_support; violations = i.dur_violations }
          :: acc
        else acc)
      lines []
  in
  let ordering =
    Hashtbl.fold
      (fun (a, b) p acc ->
        { Invariant.kind = Invariant.Ordering { first_line = a; then_line = b }; support = p.p_support; violations = p.p_violations }
        :: acc)
      pairs []
  in
  let invariants = List.sort Invariant.compare (durability @ ordering @ atomicity) in
  let invariants =
    if List.length invariants <= max_invariants then invariants
    else List.filteri (fun i _ -> i < max_invariants) invariants
  in
  { Invariant.events = Array.length events; stores = !stores; fences = !fences; invariants }
