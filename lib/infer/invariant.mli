(** Candidate persistence invariants inferred from a trace.

    Three WITCHER-style templates, each counted over the whole trace:

    - {b Durability}: stores to [line] follow the store→flush→fence
      discipline (every store episode on the line reaches a fence while
      flushed). Support counts completed episodes; a store left dirty or
      pending at program end is a violation.
    - {b Ordering}: [first_line] is fully persisted before [then_line]
      is stored — the flag-guards-data idiom. Counted at every store to
      [then_line] against the persistence state of [first_line].
    - {b Atomicity}: the [lines] are updated as a unit between fences.
      Groups come from [Tx_log] object ranges ([origin = "tx-log"]),
      multi-line [Register_var] spans ([origin = "var"]), or repeated
      co-stored line sets ([origin = "pattern"]). Support counts fence
      intervals updating the whole group; intervals touching a proper
      subset are violations.

    Confidence is [support / (support + violations)] — an invariant the
    trace never contradicts scores 1.0. *)

type kind =
  | Durability of { line : int }
  | Ordering of { first_line : int; then_line : int }
  | Atomicity of { lines : int list; origin : string }

type t = { kind : kind; support : int; violations : int }

type report = {
  events : int;  (** events analyzed *)
  stores : int;
  fences : int;
  invariants : t list;  (** sorted by {!compare} (best first) *)
}

val confidence : t -> float
(** [support / (support + violations)]; 0.0 when both are zero. *)

val compare : t -> t -> int
(** Confidence descending, then support descending, then a deterministic
    structural tiebreak — report order is stable across runs. *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

val schema : string
(** ["pmdb-invariants/v1"] *)

val to_json : report -> Obs.Json.t
val of_json : Obs.Json.t -> (report, string) result
val validate_json : Obs.Json.t -> (unit, string) result
