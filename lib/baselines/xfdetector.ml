open Pmem
open Pmtrace

type payload = { mutable flushed : bool; seq : int }

type var_state = { mutable stored : bool; mutable persisted : int option }

type t = {
  tree : payload Rangetree.t;
  mutable registered : Addr.range list;
  mutable track_all : bool;
  config : Pmdebugger.Order_config.t;
  vars : (string, Addr.range) Hashtbl.t;
  var_state : (string, var_state) Hashtbl.t;
  funcs_called : (string, unit) Hashtbl.t;
  logged : (int, Addr.range list ref) Hashtbl.t;
  (* Pre-failure trace recorded so far; replayed at every failure point. *)
  mutable prefix : Event.t array ref;
  mutable prefix_len : int;
  max_failure_points : int;
  mutable failure_points : int;
  mutable fences_seen : int;
  mutable next_fp_fence : int;
  pm : State.t option;
  recovery : (Image.t -> bool) option;
  bugs : (Bug.kind * int, Bug.t) Hashtbl.t;
  mutable bug_keys : (Bug.kind * int) list;
  kind_counts : (Bug.kind, int) Hashtbl.t;
  max_bugs_per_kind : int;
  mutable events : int;
  mutable seq : int;
}

let create ?(max_failure_points = 200) ?(config = Pmdebugger.Order_config.empty) ?pm ?recovery
    ?(max_bugs_per_kind = 1000) () =
  {
    tree = Rangetree.create ();
    registered = [];
    track_all = true;
    config;
    vars = Hashtbl.create 8;
    var_state = Hashtbl.create 8;
    funcs_called = Hashtbl.create 8;
    logged = Hashtbl.create 8;
    prefix = ref (Array.make 1024 Event.Program_end);
    prefix_len = 0;
    max_failure_points;
    failure_points = 0;
    fences_seen = 0;
    next_fp_fence = 1;
    pm;
    recovery;
    bugs = Hashtbl.create 64;
    bug_keys = [];
    kind_counts = Hashtbl.create 16;
    max_bugs_per_kind;
    events = 0;
    seq = 0;
  }

let report_bug t kind ~addr ?(size = 0) ~detail () =
  let key = (kind, addr) in
  if not (Hashtbl.mem t.bugs key) then begin
    let n = match Hashtbl.find_opt t.kind_counts kind with None -> 0 | Some n -> n in
    if n < t.max_bugs_per_kind then begin
      Hashtbl.replace t.kind_counts kind (n + 1);
      Hashtbl.replace t.bugs key (Bug.make ~addr ~size ~seq:t.seq ~detail kind);
      t.bug_keys <- key :: t.bug_keys
    end
  end

let record t ev =
  let arr = !(t.prefix) in
  let cap = Array.length arr in
  if t.prefix_len >= cap then begin
    let bigger = Array.make (cap * 2) Event.Program_end in
    Array.blit arr 0 bigger 0 cap;
    t.prefix <- ref bigger
  end;
  !(t.prefix).(t.prefix_len) <- ev;
  t.prefix_len <- t.prefix_len + 1

let in_registered t ~lo ~hi =
  t.track_all || List.exists (fun r -> Addr.overlaps r (Addr.range ~lo ~hi)) t.registered

let on_store t ~addr ~size =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    let store_range = Addr.of_base_size addr size in
    (* The store supersedes exactly the overlapped bytes: flushed
       regions keep their non-overlapped parts flushed. *)
    let visited =
      Rangetree.map_overlapping t.tree ~lo:addr ~hi:(addr + size) ~f:(fun r p ->
          if Addr.covers store_range r then []
          else if not p.flushed then [ (r, p) ]
          else List.map (fun piece -> (piece, { flushed = true; seq = p.seq })) (Addr.diff r store_range))
    in
    if visited > 0 then
      report_bug t Bug.Multiple_overwrites ~addr ~size ~detail:"overwrite before durability guaranteed" ();
    Rangetree.insert t.tree ~lo:addr ~hi:(addr + size) { flushed = false; seq = t.seq };
    if Hashtbl.length t.vars > 0 then
      Hashtbl.iter
        (fun name (r : Addr.range) ->
          if Addr.overlaps r (Addr.range ~lo:addr ~hi:(addr + size)) then begin
            match Hashtbl.find_opt t.var_state name with
            | Some st ->
                st.stored <- true;
                st.persisted <- None
            | None -> Hashtbl.replace t.var_state name { stored = true; persisted = None }
          end)
        t.vars
  end

let on_clf t ~addr ~size =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    let flush = Addr.of_base_size addr size in
    let newly = ref 0 in
    let redundant = ref None in
    let visited =
      Rangetree.map_overlapping t.tree ~lo:addr ~hi:(addr + size) ~f:(fun r p ->
          if p.flushed then begin
            if !redundant = None then redundant := Some (r.Addr.lo, Addr.size r);
            [ (r, p) ]
          end
          else if Addr.covers flush r then begin
            p.flushed <- true;
            incr newly;
            [ (r, p) ]
          end
          else begin
            match Addr.inter r flush with
            | None -> [ (r, p) ]
            | Some covered ->
                incr newly;
                (covered, { flushed = true; seq = p.seq })
                :: List.map (fun part -> (part, { flushed = false; seq = p.seq })) (Addr.diff r covered)
          end)
    in
    (* Redundant only when the writeback persists nothing new; no
       flush-nothing rule (Table 6). *)
    if visited > 0 && !newly = 0 then begin
      let a, s = match !redundant with Some (a, s) -> (a, s) | None -> (addr, size) in
      report_bug t Bug.Redundant_flush ~addr:a ~size:s ~detail:"store flushed again before the fence" ()
    end
  end

let var_persisted t name =
  match Hashtbl.find_opt t.var_state name with Some { persisted = Some _; _ } -> true | _ -> false

let var_addr t name = match Hashtbl.find_opt t.vars name with Some r -> r.Addr.lo | None -> -1

let update_vars_and_check t =
  Hashtbl.iter
    (fun name (r : Addr.range) ->
      match Hashtbl.find_opt t.var_state name with
      | Some st when st.stored && st.persisted = None ->
          if Rangetree.find_first_overlap t.tree ~lo:r.Addr.lo ~hi:r.Addr.hi = None then st.persisted <- Some t.seq
      | _ -> ())
    t.vars;
  List.iter
    (fun (e : Pmdebugger.Order_config.entry) ->
      let gate = match e.Pmdebugger.Order_config.func with None -> true | Some f -> Hashtbl.mem t.funcs_called f in
      if
        e.Pmdebugger.Order_config.kind = Pmdebugger.Order_config.Intra
        && gate
        && var_persisted t e.Pmdebugger.Order_config.next
        && not (var_persisted t e.Pmdebugger.Order_config.first)
      then
        report_bug t Bug.No_order_guarantee
          ~addr:(var_addr t e.Pmdebugger.Order_config.next)
          ~detail:
            (Printf.sprintf "%s persisted before %s" e.Pmdebugger.Order_config.next e.Pmdebugger.Order_config.first)
          ())
    (Pmdebugger.Order_config.entries t.config)

(* The cost model of the two-phase design: reaching failure point k
   means re-executing the whole pre-failure prefix, then executing the
   post-failure (recovery) phase. *)
let simulate_failure_point t =
  if t.failure_points < t.max_failure_points then begin
    t.failure_points <- t.failure_points + 1;
    let arr = !(t.prefix) in
    (* Re-execute the prefix: every store/CLF/fence re-drives a shadow
       persistency state, as the two-phase re-run does. *)
    let lines : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    for i = 0 to t.prefix_len - 1 do
      match arr.(i) with
      | Event.Store { addr; size; _ } ->
          List.iter (fun line -> Hashtbl.replace lines line 1) (Addr.lines_of_range ~lo:addr ~hi:(addr + size))
      | Event.Clf { addr; _ } -> (
          let line = Addr.line_of addr in
          match Hashtbl.find_opt lines line with Some 1 -> Hashtbl.replace lines line 2 | _ -> ())
      | Event.Fence _ ->
          Hashtbl.filter_map_inplace (fun _ state -> if state = 2 then None else Some state) lines
      | _ -> ()
    done;
    ignore (Hashtbl.length lines);
    match (t.pm, t.recovery) with
    | Some pm, Some recovery ->
        let violations = Pmdebugger.Crash_check.violations ~pm ~recovery ~max_images:8 () in
        if violations > 0 then
          report_bug t Bug.Cross_failure_semantic ~addr:(-1)
            ~detail:(Printf.sprintf "failure point %d: %d inconsistent crash image(s)" t.failure_points violations)
            ()
    | _ -> ()
  end

let on_fence t =
  ignore (Rangetree.filter_in_place t.tree (fun _ p -> not p.flushed));
  if not (Pmdebugger.Order_config.is_empty t.config) then update_vars_and_check t;
  (* Failure points are spread geometrically over the execution so long
     runs get analysed end to end within the budget. *)
  t.fences_seen <- t.fences_seen + 1;
  if t.fences_seen >= t.next_fp_fence then begin
    t.next_fp_fence <- t.fences_seen + 1 + (t.fences_seen / 16);
    simulate_failure_point t
  end

let on_tx_log t ~obj_addr ~size ~tid =
  let ranges =
    match Hashtbl.find_opt t.logged tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.logged tid r;
        r
  in
  let range = Addr.of_base_size obj_addr size in
  if List.exists (fun r -> Addr.overlaps r range) !ranges then
    report_bug t Bug.Redundant_logging ~addr:obj_addr ~size ~detail:"object logged more than once in one transaction" ()
  else ranges := range :: !ranges

let on_program_end t =
  (* The final durability sweep presumes the two-phase analysis covered
     the whole execution; once the failure-point budget is exhausted the
     suffix was never analysed and coverage is lost (§7.4: XFDetector
     "has to restrict the number of instrumented failure points to
     reduce its overhead, resulting in lower bug coverage"). *)
  if t.fences_seen <= t.max_failure_points then
    Rangetree.iter t.tree (fun r p ->
        let detail = if p.flushed then "flushed but never fenced (missing fence)" else "never flushed (missing CLF)" in
        report_bug t Bug.No_durability ~addr:r.Addr.lo ~size:(Addr.size r) ~detail ());
  if not (Pmdebugger.Order_config.is_empty t.config) then update_vars_and_check t

let on_event t ev =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  record t ev;
  match ev with
  | Event.Store { addr; size; tid = _ } -> on_store t ~addr ~size
  | Event.Clf { addr; size; tid = _; kind = _ } -> on_clf t ~addr ~size
  | Event.Fence _ -> on_fence t
  | Event.Register_pmem { base; size } ->
      t.track_all <- false;
      t.registered <- Addr.of_base_size base size :: t.registered
  | Event.Register_var { name; addr; size } ->
      Hashtbl.replace t.vars name (Addr.of_base_size addr size);
      if not (Hashtbl.mem t.var_state name) then Hashtbl.replace t.var_state name { stored = false; persisted = None }
  | Event.Call { func; tid = _ } -> Hashtbl.replace t.funcs_called func ()
  | Event.Tx_log { obj_addr; size; tid } -> on_tx_log t ~obj_addr ~size ~tid
  | Event.Epoch_end { tid } -> Hashtbl.remove t.logged tid
  (* No flush-nothing rule, no epoch/strand rules (Table 6). *)
  | Event.Epoch_begin _ | Event.Strand_begin _ | Event.Strand_end _ | Event.Join_strand _ | Event.Annotation _ -> ()
  | Event.Program_end -> on_program_end t

let failure_points_used t = t.failure_points

let sink t =
  Sink.make ~name:"xfdetector"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      {
        Bug.detector = "xfdetector";
        bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_keys;
        events_processed = t.events;
        stats = [ ("failure_points", float_of_int t.failure_points) ];
        failure = None;
      })
