open Pmem
open Pmtrace

type payload = { mutable flushed : bool; seq : int }

type t = {
  tree : payload Rangetree.t;
  mutable registered : Addr.range list;
  mutable track_all : bool;
  bugs : (Bug.kind * int, Bug.t) Hashtbl.t;
  mutable bug_keys : (Bug.kind * int) list;
  kind_counts : (Bug.kind, int) Hashtbl.t;
  max_bugs_per_kind : int;
  mutable events : int;
  mutable seq : int;
  mutable fence_samples : int;
  mutable tree_size_sum : int;
}

let create ?(max_bugs_per_kind = 1000) () =
  {
    tree = Rangetree.create ();
    registered = [];
    track_all = true;
    bugs = Hashtbl.create 64;
    bug_keys = [];
    kind_counts = Hashtbl.create 16;
    max_bugs_per_kind;
    events = 0;
    seq = 0;
    fence_samples = 0;
    tree_size_sum = 0;
  }

let report_bug t kind ~addr ?(size = 0) ~detail () =
  let key = (kind, addr) in
  if not (Hashtbl.mem t.bugs key) then begin
    let n = match Hashtbl.find_opt t.kind_counts kind with None -> 0 | Some n -> n in
    if n < t.max_bugs_per_kind then begin
      Hashtbl.replace t.kind_counts kind (n + 1);
      Hashtbl.replace t.bugs key (Bug.make ~addr ~size ~seq:t.seq ~detail kind);
      t.bug_keys <- key :: t.bug_keys
    end
  end

let in_registered t ~lo ~hi =
  t.track_all || List.exists (fun r -> Addr.overlaps r (Addr.range ~lo ~hi)) t.registered

let reorganize t =
  Rangetree.reorganize t.tree
    ~eq:(fun a b -> a.flushed = b.flushed)
    ~merge:(fun a b -> if a.seq >= b.seq then a else b)

(* The per-store maintenance real pmemcheck performs: merge the freshly
   inserted region with any adjacent same-state neighbours. Counted as a
   reorganization (the paper counts ~3.6 per operation on
   hashmap_atomic). *)
let local_merge t ~lo ~hi (p : payload) =
  (Rangetree.stats t.tree).Rangetree.reorganizations <-
    (Rangetree.stats t.tree).Rangetree.reorganizations + 1;
  let neighbours =
    List.filter
      (fun (_, (q : payload)) -> q.flushed = p.flushed)
      (Rangetree.overlapping t.tree ~lo:(lo - 1) ~hi:(hi + 1))
  in
  if List.length neighbours > 1 then begin
    let lo', hi', seq' =
      List.fold_left
        (fun (a, b, sq) ((r : Addr.range), (q : payload)) -> (min a r.Addr.lo, max b r.Addr.hi, max sq q.seq))
        (lo, hi, p.seq) neighbours
    in
    List.iter
      (fun ((r : Addr.range), (q : payload)) ->
        ignore (Rangetree.remove_first t.tree ~lo:r.Addr.lo ~hi:r.Addr.hi (fun x -> x == q)))
      neighbours;
    (Rangetree.stats t.tree).Rangetree.merges <-
      (Rangetree.stats t.tree).Rangetree.merges + List.length neighbours - 1;
    Rangetree.insert t.tree ~lo:lo' ~hi:hi' { flushed = p.flushed; seq = seq' }
  end

let on_store t ~addr ~size =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    (* The store dirties the line again: overlapping flushed regions
       lose their flushed state, and any overlap at all is a multiple
       overwrite. *)
    let store_range = Addr.of_base_size addr size in
    (* The store supersedes exactly the overlapped bytes: flushed
       regions keep their non-overlapped parts flushed. *)
    let visited =
      Rangetree.map_overlapping t.tree ~lo:addr ~hi:(addr + size) ~f:(fun r p ->
          if Addr.covers store_range r then []
          else if not p.flushed then [ (r, p) ]
          else List.map (fun piece -> (piece, { flushed = true; seq = p.seq })) (Addr.diff r store_range))
    in
    if visited > 0 then
      report_bug t Bug.Multiple_overwrites ~addr ~size ~detail:"overwrite before durability guaranteed" ();
    let p = { flushed = false; seq = t.seq } in
    Rangetree.insert t.tree ~lo:addr ~hi:(addr + size) p;
    local_merge t ~lo:addr ~hi:(addr + size) p
  end

let on_clf t ~addr ~size =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    let flush = Addr.of_base_size addr size in
    let newly = ref 0 in
    let redundant = ref None in
    let visited =
      Rangetree.map_overlapping t.tree ~lo:addr ~hi:(addr + size) ~f:(fun r p ->
          if p.flushed then begin
            if !redundant = None then redundant := Some (r.Addr.lo, Addr.size r);
            [ (r, p) ]
          end
          else if Addr.covers flush r then begin
            p.flushed <- true;
            incr newly;
            [ (r, p) ]
          end
          else begin
            match Addr.inter r flush with
            | None -> [ (r, p) ]
            | Some covered ->
                incr newly;
                (covered, { flushed = true; seq = p.seq })
                :: List.map (fun part -> (part, { flushed = false; seq = p.seq })) (Addr.diff r covered)
          end)
    in
    if visited = 0 then report_bug t Bug.Flush_nothing ~addr ~size ~detail:"CLF persists no prior store" ();
    (* Redundant only when the writeback persists nothing new. *)
    if visited > 0 && !newly = 0 then begin
      let a, s = match !redundant with Some (a, s) -> (a, s) | None -> (addr, size) in
      report_bug t Bug.Redundant_flush ~addr:a ~size:s ~detail:"store flushed again before the fence" ()
    end
  end

let on_fence t =
  t.fence_samples <- t.fence_samples + 1;
  t.tree_size_sum <- t.tree_size_sum + Rangetree.size t.tree;
  ignore (Rangetree.filter_in_place t.tree (fun _ p -> not p.flushed));
  reorganize t

let on_program_end t =
  Rangetree.iter t.tree (fun r p ->
      let detail = if p.flushed then "flushed but never fenced (missing fence)" else "never flushed (missing CLF)" in
      report_bug t Bug.No_durability ~addr:r.Addr.lo ~size:(Addr.size r) ~detail ())

let on_event t ev =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  match ev with
  | Event.Store { addr; size; tid = _ } -> on_store t ~addr ~size
  | Event.Clf { addr; size; tid = _; kind = _ } -> on_clf t ~addr ~size
  | Event.Fence _ -> on_fence t
  | Event.Register_pmem { base; size } ->
      t.track_all <- false;
      t.registered <- Addr.of_base_size base size :: t.registered
  (* Pmemcheck treats transactions as plain instruction streams and has
     no epoch/strand/ordering/logging rules. *)
  | Event.Epoch_begin _ | Event.Epoch_end _ | Event.Strand_begin _ | Event.Strand_end _ | Event.Join_strand _
  | Event.Tx_log _ | Event.Register_var _ | Event.Call _ | Event.Annotation _ ->
      ()
  | Event.Program_end -> on_program_end t

let avg_tree_nodes_per_fence t =
  if t.fence_samples = 0 then 0.0 else float_of_int t.tree_size_sum /. float_of_int t.fence_samples

let reorganizations t = (Rangetree.stats t.tree).Rangetree.reorganizations

let sink t =
  Sink.make ~name:"pmemcheck"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      {
        Bug.detector = "pmemcheck";
        bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_keys;
        events_processed = t.events;
        stats =
          [
            ("avg_tree_nodes_per_fence", avg_tree_nodes_per_fence t);
            ("reorganizations", float_of_int (reorganizations t));
            ("tree_max_size", float_of_int (Rangetree.stats t.tree).Rangetree.max_size);
          ];
        failure = None;
      })
