open Pmem
open Pmtrace

type line_info = {
  mutable dirty : bool;  (** stored since last drain *)
  mutable pending : bool;  (** flushed, waiting for a fence *)
  mutable drain_seq : int;  (** sequence of the fence that last drained it *)
}

type t = {
  lines : (int, line_info) Hashtbl.t;
  mutable pending_lines : int list;
  logged : (int, Addr.range list ref) Hashtbl.t;
  bugs : (Bug.kind * int, Bug.t) Hashtbl.t;
  mutable bug_keys : (Bug.kind * int) list;
  kind_counts : (Bug.kind, int) Hashtbl.t;
  max_bugs_per_kind : int;
  mutable events : int;
  mutable seq : int;
  mutable annotations : int;
}

let create ?(max_bugs_per_kind = 1000) () =
  {
    lines = Hashtbl.create 1024;
    pending_lines = [];
    logged = Hashtbl.create 8;
    bugs = Hashtbl.create 64;
    bug_keys = [];
    kind_counts = Hashtbl.create 16;
    max_bugs_per_kind;
    events = 0;
    seq = 0;
    annotations = 0;
  }

let report_bug t kind ~addr ?(size = 0) ~detail () =
  let key = (kind, addr) in
  if not (Hashtbl.mem t.bugs key) then begin
    let n = match Hashtbl.find_opt t.kind_counts kind with None -> 0 | Some n -> n in
    if n < t.max_bugs_per_kind then begin
      Hashtbl.replace t.kind_counts kind (n + 1);
      Hashtbl.replace t.bugs key (Bug.make ~addr ~size ~seq:t.seq ~detail kind);
      t.bug_keys <- key :: t.bug_keys
    end
  end

let line_info t line =
  match Hashtbl.find_opt t.lines line with
  | Some info -> info
  | None ->
      let info = { dirty = false; pending = false; drain_seq = -1 } in
      Hashtbl.replace t.lines line info;
      info

let on_store t ~addr ~size =
  List.iter
    (fun line ->
      let info = line_info t line in
      info.dirty <- true;
      (* A pending writeback of this line is voided by the new store. *)
      info.pending <- false)
    (Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let on_clf t ~addr ~size =
  List.iter
    (fun line ->
      let info = line_info t line in
      if info.pending then
        report_bug t Bug.Redundant_flush ~addr:(line * Addr.cache_line_size) ~size:Addr.cache_line_size
          ~detail:"line already flushed before fence" ()
      else if info.dirty then begin
        info.dirty <- false;
        info.pending <- true;
        t.pending_lines <- line :: t.pending_lines
      end)
    (Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let on_fence t =
  List.iter
    (fun line ->
      let info = line_info t line in
      if info.pending then begin
        info.pending <- false;
        info.drain_seq <- t.seq
      end)
    t.pending_lines;
  t.pending_lines <- []

let durable t ~addr ~size =
  List.for_all
    (fun line ->
      match Hashtbl.find_opt t.lines line with
      | None -> false (* never stored: nothing made it durable *)
      | Some info -> (not info.dirty) && (not info.pending) && info.drain_seq >= 0)
    (Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let last_drain t ~addr ~size =
  List.fold_left
    (fun acc line ->
      match Hashtbl.find_opt t.lines line with
      | Some info when info.drain_seq >= 0 -> max acc info.drain_seq
      | _ -> acc)
    (-1)
    (Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let on_annotation t = function
  | Event.Assert_durable { addr; size } ->
      t.annotations <- t.annotations + 1;
      if not (durable t ~addr ~size) then
        report_bug t Bug.No_durability ~addr ~size ~detail:"assert_durable failed" ()
  | Event.Assert_ordered { first_addr; first_size; then_addr; then_size } ->
      t.annotations <- t.annotations + 1;
      let first_durable = durable t ~addr:first_addr ~size:first_size in
      let then_durable = durable t ~addr:then_addr ~size:then_size in
      let violated =
        (then_durable && not first_durable)
        || (first_durable && then_durable
           && last_drain t ~addr:then_addr ~size:then_size < last_drain t ~addr:first_addr ~size:first_size)
      in
      if violated then
        report_bug t Bug.No_order_guarantee ~addr:then_addr ~size:then_size ~detail:"assert_ordered failed" ()
  | Event.Assert_fresh { addr; size } ->
      t.annotations <- t.annotations + 1;
      let stale =
        List.exists
          (fun line ->
            match Hashtbl.find_opt t.lines line with Some info -> info.dirty || info.pending | None -> false)
          (Addr.lines_of_range ~lo:addr ~hi:(addr + size))
      in
      if stale then
        report_bug t Bug.Multiple_overwrites ~addr ~size ~detail:"assert_fresh: pending store overwritten" ()

let on_tx_log t ~obj_addr ~size ~tid =
  let ranges =
    match Hashtbl.find_opt t.logged tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.logged tid r;
        r
  in
  let range = Addr.of_base_size obj_addr size in
  if List.exists (fun r -> Addr.overlaps r range) !ranges then
    report_bug t Bug.Redundant_logging ~addr:obj_addr ~size ~detail:"object logged more than once in one transaction" ()
  else ranges := range :: !ranges

let on_event t ev =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  match ev with
  | Event.Store { addr; size; tid = _ } -> on_store t ~addr ~size
  | Event.Clf { addr; size; tid = _; kind = _ } -> on_clf t ~addr ~size
  | Event.Fence _ -> on_fence t
  | Event.Annotation ann -> on_annotation t ann
  | Event.Tx_log { obj_addr; size; tid } -> on_tx_log t ~obj_addr ~size ~tid
  | Event.Epoch_end { tid } -> Hashtbl.remove t.logged tid
  (* PMTest has no epoch/strand rules and no final-state sweep: bugs not
     covered by an annotation are missed. *)
  | Event.Register_pmem _ | Event.Epoch_begin _ | Event.Strand_begin _ | Event.Strand_end _ | Event.Join_strand _
  | Event.Register_var _ | Event.Call _ | Event.Program_end ->
      ()

let annotations_seen t = t.annotations

let sink t =
  Sink.make ~name:"pmtest"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      {
        Bug.detector = "pmtest";
        bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_keys;
        events_processed = t.events;
        stats = [ ("annotations", float_of_int t.annotations) ];
        failure = None;
      })
