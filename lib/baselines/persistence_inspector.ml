open Pmem
open Pmtrace

type record = { lo : int; hi : int; mutable flushed : bool; seq : int }

type t = {
  (* Per-store history of every location touched inside the PMDK
     domain, scanned linearly — the expensive bookkeeping that puts the
     tool in Table 1's "high overhead" row. *)
  mutable history : record list;
  mutable engaged : bool;  (** PMDK markers seen *)
  mutable in_tx : int;
  bugs : (Bug.kind * int, Bug.t) Hashtbl.t;
  mutable bug_keys : (Bug.kind * int) list;
  kind_counts : (Bug.kind, int) Hashtbl.t;
  max_bugs_per_kind : int;
  mutable events : int;
  mutable seq : int;
}

let create ?(max_bugs_per_kind = 1000) () =
  {
    history = [];
    engaged = false;
    in_tx = 0;
    bugs = Hashtbl.create 64;
    bug_keys = [];
    kind_counts = Hashtbl.create 16;
    max_bugs_per_kind;
    events = 0;
    seq = 0;
  }

let active t = t.engaged

let report_bug t kind ~addr ?(size = 0) ~detail () =
  let key = (kind, addr) in
  if not (Hashtbl.mem t.bugs key) then begin
    let n = match Hashtbl.find_opt t.kind_counts kind with None -> 0 | Some n -> n in
    if n < t.max_bugs_per_kind then begin
      Hashtbl.replace t.kind_counts kind (n + 1);
      Hashtbl.replace t.bugs key (Bug.make ~addr ~size ~seq:t.seq ~detail kind);
      t.bug_keys <- key :: t.bug_keys
    end
  end

let overlaps r ~lo ~hi = r.lo < hi && lo < r.hi

(* Only stores made inside a transaction are analyzed: the tool's PMDK
   focus. *)
let on_store t ~addr ~size =
  if t.engaged && t.in_tx > 0 then begin
    List.iter
      (fun r ->
        if overlaps r ~lo:addr ~hi:(addr + size) then begin
          if not r.flushed then
            report_bug t Bug.Multiple_overwrites ~addr ~size ~detail:"overwrite before durability guaranteed" ();
          r.flushed <- false
        end)
      t.history;
    t.history <- { lo = addr; hi = addr + size; flushed = false; seq = t.seq } :: t.history
  end

let on_clf t ~addr ~size =
  if t.engaged then begin
    let hit = ref false and fresh = ref false in
    List.iter
      (fun r ->
        if overlaps r ~lo:addr ~hi:(addr + size) then begin
          hit := true;
          if not r.flushed then begin
            fresh := true;
            if Addr.range ~lo:addr ~hi:(addr + size) |> fun f -> Addr.covers f (Addr.range ~lo:r.lo ~hi:r.hi) then
              r.flushed <- true
          end
        end)
      t.history;
    if !hit && not !fresh then
      report_bug t Bug.Redundant_flush ~addr ~size ~detail:"store flushed again before the fence" ()
  end

let on_fence t = if t.engaged then t.history <- List.filter (fun r -> not r.flushed) t.history

let on_program_end t =
  List.iter
    (fun r ->
      report_bug t Bug.No_durability ~addr:r.lo ~size:(r.hi - r.lo)
        ~detail:(if r.flushed then "flushed but never fenced (missing fence)" else "never flushed (missing CLF)")
        ())
    t.history

let on_event t ev =
  t.events <- t.events + 1;
  t.seq <- t.seq + 1;
  match ev with
  | Event.Epoch_begin _ ->
      t.engaged <- true;
      t.in_tx <- t.in_tx + 1
  | Event.Epoch_end _ -> t.in_tx <- max 0 (t.in_tx - 1)
  | Event.Tx_log _ -> t.engaged <- true
  | Event.Store { addr; size; _ } -> on_store t ~addr ~size
  | Event.Clf { addr; size; _ } -> on_clf t ~addr ~size
  | Event.Fence _ -> on_fence t
  | Event.Program_end -> on_program_end t
  | Event.Register_pmem _ | Event.Strand_begin _ | Event.Strand_end _ | Event.Join_strand _ | Event.Register_var _
  | Event.Call _ | Event.Annotation _ ->
      ()

let sink t =
  Sink.make ~name:"persistence-inspector"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      {
        Bug.detector = "persistence-inspector";
        bugs = List.rev_map (fun key -> Hashtbl.find t.bugs key) t.bug_keys;
        events_processed = t.events;
        stats = [ ("engaged", if t.engaged then 1.0 else 0.0) ];
        failure = None;
      })
