(** Augmented AVL interval tree over byte ranges.

    This is the tree-like bookkeeping structure used both by the
    Pmemcheck baseline (as its only store) and by PMDebugger (as the
    spill area for locations that survive fences, §4.1 of the paper).

    Keys are half-open ranges ordered by [lo] (ties by [hi]); each node
    is augmented with the subtree's maximum [hi] so that overlap
    queries prune. The tree supports the operations the paper's
    debuggers need: insert, overlap search, in-place split on partial
    flush, conditional removal (fence processing), and the expensive
    {e reorganization} (merging adjacent nodes with equal payloads)
    whose cost Pattern 1 says cannot be amortized. Rotations, merges
    and reorganization passes are counted for the Fig. 11 / §7.5
    experiments. *)

type 'a t

type stats = {
  mutable rotations : int;
  mutable merges : int;  (** nodes eliminated by merging *)
  mutable reorganizations : int;  (** merge passes executed *)
  mutable max_size : int;
}

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val stats : 'a t -> stats

val height : 'a t -> int

val insert : 'a t -> lo:int -> hi:int -> 'a -> unit
(** Insert a node for [\[lo,hi)] carrying payload. Duplicate keys are
    allowed (kept as distinct nodes). Empty ranges are ignored. *)

val find_first_overlap : 'a t -> lo:int -> hi:int -> (Pmem.Addr.range * 'a) option

val overlapping : 'a t -> lo:int -> hi:int -> (Pmem.Addr.range * 'a) list
(** All nodes whose range intersects [\[lo,hi)], in key order. *)

val iter : 'a t -> (Pmem.Addr.range -> 'a -> unit) -> unit
(** In-order traversal. *)

val fold : 'a t -> init:'b -> f:('b -> Pmem.Addr.range -> 'a -> 'b) -> 'b

val to_list : 'a t -> (Pmem.Addr.range * 'a) list

val remove_exact : 'a t -> lo:int -> hi:int -> bool
(** Remove one node with exactly this key, if any; true if removed. *)

val remove_first : 'a t -> lo:int -> hi:int -> ('a -> bool) -> bool
(** Remove one node with exactly this key whose payload satisfies the
    predicate (for duplicate keys, physical identity can be used). *)

val filter_in_place : 'a t -> (Pmem.Addr.range -> 'a -> bool) -> int
(** Rebuild keeping only nodes satisfying the predicate; returns the
    number removed. This is the whole-tree traversal a fence performs. *)

val map_overlapping :
  'a t -> lo:int -> hi:int -> f:(Pmem.Addr.range -> 'a -> (Pmem.Addr.range * 'a) list) -> int
(** For every node overlapping [\[lo,hi)], replace it by the (possibly
    empty) list [f range payload] — used to mark flushed and to split
    partially flushed ranges. Returns the number of nodes visited. *)

val reorganize : 'a t -> eq:('a -> 'a -> bool) -> merge:('a -> 'a -> 'a) -> unit
(** Merge adjacent-or-overlapping nodes whose payloads satisfy [eq]
    into single nodes (payloads combined with [merge]), then rebuild
    balanced. Counted in {!stats}. *)

val bounds : 'a t -> (int * int) option
(** [(min lo, max hi)] over every node — the tree's bounding box — or
    [None] when empty. O(log n): the minimum [lo] is the leftmost key
    and the maximum [hi] is the root's augmentation. *)

val clear : 'a t -> unit

val check_invariants : 'a t -> unit
(** Raises [Failure] if AVL balance, ordering or max-hi augmentation is
    violated. For tests. *)
