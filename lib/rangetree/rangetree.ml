open Pmem

type 'a node = {
  mutable lo : int;
  mutable hi : int;
  mutable data : 'a;
  mutable left : 'a node option;
  mutable right : 'a node option;
  mutable height : int;
  mutable max_hi : int;
}

type stats = {
  mutable rotations : int;
  mutable merges : int;
  mutable reorganizations : int;
  mutable max_size : int;
}

type 'a t = { mutable root : 'a node option; mutable count : int; st : stats }

let create () =
  { root = None; count = 0; st = { rotations = 0; merges = 0; reorganizations = 0; max_size = 0 } }

let size t = t.count

let is_empty t = t.count = 0

let stats t = t.st

let h = function None -> 0 | Some n -> n.height

let mh = function None -> min_int | Some n -> n.max_hi

let update n =
  n.height <- 1 + max (h n.left) (h n.right);
  n.max_hi <- max n.hi (max (mh n.left) (mh n.right))

let height t = h t.root

let balance_factor n = h n.left - h n.right

(* Standard AVL rotations, mutating in place; stats count each rotation. *)
let rotate_right t n =
  match n.left with
  | None -> n
  | Some l ->
      t.st.rotations <- t.st.rotations + 1;
      n.left <- l.right;
      l.right <- Some n;
      update n;
      update l;
      l

let rotate_left t n =
  match n.right with
  | None -> n
  | Some r ->
      t.st.rotations <- t.st.rotations + 1;
      n.right <- r.left;
      r.left <- Some n;
      update n;
      update r;
      r

let rebalance t n =
  update n;
  let bf = balance_factor n in
  if bf > 1 then begin
    (match n.left with
    | Some l when h l.right > h l.left -> n.left <- Some (rotate_left t l)
    | _ -> ());
    rotate_right t n
  end
  else if bf < -1 then begin
    (match n.right with
    | Some r when h r.left > h r.right -> n.right <- Some (rotate_right t r)
    | _ -> ());
    rotate_left t n
  end
  else n

let key_lt ~lo1 ~hi1 ~lo2 ~hi2 = lo1 < lo2 || (lo1 = lo2 && hi1 < hi2)

let insert t ~lo ~hi data =
  if hi > lo then begin
    let rec ins = function
      | None -> { lo; hi; data; left = None; right = None; height = 1; max_hi = hi }
      | Some n ->
          if key_lt ~lo1:lo ~hi1:hi ~lo2:n.lo ~hi2:n.hi then n.left <- Some (ins n.left)
          else n.right <- Some (ins n.right);
          rebalance t n
    in
    t.root <- Some (ins t.root);
    t.count <- t.count + 1;
    if t.count > t.st.max_size then t.st.max_size <- t.count
  end

let find_first_overlap t ~lo ~hi =
  let rec go = function
    | None -> None
    | Some n ->
        if n.max_hi <= lo then None
        else begin
          match go n.left with
          | Some _ as r -> r
          | None ->
              if n.lo < hi && lo < n.hi then Some (Addr.range ~lo:n.lo ~hi:n.hi, n.data)
              else if n.lo >= hi then None
              else go n.right
        end
  in
  go t.root

let overlapping t ~lo ~hi =
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some n ->
        if n.max_hi > lo then begin
          go n.left;
          if n.lo < hi && lo < n.hi then acc := (Addr.range ~lo:n.lo ~hi:n.hi, n.data) :: !acc;
          if n.lo < hi then go n.right
        end
  in
  go t.root;
  List.rev !acc

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        go n.left;
        f (Addr.range ~lo:n.lo ~hi:n.hi) n.data;
        go n.right
  in
  go t.root

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r d -> acc := f !acc r d);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc r d -> (r, d) :: acc))

let rec min_node n = match n.left with None -> n | Some l -> min_node l

let remove_exact t ~lo ~hi =
  let removed = ref false in
  let rec del = function
    | None -> None
    | Some n ->
        let node =
          if (not !removed) && n.lo = lo && n.hi = hi then begin
            removed := true;
            match (n.left, n.right) with
            | None, r -> r
            | l, None -> l
            | Some _, Some r ->
                let succ = min_node r in
                n.lo <- succ.lo;
                n.hi <- succ.hi;
                n.data <- succ.data;
                (* remove successor from right subtree *)
                let rec del_min = function
                  | None -> None
                  | Some m ->
                      if m == succ then m.right
                      else begin
                        m.left <- del_min m.left;
                        Some (rebalance t m)
                      end
                in
                n.right <- del_min (Some r);
                Some n
          end
          else if key_lt ~lo1:lo ~hi1:hi ~lo2:n.lo ~hi2:n.hi then begin
            n.left <- del n.left;
            Some n
          end
          else begin
            n.right <- del n.right;
            Some n
          end
        in
        Option.map (rebalance t) node
  in
  t.root <- del t.root;
  if !removed then t.count <- t.count - 1;
  !removed

(* Rebuild a perfectly balanced tree from a sorted (range, data) array. *)
let rebuild t items =
  let arr = Array.of_list items in
  let rec build lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let (r : Addr.range), d = arr.(mid) in
      let left = build lo mid and right = build (mid + 1) hi in
      let n = { lo = r.Addr.lo; hi = r.Addr.hi; data = d; left; right; height = 1; max_hi = r.Addr.hi } in
      update n;
      Some n
    end
  in
  t.root <- build 0 (Array.length arr);
  t.count <- Array.length arr;
  if t.count > t.st.max_size then t.st.max_size <- t.count

let filter_in_place t pred =
  let kept = fold t ~init:[] ~f:(fun acc r d -> if pred r d then (r, d) :: acc else acc) in
  let kept = List.rev kept in
  let removed = t.count - List.length kept in
  if removed > 0 then rebuild t kept;
  removed

let remove_first t ~lo ~hi pred =
  let removed = ref false in
  let rec del = function
    | None -> None
    | Some n ->
        let node =
          if (not !removed) && n.lo = lo && n.hi = hi && pred n.data then begin
            removed := true;
            match (n.left, n.right) with
            | None, r -> r
            | l, None -> l
            | Some _, Some r ->
                let succ = min_node r in
                n.lo <- succ.lo;
                n.hi <- succ.hi;
                n.data <- succ.data;
                let rec del_min = function
                  | None -> None
                  | Some m ->
                      if m == succ then m.right
                      else begin
                        m.left <- del_min m.left;
                        Some (rebalance t m)
                      end
                in
                n.right <- del_min (Some r);
                Some n
          end
          else if key_lt ~lo1:lo ~hi1:hi ~lo2:n.lo ~hi2:n.hi then begin
            n.left <- del n.left;
            Some n
          end
          else if n.lo = lo && n.hi = hi then begin
            (* Duplicate keys may sit on either side after rotations;
               search both subtrees. *)
            n.left <- del n.left;
            if not !removed then n.right <- del n.right;
            Some n
          end
          else begin
            n.right <- del n.right;
            Some n
          end
        in
        Option.map (rebalance t) node
  in
  t.root <- del t.root;
  if !removed then t.count <- t.count - 1;
  !removed

let map_overlapping t ~lo ~hi ~f =
  (* Targeted: collect only the overlapping nodes, then apply structural
     changes node by node — O(k log n), never a whole-tree pass. *)
  let hits = overlapping t ~lo ~hi in
  let visited = ref 0 in
  List.iter
    (fun ((r : Addr.range), d) ->
      incr visited;
      match f r d with
      | [ (r', d') ] when r' = r && d' == d -> () (* in-place payload mutation *)
      | repl ->
          ignore (remove_first t ~lo:r.Addr.lo ~hi:r.Addr.hi (fun x -> x == d));
          List.iter (fun ((nr : Addr.range), nd) -> insert t ~lo:nr.Addr.lo ~hi:nr.Addr.hi nd) repl)
    hits;
  !visited

let reorganize t ~eq ~merge =
  t.st.reorganizations <- t.st.reorganizations + 1;
  let items = to_list t in
  let merged =
    List.fold_left
      (fun acc (r, d) ->
        match acc with
        | ((pr : Addr.range), pd) :: rest when Addr.adjacent_or_overlapping pr r && eq pd d ->
            t.st.merges <- t.st.merges + 1;
            (Addr.join pr r, merge pd d) :: rest
        | _ -> (r, d) :: acc)
      [] items
  in
  rebuild t (List.rev merged)

let bounds t =
  match t.root with
  | None -> None
  | Some root ->
      let rec leftmost n = match n.left with None -> n | Some l -> leftmost l in
      Some ((leftmost root).lo, root.max_hi)

let clear t =
  t.root <- None;
  t.count <- 0

let check_invariants t =
  let rec go = function
    | None -> (0, min_int, None, None)
    | Some n ->
        let hl, ml, _, maxl = go n.left in
        let hr, mr, minr, _ = go n.right in
        if abs (hl - hr) > 1 then failwith "rangetree: unbalanced";
        if n.height <> 1 + max hl hr then failwith "rangetree: bad height";
        let expected_mh = max n.hi (max ml mr) in
        if n.max_hi <> expected_mh then failwith "rangetree: bad max_hi";
        (match maxl with
        | Some (l, hh) when key_lt ~lo1:n.lo ~hi1:n.hi ~lo2:l ~hi2:hh -> failwith "rangetree: order (left)"
        | _ -> ());
        (match minr with
        | Some (l, hh) when key_lt ~lo1:l ~hi1:hh ~lo2:n.lo ~hi2:n.hi -> failwith "rangetree: order (right)"
        | _ -> ());
        let mn = match go n.left with _, _, Some m, _ -> Some m | _ -> Some (n.lo, n.hi) in
        let mx = match go n.right with _, _, _, Some m -> Some m | _ -> Some (n.lo, n.hi) in
        (n.height, n.max_hi, mn, mx)
  in
  ignore (go t.root);
  let rec count = function None -> 0 | Some n -> 1 + count n.left + count n.right in
  if count t.root <> t.count then failwith "rangetree: bad count"
