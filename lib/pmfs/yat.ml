open Pmtrace

type t = {
  pm : Pmem.State.t;
  max_failure_points : int;
  images_per_point : int;
  mutable failure_points : int;
  mutable states : int;
  bugs : (int, Bug.t) Hashtbl.t; (* keyed by failure point *)
  mutable bug_order : int list;
  mutable events : int;
  mutable fences : int;
  mutable next_fp : int;
}

let create ?(max_failure_points = 64) ?(images_per_point = 16) ~pm () =
  {
    pm;
    max_failure_points;
    images_per_point;
    failure_points = 0;
    states = 0;
    bugs = Hashtbl.create 16;
    bug_order = [];
    events = 0;
    fences = 0;
    next_fp = 1;
  }

let check_point t =
  if t.failure_points < t.max_failure_points then begin
    t.failure_points <- t.failure_points + 1;
    let images = Pmem.State.crash_images t.pm ~max_images:t.images_per_point () in
    let bad = List.fold_left (fun acc img -> if Pmfs.fsck img then acc else acc + 1) 0 images in
    t.states <- t.states + List.length images;
    if bad > 0 && not (Hashtbl.mem t.bugs t.failure_points) then begin
      Hashtbl.replace t.bugs t.failure_points
        (Bug.make ~seq:t.events
           ~detail:(Printf.sprintf "failure point %d: %d/%d crash state(s) fail fsck" t.failure_points bad (List.length images))
           Bug.Cross_failure_semantic);
      t.bug_order <- t.failure_points :: t.bug_order
    end
  end

let on_event t ev =
  t.events <- t.events + 1;
  match ev with
  | Event.Fence _ ->
      (* Geometric spacing so long runs are covered end to end. *)
      t.fences <- t.fences + 1;
      if t.fences >= t.next_fp then begin
        t.next_fp <- t.fences + 1 + (t.fences / 8);
        check_point t
      end
  | Event.Program_end -> check_point t
  | _ -> ()

let states_checked t = t.states

let sink t =
  Sink.make ~name:"yat"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      {
        Bug.detector = "yat";
        bugs = List.rev_map (fun k -> Hashtbl.find t.bugs k) t.bug_order;
        events_processed = t.events;
        stats =
          [ ("failure_points", float_of_int t.failure_points); ("crash_states", float_of_int t.states) ];
        failure = None;
      })
