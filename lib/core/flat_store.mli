(** Flat baseline bookkeeping backend — the "naive design" the paper's
    hybrid structure is measured against (Fig. 10).

    A single growable vector of tracked locations, scanned linearly by
    every store, flush and fence: no CLF-interval metadata, no spill
    tree, no bounding box. Bookkeeping semantics match {!Space}'s
    array-style rules (full cover supersedes; partial overlap unflushes;
    CLF splits partially covered locations), so the detector produces
    the same findings — just slower on large working sets. *)

type t

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** [metrics] (default disabled) receives [flat_scans_total] and the
    [flat_live_peak] gauge. *)

module Store : Store_intf.LOCATION_STORE with type t = t

val backend : ?metrics:Obs.Metrics.t -> unit -> Store_intf.backend
