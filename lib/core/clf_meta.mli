(** Per-CLF-interval metadata (§4.1, Fig. 5).

    A CLF interval is the run of store instructions between two
    neighbouring CLF instructions. Its metadata records the array index
    span of those stores, the covered address range, and a collective
    flushing state so that CLF and fence processing can treat all the
    interval's locations at once (Pattern 2). Metadata nodes form a
    singly-linked list in interval order. *)

type fstate = Not_flushed | Partially_flushed | All_flushed

type t = {
  mutable start_idx : int;  (** array index of the interval's first store *)
  mutable end_idx : int;  (** array index of the last store; -1 if none *)
  mutable min_addr : int;
  mutable max_addr : int;  (** exclusive upper bound of the address range *)
  mutable state : fstate;
  mutable invalidated : int;
      (** slots of this interval invalidated by superseding stores —
          keeps collective (per-interval) accounting exact without a
          slot walk *)
  mutable clf_seq : int;
      (** sequence number of the collective CLF that set [All_flushed]
          (-1 otherwise): shared flush provenance for every slot the
          interval covers, so Pattern-2 updates stay O(1) yet causal
          chains can still name the flush *)
  mutable next : t option;
}

val make : start_idx:int -> t
(** A fresh, empty interval starting at the given array index. *)

val is_empty : t -> bool

val note_store : t -> idx:int -> lo:int -> hi:int -> unit
(** Extend the interval with a store recorded at array index [idx]
    covering [\[lo,hi)]. *)

val addr_range : t -> Pmem.Addr.range option
(** Covered address range; [None] when the interval has no stores. *)

val pp : Format.formatter -> t -> unit
