type fstate = Not_flushed | Partially_flushed | All_flushed

type t = {
  mutable start_idx : int;
  mutable end_idx : int;
  mutable min_addr : int;
  mutable max_addr : int;
  mutable state : fstate;
  mutable invalidated : int;
  mutable clf_seq : int;
      (* Sequence number of the collective CLF that set All_flushed
         (-1 otherwise): the shared provenance of every slot the
         interval covers, so Pattern-2 updates stay O(1) yet causal
         chains can still name the flush. *)
  mutable next : t option;
}

let make ~start_idx =
  {
    start_idx;
    end_idx = -1;
    min_addr = max_int;
    max_addr = min_int;
    state = Not_flushed;
    invalidated = 0;
    clf_seq = -1;
    next = None;
  }

let is_empty t = t.end_idx < t.start_idx

let note_store t ~idx ~lo ~hi =
  t.end_idx <- idx;
  if lo < t.min_addr then t.min_addr <- lo;
  if hi > t.max_addr then t.max_addr <- hi

let addr_range t = if is_empty t then None else Some (Pmem.Addr.range ~lo:t.min_addr ~hi:t.max_addr)

let pp ppf t =
  let state_name = match t.state with Not_flushed -> "not" | Partially_flushed -> "partial" | All_flushed -> "all" in
  if is_empty t then Format.fprintf ppf "interval[%d..empty %s]" t.start_idx state_name
  else Format.fprintf ppf "interval[%d..%d %s [%d,%d)]" t.start_idx t.end_idx state_name t.min_addr t.max_addr
