open Pmem
open Pmtrace

type model = Strict | Epoch | Strand

type rule_set = {
  no_durability : bool;
  multiple_overwrites : bool;
  no_order_guarantee : bool;
  redundant_flush : bool;
  flush_nothing : bool;
  redundant_logging : bool;
  lack_durability_in_epoch : bool;
  redundant_epoch_fence : bool;
  lack_ordering_in_strands : bool;
  cross_failure : bool;
}

let default_rules = function
  | Strict ->
      {
        no_durability = true;
        multiple_overwrites = true;
        no_order_guarantee = true;
        redundant_flush = true;
        flush_nothing = true;
        redundant_logging = true;
        lack_durability_in_epoch = false;
        redundant_epoch_fence = false;
        lack_ordering_in_strands = false;
        cross_failure = true;
      }
  | Epoch ->
      {
        no_durability = true;
        (* Overwriting before durability is legal under relaxed models. *)
        multiple_overwrites = false;
        no_order_guarantee = true;
        redundant_flush = true;
        flush_nothing = true;
        redundant_logging = true;
        lack_durability_in_epoch = true;
        redundant_epoch_fence = true;
        lack_ordering_in_strands = false;
        cross_failure = true;
      }
  | Strand ->
      {
        no_durability = true;
        multiple_overwrites = false;
        no_order_guarantee = true;
        redundant_flush = true;
        flush_nothing = true;
        redundant_logging = true;
        lack_durability_in_epoch = true;
        redundant_epoch_fence = true;
        lack_ordering_in_strands = true;
        cross_failure = true;
      }

let all_rules_off =
  {
    no_durability = false;
    multiple_overwrites = false;
    no_order_guarantee = false;
    redundant_flush = false;
    flush_nothing = false;
    redundant_logging = false;
    lack_durability_in_epoch = false;
    redundant_epoch_fence = false;
    lack_ordering_in_strands = false;
    cross_failure = false;
  }

(* [persisted] carries the event (seq, class) at which durability was
   observed — a fence or the program end — so order-rule findings can
   cite the exact persist point in their causal chain. *)
type var_state = { mutable stored : bool; mutable persisted : (int * string) option }

type t = {
  model : model;
  rules : rule_set;
  config : Order_config.t;
  make_space : Store_intf.backend;
  dspace : Store_intf.instance;
  strand_spaces : (int, Store_intf.instance) Hashtbl.t;
  cur_strand : (int, int) Hashtbl.t; (* tid -> active strand section *)
  epoch_depth : (int, int) Hashtbl.t;
  epoch_fences : (int, int list ref) Hashtbl.t; (* tid -> fence seqs, newest first *)
  epoch_begin_seq : (int, int) Hashtbl.t; (* tid -> seq of the outermost epoch_begin *)
  logged : (int, (Addr.range * int) list ref) Hashtbl.t; (* tid -> (range, log seq) *)
  mutable registered : Addr.range list;
  mutable track_all : bool;
  vars : (string, Addr.range) Hashtbl.t;
  var_state : (string, var_state) Hashtbl.t;
  funcs_called : (string, unit) Hashtbl.t;
  bugs : (Bug.kind * int, unit) Hashtbl.t; (* dedup membership *)
  mutable bug_list : Bug.t list; (* reverse firing order *)
  walk_dedup : bool;
  max_bugs_per_kind : int;
  kind_counts : (Bug.kind, int) Hashtbl.t;
  mutable events : int;
  mutable seq : int;
  mutable cur_class : string; (* Event.class_name of the event being dispatched *)
  pm : State.t option;
  recovery : (Image.t -> bool) option;
  crash_check_every_fence : bool;
  metrics : Obs.Metrics.t;
  heatmap : Obs.Heatmap.t;
  mutable finished : bool;
  (* Shard-replica mode: run all bookkeeping but suppress findings —
     set by the router on non-owner shards of a broadcast event. *)
  mutable silent : bool;
}

let create ?(model = Strict) ?rules ?(config = Order_config.empty) ?backend ?array_capacity ?merge_threshold ?mode
    ?interval_metadata ?pm ?recovery ?(crash_check_every_fence = false) ?(max_bugs_per_kind = 1000)
    ?(walk_dedup = true) ?(metrics = Obs.Metrics.disabled) ?(heatmap = Obs.Heatmap.disabled) () =
  let rules = match rules with Some r -> r | None -> default_rules model in
  let make_space =
    match backend with
    | Some b -> b
    | None -> Space.backend ?array_capacity ?merge_threshold ?mode ?interval_metadata ~metrics ()
  in
  (* Declare one zero counter per rule so a run's metrics file always
     carries the complete per-rule vector, fired or not. *)
  if Obs.Metrics.is_on metrics then
    List.iter
      (fun kind -> Obs.Metrics.inc metrics ~labels:[ ("rule", Bug.kind_name kind) ] ~by:0 "detector_rule_fires_total")
      Bug.all_kinds;
  {
    model;
    rules;
    config;
    make_space;
    dspace = make_space ();
    strand_spaces = Hashtbl.create 8;
    cur_strand = Hashtbl.create 8;
    epoch_depth = Hashtbl.create 8;
    epoch_fences = Hashtbl.create 8;
    epoch_begin_seq = Hashtbl.create 8;
    logged = Hashtbl.create 8;
    registered = [];
    track_all = true;
    vars = Hashtbl.create 8;
    var_state = Hashtbl.create 8;
    funcs_called = Hashtbl.create 8;
    bugs = Hashtbl.create 64;
    bug_list = [];
    walk_dedup;
    max_bugs_per_kind;
    kind_counts = Hashtbl.create 16;
    events = 0;
    seq = 0;
    cur_class = "program_end";
    pm;
    recovery;
    crash_check_every_fence;
    metrics;
    heatmap;
    finished = false;
    silent = false;
  }

(* Deterministic space order — default space first, then strand spaces
   by strand id; a hashtable-layout-dependent order here would make
   reports depend on which strands happened to hash where, breaking
   shard parity. (The pending walks additionally sort their candidates
   canonically — see [pending_walk_candidates].) *)
let all_spaces t =
  let strands = Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.strand_spaces [] in
  t.dspace :: List.map snd (List.sort (fun (a, _) (b, _) -> compare (a : int) b) strands)

(* Pending-location candidates for the walks (epoch end, program end).
   The walks build their findings first and admit them in
   {!Bug.compare_canonical} order rather than bookkeeping-structure
   order: which finding wins the per-(kind, addr) dedup must not depend
   on the backend's internal layout (array vs tree vs flat) — and the
   shard router's merge, which re-applies the same dedup over all
   shards' findings in the same canonical order, then reaches the same
   decisions. *)
let pending_walk_candidates ?(epoch_only = false) spaces =
  let acc = ref [] in
  List.iter
    (fun space ->
      Store_intf.iter_pending space (fun ~addr ~size ~flushed ~epoch ~seq ~clf_seq ~fence_seq ->
          if epoch || not epoch_only then acc := (addr, size, flushed, seq, clf_seq, fence_seq) :: !acc))
    spaces;
  List.rev !acc

let var_name_for t addr =
  Hashtbl.fold (fun name r acc -> if Addr.contains r addr then Some name else acc) t.vars None

let build_bug t kind ~addr ~size ~chain ~detail =
  (* Annotation names make reports readable without a memory map:
     every rule's message is prefixed with the registered variable
     covering the primary address, when there is one. *)
  let detail =
    match if addr >= 0 then var_name_for t addr else None with
    | Some name -> name ^ ": " ^ detail
    | None -> detail
  in
  (* Every finding cites at least the event it fired at; rule code
     prepends the bookkeeping history (stores, CLFs, fences). *)
  let chain = Bug.cause ~addr ~size ~note:"rule fired here" ~cls:t.cur_class t.seq :: chain in
  Bug.make ~addr ~size ~seq:t.seq ~detail ~chain kind

(* [dedup = false] (pending walks of a sharded worker): record every
   finding, skipping the per-(kind, addr) suppression and the per-kind
   cap — replicated locations make a shard's local dedup and cap
   decisions diverge from the single-shard ones; only the router's
   merge, which sees every shard's findings, can replicate them. *)
let admit_bug t ?(dedup = true) (bug : Bug.t) =
  let kind = bug.Bug.kind in
  let key = (kind, bug.Bug.addr) in
  if (not dedup) || not (Hashtbl.mem t.bugs key) then begin
    let n = match Hashtbl.find_opt t.kind_counts kind with None -> 0 | Some n -> n in
    if (not dedup) || n < t.max_bugs_per_kind then begin
      if dedup then begin
        Hashtbl.replace t.kind_counts kind (n + 1);
        Hashtbl.replace t.bugs key ()
      end;
      t.bug_list <- bug :: t.bug_list;
      if Obs.Heatmap.is_on t.heatmap && bug.Bug.addr >= 0 then
        Obs.Heatmap.on_bug t.heatmap ~line:(Addr.line_of bug.Bug.addr);
      Obs.Metrics.inc t.metrics ~labels:[ ("rule", Bug.kind_name kind) ] "detector_rule_fires_total"
    end
    else Obs.Metrics.inc t.metrics ~labels:[ ("rule", Bug.kind_name kind) ] "detector_bugs_suppressed_total"
  end

let report_bug t ?dedup kind ~addr ?(size = 0) ?(chain = []) ~detail () =
  if not t.silent then admit_bug t ?dedup (build_bug t kind ~addr ~size ~chain ~detail)

let in_registered t ~lo ~hi =
  t.track_all || List.exists (fun r -> Addr.overlaps r (Addr.range ~lo ~hi)) t.registered

let space_for t tid =
  match Hashtbl.find_opt t.cur_strand tid with
  | None -> t.dspace
  | Some strand -> (
      match Hashtbl.find_opt t.strand_spaces strand with
      | Some s -> s
      | None ->
          let s = t.make_space () in
          Hashtbl.replace t.strand_spaces strand s;
          s)

let in_epoch t tid = match Hashtbl.find_opt t.epoch_depth tid with Some d when d > 0 -> true | _ -> false

(* A variable is durable when it has been stored to and no space still
   tracks an unpersisted location overlapping it. *)
let update_var_persistence t =
  let spaces = all_spaces t in
  Hashtbl.iter
    (fun name (r : Addr.range) ->
      let st =
        match Hashtbl.find_opt t.var_state name with
        | Some st -> st
        | None ->
            let st = { stored = false; persisted = None } in
            Hashtbl.replace t.var_state name st;
            st
      in
      if st.stored && st.persisted = None then
        if not (List.exists (fun s -> Store_intf.has_pending_overlap s ~lo:r.Addr.lo ~hi:r.Addr.hi) spaces) then
          st.persisted <- Some (t.seq, t.cur_class))
    t.vars

let var_persisted t name =
  match Hashtbl.find_opt t.var_state name with Some { persisted = Some _; _ } -> true | _ -> false

let var_addr t name = match Hashtbl.find_opt t.vars name with Some r -> r.Addr.lo | None -> -1

let var_persist_point t name =
  match Hashtbl.find_opt t.var_state name with Some { persisted = Some p; _ } -> Some p | _ -> None

let func_gate_open t = function None -> true | Some f -> Hashtbl.mem t.funcs_called f

let check_order_constraints t =
  List.iter
    (fun (e : Order_config.entry) ->
      let enabled =
        match e.Order_config.kind with
        | Order_config.Intra -> t.rules.no_order_guarantee && func_gate_open t e.Order_config.func
        | Order_config.Cross_strand -> t.rules.lack_ordering_in_strands
      in
      if enabled && var_persisted t e.Order_config.next && not (var_persisted t e.Order_config.first) then begin
        let kind =
          match e.Order_config.kind with
          | Order_config.Intra -> Bug.No_order_guarantee
          | Order_config.Cross_strand -> Bug.Lack_ordering_in_strands
        in
        let chain =
          match var_persist_point t e.Order_config.next with
          | Some (seq, cls) ->
              [
                Bug.cause ~addr:(var_addr t e.Order_config.next) ~cls
                  ~note:(e.Order_config.next ^ " became durable here, before " ^ e.Order_config.first)
                  seq;
              ]
          | None -> []
        in
        report_bug t kind ~addr:(var_addr t e.Order_config.next) ~chain
          ~detail:(Printf.sprintf "%s persisted before %s" e.Order_config.next e.Order_config.first)
          ()
      end)
    (Order_config.entries t.config)

let note_var_store t ~lo ~hi =
  if Hashtbl.length t.vars > 0 then
    Hashtbl.iter
      (fun name (r : Addr.range) ->
        if Addr.overlaps r (Addr.range ~lo ~hi) then begin
          match Hashtbl.find_opt t.var_state name with
          | Some st ->
              st.stored <- true;
              (* A new store invalidates previous durability. *)
              st.persisted <- None
          | None -> Hashtbl.replace t.var_state name { stored = true; persisted = None }
        end)
      t.vars

let run_crash_check t =
  match (t.pm, t.recovery) with
  | Some pm, Some recovery when t.rules.cross_failure ->
      Obs.Metrics.inc t.metrics "detector_crash_checks_total";
      let violations = Crash_check.violations ~pm ~recovery () in
      if violations > 0 then
        report_bug t Bug.Cross_failure_semantic ~addr:(-1)
          ~detail:(Printf.sprintf "%d inconsistent crash image(s)" violations)
          ()
  | _ -> ()

(* The store path is split into a bookkeeping scan and a rule fire so
   the shard router can scan per-line clips on several shards and fire
   once with the merged observation; the single-shard [on_store] is the
   composition of the two over the full range. *)
let store_scan t ~tid ~lo ~hi =
  let space = space_for t tid in
  let strand = match Hashtbl.find_opt t.cur_strand tid with Some s -> s | None -> -1 in
  let check_overlap = t.rules.multiple_overwrites && t.model = Strict in
  let r =
    Store_intf.process_store space ~check_overlap ~addr:lo ~size:(hi - lo) ~epoch:(in_epoch t tid) ~seq:t.seq ~tid
      ~strand ()
  in
  note_var_store t ~lo ~hi;
  (* Per-line traffic/dirty accounting, owner events only ([silent]
     replica updates would double-count a broadcast line once per
     shard). An allocation-free line loop: the heatmap hook must not
     cost a list per store when enabled, and costs one branch when
     not. *)
  if Obs.Heatmap.is_on t.heatmap && (not t.silent) && hi > lo then
    for line = Addr.line_of lo to Addr.line_of (hi - 1) do
      Obs.Heatmap.on_store t.heatmap ~seq:t.seq ~line
    done;
  { Shard_router.so_overlapped = r.Store_intf.overlapped; so_prior_seqs = r.Store_intf.prior_seqs }

let store_fire t ~addr ~size (obs : Shard_router.store_obs) =
  let check_overlap = t.rules.multiple_overwrites && t.model = Strict in
  if obs.Shard_router.so_overlapped && check_overlap then begin
    let chain =
      List.map
        (fun seq -> Bug.cause ~addr ~size ~cls:"store" ~note:"earlier store, not yet durable" seq)
        obs.Shard_router.so_prior_seqs
    in
    report_bug t Bug.Multiple_overwrites ~addr ~size ~chain ~detail:"overwrite before durability guaranteed" ()
  end

let on_store t ~addr ~size ~tid =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    let obs = store_scan t ~tid ~lo:addr ~hi:(addr + size) in
    store_fire t ~addr ~size obs
  end

(* §5.2, Fig. 7b: a CLF that persists a location with a cross-strand
   ordering requirement violates it when the predecessor variable is
   not yet durable (its barrier has not completed). *)
let check_strand_order_at_clf t ~lo ~hi =
  List.iter
    (fun (e : Order_config.entry) ->
      if e.Order_config.kind = Order_config.Cross_strand then
        match Hashtbl.find_opt t.vars e.Order_config.next with
        | Some r when Addr.overlaps r (Addr.range ~lo ~hi) ->
            if not (var_persisted t e.Order_config.first) then
              report_bug t Bug.Lack_ordering_in_strands ~addr:r.Addr.lo
                ~detail:
                  (Printf.sprintf "%s written back before %s is durable" e.Order_config.next e.Order_config.first)
                ()
        | _ -> ())
    (Order_config.entries t.config)

(* Like the store path, the CLF path is a scan (bookkeeping over one
   contiguous range, possibly a per-line clip) plus a fire (rules over
   the merged observation and the event's full range). *)
let clf_scan t ~tid ~lo ~hi =
  let primary = space_for t tid in
  let result = Store_intf.process_clf primary ~seq:t.seq ~lo ~hi in
  (* A CLWB acts on the physical line: under the strand extension it
     must also update any other strand's space tracking the line. *)
  let result =
    if Hashtbl.length t.strand_spaces = 0 then result
    else
      List.fold_left
        (fun (acc : Store_intf.clf_result) space ->
          if space == primary || not (Store_intf.has_pending_overlap space ~lo ~hi) then acc
          else begin
            let r = Store_intf.process_clf space ~seq:t.seq ~lo ~hi in
            {
              Store_intf.matched = acc.Store_intf.matched + r.Store_intf.matched;
              newly_flushed = acc.Store_intf.newly_flushed + r.Store_intf.newly_flushed;
              redundant = acc.Store_intf.redundant @ r.Store_intf.redundant;
              redundant_prov = acc.Store_intf.redundant_prov @ r.Store_intf.redundant_prov;
            }
          end)
        result (all_spaces t)
  in
  if Obs.Heatmap.is_on t.heatmap && (not t.silent) && hi > lo then
    for line = Addr.line_of lo to Addr.line_of (hi - 1) do
      Obs.Heatmap.on_clf t.heatmap ~seq:t.seq ~line
    done;
  {
    Shard_router.co_matched = result.Store_intf.matched;
    co_newly = result.Store_intf.newly_flushed;
    co_redundant =
      List.map2
        (fun (a, s) (store_seq, prior_clf) -> (a, s, store_seq, prior_clf))
        result.Store_intf.redundant result.Store_intf.redundant_prov;
  }

let clf_fire t ~addr ~size (obs : Shard_router.clf_obs) =
  if t.rules.flush_nothing && obs.Shard_router.co_matched = 0 then
    report_bug t Bug.Flush_nothing ~addr ~size ~detail:"CLF persists no prior store" ();
  (* A CLF is redundant only when it covers tracked locations yet
     persists nothing new: a line writeback that also persists a fresh
     store is useful, however many already-flushed neighbours share
     the line. The reported hit is the canonical minimum over
     (store seq, addr, size, prior CLF), independent of bookkeeping
     walk order and of how shards partitioned the range. *)
  if t.rules.redundant_flush && obs.Shard_router.co_matched > 0 && obs.Shard_router.co_newly = 0 then begin
    let pick =
      List.fold_left
        (fun acc (a, s, store_seq, prior_clf) ->
          let key = (store_seq, a, s, prior_clf) in
          match acc with Some best when compare best key <= 0 -> acc | _ -> Some key)
        None obs.Shard_router.co_redundant
    in
    match pick with
    | Some (store_seq, a, s, prior_clf) ->
        let chain =
          Bug.cause ~addr:a ~size:s ~cls:"store" ~note:"the store being re-flushed" store_seq
          :: (if prior_clf >= 0 then [ Bug.cause ~addr:a ~size:s ~cls:"clf" ~note:"already flushed here" prior_clf ] else [])
        in
        report_bug t Bug.Redundant_flush ~addr:a ~size:s ~chain ~detail:"store flushed again before the fence" ()
    | None ->
        report_bug t Bug.Redundant_flush ~addr ~size ~detail:"store flushed again before the fence" ()
  end;
  if t.rules.lack_ordering_in_strands && not (Order_config.is_empty t.config) then
    check_strand_order_at_clf t ~lo:addr ~hi:(addr + size)

let on_clf t ~addr ~size ~tid =
  if in_registered t ~lo:addr ~hi:(addr + size) then begin
    let obs = clf_scan t ~tid ~lo:addr ~hi:(addr + size) in
    clf_fire t ~addr ~size obs
  end

let on_fence t ~tid =
  let space = space_for t tid in
  Store_intf.note_fence_sample space;
  Store_intf.process_fence ~seq:t.seq space;
  if in_epoch t tid then begin
    let fences =
      match Hashtbl.find_opt t.epoch_fences tid with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.epoch_fences tid l;
          l
    in
    fences := t.seq :: !fences
  end;
  if not (Order_config.is_empty t.config) then begin
    update_var_persistence t;
    check_order_constraints t
  end;
  if t.crash_check_every_fence then run_crash_check t

let on_epoch_begin t ~tid =
  let d = match Hashtbl.find_opt t.epoch_depth tid with None -> 0 | Some d -> d in
  (* Nested transactions collapse into the outermost one (§6). *)
  if d = 0 then begin
    Hashtbl.replace t.epoch_fences tid (ref []);
    Hashtbl.replace t.epoch_begin_seq tid t.seq;
    Hashtbl.replace t.logged tid (ref [])
  end;
  Hashtbl.replace t.epoch_depth tid (d + 1)

let epoch_begin_cause t ~tid =
  match Hashtbl.find_opt t.epoch_begin_seq tid with
  | Some seq -> [ Bug.cause ~cls:"epoch" ~note:"epoch section opened here" seq ]
  | None -> []

let on_epoch_end t ~tid =
  let d = match Hashtbl.find_opt t.epoch_depth tid with None -> 0 | Some d -> d in
  if d <= 1 then begin
    Hashtbl.replace t.epoch_depth tid 0;
    (* Rules at the outermost epoch end (§5.2). *)
    let fences = match Hashtbl.find_opt t.epoch_fences tid with None -> [] | Some l -> List.rev !l in
    if t.rules.redundant_epoch_fence && List.length fences > 1 then begin
      let chain =
        epoch_begin_cause t ~tid
        @ List.map (fun seq -> Bug.cause ~cls:"fence" ~note:"fence inside the epoch section" seq) fences
      in
      report_bug t Bug.Redundant_epoch_fence ~addr:(-tid - 1) ~chain
        ~detail:(Printf.sprintf "%d fences inside one epoch section" (List.length fences))
        ()
    end;
    if t.rules.lack_durability_in_epoch && not t.silent then begin
      let space = space_for t tid in
      if Store_intf.exists_epoch_pending space then
        (* Report each still-pending epoch location, in canonical order
           — see [pending_walk_candidates]. *)
        List.map
          (fun (addr, size, flushed, seq, clf_seq, fence_seq) ->
            let chain =
              epoch_begin_cause t ~tid
              @ Bug.cause ~addr ~size ~cls:"store" ~note:"stored inside the epoch" seq
                ::
                (if flushed && clf_seq >= 0 then
                   [ Bug.cause ~addr ~size ~cls:"clf" ~note:"flushed here but not fenced" clf_seq ]
                 else [])
              @
              if fence_seq >= 0 then
                [ Bug.cause ~addr ~size ~cls:"fence" ~note:"crossed this fence unpersisted" fence_seq ]
              else []
            in
            build_bug t Bug.Lack_durability_in_epoch ~addr ~size ~chain
              ~detail:"epoch ends with unpersisted store")
          (pending_walk_candidates ~epoch_only:true [ space ])
        |> List.sort Bug.compare_canonical
        |> List.iter (admit_bug t ~dedup:t.walk_dedup)
    end;
    Hashtbl.remove t.logged tid
  end
  else Hashtbl.replace t.epoch_depth tid (d - 1)

let on_tx_log t ~obj_addr ~size ~tid =
  if t.rules.redundant_logging then begin
    let ranges =
      match Hashtbl.find_opt t.logged tid with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace t.logged tid r;
          r
    in
    let range = Addr.of_base_size obj_addr size in
    match List.find_opt (fun (r, _) -> Addr.overlaps r range) !ranges with
    | Some (prior, log_seq) ->
        let chain =
          [ Bug.cause ~addr:prior.Addr.lo ~size:(Addr.size prior) ~cls:"tx_log" ~note:"object first logged here" log_seq ]
        in
        report_bug t Bug.Redundant_logging ~addr:obj_addr ~size ~chain
          ~detail:"object logged more than once in one transaction" ()
    | None -> ranges := (range, t.seq) :: !ranges
  end

let on_program_end t =
  if not t.finished then begin
    t.finished <- true;
    (if t.rules.no_durability && not t.silent then
       List.map
         (fun (addr, size, flushed, seq, clf_seq, fence_seq) ->
           let detail =
             if flushed then "flushed but never fenced (missing fence)"
             else "never flushed (missing CLF)"
           in
           let chain =
             Bug.cause ~addr ~size ~cls:"store"
               ~note:(if flushed then "the store left unfenced" else "the store left unflushed")
               seq
             ::
             (if flushed && clf_seq >= 0 then
                [ Bug.cause ~addr ~size ~cls:"clf" ~note:"flushed here, awaiting a fence" clf_seq ]
              else [])
             @
             if fence_seq >= 0 then
               [ Bug.cause ~addr ~size ~cls:"fence" ~note:"crossed this fence unpersisted" fence_seq ]
             else []
           in
           build_bug t Bug.No_durability ~addr ~size ~chain ~detail)
         (pending_walk_candidates (all_spaces t))
       |> List.sort Bug.compare_canonical
       |> List.iter (admit_bug t ~dedup:t.walk_dedup));
    (* Order constraints where the later var persisted but the earlier
       one never did are caught here even without a closing fence. *)
    if not (Order_config.is_empty t.config) then begin
      update_var_persistence t;
      check_order_constraints t
    end;
    run_crash_check t
  end

let dispatch t ev =
  match ev with
  | Event.Store { addr; size; tid } -> on_store t ~addr ~size ~tid
  | Event.Clf { addr; size; tid; kind = _ } -> on_clf t ~addr ~size ~tid
  | Event.Fence { tid } -> on_fence t ~tid
  | Event.Register_pmem { base; size } ->
      t.track_all <- false;
      t.registered <- Addr.of_base_size base size :: t.registered
  | Event.Epoch_begin { tid } -> on_epoch_begin t ~tid
  | Event.Epoch_end { tid } -> on_epoch_end t ~tid
  | Event.Strand_begin { tid; strand } -> Hashtbl.replace t.cur_strand tid strand
  | Event.Strand_end { tid; strand = _ } -> Hashtbl.remove t.cur_strand tid
  | Event.Join_strand _ -> ()
  | Event.Tx_log { obj_addr; size; tid } -> on_tx_log t ~obj_addr ~size ~tid
  | Event.Register_var { name; addr; size } ->
      Hashtbl.replace t.vars name (Addr.of_base_size addr size);
      if Obs.Heatmap.is_on t.heatmap && size > 0 then
        for line = Addr.line_of addr to Addr.line_of (addr + size - 1) do
          Obs.Heatmap.set_name t.heatmap ~line name
        done;
      if not (Hashtbl.mem t.var_state name) then Hashtbl.replace t.var_state name { stored = false; persisted = None }
  | Event.Call { func; tid = _ } -> Hashtbl.replace t.funcs_called func ()
  | Event.Annotation _ -> () (* PMTest-style annotations are not needed *)
  | Event.Program_end -> on_program_end t

(* [seq] is the engine's dispatch sequence number. The single-shard
   sink counts for itself ([on_event]); a shard worker is told the
   stream position explicitly, since it only sees the subsequence of
   events routed to it. [silent] runs all bookkeeping but reports
   nothing — replica updates on non-owner shards. *)
let on_event_at t ~seq ?(silent = false) ev =
  t.events <- t.events + 1;
  t.seq <- seq;
  t.cur_class <- Event.class_name ev;
  t.silent <- silent;
  dispatch t ev;
  t.silent <- false

let on_event t ev = on_event_at t ~seq:(t.seq + 1) ev

let bugs_in_order t = List.rev t.bug_list

let stats t =
  let spaces = all_spaces t in
  let tree_nodes = List.fold_left (fun acc s -> acc + Store_intf.tree_size s) 0 spaces in
  let reorgs = List.fold_left (fun acc s -> acc + Store_intf.reorganizations s) 0 spaces in
  [
    ("tree_size", float_of_int tree_nodes);
    ("reorganizations", float_of_int reorgs);
    ("avg_tree_nodes_per_fence", Store_intf.avg_tree_nodes_per_fence t.dspace);
    ("spaces", float_of_int (List.length spaces));
  ]

let report t =
  { Bug.detector = "pmdebugger"; bugs = bugs_in_order t; events_processed = t.events; stats = stats t; failure = None }

let avg_tree_nodes_per_fence t = Store_intf.avg_tree_nodes_per_fence t.dspace

let reorganizations t = List.fold_left (fun acc s -> acc + Store_intf.reorganizations s) 0 (all_spaces t)

let sink t =
  Sink.make ~name:"pmdebugger"
    ~on_event:(fun ev -> on_event t ev)
    ~finish:(fun () ->
      on_program_end t;
      report t)

let backend_name t = Store_intf.name t.dspace

(* One detector as one shard worker: the full event path for routed
   events, and the scan/fire halves for the router's stall path. The
   scans position the detector at the event's stream location
   themselves, because they bypass [on_event_at]. *)
let worker t =
  {
    Shard_router.w_event = (fun ~seq ~silent ev -> on_event_at t ~seq ~silent ev);
    w_scan_store =
      (fun ~seq ~tid ~lo ~hi ->
        t.seq <- seq;
        t.cur_class <- "store";
        store_scan t ~tid ~lo ~hi);
    w_fire_store =
      (fun ~seq ~addr ~size obs ->
        t.seq <- seq;
        t.cur_class <- "store";
        store_fire t ~addr ~size obs);
    w_scan_clf =
      (fun ~seq ~tid ~lo ~hi ->
        t.seq <- seq;
        t.cur_class <- "clf";
        clf_scan t ~tid ~lo ~hi);
    w_fire_clf =
      (fun ~seq ~addr ~size obs ->
        t.seq <- seq;
        t.cur_class <- "clf";
        clf_fire t ~addr ~size obs);
    w_finish =
      (fun () ->
        on_program_end t;
        report t);
  }
