type t = {
  mutable addr : int;
  mutable size : int;
  mutable flushed : bool;
  mutable epoch : bool;
  mutable seq : int;
  mutable tid : int;
  mutable strand : int;
  mutable valid : bool;
  mutable clf_seq : int;
}

type payload = {
  mutable p_flushed : bool;
  p_epoch : bool;
  p_seq : int;
  p_tid : int;
  p_strand : int;
  mutable p_clf_seq : int;
  mutable p_fence_seq : int;
}

let fresh () =
  {
    addr = 0;
    size = 0;
    flushed = false;
    epoch = false;
    seq = 0;
    tid = 0;
    strand = -1;
    valid = false;
    clf_seq = -1;
  }

let fill t ~addr ~size ~epoch ~seq ~tid ~strand =
  t.addr <- addr;
  t.size <- size;
  t.flushed <- false;
  t.epoch <- epoch;
  t.seq <- seq;
  t.tid <- tid;
  t.strand <- strand;
  t.valid <- true;
  t.clf_seq <- -1

let payload_of t =
  {
    p_flushed = t.flushed;
    p_epoch = t.epoch;
    p_seq = t.seq;
    p_tid = t.tid;
    p_strand = t.strand;
    p_clf_seq = t.clf_seq;
    p_fence_seq = -1;
  }

let range t = Pmem.Addr.of_base_size t.addr t.size
