(** Flat baseline bookkeeping backend (the "naive design" of Fig. 10).

    One growable vector of tracked locations, scanned linearly by every
    store, flush and fence — no CLF-interval metadata, no spill tree, no
    bounding box. Semantically equivalent bookkeeping to {!Space} under
    the array-style splitting rules, but every operation is O(tracked):
    exactly the design the paper's hybrid structure is measured against.
    Plugs into the detector via {!backend} without touching rule code. *)

open Pmem

type entry = {
  mutable addr : int;
  mutable size : int;
  mutable flushed : bool;
  epoch : bool;
  seq : int;
  tid : int;
  strand : int;
  mutable clf_seq : int;
  mutable fence_seq : int;
  mutable spilled : bool;
      (* Mirrors tree residency in {!Space}: set once the location has
         crossed a fence unpersisted or was carved out of a partially
         flushed entry. Spilled entries follow the hybrid's tree rules
         (flushed pieces survive a partial overwrite; no fence stamp),
         non-spilled ones the array rules — the observable provenance
         must match the hybrid backend exactly. *)
}

type t = {
  mutable entries : entry array;
  mutable live : int;
  metrics : Obs.Metrics.t;
  mutable fence_samples : int;
  mutable tracked_sum : int;
}

let dummy =
  {
    addr = 0;
    size = 0;
    flushed = false;
    epoch = false;
    seq = -1;
    tid = 0;
    strand = -1;
    clf_seq = -1;
    fence_seq = -1;
    spilled = false;
  }

let create ?(metrics = Obs.Metrics.disabled) () =
  { entries = Array.make 64 dummy; live = 0; metrics; fence_samples = 0; tracked_sum = 0 }

let push t e =
  if t.live = Array.length t.entries then begin
    let bigger = Array.make (2 * t.live) dummy in
    Array.blit t.entries 0 bigger 0 t.live;
    t.entries <- bigger
  end;
  t.entries.(t.live) <- e;
  t.live <- t.live + 1

(* Remove by compaction, preserving insertion order so that scans (and
   therefore observations like [find_overlap]) stay deterministic. *)
let filter_in_place t keep =
  let w = ref 0 in
  for r = 0 to t.live - 1 do
    let e = t.entries.(r) in
    if keep e then begin
      t.entries.(!w) <- e;
      incr w
    end
  done;
  for i = !w to t.live - 1 do
    t.entries.(i) <- dummy
  done;
  t.live <- !w

let range_of e = Addr.range ~lo:e.addr ~hi:(e.addr + e.size)

let name = "flat"

let process_store t ?check_overlap:(_ = true) ~addr ~size ~epoch ~seq ~tid ~strand () =
  let probe = Addr.range ~lo:addr ~hi:(addr + size) in
  let priors = ref [] in
  let pieces = ref [] in
  (* Overwrite semantics mirror {!Space}: a fully covered location is
     superseded outright; a partially covered non-spilled (array-rule)
     entry merely loses its flushed state; a partially covered flushed
     spilled (tree-rule) entry keeps only its non-overlapped parts, and
     keeps them flushed — unflushing the whole region would orphan
     bytes whose lines are no longer dirty. *)
  let superseded = ref false in
  let live = t.live in
  for i = 0 to live - 1 do
    let e = t.entries.(i) in
    if Addr.overlaps (range_of e) probe then begin
      priors := e.seq :: !priors;
      if Addr.covers probe (range_of e) then begin
        e.fence_seq <- min_int;
        (* min_int fence_seq marks the entry dead; compacted below. *)
        superseded := true
      end
      else if not e.spilled then begin
        if e.flushed then begin
          e.flushed <- false;
          e.clf_seq <- -1
        end
      end
      else if e.flushed then begin
        match Addr.diff (range_of e) probe with
        | [] ->
            e.fence_seq <- min_int;
            superseded := true
        | first :: rest ->
            e.addr <- first.Addr.lo;
            e.size <- Addr.size first;
            List.iter
              (fun (part : Addr.range) ->
                pieces := { e with addr = part.Addr.lo; size = Addr.size part } :: !pieces)
              rest
      end
    end
  done;
  if !superseded then filter_in_place t (fun e -> e.fence_seq <> min_int);
  List.iter (push t) (List.rev !pieces);
  push t { addr; size; flushed = false; epoch; seq; tid; strand; clf_seq = -1; fence_seq = -1; spilled = false };
  Obs.Metrics.inc t.metrics "flat_scans_total";
  Obs.Metrics.max_set t.metrics "flat_live_peak" (float_of_int t.live);
  { Store_intf.overlapped = !priors <> []; prior_seqs = Store_intf.cap_prior_seqs !priors }

let find_overlap t ~lo ~hi =
  let probe = Addr.range ~lo ~hi in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < t.live do
    let e = t.entries.(!i) in
    if Addr.overlaps (range_of e) probe then found := Some e.seq;
    incr i
  done;
  !found

let process_clf ?(seq = -1) t ~lo ~hi =
  let flush = Addr.range ~lo ~hi in
  let matched = ref 0 in
  let newly = ref 0 in
  let redundant = ref [] in
  let redundant_prov = ref [] in
  let splits = ref [] in
  for i = 0 to t.live - 1 do
    let e = t.entries.(i) in
    let r = range_of e in
    if Addr.overlaps r flush then begin
      incr matched;
      if e.flushed then begin
        redundant := (e.addr, e.size) :: !redundant;
        redundant_prov := (e.seq, e.clf_seq) :: !redundant_prov
      end
      else if Addr.covers flush r then begin
        e.flushed <- true;
        e.clf_seq <- seq;
        incr newly
      end
      else begin
        (* Split (§4.3): the covered part becomes flushed in place; the
           uncovered remainders stay tracked unflushed. *)
        (match Addr.inter r flush with
        | None -> ()
        | Some covered ->
            let rest = Addr.diff r covered in
            List.iter
              (fun (part : Addr.range) ->
                splits :=
                  {
                    addr = part.Addr.lo;
                    size = Addr.size part;
                    flushed = false;
                    epoch = e.epoch;
                    seq = e.seq;
                    tid = e.tid;
                    strand = e.strand;
                    clf_seq = -1;
                    fence_seq = e.fence_seq;
                    spilled = true;
                  }
                  :: !splits)
              rest;
            e.addr <- covered.Addr.lo;
            e.size <- Addr.size covered;
            e.flushed <- true;
            e.clf_seq <- seq);
        incr newly
      end
    end
  done;
  List.iter (push t) (List.rev !splits);
  {
    Store_intf.matched = !matched;
    newly_flushed = !newly;
    redundant = List.rev !redundant;
    redundant_prov = List.rev !redundant_prov;
  }

let process_fence ?(seq = -1) t =
  (* Only the first crossing stamps: entries already spilled keep the
     stamp (or lack of one) from their own migration, exactly like tree
     residents in {!Space}. *)
  for i = 0 to t.live - 1 do
    let e = t.entries.(i) in
    if (not e.flushed) && not e.spilled then begin
      e.fence_seq <- seq;
      e.spilled <- true
    end
  done;
  filter_in_place t (fun e -> not e.flushed)

let has_pending_overlap t ~lo ~hi = find_overlap t ~lo ~hi <> None

let exists_epoch_pending t =
  let rec go i = i < t.live && (t.entries.(i).epoch || go (i + 1)) in
  go 0

let iter_pending t f =
  for i = 0 to t.live - 1 do
    let e = t.entries.(i) in
    f ~addr:e.addr ~size:e.size ~flushed:e.flushed ~epoch:e.epoch ~seq:e.seq ~clf_seq:e.clf_seq
      ~fence_seq:e.fence_seq
  done

let pending_count t = t.live

let clear t =
  for i = 0 to t.live - 1 do
    t.entries.(i) <- dummy
  done;
  t.live <- 0

let tree_size _ = 0

let array_live t = t.live

let note_fence_sample t =
  t.fence_samples <- t.fence_samples + 1;
  t.tracked_sum <- t.tracked_sum + t.live

let avg_tree_nodes_per_fence _ = 0.0

let reorganizations _ = 0

let stats t =
  [
    ("flat_live", float_of_int t.live);
    ("avg_tracked_per_fence",
     if t.fence_samples = 0 then 0.0 else float_of_int t.tracked_sum /. float_of_int t.fence_samples);
  ]

module Store = struct
  type nonrec t = t

  let name = name
  let process_store = process_store
  let find_overlap = find_overlap
  let process_clf = process_clf
  let process_fence = process_fence
  let has_pending_overlap = has_pending_overlap
  let exists_epoch_pending = exists_epoch_pending
  let iter_pending = iter_pending
  let pending_count = pending_count
  let clear = clear
  let tree_size = tree_size
  let array_live = array_live
  let note_fence_sample = note_fence_sample
  let avg_tree_nodes_per_fence = avg_tree_nodes_per_fence
  let reorganizations = reorganizations
  let stats = stats
end

let backend ?metrics () : Store_intf.backend =
 fun () -> Store_intf.Instance ((module Store), create ?metrics ())
