(** One bookkeeping space: memory-location array + CLF-interval
    metadata list + AVL spill tree (§4.1).

    The space implements the three processing algorithms of §4.2–4.4 as
    pure bookkeeping; it reports the observations the detection rules
    need (overlaps found, redundant flushes, interval survivals) but
    emits no bugs itself. A strict/epoch-model detector owns one space;
    a strand-model detector owns one per strand section (§5.1).

    Ablation knobs (see DESIGN.md): [mode] selects the hybrid design or
    the degenerate array-only / tree-only variants, and
    [interval_metadata] disables the collective per-interval state so
    that every CLF and fence must visit slots individually. *)

type mode = Hybrid | Array_only | Tree_only

type t

val create :
  ?array_capacity:int (** default 100_000 (§4.1) *) ->
  ?merge_threshold:int (** default 500 (§4.4) *) ->
  ?mode:mode ->
  ?interval_metadata:bool ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [metrics] (default disabled) receives the bookkeeping telemetry of
    Figs. 10–12: [space_array_hits_total] vs [space_tree_spills_total],
    [space_collective_clf_total] (Pattern-2 interval updates),
    [space_fence_migrations_total], [space_reorganizations_total],
    [space_interval_merges_total] (nodes merged away by reorganizing),
    [space_bounds_skips_total] (stores/CLFs/queries answered from the
    global bounding box without walking intervals or probing the tree)
    and the [space_array_live_peak] / [space_tree_size_peak] gauges. *)

(** {1 Processing} *)

type store_result = Store_intf.store_result = {
  overlapped : bool;  (** some tracked location overlapped the store *)
  prior_seqs : int list;
      (** store seqs of the overlapped locations — sorted ascending,
          deduplicated, capped at 8 (canonical regardless of bookkeeping
          mode); the causal history of a multiple-overwrites finding.
          Best-effort under [~check_overlap:false] (intervals skipped by
          the Pattern-3 fast path are not walked) and after tree merges
          (a merged node keeps only its newest store's seq). *)
}

val process_store :
  t ->
  ?check_overlap:bool ->
  addr:int ->
  size:int ->
  epoch:bool ->
  seq:int ->
  tid:int ->
  strand:int ->
  unit ->
  store_result
(** §4.2: append to the array (spilling to the tree when full) and
    update the current CLF interval's metadata. Tracked overlapping
    locations that were flushed but not fenced lose their flushed state
    (the line is dirty again). Returns the multiple-overwrites
    observation; pass [~check_overlap:false] (when the overwrite rule is
    off) to let stores skip intervals that cannot hold flushed slots. *)

val find_overlap : t -> lo:int -> hi:int -> int option
(** Sequence number of some tracked, still-unpersisted location
    overlapping the range, if any. *)

type clf_result = Store_intf.clf_result = {
  matched : int;  (** tracked locations the flush covered (fully or partly) *)
  newly_flushed : int;  (** covered locations that were not already flushed *)
  redundant : (int * int) list;  (** (addr, size) of already-flushed hits *)
  redundant_prov : (int * int) list;
      (** (store seq, prior CLF seq) per redundant hit, aligned with
          [redundant]; prior CLF seq is -1 when the earlier flush
          predates seq stamping (e.g. a caller passing no [?seq]) *)
}

val process_clf : ?seq:int -> t -> lo:int -> hi:int -> clf_result
(** §4.3: update flushing states collectively via interval metadata,
    split partially covered locations (unflushed remainder goes to the
    tree), then update the tree; finally open a new CLF interval.
    [seq] (default -1 = unstamped) is this CLF's event sequence number,
    recorded as flush provenance on every location it newly covers —
    individually on slots and tree nodes, collectively on an interval's
    metadata when the Pattern-2 fast path applies. *)

val process_fence : ?seq:int -> t -> unit
(** §4.4: tree first — drop persisted nodes; then the array — drop
    flushed entries collectively per interval, migrate survivors to the
    tree; reset the array and metadata; merge the tree when it exceeds
    the threshold. [seq] (default -1) stamps payloads migrating to the
    tree with the fence they crossed unpersisted; nodes already in the
    tree keep the stamp of their first crossing. *)

(** {1 Queries for rules} *)

val has_pending_overlap : t -> lo:int -> hi:int -> bool
(** Any tracked (not yet durable) location overlapping the range? *)

val exists_epoch_pending : t -> bool
(** Any tracked location whose store came from an epoch section? *)

val iter_pending :
  t ->
  (addr:int -> size:int -> flushed:bool -> epoch:bool -> seq:int -> clf_seq:int -> fence_seq:int -> unit) ->
  unit
(** Every tracked location, with its current flushing state and
    provenance: [seq] of the originating store, [clf_seq] of the CLF
    that flushed it (-1 if unflushed; collective flushes report the
    interval's CLF), [fence_seq] of the first fence it crossed
    unpersisted (-1 while still in the array). *)

val pending_count : t -> int

val clear : t -> unit

(** {1 Statistics} *)

val tree_size : t -> int

val array_live : t -> int

val note_fence_sample : t -> unit
(** Record the current tree size as one fence-interval sample
    (Fig. 11). Called by the detector at each fence. *)

val avg_tree_nodes_per_fence : t -> float

val reorganizations : t -> int

val stats : t -> (string * float) list

(** {1 Backend packaging}

    The hybrid space as a {!Store_intf.LOCATION_STORE}: the reference
    bookkeeping backend the detector uses unless an alternative (e.g.
    {!Flat_store}) is plugged in. *)

module Store : Store_intf.LOCATION_STORE with type t = t

val backend :
  ?array_capacity:int ->
  ?merge_threshold:int ->
  ?mode:mode ->
  ?interval_metadata:bool ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  Store_intf.backend
(** A factory closing over the given knobs; each call of the resulting
    backend creates a fresh space. *)
