(** The bookkeeping-backend contract: [LOCATION_STORE].

    The paper's central data-structure claim (§4, Figs. 10–12) is that
    the hybrid array+AVL {!Space} beats both a pure tree and naive
    designs because it matches PM program patterns. To benchmark that
    claim honestly — and to let the detector run against alternative
    bookkeeping engines without touching rule code — the detector is
    parameterized over this signature instead of calling [Space]
    directly. {!Space} is the reference implementation; {!Flat_store}
    is the flat-hashtable baseline used for comparison.

    The result types live here (not in the implementations) so that
    every backend returns structurally identical observations and the
    rule layer cannot depend on implementation detail. *)

type store_result = {
  overlapped : bool;  (** some tracked location overlapped the store *)
  prior_seqs : int list;
      (** store seqs of the overlapped locations — sorted ascending,
          deduplicated, capped at {!max_prior_seqs}: the canonical
          causal history of a multiple-overwrites finding, regardless
          of backend or walk order. *)
}

type clf_result = {
  matched : int;  (** tracked locations the flush covered (fully or partly) *)
  newly_flushed : int;  (** covered locations that were not already flushed *)
  redundant : (int * int) list;  (** (addr, size) of already-flushed hits *)
  redundant_prov : (int * int) list;
      (** (store seq, prior CLF seq) per redundant hit, aligned with
          [redundant]; prior CLF seq is -1 when the earlier flush
          predates seq stamping. *)
}

let max_prior_seqs = Pmtrace.Shard_router.max_prior_seqs
(** Cap on prior-store seqs collected per store: causal chains need the
    earliest few overwritten stores, not an unbounded history under hot
    addresses. Shared by every backend {e and} by the sharded
    pipeline's cross-shard merge (hence defined there), so the cap is a
    property of the observation, not of one implementation. *)

let cap_prior_seqs priors =
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  take max_prior_seqs (List.sort_uniq compare priors)
(** Canonicalize a raw prior-seq collection: sorted ascending, deduped,
    capped at {!max_prior_seqs} — keeping the {e smallest} (earliest)
    seqs. Because the cap keeps a prefix of the sorted order, capping
    per partition and re-capping the union yields the same result as
    capping the union directly; the sharded merge relies on this. *)

(** What the detector requires of a bookkeeping backend. The semantics
    are those of §4.2–4.4 (see {!Space} for the reference behaviour):
    pure bookkeeping that reports the observations the rules need but
    emits no bugs itself. *)
module type LOCATION_STORE = sig
  type t

  val name : string
  (** Identifier used in stats and reports (e.g. ["hybrid"], ["flat"]). *)

  val process_store :
    t ->
    ?check_overlap:bool ->
    addr:int ->
    size:int ->
    epoch:bool ->
    seq:int ->
    tid:int ->
    strand:int ->
    unit ->
    store_result
  (** §4.2: track the store; tracked overlapping locations that were
      flushed but not fenced lose their flushed state. *)

  val find_overlap : t -> lo:int -> hi:int -> int option
  (** Sequence number of some tracked, still-unpersisted location
      overlapping the range, if any. *)

  val process_clf : ?seq:int -> t -> lo:int -> hi:int -> clf_result
  (** §4.3: update flushing states; split partially covered locations. *)

  val process_fence : ?seq:int -> t -> unit
  (** §4.4: drop persisted locations; survivors keep (or gain) the seq
      of the first fence they crossed unpersisted. *)

  val has_pending_overlap : t -> lo:int -> hi:int -> bool

  val exists_epoch_pending : t -> bool

  val iter_pending :
    t ->
    (addr:int -> size:int -> flushed:bool -> epoch:bool -> seq:int -> clf_seq:int -> fence_seq:int -> unit) ->
    unit

  val pending_count : t -> int

  val clear : t -> unit

  (** {1 Statistics} *)

  val tree_size : t -> int
  (** Spill-structure size (0 for backends without one). *)

  val array_live : t -> int
  (** Fast-path live entries (total tracked for flat backends). *)

  val note_fence_sample : t -> unit
  (** Record the current spill size as one fence-interval sample
      (Fig. 11); a no-op for backends without the notion. *)

  val avg_tree_nodes_per_fence : t -> float

  val reorganizations : t -> int

  val stats : t -> (string * float) list
end

type instance = Instance : (module LOCATION_STORE with type t = 'a) * 'a -> instance
(** A backend packed with one of its stores — what the detector holds
    per bookkeeping space. *)

type backend = unit -> instance
(** A backend factory: each call creates one fresh, independent store
    (the detector needs one per strand section under the strand
    model). *)

(** {1 Operations on packed instances} *)

let name (Instance ((module S), _)) = S.name

let process_store (Instance ((module S), s)) = S.process_store s

let find_overlap (Instance ((module S), s)) = S.find_overlap s

let process_clf ?seq (Instance ((module S), s)) = S.process_clf ?seq s

let process_fence ?seq (Instance ((module S), s)) = S.process_fence ?seq s

let has_pending_overlap (Instance ((module S), s)) = S.has_pending_overlap s

let exists_epoch_pending (Instance ((module S), s)) = S.exists_epoch_pending s

let iter_pending (Instance ((module S), s)) = S.iter_pending s

let pending_count (Instance ((module S), s)) = S.pending_count s

let clear (Instance ((module S), s)) = S.clear s

let tree_size (Instance ((module S), s)) = S.tree_size s

let array_live (Instance ((module S), s)) = S.array_live s

let note_fence_sample (Instance ((module S), s)) = S.note_fence_sample s

let avg_tree_nodes_per_fence (Instance ((module S), s)) = S.avg_tree_nodes_per_fence s

let reorganizations (Instance ((module S), s)) = S.reorganizations s

let stats (Instance ((module S), s)) = S.stats s
