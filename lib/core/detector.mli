(** PMDebugger — the paper's detector, assembled from the bookkeeping
    space (§4), the nine generalized detection rules (§4.5, §5.2) and
    the relaxed-model extensions (§5.1).

    Construct with the target persistency model; the default rule set
    follows the paper (e.g. multiple-overwrites is disabled under
    relaxed models, where overwriting before durability is legal). The
    detector is exposed as a {!Pmtrace.Sink.t} so it attaches to the
    instrumentation engine or to a trace replay identically. *)

type model = Strict | Epoch | Strand

type rule_set = {
  no_durability : bool;
  multiple_overwrites : bool;
  no_order_guarantee : bool;
  redundant_flush : bool;
  flush_nothing : bool;
  redundant_logging : bool;
  lack_durability_in_epoch : bool;
  redundant_epoch_fence : bool;
  lack_ordering_in_strands : bool;
  cross_failure : bool;
}

val default_rules : model -> rule_set

val all_rules_off : rule_set

type t

val create :
  ?model:model (** default [Strict] *) ->
  ?rules:rule_set (** default [default_rules model] *) ->
  ?config:Order_config.t ->
  ?backend:Store_intf.backend
    (** bookkeeping backend factory; overrides the four knobs below.
        Default: {!Space.backend} (the paper's hybrid structure). *) ->
  ?array_capacity:int ->
  ?merge_threshold:int ->
  ?mode:Space.mode ->
  ?interval_metadata:bool ->
  ?pm:Pmem.State.t (** live PM state, required for cross-failure checks *) ->
  ?recovery:(Pmem.Image.t -> bool) ->
  ?crash_check_every_fence:bool (** default false: check at program end only *) ->
  ?max_bugs_per_kind:int (** default 1000 *) ->
  ?walk_dedup:bool
    (** default [true]. [false] — required for shard workers — makes the
        pending-location walks (program end, epoch end) report every
        pending entry, bypassing the per-(kind, addr) dedup and the
        per-kind cap: line clipping moves finding addresses, so only the
        router's merge, which rejoins the clipped pieces, can replicate
        the single-shard dedup decisions. *) ->
  ?metrics:Obs.Metrics.t ->
  ?heatmap:Obs.Heatmap.t ->
  unit ->
  t
(** [metrics] (default disabled) is shared with every bookkeeping space
    the detector creates and receives
    [detector_rule_fires_total{rule}] (pre-declared at zero for all ten
    rules), [detector_bugs_suppressed_total{rule}] (findings dropped by
    [max_bugs_per_kind]) and [detector_crash_checks_total].

    [heatmap] (default disabled) receives per-cache-line accounting:
    one {!Obs.Heatmap.on_store}/[on_clf] per line an owner (non-silent)
    store/CLF touches, one [on_bug] per admitted finding with a real
    address, and line names from [Register_var] events. One branch per
    event when disabled; an allocation-free line loop when enabled.
    Sharded runs (silent replicas skipped) count owner traffic only —
    stall-path scans may count a spanning event once per scanning
    shard, so sharded heatmaps are approximate on barrier events. *)

val sink : t -> Pmtrace.Sink.t

val report : t -> Pmtrace.Bug.report
(** Current report (also returned by the sink's [finish]). *)

val backend_name : t -> string
(** Name of the bookkeeping backend in use ("hybrid", "flat", …). *)

val worker : t -> Pmtrace.Shard_router.worker
(** This detector as one shard of the sharded pipeline: pass
    [fun _ -> Detector.worker (Detector.create ~walk_dedup:false ...)]
    to {!Pmtrace.Shard_router.sink}. Each shard needs its own detector
    (with its own backend) created with [~walk_dedup:false] — the merge
    performs the pending-walk dedup globally; per-shard detectors must
    use disabled [metrics] — hand the registry to the router instead. *)

val avg_tree_nodes_per_fence : t -> float
(** Fig. 11 metric, averaged over all spaces weighted by samples. *)

val reorganizations : t -> int
