(** PMDebugger — the paper's detector, assembled from the bookkeeping
    space (§4), the nine generalized detection rules (§4.5, §5.2) and
    the relaxed-model extensions (§5.1).

    Construct with the target persistency model; the default rule set
    follows the paper (e.g. multiple-overwrites is disabled under
    relaxed models, where overwriting before durability is legal). The
    detector is exposed as a {!Pmtrace.Sink.t} so it attaches to the
    instrumentation engine or to a trace replay identically. *)

type model = Strict | Epoch | Strand

type rule_set = {
  no_durability : bool;
  multiple_overwrites : bool;
  no_order_guarantee : bool;
  redundant_flush : bool;
  flush_nothing : bool;
  redundant_logging : bool;
  lack_durability_in_epoch : bool;
  redundant_epoch_fence : bool;
  lack_ordering_in_strands : bool;
  cross_failure : bool;
}

val default_rules : model -> rule_set

val all_rules_off : rule_set

type t

val create :
  ?model:model (** default [Strict] *) ->
  ?rules:rule_set (** default [default_rules model] *) ->
  ?config:Order_config.t ->
  ?array_capacity:int ->
  ?merge_threshold:int ->
  ?mode:Space.mode ->
  ?interval_metadata:bool ->
  ?pm:Pmem.State.t (** live PM state, required for cross-failure checks *) ->
  ?recovery:(Pmem.Image.t -> bool) ->
  ?crash_check_every_fence:bool (** default false: check at program end only *) ->
  ?max_bugs_per_kind:int (** default 1000 *) ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [metrics] (default disabled) is shared with every bookkeeping space
    the detector creates and receives
    [detector_rule_fires_total{rule}] (pre-declared at zero for all ten
    rules), [detector_bugs_suppressed_total{rule}] (findings dropped by
    [max_bugs_per_kind]) and [detector_crash_checks_total]. *)

val sink : t -> Pmtrace.Sink.t

val report : t -> Pmtrace.Bug.report
(** Current report (also returned by the sink's [finish]). *)

val default_space : t -> Space.t
(** The non-strand bookkeeping space (for tests and stats). *)

val avg_tree_nodes_per_fence : t -> float
(** Fig. 11 metric, averaged over all spaces weighted by samples. *)

val reorganizations : t -> int
