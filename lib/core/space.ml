open Pmem

type mode = Hybrid | Array_only | Tree_only

type t = {
  mode : mode;
  interval_metadata : bool;
  capacity : int;
  merge_threshold : int;
  metrics : Obs.Metrics.t;
  slots : Slot.t array;
  mutable live : int;  (* number of appended slots in the current fence interval *)
  mutable first_meta : Clf_meta.t;
  mutable cur_meta : Clf_meta.t;
  tree : Slot.payload Rangetree.t;
  (* Tree nodes flushed by CLFs since the last fence: the fence removes
     exactly these instead of sweeping the whole tree, so a large spill
     tree of never-flushed locations costs fences nothing. *)
  mutable tree_flushed_nodes : (int * int * Slot.payload) list;
  mutable last_reorg_size : int;
  (* Bounding box over everything currently tracked (array + tree), as
     half-open [bound_lo, bound_hi); empty when bound_lo >= bound_hi.
     Conservative — invalidations do not shrink it — and recomputed from
     the tree at each fence. A store or query outside the box skips the
     interval walk and the tree probe entirely. *)
  mutable bound_lo : int;
  mutable bound_hi : int;
  (* Fig. 11 sampling *)
  mutable fence_samples : int;
  mutable tree_size_sum : int;
}

let create ?(array_capacity = 100_000) ?(merge_threshold = 500) ?(mode = Hybrid) ?(interval_metadata = true)
    ?(metrics = Obs.Metrics.disabled) () =
  let capacity = match mode with Tree_only -> 0 | Hybrid | Array_only -> array_capacity in
  (* Pre-declare the hit/spill pair so every snapshot shows both sides
     of the hybrid, zeros included. *)
  if Obs.Metrics.is_on metrics then begin
    Obs.Metrics.inc metrics ~by:0 "space_array_hits_total";
    Obs.Metrics.inc metrics ~by:0 "space_tree_spills_total";
    Obs.Metrics.inc metrics ~by:0 "space_bounds_skips_total"
  end;
  let meta = Clf_meta.make ~start_idx:0 in
  {
    mode;
    interval_metadata;
    capacity;
    merge_threshold;
    metrics;
    slots = Array.init capacity (fun _ -> Slot.fresh ());
    live = 0;
    first_meta = meta;
    cur_meta = meta;
    tree = Rangetree.create ();
    tree_flushed_nodes = [];
    last_reorg_size = 0;
    bound_lo = max_int;
    bound_hi = min_int;
    fence_samples = 0;
    tree_size_sum = 0;
  }

let bounds_add t ~lo ~hi =
  if lo < t.bound_lo then t.bound_lo <- lo;
  if hi > t.bound_hi then t.bound_hi <- hi

(* The range cannot touch anything tracked: nothing lives outside the
   bounding box. *)
let bounds_miss t ~lo ~hi = hi <= t.bound_lo || lo >= t.bound_hi

let bounds_reset_from_tree t =
  match Rangetree.bounds t.tree with
  | None ->
      t.bound_lo <- max_int;
      t.bound_hi <- min_int
  | Some (lo, hi) ->
      t.bound_lo <- lo;
      t.bound_hi <- hi

let iter_metas t f =
  let rec go m =
    f m;
    match m.Clf_meta.next with None -> () | Some n -> go n
  in
  go t.first_meta

(* Effective flushing state of a slot, accounting for the collective
   interval state (slots of an All_flushed interval are flushed even when
   their individual flag was never touched). *)
let slot_flushed t (m : Clf_meta.t) (s : Slot.t) =
  ignore t;
  s.Slot.flushed || m.Clf_meta.state = Clf_meta.All_flushed

let tree_insert_payload t ~lo ~hi (p : Slot.payload) =
  bounds_add t ~lo ~hi;
  Rangetree.insert t.tree ~lo ~hi p

(* A store dirties its cache line again: any tracked overlapping
   location that was flushed (but not yet fenced) loses its flushed
   state, exactly as the hardware voids a CLWB that precedes a new
   store. Returns whether any tracked location overlapped — the
   observation the multiple-overwrites rule needs, collected here so the
   store path scans the bookkeeping space once. *)
(* Drop the pending-flush registration of a superseded tree node, so
   the registration list stays proportional to the interval's live
   flushed nodes even under hot addresses. Identity plus exact range
   keeps split pieces that share a payload distinct. *)
let purge_registration t ~lo ~hi (p : Slot.payload) =
  if t.tree_flushed_nodes <> [] then
    t.tree_flushed_nodes <-
      List.filter (fun (flo, fhi, fp) -> not (fp == p && flo = lo && fhi = hi)) t.tree_flushed_nodes

(* Cap on prior-store seqs collected per store: causal chains need the
   earliest few overwritten stores, not an unbounded history under hot
   addresses. The shared constant keeps every backend — and the
   cross-shard merge — on the same cap. *)
let max_prior_seqs = Store_intf.max_prior_seqs

let unflush_overlaps t ~need_overlap ~lo ~hi =
  if bounds_miss t ~lo ~hi then begin
    Obs.Metrics.inc t.metrics "space_bounds_skips_total";
    (false, [])
  end
  else begin
  let probe = Addr.range ~lo ~hi in
  let found = ref false in
  let priors = ref [] in
  let note_prior seq =
    found := true;
    if need_overlap then priors := seq :: !priors
  in
  let visit_meta (m : Clf_meta.t) =
    (* Every overlapping interval is scanned whatever its flush state:
       superseding fully-covered slots is observable (pending walks,
       later CLF match counts), and skipping it for all-unflushed
       intervals — the former Pattern 3 fast path — made that outcome
       depend on the flush state of unrelated slots sharing the
       interval: a cross-line effect that diverged from the tree and
       flat backends and broke shard parity. [need_overlap] now gates
       only the prior-seq observation. *)
    if not (Clf_meta.is_empty m) then
      match Clf_meta.addr_range m with
      | Some r when Addr.overlaps r probe ->
          (* Demote a collectively-flushed interval before touching
             individual slots: the collective bit stands for every
             slot's state (and the collective CLF seq for every slot's
             flush provenance). *)
          if t.interval_metadata && m.Clf_meta.state = Clf_meta.All_flushed then begin
            for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
              let s = t.slots.(i) in
              if s.Slot.valid then begin
                s.Slot.flushed <- true;
                if s.Slot.clf_seq < 0 then s.Slot.clf_seq <- m.Clf_meta.clf_seq
              end
            done;
            m.Clf_meta.state <- Clf_meta.Partially_flushed
          end;
          for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
            let s = t.slots.(i) in
            if s.Slot.valid && Addr.overlaps (Slot.range s) probe then begin
              note_prior s.Slot.seq;
              (* A fully covered slot is superseded outright (the new
                 store re-tracks the address); partial overlaps merely
                 lose their flushed state. *)
              if Addr.covers probe (Slot.range s) then begin
                s.Slot.valid <- false;
                m.Clf_meta.invalidated <- m.Clf_meta.invalidated + 1
              end
              else if s.Slot.flushed then begin
                s.Slot.flushed <- false;
                s.Slot.clf_seq <- -1
              end
            end
          done
      | _ -> ()
  in
  iter_metas t visit_meta;
  (* Cheap emptiness probe before the allocating overlap pass. *)
  if Rangetree.find_first_overlap t.tree ~lo ~hi = None then (!found, !priors)
  else begin
  (* Tree nodes: a fully covered node is superseded outright (the new
     store re-tracks the address), preventing stale duplicates from
     piling up under hot addresses; a partially covered flushed node
     keeps only its non-overlapped parts flushed — marking the whole
     region unflushed would orphan bytes whose lines are no longer
     dirty. *)
  let visited =
    Rangetree.map_overlapping t.tree ~lo ~hi ~f:(fun r (p : Slot.payload) ->
        note_prior p.Slot.p_seq;
        if Addr.covers probe r then begin
          (* Superseded outright: its pending-flush registration (if
             any) points at a node that no longer exists. *)
          if p.Slot.p_flushed then purge_registration t ~lo:r.Addr.lo ~hi:r.Addr.hi p;
          []
        end
        else if not p.Slot.p_flushed then [ (r, p) ]
        else begin
          (* The original node is replaced by its pieces below, so its
             own registration is dead too. *)
          purge_registration t ~lo:r.Addr.lo ~hi:r.Addr.hi p;
          List.map
            (fun (piece : Addr.range) ->
              let fp = { p with Slot.p_flushed = true } in
              (* Register the replacement pieces so the next fence still
                 drops them. *)
              t.tree_flushed_nodes <- (piece.Addr.lo, piece.Addr.hi, fp) :: t.tree_flushed_nodes;
              (piece, fp))
            (Addr.diff r probe)
        end)
  in
  if visited > 0 then found := true;
  (!found, !priors)
  end
  end

type store_result = Store_intf.store_result = { overlapped : bool; prior_seqs : int list }

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

let process_store t ?(check_overlap = true) ~addr ~size ~epoch ~seq ~tid ~strand () =
  let overlapped, priors = unflush_overlaps t ~need_overlap:check_overlap ~lo:addr ~hi:(addr + size) in
  if t.mode = Tree_only || t.live >= t.capacity then begin
    (* Rare overflow path (§4.1): spill straight to the tree. *)
    tree_insert_payload t ~lo:addr ~hi:(addr + size)
      { Slot.p_flushed = false; p_epoch = epoch; p_seq = seq; p_tid = tid; p_strand = strand; p_clf_seq = -1; p_fence_seq = -1 };
    Obs.Metrics.inc t.metrics "space_tree_spills_total"
  end
  else begin
    let idx = t.live in
    Slot.fill t.slots.(idx) ~addr ~size ~epoch ~seq ~tid ~strand;
    t.live <- idx + 1;
    bounds_add t ~lo:addr ~hi:(addr + size);
    Clf_meta.note_store t.cur_meta ~idx ~lo:addr ~hi:(addr + size);
    Obs.Metrics.inc t.metrics "space_array_hits_total";
    Obs.Metrics.max_set t.metrics "space_array_live_peak" (float_of_int t.live)
  end;
  (* Canonical provenance: sorted, deduped, capped — independent of the
     bookkeeping walk order (array vs tree vs hybrid). *)
  { overlapped; prior_seqs = take max_prior_seqs (List.sort_uniq compare priors) }

let find_overlap t ~lo ~hi =
  if bounds_miss t ~lo ~hi then begin
    Obs.Metrics.inc t.metrics "space_bounds_skips_total";
    None
  end
  else begin
  let found = ref None in
  let probe_range = Addr.range ~lo ~hi in
  let check_meta (m : Clf_meta.t) =
    if !found = None && not (Clf_meta.is_empty m) then
      match Clf_meta.addr_range m with
      | Some r when Addr.overlaps r probe_range ->
          let i = ref m.Clf_meta.start_idx in
          while !found = None && !i <= m.Clf_meta.end_idx do
            let s = t.slots.(!i) in
            if s.Slot.valid && Addr.overlaps (Slot.range s) probe_range then found := Some s.Slot.seq;
            incr i
          done
      | _ -> ()
  in
  iter_metas t check_meta;
  (if !found = None then
     match Rangetree.find_first_overlap t.tree ~lo ~hi with
     | Some (_, p) -> found := Some p.Slot.p_seq
     | None -> ());
  !found
  end

type clf_result = Store_intf.clf_result = {
  matched : int;
  newly_flushed : int;
  redundant : (int * int) list;
  redundant_prov : (int * int) list;
}

(* Split a partially covered slot (§4.3): the covered part stays in the
   array (flushed); uncovered remainders go to the tree, not flushed. *)
let split_slot t (s : Slot.t) ~(flush : Addr.range) ~seq =
  let r = Slot.range s in
  match Addr.inter r flush with
  | None -> ()
  | Some covered ->
      let rest = Addr.diff r covered in
      List.iter
        (fun (part : Addr.range) ->
          tree_insert_payload t ~lo:part.Addr.lo ~hi:part.Addr.hi
            {
              Slot.p_flushed = false;
              p_epoch = s.Slot.epoch;
              p_seq = s.Slot.seq;
              p_tid = s.Slot.tid;
              p_strand = s.Slot.strand;
              p_clf_seq = -1;
              p_fence_seq = -1;
            })
        rest;
      s.Slot.addr <- covered.Addr.lo;
      s.Slot.size <- Addr.size covered;
      s.Slot.flushed <- true;
      s.Slot.clf_seq <- seq

(* Close the current CLF interval and open the next (§4.3). *)
let close_interval t =
  if not (Clf_meta.is_empty t.cur_meta) then begin
    let next = Clf_meta.make ~start_idx:t.live in
    t.cur_meta.Clf_meta.next <- Some next;
    t.cur_meta <- next
  end

let process_clf ?(seq = -1) t ~lo ~hi =
  if bounds_miss t ~lo ~hi then begin
    (* Nothing tracked can overlap, but the CLF still ends the current
       interval. *)
    Obs.Metrics.inc t.metrics "space_bounds_skips_total";
    close_interval t;
    { matched = 0; newly_flushed = 0; redundant = []; redundant_prov = [] }
  end
  else begin
  let flush = Addr.range ~lo ~hi in
  let matched = ref 0 in
  let newly = ref 0 in
  let redundant = ref [] in
  let redundant_prov = ref [] in
  let visit_slot (m : Clf_meta.t) (s : Slot.t) =
    if s.Slot.valid && Addr.overlaps (Slot.range s) flush then begin
      incr matched;
      if slot_flushed t m s then begin
        redundant := (s.Slot.addr, s.Slot.size) :: !redundant;
        let prior = if s.Slot.clf_seq >= 0 then s.Slot.clf_seq else m.Clf_meta.clf_seq in
        redundant_prov := (s.Slot.seq, prior) :: !redundant_prov
      end
      else if Addr.covers flush (Slot.range s) then begin
        s.Slot.flushed <- true;
        s.Slot.clf_seq <- seq;
        incr newly
      end
      else begin
        split_slot t s ~flush ~seq;
        incr newly
      end
    end
  in
  let visit_meta (m : Clf_meta.t) =
    if not (Clf_meta.is_empty m) then begin
      match Clf_meta.addr_range m with
      | None -> ()
      | Some r ->
          if not (Addr.overlaps r flush) then ()
          else if t.interval_metadata && Addr.covers flush r && m.Clf_meta.state = Clf_meta.Not_flushed then begin
            (* Collective update (Pattern 2): one metadata write covers
               every location of the interval. Slots need no individual
               state change; superseded (invalidated) slots are excluded
               from the counts — they are no longer tracked locations.
               The interval records this CLF's seq as the shared flush
               provenance of every slot it covers. *)
            let n = m.Clf_meta.end_idx - m.Clf_meta.start_idx + 1 - m.Clf_meta.invalidated in
            matched := !matched + n;
            newly := !newly + n;
            m.Clf_meta.state <- Clf_meta.All_flushed;
            m.Clf_meta.clf_seq <- seq;
            Obs.Metrics.inc t.metrics "space_collective_clf_total"
          end
          else begin
            for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
              visit_slot m t.slots.(i)
            done;
            if t.interval_metadata && m.Clf_meta.state = Clf_meta.Not_flushed then
              m.Clf_meta.state <- Clf_meta.Partially_flushed
          end
    end
  in
  iter_metas t visit_meta;
  (* Then the tree (§4.3): update flushing state of overlapping nodes,
     splitting partially covered ones. *)
  let visited =
    Rangetree.map_overlapping t.tree ~lo ~hi ~f:(fun r (p : Slot.payload) ->
        if p.Slot.p_flushed then begin
          redundant := (r.Addr.lo, Addr.size r) :: !redundant;
          redundant_prov := (p.Slot.p_seq, p.Slot.p_clf_seq) :: !redundant_prov;
          [ (r, p) ]
        end
        else if Addr.covers flush r then begin
          p.Slot.p_flushed <- true;
          p.Slot.p_clf_seq <- seq;
          incr newly;
          t.tree_flushed_nodes <- (r.Addr.lo, r.Addr.hi, p) :: t.tree_flushed_nodes;
          [ (r, p) ]
        end
        else begin
          match Addr.inter r flush with
          | None -> [ (r, p) ]
          | Some covered ->
              incr newly;
              let rest = Addr.diff r covered in
              let fp = { p with Slot.p_flushed = true; p_clf_seq = seq } in
              t.tree_flushed_nodes <- (covered.Addr.lo, covered.Addr.hi, fp) :: t.tree_flushed_nodes;
              (covered, fp) :: List.map (fun part -> (part, { p with Slot.p_flushed = false; p_clf_seq = -1 })) rest
        end)
  in
  matched := !matched + visited;

  close_interval t;
  {
    matched = !matched;
    newly_flushed = !newly;
    redundant = List.rev !redundant;
    redundant_prov = List.rev !redundant_prov;
  }
  end

let process_fence ?(seq = -1) t =
  (* Tree first (§4.4): drop the nodes this fence interval's CLFs
     flushed (unless a later store un-flushed or superseded them). *)
  List.iter
    (fun (lo, hi, (p : Slot.payload)) ->
      if p.Slot.p_flushed then ignore (Rangetree.remove_first t.tree ~lo ~hi (fun x -> x == p)))
    t.tree_flushed_nodes;
  t.tree_flushed_nodes <- [];
  (* Array: per interval, All_flushed drops wholesale (metadata
     invalidation only); otherwise flushed slots drop and unflushed
     slots migrate to the tree. A migrating payload is stamped with
     this fence's seq — the first fence the location crossed without
     persisting, which causal chains report; tree survivors keep the
     stamp of their own first crossing (no O(tree) sweep). *)
  let migrated = ref 0 in
  let visit_meta (m : Clf_meta.t) =
    if not (Clf_meta.is_empty m) then
      if t.interval_metadata && m.Clf_meta.state = Clf_meta.All_flushed then ()
      else
        for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
          let s = t.slots.(i) in
          if s.Slot.valid && not (slot_flushed t m s) then begin
            let p = Slot.payload_of s in
            p.Slot.p_fence_seq <- seq;
            tree_insert_payload t ~lo:s.Slot.addr ~hi:(s.Slot.addr + s.Slot.size) p;
            incr migrated
          end
        done
  in
  iter_metas t visit_meta;
  Obs.Metrics.inc t.metrics ~by:!migrated "space_fence_migrations_total";
  Obs.Metrics.max_set t.metrics "space_tree_size_peak" (float_of_int (Rangetree.size t.tree));
  t.live <- 0;
  let meta = Clf_meta.make ~start_idx:0 in
  t.first_meta <- meta;
  t.cur_meta <- meta;
  (* Merge only past the threshold (§4.4) and only when the tree has
     actually grown since the last pass — re-merging an unmergeable
     tree at every fence would be quadratic. *)
  if Rangetree.size t.tree > t.merge_threshold && Rangetree.size t.tree >= t.last_reorg_size + (t.merge_threshold / 2)
  then begin
    t.last_reorg_size <- Rangetree.size t.tree;
    Rangetree.reorganize t.tree
      ~eq:(fun (a : Slot.payload) b -> a.Slot.p_flushed = b.Slot.p_flushed && a.Slot.p_epoch = b.Slot.p_epoch && a.Slot.p_strand = b.Slot.p_strand)
      ~merge:(fun a b -> if a.Slot.p_seq >= b.Slot.p_seq then a else b);
    Obs.Metrics.inc t.metrics "space_reorganizations_total";
    Obs.Metrics.inc t.metrics ~by:(max 0 (t.last_reorg_size - Rangetree.size t.tree)) "space_interval_merges_total";
    t.last_reorg_size <- Rangetree.size t.tree
  end;
  (* The array is empty again: only the tree bounds the tracked set. *)
  bounds_reset_from_tree t

let fold_pending t ~init ~f =
  let acc = ref init in
  let visit_meta (m : Clf_meta.t) =
    if not (Clf_meta.is_empty m) then
      for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
        let s = t.slots.(i) in
        if s.Slot.valid then begin
          (* Individually flushed slots carry their own CLF seq; a slot
             flushed only via the collective interval state inherits the
             interval's. *)
          let clf_seq = if s.Slot.clf_seq >= 0 then s.Slot.clf_seq else m.Clf_meta.clf_seq in
          acc :=
            f !acc ~addr:s.Slot.addr ~size:s.Slot.size ~flushed:(slot_flushed t m s) ~epoch:s.Slot.epoch
              ~seq:s.Slot.seq ~clf_seq ~fence_seq:(-1)
        end
      done
  in
  iter_metas t visit_meta;
  Rangetree.iter t.tree (fun r (p : Slot.payload) ->
      acc :=
        f !acc ~addr:r.Addr.lo ~size:(Addr.size r) ~flushed:p.Slot.p_flushed ~epoch:p.Slot.p_epoch ~seq:p.Slot.p_seq
          ~clf_seq:p.Slot.p_clf_seq ~fence_seq:p.Slot.p_fence_seq);
  !acc

let has_pending_overlap t ~lo ~hi = find_overlap t ~lo ~hi <> None

exception Found

let exists_epoch_pending t =
  try
    let visit_meta (m : Clf_meta.t) =
      if not (Clf_meta.is_empty m) then
        for i = m.Clf_meta.start_idx to m.Clf_meta.end_idx do
          let s = t.slots.(i) in
          if s.Slot.valid && s.Slot.epoch then raise Found
        done
    in
    iter_metas t visit_meta;
    Rangetree.iter t.tree (fun _ (p : Slot.payload) -> if p.Slot.p_epoch then raise Found);
    false
  with Found -> true

let iter_pending t f =
  fold_pending t ~init:() ~f:(fun () ~addr ~size ~flushed ~epoch ~seq ~clf_seq ~fence_seq ->
      f ~addr ~size ~flushed ~epoch ~seq ~clf_seq ~fence_seq)

let pending_count t =
  fold_pending t ~init:0 ~f:(fun acc ~addr:_ ~size:_ ~flushed:_ ~epoch:_ ~seq:_ ~clf_seq:_ ~fence_seq:_ -> acc + 1)

let clear t =
  t.live <- 0;
  let meta = Clf_meta.make ~start_idx:0 in
  t.first_meta <- meta;
  t.cur_meta <- meta;
  Rangetree.clear t.tree;
  (* Forget everything derived from the cleared contents: pending flush
     registrations would replay pre-clear bookkeeping into the next
     fence, and a stale reorg baseline suppresses merging until the
     empty tree regrows past the pre-clear high-water mark. *)
  t.tree_flushed_nodes <- [];
  t.last_reorg_size <- 0;
  t.bound_lo <- max_int;
  t.bound_hi <- min_int

let tree_size t = Rangetree.size t.tree

let array_live t = t.live

let note_fence_sample t =
  t.fence_samples <- t.fence_samples + 1;
  t.tree_size_sum <- t.tree_size_sum + Rangetree.size t.tree

let avg_tree_nodes_per_fence t =
  if t.fence_samples = 0 then 0.0 else float_of_int t.tree_size_sum /. float_of_int t.fence_samples

let reorganizations t = (Rangetree.stats t.tree).Rangetree.reorganizations

let stats t =
  [
    ("tree_size", float_of_int (tree_size t));
    ("tree_flushed_nodes", float_of_int (List.length t.tree_flushed_nodes));
    ("tree_max_size", float_of_int (Rangetree.stats t.tree).Rangetree.max_size);
    ("array_live", float_of_int t.live);
    ("avg_tree_nodes_per_fence", avg_tree_nodes_per_fence t);
    ("reorganizations", float_of_int (reorganizations t));
    ("rotations", float_of_int (Rangetree.stats t.tree).Rangetree.rotations);
  ]

(* The hybrid space as a pluggable bookkeeping backend. *)
module Store = struct
  type nonrec t = t

  let name = "hybrid"
  let process_store = process_store
  let find_overlap = find_overlap
  let process_clf = process_clf
  let process_fence = process_fence
  let has_pending_overlap = has_pending_overlap
  let exists_epoch_pending = exists_epoch_pending
  let iter_pending = iter_pending
  let pending_count = pending_count
  let clear = clear
  let tree_size = tree_size
  let array_live = array_live
  let note_fence_sample = note_fence_sample
  let avg_tree_nodes_per_fence = avg_tree_nodes_per_fence
  let reorganizations = reorganizations
  let stats = stats
end

let backend ?array_capacity ?merge_threshold ?mode ?interval_metadata ?metrics () : Store_intf.backend =
 fun () ->
  Store_intf.Instance
    ((module Store), create ?array_capacity ?merge_threshold ?mode ?interval_metadata ?metrics ())
