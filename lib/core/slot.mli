(** Information collected from one store instruction (§4.1, Fig. 5):
    address, size and flushing state, extended with the epoch flag of
    §5.1 and provenance (event sequence number, thread, strand, and the
    sequence number of the CLF that flushed it, for causal chains). *)

type t = {
  mutable addr : int;
  mutable size : int;
  mutable flushed : bool;  (** a CLF covering it was issued since the store *)
  mutable epoch : bool;  (** the store happened inside an epoch section *)
  mutable seq : int;  (** event sequence number of the store *)
  mutable tid : int;
  mutable strand : int;  (** -1 outside any strand section *)
  mutable valid : bool;
  mutable clf_seq : int;
      (** sequence number of the CLF that set [flushed], or -1 — reset
          by {!fill} and by un-flushing overwrites *)
}

(** Payload stored in the AVL spill tree for a (possibly split) location. *)
type payload = {
  mutable p_flushed : bool;
  p_epoch : bool;
  p_seq : int;
  p_tid : int;
  p_strand : int;
  mutable p_clf_seq : int;  (** CLF that flushed it, or -1 *)
  mutable p_fence_seq : int;
      (** first fence the location crossed unpersisted (stamped when the
          slot migrates from the array to the tree), or -1 *)
}

val fresh : unit -> t
(** An invalid slot, for array pre-allocation. *)

val fill : t -> addr:int -> size:int -> epoch:bool -> seq:int -> tid:int -> strand:int -> unit
(** Overwrite a slot in place for a new store (marks it valid,
    not flushed, with no CLF provenance). *)

val payload_of : t -> payload
(** Carries the slot's provenance ([seq], [clf_seq]); [p_fence_seq]
    starts at -1 and is stamped by the fence that migrates it. *)

val range : t -> Pmem.Addr.range
