(** §3 characterization of PM program patterns, computed over recorded
    traces.

    - {!distance_histogram} — Fig. 2a: for every store, the number of
      fences from the store to the fence that guarantees its
      durability (the first fence following a CLF covering the store);
      distance 1 means the nearest fence suffices. Stores never
      persisted are excluded (they have no guaranteeing fence).
    - {!writeback_classes} — Fig. 2b: each CLF interval (run of stores
      between neighbouring CLFs) is {e collective} when a single CLF
      persists every location updated in it, {e dispersed} when
      multiple writebacks are needed.
    - {!instruction_mix} — Fig. 2c: the store / writeback / fence
      shares among those three instruction classes. *)

type distance_histogram = {
  counts : int array;  (** index d-1 holds the number of stores with distance d, up to {!max_tracked} *)
  beyond : int;  (** stores with distance > {!max_tracked} *)
  never_persisted : int;  (** stores excluded: durability never guaranteed *)
  total : int;  (** stores with a guaranteeing fence *)
}

val max_tracked : int
(** Histogram resolution (5, as in Fig. 2a's "Dist.>5" bucket). *)

val distance_histogram : Pmtrace.Recorder.trace -> distance_histogram

val fraction_at_most : distance_histogram -> int -> float
(** Fraction of persisted stores with distance <= d. *)

type writeback_classes = { collective : int; dispersed : int; empty : int }
(** CLF-interval classification; [empty] intervals (no stores) are
    reported separately and excluded from the Fig. 2b percentages. *)

val writeback_classes : Pmtrace.Recorder.trace -> writeback_classes

val collective_fraction : writeback_classes -> float

type instruction_mix = { stores : int; writebacks : int; fences : int }

val instruction_mix : Pmtrace.Recorder.trace -> instruction_mix

val store_fraction : instruction_mix -> float

(** {1 Machine-readable export}

    The same figures as stable JSON ([pmdb characterize --json]),
    sharing the schema conventions of the metrics snapshots. *)

val distance_histogram_json : distance_histogram -> Obs.Json.t

val writeback_classes_json : writeback_classes -> Obs.Json.t

val instruction_mix_json : instruction_mix -> Obs.Json.t

val characterization_json : Pmtrace.Recorder.trace -> Obs.Json.t
(** Top-level document: [{"schema": "pmdb-charz/v1", "events", 
    "distance_histogram", "writeback_classes", "instruction_mix"}]. *)
