open Pmem
open Pmtrace

let max_tracked = 5

type distance_histogram = { counts : int array; beyond : int; never_persisted : int; total : int }

type record = {
  mutable remaining : Addr.range list;  (** byte ranges not yet covered by a CLF *)
  fences_at_store : int;
}

let distance_histogram trace =
  let counts = Array.make max_tracked 0 in
  let beyond = ref 0 and total = ref 0 in
  let fences = ref 0 in
  let live : (int, record) Hashtbl.t = Hashtbl.create 256 in
  let next_id = ref 0 in
  let flushed_waiting = ref [] in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Store { addr; size; _ } ->
          incr next_id;
          Hashtbl.replace live !next_id { remaining = [ Addr.of_base_size addr size ]; fences_at_store = !fences }
      | Event.Clf { addr; size; _ } ->
          let flush = Addr.of_base_size addr size in
          let done_ids = ref [] in
          Hashtbl.iter
            (fun id r ->
              let remaining = List.concat_map (fun part -> Addr.diff part flush) r.remaining in
              if remaining = [] then done_ids := (id, r) :: !done_ids else r.remaining <- remaining)
            live;
          List.iter
            (fun (id, r) ->
              Hashtbl.remove live id;
              flushed_waiting := r :: !flushed_waiting)
            !done_ids
      | Event.Fence _ ->
          incr fences;
          List.iter
            (fun r ->
              let d = !fences - r.fences_at_store in
              incr total;
              if d >= 1 && d <= max_tracked then counts.(d - 1) <- counts.(d - 1) + 1 else incr beyond)
            !flushed_waiting;
          flushed_waiting := []
      | _ -> ())
    trace;
  let never = Hashtbl.length live + List.length !flushed_waiting in
  { counts; beyond = !beyond; never_persisted = never; total = !total }

let fraction_at_most h d =
  if h.total = 0 then 0.0
  else begin
    let upto = min d max_tracked in
    let sum = ref 0 in
    for i = 0 to upto - 1 do
      sum := !sum + h.counts.(i)
    done;
    float_of_int !sum /. float_of_int h.total
  end

type writeback_classes = { collective : int; dispersed : int; empty : int }

let writeback_classes trace =
  let collective = ref 0 and dispersed = ref 0 and empty = ref 0 in
  let lines = Hashtbl.create 16 in
  let had_store = ref false in
  let close_interval () =
    if not !had_store then incr empty
    else if Hashtbl.length lines <= 1 then incr collective
    else incr dispersed;
    Hashtbl.reset lines;
    had_store := false
  in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Store { addr; size; _ } ->
          had_store := true;
          List.iter (fun line -> Hashtbl.replace lines line ()) (Addr.lines_of_range ~lo:addr ~hi:(addr + size))
      | Event.Clf _ -> close_interval ()
      | _ -> ())
    trace;
  close_interval ();
  { collective = !collective; dispersed = !dispersed; empty = !empty }

let collective_fraction c =
  let n = c.collective + c.dispersed in
  if n = 0 then 0.0 else float_of_int c.collective /. float_of_int n

type instruction_mix = { stores : int; writebacks : int; fences : int }

let instruction_mix trace =
  let stores = ref 0 and writebacks = ref 0 and fences = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Store _ -> incr stores
      | Event.Clf _ -> incr writebacks
      | Event.Fence _ -> incr fences
      | _ -> ())
    trace;
  { stores = !stores; writebacks = !writebacks; fences = !fences }

let store_fraction m =
  let n = m.stores + m.writebacks + m.fences in
  if n = 0 then 0.0 else float_of_int m.stores /. float_of_int n

(* JSON export (`pmdb characterize --json`): the same three figures in
   the machine-readable schema the metrics/bench files use. *)

let distance_histogram_json h =
  Obs.Json.Obj
    [
      ("counts", Obs.Json.List (Array.to_list h.counts |> List.map (fun n -> Obs.Json.Int n)));
      ("beyond", Obs.Json.Int h.beyond);
      ("never_persisted", Obs.Json.Int h.never_persisted);
      ("total", Obs.Json.Int h.total);
      ("at_most_3", Obs.Json.Float (fraction_at_most h 3));
    ]

let writeback_classes_json c =
  Obs.Json.Obj
    [
      ("collective", Obs.Json.Int c.collective);
      ("dispersed", Obs.Json.Int c.dispersed);
      ("empty", Obs.Json.Int c.empty);
      ("collective_fraction", Obs.Json.Float (collective_fraction c));
    ]

let instruction_mix_json m =
  Obs.Json.Obj
    [
      ("stores", Obs.Json.Int m.stores);
      ("writebacks", Obs.Json.Int m.writebacks);
      ("fences", Obs.Json.Int m.fences);
      ("store_fraction", Obs.Json.Float (store_fraction m));
    ]

let characterization_json trace =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "pmdb-charz/v1");
      ("events", Obs.Json.Int (Array.length trace));
      ("distance_histogram", distance_histogram_json (distance_histogram trace));
      ("writeback_classes", writeback_classes_json (writeback_classes trace));
      ("instruction_mix", instruction_mix_json (instruction_mix trace));
    ]
