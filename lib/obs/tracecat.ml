(* Daemon-wide causal trace: fold per-domain flight-recorder rings and
   coarse Span phases into ONE Perfetto document on a shared time base.

   The separate per-ring dumps (Flightrec.dump_to_perfetto) already
   show each domain's recent history, but causality between domains —
   which router publish a worker's decode burst answers to — is
   invisible when each ring normalizes its own clock. Here every ring
   shares one tmin, one track per ring, and matched frame
   publish/pop records (cat="frame", a = shard, b = frame index; the
   FIFO contract of Frame_ring makes (shard, index) name one frame end
   to end) render as paired slices joined by a Chrome flow arrow from
   the publishing track to the consuming track. *)

let frame_pub e = e.Flightrec.e_cat = "frame" && e.Flightrec.e_name = "publish"

let frame_pop e = e.Flightrec.e_cat = "frame" && e.Flightrec.e_name = "pop"

let merge ?last ?(spans = []) ?(metadata = []) rings =
  let windows = List.map (fun (label, r) -> (label, Flightrec.window ?last r)) rings in
  let tmin =
    let over_entries acc =
      List.fold_left
        (fun acc (_, es) -> List.fold_left (fun acc e -> Float.min acc e.Flightrec.e_ts) acc es)
        acc windows
    in
    let over_spans acc =
      List.fold_left (fun acc s -> Float.min acc s.Span.sp_start_s) acc spans
    in
    let m = over_spans (over_entries infinity) in
    if m = infinity then 0.0 else m
  in
  let us ts = max 0 (int_of_float ((ts -. tmin) *. 1e6)) in
  let p = Perfetto.create () in
  Perfetto.process_name p "pmdb causal trace";
  (* Index frame ends by (shard, frame). Duplicate keys keep the latest
     record — rings are bounded, so after wrap-around an index can
     reappear; pairing latest-with-latest keeps arrows within the
     retained window. *)
  let pubs = Hashtbl.create 64 and pops = Hashtbl.create 64 in
  List.iteri
    (fun tid (_, entries) ->
      List.iter
        (fun e ->
          let key = (e.Flightrec.e_a, e.Flightrec.e_b) in
          if frame_pub e then Hashtbl.replace pubs key (tid, e)
          else if frame_pop e then Hashtbl.replace pops key (tid, e))
        entries)
    windows;
  let matched =
    Hashtbl.fold
      (fun key pub acc ->
        match Hashtbl.find_opt pops key with Some pop -> (key, pub, pop) :: acc | None -> acc)
      pubs []
    |> List.sort (fun (k1, _, _) (k2, _, _) -> compare k1 k2)
  in
  let is_matched =
    let m = Hashtbl.create 64 in
    List.iter (fun (key, _, _) -> Hashtbl.replace m key ()) matched;
    fun e -> Hashtbl.mem m (e.Flightrec.e_a, e.Flightrec.e_b)
  in
  (* Each ring's own view first (unmatched frame records stay instants). *)
  List.iteri
    (fun tid (label, entries) ->
      Perfetto.thread_name ~tid p label;
      Flightrec.render_entries p ~tid ~us
        (List.filter (fun e -> not ((frame_pub e || frame_pop e) && is_matched e)) entries))
    windows;
  (* Matched frames: a 1us slice at each end (flows bind to enclosing
     slices) and the arrow between them. *)
  List.iteri
    (fun i ((shard, frame), (pub_tid, pub), (pop_tid, pop)) ->
      let id = i + 1 in
      let args = [ ("shard", Json.Int shard); ("frame", Json.Int frame) ] in
      let pub_us = us pub.Flightrec.e_ts in
      (* The pop is causally after the publish; clamp clock skew so the
         arrow never points backwards in the rendered trace. *)
      let pop_us = max pub_us (us pop.Flightrec.e_ts) in
      Perfetto.complete ~cat:"frame" ~tid:pub_tid p ~name:"publish" ~ts:pub_us ~dur:1 ~args;
      Perfetto.flow_start ~cat:"frame" ~tid:pub_tid p ~name:"frame" ~id ~ts:pub_us;
      Perfetto.complete ~cat:"frame" ~tid:pop_tid p ~name:"pop" ~ts:pop_us ~dur:1 ~args;
      Perfetto.flow_finish ~cat:"frame" ~tid:pop_tid p ~name:"frame" ~id ~ts:pop_us)
    matched;
  (* Coarse phases (run/finish/replay spans) on their own track, so the
     fine-grained domain activity reads against the overall timeline. *)
  (match spans with
  | [] -> ()
  | spans ->
      let tid = List.length windows in
      Perfetto.thread_name ~tid p "phases";
      Span.render ~tid ~t0:tmin p spans);
  Perfetto.to_json ~metadata p
