(** Chrome trace-event JSON builder — the ["traceEvents"] array format
    that ui.perfetto.dev and chrome://tracing load directly.

    The builder is generic over what the events mean; the harness maps
    engine traces onto it (per-cache-line persistency-state timelines,
    dispatch spans). Timestamps and durations are integers in
    microseconds of {e virtual} time — callers use the event sequence
    number, so the output is deterministic and golden-testable.

    Events render in emit order with a fixed field order per event
    ([name, cat?, ph, ts, ...]), so the same build sequence always
    produces byte-identical JSON via {!Json.to_string}. *)

type t

val create : unit -> t

val length : t -> int
(** Events emitted so far. *)

(** {1 Emitting}

    [pid]/[tid] default to 0. Perfetto groups tracks by (pid, tid);
    name them with {!process_name} / {!thread_name}. *)

val complete :
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  t ->
  name:string ->
  ts:int ->
  dur:int ->
  unit
(** A duration slice (phase ["X"]); [dur] is clamped to [>= 0]. *)

val instant :
  ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Json.t) list -> t -> name:string -> ts:int -> unit
(** A thread-scoped instant marker (phase ["i"]). *)

val begin_slice :
  ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Json.t) list -> t -> name:string -> ts:int -> unit
(** Open a nested duration slice (phase ["B"]). Pair with
    {!end_slice} on the same (pid, tid); an unmatched begin renders as
    an open-ended slice — how the flight recorder draws a session that
    was still in flight when the window was dumped. *)

val end_slice :
  ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Json.t) list -> t -> name:string -> ts:int -> unit
(** Close the innermost open slice on (pid, tid) (phase ["E"]). *)

val counter : ?pid:int -> ?tid:int -> t -> name:string -> ts:int -> series:(string * int) list -> unit
(** A counter sample (phase ["C"]); each series becomes one stacked
    band in the counter track. *)

val flow_start : ?cat:string -> ?pid:int -> ?tid:int -> t -> name:string -> id:int -> ts:int -> unit
(** Open a flow arrow (phase ["s"]). Flows pair across tracks by [id];
    each endpoint binds to the enclosing slice on its (pid, tid), so
    put a slice under it — how the causal trace draws frame
    publish→pop arrows from the router to a worker track. *)

val flow_finish : ?cat:string -> ?pid:int -> ?tid:int -> t -> name:string -> id:int -> ts:int -> unit
(** Close a flow arrow (phase ["f"], binding point ["e"]: the arrow
    lands at the enclosing slice). *)

val process_name : ?pid:int -> t -> string -> unit
(** Metadata event naming a process (top-level track group). *)

val thread_name : ?pid:int -> ?tid:int -> t -> string -> unit
(** Metadata event naming a thread (one track). *)

val to_json : ?metadata:(string * Json.t) list -> t -> Json.t
(** [{"traceEvents": [...]}] in emit order, plus a ["metadata"] object
    when [metadata] is non-empty (ignored by viewers and by
    {!validate_json}, which only checks [traceEvents]). *)

val validate_json : Json.t -> (int, string) result
(** Structural check of a trace-event document: every event has a
    name, a known phase, a non-negative integer [ts] (and [dur] for
    complete events), integer [pid]/[tid], and well-formed [args].
    Returns the event count. *)
