(* Prometheus text exposition (version 0.0.4) for Metrics snapshots.
   The snapshot is already sorted by (name, labels), so series of one
   metric are adjacent and each name gets exactly one # TYPE line; the
   same snapshot always renders to identical text. Histograms render
   the cumulative _bucket/_sum/_count triplet Prometheus expects (our
   JSON export keeps buckets non-cumulative; the conversion happens
   here). *)

(* Label values escape backslash, double quote and newline — the three
   characters the exposition format reserves. Metric names and label
   keys come from our own naming scheme and are emitted as-is. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" f

let labels_body labels =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)

let series_name name labels =
  match labels with [] -> name | l -> Printf.sprintf "%s{%s}" name (labels_body l)

let render snap =
  let buf = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let sample name labels value =
    Buffer.add_string buf (series_name name labels);
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let kind =
        match s.Metrics.value with
        | Metrics.V_counter _ -> "counter"
        | Metrics.V_gauge _ -> "gauge"
        | Metrics.V_hist _ -> "histogram"
      in
      if not (Hashtbl.mem typed s.Metrics.name) then begin
        Hashtbl.replace typed s.Metrics.name ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.Metrics.name kind)
      end;
      let name = s.Metrics.name and labels = s.Metrics.labels in
      match s.Metrics.value with
      | Metrics.V_counter n -> sample name labels (string_of_int n)
      | Metrics.V_gauge g -> sample name labels (fmt_float g)
      | Metrics.V_hist v ->
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + v.Metrics.h_counts.(i);
              sample (name ^ "_bucket") (labels @ [ ("le", fmt_float le) ]) (string_of_int !cum))
            v.Metrics.h_bounds;
          sample (name ^ "_bucket") (labels @ [ ("le", "+Inf") ]) (string_of_int v.Metrics.h_count);
          sample (name ^ "_sum") labels (fmt_float v.Metrics.h_sum);
          sample (name ^ "_count") labels (string_of_int v.Metrics.h_count))
    snap;
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Validation (the CI gate over pmdb serve --metrics-file output)    *)
(* ---------------------------------------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let parse_name line pos =
  let n = String.length line in
  if pos >= n || not (is_name_start line.[pos]) then None
  else
    let stop = ref pos in
    while !stop < n && is_name_char line.[!stop] do
      incr stop
    done;
    Some (String.sub line pos (!stop - pos), !stop)

(* Parse [{k="v",...}] starting at [pos] (which must be '{'); returns
   the position after the closing brace. Escapes inside values are the
   three from escape_label_value. *)
let parse_labels line pos =
  let n = String.length line in
  let rec pairs pos first =
    if pos >= n then None
    else if line.[pos] = '}' then Some (pos + 1)
    else
      let pos = if first then pos else if line.[pos] = ',' then pos + 1 else -1 in
      if pos < 0 then None
      else
        match parse_name line pos with
        | None -> None
        | Some (_key, pos) ->
            if pos + 1 >= n || line.[pos] <> '=' || line.[pos + 1] <> '"' then None
            else
              let rec value pos =
                if pos >= n then None
                else
                  match line.[pos] with
                  | '"' -> Some (pos + 1)
                  | '\\' ->
                      if pos + 1 < n && (line.[pos + 1] = '\\' || line.[pos + 1] = '"' || line.[pos + 1] = 'n')
                      then value (pos + 2)
                      else None
                  | _ -> value (pos + 1)
              in
              (match value (pos + 2) with
              | None -> None
              | Some pos -> pairs pos false)
  in
  pairs (pos + 1) true

let parse_value s =
  let s = String.trim s in
  if s = "" then None
  else
    match s with
    | "+Inf" -> Some infinity
    | "-Inf" -> Some neg_infinity
    | "NaN" -> Some Float.nan
    | _ -> float_of_string_opt s

let validate text =
  let lines = String.split_on_char '\n' text in
  let declared : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let err lineno what = Error (Printf.sprintf "prometheus text: line %d: %s" lineno what) in
  let base_declared name =
    (* A histogram's samples carry _bucket/_sum/_count suffixes. *)
    let histo_suffixed suffix =
      let ls = String.length suffix in
      let ln = String.length name in
      ln > ls
      && String.sub name (ln - ls) ls = suffix
      && Hashtbl.find_opt declared (String.sub name 0 (ln - ls)) = Some "histogram"
    in
    Hashtbl.mem declared name || histo_suffixed "_bucket" || histo_suffixed "_sum"
    || histo_suffixed "_count"
  in
  let check_sample lineno line =
    match parse_name line 0 with
    | None -> err lineno "sample does not start with a metric name"
    | Some (name, pos) ->
        let after_labels =
          if pos < String.length line && line.[pos] = '{' then parse_labels line pos else Some pos
        in
        (match after_labels with
        | None -> err lineno ("bad label syntax in sample of " ^ name)
        | Some pos ->
            if not (base_declared name) then err lineno ("sample of undeclared metric " ^ name)
            else if pos >= String.length line || line.[pos] <> ' ' then
              err lineno ("missing value after " ^ name)
            else
              (match parse_value (String.sub line pos (String.length line - pos)) with
              | Some _ -> Ok ()
              | None -> err lineno ("unparseable value for " ^ name)))
  in
  let rec go lineno samples = function
    | [] -> Ok samples
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go (lineno + 1) samples rest
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
          | [ name; kind ] when List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]
            ->
              if Hashtbl.mem declared name then err lineno ("duplicate TYPE for " ^ name)
              else begin
                Hashtbl.replace declared name kind;
                go (lineno + 1) samples rest
              end
          | _ -> err lineno "malformed TYPE line"
        end
        else if line.[0] = '#' then go (lineno + 1) samples rest
        else
          (match check_sample lineno line with
          | Ok () -> go (lineno + 1) (samples + 1) rest
          | Error _ as e -> e)
  in
  go 1 0 lines
