(** Pluggable time source.

    The obs library is dependency-free, so it cannot call
    [Unix.gettimeofday] itself; layers that link unix install it once
    (the CLI and bench do). The default, [Sys.time], is monotone and
    good enough for tests. *)

val now : unit -> float

val set : (unit -> float) -> unit
