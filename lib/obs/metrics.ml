type labels = (string * string) list

let latency_bounds =
  [|
    1e-7; 2.5e-7; 5e-7; 1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
    5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.0;
  |]

type hist = {
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable count : int;
  mutable max_v : float;
}

let hist_create ?(bounds = latency_bounds) () =
  { bounds; counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0; max_v = 0.0 }

let hist_observe h v =
  (* First bucket whose upper bound covers v; past the last bound is the
     overflow bucket. *)
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  if v > h.max_v then h.max_v <- v

type hist_view = {
  h_bounds : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
  h_max : float;
}

let hist_view h =
  {
    h_bounds = Array.copy h.bounds;
    h_counts = Array.copy h.counts;
    h_sum = h.sum;
    h_count = h.count;
    h_max = h.max_v;
  }

let quantile v q =
  if v.h_count = 0 then 0.0
  else begin
    let target = q *. float_of_int v.h_count in
    let nbounds = Array.length v.h_bounds in
    (* Interpolation edge for the overflow bucket: the observed max when
       it is known (> last bound), else the last bound — a quantile
       landing past every bound no longer snaps to the bound verbatim. *)
    let overflow_hi =
      if nbounds = 0 then v.h_max else Float.max v.h_max v.h_bounds.(nbounds - 1)
    in
    let rec go i cum =
      if i >= Array.length v.h_counts then (if nbounds = 0 then overflow_hi else v.h_bounds.(nbounds - 1))
      else
        let cum' = cum +. float_of_int v.h_counts.(i) in
        if cum' >= target && v.h_counts.(i) > 0 then begin
          let lo = if i = 0 then 0.0 else v.h_bounds.(i - 1) in
          let hi = if i >= nbounds then overflow_hi else v.h_bounds.(i) in
          let frac = (target -. cum) /. float_of_int v.h_counts.(i) in
          lo +. ((hi -. lo) *. Float.min 1.0 (Float.max 0.0 frac))
        end
        else go (i + 1) cum'
    in
    go 0 0.0
  end

type value = Counter of int ref | Gauge of float ref | Hist of hist

type t = {
  mutable on : bool;
  frozen : bool; (* the shared [disabled] singleton must stay off *)
  series : (string * labels, value) Hashtbl.t;
}

let create ?(enabled = true) () = { on = enabled; frozen = false; series = Hashtbl.create 64 }

let disabled = { on = false; frozen = true; series = Hashtbl.create 1 }

let is_on t = t.on

let set_enabled t b =
  if t.frozen then invalid_arg "Obs.Metrics.set_enabled: the shared disabled registry is immutable";
  t.on <- b

let clear t = Hashtbl.reset t.series

let norm_labels = function
  | [] -> []
  | [ _ ] as l -> l
  | l -> List.sort (fun (a, _) (b, _) -> compare a b) l

let kind_mismatch name =
  invalid_arg (Printf.sprintf "Obs.Metrics: series %S already exists with another type" name)

let inc t ?(labels = []) ?(by = 1) name =
  if not t.on then ()
  else begin
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt t.series key with
    | Some (Counter c) -> c := !c + by
    | Some _ -> kind_mismatch name
    | None -> Hashtbl.replace t.series key (Counter (ref by))
  end

let set t ?(labels = []) name v =
  if not t.on then ()
  else begin
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt t.series key with
    | Some (Gauge g) -> g := v
    | Some _ -> kind_mismatch name
    | None -> Hashtbl.replace t.series key (Gauge (ref v))
  end

let max_set t ?(labels = []) name v =
  if not t.on then ()
  else begin
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt t.series key with
    | Some (Gauge g) -> if v > !g then g := v
    | Some _ -> kind_mismatch name
    | None -> Hashtbl.replace t.series key (Gauge (ref v))
  end

let observe t ?(labels = []) ?bounds name v =
  if not t.on then ()
  else begin
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt t.series key with
    | Some (Hist h) -> hist_observe h v
    | Some _ -> kind_mismatch name
    | None ->
        let h = hist_create ?bounds () in
        hist_observe h v;
        Hashtbl.replace t.series key (Hist h)
  end

(* ---------------------------------------------------------------- *)
(* Snapshots                                                         *)
(* ---------------------------------------------------------------- *)

type value_view = V_counter of int | V_gauge of float | V_hist of hist_view

type sample = { name : string; labels : labels; value : value_view }

type snapshot = sample list

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) value acc ->
      let value =
        match value with
        | Counter c -> V_counter !c
        | Gauge g -> V_gauge !g
        | Hist h -> V_hist (hist_view h)
      in
      { name; labels; value } :: acc)
    t.series []
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

(* Deterministic multi-registry merge: counters sum, gauges keep the
   max (every gauge in the tree is a peak/high-water value), histograms
   add bucket-wise. Mixing kinds under one (name, labels) key — or
   histograms with different bucket bounds — means two registries
   disagree about what the series is, which is a caller bug, not data:
   raise instead of guessing. Sum/max/bucket-add are all commutative
   and associative, so the merged snapshot is independent of snapshot
   order (the QCheck suite pins this). *)
let merge snaps =
  let acc : (string * labels, value_view) Hashtbl.t = Hashtbl.create 64 in
  let clash name what =
    invalid_arg (Printf.sprintf "Obs.Metrics.merge: series %S: %s" name what)
  in
  let combine name a b =
    match (a, b) with
    | V_counter x, V_counter y -> V_counter (x + y)
    | V_gauge x, V_gauge y -> V_gauge (Float.max x y)
    | V_hist x, V_hist y ->
        if x.h_bounds <> y.h_bounds then clash name "histogram bucket bounds differ"
        else
          V_hist
            {
              h_bounds = x.h_bounds;
              h_counts = Array.init (Array.length x.h_counts) (fun i -> x.h_counts.(i) + y.h_counts.(i));
              h_sum = x.h_sum +. y.h_sum;
              h_count = x.h_count + y.h_count;
              h_max = Float.max x.h_max y.h_max;
            }
    | _ -> clash name "kind differs between snapshots"
  in
  List.iter
    (fun snap ->
      List.iter
        (fun s ->
          let key = (s.name, s.labels) in
          match Hashtbl.find_opt acc key with
          | None -> Hashtbl.replace acc key s.value
          | Some prev -> Hashtbl.replace acc key (combine s.name prev s.value))
        snap)
    snaps;
  Hashtbl.fold (fun (name, labels) value l -> { name; labels; value } :: l) acc []
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

(* Fold a snapshot into a live registry with the same combine rules as
   merge. The histogram case cannot go through observe (that would lose
   the bucket structure), so it splices counts in directly. *)
let absorb t snap =
  if not t.on then ()
  else
    List.iter
      (fun s ->
        match s.value with
        | V_counter n -> inc t ~labels:s.labels ~by:n s.name
        | V_gauge g -> max_set t ~labels:s.labels s.name g
        | V_hist v -> (
            let key = (s.name, norm_labels s.labels) in
            match Hashtbl.find_opt t.series key with
            | Some (Hist h) ->
                if h.bounds <> v.h_bounds then
                  invalid_arg
                    (Printf.sprintf "Obs.Metrics.absorb: series %S: histogram bucket bounds differ"
                       s.name)
                else begin
                  Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) v.h_counts;
                  h.sum <- h.sum +. v.h_sum;
                  h.count <- h.count + v.h_count;
                  if v.h_max > h.max_v then h.max_v <- v.h_max
                end
            | Some _ -> kind_mismatch s.name
            | None ->
                Hashtbl.replace t.series key
                  (Hist
                     {
                       bounds = Array.copy v.h_bounds;
                       counts = Array.copy v.h_counts;
                       sum = v.h_sum;
                       count = v.h_count;
                       max_v = v.h_max;
                     })))
      snap

let find snap ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_map (fun s -> if s.name = name && s.labels = labels then Some s.value else None) snap

let counter_value snap ?labels name =
  match find snap ?labels name with Some (V_counter n) -> n | _ -> 0

let labels_str = function
  | [] -> ""
  | l -> String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)

let rows_header = [ "metric"; "labels"; "type"; "value" ]

let to_rows snap =
  List.map
    (fun s ->
      let kind, value =
        match s.value with
        | V_counter n -> ("counter", string_of_int n)
        | V_gauge g -> ("gauge", Printf.sprintf "%g" g)
        | V_hist v ->
            ( "histogram",
              Printf.sprintf "count=%d sum=%.6g p50=%.3g p95=%.3g" v.h_count v.h_sum
                (quantile v 0.5) (quantile v 0.95) )
      in
      [ s.name; labels_str s.labels; kind; value ])
    snap

let hist_json v =
  let buckets =
    List.concat
      [
        List.mapi
          (fun i le -> Json.Obj [ ("le", Json.Float le); ("count", Json.Int v.h_counts.(i)) ])
          (Array.to_list v.h_bounds);
        [ Json.Obj [ ("le", Json.Null); ("count", Json.Int v.h_counts.(Array.length v.h_bounds)) ] ];
      ]
  in
  [
    ("count", Json.Int v.h_count);
    ("sum", Json.Float v.h_sum);
    ("max", Json.Float v.h_max);
    ("p50", Json.Float (quantile v 0.5));
    ("p95", Json.Float (quantile v 0.95));
    ("buckets", Json.List buckets);
  ]

let sample_json s =
  let base =
    [
      ("name", Json.Str s.name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels));
    ]
  in
  match s.value with
  | V_counter n -> Json.Obj (base @ [ ("type", Json.Str "counter"); ("value", Json.Int n) ])
  | V_gauge g -> Json.Obj (base @ [ ("type", Json.Str "gauge"); ("value", Json.Float g) ])
  | V_hist v -> Json.Obj (base @ (("type", Json.Str "histogram") :: hist_json v))

let schema_id = "pmdb-metrics/v1"

let snapshot_to_json snap =
  Json.Obj [ ("schema", Json.Str schema_id); ("metrics", Json.List (List.map sample_json snap)) ]

let to_json t = snapshot_to_json (snapshot t)

(* Labels of a JSON series entry, normalized like norm_labels so that
   duplicate detection and parsing agree with the in-memory registry. *)
let labels_of_entry entry =
  match Json.member "labels" entry with
  | Some (Json.Obj kvs) ->
      Some
        (norm_labels
           (List.filter_map (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None) kvs))
  | None -> Some []
  | Some _ -> None

let validate_json json =
  let ( let* ) = Result.bind in
  let require what = function Some v -> Ok v | None -> Error ("metrics JSON: missing " ^ what) in
  let* schema = require "schema" (Json.member "schema" json) in
  let* () =
    match Json.to_str schema with
    | Some s when s = schema_id -> Ok ()
    | Some s -> Error (Printf.sprintf "metrics JSON: unknown schema %S" s)
    | None -> Error "metrics JSON: schema is not a string"
  in
  let* metrics = require "metrics" (Json.member "metrics" json) in
  let* entries =
    match metrics with Json.List l -> Ok l | _ -> Error "metrics JSON: metrics is not a list"
  in
  let seen : (string * labels, unit) Hashtbl.t = Hashtbl.create 64 in
  let check_entry i entry =
    let ctx what = Error (Printf.sprintf "metrics JSON: series %d: %s" i what) in
    match (Json.member "name" entry, Json.member "type" entry) with
    | Some (Json.Str name), Some (Json.Str kind) -> (
        let* () =
          (* A snapshot holds one series per (name, labels): duplicates
             mean a corrupt or hand-edited file, and a diff over them
             would silently pick one of the two values. *)
          match labels_of_entry entry with
          | None -> ctx (name ^ ": labels is not an object of strings")
          | Some labels ->
              let key = (name, labels) in
              if Hashtbl.mem seen key then
                ctx
                  (Printf.sprintf "duplicate series %S%s" name
                     (match labels with [] -> "" | l -> "{" ^ labels_str l ^ "}"))
              else begin
                Hashtbl.replace seen key ();
                Ok ()
              end
        in
        match kind with
        | "counter" -> (
            match Option.bind (Json.member "value" entry) Json.to_int with
            | Some _ -> Ok ()
            | None -> ctx (name ^ ": counter without integer value"))
        | "gauge" -> (
            match Option.bind (Json.member "value" entry) Json.to_float with
            | Some _ -> Ok ()
            | None -> ctx (name ^ ": gauge without numeric value"))
        | "histogram" -> (
            match (Json.member "count" entry, Json.member "buckets" entry) with
            | Some (Json.Int _), Some (Json.List _) -> Ok ()
            | _ -> ctx (name ^ ": histogram without count/buckets"))
        | other -> ctx (Printf.sprintf "unknown type %S" other))
    | _ -> ctx "missing name/type"
  in
  let rec check i = function
    | [] -> Ok (List.length entries)
    | e :: rest -> ( match check_entry i e with Ok () -> check (i + 1) rest | Error _ as err -> err)
  in
  check 0 entries

(* ---------------------------------------------------------------- *)
(* Snapshot parsing (the inverse of snapshot_to_json, for diffing)   *)
(* ---------------------------------------------------------------- *)

let hist_view_of_json entry =
  let buckets = match Json.member "buckets" entry with Some (Json.List l) -> l | _ -> [] in
  let bounds = ref [] in
  let counts = ref [] in
  let ok =
    List.for_all
      (fun b ->
        match (Json.member "le" b, Option.bind (Json.member "count" b) Json.to_int) with
        | Some Json.Null, Some c ->
            counts := c :: !counts;
            true
        | Some le, Some c -> (
            match Json.to_float le with
            | Some f ->
                bounds := f :: !bounds;
                counts := c :: !counts;
                true
            | None -> false)
        | _ -> false)
      buckets
  in
  let count = match Option.bind (Json.member "count" entry) Json.to_int with Some c -> c | None -> 0 in
  let sum = match Option.bind (Json.member "sum" entry) Json.to_float with Some s -> s | None -> 0.0 in
  let h_bounds = Array.of_list (List.rev !bounds) in
  (* Files written before "max" existed fall back to the last bound —
     exactly the old overflow-quantile edge, so old reports diff
     cleanly against themselves. *)
  let max_v =
    match Option.bind (Json.member "max" entry) Json.to_float with
    | Some m -> m
    | None -> if Array.length h_bounds = 0 then 0.0 else h_bounds.(Array.length h_bounds - 1)
  in
  if not ok then None
  else
    Some
      {
        h_bounds;
        h_counts = Array.of_list (List.rev !counts);
        h_sum = sum;
        h_count = count;
        h_max = max_v;
      }

let snapshot_of_json json =
  let ( let* ) = Result.bind in
  let* _n = validate_json json in
  let entries = match Json.member "metrics" json with Some (Json.List l) -> l | _ -> [] in
  let parse_entry i entry =
    let err what = Error (Printf.sprintf "metrics JSON: series %d: %s" i what) in
    let name = match Json.member "name" entry with Some (Json.Str s) -> s | _ -> "" in
    let labels = match labels_of_entry entry with Some l -> l | None -> [] in
    match Json.member "type" entry with
    | Some (Json.Str "counter") -> (
        match Option.bind (Json.member "value" entry) Json.to_int with
        | Some v -> Ok { name; labels; value = V_counter v }
        | None -> err "bad counter")
    | Some (Json.Str "gauge") -> (
        match Option.bind (Json.member "value" entry) Json.to_float with
        | Some v -> Ok { name; labels; value = V_gauge v }
        | None -> err "bad gauge")
    | Some (Json.Str "histogram") -> (
        match hist_view_of_json entry with
        | Some v -> Ok { name; labels; value = V_hist v }
        | None -> err "bad histogram buckets")
    | _ -> err "unknown type"
  in
  let rec go i acc = function
    | [] ->
        Ok
          (List.sort
             (fun a b -> match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
             (List.rev acc))
    | e :: rest -> (
        match parse_entry i e with Ok s -> go (i + 1) (s :: acc) rest | Error _ as err -> err)
  in
  go 0 [] entries
