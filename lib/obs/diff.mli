(** Metrics diff engine: compare two {!Metrics.snapshot}s and gate CI
    on threshold-crossing counter regressions ([pmdb stats --diff]).

    A diff is a canonical (name, labels)-ordered list of changes; two
    identical snapshots diff to the empty list, so a self-diff is
    always clean. Regression gating considers counters only: for a
    seeded deterministic workload they reproduce exactly run-to-run,
    while gauges and latency histograms vary with machine load and
    would make a CI gate flaky. *)

type change_kind = Added | Removed | Changed

type change = {
  d_name : string;
  d_labels : Metrics.labels;
  d_kind : change_kind;
  d_before : Metrics.value_view option;  (** [None] for {!Added} *)
  d_after : Metrics.value_view option;  (** [None] for {!Removed} *)
}

type t = change list
(** Sorted by (name, labels), like the snapshots it came from. *)

val compute : before:Metrics.snapshot -> after:Metrics.snapshot -> t
(** Merge-walk both snapshots; series with structurally equal values
    are omitted. *)

val is_empty : t -> bool

val regressions : ?threshold:float -> ?gauge_threshold:float -> t -> change list
(** Counter series whose value grew by more than [threshold] (relative,
    default 0.0 = any increase) — [(after - before) / max 1 before >
    threshold] — plus counters added with a positive value.

    Gauges never gate by default (most are timing-dependent), but
    deterministic capacity peaks such as [space_array_live_peak] or the
    shard queue-depth peaks can be opted in: with
    [gauge_threshold] set, gauge series that grew by more than that
    relative threshold — [(after - before) / max 1.0 before >
    gauge_threshold] — and gauges added with a positive value also
    gate. Histograms never gate. *)

val to_rows : t -> string list list
(** One row per change for {!Harness.Table}: columns
    [metric; labels; change; before; after; delta]. *)

val rows_header : string list

val pp_change : Format.formatter -> change -> unit
