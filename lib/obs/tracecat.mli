(** Daemon-wide causal Perfetto trace: every per-domain
    {!Flightrec} ring plus the coarse {!Span} phases folded into {e
    one} Chrome trace-event document on a shared time base.

    Per-ring dumps ({!Flightrec.dump_to_perfetto}) each normalize their
    own clock, so causality {e between} domains is invisible. Here all
    rings share one origin (the earliest entry or span across
    everything), each ring gets one thread track in list order, and
    frame hand-offs render as flow arrows:

    - a router records [cat="frame", name="publish", a=shard, b=index]
      at each {!Frame_ring} publish, the consuming worker records
      [cat="frame", name="pop"] with the same [(a, b)];
    - the ring is FIFO, so [(shard, index)] names one frame end to end;
      each matched pair becomes a 1µs slice on both tracks joined by a
      Chrome flow arrow ([ph="s"]/[ph="f"]) from the publishing track
      to the consuming track. Unmatched records (the other end fell out
      of its bounded ring, or the frame was still in flight) stay plain
      instants — arrows are only drawn when both ends survive.

    Everything else renders exactly as the per-ring dump does
    ({!Flightrec.render_entries}): session lifecycle slices, instants
    with [a]/[b] args. [spans] (e.g. {!Span.finished} of the CLI's
    run/finish/replay phases) draw on a final ["phases"] track as
    complete slices, so fine-grained domain activity reads against the
    overall timeline. *)

val merge :
  ?last:int ->
  ?spans:Span.finished list ->
  ?metadata:(string * Json.t) list ->
  (string * Flightrec.t) list ->
  Json.t
(** [merge rings] — one labelled track per ring, in order; passes
    {!Perfetto.validate_json}. [last] bounds the window taken from each
    ring; [metadata] lands in the document's ["metadata"] object
    (dump reason, time). *)
