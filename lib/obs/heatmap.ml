(* Hot-line heatmap: a capped per-cache-line accounting table. The
   detector feeds it (stores, CLFs, admitted findings, dirty intervals
   in virtual seq time); `pmdb heatmap` renders the top-K lines —
   "where does the PM traffic go, how long do lines stay dirty, where
   do the findings cluster".

   Same observability contract as Metrics/Flightrec: a disabled table
   costs one branch per hook, a shared frozen [disabled] singleton is
   the default everywhere, and the table is single-domain (per-worker
   tables merge via snapshots). The cap bounds memory on adversarial
   traces: once [cap] distinct lines are tracked, traffic on new lines
   is counted in [dropped] instead of growing the table — the heatmap
   is a top-K diagnostic, not exact accounting, and says so. *)

type entry = {
  mutable e_stores : int;
  mutable e_clfs : int;
  mutable e_bugs : int;
  mutable e_name : string option; (* registered var covering the line *)
  mutable e_dirty_since : int; (* seq of the store that dirtied it; -1 = clean *)
  mutable e_dirty : int; (* closed dirty intervals, in virtual seqs *)
}

type t = {
  mutable on : bool;
  frozen : bool;
  cap : int;
  table : (int, entry) Hashtbl.t;
  mutable dropped : int; (* events on lines beyond the cap *)
  mutable last_seq : int;
}

let create ?(cap = 1024) ?(enabled = true) () =
  if cap < 1 then invalid_arg "Obs.Heatmap.create: cap must be >= 1";
  { on = enabled; frozen = false; cap; table = Hashtbl.create 64; dropped = 0; last_seq = 0 }

let disabled =
  { on = false; frozen = true; cap = 1; table = Hashtbl.create 1; dropped = 0; last_seq = 0 }

let is_on t = t.on

let set_enabled t b =
  if t.frozen then invalid_arg "Obs.Heatmap.set_enabled: the shared disabled table is immutable";
  t.on <- b

let cap t = t.cap

let tracked t = Hashtbl.length t.table

let dropped t = t.dropped

let clear t =
  Hashtbl.reset t.table;
  t.dropped <- 0;
  t.last_seq <- 0

let find t line =
  match Hashtbl.find_opt t.table line with
  | Some e -> Some e
  | None ->
      if Hashtbl.length t.table >= t.cap then None
      else begin
        let e =
          { e_stores = 0; e_clfs = 0; e_bugs = 0; e_name = None; e_dirty_since = -1; e_dirty = 0 }
        in
        Hashtbl.replace t.table line e;
        Some e
      end

let on_store t ~seq ~line =
  if t.on then begin
    t.last_seq <- max t.last_seq seq;
    match find t line with
    | None -> t.dropped <- t.dropped + 1
    | Some e ->
        e.e_stores <- e.e_stores + 1;
        if e.e_dirty_since < 0 then e.e_dirty_since <- seq
  end

let on_clf t ~seq ~line =
  if t.on then begin
    t.last_seq <- max t.last_seq seq;
    match find t line with
    | None -> t.dropped <- t.dropped + 1
    | Some e ->
        e.e_clfs <- e.e_clfs + 1;
        if e.e_dirty_since >= 0 then begin
          e.e_dirty <- e.e_dirty + (seq - e.e_dirty_since);
          e.e_dirty_since <- -1
        end
  end

let on_bug t ~line =
  if t.on then
    match find t line with None -> t.dropped <- t.dropped + 1 | Some e -> e.e_bugs <- e.e_bugs + 1

let set_name t ~line name =
  if t.on then
    match find t line with None -> () | Some e -> if e.e_name = None then e.e_name <- Some name

(* ---------------------------------------------------------------- *)
(* Snapshots                                                         *)
(* ---------------------------------------------------------------- *)

type row = {
  r_line : int;
  r_name : string option;
  r_stores : int;
  r_clfs : int;
  r_bugs : int;
  r_dirty : int;
}

type snapshot = { s_rows : row list; s_dropped : int; s_tracked : int }

let traffic r = r.r_stores + r.r_clfs

(* Hottest first; line index breaks ties so equal-traffic rows render
   deterministically. *)
let compare_rows a b =
  match compare (traffic b) (traffic a) with 0 -> compare a.r_line b.r_line | c -> c

let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []

let snapshot ?top t =
  let rows =
    Hashtbl.fold
      (fun line e acc ->
        (* A line still dirty at snapshot time has been dirty up to the
           latest event seen — charge the open interval without closing
           it (snapshots must not mutate). *)
        let dirty =
          e.e_dirty + (if e.e_dirty_since >= 0 then t.last_seq - e.e_dirty_since else 0)
        in
        {
          r_line = line;
          r_name = e.e_name;
          r_stores = e.e_stores;
          r_clfs = e.e_clfs;
          r_bugs = e.e_bugs;
          r_dirty = dirty;
        }
        :: acc)
      t.table []
    |> List.sort compare_rows
  in
  let rows = match top with None -> rows | Some k -> take (max 0 k) rows in
  { s_rows = rows; s_dropped = t.dropped; s_tracked = Hashtbl.length t.table }

(* Multi-table fold (per-worker heatmaps): counters sum per line, names
   keep the first, and the merged rows re-rank by combined traffic.
   Commutative up to the first-name rule; deterministic for the usual
   case where every table agrees on a line's name. *)
let merge snaps =
  let table = Hashtbl.create 64 in
  let dropped = ref 0 in
  List.iter
    (fun s ->
      dropped := !dropped + s.s_dropped;
      List.iter
        (fun r ->
          match Hashtbl.find_opt table r.r_line with
          | None -> Hashtbl.replace table r.r_line r
          | Some prev ->
              Hashtbl.replace table r.r_line
                {
                  r_line = r.r_line;
                  r_name = (match prev.r_name with Some _ -> prev.r_name | None -> r.r_name);
                  r_stores = prev.r_stores + r.r_stores;
                  r_clfs = prev.r_clfs + r.r_clfs;
                  r_bugs = prev.r_bugs + r.r_bugs;
                  r_dirty = prev.r_dirty + r.r_dirty;
                })
        s.s_rows)
    snaps;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) table [] |> List.sort compare_rows in
  { s_rows = rows; s_dropped = !dropped; s_tracked = List.length rows }

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

let schema_id = "pmdb-heatmap/v1"

let row_json r =
  Json.Obj
    (("line", Json.Int r.r_line)
    :: (match r.r_name with Some n -> [ ("name", Json.Str n) ] | None -> [])
    @ [
        ("stores", Json.Int r.r_stores);
        ("clfs", Json.Int r.r_clfs);
        ("bugs", Json.Int r.r_bugs);
        ("dirty", Json.Int r.r_dirty);
      ])

let snapshot_to_json s =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("dropped", Json.Int s.s_dropped);
      ("tracked", Json.Int s.s_tracked);
      ("lines", Json.List (List.map row_json s.s_rows));
    ]

let to_json ?top t = snapshot_to_json (snapshot ?top t)

let snapshot_of_json json =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" json with
    | Some (Json.Str s) when s = schema_id -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "heatmap JSON: unknown schema %S" s)
    | _ -> Error "heatmap JSON: missing schema"
  in
  let* lines =
    match Json.member "lines" json with
    | Some (Json.List l) -> Ok l
    | _ -> Error "heatmap JSON: missing lines list"
  in
  let int_member k j = Option.bind (Json.member k j) Json.to_int in
  let row i j =
    match
      (int_member "line" j, int_member "stores" j, int_member "clfs" j, int_member "bugs" j,
       int_member "dirty" j)
    with
    | Some line, Some stores, Some clfs, Some bugs, Some dirty when line >= 0 ->
        Ok
          {
            r_line = line;
            r_name = (match Json.member "name" j with Some (Json.Str n) -> Some n | _ -> None);
            r_stores = stores;
            r_clfs = clfs;
            r_bugs = bugs;
            r_dirty = dirty;
          }
    | _ -> Error (Printf.sprintf "heatmap JSON: line %d: missing or negative fields" i)
  in
  let rec rows i acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> ( match row i j with Ok r -> rows (i + 1) (r :: acc) rest | Error _ as e -> e)
  in
  let* rows = rows 0 [] lines in
  Ok
    {
      s_rows = List.sort compare_rows rows;
      s_dropped = (match int_member "dropped" json with Some d when d >= 0 -> d | _ -> 0);
      s_tracked = (match int_member "tracked" json with Some n when n >= 0 -> n | _ -> List.length rows);
    }
