(** Minimal JSON tree, printer and parser — the interchange format for
    metrics snapshots, bench reports and machine-readable figures.

    Deliberately dependency-free (the obs library must stay attachable
    to every layer, including [pmem] and [pmtrace]). The printer is
    stable: the same tree always renders to the same string, and floats
    keep a decimal point so a round-trip preserves the Int/Float
    distinction. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation;
    [false] renders a single line. Non-finite floats render as [null]
    (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parses a complete JSON document; trailing garbage is an error.
    Numbers without [.], [e] or [E] parse as [Int]. *)

val to_file : string -> t -> unit
(** Pretty-prints to a file (trailing newline included). Raises
    [Sys_error] on write failure; the channel never leaks. *)

val of_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] and integral [Float] both yield [Some]. *)

val to_float : t -> float option
(** [Int] and [Float] both yield [Some]. *)

val to_str : t -> string option
