type change_kind = Added | Removed | Changed

type change = {
  d_name : string;
  d_labels : Metrics.labels;
  d_kind : change_kind;
  d_before : Metrics.value_view option;
  d_after : Metrics.value_view option;
}

type t = change list

let key (s : Metrics.sample) = (s.Metrics.name, s.Metrics.labels)

let same_value (a : Metrics.value_view) (b : Metrics.value_view) =
  match (a, b) with
  | Metrics.V_counter x, Metrics.V_counter y -> x = y
  | Metrics.V_gauge x, Metrics.V_gauge y -> x = y
  | Metrics.V_hist x, Metrics.V_hist y ->
      x.Metrics.h_count = y.Metrics.h_count
      && x.Metrics.h_sum = y.Metrics.h_sum
      && x.Metrics.h_bounds = y.Metrics.h_bounds
      && x.Metrics.h_counts = y.Metrics.h_counts
  | _ -> false

let compute ~before ~after =
  (* Both snapshots are sorted by (name, labels); a merge walk yields
     the changes already in canonical order. *)
  let rec go acc a b =
    match (a, b) with
    | [], [] -> List.rev acc
    | sa :: ra, [] ->
        go
          ({ d_name = sa.Metrics.name; d_labels = sa.Metrics.labels; d_kind = Removed;
             d_before = Some sa.Metrics.value; d_after = None }
          :: acc)
          ra []
    | [], sb :: rb ->
        go
          ({ d_name = sb.Metrics.name; d_labels = sb.Metrics.labels; d_kind = Added;
             d_before = None; d_after = Some sb.Metrics.value }
          :: acc)
          [] rb
    | sa :: ra, sb :: rb ->
        let c = compare (key sa) (key sb) in
        if c < 0 then
          go
            ({ d_name = sa.Metrics.name; d_labels = sa.Metrics.labels; d_kind = Removed;
               d_before = Some sa.Metrics.value; d_after = None }
            :: acc)
            ra b
        else if c > 0 then
          go
            ({ d_name = sb.Metrics.name; d_labels = sb.Metrics.labels; d_kind = Added;
               d_before = None; d_after = Some sb.Metrics.value }
            :: acc)
            a rb
        else if same_value sa.Metrics.value sb.Metrics.value then go acc ra rb
        else
          go
            ({ d_name = sa.Metrics.name; d_labels = sa.Metrics.labels; d_kind = Changed;
               d_before = Some sa.Metrics.value; d_after = Some sb.Metrics.value }
            :: acc)
            ra rb
  in
  go [] before after

let is_empty d = d = []

(* Regression gating looks at counters by default: for a seeded
   deterministic workload they are reproducible run-to-run, while
   gauges and latency histograms vary with machine load and would make
   the gate flaky. Some gauges, however, are deterministic capacity
   peaks (space_array_live_peak, shard_queue_depth_peak) rather than
   timings; [gauge_threshold] opts those into the gate with their own,
   typically looser, threshold. *)
let regressions ?(threshold = 0.0) ?gauge_threshold d =
  List.filter
    (fun c ->
      match (c.d_kind, c.d_before, c.d_after) with
      | Changed, Some (Metrics.V_counter b), Some (Metrics.V_counter a) when a > b ->
          let rel = float_of_int (a - b) /. float_of_int (max 1 b) in
          rel > threshold
      | Added, None, Some (Metrics.V_counter a) -> a > 0
      | Changed, Some (Metrics.V_gauge b), Some (Metrics.V_gauge a) -> (
          match gauge_threshold with
          | Some gt when a > b -> (a -. b) /. Float.max 1.0 b > gt
          | _ -> false)
      | Added, None, Some (Metrics.V_gauge a) -> (
          match gauge_threshold with Some _ -> a > 0.0 | None -> false)
      | _ -> false)
    d

let value_str = function
  | None -> "-"
  | Some (Metrics.V_counter n) -> string_of_int n
  | Some (Metrics.V_gauge g) -> Printf.sprintf "%g" g
  | Some (Metrics.V_hist v) ->
      Printf.sprintf "count=%d sum=%.6g" v.Metrics.h_count v.Metrics.h_sum

let delta_str c =
  match (c.d_before, c.d_after) with
  | Some (Metrics.V_counter b), Some (Metrics.V_counter a) ->
      let d = a - b in
      Printf.sprintf "%+d (%+.1f%%)" d (100.0 *. float_of_int d /. float_of_int (max 1 b))
  | Some (Metrics.V_gauge b), Some (Metrics.V_gauge a) -> Printf.sprintf "%+g" (a -. b)
  | Some (Metrics.V_hist b), Some (Metrics.V_hist a) ->
      Printf.sprintf "count%+d" (a.Metrics.h_count - b.Metrics.h_count)
  | _ -> ""

let kind_str = function Added -> "added" | Removed -> "removed" | Changed -> "changed"

let rows_header = [ "metric"; "labels"; "change"; "before"; "after"; "delta" ]

let to_rows d =
  List.map
    (fun c ->
      [
        c.d_name;
        Metrics.labels_str c.d_labels;
        kind_str c.d_kind;
        value_str c.d_before;
        value_str c.d_after;
        delta_str c;
      ])
    d

let pp_change fmt c =
  let labels =
    match c.d_labels with [] -> "" | l -> "{" ^ Metrics.labels_str l ^ "}"
  in
  Format.fprintf fmt "%s %s%s: %s -> %s%s" (kind_str c.d_kind) c.d_name labels
    (value_str c.d_before) (value_str c.d_after)
    (match delta_str c with "" -> "" | d -> " (" ^ d ^ ")")
