(** Prometheus text exposition (format version 0.0.4) for
    {!Metrics.snapshot}s — the scrape side of the observability layer:
    [pmdb stats --prometheus] prints it, [pmdb serve --metrics-file]
    writes it atomically on a timer so any Prometheus node_exporter
    textfile collector (or plain [curl]-less file scrape) can ingest
    daemon telemetry.

    Counters and gauges render as single samples; histograms render
    the cumulative [_bucket] series keyed by [le] (including [+Inf])
    plus [_sum] and [_count], converted from our non-cumulative
    internal buckets. Label values escape backslash, double quote and
    newline per the spec. A snapshot is already sorted by
    (name, labels), so each metric gets exactly one [# TYPE] line and
    the same snapshot always renders to identical text. *)

val render : Metrics.snapshot -> string

val validate : string -> (int, string) result
(** Structural check of an exposition document: every [# TYPE] line is
    well-formed, every sample line parses (metric name, optional
    brace-delimited labels with escapes, float value incl.
    [+Inf]/[NaN]) and refers to a declared metric (histogram samples
    may carry the [_bucket]/[_sum]/[_count] suffixes). Returns the
    sample count — the CI gate over [--metrics-file] output. *)
