(** Lightweight span tracing: named, attributed wall-clock intervals.

    Spans cover the coarse phases of a run (record, replay, detector
    finish, crash exploration) where a histogram would hide the
    sequence; the metrics registry covers the per-event hot path.
    Timestamps come from {!Clock}. *)

type t

type finished = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_s : float;  (** {!Clock.now} at entry *)
  sp_dur_s : float;
}

val create : ?enabled:bool (** default [true] *) -> unit -> t

val disabled : t
(** Shared always-off collector: {!record} is one branch, nothing is
    stored. *)

val is_on : t -> bool

val record : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. The span is recorded even when the
    thunk raises (the exception is re-raised); attribute ["error"] is
    added with the exception text in that case. *)

val finished : t -> finished list
(** Completed spans in start order. *)

val clear : t -> unit

val render : ?pid:int -> ?tid:int -> ?t0:float -> Perfetto.t -> finished list -> unit
(** Append the spans to a Perfetto build as complete slices
    ([cat="span"], attrs as args) on track [(pid, tid)], timestamped in
    µs relative to [t0] (default: the earliest span start). Lets
    [pmdb timeline] overlay coarse phases and {!Tracecat} draw them
    against the per-domain tracks. *)

val to_json : t -> Json.t
(** [{"spans": [{"name", "start_s", "dur_s", "attrs"}, ...]}] member
    list, embedded in metrics files next to the registry snapshot. *)
