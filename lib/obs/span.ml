type finished = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_s : float;
  sp_dur_s : float;
}

type t = { on : bool; mutable spans_rev : finished list }

let create ?(enabled = true) () = { on = enabled; spans_rev = [] }

let disabled = { on = false; spans_rev = [] }

let is_on t = t.on

let record t ?(attrs = []) name f =
  if not t.on then f ()
  else begin
    let start = Clock.now () in
    let note extra =
      let dur = Clock.now () -. start in
      t.spans_rev <- { sp_name = name; sp_attrs = attrs @ extra; sp_start_s = start; sp_dur_s = dur } :: t.spans_rev
    in
    match f () with
    | result ->
        note [];
        result
    | exception exn ->
        note [ ("error", Printexc.to_string exn) ];
        raise exn
  end

let finished t = List.rev t.spans_rev

let clear t = t.spans_rev <- []

let to_json t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.sp_name);
             ("start_s", Json.Float s.sp_start_s);
             ("dur_s", Json.Float s.sp_dur_s);
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.sp_attrs));
           ])
       (finished t))
