type finished = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_s : float;
  sp_dur_s : float;
}

type t = { on : bool; mutable spans_rev : finished list }

let create ?(enabled = true) () = { on = enabled; spans_rev = [] }

let disabled = { on = false; spans_rev = [] }

let is_on t = t.on

let record t ?(attrs = []) name f =
  if not t.on then f ()
  else begin
    let start = Clock.now () in
    let note extra =
      let dur = Clock.now () -. start in
      t.spans_rev <- { sp_name = name; sp_attrs = attrs @ extra; sp_start_s = start; sp_dur_s = dur } :: t.spans_rev
    in
    match f () with
    | result ->
        note [];
        result
    | exception exn ->
        note [ ("error", Printexc.to_string exn) ];
        raise exn
  end

let finished t = List.rev t.spans_rev

let clear t = t.spans_rev <- []

(* Spans as Perfetto slices: µs relative to [t0] (default the earliest
   start), so phases land on a shared time base with whatever else the
   caller drew — Tracecat's domain tracks, or a timeline's own clock. *)
let render ?(pid = 0) ?(tid = 0) ?t0 p spans =
  match spans with
  | [] -> ()
  | spans ->
      let t0 =
        match t0 with
        | Some t -> t
        | None -> List.fold_left (fun acc s -> Float.min acc s.sp_start_s) infinity spans
      in
      List.iter
        (fun s ->
          Perfetto.complete ~cat:"span" ~pid ~tid p ~name:s.sp_name
            ~ts:(max 0 (int_of_float ((s.sp_start_s -. t0) *. 1e6)))
            ~dur:(max 1 (int_of_float (s.sp_dur_s *. 1e6)))
            ~args:(List.map (fun (k, v) -> (k, Json.Str v)) s.sp_attrs))
        spans

let to_json t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.sp_name);
             ("start_s", Json.Float s.sp_start_s);
             ("dur_s", Json.Float s.sp_dur_s);
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.sp_attrs));
           ])
       (finished t))
