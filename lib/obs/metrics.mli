(** Zero-dependency metrics registry: counters, gauges and fixed-bucket
    histograms, each optionally carrying labels.

    Design constraints, in order:

    - A disabled registry costs exactly one branch per record call
      ({!inc}/{!set}/{!max_set}/{!observe} return immediately), so every
      layer of the pipeline can be instrumented unconditionally — the
      bench regression test guards that the Nulgrind slowdown is
      unchanged when metrics are off.
    - Snapshots are deterministic: series sort by (name, labels) and two
      snapshots of the same state render to identical JSON.
    - Labels with the same key/value pairs merge into one series no
      matter the order they were supplied in.

    Metric naming scheme (see DESIGN.md "Observability"):
    [<component>_<what>_total] for counters, [<component>_<what>_peak]
    for high-water gauges, [<component>_<what>_seconds] for latency
    histograms. *)

type labels = (string * string) list

type t
(** A registry. Single-domain by design: a registry is mutated only by
    the domain that owns it (the engine itself is single-threaded, as
    the paper's Valgrind host serializes threads). Multi-domain
    components give each domain its own registry and fold the
    {!snapshot}s with {!merge} — never share one registry across
    domains. *)

val create : ?enabled:bool (** default [true] *) -> unit -> t

val disabled : t
(** A shared always-off registry: the default for every instrumented
    component, so recording costs one branch and allocates nothing.
    Calling {!set_enabled} on it raises [Invalid_argument]. *)

val is_on : t -> bool

val set_enabled : t -> bool -> unit

val clear : t -> unit
(** Drop every series (enabled state is kept). *)

(** {1 Recording} *)

val inc : t -> ?labels:labels -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at zero first.
    [inc ~by:0] declares a series so it appears in snapshots. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** Set a gauge. *)

val max_set : t -> ?labels:labels -> string -> float -> unit
(** Raise a gauge to [v] if [v] is larger — peak/high-water tracking. *)

val observe : t -> ?labels:labels -> ?bounds:float array -> string -> float -> unit
(** Record one histogram observation. [bounds] (strictly increasing
    bucket upper limits; an overflow bucket is implicit) is fixed by the
    first observation of a series; default {!latency_bounds}. *)

val latency_bounds : float array
(** Default buckets for dispatch-latency histograms: 100ns … 1s,
    roughly logarithmic. *)

(** {1 Standalone histograms}

    The same fixed-bucket histogram outside a registry, for callers
    that aggregate locally (e.g. {!Harness.Timing}'s per-event dispatch
    profile) and want quantiles without naming a series. *)

type hist

val hist_create : ?bounds:float array -> unit -> hist

val hist_observe : hist -> float -> unit

type hist_view = {
  h_bounds : float array;
  h_counts : int array;  (** length [Array.length h_bounds + 1]; last is overflow *)
  h_sum : float;
  h_count : int;
  h_max : float;  (** largest observation (0.0 when empty) *)
}

val hist_view : hist -> hist_view
(** A deep copy: later observations do not mutate the view. *)

val quantile : hist_view -> float -> float
(** [quantile v q] for [q] in [0,1], linearly interpolated inside the
    winning bucket — including the overflow bucket, whose upper edge is
    the observed max ([h_max]), so a p99 past the last bound no longer
    snaps to the bound verbatim. [0.0] on an empty histogram. *)

(** {1 Snapshots} *)

type value_view = V_counter of int | V_gauge of float | V_hist of hist_view

type sample = { name : string; labels : labels; value : value_view }

type snapshot = sample list
(** Sorted by (name, labels); labels sorted by key. *)

val snapshot : t -> snapshot

val merge : snapshot list -> snapshot
(** Deterministic multi-registry merge — how per-domain registries
    (worker pools, shard routers) fold into one whole-process truth:
    counters sum, gauges keep the max (all gauges here are peaks),
    histograms add bucket-wise. Commutative and associative, so the
    result is independent of snapshot order, and sorted like
    {!snapshot} so it renders to identical JSON every time. Raises
    [Invalid_argument] if one (name, labels) key appears with two
    different kinds or with histograms whose bucket bounds differ —
    that is a naming-contract bug between registries, not data. *)

val absorb : t -> snapshot -> unit
(** Fold a snapshot into a live registry with the same combine rules as
    {!merge} (counters add, gauges keep the max, histograms add
    bucket-wise) — how {!Shard_router} folds per-worker registries into
    the router's registry after the workers join. No-op on a disabled
    registry; raises [Invalid_argument] on a kind or bucket-bounds
    clash, like {!merge}. *)

val find : snapshot -> ?labels:labels -> string -> value_view option

val counter_value : snapshot -> ?labels:labels -> string -> int
(** 0 when the series does not exist or is not a counter. *)

val to_rows : snapshot -> string list list
(** One row per series for {!Harness.Table}: columns
    [metric; labels; type; value] (histograms summarize as
    count/sum/p50/p95). *)

val rows_header : string list

val labels_str : labels -> string
(** ["k1=v1,k2=v2"] (empty string for no labels). *)

val to_json : t -> Json.t
(** [{"schema": "pmdb-metrics/v1", "metrics": [...]}] — the stable
    machine-readable export ([pmdb run --metrics FILE] and the bench's
    telemetry section). *)

val snapshot_to_json : snapshot -> Json.t

val validate_json : Json.t -> (int, string) result
(** Schema check for a {!to_json} document (or the ["telemetry"] member
    of a bench report): returns the number of series on success.
    Rejects duplicate (name, labels) series — a snapshot holds one
    series per key, so duplicates mean a corrupt or hand-edited file
    (reported as ["metrics JSON: series N: duplicate series ..."]). *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Parse a {!to_json} document back into a snapshot (validating it
    first) — the input side of [pmdb stats --diff]. Round-trips with
    {!snapshot_to_json} up to float formatting. *)
