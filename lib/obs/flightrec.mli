(** Always-on flight recorder: a fixed-capacity ring buffer of recent
    structured events — the daemon's black box. When a session is
    quarantined, evicted, or the daemon gets [SIGQUIT], the last-N
    window is dumped (JSON and Perfetto) so the evidence of what the
    tool was doing survives the failure.

    Design constraints, in order:

    - The recording path allocates nothing: parallel arrays (a record
      mixing float and int fields would box the float on every write),
      caller-supplied timestamps, required labelled int arguments.
    - A disabled ring costs exactly one branch per {!record} call, like
      {!Metrics} — the engine dispatch hot path carries the hook
      unconditionally, and the bench overhead guard pins it.
    - Single-domain by design: a ring is mutated only by the domain
      that owns it. Multi-domain components (the serve {!Pool}) give
      each worker its own ring and dump them side by side.

    Entry shape: a [cat] (e.g. ["dispatch"], ["session"],
    ["backpressure"], ["quarantine"]), a [name] within the category, a
    float timestamp (wall clock in the daemon, virtual seq time in the
    engine), and two small ints [a]/[b] whose meaning is
    per-category — for ["session"] entries [a] is the session id and
    [b] = 1 marks a terminal transition. *)

type t

val create : ?capacity:int (** default 512 *) -> ?enabled:bool (** default [true] *) -> unit -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val disabled : t
(** A shared always-off ring: the default for instrumented components.
    Calling {!set_enabled} on it raises [Invalid_argument]. *)

val is_on : t -> bool
(** Guard for call sites that would otherwise compute arguments — the
    idiomatic hot-path form is
    [if Flightrec.is_on r then Flightrec.record r ~ts ...]. *)

val set_enabled : t -> bool -> unit

val capacity : t -> int

val recorded : t -> int
(** Total records ever (not capped at capacity). *)

val clear : t -> unit
(** Forget everything; enabled state and capacity are kept. *)

val record : t -> ts:float -> cat:string -> name:string -> a:int -> b:int -> unit
(** Append one entry, overwriting the oldest once the ring is full.
    One branch and no allocation when the ring is disabled. *)

(** {1 Reading} *)

type entry = {
  e_seq : int;  (** global record index, 0-based; survives wrap-around *)
  e_ts : float;
  e_cat : string;
  e_name : string;
  e_a : int;
  e_b : int;
}

val window : ?last:int -> t -> entry list
(** The most recent [last] entries (default: everything still in the
    ring), oldest first. *)

(** {1 Dumps} *)

val schema_id : string
(** ["pmdb-flightrec/v1"]. *)

val dump_to_json : ?last:int -> ?meta:(string * Json.t) list -> (string * t) list -> Json.t
(** Dump one or more labelled rings
    ([("dispatch", ring); ("worker-0", ring); ...]) as one document:
    [{"schema": "pmdb-flightrec/v1", "meta": {...}, "rings": [...]}].
    [meta] carries dump context — the quarantine reason, the failing
    session's name. *)

val validate_json : Json.t -> (int, string) result
(** Structural check of a {!dump_to_json} document; returns the total
    entry count across rings. *)

val dump_to_perfetto : ?last:int -> (string * t) list -> Json.t
(** Render the same window as a Chrome trace-event document: one
    thread track per ring, timestamps normalized to non-negative
    microseconds relative to the earliest entry. [cat="session"]
    entries are grouped by session id ([a]) into lifecycle slices —
    consecutive transitions become complete slices, a terminal final
    entry ([b] = 1) an instant, a non-terminal final entry an open
    {!Perfetto.begin_slice}. Other categories render as instants
    carrying [a]/[b] as args. *)

val render_entries : Perfetto.t -> tid:int -> us:(float -> int) -> entry list -> unit
(** The per-ring rendering core of {!dump_to_perfetto} (session
    lifecycle slices, everything else as instants), exposed so
    {!Tracecat} can fold many rings into one document with a shared
    time base — [us] converts an entry timestamp to trace
    microseconds. *)
