let source = ref Sys.time

let now () = !source ()

let set f = source := f
