(** Hot-line heatmap: a capped per-cache-line accounting table — where
    the PM traffic goes, how long lines stay dirty (in virtual seq
    time), where the findings cluster. The detector feeds it; [pmdb
    heatmap] renders the top-K lines as aligned text or JSON, locally
    or over the daemon socket.

    Observability contract (like {!Metrics} and {!Flightrec}):

    - a disabled table costs one branch per hook and allocates nothing;
    - single-domain by design — per-worker tables fold via
      {!snapshot}/{!merge};
    - bounded: once [cap] distinct lines are tracked, traffic on new
      lines counts into {!dropped} instead of growing the table. The
      heatmap is a top-K diagnostic, not exact accounting — [dropped]
      says how much fell off the edge.

    Dirty time: a store on a clean line opens a dirty interval at its
    seq; a CLF on the line closes it, adding the elapsed virtual seqs.
    A line still dirty at snapshot time is charged up to the latest
    event seen. This is write-back latency in {e virtual} time (event
    sequence numbers), deterministic for a given trace. *)

type t

val create : ?cap:int (** default 1024 *) -> ?enabled:bool (** default [true] *) -> unit -> t
(** Raises [Invalid_argument] if [cap < 1]. *)

val disabled : t
(** Shared always-off table; {!set_enabled} on it raises. *)

val is_on : t -> bool
val set_enabled : t -> bool -> unit
val cap : t -> int

val tracked : t -> int
(** Distinct lines currently tracked (≤ [cap]). *)

val dropped : t -> int
(** Events that landed on untracked lines after the cap was hit. *)

val clear : t -> unit

(** {1 Hooks} — [line] is a cache-line index ({!Pmem.Addr.line_of});
    the detector loops over the lines of each event's range. *)

val on_store : t -> seq:int -> line:int -> unit
val on_clf : t -> seq:int -> line:int -> unit
val on_bug : t -> line:int -> unit

val set_name : t -> line:int -> string -> unit
(** Attach a registered-variable name to a line (first name wins) —
    fed from [Register_var] events so heatmap rows are readable
    without a memory map. *)

(** {1 Snapshots} *)

type row = {
  r_line : int;
  r_name : string option;
  r_stores : int;
  r_clfs : int;
  r_bugs : int;
  r_dirty : int;  (** virtual seqs spent dirty (open intervals included) *)
}

type snapshot = { s_rows : row list; s_dropped : int; s_tracked : int }

val snapshot : ?top:int -> t -> snapshot
(** Rows hottest-first (stores + CLFs, ties by line index), capped at
    [top] when given. Does not mutate the table. *)

val merge : snapshot list -> snapshot
(** Fold per-worker snapshots: counters sum per line, the first
    non-empty name wins, rows re-rank by combined traffic. *)

val schema_id : string
(** ["pmdb-heatmap/v1"]. *)

val snapshot_to_json : snapshot -> Json.t
val to_json : ?top:int -> t -> Json.t

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Parse a {!snapshot_to_json} document (the daemon's [heatmap] verb
    reply). Round-trips up to row order, which re-sorts canonically. *)
