type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)
(* ---------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Stable float syntax: shortest %.12g form, forced to carry a '.' (or
   exponent) so it parses back as Float, never as Int. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let to_string ?(indent = true) json =
  let buf = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)
(* ---------------------------------------------------------------- *)

exception Parse_error of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "short \\u escape";
                   let hex = String.sub text !pos 4 in
                   let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
                   pos := !pos + 4;
                   (* Only the Latin-1 subset is needed for our own output. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with Some f -> Float f | None -> fail "bad number"
    else match int_of_string_opt s with Some i -> Int i | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------------------------------------------------------- *)
(* File I/O and accessors                                            *)
(* ---------------------------------------------------------------- *)

let to_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string json);
      output_char oc '\n')

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | text -> of_string text
          | exception Sys_error msg -> Error msg
          | exception End_of_file -> Error (path ^ ": truncated read"))

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
