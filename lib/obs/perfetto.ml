(* Chrome trace-event JSON builder (the "JSON Array Format" subset that
   ui.perfetto.dev and chrome://tracing load). Events are kept in emit
   order and every event object renders its fields in a fixed order, so
   the same build sequence always produces byte-identical JSON — the
   golden-file test depends on this. *)

type t = { mutable rev_events : Json.t list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let length t = t.count

let push t ev =
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let base ~name ?cat ~ph rest =
  ("name", Json.Str name)
  :: (match cat with Some c -> [ ("cat", Json.Str c) ] | None -> [])
  @ (("ph", Json.Str ph) :: rest)

let ids ?(pid = 0) ?(tid = 0) () = [ ("pid", Json.Int pid); ("tid", Json.Int tid) ]

let args_field = function [] -> [] | args -> [ ("args", Json.Obj args) ]

let complete ?cat ?pid ?tid ?(args = []) t ~name ~ts ~dur =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"X"
          ([ ("ts", Json.Int ts); ("dur", Json.Int (max 0 dur)) ]
          @ ids ?pid ?tid () @ args_field args)))

let begin_slice ?cat ?pid ?tid ?(args = []) t ~name ~ts =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"B" (("ts", Json.Int ts) :: (ids ?pid ?tid () @ args_field args))))

let end_slice ?cat ?pid ?tid ?(args = []) t ~name ~ts =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"E" (("ts", Json.Int ts) :: (ids ?pid ?tid () @ args_field args))))

let instant ?cat ?pid ?tid ?(args = []) t ~name ~ts =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"i"
          (("ts", Json.Int ts) :: ("s", Json.Str "t") :: (ids ?pid ?tid () @ args_field args))))

(* Flow events pair across tracks by [id]; Chrome binds each end to the
   enclosing slice on its (pid, tid), so emitters put a slice under
   every flow endpoint. ["bp": "e"] on the finish makes the arrow land
   at the enclosing slice rather than the next one. *)
let flow_start ?cat ?pid ?tid t ~name ~id ~ts =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"s" (("ts", Json.Int ts) :: ("id", Json.Int id) :: ids ?pid ?tid ())))

let flow_finish ?cat ?pid ?tid t ~name ~id ~ts =
  push t
    (Json.Obj
       (base ~name ?cat ~ph:"f"
          (("ts", Json.Int ts) :: ("id", Json.Int id) :: ("bp", Json.Str "e") :: ids ?pid ?tid ())))

let counter ?pid ?tid t ~name ~ts ~series =
  push t
    (Json.Obj
       (base ~name ~ph:"C"
          (("ts", Json.Int ts)
          :: (ids ?pid ?tid ()
             @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) series)) ]))))

let name_meta t ~meta ?pid ?tid label =
  push t
    (Json.Obj
       (base ~name:meta ~ph:"M"
          (("ts", Json.Int 0)
          :: (ids ?pid ?tid () @ [ ("args", Json.Obj [ ("name", Json.Str label) ]) ]))))

let process_name ?pid t label = name_meta t ~meta:"process_name" ?pid label

let thread_name ?pid ?tid t label = name_meta t ~meta:"thread_name" ?pid ?tid label

let to_json ?(metadata = []) t =
  ("traceEvents", Json.List (List.rev t.rev_events))
  :: (match metadata with [] -> [] | m -> [ ("metadata", Json.Obj m) ])
  |> fun fields -> Json.Obj fields

(* ---------------------------------------------------------------- *)
(* Structural validation                                             *)
(* ---------------------------------------------------------------- *)

let phases = [ "X"; "i"; "C"; "M"; "B"; "E"; "s"; "f" ]

let validate_json json =
  let ( let* ) = Result.bind in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "trace JSON: traceEvents is not a list"
    | None -> Error "trace JSON: missing traceEvents"
  in
  let check_event i ev =
    let ctx what = Error (Printf.sprintf "trace JSON: event %d: %s" i what) in
    let int_member k = Option.bind (Json.member k ev) Json.to_int in
    match (Json.member "name" ev, Json.member "ph" ev) with
    | Some (Json.Str _), Some (Json.Str ph) ->
        if not (List.mem ph phases) then ctx (Printf.sprintf "unknown phase %S" ph)
        else
          let* () =
            match int_member "ts" with
            | Some ts when ts >= 0 -> Ok ()
            | Some _ -> ctx "negative ts"
            | None -> ctx "missing integer ts"
          in
          let* () =
            if ph <> "X" then Ok ()
            else
              match int_member "dur" with
              | Some d when d >= 0 -> Ok ()
              | Some _ -> ctx "negative dur"
              | None -> ctx "complete event without integer dur"
          in
          let* () =
            match (int_member "pid", int_member "tid") with
            | Some _, Some _ -> Ok ()
            | _ -> ctx "missing integer pid/tid"
          in
          let* () =
            if ph <> "s" && ph <> "f" then Ok ()
            else
              match int_member "id" with
              | Some _ -> Ok ()
              | None -> ctx "flow event without integer id"
          in
          let* () =
            match (ph, Json.member "args" ev) with
            | ("C" | "M"), Some (Json.Obj (_ :: _)) -> Ok ()
            | ("C" | "M"), _ -> ctx "counter/metadata event without args"
            | _, (None | Some (Json.Obj _)) -> Ok ()
            | _, Some _ -> ctx "args is not an object"
          in
          Ok ()
    | _ -> ctx "missing name/ph"
  in
  let rec check i = function
    | [] -> Ok (List.length events)
    | e :: rest -> ( match check_event i e with Ok () -> check (i + 1) rest | Error _ as err -> err)
  in
  check 0 events
