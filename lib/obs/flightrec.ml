(* Always-on flight recorder: a fixed-capacity ring of recent
   structured events. The recording path allocates nothing — parallel
   arrays instead of an entry record (a record mixing float and int
   fields would box the float on every write), caller-supplied
   timestamps (no clock call behind the caller's back), and required
   labelled int arguments (optional ints would box in Some). A disabled
   ring costs exactly one branch per record call, mirroring
   Obs.Metrics, so the engine hot path carries the hook
   unconditionally. Like a Metrics registry, a ring is single-domain:
   multi-domain components give each domain its own ring and dump them
   side by side. *)

type t = {
  mutable on : bool;
  frozen : bool; (* the shared [disabled] singleton must stay off *)
  cap : int;
  mutable next : int; (* total records ever; the live slot is [next mod cap] *)
  cats : string array;
  names : string array;
  az : int array;
  bz : int array;
  ts : float array; (* separate unboxed array: no float boxing on write *)
}

let create ?(capacity = 512) ?(enabled = true) () =
  if capacity < 1 then invalid_arg "Obs.Flightrec.create: capacity must be >= 1";
  {
    on = enabled;
    frozen = false;
    cap = capacity;
    next = 0;
    cats = Array.make capacity "";
    names = Array.make capacity "";
    az = Array.make capacity 0;
    bz = Array.make capacity 0;
    ts = Array.make capacity 0.0;
  }

let disabled =
  {
    on = false;
    frozen = true;
    cap = 1;
    next = 0;
    cats = [| "" |];
    names = [| "" |];
    az = [| 0 |];
    bz = [| 0 |];
    ts = [| 0.0 |];
  }

let is_on t = t.on

let set_enabled t b =
  if t.frozen then invalid_arg "Obs.Flightrec.set_enabled: the shared disabled ring is immutable";
  t.on <- b

let capacity t = t.cap

let recorded t = t.next

let clear t = t.next <- 0

let record t ~ts ~cat ~name ~a ~b =
  if not t.on then ()
  else begin
    let i = t.next mod t.cap in
    t.cats.(i) <- cat;
    t.names.(i) <- name;
    t.az.(i) <- a;
    t.bz.(i) <- b;
    t.ts.(i) <- ts;
    t.next <- t.next + 1
  end

(* ---------------------------------------------------------------- *)
(* Reading the window                                                *)
(* ---------------------------------------------------------------- *)

type entry = {
  e_seq : int; (* global record index, 0-based, survives wrap-around *)
  e_ts : float;
  e_cat : string;
  e_name : string;
  e_a : int;
  e_b : int;
}

let window ?last t =
  let live = min t.next t.cap in
  let n = match last with Some k -> min (max 0 k) live | None -> live in
  let first = t.next - n in
  List.init n (fun i ->
      let seq = first + i in
      let slot = seq mod t.cap in
      {
        e_seq = seq;
        e_ts = t.ts.(slot);
        e_cat = t.cats.(slot);
        e_name = t.names.(slot);
        e_a = t.az.(slot);
        e_b = t.bz.(slot);
      })

(* ---------------------------------------------------------------- *)
(* Dumps                                                             *)
(* ---------------------------------------------------------------- *)

let schema_id = "pmdb-flightrec/v1"

let entry_json e =
  Json.Obj
    [
      ("seq", Json.Int e.e_seq);
      ("ts", Json.Float e.e_ts);
      ("cat", Json.Str e.e_cat);
      ("name", Json.Str e.e_name);
      ("a", Json.Int e.e_a);
      ("b", Json.Int e.e_b);
    ]

let dump_to_json ?last ?(meta = []) rings =
  let ring_json (label, t) =
    Json.Obj
      [
        ("ring", Json.Str label);
        ("capacity", Json.Int t.cap);
        ("recorded", Json.Int t.next);
        ("entries", Json.List (List.map entry_json (window ?last t)));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("meta", Json.Obj meta);
      ("rings", Json.List (List.map ring_json rings));
    ]

let validate_json json =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" json with
    | Some (Json.Str s) when s = schema_id -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "flightrec JSON: unknown schema %S" s)
    | _ -> Error "flightrec JSON: missing schema"
  in
  let* rings =
    match Json.member "rings" json with
    | Some (Json.List l) -> Ok l
    | _ -> Error "flightrec JSON: missing rings list"
  in
  let check_entry ring i e =
    let ctx what = Error (Printf.sprintf "flightrec JSON: ring %S entry %d: %s" ring i what) in
    let int_member k = Option.bind (Json.member k e) Json.to_int in
    match (Json.member "cat" e, Json.member "name" e) with
    | Some (Json.Str _), Some (Json.Str _) -> (
        match (int_member "seq", Option.bind (Json.member "ts" e) Json.to_float) with
        | Some seq, Some _ when seq >= 0 -> (
            match (int_member "a", int_member "b") with
            | Some _, Some _ -> Ok ()
            | _ -> ctx "missing integer a/b")
        | Some _, Some _ -> ctx "negative seq"
        | _ -> ctx "missing seq/ts")
    | _ -> ctx "missing cat/name"
  in
  let check_ring r =
    match (Json.member "ring" r, Json.member "entries" r) with
    | Some (Json.Str label), Some (Json.List entries) ->
        let* () =
          match
            (Option.bind (Json.member "capacity" r) Json.to_int,
             Option.bind (Json.member "recorded" r) Json.to_int)
          with
          | Some c, Some n when c >= 1 && n >= 0 -> Ok ()
          | _ -> Error (Printf.sprintf "flightrec JSON: ring %S: bad capacity/recorded" label)
        in
        let rec go i = function
          | [] -> Ok (List.length entries)
          | e :: rest -> (
              match check_entry label i e with Ok () -> go (i + 1) rest | Error _ as err -> err)
        in
        go 0 entries
    | _ -> Error "flightrec JSON: ring without ring/entries"
  in
  let rec go total = function
    | [] -> Ok total
    | r :: rest -> (
        match check_ring r with Ok n -> go (total + n) rest | Error _ as err -> err)
  in
  go 0 rings

(* ---------------------------------------------------------------- *)
(* Perfetto rendering                                                *)
(* ---------------------------------------------------------------- *)

(* Timestamps are normalized to non-negative integer microseconds
   relative to the earliest entry across all rings, so wall-clock and
   virtual-time rings both render. cat="session" entries are grouped by
   session id (the [a] argument) and drawn as lifecycle slices:
   consecutive transitions pair into complete slices named after the
   phase being left; the final entry is an instant when terminal
   ([b] = 1, named after the exit status) and an open begin_slice when
   the session was still in flight at dump time. Everything else
   renders as instants carrying a/b as args. *)
let render_entries p ~tid ~us entries =
  let sessions = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.e_cat = "session" then
        Hashtbl.replace sessions e.e_a (e :: (Option.value ~default:[] (Hashtbl.find_opt sessions e.e_a)))
      else
        Perfetto.instant ~cat:e.e_cat ~tid p ~name:e.e_name ~ts:(us e.e_ts)
          ~args:[ ("a", Json.Int e.e_a); ("b", Json.Int e.e_b) ])
    entries;
  (* Deterministic session order: by id. *)
  Hashtbl.fold (fun id es acc -> (id, List.rev es) :: acc) sessions []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (id, es) ->
         let args = [ ("session", Json.Int id) ] in
         let rec slices = function
           | [] -> ()
           | [ final ] ->
               if final.e_b = 1 then
                 Perfetto.instant ~cat:"session" ~tid p ~name:final.e_name ~ts:(us final.e_ts) ~args
               else
                 Perfetto.begin_slice ~cat:"session" ~tid p ~name:final.e_name ~ts:(us final.e_ts)
                   ~args
           | a :: (b :: _ as rest) ->
               Perfetto.complete ~cat:"session" ~tid p ~name:a.e_name ~ts:(us a.e_ts)
                 ~dur:(us b.e_ts - us a.e_ts) ~args;
               slices rest
         in
         slices es)

let dump_to_perfetto ?last rings =
  let windows = List.map (fun (label, t) -> (label, window ?last t)) rings in
  let tmin =
    List.fold_left
      (fun acc (_, es) -> List.fold_left (fun acc e -> Float.min acc e.e_ts) acc es)
      infinity windows
  in
  let tmin = if tmin = infinity then 0.0 else tmin in
  let us ts = max 0 (int_of_float ((ts -. tmin) *. 1e6)) in
  let p = Perfetto.create () in
  Perfetto.process_name p "pmdb flight recorder";
  List.iteri
    (fun tid (label, entries) ->
      Perfetto.thread_name ~tid p label;
      render_entries p ~tid ~us entries)
    windows;
  Perfetto.to_json p
