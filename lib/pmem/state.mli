(** Simulated persistent-memory persistency state.

    Models the x86 persistence semantics the paper reasons about:

    - a {b store} makes the target cache line(s) dirty in the (volatile)
      cache hierarchy;
    - a {b cache-line writeback} (CLWB / CLFLUSH / CLFLUSHOPT) initiates
      eviction of a line towards the persistence domain, but the write
      is only {e guaranteed} durable once a subsequent {b fence}
      (SFENCE) completes;
    - a {b fence} drains pending writebacks, making them durable.

    Two byte images are maintained: the {e volatile} image (what the
    program reads) and the {e durable} image (the contents guaranteed to
    survive a crash). Lines that are dirty or writeback-pending at a
    crash may or may not have reached PM; {!crash_images} samples that
    non-determinism to produce possible post-crash images. *)

type line_state =
  | Clean  (** Line contents are identical in cache and PM. *)
  | Dirty  (** Stored to since last writeback; contents only in cache. *)
  | Writeback_pending
      (** A CLF was issued after the last store but no fence has drained
          it yet; durability is not yet guaranteed. *)

type t

val create : ?initial_size:int -> unit -> t

val volatile : t -> Image.t
(** The program-visible image. *)

val durable : t -> Image.t
(** The guaranteed-durable image (contents as of the last drains). *)

val line_state : t -> int -> line_state
(** [line_state t line] for a cache-line index; [Clean] if untouched. *)

val store : t -> addr:int -> bytes -> unit
(** Write bytes at [addr] in the volatile image, dirtying touched lines. *)

val store_i64 : t -> addr:int -> int64 -> unit

val clf : t -> addr:int -> unit
(** Writeback of the single cache line containing [addr]: [Dirty] ->
    [Writeback_pending]. A CLF on a clean line is a no-op with respect
    to state (the redundancy is a detector concern, not a semantics
    one). *)

val clf_range : t -> lo:int -> hi:int -> unit
(** CLF every line touched by [\[lo,hi)]. *)

val copy : t -> t
(** Deep snapshot: images, line states and counters. The copy evolves
    independently (used by crash-point exploration to restart from a
    known-good prefix). *)

val evict : t -> line:int -> unit
(** Model a spontaneous cache eviction: the line's current (volatile)
    contents reach the persistence domain and the line becomes [Clean],
    with no CLF or fence issued. A no-op on [Clean] lines. Hardware may
    evict any dirty line at any time; fault injection uses this to pin
    the non-determinism to a chosen point. *)

val fence : t -> unit
(** Drain: every [Writeback_pending] line becomes durable and [Clean].
    [Dirty] lines are unaffected (their CLF has not been issued). *)

val dirty_lines : t -> int list
(** Lines currently [Dirty], ascending. *)

val pending_lines : t -> int list
(** Lines currently [Writeback_pending], ascending. *)

val is_durable_range : t -> lo:int -> hi:int -> bool
(** True iff every line of the range is [Clean], i.e. all stores to the
    range have reached the persistence domain. *)

val crash_images : t -> ?max_images:int -> unit -> Image.t list
(** Possible post-crash PM contents. Each image starts from the durable
    image; each dirty/pending line is independently either lost or
    persisted. Enumerates exhaustively when there are at most
    [log2 max_images] undrained lines, otherwise samples
    deterministically (seeded), always includes the two extremes
    (nothing extra persisted / everything persisted), and dedupes
    repeated samples — so fewer than [max_images] distinct images may be
    returned. Default [max_images] is 64. *)

val stats : t -> (string * int) list
(** Counters: stores, clfs, fences, drained lines. *)
