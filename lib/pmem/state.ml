type line_state = Clean | Dirty | Writeback_pending

type t = {
  vol : Image.t;
  dur : Image.t;
  lines : (int, line_state) Hashtbl.t;
  mutable n_stores : int;
  mutable n_clfs : int;
  mutable n_fences : int;
  mutable n_drained : int;
}

let create ?initial_size () =
  {
    vol = Image.create ?initial_size ();
    dur = Image.create ?initial_size ();
    lines = Hashtbl.create 1024;
    n_stores = 0;
    n_clfs = 0;
    n_fences = 0;
    n_drained = 0;
  }

let volatile t = t.vol

let durable t = t.dur

let line_state t line = match Hashtbl.find_opt t.lines line with None -> Clean | Some s -> s

let set_line t line s =
  match s with
  | Clean -> Hashtbl.remove t.lines line
  | Dirty | Writeback_pending -> Hashtbl.replace t.lines line s

let store t ~addr b =
  t.n_stores <- t.n_stores + 1;
  Image.write t.vol ~addr b;
  let hi = addr + Bytes.length b in
  List.iter (fun line -> set_line t line Dirty) (Addr.lines_of_range ~lo:addr ~hi)

let store_i64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store t ~addr b

let clf t ~addr =
  t.n_clfs <- t.n_clfs + 1;
  let line = Addr.line_of addr in
  match line_state t line with
  | Dirty -> set_line t line Writeback_pending
  | Clean | Writeback_pending -> ()

let clf_range t ~lo ~hi =
  List.iter (fun line -> clf t ~addr:(line * Addr.cache_line_size)) (Addr.lines_of_range ~lo ~hi)

let copy t =
  {
    vol = Image.copy t.vol;
    dur = Image.copy t.dur;
    lines = Hashtbl.copy t.lines;
    n_stores = t.n_stores;
    n_clfs = t.n_clfs;
    n_fences = t.n_fences;
    n_drained = t.n_drained;
  }

(* Spontaneous cache eviction: the line reaches the persistence domain
   without any CLF or fence having been issued. Unlike a CLF, the write
   is durable immediately (there is no writeback-pending window). *)
let evict t ~line =
  match line_state t line with
  | Clean -> ()
  | Dirty | Writeback_pending ->
      Image.blit_line ~src:t.vol ~dst:t.dur ~line;
      set_line t line Clean

let fence t =
  t.n_fences <- t.n_fences + 1;
  let pending = Hashtbl.fold (fun line s acc -> if s = Writeback_pending then line :: acc else acc) t.lines [] in
  List.iter
    (fun line ->
      Image.blit_line ~src:t.vol ~dst:t.dur ~line;
      t.n_drained <- t.n_drained + 1;
      set_line t line Clean)
    pending

let lines_in t state =
  Hashtbl.fold (fun line s acc -> if s = state then line :: acc else acc) t.lines []
  |> List.sort compare

let dirty_lines t = lines_in t Dirty

let pending_lines t = lines_in t Writeback_pending

let is_durable_range t ~lo ~hi =
  List.for_all (fun line -> line_state t line = Clean) (Addr.lines_of_range ~lo ~hi)

(* Deterministic xorshift for crash-image sampling: reproducible runs. *)
let xorshift seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land max_int;
    !s

let crash_images t ?(max_images = 64) () =
  let undrained =
    Hashtbl.fold (fun line _ acc -> line :: acc) t.lines [] |> List.sort compare |> Array.of_list
  in
  let n = Array.length undrained in
  (* Each possible image is a subset of undrained lines persisted on top
     of the durable image. Subsets are bool arrays, not int masks:
     [1 lsl i] is undefined once i reaches the word size, and sampling
     produced duplicate masks that inflated violation counts. *)
  let image_of_subset keep =
    let img = Image.copy t.dur in
    Array.iteri (fun i line -> if keep.(i) then Image.blit_line ~src:t.vol ~dst:img ~line) undrained;
    img
  in
  if n = 0 then [ Image.copy t.dur ]
  else if n <= 20 && 1 lsl n <= max_images then
    List.init (1 lsl n) (fun mask -> image_of_subset (Array.init n (fun i -> mask land (1 lsl i) <> 0)))
  else begin
    let rand = xorshift (n * 2654435761) in
    let seen = Hashtbl.create (2 * max_images) in
    let key keep = String.init n (fun i -> if keep.(i) then '1' else '0') in
    let images = ref [] in
    let add keep =
      let k = key keep in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        images := image_of_subset keep :: !images
      end
    in
    (* The two extremes first: nothing extra persisted / everything
       persisted. *)
    add (Array.make n false);
    add (Array.make n true);
    for _ = 1 to max 0 (max_images - 2) do
      add (Array.init n (fun _ -> rand () land 1 = 1))
    done;
    List.rev !images
  end

let stats t =
  [
    ("stores", t.n_stores);
    ("clfs", t.n_clfs);
    ("fences", t.n_fences);
    ("drained_lines", t.n_drained);
  ]
