let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let median_of ?(repeats = 3) f =
  let samples = List.init (max 1 repeats) (fun _ -> time_once f) in
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

type dispatch_profile = { p50_s : float; p95_s : float; p99_s : float; samples : int }

type measurement = {
  native_s : float;
  nulgrind_s : float;
  detector_s : (string * float) list;
  dispatch : (string * dispatch_profile) list;
}

let slowdown m t = if m.native_s > 0.0 then t /. m.native_s else 0.0

(* One timed pass per event: the per-event dispatch latency histogram
   behind the p50/p95 columns. Kept out of the median-timed replays so
   the gettimeofday pair does not pollute the whole-run numbers. *)
let dispatch_profile trace sink =
  let h = Obs.Metrics.hist_create () in
  Array.iter
    (fun ev ->
      let t0 = Unix.gettimeofday () in
      sink.Pmtrace.Sink.on_event ev;
      Obs.Metrics.hist_observe h (Unix.gettimeofday () -. t0))
    trace;
  ignore (sink.Pmtrace.Sink.finish ());
  let v = Obs.Metrics.hist_view h in
  {
    p50_s = Obs.Metrics.quantile v 0.5;
    p95_s = Obs.Metrics.quantile v 0.95;
    p99_s = Obs.Metrics.quantile v 0.99;
    samples = v.Obs.Metrics.h_count;
  }

let measure ?(repeats = 3) ~run ~detectors () =
  (* Native: same workload, instrumentation disabled. *)
  let native_s =
    median_of ~repeats (fun () ->
        let engine = Pmtrace.Engine.create () in
        Pmtrace.Engine.set_instrumentation engine false;
        run engine)
  in
  let trace = Pmtrace.Recorder.record run in
  let replay_median mk =
    median_of ~repeats (fun () -> ignore (Pmtrace.Recorder.replay trace (mk ())))
  in
  let nulgrind_replay = replay_median (fun () -> Pmtrace.Sink.noop "nulgrind") in
  let detector_s =
    List.map (fun (name, mk) -> (name, native_s +. replay_median mk)) detectors
  in
  let dispatch =
    ("nulgrind", dispatch_profile trace (Pmtrace.Sink.noop "nulgrind"))
    :: List.map (fun (name, mk) -> (name, dispatch_profile trace (mk ()))) detectors
  in
  ({ native_s; nulgrind_s = native_s +. nulgrind_replay; detector_s; dispatch }, trace)
