(** Wall-clock timing for the slowdown experiments.

    The paper reports per-tool slowdown relative to the original
    program with detectors disabled. Here the "original program" is the
    workload run with instrumentation off; Nulgrind adds dispatch-only
    instrumentation; each detector adds its bookkeeping on top. Times
    are medians of repeated runs on a recorded trace; {!measure} also
    profiles per-event dispatch latency into an {!Obs.Metrics} histogram
    and reports its p50/p95/p99 per tool. *)

val time_once : (unit -> unit) -> float

val median_of : ?repeats:int (** default 3 *) -> (unit -> unit) -> float

type dispatch_profile = {
  p50_s : float;  (** median per-event dispatch latency *)
  p95_s : float;  (** tail per-event dispatch latency *)
  p99_s : float;  (** far-tail per-event dispatch latency *)
  samples : int;  (** events profiled (= trace length) *)
}

type measurement = {
  native_s : float;  (** uninstrumented workload run *)
  nulgrind_s : float;  (** native + dispatch to a no-op sink *)
  detector_s : (string * float) list;  (** native + dispatch + bookkeeping *)
  dispatch : (string * dispatch_profile) list;
      (** per-event dispatch latency quantiles, ["nulgrind"] first then
          one entry per detector, from a single profiled replay *)
}

val slowdown : measurement -> float -> float
(** [slowdown m t] is [t /. m.native_s]. *)

val dispatch_profile : Pmtrace.Recorder.trace -> Pmtrace.Sink.t -> dispatch_profile
(** Replay the trace into the sink, timing every [on_event] call into a
    fixed-bucket histogram ({!Obs.Metrics.latency_bounds}); the sink's
    [finish] runs (its result is dropped). *)

val measure :
  ?repeats:int ->
  run:(Pmtrace.Engine.t -> unit) ->
  detectors:(string * (unit -> Pmtrace.Sink.t)) list ->
  unit ->
  measurement * Pmtrace.Recorder.trace
(** Runs the workload natively (instrumentation off) for the baseline
    time, records its trace once, then replays the trace into each
    detector; detector total time = native + replay. A final profiled
    replay per tool fills [dispatch]. *)
