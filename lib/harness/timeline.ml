(* Trace -> Perfetto timeline. Virtual time: the i-th event of the
   trace (1-based, = the detector's seq stamp) is microsecond i, so a
   slice's extent reads directly as an event-seq interval and the
   output is deterministic (golden-testable).

   Two processes:
   - pid 1 "engine dispatch": one thread per program tid, a unit slice
     per event named by its class (store/clf/fence/...), epoch and
     strand boundaries as instants.
   - pid 2 "persistency state": one thread per touched cache line
     (capped at [max_tracks], first-come), slices tracking the line
     through dirty -> flushed -> durable; plus a "pending lines"
     counter sampled at every fence. *)

open Pmtrace

let line_bytes = 64

type line_state = Clean | Dirty | Flushed

type track = { tl_tid : int; mutable tl_state : line_state; mutable tl_since : int }

let state_name = function Clean -> "clean" | Dirty -> "dirty" | Flushed -> "flushed"

let of_trace ?(max_tracks = 64) events =
  let b = Obs.Perfetto.create () in
  Obs.Perfetto.process_name ~pid:1 b "engine dispatch";
  Obs.Perfetto.process_name ~pid:2 b "persistency state";
  (* Variable registrations name the line tracks they cover. *)
  let var_names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (function
      | Event.Register_var { name; addr; size } when size > 0 ->
          for line = addr / line_bytes to (addr + size - 1) / line_bytes do
            if not (Hashtbl.mem var_names line) then Hashtbl.add var_names line name
          done
      | _ -> ())
    events;
  (* Engine threads, named on first sight. *)
  let engine_tids : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let engine_tid tid =
    if not (Hashtbl.mem engine_tids tid) then begin
      Hashtbl.add engine_tids tid ();
      Obs.Perfetto.thread_name ~pid:1 ~tid b (Printf.sprintf "thread %d" tid)
    end;
    tid
  in
  (* Cache-line tracks, allocated first-come up to the cap. *)
  let tracks : (int, track) Hashtbl.t = Hashtbl.create 64 in
  let next_track = ref 0 in
  let dropped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let track_for line =
    match Hashtbl.find_opt tracks line with
    | Some t -> Some t
    | None ->
        if !next_track >= max_tracks then begin
          Hashtbl.replace dropped line ();
          None
        end
        else begin
          let tl_tid = !next_track in
          incr next_track;
          let label =
            match Hashtbl.find_opt var_names line with
            | Some name -> Printf.sprintf "%s (0x%x)" name (line * line_bytes)
            | None -> Printf.sprintf "line 0x%x" (line * line_bytes)
          in
          Obs.Perfetto.thread_name ~pid:2 ~tid:tl_tid b label;
          let t = { tl_tid; tl_state = Clean; tl_since = 0 } in
          Hashtbl.add tracks line t;
          Some t
        end
  in
  let dirty = ref 0 and flushed = ref 0 in
  let close_slice t ~ts =
    if t.tl_state <> Clean && ts > t.tl_since then
      Obs.Perfetto.complete ~pid:2 ~tid:t.tl_tid b ~name:(state_name t.tl_state) ~ts:t.tl_since
        ~dur:(ts - t.tl_since)
  in
  let transition t ~ts state =
    if t.tl_state <> state then begin
      close_slice t ~ts;
      (match t.tl_state with Dirty -> decr dirty | Flushed -> decr flushed | Clean -> ());
      (match state with Dirty -> incr dirty | Flushed -> incr flushed | Clean -> ());
      t.tl_state <- state;
      t.tl_since <- ts
    end
  in
  let each_line ~addr ~size f =
    if size > 0 then
      for line = addr / line_bytes to (addr + size - 1) / line_bytes do
        match track_for line with Some t -> f t | None -> ()
      done
  in
  let addr_args addr size = [ ("addr", Obs.Json.Int addr); ("size", Obs.Json.Int size) ] in
  Array.iteri
    (fun i ev ->
      let ts = i + 1 in
      let cls = Event.class_name ev in
      let dispatch ?args tid =
        Obs.Perfetto.complete ~cat:"dispatch" ~pid:1 ~tid:(engine_tid tid) ?args b ~name:cls ~ts
          ~dur:1
      in
      match ev with
      | Event.Store { addr; size; tid } ->
          dispatch ~args:(addr_args addr size) tid;
          each_line ~addr ~size (fun t -> transition t ~ts Dirty)
      | Event.Clf { addr; size; kind; tid } ->
          dispatch
            ~args:(("kind", Obs.Json.Str (Event.clf_kind_name kind)) :: addr_args addr size)
            tid;
          (* Only a dirty line becomes flushed; clean/flushed lines are
             untouched (a redundant flush shows as no state change). *)
          each_line ~addr ~size (fun t -> if t.tl_state = Dirty then transition t ~ts Flushed)
      | Event.Fence { tid } ->
          dispatch tid;
          Hashtbl.iter
            (fun _ t ->
              if t.tl_state = Flushed then begin
                transition t ~ts Clean;
                Obs.Perfetto.instant ~cat:"state" ~pid:2 ~tid:t.tl_tid b ~name:"durable" ~ts
              end)
            tracks;
          Obs.Perfetto.counter ~pid:2 b ~name:"pending lines" ~ts
            ~series:[ ("dirty", !dirty); ("flushed", !flushed) ]
      | Event.Epoch_begin { tid } | Event.Epoch_end { tid } ->
          dispatch tid;
          Obs.Perfetto.instant ~cat:"epoch" ~pid:1 ~tid:(engine_tid tid) b ~name:cls ~ts
      | Event.Tx_log { obj_addr; size; tid } -> dispatch ~args:(addr_args obj_addr size) tid
      | _ -> dispatch (Event.tid ev))
    events;
  (* Close the slices still open at the end of the trace, so unpersisted
     lines render as running off the right edge. *)
  let end_ts = Array.length events + 1 in
  Hashtbl.iter (fun _ t -> close_slice t ~ts:end_ts) tracks;
  if Hashtbl.length dropped > 0 then
    Obs.Perfetto.instant ~pid:2 b
      ~name:(Printf.sprintf "%d lines beyond track cap" (Hashtbl.length dropped))
      ~ts:end_ts;
  b
