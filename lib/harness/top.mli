(** The [pmdb top] dashboard renderer: a merged daemon metrics snapshot
    in, a multi-line text frame out.

    Pure by design — the CLI owns the [stats_stream] subscription, the
    refresh cadence and the terminal (clear + redraw when interactive),
    so the layout is unit-testable against synthetic snapshots. Rates
    derive from counter deltas between [prev] and [cur]; quantiles come
    from the snapshot's histogram buckets ({!Obs.Metrics.quantile});
    series the daemon does not record render as ["-"]. *)

val render : prev:Obs.Metrics.snapshot option -> cur:Obs.Metrics.snapshot -> dt:float -> string
(** [render ~prev ~cur ~dt] — [prev] is the previous frame ([None] on
    the first: absolute values only, no rates), [dt] the seconds
    between the two frames. *)
