(** Render a trace as a Perfetto/Chrome trace-event timeline
    ([pmdb timeline]).

    Virtual time: the i-th trace event (1-based — the detector's seq
    stamp) is microsecond i, so slice extents read directly as
    event-seq intervals and the output is deterministic.

    The timeline has two processes: pid 1 "engine dispatch" (a unit
    slice per event, one thread per program tid, epoch boundaries as
    instants) and pid 2 "persistency state" (one thread per touched
    cache line, slices tracking dirty → flushed, an instant at the
    fence that makes the line durable, and a "pending lines" counter
    sampled at every fence). Lines registered via [Register_var] label
    their track with the variable name. *)

val of_trace : ?max_tracks:int -> Pmtrace.Event.t array -> Obs.Perfetto.t
(** [max_tracks] (default 64) caps the per-cache-line tracks;
    first-come wins and an end-of-trace instant reports how many
    lines were dropped. *)
