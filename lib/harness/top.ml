(* The `pmdb top` dashboard renderer: one merged metrics snapshot in,
   one multi-line string out. Pure — the CLI owns the stream, the
   refresh loop and the terminal; keeping the renderer side-effect-free
   makes every layout decision unit-testable against synthetic
   snapshots.

   Rates are derived from counter deltas against the previous frame
   ([prev = None] on the first frame renders absolute values only).
   Histogram quantiles come straight from the snapshot's bucket counts
   via {!Obs.Metrics.quantile}. Series the daemon does not record
   (e.g. shard residency when sessions run unsharded detectors) render
   as "-" rather than being invented. *)

let counter = Obs.Metrics.counter_value

let gauge snap ?labels name =
  match Obs.Metrics.find snap ?labels name with Some (Obs.Metrics.V_gauge v) -> v | _ -> 0.0

(* All samples of one metric, as (labels, view) pairs in snapshot
   (= sorted) order. *)
let series snap name =
  List.filter_map
    (fun (s : Obs.Metrics.sample) -> if s.Obs.Metrics.name = name then Some (s.Obs.Metrics.labels, s.Obs.Metrics.value) else None)
    snap

(* Bucket-wise sum of every labelled histogram of [name] — e.g. the
   per-shard residency histograms folded into one distribution. *)
let hist_total snap name =
  List.fold_left
    (fun acc (_, v) ->
      match (v, acc) with
      | Obs.Metrics.V_hist h, None -> Some { h with Obs.Metrics.h_counts = Array.copy h.Obs.Metrics.h_counts }
      | Obs.Metrics.V_hist h, Some t when h.Obs.Metrics.h_bounds = t.Obs.Metrics.h_bounds ->
          Array.iteri (fun i c -> t.Obs.Metrics.h_counts.(i) <- t.Obs.Metrics.h_counts.(i) + c) h.Obs.Metrics.h_counts;
          Some
            {
              t with
              Obs.Metrics.h_sum = t.Obs.Metrics.h_sum +. h.Obs.Metrics.h_sum;
              h_count = t.Obs.Metrics.h_count + h.Obs.Metrics.h_count;
              h_max = Float.max t.Obs.Metrics.h_max h.Obs.Metrics.h_max;
            }
      | _ -> acc)
    None (series snap name)

let fmt_seconds s =
  if s <= 0.0 then "-"
  else if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_quantiles = function
  | None -> "p50 -     p99 -"
  | Some h when h.Obs.Metrics.h_count = 0 -> "p50 -     p99 -"
  | Some h ->
      Printf.sprintf "p50 %-6s p99 %-6s"
        (fmt_seconds (Obs.Metrics.quantile h 0.5))
        (fmt_seconds (Obs.Metrics.quantile h 0.99))

(* Counter delta vs. the previous frame, as a per-second rate. *)
let rate ~prev ~cur ~dt ?labels name =
  match prev with
  | Some p when dt > 0.0 -> Some (float_of_int (counter cur ?labels name - counter p ?labels name) /. dt)
  | _ -> None

let fmt_rate = function None -> "" | Some r -> Printf.sprintf "  (+%.0f/s)" (Float.max 0.0 r)

(* The daemon's backpressure ladder, reconstructed from this frame's
   deltas: rung 1 = a worker queue refused events this frame, rung 2 =
   a session crossed the pending watermark and its fd was throttled
   (visible as queue depth >= watermark is not exported, so we settle
   for stalls), rung 3 = an eviction landed. *)
let rung ~prev ~cur =
  let delta name = match prev with Some p -> counter cur name - counter p name | None -> counter cur name in
  if delta "serve_evictions_total" > 0 then "EVICTING"
  else if delta "serve_backpressure_stalls_total" > 0 then "stalling"
  else "idle"

let render ~prev ~cur ~dt =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let events = counter cur "serve_events_total" in
  let active = gauge cur "serve_sessions_active" in
  line "pmdb top — %d session(s) active, %d event(s) ingested%s" (int_of_float active) events
    (fmt_rate (rate ~prev ~cur ~dt "serve_events_total"));
  line "  sessions: opened %d  evictions %d  timeouts %d  quarantines %d  backpressure: %s (stalls %d)"
    (counter cur "serve_sessions_opened_total")
    (counter cur "serve_evictions_total") (counter cur "serve_timeouts_total")
    (counter cur ~labels:[ ("reason", "trace") ] "serve_quarantines_total"
    + counter cur ~labels:[ ("reason", "detector") ] "serve_quarantines_total")
    (rung ~prev ~cur)
    (counter cur "serve_backpressure_stalls_total");
  line "  latency: e2e %s  residency %s  decode %s"
    (fmt_quantiles (hist_total cur "serve_session_e2e_seconds"))
    (fmt_quantiles (hist_total cur "shard_frame_residency_seconds"))
    (fmt_quantiles (hist_total cur "shard_frame_decode_seconds"));
  (* Worker balance: share of all worker-dispatched events per domain. *)
  (match series cur "serve_worker_events_total" with
  | [] -> ()
  | workers ->
      let total =
        List.fold_left (fun acc (_, v) -> match v with Obs.Metrics.V_counter n -> acc + n | _ -> acc) 0 workers
      in
      let cell (labels, v) =
        let d = match List.assoc_opt "domain" labels with Some d -> d | None -> "?" in
        let n = match v with Obs.Metrics.V_counter n -> n | _ -> 0 in
        let share = if total > 0 then 100.0 *. float_of_int n /. float_of_int total else 0.0 in
        Printf.sprintf "w%s %.0f%% (%d)" d share n
      in
      line "  workers: %s" (String.concat "  " (List.map cell workers)));
  (* Per-shard queue depth peaks, when sessions run sharded sinks. *)
  (match series cur "shard_queue_depth_peak" with
  | [] -> ()
  | shards ->
      let cell (labels, v) =
        let s = match List.assoc_opt "shard" labels with Some s -> s | None -> "?" in
        let d = match v with Obs.Metrics.V_gauge g -> g | _ -> 0.0 in
        Printf.sprintf "s%s %.0f" s d
      in
      line "  shard queue peaks: %s" (String.concat "  " (List.map cell shards)));
  (* One row per live session (gauges are zeroed when a session
     closes, so only in-flight sessions appear). *)
  let sessions =
    List.filter_map
      (fun (labels, v) ->
        match (List.assoc_opt "session" labels, v) with
        | Some name, Obs.Metrics.V_gauge depth when depth > 0.0 || gauge cur ~labels "serve_events_per_sec" > 0.0 ->
            Some (name, depth, gauge cur ~labels "serve_events_per_sec", gauge cur ~labels "serve_live_bytes")
        | _ -> None)
      (series cur "serve_queue_depth")
  in
  (match sessions with
  | [] -> ()
  | sessions ->
      line "  %-24s %10s %12s %12s" "session" "queue" "events/s" "bytes held";
      List.iter
        (fun (name, depth, rate, bytes) -> line "  %-24s %10.0f %12.0f %12.0f" name depth rate bytes)
        sessions);
  Buffer.contents b
