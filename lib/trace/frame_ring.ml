(* Bounded single-producer / single-consumer ring of *frames*: flat
   byte buffers each packing a batch of encoded events. This is the
   batched transport behind [Shard_router] (ROADMAP Open item 1): the
   per-event SPSC hand-off costs one [Some]-boxed message allocation
   plus one seq-cst store per event, which dominates detection work at
   ~70ns/event; packing [frame_events] events per published frame
   amortizes the atomic protocol and allocates nothing per event — the
   encoder writes straight into a preallocated [Bytes] slot.

   Ring protocol (same memory-model argument as [Spsc]): the producer
   fills the staging slot [tail land mask] with plain writes, then
   publishes the whole frame with one seq-cst store of [tail]; the
   consumer's seq-cst read of [tail] therefore happens-after every byte
   of the frame. The consumer bumps [head] after decoding, freeing the
   slot. Each side caches the other's index and refreshes it only on
   apparent full/empty.

   Frame layout: a slot is a [Bytes] buffer of [used.(i)] valid bytes
   holding [counts.(i)] records back to back. A record is

     tag byte (constructor | 0x80 silent bit)
     seq      int64 LE
     fields   ints as int64 LE; strings as int32 LE length + bytes;
              CLF kind as one byte

   [stops.(i)] marks the end-of-stream frame ([push_stop]): its events
   (a partial frame is allowed to ride along) are decoded first, then
   the consumer learns the stream is over — so "Stop with a partial
   frame pending" delivers the tail events exactly once.

   Close semantics (mirrors [Spsc], including the exact-delivery
   guarantee): either side may [close]. A blocked producer or consumer
   wakes up with [Closed]; the consumer drains already-published frames
   before raising. The producer re-checks [closed] immediately before
   *and* after publishing: under sequentially consistent atomics, a
   [push]/[flush] that returns normally read [closed = false] after its
   [tail] store, so any consumer that observes [closed = true] and then
   does a final drain (as [wait] does) is guaranteed to see the frame —
   a publish racing [close] can therefore never lose events silently;
   the producer gets [Closed] instead. Events still *staged* (never
   published) when the producer gives up are lost by design — callers
   must [flush] before abandoning the ring. *)

exception Closed

type t = {
  slots : Bytes.t array; (* producer may replace (grow) an unclaimed-by-consumer slot *)
  used : int array; (* valid payload bytes per published slot *)
  counts : int array; (* events per published slot *)
  stops : bool array; (* end-of-stream marker per published slot *)
  pub_ts : float array; (* Obs.Clock publish timestamp per published slot *)
  mask : int;
  head : int Atomic.t; (* next frame to consume; written by the consumer only *)
  tail : int Atomic.t; (* next frame to publish; written by the producer only *)
  closed : bool Atomic.t;
  mutable cached_head : int; (* producer's view of [head] *)
  mutable cached_tail : int; (* consumer's view of [tail] *)
  frame_events : int; (* publish threshold *)
  mutable st_used : int; (* staging bytes in slot [tail land mask] *)
  mutable st_count : int; (* staged events *)
  mutable st_claimed : bool; (* staging slot checked free of the consumer *)
  mutable last_pub_ts : float; (* consumer's copy of the last decoded frame's stamp *)
}

let create ?(frame_bytes = 0) ~slots:want ~frame_events () =
  if frame_events < 1 then invalid_arg "Frame_ring.create: frame_events must be >= 1";
  let want = max 2 want in
  let rec pow2 n = if n >= want then n else pow2 (n * 2) in
  let n = pow2 2 in
  (* Enough room for [frame_events] fixed-size records; string-carrying
     records grow the slot on demand. *)
  let frame_bytes = if frame_bytes > 0 then frame_bytes else (frame_events * 40) + 64 in
  {
    slots = Array.init n (fun _ -> Bytes.create frame_bytes);
    used = Array.make n 0;
    counts = Array.make n 0;
    stops = Array.make n false;
    pub_ts = Array.make n 0.0;
    mask = n - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    cached_head = 0;
    cached_tail = 0;
    frame_events;
    st_used = 0;
    st_count = 0;
    st_claimed = false;
    last_pub_ts = 0.0;
  }

let capacity t = t.mask + 1

let frame_events t = t.frame_events

(* Published (undecoded) frames. The [tail]/[head] reads can tear
   against concurrent publish/consume — clamp to the only occupancies a
   fixed ring can hold instead of reporting a transient negative or
   over-capacity value. *)
let length t =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  min (capacity t) (max 0 (tail - head))

let staged t = t.st_count

(* Monotone frame counters for the causal trace: the producer has
   published frames [0 .. published_frames - 1]; the consumer has
   decoded frames [0 .. consumed_frames - 1]. Indices line up because
   the ring is FIFO, so (ring, index) names one frame on both sides. *)
let published_frames t = Atomic.get t.tail

let consumed_frames t = Atomic.get t.head

let close t = Atomic.set t.closed true

let is_closed t = Atomic.get t.closed

let spin_limit = 32

let max_sleep = 0.001

let backoff n =
  if n < spin_limit then Domain.cpu_relax ()
  else begin
    let k = min (n - spin_limit) 20 in
    Unix.sleepf (min max_sleep (1e-6 *. float_of_int (1 lsl k)))
  end

(* {2 Record encoding} *)

let set_i b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_i b off = Int64.to_int (Bytes.get_int64_le b off)

let set_str b off s =
  Bytes.set_int32_le b off (Int32.of_int (String.length s));
  Bytes.blit_string s 0 b (off + 4) (String.length s)

let get_str b off =
  let len = Int32.to_int (Bytes.get_int32_le b off) in
  Bytes.sub_string b (off + 4) len

(* tag byte: constructor in the low 7 bits, silent replica bit at 0x80 *)
let tag_store = 0
and tag_clf = 1
and tag_fence = 2
and tag_register_pmem = 3
and tag_epoch_begin = 4
and tag_epoch_end = 5
and tag_strand_begin = 6
and tag_strand_end = 7
and tag_join_strand = 8
and tag_tx_log = 9
and tag_register_var = 10
and tag_call = 11
and tag_assert_durable = 12
and tag_assert_ordered = 13
and tag_assert_fresh = 14
and tag_program_end = 15

let clf_kind_byte = function Event.Clwb -> 0 | Event.Clflush -> 1 | Event.Clflushopt -> 2

let clf_kind_of_byte = function
  | 0 -> Event.Clwb
  | 1 -> Event.Clflush
  | 2 -> Event.Clflushopt
  | b -> invalid_arg (Printf.sprintf "Frame_ring: bad CLF kind byte %d" b)

(* Encoded size of one record: tag + seq + fields. *)
let need ev =
  9
  +
  match ev with
  | Event.Store _ -> 24
  | Event.Clf _ -> 25
  | Event.Fence _ -> 8
  | Event.Register_pmem _ -> 16
  | Event.Epoch_begin _ | Event.Epoch_end _ -> 8
  | Event.Strand_begin _ | Event.Strand_end _ -> 16
  | Event.Join_strand _ -> 8
  | Event.Tx_log _ -> 24
  | Event.Register_var { name; _ } -> 20 + String.length name
  | Event.Call { func; _ } -> 12 + String.length func
  | Event.Annotation (Event.Assert_durable _) -> 16
  | Event.Annotation (Event.Assert_ordered _) -> 32
  | Event.Annotation (Event.Assert_fresh _) -> 16
  | Event.Program_end -> 0

let encode b off ~seq ~silent ev =
  let tag t = Bytes.unsafe_set b off (Char.unsafe_chr (if silent then t lor 0x80 else t)) in
  set_i b (off + 1) seq;
  let off = off + 9 in
  match ev with
  | Event.Store { addr; size; tid } ->
      tag tag_store;
      set_i b off addr;
      set_i b (off + 8) size;
      set_i b (off + 16) tid
  | Event.Clf { addr; size; kind; tid } ->
      tag tag_clf;
      set_i b off addr;
      set_i b (off + 8) size;
      set_i b (off + 16) tid;
      Bytes.set b (off + 24) (Char.chr (clf_kind_byte kind))
  | Event.Fence { tid } ->
      tag tag_fence;
      set_i b off tid
  | Event.Register_pmem { base; size } ->
      tag tag_register_pmem;
      set_i b off base;
      set_i b (off + 8) size
  | Event.Epoch_begin { tid } ->
      tag tag_epoch_begin;
      set_i b off tid
  | Event.Epoch_end { tid } ->
      tag tag_epoch_end;
      set_i b off tid
  | Event.Strand_begin { tid; strand } ->
      tag tag_strand_begin;
      set_i b off tid;
      set_i b (off + 8) strand
  | Event.Strand_end { tid; strand } ->
      tag tag_strand_end;
      set_i b off tid;
      set_i b (off + 8) strand
  | Event.Join_strand { tid } ->
      tag tag_join_strand;
      set_i b off tid
  | Event.Tx_log { obj_addr; size; tid } ->
      tag tag_tx_log;
      set_i b off obj_addr;
      set_i b (off + 8) size;
      set_i b (off + 16) tid
  | Event.Register_var { name; addr; size } ->
      tag tag_register_var;
      set_i b off addr;
      set_i b (off + 8) size;
      set_str b (off + 16) name
  | Event.Call { func; tid } ->
      tag tag_call;
      set_i b off tid;
      set_str b (off + 8) func
  | Event.Annotation (Event.Assert_durable { addr; size }) ->
      tag tag_assert_durable;
      set_i b off addr;
      set_i b (off + 8) size
  | Event.Annotation (Event.Assert_ordered { first_addr; first_size; then_addr; then_size }) ->
      tag tag_assert_ordered;
      set_i b off first_addr;
      set_i b (off + 8) first_size;
      set_i b (off + 16) then_addr;
      set_i b (off + 24) then_size
  | Event.Annotation (Event.Assert_fresh { addr; size }) ->
      tag tag_assert_fresh;
      set_i b off addr;
      set_i b (off + 8) size
  | Event.Program_end -> tag tag_program_end

(* Decode the record at [off]; calls [f] and returns the next offset. *)
let decode b off ~f =
  let tagb = Char.code (Bytes.unsafe_get b off) in
  let silent = tagb land 0x80 <> 0 in
  let tag = tagb land 0x7f in
  let seq = get_i b (off + 1) in
  let off = off + 9 in
  let emit n ev =
    f ~seq ~silent ev;
    off + n
  in
  if tag = tag_store then
    emit 24 (Event.Store { addr = get_i b off; size = get_i b (off + 8); tid = get_i b (off + 16) })
  else if tag = tag_clf then
    emit 25
      (Event.Clf
         {
           addr = get_i b off;
           size = get_i b (off + 8);
           tid = get_i b (off + 16);
           kind = clf_kind_of_byte (Char.code (Bytes.get b (off + 24)));
         })
  else if tag = tag_fence then emit 8 (Event.Fence { tid = get_i b off })
  else if tag = tag_register_pmem then
    emit 16 (Event.Register_pmem { base = get_i b off; size = get_i b (off + 8) })
  else if tag = tag_epoch_begin then emit 8 (Event.Epoch_begin { tid = get_i b off })
  else if tag = tag_epoch_end then emit 8 (Event.Epoch_end { tid = get_i b off })
  else if tag = tag_strand_begin then
    emit 16 (Event.Strand_begin { tid = get_i b off; strand = get_i b (off + 8) })
  else if tag = tag_strand_end then
    emit 16 (Event.Strand_end { tid = get_i b off; strand = get_i b (off + 8) })
  else if tag = tag_join_strand then emit 8 (Event.Join_strand { tid = get_i b off })
  else if tag = tag_tx_log then
    emit 24 (Event.Tx_log { obj_addr = get_i b off; size = get_i b (off + 8); tid = get_i b (off + 16) })
  else if tag = tag_register_var then begin
    let name = get_str b (off + 16) in
    emit
      (20 + String.length name)
      (Event.Register_var { name; addr = get_i b off; size = get_i b (off + 8) })
  end
  else if tag = tag_call then begin
    let func = get_str b (off + 8) in
    emit (12 + String.length func) (Event.Call { func; tid = get_i b off })
  end
  else if tag = tag_assert_durable then
    emit 16 (Event.Annotation (Event.Assert_durable { addr = get_i b off; size = get_i b (off + 8) }))
  else if tag = tag_assert_ordered then
    emit 32
      (Event.Annotation
         (Event.Assert_ordered
            {
              first_addr = get_i b off;
              first_size = get_i b (off + 8);
              then_addr = get_i b (off + 16);
              then_size = get_i b (off + 24);
            }))
  else if tag = tag_assert_fresh then
    emit 16 (Event.Annotation (Event.Assert_fresh { addr = get_i b off; size = get_i b (off + 8) }))
  else if tag = tag_program_end then emit 0 Event.Program_end
  else invalid_arg (Printf.sprintf "Frame_ring: bad record tag %d" tag)

(* {2 Producer} *)

(* Wait until the staging slot [tail land mask] is free of the
   consumer. Only needed once per frame: after the check the slot is
   the producer's until published. *)
let claim t =
  if not t.st_claimed then begin
    let tail = Atomic.get t.tail in
    if tail - t.cached_head >= capacity t then begin
      let n = ref 0 in
      t.cached_head <- Atomic.get t.head;
      while tail - t.cached_head >= capacity t do
        if Atomic.get t.closed then raise Closed;
        backoff !n;
        incr n;
        t.cached_head <- Atomic.get t.head
      done
    end;
    t.st_claimed <- true
  end

let publish t ~stop =
  let tail = Atomic.get t.tail in
  let idx = tail land t.mask in
  let n = t.st_count in
  t.used.(idx) <- t.st_used;
  t.counts.(idx) <- n;
  t.stops.(idx) <- stop;
  (* One clock read per frame (amortized over up to [frame_events]
     events): the consumer derives queue residency from it. The plain
     write is published by the seq-cst [tail] store below, like the
     frame bytes. *)
  t.pub_ts.(idx) <- Obs.Clock.now ();
  t.st_used <- 0;
  t.st_count <- 0;
  t.st_claimed <- false;
  (* Immediately before publishing: don't hand a frame to a consumer
     known to be gone. *)
  if Atomic.get t.closed then raise Closed;
  Atomic.set t.tail (tail + 1);
  (* Immediately after: reading [closed = false] here (seq-cst, after
     the [tail] store) guarantees any closer's final drain observes the
     frame — see the header comment. *)
  if Atomic.get t.closed then raise Closed;
  n

let flush t = if t.st_count > 0 then publish t ~stop:false else 0

let push t ~seq ~silent ev =
  if Atomic.get t.closed then raise Closed;
  claim t;
  let sz = need ev in
  let idx = Atomic.get t.tail land t.mask in
  let buf = t.slots.(idx) in
  let published = ref 0 in
  let buf =
    if t.st_used + sz <= Bytes.length buf then buf
    else if t.st_count > 0 then begin
      (* Frame full by bytes: publish it and start a new one. The count
         goes into this call's return value — a caller that only
         consumes on a positive return (Shard_router's inline mode)
         must learn about byte-full frames too, or nothing ever frees
         the ring and the full-ring wait above spins forever. *)
      published := publish t ~stop:false;
      claim t;
      let idx = Atomic.get t.tail land t.mask in
      let buf = t.slots.(idx) in
      if sz <= Bytes.length buf then buf
      else begin
        (* One oversized record (a long registered-variable name):
           replace the empty staging slot with a bigger buffer. Safe —
           the consumer only reads a slot after its publish. *)
        let bigger = Bytes.create (max sz (2 * Bytes.length buf)) in
        t.slots.(idx) <- bigger;
        bigger
      end
    end
    else begin
      let bigger = Bytes.create (max sz (2 * Bytes.length buf)) in
      t.slots.(idx) <- bigger;
      bigger
    end
  in
  encode buf t.st_used ~seq ~silent ev;
  t.st_used <- t.st_used + sz;
  t.st_count <- t.st_count + 1;
  if t.st_count >= t.frame_events then !published + publish t ~stop:false else !published

let push_stop t =
  if Atomic.get t.closed then raise Closed;
  claim t;
  (* The staged partial frame (possibly empty) becomes the end-of-stream
     frame: its events are decoded first, then the consumer stops. *)
  ignore (publish t ~stop:true)

(* {2 Consumer} *)

let wait t =
  let rec go n =
    let head = Atomic.get t.head in
    if head >= t.cached_tail then t.cached_tail <- Atomic.get t.tail;
    if head < t.cached_tail then ()
    else if Atomic.get t.closed then begin
      (* Final drain: re-check for frames published before the close —
         the producer's post-publish [closed] check relies on it. *)
      t.cached_tail <- Atomic.get t.tail;
      if head >= t.cached_tail then raise Closed
    end
    else begin
      backoff n;
      go (n + 1)
    end
  in
  go 0

let try_consume t ~f =
  let head = Atomic.get t.head in
  if head >= t.cached_tail then t.cached_tail <- Atomic.get t.tail;
  if head >= t.cached_tail then `Empty
  else begin
    let idx = head land t.mask in
    let buf = t.slots.(idx) in
    let limit = t.used.(idx) in
    let n = t.counts.(idx) in
    let stop = t.stops.(idx) in
    (* Copy the stamp before the [head] bump frees the slot for the
       producer to overwrite; single consumer, so the field is private
       to this side. *)
    t.last_pub_ts <- t.pub_ts.(idx);
    let off = ref 0 in
    for _ = 1 to n do
      off := decode buf !off ~f
    done;
    assert (!off = limit);
    Atomic.set t.head (head + 1);
    if stop then `Stop n else `Frame n
  end

let rec consume t ~f =
  wait t;
  match try_consume t ~f with `Empty -> consume t ~f | (`Frame _ | `Stop _) as r -> r

let last_frame_ts t = t.last_pub_ts
